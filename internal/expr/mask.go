// Package expr implements the time-series expression operators of
// Definitions 1-2: filters producing mask vectors, masked aggregation,
// natural join, concatenation (time-ordered merge), position fractions
// and sliding-window enumeration. These are the pipeline nodes Algorithm 2
// appends after the decoders.
package expr

import "math/bits"

// Mask marks valid tuples as a bitset — the in-memory form of the
// -1/0 lane masks the paper's filters produce in SIMD registers.
type Mask struct {
	bits []uint64
	n    int
}

// NewMask returns an all-zero mask over n rows.
func NewMask(n int) *Mask {
	return &Mask{bits: make([]uint64, (n+63)/64), n: n}
}

// Len reports the number of rows covered.
func (m *Mask) Len() int { return m.n }

// Set marks row i valid.
func (m *Mask) Set(i int) { m.bits[i>>6] |= 1 << uint(i&63) }

// Clear marks row i invalid.
func (m *Mask) Clear(i int) { m.bits[i>>6] &^= 1 << uint(i&63) }

// Get reports whether row i is valid.
func (m *Mask) Get(i int) bool { return m.bits[i>>6]&(1<<uint(i&63)) != 0 }

// SetRange marks rows [lo, hi) valid in word-sized strokes.
func (m *Mask) SetRange(lo, hi int) {
	if hi > m.n {
		hi = m.n
	}
	for i := lo; i < hi; {
		w := i >> 6
		bit := uint(i & 63)
		remaining := hi - i
		span := 64 - int(bit)
		if span > remaining {
			span = remaining
		}
		var chunk uint64
		if span == 64 {
			chunk = ^uint64(0)
		} else {
			chunk = (uint64(1)<<uint(span) - 1) << bit
		}
		m.bits[w] |= chunk
		i += span
	}
}

// Count returns the number of valid rows (popcount per word).
func (m *Mask) Count() int {
	c := 0
	for _, w := range m.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// And intersects two masks of equal length in place.
func (m *Mask) And(other *Mask) *Mask {
	for i := range m.bits {
		m.bits[i] &= other.bits[i]
	}
	return m
}

// Or unions two masks of equal length in place.
func (m *Mask) Or(other *Mask) *Mask {
	for i := range m.bits {
		m.bits[i] |= other.bits[i]
	}
	return m
}

// NextSet returns the first valid row >= i, or -1.
func (m *Mask) NextSet(i int) int {
	if i >= m.n {
		return -1
	}
	w := i >> 6
	cur := m.bits[w] >> uint(i&63) << uint(i&63)
	for {
		if cur != 0 {
			idx := w<<6 + bits.TrailingZeros64(cur)
			if idx >= m.n {
				return -1
			}
			return idx
		}
		w++
		if w >= len(m.bits) {
			return -1
		}
		cur = m.bits[w]
	}
}
