package expr

import "etsqp/internal/simd"

// RangeMask builds the validity mask of c1 <= v <= c2 over a column.
// When every value and both bounds fit in int32 the comparison runs
// eight lanes at a time with pcmpgtd-style vector compares and a
// movemask (the mask-vector generation of Section VI-B); otherwise it
// falls back to the scalar path.
func RangeMask(col []int64, c1, c2 int64) *Mask {
	m := NewMask(len(col))
	if fitsI32(c1) && fitsI32(c2) {
		if rangeMaskVec(col, c1, c2, m) {
			return m
		}
	}
	for i, v := range col {
		if v >= c1 && v <= c2 {
			m.Set(i)
		}
	}
	return m
}

func fitsI32(v int64) bool { return v >= -(1<<31) && v < 1<<31 }

// rangeMaskVec attempts the vector path; it reports false (leaving m
// empty) if a value outside int32 range appears, in which case the
// caller reruns the scalar path.
//
//etsqp:hotpath
func rangeMaskVec(col []int64, c1, c2 int64, m *Mask) bool {
	lo := simd.Broadcast32(uint32(int32(c1) - 1)) // v > c1-1  ≡  v >= c1
	hi := simd.Broadcast32(uint32(int32(c2) + 1)) // v < c2+1  ≡  v <= c2
	if c1 == -(1<<31) || c2 == 1<<31-1 {
		return false // avoid wrap in the ±1 shift
	}
	i := 0
	for ; i+simd.Lanes32 <= len(col); i += simd.Lanes32 {
		var v simd.U32x8
		for l := 0; l < simd.Lanes32; l++ {
			x := col[i+l]
			if !fitsI32(x) {
				return false
			}
			v[l] = uint32(int32(x))
		}
		ge := simd.CmpGt32(v, lo)  // v > c1-1
		le := simd.CmpGt32(hi, v)  // c2+1 > v
		both := simd.And32(ge, le) // all-ones lanes are valid
		bits := simd.Movemask32(both)
		if bits != 0 {
			for l := 0; l < simd.Lanes32; l++ {
				if bits&(1<<uint(l)) != 0 {
					m.Set(i + l)
				}
			}
		}
	}
	for ; i < len(col); i++ {
		v := col[i]
		if v >= c1 && v <= c2 {
			m.Set(i)
		}
	}
	return true
}

// MaskedFold folds valid values into caller-provided accumulators via
// one callback per valid run, letting aggregation avoid per-row branch
// checks on dense masks.
//
//etsqp:hotpath
func MaskedFold(col []int64, m *Mask, f func(v int64)) {
	for i := m.NextSet(0); i >= 0; i = m.NextSet(i + 1) {
		f(col[i])
	}
}
