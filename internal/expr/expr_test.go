package expr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMaskBasics(t *testing.T) {
	m := NewMask(130)
	if m.Len() != 130 || m.Count() != 0 {
		t.Fatal("fresh mask not empty")
	}
	m.Set(0)
	m.Set(63)
	m.Set(64)
	m.Set(129)
	if m.Count() != 4 {
		t.Fatalf("count = %d", m.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !m.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if m.Get(1) || m.Get(128) {
		t.Fatal("unexpected bits set")
	}
	m.Clear(63)
	if m.Get(63) || m.Count() != 3 {
		t.Fatal("clear failed")
	}
}

func TestMaskSetRange(t *testing.T) {
	for _, rg := range [][2]int{{0, 0}, {0, 1}, {5, 130}, {63, 65}, {0, 200}, {64, 128}} {
		m := NewMask(130)
		m.SetRange(rg[0], rg[1])
		want := rg[1]
		if want > 130 {
			want = 130
		}
		if want < rg[0] {
			want = rg[0]
		}
		if got := m.Count(); got != want-rg[0] {
			t.Fatalf("range %v: count %d want %d", rg, got, want-rg[0])
		}
		for i := 0; i < 130; i++ {
			if m.Get(i) != (i >= rg[0] && i < want) {
				t.Fatalf("range %v: bit %d wrong", rg, i)
			}
		}
	}
}

func TestMaskNextSet(t *testing.T) {
	m := NewMask(200)
	m.Set(3)
	m.Set(64)
	m.Set(199)
	var got []int
	for i := m.NextSet(0); i >= 0; i = m.NextSet(i + 1) {
		got = append(got, i)
	}
	if !reflect.DeepEqual(got, []int{3, 64, 199}) {
		t.Fatalf("got %v", got)
	}
	if m.NextSet(200) != -1 {
		t.Fatal("past end must be -1")
	}
}

func TestMaskAndOr(t *testing.T) {
	a := NewMask(100)
	b := NewMask(100)
	a.SetRange(0, 50)
	b.SetRange(25, 75)
	a.And(b)
	if a.Count() != 25 || !a.Get(25) || !a.Get(49) || a.Get(50) {
		t.Fatalf("And: count %d", a.Count())
	}
	a.Or(b)
	if a.Count() != 50 {
		t.Fatalf("Or: count %d", a.Count())
	}
}

func TestCmpOps(t *testing.T) {
	cases := []struct {
		op   CmpOp
		v, c int64
		want bool
	}{
		{OpLT, 1, 2, true}, {OpLT, 2, 2, false},
		{OpLE, 2, 2, true}, {OpLE, 3, 2, false},
		{OpGT, 3, 2, true}, {OpGT, 2, 2, false},
		{OpGE, 2, 2, true}, {OpGE, 1, 2, false},
		{OpEQ, 2, 2, true}, {OpEQ, 1, 2, false},
		{OpNE, 1, 2, true}, {OpNE, 2, 2, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.v, c.c); got != c.want {
			t.Errorf("%d %s %d = %v", c.v, c.op, c.c, got)
		}
	}
	if OpLT.String() != "<" || CmpOp(99).String() != "?" {
		t.Fatal("String() wrong")
	}
	if CmpOp(99).Eval(1, 1) {
		t.Fatal("unknown op must be false")
	}
}

func TestFilter(t *testing.T) {
	col := []int64{5, 10, 15, 20, 25}
	m := Filter(col, OpGT, 12)
	if m.Count() != 3 || m.Get(0) || m.Get(1) || !m.Get(2) {
		t.Fatalf("filter mask wrong: %d", m.Count())
	}
}

func TestTimeRangeFilterMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300)
		ts := make([]int64, n)
		cur := int64(0)
		for i := range ts {
			cur += rng.Int63n(100) + 1
			ts[i] = cur
		}
		t1 := rng.Int63n(cur + 10)
		t2 := t1 + rng.Int63n(cur+1)
		m := TimeRangeFilter(ts, t1, t2)
		for i, v := range ts {
			if m.Get(i) != (v >= t1 && v <= t2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskedSumMinMax(t *testing.T) {
	col := []int64{10, -5, 30, 7, 100}
	m := NewMask(5)
	m.Set(1)
	m.Set(2)
	m.Set(4)
	sum, count := MaskedSum(col, m)
	if sum != 125 || count != 3 {
		t.Fatalf("sum=%d count=%d", sum, count)
	}
	minV, maxV, ok := MaskedMinMax(col, m)
	if !ok || minV != -5 || maxV != 100 {
		t.Fatalf("min=%d max=%d ok=%v", minV, maxV, ok)
	}
	if _, _, ok := MaskedMinMax(col, NewMask(5)); ok {
		t.Fatal("empty mask must be !ok")
	}
}

func TestNaturalJoin(t *testing.T) {
	lt := []int64{1, 3, 5, 7, 9}
	rt := []int64{2, 3, 5, 8, 9, 11}
	l, r := NaturalJoin(lt, rt)
	if !reflect.DeepEqual(l, []int{1, 2, 4}) || !reflect.DeepEqual(r, []int{1, 2, 4}) {
		t.Fatalf("l=%v r=%v", l, r)
	}
	lm, rm := JoinMasks(lt, rt)
	if lm.Count() != 3 || rm.Count() != 3 || !lm.Get(1) || !rm.Get(4) {
		t.Fatal("join masks wrong")
	}
}

func TestMergeByTime(t *testing.T) {
	lt := []int64{1, 3, 5}
	lv := []int64{10, 30, 50}
	rt := []int64{2, 3, 6}
	rv := []int64{-2, -3, -6}
	rows := MergeByTime(lt, lv, rt, rv)
	wantTimes := []int64{1, 2, 3, 5, 6}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Time != wantTimes[i] {
			t.Fatalf("row %d time %d", i, r.Time)
		}
	}
	if rows[0].Values[1] != NullValue || rows[2].Values[0] != 30 || rows[2].Values[1] != -3 {
		t.Fatalf("merged values wrong: %+v", rows)
	}
	// Time order invariant under random inputs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() ([]int64, []int64) {
			n := rng.Intn(50)
			ts := make([]int64, n)
			vs := make([]int64, n)
			cur := int64(0)
			for i := range ts {
				cur += rng.Int63n(10) + 1
				ts[i] = cur
				vs[i] = rng.Int63n(100)
			}
			return ts, vs
		}
		at, av := mk()
		bt, bv := mk()
		rows := MergeByTime(at, av, bt, bv)
		for i := 1; i < len(rows); i++ {
			if rows[i].Time <= rows[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSlidingWindows(t *testing.T) {
	ws, err := SlidingWindows(0, 10, 35)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("windows = %d", len(ws))
	}
	if ws[3].Start != 30 || ws[3].End != 40 || ws[3].Index != 3 {
		t.Fatalf("last window %+v", ws[3])
	}
	if _, err := SlidingWindows(0, 0, 100); err == nil {
		t.Fatal("zero width must fail")
	}
}

func TestSlidingWindowsHop(t *testing.T) {
	// Overlapping: width 10, slide 4 over [0, 11].
	ws, err := SlidingWindowsHop(0, 10, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("windows = %d", len(ws))
	}
	for k, w := range ws {
		if w.Index != k || w.Start != int64(4*k) || w.End != int64(4*k+10) {
			t.Fatalf("window %d = %+v", k, w)
		}
	}
	// Sampling with gaps: slide > width.
	ws, err = SlidingWindowsHop(100, 5, 20, 140)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 || ws[2].Start != 140 || ws[2].End != 145 {
		t.Fatalf("windows = %+v", ws)
	}
	// Empty range.
	if ws, err = SlidingWindowsHop(10, 5, 5, 9); err != nil || ws != nil {
		t.Fatalf("empty range: %v %v", ws, err)
	}
	// Guards.
	if _, err := SlidingWindowsHop(0, 10, 0, 100); err == nil {
		t.Fatal("zero slide must fail")
	}
	if _, err := SlidingWindowsHop(0, 10, 1, int64(MaxWindowInstances)+10); err == nil {
		t.Fatal("instance-count cap must trip")
	}
}

func TestFractionAndAdd(t *testing.T) {
	col := []int64{1, 2, 3, 4, 5}
	if got := Fraction(col, 1, 3); !reflect.DeepEqual(got, []int64{2, 3}) {
		t.Fatalf("got %v", got)
	}
	if got := Fraction(col, -5, 99); len(got) != 5 {
		t.Fatal("clamping failed")
	}
	if got := Fraction(col, 3, 2); got != nil {
		t.Fatal("inverted range must be nil")
	}
	sum, err := AddColumns([]int64{1, 2}, []int64{10, 20})
	if err != nil || !reflect.DeepEqual(sum, []int64{11, 22}) {
		t.Fatalf("AddColumns: %v %v", sum, err)
	}
	if _, err := AddColumns([]int64{1}, []int64{1, 2}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if got := BitExtend(col); !reflect.DeepEqual(got, col) {
		t.Fatal("BitExtend identity")
	}
}

func TestRangeMaskMatchesScalar(t *testing.T) {
	f := func(seed int64, wide bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100)
		col := make([]int64, n)
		for i := range col {
			if wide {
				col[i] = rng.Int63() - rng.Int63()
			} else {
				col[i] = rng.Int63n(2000) - 1000
			}
		}
		c1 := rng.Int63n(2000) - 1000
		c2 := c1 + rng.Int63n(1000)
		m := RangeMask(col, c1, c2)
		for i, v := range col {
			if m.Get(i) != (v >= c1 && v <= c2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeMaskWideBoundsFallBack(t *testing.T) {
	col := []int64{1 << 40, -(1 << 40), 5}
	m := RangeMask(col, -(1 << 50), 1<<50)
	if m.Count() != 3 {
		t.Fatalf("count = %d", m.Count())
	}
	// Bounds at int32 extremes avoid the vector path but stay correct.
	m2 := RangeMask([]int64{0, -(1 << 31), 1<<31 - 1}, -(1 << 31), 1<<31-1)
	if m2.Count() != 3 {
		t.Fatalf("count = %d", m2.Count())
	}
}

func TestMaskedFold(t *testing.T) {
	col := []int64{1, 2, 3, 4}
	m := NewMask(4)
	m.Set(1)
	m.Set(3)
	var sum int64
	MaskedFold(col, m, func(v int64) { sum += v })
	if sum != 6 {
		t.Fatalf("sum = %d", sum)
	}
}

func BenchmarkRangeMaskVec(b *testing.B) {
	col := make([]int64, 65536)
	for i := range col {
		col[i] = int64(i % 4096)
	}
	b.SetBytes(int64(len(col) * 8))
	for i := 0; i < b.N; i++ {
		RangeMask(col, 1000, 3000)
	}
}

func BenchmarkFilterScalar(b *testing.B) {
	col := make([]int64, 65536)
	for i := range col {
		col[i] = int64(i % 4096)
	}
	b.SetBytes(int64(len(col) * 8))
	for i := 0; i < b.N; i++ {
		Filter(col, OpGE, 1000).And(Filter(col, OpLE, 3000))
	}
}
