package expr

import (
	"errors"
)

// CmpOp is a comparison operator of a filter predicate.
type CmpOp int

// Comparison operators.
const (
	OpLT CmpOp = iota
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
)

// String returns the SQL spelling.
func (o CmpOp) String() string {
	switch o {
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	}
	return "?"
}

// Eval applies the operator.
func (o CmpOp) Eval(v, c int64) bool {
	switch o {
	case OpLT:
		return v < c
	case OpLE:
		return v <= c
	case OpGT:
		return v > c
	case OpGE:
		return v >= c
	case OpEQ:
		return v == c
	case OpNE:
		return v != c
	}
	return false
}

// Filter produces the validity mask of `op(v, c)` over a column — the
// sigma_theta operator generating mask vectors.
func Filter(col []int64, op CmpOp, c int64) *Mask {
	m := NewMask(len(col))
	for i, v := range col {
		if op.Eval(v, c) {
			m.Set(i)
		}
	}
	return m
}

// TimeRangeFilter exploits time order: timestamps are sorted, so the
// valid rows for t1 <= T <= t2 form one contiguous range found by binary
// search — no per-row comparison (the ordered-data shortcut of Example 2).
func TimeRangeFilter(ts []int64, t1, t2 int64) *Mask {
	m := NewMask(len(ts))
	lo, hi := TimeRangeBounds(ts, t1, t2)
	m.SetRange(lo, hi)
	return m
}

// TimeRangeBounds returns the half-open row range [lo, hi) of timestamps
// within [t1, t2]. The binary searches are hand-rolled rather than
// sort.Search: the closures sort.Search takes capture ts and the bound,
// which escapes them to the heap, and this sits on the per-batch cursor
// path where steady state must stay allocation-free.
func TimeRangeBounds(ts []int64, t1, t2 int64) (lo, hi int) {
	// lo = first index with ts[i] >= t1.
	i, j := 0, len(ts)
	for i < j {
		h := int(uint(i+j) >> 1)
		if ts[h] < t1 {
			i = h + 1
		} else {
			j = h
		}
	}
	lo = i
	// hi = first index with ts[i] > t2; rows before lo are < t1 <= t2,
	// so the search can start at lo.
	i, j = lo, len(ts)
	for i < j {
		h := int(uint(i+j) >> 1)
		if ts[h] <= t2 {
			i = h + 1
		} else {
			j = h
		}
	}
	return lo, i
}

// MaskedSum computes f(e, mask) for f = SUM, returning the sum of valid
// values and the valid count.
func MaskedSum(col []int64, m *Mask) (sum int64, count int) {
	for i := m.NextSet(0); i >= 0; i = m.NextSet(i + 1) {
		sum += col[i]
		count++
	}
	return sum, count
}

// MaskedMinMax returns min/max over valid values; ok is false when the
// mask is empty.
func MaskedMinMax(col []int64, m *Mask) (minV, maxV int64, ok bool) {
	i := m.NextSet(0)
	if i < 0 {
		return 0, 0, false
	}
	minV, maxV = col[i], col[i]
	for i = m.NextSet(i + 1); i >= 0; i = m.NextSet(i + 1) {
		if col[i] < minV {
			minV = col[i]
		}
		if col[i] > maxV {
			maxV = col[i]
		}
	}
	return minV, maxV, true
}

// NaturalJoin produces, for two sorted timestamp columns, the pairs of
// row indices with equal timestamps (Definition 2's join masks). The
// returned slices are parallel: left[i] joins right[i].
func NaturalJoin(lt, rt []int64) (left, right []int) {
	i, j := 0, 0
	for i < len(lt) && j < len(rt) {
		switch {
		case lt[i] < rt[j]:
			i++
		case lt[i] > rt[j]:
			j++
		default:
			left = append(left, i)
			right = append(right, j)
			i++
			j++
		}
	}
	return left, right
}

// JoinMasks converts NaturalJoin output into validity masks for both
// sides (mask_1 = [-1 if t1[i] = t2[j] else 0] in the paper's notation).
func JoinMasks(lt, rt []int64) (lm, rm *Mask) {
	lm, rm = NewMask(len(lt)), NewMask(len(rt))
	left, right := NaturalJoin(lt, rt)
	for k := range left {
		lm.Set(left[k])
		rm.Set(right[k])
	}
	return lm, rm
}

// Row is one output tuple of a row-returning query.
type Row struct {
	Time   int64
	Values []int64
}

// MergeByTime implements series concatenation e1 ∘ e2: the union of two
// series ordered by time. Equal timestamps merge into one row with both
// values (later columns appended); a missing side yields a NULL marker.
const NullValue = int64(-1 << 62) // sentinel for absent values in merges

// MergeByTime merges two (time, value) columns into time-ordered rows.
func MergeByTime(lt, lv, rt, rv []int64) []Row {
	out := make([]Row, 0, len(lt)+len(rt))
	i, j := 0, 0
	for i < len(lt) || j < len(rt) {
		switch {
		case j >= len(rt) || (i < len(lt) && lt[i] < rt[j]):
			out = append(out, Row{Time: lt[i], Values: []int64{lv[i], NullValue}})
			i++
		case i >= len(lt) || rt[j] < lt[i]:
			out = append(out, Row{Time: rt[j], Values: []int64{NullValue, rv[j]}})
			j++
		default:
			out = append(out, Row{Time: lt[i], Values: []int64{lv[i], rv[j]}})
			i++
			j++
		}
	}
	return out
}

// Window is one sliding-window instance w(Tmin + k·ΔT, ΔT), covering
// [Start, End).
type Window struct {
	Index int
	Start int64
	End   int64
}

// SlidingWindows enumerates the window instances of G_sw(Tmin, ΔT) up to
// tMax (inclusive), per Definition 2: k >= 0 and Tmin + k·ΔT <= tMax.
// The windows tumble: each starts where the previous ended.
func SlidingWindows(tMin, dT, tMax int64) ([]Window, error) {
	return SlidingWindowsHop(tMin, dT, dT, tMax)
}

// MaxWindowInstances bounds the number of window instances a single
// query may enumerate. Per-window partial state is materialized per
// worker, so an unbounded instance count (a tiny slide over a huge time
// range) would turn one query into an unbounded allocation.
const MaxWindowInstances = 1 << 16

// SlidingWindowsHop enumerates the instances of a hopping window
// specification: window k covers [Tmin + k·slide, Tmin + k·slide + width)
// for k >= 0 while the start does not exceed tMax. slide < width yields
// overlapping windows (a value belongs to several), slide = width
// tumbles, and slide > width samples with gaps. The instance count is
// capped at MaxWindowInstances.
func SlidingWindowsHop(tMin, width, slide, tMax int64) ([]Window, error) {
	if width <= 0 {
		return nil, errors.New("expr: window width must be positive")
	}
	if slide <= 0 {
		return nil, errors.New("expr: window slide must be positive")
	}
	if tMax < tMin {
		return nil, nil
	}
	if n := (tMax-tMin)/slide + 1; n > MaxWindowInstances {
		return nil, errors.New("expr: too many window instances")
	}
	var out []Window
	for k := int64(0); ; k++ {
		start := tMin + k*slide
		if start > tMax {
			break
		}
		out = append(out, Window{Index: int(k), Start: start, End: start + width})
	}
	return out, nil
}

// BitExtend implements Γ_ω→ω′ on already-unpacked small values: it is the
// identity on int64 columns here because the pipeline widens during
// unpacking; kept for expression completeness and used by tests.
func BitExtend(col []int64) []int64 { return col }

// Fraction returns the position-based fraction e[pos1:pos2].
func Fraction(col []int64, pos1, pos2 int) []int64 {
	if pos1 < 0 {
		pos1 = 0
	}
	if pos2 > len(col) {
		pos2 = len(col)
	}
	if pos1 >= pos2 {
		return nil
	}
	return col[pos1:pos2]
}

// AddColumns is the element-wise arithmetic e1 + e2 used by Q4
// (ts1.A + ts2.A on joined rows).
func AddColumns(a, b []int64) ([]int64, error) {
	if len(a) != len(b) {
		return nil, errors.New("expr: column length mismatch")
	}
	out := make([]int64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out, nil
}
