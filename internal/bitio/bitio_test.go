package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(4)
	bits := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1}
	for _, b := range bits {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestBigEndianByteLayout(t *testing.T) {
	w := NewWriter(2)
	w.WriteBits(0b10110010, 8)
	w.WriteBits(0b1, 1)
	got := w.Bytes()
	want := []byte{0b10110010, 0b10000000}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %08b want %08b", got, want)
	}
}

func TestWriteBitsSpansBytes(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0x3FF, 10) // 1111111111
	w.WriteBits(0x000, 10)
	w.WriteBits(0x2AA, 10) // 1010101010
	r := NewReader(w.Bytes())
	for i, want := range []uint64{0x3FF, 0x000, 0x2AA} {
		got, err := r.ReadBits(10)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("value %d: got %#x want %#x", i, got, want)
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(vals []uint64, widthsSeed int64) bool {
		rng := rand.New(rand.NewSource(widthsSeed))
		w := NewWriter(len(vals) * 8)
		widths := make([]uint, len(vals))
		for i, v := range vals {
			n := uint(rng.Intn(64) + 1)
			widths[i] = n
			w.WriteBits(v, n)
		}
		r := NewReader(w.Bytes())
		for i, v := range vals {
			n := widths[i]
			got, err := r.ReadBits(n)
			if err != nil {
				return false
			}
			want := v
			if n < 64 {
				want &= 1<<n - 1
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShortBuffer(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(9); err != ErrShortBuffer {
		t.Fatalf("got %v want ErrShortBuffer", err)
	}
	// The failed read must not consume bits.
	if v, err := r.ReadBits(8); err != nil || v != 0xFF {
		t.Fatalf("got %#x/%v want 0xff/nil", v, err)
	}
	if _, err := r.ReadBit(); err != ErrShortBuffer {
		t.Fatalf("got %v want ErrShortBuffer", err)
	}
}

func TestAlignWriter(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0b101, 3)
	w.Align()
	w.WriteBytes([]byte{0xAB})
	got := w.Bytes()
	want := []byte{0b10100000, 0xAB}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %x want %x", got, want)
	}
}

func TestAlignReader(t *testing.T) {
	r := NewReader([]byte{0b10100000, 0xAB})
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	r.Align()
	v, err := r.ReadBits(8)
	if err != nil || v != 0xAB {
		t.Fatalf("got %#x/%v want 0xab/nil", v, err)
	}
}

func TestSeekPeekSkip(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0xDEAD, 16)
	r := NewReader(w.Bytes())
	if v, _ := r.PeekBits(8); v != 0xDE {
		t.Fatalf("peek got %#x", v)
	}
	if r.Pos() != 0 {
		t.Fatalf("peek moved pos to %d", r.Pos())
	}
	if err := r.Skip(8); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.ReadBits(8); v != 0xAD {
		t.Fatalf("got %#x want 0xad", v)
	}
	if err := r.Seek(4); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.ReadBits(8); v != 0xEA {
		t.Fatalf("got %#x want 0xea", v)
	}
	if got := r.Remaining(); got != 4 {
		t.Fatalf("remaining got %d want 4", got)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0xFF, 8)
	w.Reset()
	w.WriteBits(0x0F, 4)
	got := w.Bytes()
	if !bytes.Equal(got, []byte{0xF0}) {
		t.Fatalf("got %x want f0", got)
	}
}

func TestBitLen(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0, 13)
	if got := w.BitLen(); got != 13 {
		t.Fatalf("got %d want 13", got)
	}
}

func TestZeroWidthWrite(t *testing.T) {
	w := NewWriter(1)
	w.WriteBits(0xFFFF, 0)
	if w.BitLen() != 0 {
		t.Fatalf("zero-width write produced %d bits", w.BitLen())
	}
}

func BenchmarkWriteBits10(b *testing.B) {
	w := NewWriter(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if w.BitLen() > 1<<22 {
			w.Reset()
		}
		w.WriteBits(uint64(i)&0x3FF, 10)
	}
}

func BenchmarkReadBits10(b *testing.B) {
	w := NewWriter(1 << 16)
	for i := 0; i < 1<<14; i++ {
		w.WriteBits(uint64(i)&0x3FF, 10)
	}
	buf := w.Bytes()
	r := NewReader(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 10 {
			r.Seek(0)
		}
		if _, err := r.ReadBits(10); err != nil {
			b.Fatal(err)
		}
	}
}
