// Package bitio provides big-endian bit-level readers and writers.
//
// IoT encoders (TS2DIFF, Sprintz, RLBE, Gorilla, Chimp) write data bit by
// bit in big-endian order: the first bit written becomes the most
// significant bit of the first byte. Writer and Reader are the shared
// substrate for every combined encoder in this repository.
package bitio

import (
	"errors"
	"fmt"
)

// ErrShortBuffer is returned when a Reader runs out of bits.
var ErrShortBuffer = errors.New("bitio: short buffer")

// ErrBitCount is returned when a read is asked for more than 64 bits at
// once. Bit counts on the decode path come from untrusted page headers,
// so this is an error, not a panic (nopanic-enforced).
var ErrBitCount = errors.New("bitio: bit count out of range")

// Writer accumulates bits most-significant-bit first into a byte slice.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  byte // partially filled byte
	nCur uint // bits currently in cur (0..7)
}

// NewWriter returns a Writer with capacity for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(bit uint) {
	w.cur = w.cur<<1 | byte(bit&1)
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64]; wider counts are a programmer error (encoders
// choose n from value ranges they computed, never from wire data).
//
//etsqp:trusted
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits n=%d out of range", n))
	}
	for n > 0 {
		free := 8 - w.nCur
		take := n
		if take > free {
			take = free
		}
		shift := n - take
		chunk := byte(v>>shift) & (1<<take - 1)
		w.cur = w.cur<<take | chunk
		w.nCur += take
		if w.nCur == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur, w.nCur = 0, 0
		}
		n -= take
	}
}

// WriteBytes appends whole bytes. It is only valid when the writer is
// byte-aligned; use Align first if necessary. Misuse is a programmer
// error on the encode path, hence the panic guard.
//
//etsqp:trusted
func (w *Writer) WriteBytes(p []byte) {
	if w.nCur != 0 {
		panic("bitio: WriteBytes on unaligned writer")
	}
	w.buf = append(w.buf, p...)
}

// Align pads the current byte with zero bits so the writer is byte-aligned.
func (w *Writer) Align() {
	if w.nCur != 0 {
		w.cur <<= 8 - w.nCur
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// BitLen reports the total number of bits written.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// Bytes flushes any partial byte (zero-padded) and returns the buffer.
// The writer remains usable; subsequent writes start a fresh byte.
func (w *Writer) Bytes() []byte {
	w.Align()
	return w.buf
}

// Reset clears the writer for reuse.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur = 0, 0
}

// Reader consumes bits most-significant-bit first from a byte slice.
type Reader struct {
	buf []byte
	pos int // absolute bit position
}

// NewReader returns a Reader over buf starting at bit 0.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBit reads a single bit.
//
//etsqp:hotpath
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= len(r.buf)*8 {
		return 0, ErrShortBuffer
	}
	b := r.buf[r.pos>>3]
	bit := uint(b>>(7-uint(r.pos&7))) & 1
	r.pos++
	return bit, nil
}

// ReadBits reads n bits (n in [0,64]) and returns them right-aligned.
// Counts above 64 return ErrBitCount: they can be induced by corrupt
// page headers, so the decode path must not crash on them.
//
//etsqp:hotpath
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		return 0, ErrBitCount
	}
	if r.pos+int(n) > len(r.buf)*8 {
		return 0, ErrShortBuffer
	}
	var v uint64
	rem := n
	for rem > 0 {
		byteIdx := r.pos >> 3
		bitOff := uint(r.pos & 7)
		avail := 8 - bitOff
		take := rem
		if take > avail {
			take = avail
		}
		chunk := uint64(r.buf[byteIdx]>>(avail-take)) & (1<<take - 1)
		v = v<<take | chunk
		r.pos += int(take)
		rem -= take
	}
	return v, nil
}

// Skip advances the read position by n bits.
func (r *Reader) Skip(n int) error {
	if r.pos+n > len(r.buf)*8 || r.pos+n < 0 {
		return ErrShortBuffer
	}
	r.pos += n
	return nil
}

// Align advances to the next byte boundary.
func (r *Reader) Align() {
	if rem := r.pos & 7; rem != 0 {
		r.pos += 8 - rem
	}
}

// Pos reports the current absolute bit position.
func (r *Reader) Pos() int { return r.pos }

// Seek sets the absolute bit position.
func (r *Reader) Seek(bitPos int) error {
	if bitPos < 0 || bitPos > len(r.buf)*8 {
		return ErrShortBuffer
	}
	r.pos = bitPos
	return nil
}

// Remaining reports the number of unread bits.
func (r *Reader) Remaining() int { return len(r.buf)*8 - r.pos }

// PeekBits reads n bits without consuming them.
func (r *Reader) PeekBits(n uint) (uint64, error) {
	save := r.pos
	v, err := r.ReadBits(n)
	r.pos = save
	return v, err
}
