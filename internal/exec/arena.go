package exec

// Scratch buffer classes. A morsel may need several live scratch
// buffers at once (a timestamp column while the value column decodes,
// a prune chunk while both are resolved), so the arena keys buffers by
// a small fixed class: two borrows of different classes never alias,
// while re-borrowing the same class reuses (and may overwrite) the
// previous buffer of that class.
const (
	ClassTime    = iota // timestamp-column scratch
	ClassValue          // value-column scratch
	ClassPrune          // chunked prune-scan buffers
	ClassScratch        // anything else
	numClasses
)

// Arena is a participant-owned scratch space: one grow-only int64
// buffer per class. Ownership follows the Worker — exactly one
// goroutine uses an arena at a time — so borrows need no
// synchronization and steady-state morsel execution performs zero
// allocations once the buffers have grown to the workload's page size.
type Arena struct {
	bufs [numClasses][]int64
}

// Int64 borrows the class's buffer resized to n values, growing it
// when needed. The contents are unspecified; the borrow is valid until
// the same class is borrowed again.
func (a *Arena) Int64(class, n int) []int64 {
	b := a.bufs[class]
	if cap(b) < n {
		b = make([]int64, n)
		a.bufs[class] = b
	}
	return b[:n]
}

// Bytes reports the arena's current footprint: the summed capacity of
// every class buffer in bytes. Queries record it as their arena
// high-water mark via exec.QueryStats.
func (a *Arena) Bytes() int64 {
	var n int64
	for i := range a.bufs {
		n += int64(cap(a.bufs[i])) * 8
	}
	return n
}

// Reset drops every buffer, returning the memory to the collector.
func (a *Arena) Reset() {
	for i := range a.bufs {
		a.bufs[i] = nil
	}
}
