package exec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunEveryMorselOnce checks that every index in [0, n) executes
// exactly once across a range of batch shapes.
func TestRunEveryMorselOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{1, 2, 3, 5, 16, 100, 1000} {
		for _, par := range []int{1, 2, 4, 8} {
			var hits = make([]atomic.Int64, n)
			err := p.Run(n, par, func(w *Worker, i int) error {
				hits[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("Run(n=%d par=%d): %v", n, par, err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("Run(n=%d par=%d): morsel %d executed %d times", n, par, i, got)
				}
			}
		}
	}
}

// TestRunSlotDisjoint checks the Worker.Slot contract: slots are in
// [0, par) and two concurrent participants never share a slot, so
// slot-indexed state is write-disjoint.
func TestRunSlotDisjoint(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	const n, par = 4000, 8
	// Each slot counts into its own cell without synchronization; the
	// race detector (CI -race job) fails this test if slots ever collide.
	counts := make([]int64, par)
	err := p.Run(n, par, func(w *Worker, i int) error {
		if w.Slot < 0 || w.Slot >= par {
			return fmt.Errorf("slot %d out of range [0,%d)", w.Slot, par)
		}
		counts[w.Slot]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("slot counts sum to %d, want %d", total, n)
	}
}

// TestRunError checks that the first morsel error is returned and that
// unclaimed morsels are skipped after a failure.
func TestRunError(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	boom := errors.New("boom")
	var ran atomic.Int64
	err := p.Run(1000, 3, func(w *Worker, i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	// Slot 0's owner claims index 0 first, so most of the batch should
	// drain without executing. Allow generous slack for morsels already
	// claimed before failed was observed.
	if got := ran.Load(); got > 900 {
		t.Fatalf("ran %d morsels after early failure, expected most to be skipped", got)
	}
}

// TestRunStealing forces skew (slot 0's chunk is slow) and checks that
// other participants steal from it.
func TestRunStealing(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n, par = 64, 4
	execBy := make([]int32, n) // 1 + slot of the executing participant
	err := p.Run(n, par, func(w *Worker, i int) error {
		// Indices in slot 0's chunk [0, 16) are slow: a straggler chunk.
		if i < n/par {
			time.Sleep(2 * time.Millisecond)
		}
		execBy[i] = int32(w.Slot) + 1 // disjoint: each index runs once
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The other participants drain their fast chunks in microseconds
	// while slot 0 sleeps, so part of the slow chunk must be stolen.
	stolen := 0
	for i := 0; i < n/par; i++ {
		if execBy[i] == 0 {
			t.Fatalf("morsel %d never ran", i)
		}
		if execBy[i] != 1 {
			stolen++
		}
	}
	if stolen == 0 {
		t.Fatal("no morsels stolen from the straggler chunk")
	}
}

// TestRunConcurrentBatches hammers one pool from many submitting
// goroutines, including nested submissions, to check that the
// submitter-participates design cannot deadlock and results stay exact.
func TestRunConcurrentBatches(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				var sum atomic.Int64
				err := p.Run(50, 4, func(w *Worker, i int) error {
					// Nested submission from inside a morsel.
					if i == 7 {
						var inner atomic.Int64
						if err := p.Run(10, 2, func(w *Worker, j int) error {
							inner.Add(1)
							return nil
						}); err != nil {
							return err
						}
						if inner.Load() != 10 {
							return fmt.Errorf("inner ran %d morsels", inner.Load())
						}
					}
					sum.Add(int64(i))
					return nil
				})
				if err != nil {
					errCh <- err
					return
				}
				if got := sum.Load(); got != 50*49/2 {
					errCh <- fmt.Errorf("sum = %d, want %d", got, 50*49/2)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestRunSerial checks par=1 runs entirely inline on the caller.
func TestRunSerial(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	order := make([]int, 0, 10)
	err := p.Run(10, 1, func(w *Worker, i int) error {
		if w.Slot != 0 {
			t.Errorf("serial run used slot %d", w.Slot)
		}
		order = append(order, i) // safe: single participant
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order[%d] = %d", i, got)
		}
	}
}

// TestRunParClamp checks par is clamped to n and to pool size + 1.
func TestRunParClamp(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	slots := make(map[int]bool)
	var mu sync.Mutex
	err := p.Run(100, 64, func(w *Worker, i int) error {
		mu.Lock()
		slots[w.Slot] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// par must have been clamped to size+1 = 3.
	for s := range slots {
		if s < 0 || s > 2 {
			t.Fatalf("slot %d outside clamped par", s)
		}
	}
	if err := p.Run(0, 4, func(w *Worker, i int) error { return errors.New("ran") }); err != nil {
		t.Fatalf("Run(0) = %v", err)
	}
}

// TestRunBatchTooLarge checks Run rejects batches whose bounds would
// not fit the packed 32-bit chunk indices.
func TestRunBatchTooLarge(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run(1<<31) did not panic")
		}
	}()
	p.Run(1<<31, 1, func(w *Worker, i int) error { return nil })
}

// TestPoolClose checks Close drains workers and returns.
func TestPoolClose(t *testing.T) {
	p := NewPool(4)
	var ran atomic.Int64
	if err := p.Run(100, 4, func(w *Worker, i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d", ran.Load())
	}
}

// TestArenaClasses checks class isolation and grow-only reuse.
func TestArenaClasses(t *testing.T) {
	a := &Arena{}
	ts := a.Int64(ClassTime, 8)
	vs := a.Int64(ClassValue, 8)
	for i := range ts {
		ts[i] = 100 + int64(i)
		vs[i] = 200 + int64(i)
	}
	if &ts[0] == &vs[0] {
		t.Fatal("different classes alias")
	}
	for i := range ts {
		if ts[i] != 100+int64(i) || vs[i] != 200+int64(i) {
			t.Fatal("class buffers overwrote each other")
		}
	}
	ts2 := a.Int64(ClassTime, 4)
	if &ts2[0] != &ts[0] {
		t.Fatal("same-class re-borrow did not reuse the buffer")
	}
	big := a.Int64(ClassTime, 1024)
	if len(big) != 1024 {
		t.Fatalf("grow returned len %d", len(big))
	}
	a.Reset()
	if a.bufs[ClassTime] != nil {
		t.Fatal("Reset kept a buffer")
	}
}

// TestDefaultPool checks the process-wide singleton is stable.
func TestDefaultPool(t *testing.T) {
	p1, p2 := Default(), Default()
	if p1 != p2 {
		t.Fatal("Default returned distinct pools")
	}
	if p1.Size() < 1 {
		t.Fatalf("default pool size %d", p1.Size())
	}
	var n atomic.Int64
	if err := p1.Run(32, 4, func(w *Worker, i int) error {
		n.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 32 {
		t.Fatalf("ran %d", n.Load())
	}
}
