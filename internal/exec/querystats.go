package exec

import "sync/atomic"

// QueryStats is a per-query resource-attribution sink threaded through
// Pool.RunWith: every batch a query submits accumulates worker CPU
// nanoseconds (summed per-morsel wall time across participants), morsel
// and steal counts, and the arena high-water mark of the participants
// that ran its morsels. The struct is pre-allocated by the caller (the
// engine embeds one per-query collector by value) and every update is a
// plain atomic add or CAS-max, so the accounting path performs zero
// allocations and stays nil-gated like tracing: Run(...) is exactly
// RunWith(nil, ...) and pays only a nil check per morsel.
type QueryStats struct {
	cpuNanos  atomic.Int64 //etsqp:atomic
	morsels   atomic.Int64 //etsqp:atomic
	steals    atomic.Int64 //etsqp:atomic
	arenaHigh atomic.Int64 //etsqp:atomic
}

// AddCPU folds already-measured nanoseconds of worker CPU time into the
// query's total.
func (q *QueryStats) AddCPU(ns int64) { q.cpuNanos.Add(ns) }

// noteArena raises the arena high-water mark to b if larger.
func (q *QueryStats) noteArena(b int64) {
	for {
		cur := q.arenaHigh.Load()
		if b <= cur || q.arenaHigh.CompareAndSwap(cur, b) {
			return
		}
	}
}

// CPUNanos returns the summed per-morsel wall time across participants.
// On parallel batches it exceeds the query's wall time by design — it
// is the CPU the query consumed, not its latency.
func (q *QueryStats) CPUNanos() int64 { return q.cpuNanos.Load() }

// Morsels returns how many morsels ran on the query's behalf.
func (q *QueryStats) Morsels() int64 { return q.morsels.Load() }

// Steals returns how many of those morsels were claimed from another
// participant's chunk.
func (q *QueryStats) Steals() int64 { return q.steals.Load() }

// ArenaHighWater returns the largest scratch-arena footprint (bytes)
// any participant held while running the query's morsels.
func (q *QueryStats) ArenaHighWater() int64 { return q.arenaHigh.Load() }

// Reset zeroes the sink for reuse.
func (q *QueryStats) Reset() {
	q.cpuNanos.Store(0)
	q.morsels.Store(0)
	q.steals.Store(0)
	q.arenaHigh.Store(0)
}
