// Package exec is the shared execution layer: a process-wide worker
// pool that every concurrent query draws from, fed by morsel batches
// (one morsel = one page or slice) with per-participant index deques
// and work stealing, so a skewed page no longer gates query latency the
// way the paper's static core-level splits do (Section III-C). Each
// worker owns a reusable scratch arena (arena.go) and the layer fronts
// storage with a byte-budgeted decoded-page cache (cache.go), so hot
// pages decode once across the whole query stream.
//
// # Scheduling model
//
// A call to Pool.Run(n, par, fn) submits a batch of n morsels executed
// by at most par participants: the submitting goroutine itself plus up
// to par-1 pool workers. The index space [0, n) is pre-split into par
// contiguous chunks, one per participant slot; a participant claims
// from the front of its own chunk and, when that drains, steals single
// morsels from the back of the other chunks. Claims and steals are one
// CAS on a packed (next, limit) word, so the steady-state scheduling
// cost is a handful of atomic operations per morsel and zero
// allocations (batches, chunk words and submitter identities are all
// recycled through freelists; enforced by AllocsPerRun tests).
//
// The submitter always participates, so Run makes progress even when
// every pool worker is busy with other batches — nested or heavily
// concurrent submission cannot deadlock, and par=1 runs entirely on the
// calling goroutine with no cross-goroutine traffic at all.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"etsqp/internal/obs"
)

// Worker is one executing participant: a pool worker goroutine or the
// goroutine that submitted the batch. Its Arena is scratch space owned
// exclusively by the participant for the duration of a morsel.
type Worker struct {
	// ID identifies the worker within the pool (submitter identities are
	// numbered past the pool size). Diagnostic only.
	ID int
	// Slot is the participant's slot in the batch currently being
	// executed, in [0, par). Slots are assigned exactly once per batch,
	// so Slot-indexed state (per-slot partial aggregates) is
	// write-disjoint across participants.
	Slot int
	// Arena is the participant's private scratch space.
	Arena *Arena
}

// batch is one Run invocation: n morsels, par participant slots.
type batch struct {
	n   int
	par int
	fn  func(w *Worker, i int) error

	// chunks[s] packs the (next, limit) index range owned by slot s.
	// The owner claims next (front); thieves decrement limit (back).
	// Elements are touched only through claimFront/stealBack CAS loops,
	// but the slice header itself is resized in getBatchLocked, so the
	// field cannot carry the //etsqp:atomic contract.
	chunks []atomic.Uint64

	// Guarded by the POOL's mutex, not a field of this struct, which the
	// //etsqp:guardedby directive cannot express: helper slots remaining
	// and helpers that joined. Joining is only possible while the batch
	// is listed in Pool.active, so the joined count is final once the
	// submitter unlists the batch.
	slots  int
	joined int

	// qs, when non-nil, receives per-query resource attribution for this
	// batch. Set under the pool mutex before the batch is listed and read
	// by helpers that joined through that mutex, so the plain field is
	// ordered; cleared on recycle so the sink cannot outlive its query.
	qs *QueryStats

	done   atomic.Int64 //etsqp:atomic — morsels completed (executed or skipped after failure)
	steals atomic.Int64 //etsqp:atomic
	failed atomic.Bool  //etsqp:atomic

	errMu sync.Mutex
	err   error //etsqp:guardedby errMu

	// mu/cond wake the submitter when helpers finish; exited counts
	// helpers whose run loop returned.
	mu     sync.Mutex
	cond   *sync.Cond
	exited int //etsqp:guardedby mu
}

// Pool is a set of long-lived worker goroutines shared by all
// concurrent queries. The zero value is not usable; use NewPool or
// Default.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond // workers wait here for batches
	active []*batch   //etsqp:guardedby mu — batches that may still accept helpers
	closed bool       //etsqp:guardedby mu

	size      int            // immutable after NewPool
	freeBatch []*batch       //etsqp:guardedby mu
	freeSub   []*Worker      //etsqp:guardedby mu — recycled submitter identities
	nextSubID int            //etsqp:guardedby mu
	wg        sync.WaitGroup // worker goroutines, for Close
}

// NewPool starts a pool with n worker goroutines (n<1 selects
// GOMAXPROCS). Call Close to stop the workers.
func NewPool(n int) *Pool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{size: n, nextSubID: n}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		w := &Worker{ID: i, Arena: &Arena{}}
		go p.workerLoop(w)
	}
	return p
}

// Size reports the number of pool worker goroutines.
func (p *Pool) Size() int { return p.size }

// Close stops the worker goroutines after the active batches drain.
// Run must not be called after Close.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// defaultPool is the process-wide pool, sized to GOMAXPROCS at first
// use. Engines fall back to it when no explicit pool is configured, so
// all concurrent queries in a process share one set of workers.
var (
	defaultPool *Pool
	defaultOnce sync.Once
)

// Default returns the process-wide shared pool.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}

// pack encodes a chunk's (next, limit) index pair into one word.
func pack(next, limit int) uint64 {
	return uint64(next)<<32 | uint64(uint32(limit))
}

// claimFront pops the next index off the front of a chunk (the owner's
// side of the deque). Returns -1 when the chunk is empty.
//
//etsqp:hotpath
func claimFront(c *atomic.Uint64) int {
	for {
		v := c.Load()
		next, limit := int(v>>32), int(uint32(v))
		if next >= limit {
			return -1
		}
		if c.CompareAndSwap(v, v+(1<<32)) {
			return next
		}
	}
}

// stealBack pops one index off the back of a chunk (the thief's side).
// Returns -1 when the chunk is empty.
//
//etsqp:hotpath
func stealBack(c *atomic.Uint64) int {
	for {
		v := c.Load()
		next, limit := int(v>>32), int(uint32(v))
		if next >= limit {
			return -1
		}
		if c.CompareAndSwap(v, v-1) {
			return limit - 1
		}
	}
}

// claim returns the next morsel index for the participant in slot, and
// whether it was stolen from another slot's chunk. Own chunk first
// (front), then the other chunks round-robin (back). Returns -1 when
// the batch has no unclaimed morsels.
//
//etsqp:hotpath
func (b *batch) claim(slot int) (int, bool) {
	if i := claimFront(&b.chunks[slot]); i >= 0 {
		return i, false
	}
	for k := 1; k < len(b.chunks); k++ {
		t := slot + k
		if t >= len(b.chunks) {
			t -= len(b.chunks)
		}
		if i := stealBack(&b.chunks[t]); i >= 0 {
			return i, true
		}
	}
	return -1, false
}

// runLoop claims and executes morsels until none remain. After a morsel
// fails, remaining claims drain without executing fn so completion
// accounting stays exact. Per-morsel timing is shared between the obs
// histogram and the batch's QueryStats sink: the clock is read once and
// only when at least one consumer wants it, so the plain Run path with
// collection off still pays nothing.
func (b *batch) runLoop(w *Worker) {
	for {
		i, stolen := b.claim(w.Slot)
		if i < 0 {
			break
		}
		if stolen {
			b.steals.Add(1)
		}
		if !b.failed.Load() {
			if b.qs != nil || obs.Enabled() {
				start := time.Now()
				b.runOne(w, i)
				elapsed := int64(time.Since(start))
				if b.qs != nil {
					b.qs.cpuNanos.Add(elapsed)
				}
				if obs.Enabled() {
					obs.ExecHistMorsel.Observe(elapsed)
				}
			} else {
				b.runOne(w, i)
			}
		}
		b.done.Add(1)
	}
	if b.qs != nil {
		b.qs.noteArena(w.Arena.Bytes())
	}
}

// runOne executes one morsel, recording the first error.
func (b *batch) runOne(w *Worker, i int) {
	if err := b.fn(w, i); err != nil {
		b.errMu.Lock()
		if b.err == nil {
			b.err = err
		}
		b.errMu.Unlock()
		b.failed.Store(true)
	}
}

// firstErr returns the first error any morsel recorded.
func (b *batch) firstErr() error {
	b.errMu.Lock()
	defer b.errMu.Unlock()
	return b.err
}

// workerLoop is one pool worker: sleep until a batch needs helpers,
// reserve a slot, drain, repeat.
func (p *Pool) workerLoop(w *Worker) {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		var b *batch
		for _, cand := range p.active {
			if cand.slots > 0 {
				cand.slots--
				cand.joined++
				w.Slot = cand.par - 1 - cand.slots
				b = cand
				break
			}
		}
		if b == nil {
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
			continue
		}
		p.mu.Unlock()
		b.runLoop(w)
		b.mu.Lock()
		b.exited++
		b.cond.Broadcast()
		b.mu.Unlock()
		p.mu.Lock()
	}
}

// Run executes fn(w, i) for every i in [0, n) using at most par
// participants: the calling goroutine plus up to par-1 pool workers.
// It returns the first error any morsel produced; once a morsel fails,
// unclaimed morsels are skipped. Run blocks until every claimed morsel
// has finished, so all writes made by fn happen-before Run returns.
// n must be below 1<<31: chunk (next, limit) pairs are packed into 32
// bits each, so larger batches would silently truncate their bounds.
func (p *Pool) Run(n, par int, fn func(w *Worker, i int) error) error {
	return p.RunWith(nil, n, par, fn)
}

// RunWith is Run with a per-query resource-attribution sink: when qs is
// non-nil the batch charges it per-morsel CPU nanoseconds, morsel and
// steal counts, and the participants' arena high-water mark. A nil qs
// is exactly Run — the accounting is nil-gated like tracing, so the
// plain path pays one predicted branch per morsel and allocates
// nothing either way (the sink is caller-allocated).
func (p *Pool) RunWith(qs *QueryStats, n, par int, fn func(w *Worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	if int64(n) >= 1<<31 {
		panic("exec: Run batch size exceeds 1<<31 morsels")
	}
	if par < 1 {
		par = 1
	}
	if par > n {
		par = n
	}
	if par > p.size+1 {
		par = p.size + 1
	}

	p.mu.Lock()
	b := p.getBatchLocked(qs, n, par, fn)
	sub := p.getSubmitterLocked()
	if par > 1 {
		p.active = append(p.active, b)
		if obs.Enabled() {
			obs.ExecHistQueueDepth.Observe(int64(len(p.active)))
		}
	}
	p.mu.Unlock()
	if par > 1 {
		p.cond.Broadcast()
	}

	sub.Slot = 0
	b.runLoop(sub)

	joined := 0
	if par > 1 {
		p.mu.Lock()
		p.unlistLocked(b)
		joined = b.joined
		p.mu.Unlock()
	}
	b.mu.Lock()
	for b.done.Load() < int64(b.n) || b.exited < joined {
		b.cond.Wait()
	}
	b.mu.Unlock()

	err := b.firstErr()
	if qs != nil {
		qs.morsels.Add(int64(n))
		qs.steals.Add(b.steals.Load())
	}
	if obs.Enabled() {
		obs.ExecBatches.Inc()
		obs.ExecMorsels.Add(int64(n))
		obs.ExecSteals.Add(b.steals.Load())
	}
	p.mu.Lock()
	p.putBatchLocked(b)
	p.freeSub = append(p.freeSub, sub)
	p.mu.Unlock()
	return err
}

// getBatchLocked recycles (or builds) a batch and carves the morsel
// index space into one contiguous chunk per participant slot. A
// recycled batch is quiescent — Run waited for every participant — but
// exited and err live under the batch's own mutexes, so their resets
// take those (uncontended) locks rather than racing by fiat.
//
//etsqp:locked mu
func (p *Pool) getBatchLocked(qs *QueryStats, n, par int, fn func(w *Worker, i int) error) *batch {
	var b *batch
	if k := len(p.freeBatch); k > 0 {
		b = p.freeBatch[k-1]
		p.freeBatch = p.freeBatch[:k-1]
	} else {
		b = &batch{}
		b.cond = sync.NewCond(&b.mu)
	}
	b.n, b.par, b.fn = n, par, fn
	b.qs = qs
	b.slots, b.joined = par-1, 0
	b.mu.Lock()
	b.exited = 0
	b.mu.Unlock()
	b.done.Store(0)
	b.steals.Store(0)
	b.failed.Store(false)
	b.errMu.Lock()
	b.err = nil
	b.errMu.Unlock()
	if cap(b.chunks) < par {
		b.chunks = make([]atomic.Uint64, par)
	}
	b.chunks = b.chunks[:par]
	base, rem := n/par, n%par
	lo := 0
	for s := 0; s < par; s++ {
		size := base
		if s < rem {
			size++
		}
		b.chunks[s].Store(pack(lo, lo+size))
		lo += size
	}
	return b
}

// putBatchLocked recycles a finished batch, dropping the fn reference
// so the caller's closure (and anything it captures) can be collected.
//
//etsqp:locked mu
func (p *Pool) putBatchLocked(b *batch) {
	b.fn = nil
	b.qs = nil
	p.freeBatch = append(p.freeBatch, b)
}

// getSubmitterLocked recycles (or mints) a Worker identity for the
// submitting goroutine, so the submitter has an arena like any worker.
//
//etsqp:locked mu
func (p *Pool) getSubmitterLocked() *Worker {
	if k := len(p.freeSub); k > 0 {
		w := p.freeSub[k-1]
		p.freeSub = p.freeSub[:k-1]
		return w
	}
	w := &Worker{ID: p.nextSubID, Arena: &Arena{}}
	p.nextSubID++
	return w
}

// unlistLocked removes the batch from the active list, preserving
// order, without allocating.
//
//etsqp:locked mu
func (p *Pool) unlistLocked(b *batch) {
	for i, cand := range p.active {
		if cand == b {
			copy(p.active[i:], p.active[i+1:])
			p.active[len(p.active)-1] = nil
			p.active = p.active[:len(p.active)-1]
			return
		}
	}
}
