package exec

import (
	"sync/atomic"
	"testing"

	"etsqp/internal/storage"
)

// TestRunAllocs proves the scheduler itself is allocation-free at
// steady state: after a warm-up Run has grown the freelists and chunk
// arrays, further batches of the same shape allocate nothing.
func TestRunAllocs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	fn := func(w *Worker, i int) error {
		sink.Add(int64(i))
		return nil
	}
	// Warm-up: builds the batch, chunk array and submitter identity.
	for i := 0; i < 3; i++ {
		if err := p.Run(64, 4, fn); err != nil {
			t.Fatal(err)
		}
	}
	got := testing.AllocsPerRun(50, func() {
		if err := p.Run(64, 4, fn); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Fatalf("steady-state Run allocates %.1f times per batch, want 0", got)
	}
}

// TestRunSerialAllocs covers the par=1 inline path.
func TestRunSerialAllocs(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var sink atomic.Int64
	fn := func(w *Worker, i int) error {
		sink.Add(1)
		return nil
	}
	if err := p.Run(16, 1, fn); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(50, func() {
		if err := p.Run(16, 1, fn); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Fatalf("serial Run allocates %.1f times per batch, want 0", got)
	}
}

// TestCacheGetAllocs proves cache hits are allocation-free.
func TestCacheGetAllocs(t *testing.T) {
	c := NewPageCache(1 << 20)
	p := &storage.Page{Header: storage.PageHeader{Count: 8}}
	c.Put("s", p, make([]int64, 8))
	var n int64
	got := testing.AllocsPerRun(100, func() {
		v, ok := c.Get(p)
		if !ok {
			t.Fatal("miss")
		}
		n += v[0]
	})
	if got != 0 {
		t.Fatalf("cache hit allocates %.1f times, want 0", got)
	}
}

// TestArenaAllocs proves steady-state borrows are allocation-free once
// the class buffers have grown.
func TestArenaAllocs(t *testing.T) {
	a := &Arena{}
	a.Int64(ClassTime, 4096)
	a.Int64(ClassValue, 4096)
	var n int64
	got := testing.AllocsPerRun(100, func() {
		ts := a.Int64(ClassTime, 4096)
		vs := a.Int64(ClassValue, 1024)
		n += ts[0] + vs[0]
	})
	if got != 0 {
		t.Fatalf("arena borrow allocates %.1f times, want 0", got)
	}
}
