package exec

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestRunWithQueryStats checks RunWith charges the caller's collector
// with the batch's morsel count, steal count, per-morsel CPU time and
// the participants' arena high-water mark.
func TestRunWithQueryStats(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var ran atomic.Int64
	fn := func(w *Worker, i int) error {
		w.Arena.Int64(ClassTime, 512)
		if i == 0 {
			// Make at least one morsel take measurable wall time so the
			// CPU accumulator is provably nonzero.
			time.Sleep(200 * time.Microsecond)
		}
		ran.Add(1)
		return nil
	}
	var qs QueryStats
	if err := p.RunWith(&qs, 32, 4, fn); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 32 {
		t.Fatalf("ran %d morsels, want 32", got)
	}
	if got := qs.Morsels(); got != 32 {
		t.Errorf("Morsels() = %d, want 32", got)
	}
	if got := qs.CPUNanos(); got < int64(200*time.Microsecond) {
		t.Errorf("CPUNanos() = %d, want at least the slept 200µs", got)
	}
	if s := qs.Steals(); s < 0 || s > 32 {
		t.Errorf("Steals() = %d, want within [0, 32]", s)
	}
	// Every participant that ran a morsel borrowed at least 512 int64s.
	if got := qs.ArenaHighWater(); got < 512*8 {
		t.Errorf("ArenaHighWater() = %d bytes, want >= %d", got, 512*8)
	}

	// A second batch accumulates into the same collector.
	before := qs.Morsels()
	if err := p.RunWith(&qs, 8, 1, func(w *Worker, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := qs.Morsels(); got != before+8 {
		t.Errorf("Morsels() = %d after second batch, want %d", got, before+8)
	}

	qs.Reset()
	if qs.Morsels() != 0 || qs.Steals() != 0 || qs.CPUNanos() != 0 || qs.ArenaHighWater() != 0 {
		t.Errorf("Reset left residue: %+v", map[string]int64{
			"morsels": qs.Morsels(), "steals": qs.Steals(),
			"cpu": qs.CPUNanos(), "arena": qs.ArenaHighWater(),
		})
	}
}

// TestRunWithNilStats checks a nil collector is exactly Run: the batch
// executes and nothing is charged anywhere.
func TestRunWithNilStats(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var ran atomic.Int64
	if err := p.RunWith(nil, 16, 2, func(w *Worker, i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 16 {
		t.Fatalf("ran %d morsels, want 16", got)
	}
}

// TestRunWithQueryStatsAllocs proves per-query accounting keeps the
// pool's zero-allocation steady state: charging a caller-allocated
// collector must cost no allocations, exactly like the plain Run path.
func TestRunWithQueryStatsAllocs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	fn := func(w *Worker, i int) error {
		sink.Add(1)
		return nil
	}
	var qs QueryStats
	// Warm-up: builds the batch, chunk array and submitter identity.
	for i := 0; i < 3; i++ {
		if err := p.RunWith(&qs, 64, 4, fn); err != nil {
			t.Fatal(err)
		}
	}
	got := testing.AllocsPerRun(50, func() {
		if err := p.RunWith(&qs, 64, 4, fn); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Fatalf("steady-state RunWith allocates %.1f times per batch, want 0", got)
	}
}
