package exec

import (
	"sync"

	"etsqp/internal/obs"
	"etsqp/internal/storage"
)

// PageCache is a byte-budgeted cache of fully decoded page columns,
// shared by every query on the store. Pages are immutable once
// published (storage only ever appends new pages or swaps in freshly
// built ones), so the page pointer is the identity of (series, page,
// column) — a series' time and value columns are distinct *Page values
// — and a cached decode can never go stale in place. Entries carry
// their series name so ingest mutations (Append/AppendPages/Compact,
// via Store.OnMutate) can drop a series' entries; for Compact that
// reclaims budget from pages that no longer exist, for appends it is
// hygiene only.
//
// Eviction is clock (second-chance): a hit sets the entry's reference
// bit; the sweep clears set bits and evicts the first clear entry, so
// hot pages survive scans of cold ones on a single byte budget.
//
// The returned slices are shared and MUST be treated as read-only by
// callers.
type PageCache struct {
	mu      sync.Mutex
	budget  int64                         // immutable after NewPageCache
	used    int64                         //etsqp:guardedby mu
	entries map[*storage.Page]*cacheEntry //etsqp:guardedby mu
	ring    []*cacheEntry                 //etsqp:guardedby mu
	hand    int                           //etsqp:guardedby mu
	free    []*cacheEntry                 //etsqp:guardedby mu
}

type cacheEntry struct {
	page   *storage.Page
	series string
	vals   []int64
	bytes  int64
	ref    bool
}

// NewPageCache builds a cache holding at most budget bytes of decoded
// values (8 bytes per value; entry bookkeeping is not charged).
func NewPageCache(budget int64) *PageCache {
	return &PageCache{
		budget:  budget,
		entries: make(map[*storage.Page]*cacheEntry),
	}
}

// Get returns the cached decode of a page column. The slice is shared:
// callers must not write through it. Steady-state hits are
// allocation-free.
//
//etsqp:hotpath
func (c *PageCache) Get(p *storage.Page) ([]int64, bool) {
	// vals must be captured under the lock: a concurrent eviction or
	// invalidation nils e.vals and recycles the entry onto the free
	// list, where a Put can reassign it to a different page. The
	// underlying array is immutable, so holding the slice past eviction
	// is safe; only the field read needs synchronizing.
	var vals []int64
	c.mu.Lock()
	e, ok := c.entries[p]
	if ok {
		e.ref = true
		vals = e.vals
	}
	c.mu.Unlock()
	if obs.Enabled() {
		if ok {
			obs.ExecCacheHits.Inc()
		} else {
			obs.ExecCacheMisses.Inc()
		}
	}
	return vals, ok
}

// Put inserts a fully decoded page column, evicting colder entries
// until the budget holds. Values larger than the whole budget are not
// cached. The cache takes ownership of vals: the caller must not write
// to it afterwards.
//
// A decode racing with Compact can Put a page that InvalidateSeries
// just dropped (decode old page, Compact swaps pages, invalidate runs,
// Put admits the dead page). The entry's content stays correct (pages
// are immutable) but it is unreachable for future queries; it occupies
// budget only until the clock hand evicts it, so no epoch check is
// needed.
//
// Put only runs on a decode miss, which already allocated the column
// it admits; ring growth and entry bookkeeping are cold by the same
// amortization.
//
//etsqp:coldpath
func (c *PageCache) Put(series string, p *storage.Page, vals []int64) {
	bytes := int64(len(vals)) * 8
	if bytes > c.budget {
		return
	}
	c.mu.Lock()
	if _, ok := c.entries[p]; ok {
		c.mu.Unlock()
		return // raced with another decode of the same page
	}
	evictions, evictedBytes := c.evictForLocked(bytes)
	e := c.getEntryLocked()
	e.page, e.series, e.vals, e.bytes, e.ref = p, series, vals, bytes, false
	c.entries[p] = e
	c.ring = append(c.ring, e)
	c.used += bytes
	c.mu.Unlock()
	if obs.Enabled() {
		obs.ExecCacheInserts.Inc()
		obs.ExecCacheInsertBytes.Add(bytes)
		if evictions > 0 {
			obs.ExecCacheEvictions.Add(evictions)
			obs.ExecCacheEvictedBytes.Add(evictedBytes)
		}
	}
}

// InvalidateSeries drops every entry of the series and returns how many
// were dropped. Wired to Store.OnMutate so ingest keeps the cache
// consistent.
func (c *PageCache) InvalidateSeries(series string) int {
	c.mu.Lock()
	kept := c.ring[:0]
	dropped := 0
	for _, e := range c.ring {
		if e.series != series {
			kept = append(kept, e)
			continue
		}
		delete(c.entries, e.page)
		c.used -= e.bytes
		c.putEntryLocked(e)
		dropped++
	}
	for i := len(kept); i < len(c.ring); i++ {
		c.ring[i] = nil
	}
	c.ring = kept
	c.hand = 0
	c.mu.Unlock()
	if dropped > 0 && obs.Enabled() {
		obs.ExecCacheInvalidated.Add(int64(dropped))
	}
	return dropped
}

// Len reports the number of cached page columns.
func (c *PageCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// UsedBytes reports the decoded bytes currently held.
func (c *PageCache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// evictForLocked runs the clock hand until need bytes fit in budget.
//
//etsqp:locked mu
func (c *PageCache) evictForLocked(need int64) (evictions, evictedBytes int64) {
	for c.used+need > c.budget && len(c.ring) > 0 {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		e := c.ring[c.hand]
		if e.ref {
			e.ref = false
			c.hand++
			continue
		}
		delete(c.entries, e.page)
		c.used -= e.bytes
		evictions++
		evictedBytes += e.bytes
		// Swap-remove at the hand; the clock order perturbation is
		// harmless (second chance only needs approximate recency).
		last := len(c.ring) - 1
		c.ring[c.hand] = c.ring[last]
		c.ring[last] = nil
		c.ring = c.ring[:last]
		c.putEntryLocked(e)
	}
	return evictions, evictedBytes
}

//etsqp:locked mu
func (c *PageCache) getEntryLocked() *cacheEntry {
	if k := len(c.free); k > 0 {
		e := c.free[k-1]
		c.free = c.free[:k-1]
		return e
	}
	return &cacheEntry{}
}

//etsqp:locked mu
func (c *PageCache) putEntryLocked(e *cacheEntry) {
	e.page, e.vals, e.series = nil, nil, ""
	c.free = append(c.free, e)
}
