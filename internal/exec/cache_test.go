package exec

import (
	"fmt"
	"sync"
	"testing"

	"etsqp/internal/storage"
)

func testPages(n int) []*storage.Page {
	out := make([]*storage.Page, n)
	for i := range out {
		out[i] = &storage.Page{Header: storage.PageHeader{Count: 16}}
	}
	return out
}

func vals(n int, seed int64) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = seed + int64(i)
	}
	return v
}

func TestCacheHitMiss(t *testing.T) {
	c := NewPageCache(1 << 20)
	pages := testPages(3)
	if _, ok := c.Get(pages[0]); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("s", pages[0], vals(16, 100))
	got, ok := c.Get(pages[0])
	if !ok {
		t.Fatal("miss after Put")
	}
	if got[0] != 100 || got[15] != 115 {
		t.Fatalf("cached values wrong: %v", got[:2])
	}
	if _, ok := c.Get(pages[1]); ok {
		t.Fatal("hit for a page never inserted")
	}
	if c.Len() != 1 || c.UsedBytes() != 16*8 {
		t.Fatalf("Len=%d Used=%d", c.Len(), c.UsedBytes())
	}
	// Double insert of the same page is a no-op.
	c.Put("s", pages[0], vals(16, 999))
	if got, _ := c.Get(pages[0]); got[0] != 100 {
		t.Fatal("duplicate Put replaced the entry")
	}
}

func TestCacheBudgetEviction(t *testing.T) {
	// Budget of 4 entries of 16 values each.
	c := NewPageCache(4 * 16 * 8)
	pages := testPages(6)
	for i, p := range pages[:4] {
		c.Put("s", p, vals(16, int64(i)*1000))
	}
	if c.Len() != 4 {
		t.Fatalf("Len=%d", c.Len())
	}
	// Touch pages[3] so its ref bit protects it from the sweep.
	if _, ok := c.Get(pages[3]); !ok {
		t.Fatal("expected hit")
	}
	// Two more inserts force two evictions.
	c.Put("s", pages[4], vals(16, 4000))
	c.Put("s", pages[5], vals(16, 5000))
	if c.Len() != 4 {
		t.Fatalf("after eviction Len=%d, want 4", c.Len())
	}
	if c.UsedBytes() != 4*16*8 {
		t.Fatalf("UsedBytes=%d", c.UsedBytes())
	}
	// The referenced page survived the sweep (second chance).
	if _, ok := c.Get(pages[3]); !ok {
		t.Fatal("referenced page was evicted")
	}
	// An entry larger than the whole budget is refused outright.
	c.Put("s", testPages(1)[0], vals(4*16+1, 0))
	if c.Len() != 4 {
		t.Fatal("over-budget value was admitted")
	}
}

func TestCacheInvalidateSeries(t *testing.T) {
	c := NewPageCache(1 << 20)
	a, b := testPages(3), testPages(2)
	for i, p := range a {
		c.Put("a", p, vals(16, int64(i)))
	}
	for i, p := range b {
		c.Put("b", p, vals(16, int64(i)))
	}
	if got := c.InvalidateSeries("a"); got != 3 {
		t.Fatalf("invalidated %d, want 3", got)
	}
	for _, p := range a {
		if _, ok := c.Get(p); ok {
			t.Fatal("invalidated entry still served")
		}
	}
	for _, p := range b {
		if _, ok := c.Get(p); !ok {
			t.Fatal("unrelated series was dropped")
		}
	}
	if c.Len() != 2 || c.UsedBytes() != 2*16*8 {
		t.Fatalf("Len=%d Used=%d", c.Len(), c.UsedBytes())
	}
	if got := c.InvalidateSeries("a"); got != 0 {
		t.Fatalf("second invalidation dropped %d", got)
	}
}

// TestCacheGetEvictionRace pins the Get path that must capture e.vals
// under the lock: with a tiny budget, entries are evicted and their
// structs recycled onto the free list while readers hold them, so a
// late field read would observe nil or another page's values.
func TestCacheGetEvictionRace(t *testing.T) {
	c := NewPageCache(2 * 16 * 8) // room for just two entries
	pages := testPages(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 200; rep++ {
				for i, p := range pages {
					v, ok := c.Get(p)
					if ok {
						if v == nil {
							panic("Get returned ok with nil values")
						}
						if v[0] != int64(i)*1000 {
							panic(fmt.Sprintf("page %d served values of another page: %d", i, v[0]))
						}
					} else {
						c.Put("s", p, vals(16, int64(i)*1000))
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestCacheConcurrent(t *testing.T) {
	c := NewPageCache(64 * 16 * 8)
	pages := testPages(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				for i, p := range pages {
					if v, ok := c.Get(p); ok {
						if v[0] != int64(i) {
							panic(fmt.Sprintf("page %d served %d", i, v[0]))
						}
						continue
					}
					c.Put(fmt.Sprintf("s%d", i%4), p, vals(16, int64(i)))
				}
				c.InvalidateSeries(fmt.Sprintf("s%d", g%4))
			}
		}(g)
	}
	wg.Wait()
	if used, budget := c.UsedBytes(), int64(64*16*8); used > budget {
		t.Fatalf("used %d exceeds budget %d", used, budget)
	}
}
