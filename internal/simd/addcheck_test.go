package simd

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// TestAddCheck32AgainstBig property-tests the Section VI-C lane overflow
// check against exact big-int arithmetic: for every lane, the sum must be
// the two's-complement wrap of the exact signed sum, and the overflow
// mask must be all-ones exactly when the exact sum leaves int32.
func TestAddCheck32AgainstBig(t *testing.T) {
	check := func(a, b U32x8) {
		t.Helper()
		sum, overflow := AddCheck32(a, b)
		for i := 0; i < Lanes32; i++ {
			exact := new(big.Int).Add(
				big.NewInt(int64(int32(a[i]))),
				big.NewInt(int64(int32(b[i]))),
			)
			if want := uint32(exact.Int64()); sum[i] != want {
				t.Fatalf("lane %d: sum(%#x, %#x) = %#x, want %#x", i, a[i], b[i], sum[i], want)
			}
			wrapped := exact.Int64() > math.MaxInt32 || exact.Int64() < math.MinInt32
			switch overflow[i] {
			case 0:
				if wrapped {
					t.Fatalf("lane %d: %d + %d = %s wraps int32 but overflow lane is clear",
						i, int32(a[i]), int32(b[i]), exact)
				}
			case 0xFFFFFFFF:
				if !wrapped {
					t.Fatalf("lane %d: %d + %d = %s fits int32 but overflow lane is set",
						i, int32(a[i]), int32(b[i]), exact)
				}
			default:
				t.Fatalf("lane %d: overflow lane %#x is neither clear nor all-ones", i, overflow[i])
			}
		}
	}

	// Deterministic boundary lanes: both signs of both extremes, the
	// exact wrap points, and zero.
	boundary := []uint32{
		0, 1, 0x7FFFFFFF, 0x80000000, 0x80000001, 0xFFFFFFFF,
		0x40000000, 0xC0000000,
	}
	var a, b U32x8
	for _, x := range boundary {
		for _, y := range boundary {
			for i := 0; i < Lanes32; i++ {
				a[i], b[i] = x, y
			}
			check(a, b)
		}
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5000; trial++ {
		for i := 0; i < Lanes32; i++ {
			a[i] = rng.Uint32()
			b[i] = rng.Uint32()
			// Bias some lanes toward the boundaries, where the sign trick
			// earns its keep.
			if trial%3 == 0 {
				a[i] = boundary[rng.Intn(len(boundary))]
			}
		}
		check(a, b)
	}
}
