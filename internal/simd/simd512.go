package simd

// 512-bit register geometry (AVX-512 target). The paper's design
// "can extend to other quantities and instruction sets" (Section II-B);
// these types mirror the 256-bit operations at sixteen 32-bit lanes so
// the pipeline can be instantiated at either width.
const (
	Width512Bits  = 512
	Width512Bytes = 64
	Lanes32x16    = 16
)

// U32x16 is a 512-bit vector viewed as sixteen 32-bit lanes.
type U32x16 [16]uint32

// GatherBytes64 builds a 64-byte vector from arbitrary offsets of a
// window (vpermb-class operation on AVX-512 VBMI).
func GatherBytes64(window []byte, idx *[64]int32) [64]byte {
	var out [64]byte
	for i := 0; i < Width512Bytes; i++ {
		off := idx[i]
		if off >= 0 && int(off) < len(window) {
			out[i] = window[off]
		}
	}
	return out
}

// ToU32x16 reinterprets 64 bytes as sixteen little-endian 32-bit lanes.
func ToU32x16(b [64]byte) U32x16 {
	var out U32x16
	for i := 0; i < Lanes32x16; i++ {
		out[i] = uint32(b[i*4]) | uint32(b[i*4+1])<<8 | uint32(b[i*4+2])<<16 | uint32(b[i*4+3])<<24
	}
	return out
}

// Srlv32x16 is the per-lane logical right shift.
func Srlv32x16(v, shift U32x16) U32x16 {
	var out U32x16
	for i := 0; i < Lanes32x16; i++ {
		if shift[i] < 32 {
			out[i] = v[i] >> shift[i]
		}
	}
	return out
}

// And32x16 is the lane-wise AND.
func And32x16(a, b U32x16) U32x16 {
	var out U32x16
	for i := 0; i < Lanes32x16; i++ {
		out[i] = a[i] & b[i]
	}
	return out
}

// Add32x16 is the lane-wise wrapping addition.
func Add32x16(a, b U32x16) U32x16 {
	var out U32x16
	for i := 0; i < Lanes32x16; i++ {
		out[i] = a[i] + b[i]
	}
	return out
}

// Broadcast32x16 fills every lane with x.
func Broadcast32x16(x uint32) U32x16 {
	var out U32x16
	for i := 0; i < Lanes32x16; i++ {
		out[i] = x
	}
	return out
}

// Permute32x16 selects lanes across the full 512-bit register
// (vpermd semantics: out[i] = v[idx[i] & 15]).
func Permute32x16(v, idx U32x16) U32x16 {
	var out U32x16
	for i := 0; i < Lanes32x16; i++ {
		out[i] = v[idx[i]&15]
	}
	return out
}

// HSum32x16 returns the horizontal sum of the lanes.
func HSum32x16(v U32x16) uint64 {
	var s uint64
	for i := 0; i < Lanes32x16; i++ {
		s += uint64(v[i])
	}
	return s
}

// prefix512Idx and prefix512Mask drive the four permute+add pairs of the
// 16-lane prefix sum (ceil(log2(16)) = 4 steps).
var prefix512Idx = [4]U32x16{
	{0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14},
	{0, 1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13},
	{0, 1, 2, 3, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
	{0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3, 4, 5, 6, 7},
}

var prefix512Mask = func() (m [4]U32x16) {
	for k, shift := range []int{1, 2, 4, 8} {
		for i := shift; i < Lanes32x16; i++ {
			m[k][i] = ^uint32(0)
		}
	}
	return m
}()

// InclusivePrefixSum32x16 computes out[i] = v[0] + ... + v[i] in four
// permute+add steps.
func InclusivePrefixSum32x16(v U32x16) U32x16 {
	for k := 0; k < 4; k++ {
		v = Add32x16(v, And32x16(Permute32x16(v, prefix512Idx[k]), prefix512Mask[k]))
	}
	return v
}

// ExclusivePrefixSum32x16 computes out[i] = v[0] + ... + v[i-1].
func ExclusivePrefixSum32x16(v U32x16) U32x16 {
	inc := InclusivePrefixSum32x16(v)
	return And32x16(Permute32x16(inc, prefix512Idx[0]), prefix512Mask[0])
}
