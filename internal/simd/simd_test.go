package simd

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShuffleEpi8WithinHalves(t *testing.T) {
	var in B32
	for i := range in {
		in[i] = byte(i)
	}
	var idx B32
	// Reverse bytes within each half; shuffle must not cross halves.
	for i := 0; i < 16; i++ {
		idx[i] = byte(15 - i)
		idx[16+i] = byte(15 - i)
	}
	out := ShuffleEpi8(in, idx)
	for i := 0; i < 16; i++ {
		if out[i] != byte(15-i) {
			t.Fatalf("low half byte %d: got %d want %d", i, out[i], 15-i)
		}
		if out[16+i] != byte(16+15-i) {
			t.Fatalf("high half byte %d: got %d want %d", i, out[16+i], 16+15-i)
		}
	}
}

func TestShuffleEpi8ZeroIdx(t *testing.T) {
	var in B32
	for i := range in {
		in[i] = 0xFF
	}
	var idx B32
	for i := range idx {
		idx[i] = ZeroIdx
	}
	out := ShuffleEpi8(in, idx)
	if out != (B32{}) {
		t.Fatalf("high-bit index should zero the output, got %v", out)
	}
}

func TestSrlvSllvSaturateAt32(t *testing.T) {
	v := Broadcast32(0xFFFFFFFF)
	shift := U32x8{0, 1, 31, 32, 33, 100, 4, 8}
	got := Srlv32(v, shift)
	want := U32x8{0xFFFFFFFF, 0x7FFFFFFF, 1, 0, 0, 0, 0x0FFFFFFF, 0x00FFFFFF}
	if got != want {
		t.Fatalf("Srlv32 got %v want %v", got, want)
	}
	gotL := Sllv32(Broadcast32(1), shift)
	wantL := U32x8{1, 2, 1 << 31, 0, 0, 0, 16, 256}
	if gotL != wantL {
		t.Fatalf("Sllv32 got %v want %v", gotL, wantL)
	}
}

func TestByteLaneRoundTrip(t *testing.T) {
	f := func(b B32) bool { return b.ToU32().ToB32() == b }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLittleEndianLaneView(t *testing.T) {
	var b B32
	b[0], b[1], b[2], b[3] = 0x78, 0x56, 0x34, 0x12
	if got := b.ToU32()[0]; got != 0x12345678 {
		t.Fatalf("lane 0 got %#x want 0x12345678", got)
	}
}

func TestPermutevar8x32(t *testing.T) {
	v := U32x8{10, 11, 12, 13, 14, 15, 16, 17}
	idx := U32x8{7, 6, 5, 4, 3, 2, 1, 0}
	got := Permutevar8x32(v, idx)
	want := U32x8{17, 16, 15, 14, 13, 12, 11, 10}
	if got != want {
		t.Fatalf("got %v want %v", got, want)
	}
	// Index is taken mod 8, as on x86.
	idx2 := U32x8{8, 9, 10, 11, 12, 13, 14, 15}
	if got := Permutevar8x32(v, idx2); got != v {
		t.Fatalf("mod-8 indexing got %v want %v", got, v)
	}
}

func TestInclusivePrefixSum32(t *testing.T) {
	v := U32x8{1, 2, 3, 4, 5, 6, 7, 8}
	got := InclusivePrefixSum32(v)
	want := U32x8{1, 3, 6, 10, 15, 21, 28, 36}
	if got != want {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestExclusivePrefixSum32(t *testing.T) {
	v := U32x8{1, 2, 3, 4, 5, 6, 7, 8}
	got := ExclusivePrefixSum32(v)
	want := U32x8{0, 1, 3, 6, 10, 15, 21, 28}
	if got != want {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestPrefixSumQuick(t *testing.T) {
	f := func(v U32x8) bool {
		inc := InclusivePrefixSum32(v)
		var run uint32
		for i := 0; i < Lanes32; i++ {
			run += v[i]
			if inc[i] != run {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareAndBlend(t *testing.T) {
	a := U32x8{5, 5, 5, 5, 5, 5, 5, 5}
	b := U32x8{1, 5, 9, 0xFFFFFFFF /* -1 signed */, 4, 6, 5, 2}
	gt := CmpGt32(a, b)
	want := U32x8{^uint32(0), 0, 0, ^uint32(0), ^uint32(0), 0, 0, ^uint32(0)}
	if gt != want {
		t.Fatalf("CmpGt32 got %v want %v", gt, want)
	}
	eq := CmpEq32(a, b)
	wantEq := U32x8{0, ^uint32(0), 0, 0, 0, 0, ^uint32(0), 0}
	if eq != wantEq {
		t.Fatalf("CmpEq32 got %v want %v", eq, wantEq)
	}
	bl := Blend32(Broadcast32(0), Broadcast32(9), gt)
	wantBl := U32x8{9, 0, 0, 9, 9, 0, 0, 9}
	if bl != wantBl {
		t.Fatalf("Blend32 got %v want %v", bl, wantBl)
	}
}

func TestMovemask32(t *testing.T) {
	v := U32x8{1 << 31, 0, 1 << 31, 0, 0, 0, 0, 1 << 31}
	if got := Movemask32(v); got != 0b10000101 {
		t.Fatalf("got %08b want 10000101", got)
	}
}

func TestWiden(t *testing.T) {
	v := U32x8{1, 0xFFFFFFFF, 2, 0xFFFFFFFE, 3, 4, 5, 6}
	lo := WidenLo(v)
	if lo != (I64x4{1, -1, 2, -2}) {
		t.Fatalf("WidenLo got %v", lo)
	}
	hi := WidenHi(v)
	if hi != (I64x4{3, 4, 5, 6}) {
		t.Fatalf("WidenHi got %v", hi)
	}
	loU := WidenLoU(v)
	if loU != (I64x4{1, 0xFFFFFFFF, 2, 0xFFFFFFFE}) {
		t.Fatalf("WidenLoU got %v", loU)
	}
	hiU := WidenHiU(v)
	if hiU != (I64x4{3, 4, 5, 6}) {
		t.Fatalf("WidenHiU got %v", hiU)
	}
}

func TestHSums(t *testing.T) {
	if got := HSum32(U32x8{1, 2, 3, 4, 5, 6, 7, 8}); got != 36 {
		t.Fatalf("HSum32 got %d", got)
	}
	if got := HSum64(I64x4{1, -2, 3, -4}); got != -2 {
		t.Fatalf("HSum64 got %d", got)
	}
}

func TestArith(t *testing.T) {
	a := U32x8{1, 2, 3, 4, 5, 6, 7, 8}
	b := Broadcast32(10)
	if got := Add32(a, b); got != (U32x8{11, 12, 13, 14, 15, 16, 17, 18}) {
		t.Fatalf("Add32 got %v", got)
	}
	if got := Sub32(b, a); got != (U32x8{9, 8, 7, 6, 5, 4, 3, 2}) {
		t.Fatalf("Sub32 got %v", got)
	}
	if got := Xor32(a, a); got != (U32x8{}) {
		t.Fatalf("Xor32 got %v", got)
	}
	if got := Or32(a, U32x8{}); got != a {
		t.Fatalf("Or32 got %v", got)
	}
	if got := And32(a, Broadcast32(0xFFFFFFFF)); got != a {
		t.Fatalf("And32 got %v", got)
	}
	// Wrapping addition.
	if got := Add32(Broadcast32(0xFFFFFFFF), Broadcast32(1)); got != (U32x8{}) {
		t.Fatalf("Add32 wrap got %v", got)
	}
}

func TestLoadPartial(t *testing.T) {
	v := LoadPartialB32([]byte{1, 2, 3})
	if v[0] != 1 || v[1] != 2 || v[2] != 3 || v[3] != 0 || v[31] != 0 {
		t.Fatalf("LoadPartialB32 got %v", v)
	}
	full := make([]byte, 40)
	for i := range full {
		full[i] = byte(i)
	}
	lv := LoadB32(full)
	if lv[31] != 31 {
		t.Fatalf("LoadB32 got %v", lv)
	}
}

func BenchmarkShuffleEpi8(b *testing.B) {
	var in, idx B32
	for i := range idx {
		idx[i] = byte((i * 7) % 16)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in = ShuffleEpi8(in, idx)
	}
	_ = in
}

func BenchmarkInclusivePrefixSum32(b *testing.B) {
	v := U32x8{1, 2, 3, 4, 5, 6, 7, 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v = InclusivePrefixSum32(v)
	}
	_ = v
}

func TestGatherBytes(t *testing.T) {
	window := []byte{10, 11, 12, 13, 14}
	var idx [32]int32
	for i := range idx {
		idx[i] = int32(i % 6)
	}
	idx[7] = -1
	out := GatherBytes(window, &idx)
	if out[0] != 10 || out[4] != 14 || out[5] != 0 || out[7] != 0 || out[6] != 10 {
		t.Fatalf("got %v", out)
	}
}

func TestAddCheck32(t *testing.T) {
	a := U32x8{0x7FFFFFFF, 0x7FFFFFFF, 5, 0x80000000, 0x80000000, 0, 0xFFFFFFFF, 100}
	b := U32x8{1, 0, 5, 0xFFFFFFFF, 0x80000000, 0, 1, 0xFFFFFF9C} // last: 100 + (-100)
	sum, ovf := AddCheck32(a, b)
	if sum != Add32(a, b) {
		t.Fatal("sum must match Add32")
	}
	// Lane 0: max+1 overflows. Lane 1: max+0 fine. Lane 3: min + (-1)
	// underflows. Lane 4: min+min overflows. Lane 6: -1 + 1 = 0 fine.
	want := U32x8{^uint32(0), 0, 0, ^uint32(0), ^uint32(0), 0, 0, 0}
	if ovf != want {
		t.Fatalf("overflow mask %v want %v", ovf, want)
	}
}

func TestAddCheck32Quick(t *testing.T) {
	f := func(a, b U32x8) bool {
		_, ovf := AddCheck32(a, b)
		for i := 0; i < Lanes32; i++ {
			wide := int64(int32(a[i])) + int64(int32(b[i]))
			wrapped := wide > math.MaxInt32 || wide < math.MinInt32
			if (ovf[i] != 0) != wrapped {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSum32x16(t *testing.T) {
	f := func(v U32x16) bool {
		inc := InclusivePrefixSum32x16(v)
		exc := ExclusivePrefixSum32x16(v)
		var run uint32
		for i := 0; i < Lanes32x16; i++ {
			if exc[i] != run {
				return false
			}
			run += v[i]
			if inc[i] != run {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGatherBytes64AndLanes(t *testing.T) {
	window := make([]byte, 70)
	for i := range window {
		window[i] = byte(i)
	}
	var idx [64]int32
	for i := range idx {
		idx[i] = int32(69 - i)
	}
	idx[0] = -1
	idx[1] = 100
	out := GatherBytes64(window, &idx)
	if out[0] != 0 || out[1] != 0 || out[2] != 67 || out[63] != 6 {
		t.Fatalf("got %v", out)
	}
	// Lane view is little-endian.
	var b [64]byte
	b[0], b[1], b[2], b[3] = 0x78, 0x56, 0x34, 0x12
	if got := ToU32x16(b)[0]; got != 0x12345678 {
		t.Fatalf("lane 0 = %#x", got)
	}
}

func TestPermute32x16(t *testing.T) {
	var v U32x16
	for i := range v {
		v[i] = uint32(i + 100)
	}
	var idx U32x16
	for i := range idx {
		idx[i] = uint32(15 - i + 16) // mod-16 indexing
	}
	got := Permute32x16(v, idx)
	for i := range got {
		if got[i] != uint32(115-i) {
			t.Fatalf("lane %d = %d", i, got[i])
		}
	}
	if HSum32x16(v) != uint64(16*100+120) {
		t.Fatalf("HSum = %d", HSum32x16(v))
	}
}
