// Package simd emulates the x86 SIMD instructions used by the ETSQP
// decoding pipelines (SSE/AVX2 subset: byte shuffles, variable shifts,
// lane-wise arithmetic, cross-lane permutes).
//
// The paper implements decoders with intrinsics such as _mm_shuffle_epi8,
// _mm256_srlv_epi32 and _mm256_permutevar8x32_epi32. Go (stdlib only)
// exposes no intrinsics, so this package provides the same operations as
// lane-wise loops over fixed-size arrays. Semantics mirror x86:
//
//   - vectors are little-endian when viewed as 32/64-bit lanes;
//   - ShuffleEpi8 moves bytes only within each 128-bit half of a 256-bit
//     vector, with the index high bit zeroing the output byte;
//   - Permutevar8x32 permutes 32-bit lanes across the full 256-bit vector.
//
// Because the loop trip counts are compile-time constants the Go compiler
// unrolls them; the algorithmic structure (and therefore every relative
// comparison in the evaluation) matches the intrinsic version.
package simd

import "encoding/binary"

// Register geometry for the emulated AVX2 target.
const (
	WidthBits  = 256 // omega_SIMD in the paper
	WidthBytes = 32
	Lanes32    = 8 // 32-bit lanes per vector
	Lanes64    = 4 // 64-bit lanes per vector
)

// B32 is a 256-bit vector viewed as bytes.
type B32 [32]byte

// U32x8 is a 256-bit vector viewed as eight 32-bit lanes (lane 0 = lowest).
type U32x8 [8]uint32

// I64x4 is a 256-bit vector viewed as four signed 64-bit lanes.
type I64x4 [4]int64

// ZeroIdx is the shuffle index value that produces a zero byte
// (x86 uses any index with the high bit set).
const ZeroIdx = 0x80

// LoadB32 loads 32 bytes from p (panics if len(p) < 32).
func LoadB32(p []byte) B32 {
	var v B32
	copy(v[:], p[:32])
	return v
}

// LoadPartialB32 loads up to 32 bytes from p, zero-filling the rest.
func LoadPartialB32(p []byte) B32 {
	var v B32
	copy(v[:], p)
	return v
}

// ToU32 reinterprets the byte vector as eight little-endian 32-bit lanes,
// matching how x86 registers are viewed by epi32 instructions.
func (v B32) ToU32() U32x8 {
	var out U32x8
	for i := 0; i < Lanes32; i++ {
		out[i] = binary.LittleEndian.Uint32(v[i*4:])
	}
	return out
}

// ToB32 reinterprets eight 32-bit lanes as 32 little-endian bytes.
func (v U32x8) ToB32() B32 {
	var out B32
	for i := 0; i < Lanes32; i++ {
		binary.LittleEndian.PutUint32(out[i*4:], v[i])
	}
	return out
}

// ShuffleEpi8 emulates _mm256_shuffle_epi8: bytes move within each 128-bit
// half independently; an index byte with the high bit set yields zero,
// otherwise the low 4 bits select a source byte within the same half.
func ShuffleEpi8(in, idx B32) B32 {
	var out B32
	for half := 0; half < 2; half++ {
		base := half * 16
		for i := 0; i < 16; i++ {
			ix := idx[base+i]
			if ix&0x80 != 0 {
				out[base+i] = 0
			} else {
				out[base+i] = in[base+int(ix&0x0F)]
			}
		}
	}
	return out
}

// Srlv32 emulates _mm256_srlv_epi32: per-lane logical right shift.
// Shift counts >= 32 yield zero, as on x86.
func Srlv32(v, shift U32x8) U32x8 {
	var out U32x8
	for i := 0; i < Lanes32; i++ {
		if shift[i] >= 32 {
			out[i] = 0
		} else {
			out[i] = v[i] >> shift[i]
		}
	}
	return out
}

// Sllv32 emulates _mm256_sllv_epi32: per-lane logical left shift.
func Sllv32(v, shift U32x8) U32x8 {
	var out U32x8
	for i := 0; i < Lanes32; i++ {
		if shift[i] >= 32 {
			out[i] = 0
		} else {
			out[i] = v[i] << shift[i]
		}
	}
	return out
}

// And32 is the lane-wise AND of two vectors.
func And32(a, b U32x8) U32x8 {
	var out U32x8
	for i := 0; i < Lanes32; i++ {
		out[i] = a[i] & b[i]
	}
	return out
}

// Or32 is the lane-wise OR of two vectors.
func Or32(a, b U32x8) U32x8 {
	var out U32x8
	for i := 0; i < Lanes32; i++ {
		out[i] = a[i] | b[i]
	}
	return out
}

// Xor32 is the lane-wise XOR of two vectors.
func Xor32(a, b U32x8) U32x8 {
	var out U32x8
	for i := 0; i < Lanes32; i++ {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// Add32 is the lane-wise wrapping addition (paddd).
func Add32(a, b U32x8) U32x8 {
	var out U32x8
	for i := 0; i < Lanes32; i++ {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub32 is the lane-wise wrapping subtraction (psubd).
func Sub32(a, b U32x8) U32x8 {
	var out U32x8
	for i := 0; i < Lanes32; i++ {
		out[i] = a[i] - b[i]
	}
	return out
}

// Broadcast32 emulates _mm256_set1_epi32.
func Broadcast32(x uint32) U32x8 {
	var out U32x8
	for i := 0; i < Lanes32; i++ {
		out[i] = x
	}
	return out
}

// Permutevar8x32 emulates _mm256_permutevar8x32_epi32: out[i] = v[idx[i]&7].
// Unlike ShuffleEpi8 it crosses the 128-bit boundary.
func Permutevar8x32(v, idx U32x8) U32x8 {
	var out U32x8
	for i := 0; i < Lanes32; i++ {
		out[i] = v[idx[i]&7]
	}
	return out
}

// CmpGt32 compares signed lanes: all-ones where a > b, zero otherwise
// (pcmpgtd semantics).
func CmpGt32(a, b U32x8) U32x8 {
	var out U32x8
	for i := 0; i < Lanes32; i++ {
		if int32(a[i]) > int32(b[i]) {
			out[i] = 0xFFFFFFFF
		}
	}
	return out
}

// CmpEq32 compares lanes for equality: all-ones where equal.
func CmpEq32(a, b U32x8) U32x8 {
	var out U32x8
	for i := 0; i < Lanes32; i++ {
		if a[i] == b[i] {
			out[i] = 0xFFFFFFFF
		}
	}
	return out
}

// Blend32 selects b where mask lane is all-ones, a elsewhere.
func Blend32(a, b, mask U32x8) U32x8 {
	var out U32x8
	for i := 0; i < Lanes32; i++ {
		out[i] = a[i]&^mask[i] | b[i]&mask[i]
	}
	return out
}

// Movemask32 packs the sign bit of each 32-bit lane into an 8-bit mask
// (movmskps semantics).
func Movemask32(v U32x8) uint8 {
	var m uint8
	for i := 0; i < Lanes32; i++ {
		m |= uint8(v[i]>>31) << i
	}
	return m
}

// HSum32 returns the horizontal sum of the lanes as uint64 (no wrap):
// eight uint32 lanes total at most 8·(2^32−1) < 2^35, a bound rangeflow
// verifies from the unrolled sum and fusion's prefix kernels consume.
//
//etsqp:bounds return [0, 1<<35)
//etsqp:rangecheck
//etsqp:nobce
//etsqp:noescape
//etsqp:inline
func HSum32(v U32x8) uint64 {
	return uint64(v[0]) + uint64(v[1]) + uint64(v[2]) + uint64(v[3]) +
		uint64(v[4]) + uint64(v[5]) + uint64(v[6]) + uint64(v[7])
}

// PrefixSumIdx holds the permute index vectors for the log-depth in-register
// inclusive prefix sum across eight 32-bit lanes. The paper solves the
// prefix vector with ceil(log2(omega_SIMD/omega')) = 3 pairs of
// permutevar8x32 + addition instructions; these tables drive those pairs.
//
// Step k shifts lanes up by 2^k positions (shifted-in lanes contribute zero
// via ZeroLaneMask).
var PrefixSumIdx = [3]U32x8{
	{0, 0, 1, 2, 3, 4, 5, 6}, // shift by 1
	{0, 1, 0, 1, 2, 3, 4, 5}, // shift by 2
	{0, 1, 2, 3, 0, 1, 2, 3}, // shift by 4
}

// PrefixSumMask zeroes the lanes that the corresponding PrefixSumIdx step
// shifted in from below lane 0.
var PrefixSumMask = [3]U32x8{
	{0, ^uint32(0), ^uint32(0), ^uint32(0), ^uint32(0), ^uint32(0), ^uint32(0), ^uint32(0)},
	{0, 0, ^uint32(0), ^uint32(0), ^uint32(0), ^uint32(0), ^uint32(0), ^uint32(0)},
	{0, 0, 0, 0, ^uint32(0), ^uint32(0), ^uint32(0), ^uint32(0)},
}

// InclusivePrefixSum32 computes the in-lane inclusive prefix sum
// out[i] = v[0] + ... + v[i] using 3 permute+add pairs, exactly the
// instruction pattern the paper uses to build v'_prefsum. The constant
// trip counts keep every lane access bounds-check-free.
//
//etsqp:nobce
//etsqp:noescape
func InclusivePrefixSum32(v U32x8) U32x8 {
	for k := 0; k < 3; k++ {
		shifted := And32(Permutevar8x32(v, PrefixSumIdx[k]), PrefixSumMask[k])
		v = Add32(v, shifted)
	}
	return v
}

// ExclusivePrefixSum32 computes out[i] = v[0] + ... + v[i-1], out[0] = 0.
func ExclusivePrefixSum32(v U32x8) U32x8 {
	inc := InclusivePrefixSum32(v)
	// Shift lanes up by one and zero lane 0: one more permute+mask pair.
	shifted := And32(Permutevar8x32(inc, PrefixSumIdx[0]), PrefixSumMask[0])
	return shifted
}

// Add64 adds four 64-bit lanes (paddq).
func Add64(a, b I64x4) I64x4 {
	var out I64x4
	for i := 0; i < Lanes64; i++ {
		out[i] = a[i] + b[i]
	}
	return out
}

// Broadcast64 emulates _mm256_set1_epi64x.
func Broadcast64(x int64) I64x4 {
	var out I64x4
	for i := 0; i < Lanes64; i++ {
		out[i] = x
	}
	return out
}

// WidenLo widens the low four 32-bit lanes to signed 64-bit
// (pmovsxdq on the lower half).
func WidenLo(v U32x8) I64x4 {
	var out I64x4
	for i := 0; i < Lanes64; i++ {
		out[i] = int64(int32(v[i]))
	}
	return out
}

// WidenHi widens the high four 32-bit lanes to signed 64-bit.
func WidenHi(v U32x8) I64x4 {
	var out I64x4
	for i := 0; i < Lanes64; i++ {
		out[i] = int64(int32(v[i+4]))
	}
	return out
}

// WidenLoU and WidenHiU widen lanes zero-extended (unsigned deltas).
func WidenLoU(v U32x8) I64x4 {
	var out I64x4
	for i := 0; i < Lanes64; i++ {
		out[i] = int64(v[i])
	}
	return out
}

// WidenHiU widens the high four lanes zero-extended.
func WidenHiU(v U32x8) I64x4 {
	var out I64x4
	for i := 0; i < Lanes64; i++ {
		out[i] = int64(v[i+4])
	}
	return out
}

// HSum64 returns the horizontal sum of four 64-bit lanes.
//
//etsqp:nobce
//etsqp:noescape
//etsqp:inline
func HSum64(v I64x4) int64 { return v[0] + v[1] + v[2] + v[3] }

// GatherBytes builds a vector from arbitrary byte offsets of a loaded
// window. Offset values >= len(window) or negative produce zero bytes.
//
// On real hardware this is the compound operation Algorithm 1 Line 8
// performs: one ShuffleEpi8 per loaded 256-bit vector OR-ed together
// (out |= shuffle(v[i], idx_i)), or a single vpermb on AVX-512 VBMI.
// The emulation collapses that inner loop into one indexed gather; the
// JIT tables that drive it are identical in spirit (one index table per
// unpacked vector per packing width). The offset guard doubles as the
// bounds proof, so the gather loop carries no checks.
//
//etsqp:nobce
//etsqp:noescape
func GatherBytes(window []byte, idx *[32]int32) B32 {
	var out B32
	for i := 0; i < WidthBytes; i++ {
		off := idx[i]
		if off >= 0 && int(off) < len(window) {
			out[i] = window[off]
		}
	}
	return out
}

// AddCheck32 performs signed lane addition with overflow detection
// (Section VI-C: "check lane symbols and raise an overflow error when
// two corresponding lanes of the same symbol are different from the lane
// in the result vector"). The overflow mask has all-ones lanes where the
// signed addition wrapped; callers re-aggregate those lanes at a larger
// quantity.
func AddCheck32(a, b U32x8) (sum, overflow U32x8) {
	sum = Add32(a, b)
	// Overflow iff sign(a) == sign(b) != sign(sum):
	// (~(a^b)) & (a^sum) has its top bit set exactly then.
	for i := 0; i < Lanes32; i++ {
		if (^(a[i] ^ b[i]))&(a[i]^sum[i])&0x80000000 != 0 {
			overflow[i] = 0xFFFFFFFF
		}
	}
	return sum, overflow
}
