package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Record is one benchmark measurement in a BENCH_*.json perf-trajectory
// file. Field order is part of the file format — append, never reorder.
type Record struct {
	Figure        string  `json:"figure"`
	Series        string  `json:"series"`
	X             string  `json:"x"`
	ThroughputMTS float64 `json:"throughput_mts"`
	ElapsedNs     int64   `json:"elapsed_ns"`
}

// Key identifies a record across runs: two reports compare record by
// record on this key.
func (r Record) Key() string {
	return r.Figure + "|" + r.Series + "|" + r.X
}

// Report is one etsqp-bench run: the scaling knobs that shaped it plus
// every measurement, sorted by key so the serialized file is stable.
type Report struct {
	Rows    int      `json:"rows"`
	Workers int      `json:"workers"`
	Seed    int64    `json:"seed"`
	Records []Record `json:"records"`
}

// NewReport converts measurements into a sorted report.
func NewReport(cfg Config, ms []Measurement) Report {
	rep := Report{Rows: cfg.Rows, Workers: cfg.Workers, Seed: cfg.Seed}
	for _, m := range ms {
		rep.Records = append(rep.Records, Record{
			Figure: m.Figure, Series: m.Series, X: m.X,
			ThroughputMTS: m.Throughput, ElapsedNs: int64(m.Elapsed),
		})
	}
	sort.Slice(rep.Records, func(i, j int) bool {
		return rep.Records[i].Key() < rep.Records[j].Key()
	})
	return rep
}

// WriteJSON writes the report as indented JSON with a trailing newline.
func (r Report) WriteJSON(w io.Writer) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if _, err := w.Write(out); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}

// ReadReport parses a report written by WriteJSON.
func ReadReport(r io.Reader) (Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("bench: bad report: %w", err)
	}
	return rep, nil
}

// MergeBest merges two measurement sets record by record, keeping the
// higher throughput for records present in both. The -check confirm
// passes use it: a regression must survive a fresh measurement, so a
// transient scheduler stall during either pass cannot fail the gate.
func MergeBest(a, b []Measurement) []Measurement {
	best := make(map[string]int, len(a))
	out := append([]Measurement(nil), a...)
	for i, m := range out {
		best[m.Figure+"|"+m.Series+"|"+m.X] = i
	}
	for _, m := range b {
		key := m.Figure + "|" + m.Series + "|" + m.X
		if i, ok := best[key]; ok {
			if m.Throughput > out[i].Throughput {
				out[i] = m
			}
			continue
		}
		best[key] = len(out)
		out = append(out, m)
	}
	return out
}

// Regression is one tracked measurement that fell below the baseline by
// more than the tolerated fraction.
type Regression struct {
	Key      string
	Baseline float64 // baseline throughput, Mtuples/s
	Current  float64 // current throughput, Mtuples/s
	Drop     float64 // fractional drop, e.g. 0.35 = 35% slower
}

func (g Regression) String() string {
	return fmt.Sprintf("%s: %.2f -> %.2f Mtuples/s (-%.0f%%)",
		g.Key, g.Baseline, g.Current, g.Drop*100)
}

// Compare checks cur against base: every record present in both whose
// current throughput is more than tolerance below the baseline is a
// regression. Records only one side knows are skipped (workloads come
// and go); zero-throughput baselines are skipped (nothing to regress
// against).
func Compare(cur, base Report, tolerance float64) []Regression {
	curByKey := make(map[string]Record, len(cur.Records))
	for _, r := range cur.Records {
		curByKey[r.Key()] = r
	}
	var out []Regression
	for _, b := range base.Records {
		c, ok := curByKey[b.Key()]
		if !ok || b.ThroughputMTS <= 0 {
			continue
		}
		drop := 1 - c.ThroughputMTS/b.ThroughputMTS
		if drop > tolerance {
			out = append(out, Regression{
				Key: b.Key(), Baseline: b.ThroughputMTS,
				Current: c.ThroughputMTS, Drop: drop,
			})
		}
	}
	return out
}
