package bench

import (
	"testing"

	"etsqp/internal/engine"
)

// small keeps the in-package tests quick; the root bench_test.go runs the
// full-size sweeps.
var small = Config{Rows: 8000, Seed: 7, Workers: 2, PageSize: 1024}

func TestFig10Shape(t *testing.T) {
	ms, err := Fig10(small)
	if err != nil {
		t.Fatal(err)
	}
	want := len(DatasetLabels) * len(Approaches) * len(BenchQueries)
	if len(ms) != want {
		t.Fatalf("measurements = %d want %d", len(ms), want)
	}
	for _, m := range ms {
		if m.Throughput <= 0 {
			t.Fatalf("%s/%s: throughput %f", m.Series, m.X, m.Throughput)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	ms, err := Fig11(small, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2*4*2 {
		t.Fatalf("measurements = %d", len(ms))
	}
}

func TestFig12DeltaThreads(t *testing.T) {
	ms, err := Fig12DeltaThreads(small, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2*3*2 {
		t.Fatalf("measurements = %d", len(ms))
	}
}

func TestFig12RunLength(t *testing.T) {
	ms, err := Fig12RunLength(small, []int{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2*3 {
		t.Fatalf("measurements = %d", len(ms))
	}
	// The fused approach should benefit from longer runs: ETSQP at
	// runlen=64 should beat ETSQP at runlen=1 (more saved decoding).
	var et1, et64 float64
	for _, m := range ms {
		if m.Series == engine.ModeETSQP.String() {
			if m.X == "runlen=1" {
				et1 = m.Throughput
			}
			if m.X == "runlen=64" {
				et64 = m.Throughput
			}
		}
	}
	if et64 <= et1 {
		t.Logf("warning: fused run-length gain not visible at this size (%.1f vs %.1f)", et64, et1)
	}
}

func TestFig12PackWidth(t *testing.T) {
	ms, err := Fig12PackWidth(small, []uint{6, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2*4 {
		t.Fatalf("measurements = %d", len(ms))
	}
	// Narrow widths give tight Proposition 5 bounds: width 6 must prune,
	// and at least as much as width 20 (looser bounds may prune nothing).
	pruned := map[string]float64{}
	for _, m := range ms {
		if m.Series == engine.ModeETSQPPrune.String() {
			pruned[m.X] = m.Extra["pages_pruned"]*float64(small.Rows/2) + m.Extra["rows_pruned"]
		}
	}
	if pruned["width=6"] == 0 {
		t.Fatal("width 6 must prune")
	}
	if pruned["width=6"] < pruned["width=20"] {
		t.Fatalf("narrow width pruned less (%v) than wide (%v)", pruned["width=6"], pruned["width=20"])
	}
}

func TestFig13Shape(t *testing.T) {
	ms, err := Fig13(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(DatasetLabels)*4*2 {
		t.Fatalf("measurements = %d", len(ms))
	}
	for _, m := range ms {
		if m.Extra["encoded_bytes"] <= 0 {
			t.Fatalf("%s: no footprint", m.Series)
		}
	}
}

func TestFig14Fusion(t *testing.T) {
	ms, err := Fig14Fusion(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("measurements = %d", len(ms))
	}
	// Fusing all three decoders must beat full decoding.
	if ms[0].Throughput <= ms[2].Throughput {
		t.Fatalf("fuse=3 (%.1f MT/s) should beat fuse=1 (%.1f MT/s)",
			ms[0].Throughput, ms[2].Throughput)
	}
}

func TestFig14Stages(t *testing.T) {
	ms, err := Fig14Stages(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(DatasetLabels)*2 {
		t.Fatalf("measurements = %d", len(ms))
	}
	for _, m := range ms {
		if m.Extra["io_ms"] < 0 || m.Extra["decode_ms"] < 0 {
			t.Fatalf("%s: negative stage time", m.X)
		}
	}
}

func TestFig14Slices(t *testing.T) {
	ms, err := Fig14Slices(small, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("measurements = %d", len(ms))
	}
	if ms[0].Extra["prefix_rows"] != 0 {
		t.Fatal("one slice has no prefix work")
	}
	if ms[1].Extra["prefix_rows"] != float64(PrefixWork(small.Rows, 4)) {
		t.Fatalf("prefix work = %f", ms[1].Extra["prefix_rows"])
	}
}

func TestTables(t *testing.T) {
	t1, err := Table1(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != 6 {
		t.Fatalf("Table1 rows = %d", len(t1))
	}
	for _, r := range t1 {
		if r.Ratio <= 0 || len(r.Semantics) == 0 {
			t.Fatalf("row %+v", r)
		}
	}
	t2, err := Table2(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2) != 6 {
		t.Fatalf("Table2 rows = %d", len(t2))
	}
	t3, err := Table3(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3) != 6 {
		t.Fatalf("Table3 rows = %d", len(t3))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Rows <= 0 || c.Seed == 0 || c.Workers <= 0 || c.PageSize <= 0 {
		t.Fatalf("defaults: %+v", c)
	}
}
