package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"etsqp/internal/baseline"
	"etsqp/internal/dataset"
	"etsqp/internal/encoding"
	"etsqp/internal/encoding/rlbe"
	"etsqp/internal/engine"
	"etsqp/internal/exec"
	"etsqp/internal/fusion"
	"etsqp/internal/storage"
)

// Fig10 measures the throughput of every approach on Q1-Q6 over every
// Table II dataset (TS2DIFF storage, FastLanes storage for its approach).
func Fig10(cfg Config) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	var out []Measurement
	for _, label := range DatasetLabels {
		loads := map[string]*workload{}
		for _, mode := range Approaches {
			codec := codecForMode(mode)
			w, ok := loads[codec]
			if !ok {
				var err error
				w, err = buildWorkload(cfg, label, codec)
				if err != nil {
					return nil, err
				}
				loads[codec] = w
			}
			for _, qid := range BenchQueries {
				sql, err := w.queryFor(qid)
				if err != nil {
					return nil, err
				}
				m, err := run(cfg, engineFor(cfg, w, mode), sql)
				if err != nil {
					return nil, fmt.Errorf("fig10 %s/%s/%s: %w", label, mode, qid, err)
				}
				m.Figure, m.Series, m.X = "fig10", mode.String(), label+"/"+qid
				out = append(out, m)
			}
		}
	}
	return out, nil
}

// Fig11 measures Q1 throughput as the worker count grows (Time and Sine
// datasets), for the thread-scaling comparison.
func Fig11(cfg Config, threads []int) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	if len(threads) == 0 {
		threads = []int{1, 2, 4, 8, 16}
	}
	var out []Measurement
	for _, label := range []string{"Time", "Sine"} {
		for _, mode := range []engine.Mode{engine.ModeETSQP, engine.ModeSerial, engine.ModeSBoost, engine.ModeFastLanes} {
			w, err := buildWorkload(cfg, label, codecForMode(mode))
			if err != nil {
				return nil, err
			}
			sql, _ := w.queryFor("Q1")
			for _, th := range threads {
				c := cfg
				c.Workers = th
				m, err := run(c, engineFor(c, w, mode), sql)
				if err != nil {
					return nil, err
				}
				m.Figure, m.Series, m.X = "fig11", mode.String(), fmt.Sprintf("%s/threads=%d", label, th)
				out = append(out, m)
			}
		}
	}
	return out, nil
}

// Fig12DeltaThreads is Figure 12(a,b): delta-only encoded data (the
// representation SBoost shares), time-range query at selectivity 0.5,
// throughput vs thread count.
func Fig12DeltaThreads(cfg Config, threads []int) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	if len(threads) == 0 {
		threads = []int{1, 2, 4, 8, 16}
	}
	var out []Measurement
	for _, label := range []string{"Time", "Sine"} {
		for _, mode := range []engine.Mode{engine.ModeETSQP, engine.ModeSBoost, engine.ModeFastLanes} {
			w, err := buildWorkload(cfg, label, codecForMode(mode))
			if err != nil {
				return nil, err
			}
			sql, _ := w.queryFor("QT")
			for _, th := range threads {
				c := cfg
				c.Workers = th
				m, err := run(c, engineFor(c, w, mode), sql)
				if err != nil {
					return nil, err
				}
				m.Figure, m.Series, m.X = "fig12ab", mode.String(), fmt.Sprintf("%s/threads=%d", label, th)
				out = append(out, m)
			}
		}
	}
	return out, nil
}

// plateauColumns generates values holding constant for runLen steps —
// the controlled Delta-Repeat workload of Figure 12(c,d).
func plateauColumns(rows int, runLen int) (ts, vals []int64) {
	ts = make([]int64, rows)
	vals = make([]int64, rows)
	v := int64(1000)
	for i := 0; i < rows; i++ {
		ts[i] = int64(i) * 1000
		if runLen > 0 && i%runLen == 0 {
			v += int64(i%17) - 8
		}
		vals[i] = v
	}
	return ts, vals
}

// Fig12RunLength is Figure 12(c,d): Delta-Repeat data with controlled
// run lengths, comparing the fused ETSQP pipeline against SBoost-style
// full unpacking and FastLanes storage.
func Fig12RunLength(cfg Config, runLens []int) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	if len(runLens) == 0 {
		runLens = []int{1, 4, 16, 64, 256}
	}
	var out []Measurement
	for _, rl := range runLens {
		ts, vals := plateauColumns(cfg.Rows, rl)
		for _, mode := range []engine.Mode{engine.ModeETSQP, engine.ModeSBoost, engine.ModeFastLanes} {
			codec := "rlbe"
			if mode == engine.ModeFastLanes {
				codec = "fastlanes"
			}
			st := storage.NewStore()
			if err := st.Append("ts1", ts, vals, storage.Options{PageSize: cfg.PageSize, ValueCodec: codec}); err != nil {
				return nil, err
			}
			e := engine.New(st, mode)
			e.Workers = cfg.Workers
			sql := fmt.Sprintf("SELECT SUM(A) FROM ts1 WHERE TIME >= 0 AND TIME <= %d", ts[len(ts)/2])
			m, err := run(cfg, e, sql)
			if err != nil {
				return nil, err
			}
			m.Figure, m.Series, m.X = "fig12cd", mode.String(), fmt.Sprintf("runlen=%d", rl)
			out = append(out, m)
		}
	}
	return out, nil
}

// driftColumns generates a random walk whose noise magnitude needs
// exactly `width` bits while the downward drift is a fixed -8 per row.
// Narrow widths give tight Proposition 5 delta bounds (the walk provably
// cannot climb back once it falls), wide widths give loose bounds —
// exactly the pruning-parameter control of Figure 12(e,f).
func driftColumns(rows int, width uint) (ts, vals []int64) {
	ts = make([]int64, rows)
	vals = make([]int64, rows)
	half := int64(1) << (width - 1)
	cur := int64(1) << 40 // start high; the walk drifts down
	for i := 0; i < rows; i++ {
		ts[i] = int64(i) * 1000
		vals[i] = cur
		noise := int64(uint64(i)*2654435761%uint64(2*half)) - half
		cur += noise - 8
	}
	return ts, vals
}

// Fig12PackWidth is Figure 12(e,f): Delta-Repeat-Packing data across
// packing widths. The filter keeps the early (high) part of a drifting
// walk; after the values fall below the threshold, Proposition 5's
// bounds — tighter for smaller widths — let ETSQP-prune stop decoding
// the rest, so narrow widths prune more.
func Fig12PackWidth(cfg Config, widths []uint) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	if len(widths) == 0 {
		widths = []uint{6, 10, 14, 18, 22}
	}
	var out []Measurement
	for _, w := range widths {
		ts, vals := driftColumns(cfg.Rows, w)
		thresh := vals[len(vals)/4] // early quarter matches, then falls
		// Two large pages: header min/max can prune at most the tail
		// page, so the width-dependent Proposition 5 stops dominate.
		pageSize := cfg.Rows/2 + 1
		for _, mode := range []engine.Mode{engine.ModeETSQP, engine.ModeETSQPPrune, engine.ModeSBoost, engine.ModeFastLanes} {
			st := storage.NewStore()
			if err := st.Append("ts1", ts, vals, storage.Options{PageSize: pageSize, ValueCodec: codecForMode(mode)}); err != nil {
				return nil, err
			}
			e := engine.New(st, mode)
			e.Workers = cfg.Workers
			sql := fmt.Sprintf("SELECT SUM(A) FROM (SELECT * FROM ts1 WHERE A > %d)", thresh)
			m, err := run(cfg, e, sql)
			if err != nil {
				return nil, err
			}
			m.Figure, m.Series, m.X = "fig12ef", mode.String(), fmt.Sprintf("width=%d", w)
			out = append(out, m)
		}
	}
	return out, nil
}

// Fig13 measures the deployment comparison: IoTDB, IoTDB-SIMD, MonetDB
// and Spark/HDFS answering the time-range and value-range queries over
// every dataset.
func Fig13(cfg Config) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	systems := []baseline.SystemKind{
		baseline.SystemIoTDB, baseline.SystemIoTDBSIMD,
		baseline.SystemMonetDB, baseline.SystemSparkHDFS,
	}
	var out []Measurement
	for _, label := range DatasetLabels {
		d, err := dataset.Generate(label, cfg.Rows, cfg.Seed)
		if err != nil {
			return nil, err
		}
		tMid := d.Time[len(d.Time)/2]
		for _, kind := range systems {
			sys, err := baseline.NewSystem(kind, d.Time, d.Attrs[0], cfg.PageSize)
			if err != nil {
				return nil, err
			}
			// (a) time-range query.
			start := time.Now()
			if _, err := sys.TimeRangeSum(d.Time[0], tMid); err != nil {
				return nil, err
			}
			el := time.Since(start)
			out = append(out, Measurement{
				Figure: "fig13", Series: kind.String(), X: label + "/time-range",
				Elapsed:    el,
				Throughput: float64(cfg.Rows) / el.Seconds() / 1e6,
				Extra:      map[string]float64{"encoded_bytes": float64(sys.EncodedBytes())},
			})
			// (b) value-range query.
			start = time.Now()
			if _, err := sys.ValueFilterSum(d.Attrs[0][0]); err != nil {
				return nil, err
			}
			el = time.Since(start)
			out = append(out, Measurement{
				Figure: "fig13", Series: kind.String(), X: label + "/value-range",
				Elapsed:    el,
				Throughput: float64(cfg.Rows) / el.Seconds() / 1e6,
				Extra:      map[string]float64{"encoded_bytes": float64(sys.EncodedBytes())},
			})
		}
	}
	return out, nil
}

// Fig14Fusion is Figure 14(a): SUM over Delta-Repeat-Packing data with
// one, two, or three decoders fused into the aggregation.
//
//	fuse=3  aggregate directly on Delta-Repeat pairs (Section IV)
//	fuse=2  flatten Repeat to the delta sequence, then fused delta sum
//	fuse=1  decode values completely, then sum
func Fig14Fusion(cfg Config) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	ts, vals := plateauColumns(cfg.Rows, 32)
	_ = ts
	blk, err := rlbe.Encode(vals)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		f    func() (int64, error)
	}{
		{"fuse=3 (pairs)", func() (int64, error) {
			pairs, err := blk.Pairs()
			if err != nil {
				return 0, err
			}
			return fusion.Sum(blk.First, pairs)
		}},
		{"fuse=2 (flatten+delta)", func() (int64, error) {
			pairs, err := blk.Pairs()
			if err != nil {
				return 0, err
			}
			// Flatten runs to a delta sequence, then a fused running sum
			// of prefix values (no per-value materialized output column).
			var total, cur int64
			total = blk.First
			cur = blk.First
			for _, p := range pairs {
				for k := 0; k < p.Count; k++ {
					cur += p.Delta
					total += cur
				}
			}
			return total, nil
		}},
		{"fuse=1 (decode+sum)", func() (int64, error) {
			decoded, err := blk.Decode()
			if err != nil {
				return 0, err
			}
			var total int64
			for _, v := range decoded {
				total += v
			}
			return total, nil
		}},
	}
	var out []Measurement
	var ref int64
	for i, v := range variants {
		start := time.Now()
		got, err := v.f()
		if err != nil {
			return nil, err
		}
		el := time.Since(start)
		if i == 0 {
			ref = got
		} else if got != ref {
			return nil, fmt.Errorf("fig14a: variant %q disagrees: %d vs %d", v.name, got, ref)
		}
		out = append(out, Measurement{
			Figure: "fig14a", Series: v.name, X: "sum",
			Elapsed:    el,
			Throughput: float64(cfg.Rows) / el.Seconds() / 1e6,
		})
	}
	return out, nil
}

// Fig14Stages is Figure 14(b): per-stage time shares of Q1 on every
// dataset under the full system.
func Fig14Stages(cfg Config) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	var out []Measurement
	for _, label := range DatasetLabels {
		w, err := buildWorkload(cfg, label, storage.DefaultValueCodec)
		if err != nil {
			return nil, err
		}
		// Q1 exercises the fused path (decode stage collapses into the
		// aggregate stage); Q3 exercises the full decode pipeline.
		for _, qid := range []string{"Q1", "Q3"} {
			sql, _ := w.queryFor(qid)
			m, err := run(cfg, engineFor(cfg, w, engine.ModeETSQP), sql)
			if err != nil {
				return nil, err
			}
			m.Figure, m.Series, m.X = "fig14b", "ETSQP", label+"/"+qid
			out = append(out, m)
		}
	}
	return out, nil
}

// Fig14Slices is Figure 14(c,d): execution time and redundant prefix
// work as a single large page is cut into more slices (workers fixed).
func Fig14Slices(cfg Config, sliceCounts []int) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	if len(sliceCounts) == 0 {
		sliceCounts = []int{1, 2, 4, 8, 16, 32}
	}
	// One large page so slicing is the only source of parallelism.
	ts, vals := plateauColumns(cfg.Rows, 1)
	st := storage.NewStore()
	if err := st.Append("ts1", ts, vals, storage.Options{PageSize: cfg.Rows}); err != nil {
		return nil, err
	}
	sql := fmt.Sprintf("SELECT SUM(A) FROM (SELECT * FROM ts1 WHERE A > %d)", vals[0]-1)
	var out []Measurement
	for _, s := range sliceCounts {
		e := engine.New(st, engine.ModeETSQP)
		e.Workers = cfg.Workers
		e.ForceSlices = s
		m, err := run(cfg, e, sql)
		if err != nil {
			return nil, err
		}
		// Redundant prefix rows: slice k re-scans k/s of the page to
		// resolve its Figure 8 dependency: sum = rows*(s-1)/2.
		m.Extra["prefix_rows"] = float64(cfg.Rows) * float64(s-1) / 2
		m.Figure, m.Series, m.X = "fig14cd", "ETSQP", fmt.Sprintf("slices=%d", s)
		out = append(out, m)
	}
	return out, nil
}

// FigConcurrent measures the shared execution layer end to end: N
// parallel clients issue a value-filter aggregation (the decode path, so
// the decoded-page cache applies) over a skewed page-width dataset, all
// sharing one worker pool — once uncached ("pool") and once with a
// decoded-page cache ("pool+cache"). Throughput is aggregate: tuples
// loaded across every client divided by the wall time of the round.
func FigConcurrent(cfg Config, clients []int) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	if len(clients) == 0 {
		clients = []int{2, 4, 8}
	}
	d, err := dataset.Generate("Sine", cfg.Rows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Skewed page widths: ingest in chunks under cycling page sizes, so
	// morsels differ widely in cost — the static-split worst case the
	// work-stealing scheduler exists for.
	widths := []int{cfg.PageSize / 16, cfg.PageSize, cfg.PageSize / 4}
	for i, w := range widths {
		if w < 1 {
			widths[i] = 1
		}
	}
	st := storage.NewStore()
	chunk := cfg.PageSize
	for off, c := 0, 0; off < cfg.Rows; off, c = off+chunk, c+1 {
		end := off + chunk
		if end > cfg.Rows {
			end = cfg.Rows
		}
		opts := storage.Options{PageSize: widths[c%len(widths)]}
		if err := st.Append("ts1", d.Time[off:end], d.Attrs[0][off:end], opts); err != nil {
			return nil, err
		}
	}
	sorted := append([]int64(nil), d.Attrs[0]...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	sql := fmt.Sprintf("SELECT SUM(A) FROM (SELECT * FROM ts1 WHERE A > %d)", sorted[len(sorted)/2])

	pool := exec.NewPool(cfg.Workers)
	defer pool.Close()
	var out []Measurement
	for _, cached := range []bool{false, true} {
		series := "pool"
		var cache *exec.PageCache
		if cached {
			series = "pool+cache"
			// Budget comfortably above the decoded dataset (two int64
			// columns) so steady state is all hits.
			cache = exec.NewPageCache(int64(cfg.Rows) * 64)
		}
		for _, nc := range clients {
			engines := make([]*engine.Engine, nc)
			for i := range engines {
				e := engine.New(st, engine.ModeETSQP)
				e.Workers = cfg.Workers
				e.Pool = pool
				e.Cache = cache
				engines[i] = e
			}
			// Warm-up round: fills the cache and yields the per-query
			// tuple count for the throughput denominator.
			warm, err := engines[0].ExecuteSQL(sql)
			if err != nil {
				return nil, fmt.Errorf("figconc %s: %w", series, err)
			}
			tuples := warm.Stats.TuplesLoaded
			round := func() (time.Duration, error) {
				errs := make([]error, nc)
				var wg sync.WaitGroup
				start := time.Now()
				for i := 0; i < nc; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						_, errs[i] = engines[i].ExecuteSQL(sql)
					}(i)
				}
				wg.Wait()
				wall := time.Since(start)
				for _, e := range errs {
					if e != nil {
						return 0, e
					}
				}
				return wall, nil
			}
			var best time.Duration
			for r := 0; r < cfg.Reps; r++ {
				wall, err := round()
				if err != nil {
					return nil, fmt.Errorf("figconc %s clients=%d: %w", series, nc, err)
				}
				if best == 0 || wall < best {
					best = wall
				}
			}
			out = append(out, Measurement{
				Figure: "figconc", Series: series, X: fmt.Sprintf("clients=%d", nc),
				Elapsed:    best,
				Throughput: float64(int64(nc)*tuples) / best.Seconds() / 1e6,
				Extra: map[string]float64{
					"tuples_per_query": float64(tuples),
				},
			})
		}
	}
	return out, nil
}

// FigWindow measures sliding-window aggregation as the window overlap
// factor (width/slide) grows: hopping windows with slide < width make
// every row a member of `overlap` window instances. Both engines share
// disjoint row segments across instances (docs/EXECUTION.md), so cost
// grows with the segment count rather than multiplicatively with
// overlap; ETSQP additionally fills the segment sums on encoded form
// via the Proposition 3 closed forms, while the serial engine decodes
// and folds every row.
func FigWindow(cfg Config, overlaps []int) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	if len(overlaps) == 0 {
		overlaps = []int{1, 2, 4, 8}
	}
	w, err := buildWorkload(cfg, "Atm", storage.DefaultValueCodec)
	if err != nil {
		return nil, err
	}
	width := w.interval * 1000 // 10^3 points per instance (Section VII-A)
	var out []Measurement
	for _, mode := range []engine.Mode{engine.ModeETSQP, engine.ModeSerial} {
		e := engineFor(cfg, w, mode)
		for _, ov := range overlaps {
			slide := width / int64(ov)
			if slide < 1 {
				slide = 1
			}
			sql := fmt.Sprintf("SELECT SUM(A) FROM ts1 GROUP BY TIME(%d, %d)", width, slide)
			m, err := run(cfg, e, sql)
			if err != nil {
				return nil, fmt.Errorf("figwindow %s overlap=%d: %w", mode, ov, err)
			}
			m.Figure, m.Series, m.X = "figwindow", mode.String(), fmt.Sprintf("overlap=%d", ov)
			out = append(out, m)
		}
	}
	return out, nil
}

// Table1Row is one Table I row with a measured compression ratio.
type Table1Row struct {
	Method    string
	Semantics []encoding.Semantics
	Ratio     float64 // on the Sine dataset
}

// Table1 reproduces the encoder taxonomy with measured ratios.
func Table1(cfg Config) ([]Table1Row, error) {
	cfg = cfg.WithDefaults()
	d, err := dataset.Generate("Sine", cfg.Rows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	col := d.Attrs[0]
	var out []Table1Row
	for _, name := range []string{"rlbe", "ts2diff", "sprintz", "chimp", "gorilla", "fastlanes"} {
		c, err := encoding.Lookup(name)
		if err != nil {
			return nil, err
		}
		blk, err := c.Encode(col)
		if err != nil {
			return nil, err
		}
		out = append(out, Table1Row{
			Method:    name,
			Semantics: c.Semantics(),
			Ratio:     float64(len(col)*8) / float64(len(blk)),
		})
	}
	return out, nil
}

// Table2Row is one Table II row plus generated-size statistics.
type Table2Row struct {
	Spec         dataset.Spec
	GenRows      int
	EncodedBytes int
}

// Table2 reproduces the dataset statistics table over generated data.
func Table2(cfg Config) ([]Table2Row, error) {
	cfg = cfg.WithDefaults()
	var out []Table2Row
	for _, spec := range dataset.Specs {
		d, err := dataset.Generate(spec.Label, cfg.Rows, cfg.Seed)
		if err != nil {
			return nil, err
		}
		pairs, err := storage.EncodePages(d.Time, d.Attrs[0], storage.Options{PageSize: cfg.PageSize})
		if err != nil {
			return nil, err
		}
		bytes := 0
		for _, pp := range pairs {
			bytes += len(pp.Time.Data) + len(pp.Value.Data)
		}
		out = append(out, Table2Row{Spec: spec, GenRows: d.Rows(), EncodedBytes: bytes})
	}
	return out, nil
}

// Table3 verifies that every benchmark query parses and executes.
func Table3(cfg Config) (map[string]string, error) {
	cfg = cfg.WithDefaults()
	w, err := buildWorkload(cfg, "Atm", storage.DefaultValueCodec)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, qid := range BenchQueries {
		sql, err := w.queryFor(qid)
		if err != nil {
			return nil, err
		}
		if _, err := engineFor(cfg, w, engine.ModeETSQP).ExecuteSQL(sql); err != nil {
			return nil, fmt.Errorf("table3 %s: %w", qid, err)
		}
		out[qid] = sql
	}
	return out, nil
}

// PrefixWork reports the analytic slice prefix cost of Figure 14(d):
// with s slices over r rows, the Figure 8 dependency re-scans
// r*(s-1)/2 rows in total.
func PrefixWork(rows, slices int) int64 {
	if slices <= 1 {
		return 0
	}
	return int64(rows) * int64(slices-1) / 2
}
