// Package bench regenerates every table and figure of the paper's
// evaluation (Section VII) as data series. The cmd/etsqp-bench binary
// prints them; bench_test.go wraps them as testing.B benchmarks.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"etsqp/internal/dataset"
	"etsqp/internal/engine"
	"etsqp/internal/storage"

	// All codecs must be registered for the workloads.
	_ "etsqp/internal/encoding/chimp"
	_ "etsqp/internal/encoding/gorilla"
	_ "etsqp/internal/encoding/rlbe"
	_ "etsqp/internal/encoding/sprintz"
	_ "etsqp/internal/encoding/ts2diff"
	_ "etsqp/internal/fastlanes"
)

// Config scales the workloads.
type Config struct {
	Rows     int   // rows per series
	Seed     int64 // generator seed
	Workers  int   // engine worker pipelines
	PageSize int   // points per page
	Reps     int   // timed repetitions per point (best-of; default 3)
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Rows <= 0 {
		c.Rows = 100_000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	return c
}

// Measurement is one plotted point.
type Measurement struct {
	Figure     string  // e.g. "fig10"
	Series     string  // line label: approach or system
	X          string  // x position: dataset, query, thread count, ...
	Throughput float64 // Mtuples/s (tuples of loaded pages per second)
	Elapsed    time.Duration
	Extra      map[string]float64
}

// Approaches of the decoding comparison figures, in paper order.
var Approaches = []engine.Mode{
	engine.ModeETSQP, engine.ModeETSQPPrune, engine.ModeSerial,
	engine.ModeSBoost, engine.ModeFastLanes,
}

// DatasetLabels in Table II order.
var DatasetLabels = []string{"Atm", "Clim", "Gas", "Time", "Sine", "TPCH"}

// workload holds a generated dataset ingested under a codec.
type workload struct {
	store    *storage.Store
	ts       []int64 // series ts1 timestamps
	vals     []int64 // series ts1 values
	interval int64   // mean timestamp interval
	median   int64   // median value (selectivity 0.5 threshold)
}

// buildWorkload ingests two series of the dataset: ts1 with attribute 0
// on all timestamps, ts2 with attribute 1%attrs on every other timestamp
// (so joins have 0.5 selectivity and merges interleave).
func buildWorkload(cfg Config, label, valueCodec string) (*workload, error) {
	d, err := dataset.Generate(label, cfg.Rows, cfg.Seed)
	if err != nil {
		return nil, err
	}
	st := storage.NewStore()
	opts := storage.Options{PageSize: cfg.PageSize, ValueCodec: valueCodec}
	if err := st.Append("ts1", d.Time, d.Attrs[0], opts); err != nil {
		return nil, err
	}
	a2 := d.Attrs[len(d.Attrs)-1]
	t2 := make([]int64, 0, cfg.Rows/2)
	v2 := make([]int64, 0, cfg.Rows/2)
	for i := 0; i < cfg.Rows; i += 2 {
		t2 = append(t2, d.Time[i])
		v2 = append(v2, a2[i])
	}
	if err := st.Append("ts2", t2, v2, opts); err != nil {
		return nil, err
	}
	w := &workload{store: st, ts: d.Time, vals: d.Attrs[0]}
	if cfg.Rows > 1 {
		w.interval = (d.Time[cfg.Rows-1] - d.Time[0]) / int64(cfg.Rows-1)
	} else {
		w.interval = 1
	}
	sorted := append([]int64(nil), d.Attrs[0]...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	w.median = sorted[len(sorted)/2]
	return w, nil
}

// codecForMode picks the storage codec each approach queries.
func codecForMode(m engine.Mode) string {
	if m == engine.ModeFastLanes {
		return "fastlanes"
	}
	return storage.DefaultValueCodec
}

// engineFor builds the engine for a mode.
func engineFor(cfg Config, w *workload, m engine.Mode) *engine.Engine {
	e := engine.New(w.store, m)
	e.Workers = cfg.Workers
	return e
}

// queryFor renders benchmark query qid ("Q1".."Q6") against the workload.
// Defaults follow Section VII-A: filter selectivity 0.5 and 10^3 points
// per sliding-window instance.
func (w *workload) queryFor(qid string) (string, error) {
	n := len(w.ts)
	t0 := w.ts[0]
	tMid := w.ts[n/2] // time filters at selectivity 0.5
	winDT := w.interval * 1000
	switch qid {
	case "Q1":
		return fmt.Sprintf("SELECT SUM(A) FROM ts1 SW(%d, %d)", t0, winDT), nil
	case "Q2":
		return fmt.Sprintf("SELECT AVG(A) FROM ts1 SW(%d, %d)", t0, winDT), nil
	case "Q3":
		return fmt.Sprintf("SELECT SUM(A) FROM (SELECT * FROM ts1 WHERE A > %d)", w.median), nil
	case "Q4":
		return "SELECT ts1.A + ts2.A FROM ts1, ts2", nil
	case "Q5":
		return "SELECT * FROM ts1 UNION ts2 ORDER BY TIME", nil
	case "Q6":
		return "SELECT * FROM ts1, ts2", nil
	case "QT": // plain time-range aggregation at selectivity 0.5
		return fmt.Sprintf("SELECT SUM(A) FROM ts1 WHERE TIME >= %d AND TIME <= %d", t0, tMid), nil
	default:
		return "", fmt.Errorf("bench: unknown query %q", qid)
	}
}

// run measures the SQL best-of-Config.Reps. Raising -reps suppresses
// scheduler noise when the run feeds a regression check.
func run(cfg Config, e *engine.Engine, sql string) (Measurement, error) {
	return runReps(e, sql, cfg.Reps)
}

// runReps executes the SQL once for warm-up, then `reps` timed times,
// keeping the fastest run (standard best-of benchmarking to suppress
// scheduler and GC noise).
func runReps(e *engine.Engine, sql string, reps int) (Measurement, error) {
	if _, err := e.ExecuteSQL(sql); err != nil { // warm-up
		return Measurement{}, err
	}
	var best time.Duration
	var res *engine.Result
	for r := 0; r < reps; r++ {
		start := time.Now()
		rr, err := e.ExecuteSQL(sql)
		if err != nil {
			return Measurement{}, err
		}
		el := time.Since(start)
		if res == nil || el < best {
			best, res = el, rr
		}
	}
	elapsed := best
	tuples := res.Stats.TuplesLoaded
	m := Measurement{
		Elapsed:    elapsed,
		Throughput: float64(tuples) / elapsed.Seconds() / 1e6,
		Extra: map[string]float64{
			"pages":        float64(res.Stats.PagesTotal),
			"pages_pruned": float64(res.Stats.PagesPruned),
			"rows_pruned":  float64(res.Stats.RowsPruned),
			"slices":       float64(res.Stats.SlicesRun),
			"io_ms":        float64(res.Stats.IONanos) / 1e6,
			"decode_ms":    float64(res.Stats.DecodeNanos) / 1e6,
			"agg_ms":       float64(res.Stats.AggNanos) / 1e6,
			"merge_ms":     float64(res.Stats.MergeNanos) / 1e6,
		},
	}
	return m, nil
}

// BenchQueries lists the Table III query ids.
var BenchQueries = []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6"}
