package bench

import (
	"strings"
	"testing"
	"time"
)

func sampleMeasurements() []Measurement {
	return []Measurement{
		{Figure: "fig10", Series: "ETSQP", X: "Q3", Throughput: 250.5, Elapsed: 400 * time.Microsecond},
		{Figure: "fig10", Series: "ETSQP", X: "Q1", Throughput: 120.25, Elapsed: 833 * time.Microsecond},
		{Figure: "fig10", Series: "Serial", X: "Q1", Throughput: 30, Elapsed: 3333 * time.Microsecond},
	}
}

// TestReportJSONGolden pins the BENCH_*.json format: sorted records,
// stable field order, indented layout.
func TestReportJSONGolden(t *testing.T) {
	cfg := Config{Rows: 20000, Workers: 4, Seed: 42}
	var b strings.Builder
	if err := NewReport(cfg, sampleMeasurements()).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	want := `{
  "rows": 20000,
  "workers": 4,
  "seed": 42,
  "records": [
    {
      "figure": "fig10",
      "series": "ETSQP",
      "x": "Q1",
      "throughput_mts": 120.25,
      "elapsed_ns": 833000
    },
    {
      "figure": "fig10",
      "series": "ETSQP",
      "x": "Q3",
      "throughput_mts": 250.5,
      "elapsed_ns": 400000
    },
    {
      "figure": "fig10",
      "series": "Serial",
      "x": "Q1",
      "throughput_mts": 30,
      "elapsed_ns": 3333000
    }
  ]
}
`
	if got := b.String(); got != want {
		t.Errorf("report JSON mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestReportRoundTrip checks WriteJSON/ReadReport are inverses.
func TestReportRoundTrip(t *testing.T) {
	rep := NewReport(Config{Rows: 1000, Workers: 2, Seed: 7}, sampleMeasurements())
	var b strings.Builder
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != 1000 || back.Workers != 2 || back.Seed != 7 {
		t.Errorf("config fields lost: %+v", back)
	}
	if len(back.Records) != 3 || back.Records[0].Key() != "fig10|ETSQP|Q1" {
		t.Errorf("records lost or reordered: %+v", back.Records)
	}
}

// TestMergeBest checks the confirm-pass merge: matched records keep the
// faster pass, unmatched records from either side survive.
func TestMergeBest(t *testing.T) {
	a := []Measurement{
		{Figure: "f", Series: "A", X: "1", Throughput: 100, Elapsed: time.Millisecond},
		{Figure: "f", Series: "A", X: "2", Throughput: 50},
		{Figure: "f", Series: "onlyA", X: "1", Throughput: 7},
	}
	b := []Measurement{
		{Figure: "f", Series: "A", X: "1", Throughput: 90},
		{Figure: "f", Series: "A", X: "2", Throughput: 80, Elapsed: time.Microsecond},
		{Figure: "f", Series: "onlyB", X: "1", Throughput: 9},
	}
	got := MergeBest(a, b)
	if len(got) != 4 {
		t.Fatalf("got %d records, want 4: %+v", len(got), got)
	}
	byKey := map[string]Measurement{}
	for _, m := range got {
		byKey[m.Figure+"|"+m.Series+"|"+m.X] = m
	}
	if m := byKey["f|A|1"]; m.Throughput != 100 || m.Elapsed != time.Millisecond {
		t.Errorf("f|A|1 = %+v, want first pass kept", m)
	}
	if m := byKey["f|A|2"]; m.Throughput != 80 || m.Elapsed != time.Microsecond {
		t.Errorf("f|A|2 = %+v, want second pass kept", m)
	}
	if byKey["f|onlyA|1"].Throughput != 7 || byKey["f|onlyB|1"].Throughput != 9 {
		t.Errorf("unmatched records lost: %+v", got)
	}
}

// TestCompare checks the regression rules: only drops beyond tolerance
// count, improvements and unmatched records never do.
func TestCompare(t *testing.T) {
	base := Report{Records: []Record{
		{Figure: "f", Series: "A", X: "1", ThroughputMTS: 100},
		{Figure: "f", Series: "A", X: "2", ThroughputMTS: 100},
		{Figure: "f", Series: "A", X: "3", ThroughputMTS: 100},
		{Figure: "f", Series: "gone", X: "1", ThroughputMTS: 100},
		{Figure: "f", Series: "zero", X: "1", ThroughputMTS: 0},
	}}
	cur := Report{Records: []Record{
		{Figure: "f", Series: "A", X: "1", ThroughputMTS: 85},  // -15%: tolerated
		{Figure: "f", Series: "A", X: "2", ThroughputMTS: 70},  // -30%: regression
		{Figure: "f", Series: "A", X: "3", ThroughputMTS: 140}, // improvement
		{Figure: "f", Series: "new", X: "1", ThroughputMTS: 1}, // no baseline
		{Figure: "f", Series: "zero", X: "1", ThroughputMTS: 1},
	}}
	regs := Compare(cur, base, 0.20)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	if regs[0].Key != "f|A|2" {
		t.Errorf("regression key = %s, want f|A|2", regs[0].Key)
	}
	if regs[0].Drop < 0.29 || regs[0].Drop > 0.31 {
		t.Errorf("drop = %v, want ~0.30", regs[0].Drop)
	}
	if !strings.Contains(regs[0].String(), "-30%") {
		t.Errorf("rendering = %q, want -30%%", regs[0].String())
	}
	// Exactly at tolerance is not a regression (strict >).
	if regs := Compare(Report{Records: []Record{{Figure: "f", Series: "A", X: "1", ThroughputMTS: 80}}},
		Report{Records: []Record{{Figure: "f", Series: "A", X: "1", ThroughputMTS: 100}}}, 0.20); len(regs) != 0 {
		t.Errorf("20%% drop at 20%% tolerance flagged: %v", regs)
	}
}
