package serve

import (
	"strings"
	"testing"

	"etsqp/internal/engine"
	"etsqp/internal/exec"
	"etsqp/internal/obs"
	"etsqp/internal/storage"
)

// TestMetricsExecCacheGolden pins the Prometheus exposition of the
// decoded-page cache counters: a cold value-filter query misses and
// fills, a warm repeat hits, and an ingest into the series drops the
// entries through Store.OnMutate.
func TestMetricsExecCacheGolden(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	st := testStore(t) // 3 pages x 1024 rows
	cache := exec.NewPageCache(1 << 20)
	st.OnMutate(func(series string) { cache.InvalidateSeries(series) })
	e := engine.New(st, engine.ModeETSQP)
	e.Workers = 1
	e.Cache = cache
	// The value filter forces the decode path: the value column of each
	// of the three pages is decoded and admitted on the cold run (the
	// aggregate never materializes the time column), then re-served on
	// the warm one.
	const sql = "SELECT SUM(A) FROM (SELECT * FROM ts WHERE A > 4)"
	for i := 0; i < 2; i++ {
		if _, err := e.ExecuteSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	// Ingest into the cached series drops its entries via OnMutate.
	if err := st.Append("ts", []int64{10_000}, []int64{1}, storage.Options{PageSize: 1024}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	var block []string
	for _, ln := range strings.Split(b.String(), "\n") {
		if strings.Contains(ln, "etsqp_exec_cache_") {
			block = append(block, ln)
		}
	}
	// Families expose sorted by series name, not registration order.
	want := []string{
		`# HELP etsqp_exec_cache_evicted_bytes decoded bytes reclaimed by clock eviction`,
		`# TYPE etsqp_exec_cache_evicted_bytes counter`,
		`etsqp_exec_cache_evicted_bytes 0`,
		`# HELP etsqp_exec_cache_evictions cache entries evicted by the clock sweep to meet the byte budget`,
		`# TYPE etsqp_exec_cache_evictions counter`,
		`etsqp_exec_cache_evictions 0`,
		`# HELP etsqp_exec_cache_hits decoded-page cache lookups served without re-decoding`,
		`# TYPE etsqp_exec_cache_hits counter`,
		`etsqp_exec_cache_hits 3`,
		`# HELP etsqp_exec_cache_insert_bytes decoded bytes admitted to the cache`,
		`# TYPE etsqp_exec_cache_insert_bytes counter`,
		`etsqp_exec_cache_insert_bytes 24576`,
		`# HELP etsqp_exec_cache_inserts decoded page columns admitted to the cache`,
		`# TYPE etsqp_exec_cache_inserts counter`,
		`etsqp_exec_cache_inserts 3`,
		`# HELP etsqp_exec_cache_invalidated cache entries dropped because their series was mutated by ingest`,
		`# TYPE etsqp_exec_cache_invalidated counter`,
		`etsqp_exec_cache_invalidated 3`,
		`# HELP etsqp_exec_cache_misses decoded-page cache lookups that fell through to the decode path`,
		`# TYPE etsqp_exec_cache_misses counter`,
		`etsqp_exec_cache_misses 3`,
	}
	if len(block) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(block), len(want), strings.Join(block, "\n"))
	}
	for i := range want {
		if block[i] != want[i] {
			t.Errorf("line %d:\n  got  %s\n  want %s", i, block[i], want[i])
		}
	}
	if cache.Len() != 0 {
		t.Fatalf("cache not invalidated: %d entries", cache.Len())
	}
}
