package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"etsqp/internal/exec"
	"etsqp/internal/obs"
)

// topQueryCount is how many recent queries the /debug/windows document
// ranks by worker CPU.
const topQueryCount = 10

// QuerySummary is one recent query in the /debug/windows top-N list:
// enough to rank by cost and to chase the trace ID into the slow-query
// log.
type QuerySummary struct {
	TraceID   string `json:"trace_id"`
	Query     string `json:"query"`
	ElapsedNs int64  `json:"elapsed_ns"`
	CPUNs     int64  `json:"cpu_ns"`
	AtUnixNs  int64  `json:"at_unix_ns"`
}

// SlowDoc summarizes the slow-query log state.
type SlowDoc struct {
	Count   int64 `json:"count"`
	Dropped int64 `json:"dropped"`
	LastNs  int64 `json:"last_ns"`
	Max     int   `json:"max"`
}

// WindowDoc is one rolling window's derived statistics. Rates carries
// the per-second rate of every counter that moved inside the window,
// keyed by dotted obs name; the named fields are the headline numbers
// the ops console renders.
type WindowDoc struct {
	Label             string             `json:"label"`
	Seconds           float64            `json:"seconds"`
	QPS               float64            `json:"qps"`
	P50Ns             float64            `json:"p50_ns"`
	P99Ns             float64            `json:"p99_ns"`
	DecodeBytesPerSec float64            `json:"decode_bytes_per_sec"`
	MorselsPerSec     float64            `json:"morsels_per_sec"`
	PoolUtilization   float64            `json:"pool_utilization"`
	CacheHitRatio     float64            `json:"cache_hit_ratio"`
	Rates             map[string]float64 `json:"rates,omitempty"`
}

// WindowsDoc is the /debug/windows JSON document: rolling-window rates
// and quantiles at three horizons, current runtime gauges, the top
// recent queries by worker CPU, and the slow-query log summary.
type WindowsDoc struct {
	AtUnixNs    int64            `json:"at_unix_ns"`
	PoolWorkers int              `json:"pool_workers"`
	Windows     []WindowDoc      `json:"windows"`
	Gauges      map[string]int64 `json:"gauges,omitempty"`
	Top         []QuerySummary   `json:"top"`
	Slow        SlowDoc          `json:"slow"`
}

// poolWorkers reports the size of the pool the served engine runs on.
func (s *Server) poolWorkers() int {
	if s.Engine != nil && s.Engine.Pool != nil {
		return s.Engine.Pool.Size()
	}
	return exec.Default().Size()
}

// windowHorizons are the durations /debug/windows reports, labeled the
// way the console shows them.
var windowHorizons = []struct {
	label string
	d     time.Duration
}{
	{"10s", 10 * time.Second},
	{"1m", time.Minute},
	{"5m", 5 * time.Minute},
}

// buildWindowDoc derives the headline numbers from one window's delta
// snapshot.
func buildWindowDoc(label string, ws *obs.WindowStats, workers int) WindowDoc {
	d := WindowDoc{
		Label:             label,
		Seconds:           ws.Seconds,
		DecodeBytesPerSec: ws.Rate("storage.bytes_scanned"),
		MorselsPerSec:     ws.Rate("exec.morsels"),
	}
	if qh, ok := ws.Hists["engine.hist.query_ns"]; ok {
		if ws.Seconds > 0 {
			d.QPS = float64(qh.Count) / ws.Seconds
		}
		if qh.Count > 0 {
			d.P50Ns = qh.Quantile(0.50)
			d.P99Ns = qh.Quantile(0.99)
		}
	}
	if mh, ok := ws.Hists["exec.hist.morsel_ns"]; ok && workers > 0 && ws.Seconds > 0 {
		// Morsel time includes submitter goroutines running morsels
		// alongside the pool workers, so the raw ratio over worker capacity
		// can exceed 1; clamp — 100% already means the pool is saturated.
		u := float64(mh.Sum) / (ws.Seconds * 1e9 * float64(workers))
		if u > 1 {
			u = 1
		}
		d.PoolUtilization = u
	}
	hits := ws.Delta["exec.cache.hits"]
	misses := ws.Delta["exec.cache.misses"]
	if hits+misses > 0 {
		d.CacheHitRatio = float64(hits) / float64(hits+misses)
	}
	for name, v := range ws.Delta {
		if v == 0 || ws.Seconds <= 0 {
			continue
		}
		if d.Rates == nil {
			d.Rates = make(map[string]float64)
		}
		d.Rates[name] = float64(v) / ws.Seconds
	}
	return d
}

// WindowsSnapshot assembles the /debug/windows document. With no
// Windows sampler configured the document still carries the top-N and
// slow-log sections; the windows list is just empty.
func (s *Server) WindowsSnapshot(now time.Time) WindowsDoc {
	doc := WindowsDoc{
		AtUnixNs:    now.UnixNano(),
		PoolWorkers: s.poolWorkers(),
		Windows:     []WindowDoc{},
	}
	if s.Windows != nil {
		for _, h := range windowHorizons {
			ws, ok := s.Windows.Stats(h.d)
			if !ok {
				continue
			}
			doc.Windows = append(doc.Windows, buildWindowDoc(h.label, ws, doc.PoolWorkers))
			if doc.Gauges == nil && len(ws.Gauges) > 0 {
				doc.Gauges = ws.Gauges
			}
		}
	}
	doc.Top = s.TopQueries(topQueryCount)
	count, last := s.SlowStats()
	doc.Slow = SlowDoc{Count: count, Dropped: s.SlowDropped(), LastNs: last, Max: s.slowMax()}
	return doc
}

// handleWindows serves the rolling-window statistics document as JSON.
func (s *Server) handleWindows(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.WindowsSnapshot(time.Now()))
}
