package serve

import (
	"io"
	"net/http"
)

// handleDash serves the self-contained ops dashboard: one HTML page,
// no external assets, polling /debug/windows every second from the
// browser.
func handleDash(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = io.WriteString(w, dashHTML)
}

// dashHTML is the whole dashboard. It renders the same document the
// etsqp-cli top console consumes, so the two views can never disagree
// about what the server is doing.
const dashHTML = `<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>etsqp ops</title>
<style>
body { font-family: ui-monospace, Menlo, Consolas, monospace; background: #101418; color: #d8dee4; margin: 2em; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin-top: 1.5em; }
table { border-collapse: collapse; margin-top: 0.5em; }
th, td { border: 1px solid #2c333a; padding: 0.3em 0.8em; text-align: right; }
th:first-child, td:first-child { text-align: left; }
.err { color: #e06c75; }
#stamp { color: #7a828a; font-size: 0.85em; }
</style>
</head>
<body>
<h1>etsqp ops console</h1>
<div id="stamp">connecting&hellip;</div>
<h2>windows</h2>
<table id="win"><thead><tr>
<th>window</th><th>qps</th><th>p50</th><th>p99</th><th>pool util</th><th>cache hit</th><th>decode B/s</th><th>morsels/s</th>
</tr></thead><tbody></tbody></table>
<h2>runtime</h2>
<table id="rt"><thead><tr><th>gauge</th><th>value</th></tr></thead><tbody></tbody></table>
<h2>top queries by worker CPU</h2>
<table id="top"><thead><tr>
<th>trace id</th><th>query</th><th>cpu</th><th>elapsed</th>
</tr></thead><tbody></tbody></table>
<h2>slow-query log</h2>
<div id="slow"></div>
<script>
function ns(v) {
  if (!v) return "0";
  if (v >= 1e9) return (v / 1e9).toFixed(2) + "s";
  if (v >= 1e6) return (v / 1e6).toFixed(2) + "ms";
  if (v >= 1e3) return (v / 1e3).toFixed(1) + "us";
  return v.toFixed(0) + "ns";
}
function pct(v) { return (100 * v).toFixed(1) + "%"; }
function cell(tr, text) {
  var td = document.createElement("td");
  td.textContent = text;
  tr.appendChild(td);
}
function fill(id, rows) {
  var tb = document.querySelector(id + " tbody");
  tb.textContent = "";
  rows.forEach(function (r) {
    var tr = document.createElement("tr");
    r.forEach(function (c) { cell(tr, c); });
    tb.appendChild(tr);
  });
}
async function refresh() {
  var stamp = document.getElementById("stamp");
  try {
    var res = await fetch("/debug/windows");
    var doc = await res.json();
    stamp.className = "";
    stamp.textContent = new Date(doc.at_unix_ns / 1e6).toLocaleTimeString() +
      " · " + doc.pool_workers + " pool workers";
    fill("#win", (doc.windows || []).map(function (w) {
      return [w.label, w.qps.toFixed(2), ns(w.p50_ns), ns(w.p99_ns),
        pct(w.pool_utilization), pct(w.cache_hit_ratio),
        w.decode_bytes_per_sec.toFixed(0), w.morsels_per_sec.toFixed(1)];
    }));
    fill("#rt", Object.keys(doc.gauges || {}).sort().map(function (k) {
      return [k, String(doc.gauges[k])];
    }));
    fill("#top", (doc.top || []).map(function (q) {
      return [q.trace_id, q.query, ns(q.cpu_ns), ns(q.elapsed_ns)];
    }));
    document.getElementById("slow").textContent =
      doc.slow.count + " slow (" + doc.slow.dropped + " dropped, ring max " +
      doc.slow.max + "), last " + ns(doc.slow.last_ns);
  } catch (e) {
    stamp.className = "err";
    stamp.textContent = "fetch failed: " + e;
  }
}
refresh();
setInterval(refresh, 1000);
</script>
</body>
</html>
`
