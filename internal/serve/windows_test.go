package serve

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
	"unicode/utf8"

	"etsqp/internal/engine"
	"etsqp/internal/obs"
)

// TestMetricsExemplarGolden pins the OpenMetrics exemplar syntax: a
// bucket line whose histogram holds an exemplar carries
// `# {trace_id="..."} value timestamp` with the timestamp in seconds,
// and the exposition ends with the mandatory "# EOF" trailer.
func TestMetricsExemplarGolden(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	obs.TransportHistFrameBytes.ObserveExemplar(3, "00f1e2d3c4b5a697") // bucket le="4"
	obs.TransportHistFrameBytes.ObserveExemplar(1<<62, "ffff00001111aaaa")
	ex := obs.TransportHistFrameBytes.Exemplars()
	var b strings.Builder
	if err := WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(b.String(), "\n# EOF\n") {
		t.Error("OpenMetrics exposition does not end with the # EOF trailer")
	}
	stamp := func(e obs.Exemplar) string {
		return strconv.FormatFloat(float64(e.UnixNanos)/1e9, 'f', 3, 64)
	}
	e4, ok := ex[2] // histBucket(3) = 2, bound 4
	if !ok {
		t.Fatal("no exemplar recorded in bucket 2")
	}
	wantBucket := fmt.Sprintf(
		`etsqp_transport_hist_frame_bytes_bucket{le="4"} 1 # {trace_id="00f1e2d3c4b5a697"} 3 %s`,
		stamp(e4))
	if !strings.Contains(b.String(), wantBucket+"\n") {
		t.Errorf("exposition missing exemplar line %q in:\n%s", wantBucket, b.String())
	}
	eInf, ok := ex[obs.HistBuckets-1]
	if !ok {
		t.Fatal("no exemplar recorded in the top bucket")
	}
	wantInf := fmt.Sprintf(
		`etsqp_transport_hist_frame_bytes_bucket{le="+Inf"} 2 # {trace_id="ffff00001111aaaa"} %d %s`,
		int64(1)<<62, stamp(eInf))
	if !strings.Contains(b.String(), wantInf+"\n") {
		t.Errorf("exposition missing top-bucket exemplar line %q in:\n%s", wantInf, b.String())
	}
}

// TestSlowRingBoundedAndDropped checks the in-memory slow-query ring
// holds at most SlowMax traces, evicts oldest-first, and counts every
// eviction both on the server and in the obs registry.
func TestSlowRingBoundedAndDropped(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	s := testServer(t, nil)
	s.SlowMax = 2
	var traces []*engine.Trace
	for i := 0; i < 5; i++ {
		tr := engine.NewTrace(fmt.Sprintf("SELECT %d", i), "ETSQP", 1)
		tr.ElapsedNs = int64(i + 1)
		traces = append(traces, tr)
		s.logSlow(tr)
	}
	got := s.SlowEntries()
	if len(got) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(got))
	}
	// Oldest-first: the two survivors are traces 3 and 4.
	if got[0].TraceID != traces[3].TraceID || got[1].TraceID != traces[4].TraceID {
		t.Errorf("ring holds %s,%s, want %s,%s (newest two, oldest first)",
			got[0].TraceID, got[1].TraceID, traces[3].TraceID, traces[4].TraceID)
	}
	if d := s.SlowDropped(); d != 3 {
		t.Errorf("SlowDropped() = %d, want 3", d)
	}
	if v := obs.Capture()["serve.slow_dropped"]; v != 3 {
		t.Errorf("serve.slow_dropped = %d, want 3", v)
	}
	count, _ := s.SlowStats()
	if count != 5 {
		t.Errorf("slow count = %d, want 5 (eviction does not uncount)", count)
	}
}

// TestSlowMaxDisabled checks a negative SlowMax retains nothing while
// still counting.
func TestSlowMaxDisabled(t *testing.T) {
	s := testServer(t, nil)
	s.SlowMax = -1
	tr := engine.NewTrace("SELECT 1", "ETSQP", 1)
	tr.ElapsedNs = 1
	s.logSlow(tr)
	if got := s.SlowEntries(); len(got) != 0 {
		t.Errorf("ring holds %d traces with SlowMax<0, want 0", len(got))
	}
	if count, _ := s.SlowStats(); count != 1 {
		t.Errorf("slow count = %d, want 1", count)
	}
}

// TestExemplarResolvesToSlowLogEntry is the acceptance scenario: run a
// query, scrape /metrics, take the trace ID off the query-latency
// bucket exemplar, and resolve it to the matching trace in the
// slow-query ring.
func TestExemplarResolvesToSlowLogEntry(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	var slowLog bytes.Buffer
	s := testServer(t, &slowLog)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	httpGet(t, srv.URL+"/query?q=SELECT+SUM(A)+FROM+ts")
	metrics := httpGetAccept(t, srv.URL+"/metrics", "application/openmetrics-text; version=1.0.0")
	re := regexp.MustCompile(`etsqp_engine_hist_query_ns_bucket\{le="[^"]+"\} \d+ # \{trace_id="([0-9a-f]+)"\}`)
	m := re.FindStringSubmatch(metrics)
	if m == nil {
		t.Fatalf("no exemplar on etsqp_engine_hist_query_ns buckets:\n%s", metrics)
	}
	traceID := m[1]
	var found *engine.Trace
	for _, tr := range s.SlowEntries() {
		if tr.TraceID == traceID {
			found = tr
		}
	}
	if found == nil {
		t.Fatalf("exemplar trace %s not in the slow-query ring", traceID)
	}
	if found.Query != "SELECT SUM(A) FROM ts" || found.ElapsedNs <= 0 {
		t.Errorf("resolved trace implausible: %+v", found)
	}
	// The stderr-style log line carries the same ID.
	if !strings.Contains(slowLog.String(), `"trace_id":"`+traceID+`"`) {
		t.Errorf("slow log line missing trace_id %s:\n%s", traceID, slowLog.String())
	}
}

// TestWindowsEndpoint drives the sampler with a deterministic clock
// around real /query traffic and checks the /debug/windows document:
// per-horizon QPS and quantiles, the top-queries ranking with trace
// IDs, and the slow-log summary.
func TestWindowsEndpoint(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	s := testServer(t, nil)
	s.Windows = obs.NewWindow(time.Second, time.Minute)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	base := time.Unix(1_700_000_000, 0)
	s.Windows.Tick(base)
	httpGet(t, srv.URL+"/query?q=SELECT+SUM(A)+FROM+ts")
	httpGet(t, srv.URL+"/query?q=SELECT+COUNT(A)+FROM+ts")
	s.Windows.Tick(base.Add(2 * time.Second))

	doc, err := FetchWindows(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if doc.PoolWorkers <= 0 {
		t.Errorf("PoolWorkers = %d, want > 0", doc.PoolWorkers)
	}
	if len(doc.Windows) != 3 {
		t.Fatalf("got %d windows, want 3 (10s/1m/5m): %+v", len(doc.Windows), doc.Windows)
	}
	for _, w := range doc.Windows {
		if w.Seconds != 2 {
			t.Errorf("window %s spans %.1fs, want the 2s between ticks", w.Label, w.Seconds)
		}
		if w.QPS != 1 { // 2 queries / 2 seconds
			t.Errorf("window %s QPS = %.2f, want 1", w.Label, w.QPS)
		}
		if w.P99Ns <= 0 || w.P50Ns <= 0 {
			t.Errorf("window %s quantiles missing: p50=%v p99=%v", w.Label, w.P50Ns, w.P99Ns)
		}
		if w.MorselsPerSec <= 0 {
			t.Errorf("window %s morsels/s = %v, want > 0", w.Label, w.MorselsPerSec)
		}
	}
	if doc.Gauges["go.goroutines"] <= 0 {
		t.Errorf("runtime gauges missing: %v", doc.Gauges)
	}
	if len(doc.Top) != 2 {
		t.Fatalf("top list has %d entries, want 2", len(doc.Top))
	}
	for _, q := range doc.Top {
		if q.TraceID == "" || q.ElapsedNs <= 0 {
			t.Errorf("top entry implausible: %+v", q)
		}
	}
	if doc.Top[0].CPUNs < doc.Top[1].CPUNs {
		t.Errorf("top list not sorted by CPU: %d before %d", doc.Top[0].CPUNs, doc.Top[1].CPUNs)
	}
	if doc.Slow.Count != 2 || doc.Slow.Max != defaultSlowMax {
		t.Errorf("slow summary = %+v, want count 2 max %d", doc.Slow, defaultSlowMax)
	}
}

// TestPoolUtilizationClamped checks the derived utilization caps at
// 100%: submitter goroutines run morsels alongside the pool workers, so
// raw morsel time can exceed worker capacity.
func TestPoolUtilizationClamped(t *testing.T) {
	ws := &obs.WindowStats{
		Seconds: 1,
		Hists: map[string]obs.HistogramSnapshot{
			// 3s of morsel time against 2 workers over a 1s window.
			"exec.hist.morsel_ns": {Name: "exec.hist.morsel_ns", Sum: 3_000_000_000, Count: 3},
		},
	}
	if d := buildWindowDoc("10s", ws, 2); d.PoolUtilization != 1 {
		t.Errorf("PoolUtilization = %v with oversubscribed morsel time, want clamped 1", d.PoolUtilization)
	}
	ws.Hists["exec.hist.morsel_ns"] = obs.HistogramSnapshot{
		Name: "exec.hist.morsel_ns", Sum: 1_000_000_000, Count: 1,
	}
	if d := buildWindowDoc("10s", ws, 2); d.PoolUtilization != 0.5 {
		t.Errorf("PoolUtilization = %v, want 0.5", d.PoolUtilization)
	}
}

// TestTrimQueryRuneBoundary checks table truncation never splits a
// multi-byte rune into an invalid sequence.
func TestTrimQueryRuneBoundary(t *testing.T) {
	q := strings.Repeat("€", 5) // 3 bytes per rune
	got := trimQuery(q, 9)      // cut lands mid-rune at byte 8
	if !utf8.ValidString(got) {
		t.Errorf("trimQuery produced invalid UTF-8: %q", got)
	}
	if want := "€€…"; got != want {
		t.Errorf("trimQuery = %q, want %q", got, want)
	}
	if got := trimQuery("SELECT 1", 60); got != "SELECT 1" {
		t.Errorf("short query mangled: %q", got)
	}
}

// TestWindowsEndpointNoSampler checks the endpoint degrades cleanly
// with no Window configured.
func TestWindowsEndpointNoSampler(t *testing.T) {
	s := testServer(t, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	doc, err := FetchWindows(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Windows) != 0 {
		t.Errorf("got %d windows without a sampler, want 0", len(doc.Windows))
	}
}

// TestDashServes checks the ops dashboard is mounted and
// self-contained.
func TestDashServes(t *testing.T) {
	s := testServer(t, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body := httpGet(t, srv.URL+"/debug/dash")
	for _, want := range []string{"<html", "/debug/windows", "etsqp ops"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if strings.Contains(body, "src=\"http") || strings.Contains(body, "href=\"http") {
		t.Error("dashboard references external assets")
	}
}

// TestRunTopRendersFrame runs one console frame against a live server
// and checks the headline sections render.
func TestRunTopRendersFrame(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	s := testServer(t, nil)
	s.Windows = obs.NewWindow(time.Second, time.Minute)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	base := time.Unix(1_700_000_000, 0)
	s.Windows.Tick(base)
	httpGet(t, srv.URL+"/query?q=SELECT+SUM(A)+FROM+ts")
	s.Windows.Tick(base.Add(time.Second))

	var out bytes.Buffer
	if err := RunTop(&out, srv.URL, time.Millisecond, 1, 5); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"etsqp top", "window", "trace id", "10s", "SELECT SUM(A) FROM ts"} {
		if !strings.Contains(got, want) {
			t.Errorf("console frame missing %q:\n%s", want, got)
		}
	}
	if err := RunTop(&out, "http://127.0.0.1:1", time.Millisecond, 1, 5); err == nil {
		t.Error("RunTop against a dead server returned nil error")
	}
}
