package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"etsqp/internal/engine"
	"etsqp/internal/obs"
	"etsqp/internal/storage"
	"etsqp/internal/transport"

	_ "etsqp/internal/encoding/ts2diff"
)

// testStore builds a deterministic 3-page store (mirrors the engine
// package's plan fixture).
func testStore(t *testing.T) *storage.Store {
	t.Helper()
	const pageSize = 1024
	n := 3 * pageSize
	ts := make([]int64, n)
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		ts[i] = 1000 + int64(i)
		vals[i] = int64(i % 11)
	}
	st := storage.NewStore()
	if err := st.Append("ts", ts, vals, storage.Options{PageSize: pageSize}); err != nil {
		t.Fatal(err)
	}
	return st
}

func testServer(t *testing.T, slowLog *bytes.Buffer) *Server {
	t.Helper()
	st := testStore(t)
	e := engine.New(st, engine.ModeETSQP)
	e.Workers = 1
	s := &Server{Engine: e, Store: st, SlowThreshold: 0, MaxRows: 20}
	if slowLog != nil {
		s.SlowLog = slowLog
	}
	return s
}

// TestMetricsHistogramGolden pins the Prometheus exposition of one
// histogram: cumulative non-empty buckets, the +Inf bucket, sum and
// count, with power-of-two le bounds.
func TestMetricsHistogramGolden(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	obs.TransportHistFrameBytes.Observe(0)    // bucket 0, le="1"
	obs.TransportHistFrameBytes.Observe(3)    // bucket 2, le="4"
	obs.TransportHistFrameBytes.Observe(1024) // bucket 11, le="2048"
	var b strings.Builder
	if err := WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	var block []string
	for _, ln := range strings.Split(b.String(), "\n") {
		if strings.Contains(ln, "etsqp_transport_hist_frame_bytes") {
			block = append(block, ln)
		}
	}
	want := []string{
		`# HELP etsqp_transport_hist_frame_bytes wire-size distribution of frames written and parsed`,
		`# TYPE etsqp_transport_hist_frame_bytes histogram`,
		`etsqp_transport_hist_frame_bytes_bucket{le="1"} 1`,
		`etsqp_transport_hist_frame_bytes_bucket{le="4"} 2`,
		`etsqp_transport_hist_frame_bytes_bucket{le="2048"} 3`,
		`etsqp_transport_hist_frame_bytes_bucket{le="+Inf"} 3`,
		`etsqp_transport_hist_frame_bytes_sum 1027`,
		`etsqp_transport_hist_frame_bytes_count 3`,
	}
	if len(block) != len(want) {
		t.Fatalf("histogram block has %d lines, want %d:\n%s", len(block), len(want), strings.Join(block, "\n"))
	}
	for i := range want {
		if block[i] != want[i] {
			t.Errorf("line %d:\ngot:  %s\nwant: %s", i, block[i], want[i])
		}
	}
}

// TestMetricsTopBucketNoDuplicateInf checks a populated top bucket
// (values >= 2^62, whose bound is +Inf) does not emit a second
// le="+Inf" sample alongside the mandatory trailing one.
func TestMetricsTopBucketNoDuplicateInf(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	obs.TransportHistFrameBytes.Observe(3)
	obs.TransportHistFrameBytes.Observe(1 << 62) // top bucket
	var b strings.Builder
	if err := WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	infLines := 0
	for _, ln := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(ln, `etsqp_transport_hist_frame_bytes_bucket{le="+Inf"} `) {
			infLines++
			if ln != `etsqp_transport_hist_frame_bytes_bucket{le="+Inf"} 2` {
				t.Errorf("+Inf bucket must carry the full count: %q", ln)
			}
		}
	}
	if infLines != 1 {
		t.Errorf("got %d le=\"+Inf\" samples, want exactly 1", infLines)
	}
}

// TestMetricsExpositionValid checks every line of the classic /metrics
// exposition is well-formed Prometheus text format (version 0.0.4) and
// every registered metric appears: counters as single samples,
// histograms with bucket, sum and count series ending in the mandatory
// le="+Inf" bucket — and no OpenMetrics-only syntax (exemplars, # EOF)
// leaks in, since a 0.0.4 parser rejects it.
func TestMetricsExpositionValid(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	// Put real traffic through so histograms have non-trivial buckets.
	e := engine.New(testStore(t), engine.ModeETSQP)
	if _, err := e.ExecuteSQL("SELECT SUM(A), COUNT(A) FROM ts"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	helpRe := regexp.MustCompile(`^# HELP etsqp_[a-z0-9_]+ .+$`)
	typeRe := regexp.MustCompile(`^# TYPE etsqp_[a-z0-9_]+ (counter|gauge|histogram)$`)
	sampleRe := regexp.MustCompile(`^etsqp_[a-z0-9_]+(_bucket\{le="([0-9.e+]+|\+Inf)"\})? -?\d+$`)
	for _, ln := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(ln, "# HELP "):
			if !helpRe.MatchString(ln) {
				t.Errorf("malformed HELP line: %q", ln)
			}
		case strings.HasPrefix(ln, "# TYPE "):
			if !typeRe.MatchString(ln) {
				t.Errorf("malformed TYPE line: %q", ln)
			}
		default:
			if !sampleRe.MatchString(ln) {
				t.Errorf("malformed sample line: %q", ln)
			}
		}
	}
	for _, m := range obs.Metrics() {
		if !strings.Contains(out, promName(m.Name)+" ") {
			t.Errorf("counter %s missing from exposition", m.Name)
		}
	}
	for _, g := range obs.Gauges() {
		if !strings.Contains(out, "# TYPE "+promName(g.Name)+" gauge\n") {
			t.Errorf("gauge %s missing from exposition", g.Name)
		}
	}
	for _, h := range obs.Histograms() {
		n := promName(h.Name)
		for _, suffix := range []string{`_bucket{le="+Inf"} `, "_sum ", "_count "} {
			if !strings.Contains(out, n+suffix) {
				t.Errorf("histogram %s missing %s series", h.Name, strings.TrimSpace(suffix))
			}
		}
	}
	// The query must have landed in the query-latency histogram.
	if !regexp.MustCompile(`etsqp_engine_hist_query_ns_count [1-9]`).MatchString(out) {
		t.Error("engine.hist.query_ns count is zero after a query")
	}
}

// TestOpenMetricsExpositionValid checks the negotiated OpenMetrics
// exposition: counter samples carry the mandated _total suffix,
// exemplar suffixes are well-formed, and the document ends with # EOF.
func TestOpenMetricsExpositionValid(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	e := engine.New(testStore(t), engine.ModeETSQP)
	if _, err := e.ExecuteSQL("SELECT SUM(A), COUNT(A) FROM ts"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "\n# EOF\n") {
		t.Error("OpenMetrics exposition does not end with # EOF")
	}
	sampleRe := regexp.MustCompile(`^etsqp_[a-z0-9_]+(_bucket\{le="([0-9.e+]+|\+Inf)"\})? -?\d+` +
		`( # \{trace_id="[0-9a-f]+"\} -?\d+ \d+\.\d{3})?$`)
	for _, ln := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(ln, "# ") {
			continue // HELP/TYPE/EOF lines, covered by the plain-format test
		}
		if !sampleRe.MatchString(ln) {
			t.Errorf("malformed OpenMetrics sample line: %q", ln)
		}
	}
	for _, m := range obs.Metrics() {
		if !strings.Contains(out, promName(m.Name)+"_total ") {
			t.Errorf("counter %s missing its _total sample", m.Name)
		}
		if strings.Contains(out, "# TYPE "+promName(m.Name)+"_total ") {
			t.Errorf("counter %s family metadata must not carry _total", m.Name)
		}
	}
}

// TestMetricsContentNegotiation checks /metrics serves the classic
// text format by default and the exemplar-bearing OpenMetrics format
// only to scrapers that ask for it via Accept.
func TestMetricsContentNegotiation(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	s := testServer(t, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	httpGet(t, srv.URL+"/query?q=SELECT+SUM(A)+FROM+ts") // seeds a latency exemplar

	get := func(accept string) (string, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		body, err := io.ReadAll(res.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), res.Header.Get("Content-Type")
	}

	plain, ct := get("")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("default scrape Content-Type = %q, want classic 0.0.4", ct)
	}
	if strings.Contains(plain, " # {") || strings.Contains(plain, "# EOF") {
		t.Error("classic scrape carries OpenMetrics-only syntax")
	}
	if !strings.Contains(plain, "etsqp_engine_queries 1\n") {
		t.Error("classic scrape missing bare counter sample etsqp_engine_queries")
	}

	// The Prometheus scraper offers both formats, OpenMetrics preferred.
	om, ct := get("application/openmetrics-text; version=1.0.0; q=0.5, text/plain; version=0.0.4; q=0.4")
	if ct != openMetricsContentType {
		t.Errorf("negotiated Content-Type = %q, want %q", ct, openMetricsContentType)
	}
	if !strings.HasSuffix(om, "\n# EOF\n") {
		t.Error("OpenMetrics scrape missing # EOF trailer")
	}
	if !strings.Contains(om, " # {trace_id=") {
		t.Error("OpenMetrics scrape missing the seeded exemplar")
	}
	if !strings.Contains(om, "etsqp_engine_queries_total 1\n") {
		t.Error("OpenMetrics scrape missing _total counter sample")
	}
}

// TestVarsJSON checks the /debug/vars document parses and carries both
// counter values and histogram summaries.
func TestVarsJSON(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	e := engine.New(testStore(t), engine.ModeETSQP)
	if _, err := e.ExecuteSQL("SELECT SUM(A) FROM ts"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteVars(&b); err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(b.String()), &vars); err != nil {
		t.Fatalf("vars document does not parse: %v", err)
	}
	var queries int64
	if err := json.Unmarshal(vars["engine.queries"], &queries); err != nil || queries != 1 {
		t.Errorf("engine.queries = %d (err %v), want 1", queries, err)
	}
	var h histVar
	if err := json.Unmarshal(vars["engine.hist.query_ns"], &h); err != nil {
		t.Fatalf("engine.hist.query_ns does not parse as a histogram summary: %v", err)
	}
	if h.Count != 1 || h.Sum <= 0 || h.P50 <= 0 {
		t.Errorf("histogram summary implausible: %+v", h)
	}
}

// TestQueryEndpointAndSlowLog is the acceptance scenario: a query over
// the slow threshold produces a span-tree JSON log line whose stage
// durations sum to within 10% of the query's wall time.
func TestQueryEndpointAndSlowLog(t *testing.T) {
	var slowLog bytes.Buffer
	s := testServer(t, &slowLog)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp := httpGet(t, srv.URL+"/query?q=SELECT+SUM(A),+COUNT(A)+FROM+ts")
	if !strings.Contains(resp, "SUM(A) = ") || !strings.Contains(resp, "COUNT(A) = ") {
		t.Fatalf("query response missing aggregates:\n%s", resp)
	}
	line := strings.TrimSpace(slowLog.String())
	if line == "" {
		t.Fatal("slow-query log empty with threshold 0")
	}
	var tr engine.Trace
	if err := json.Unmarshal([]byte(line), &tr); err != nil {
		t.Fatalf("slow-query line is not trace JSON: %v\n%s", err, line)
	}
	if tr.ElapsedNs <= 0 || tr.Root.Name != "query" {
		t.Fatalf("trace implausible: %+v", &tr)
	}
	var sum int64
	for _, sp := range tr.Root.Children {
		if sp.Name == "parse" || sp.Name == "plan" {
			continue
		}
		sum += sp.DurNs
	}
	diff := sum - tr.ElapsedNs
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.10*float64(tr.ElapsedNs) {
		t.Errorf("logged stage sum %d differs from elapsed %d by more than 10%%", sum, tr.ElapsedNs)
	}
}

// TestSlowLogThresholdGates checks fast queries stay out of the log.
func TestSlowLogThresholdGates(t *testing.T) {
	var slowLog bytes.Buffer
	s := testServer(t, &slowLog)
	s.SlowThreshold = time.Hour
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	httpGet(t, srv.URL+"/query?q=SELECT+SUM(A)+FROM+ts")
	if slowLog.Len() != 0 {
		t.Errorf("fast query logged as slow:\n%s", slowLog.String())
	}
}

// TestSlowStats checks the slow-query counters track threshold
// crossings even without a log sink, and stay zero when disabled.
func TestSlowStats(t *testing.T) {
	s := testServer(t, nil) // SlowLog nil: counting must not need a sink
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	httpGet(t, srv.URL+"/query?q=SELECT+SUM(A)+FROM+ts")
	httpGet(t, srv.URL+"/query?q=SELECT+COUNT(A)+FROM+ts")
	count, lastNs := s.SlowStats()
	if count != 2 {
		t.Errorf("slow count = %d after 2 queries at threshold 0, want 2", count)
	}
	if lastNs <= 0 {
		t.Errorf("last slow elapsed = %dns, want > 0", lastNs)
	}

	s.SlowThreshold = -1 // disabled: nothing counts
	httpGet(t, srv.URL+"/query?q=SELECT+SUM(A)+FROM+ts")
	if c, _ := s.SlowStats(); c != count {
		t.Errorf("slow count moved to %d with logging disabled, want %d", c, count)
	}
}

// TestQueryTraceParam checks ?trace=1 returns the trace document.
func TestQueryTraceParam(t *testing.T) {
	s := testServer(t, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body := httpGet(t, srv.URL+"/query?q=SELECT+SUM(A)+FROM+ts&trace=1")
	var tr engine.Trace
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("trace response does not parse: %v", err)
	}
	if tr.Query != "SELECT SUM(A) FROM ts" || len(tr.Root.Children) == 0 {
		t.Errorf("trace response implausible: %+v", &tr)
	}
}

// TestQueryErrors checks bad requests surface as 400s.
func TestQueryErrors(t *testing.T) {
	s := testServer(t, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	for _, url := range []string{"/query", "/query?q=NOT+SQL"} {
		res, err := srv.Client().Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400", url, res.StatusCode)
		}
	}
}

// TestPprofAndHealthz checks the profiling index and liveness endpoints
// are mounted.
func TestPprofAndHealthz(t *testing.T) {
	s := testServer(t, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	for _, url := range []string{"/debug/pprof/", "/healthz", "/metrics", "/debug/vars"} {
		res, err := srv.Client().Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != 200 {
			t.Errorf("%s: status %d, want 200", url, res.StatusCode)
		}
	}
}

// TestIngestListenerFeedsQueries runs the full loop: a sender ships
// encoded pages over TCP into the served store, and /query answers over
// the delivered data.
func TestIngestListenerFeedsQueries(t *testing.T) {
	st := storage.NewStore()
	e := engine.New(st, engine.ModeETSQP)
	e.Workers = 1
	s := &Server{Engine: e, Store: st, MaxRows: 20}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = s.ServeIngest(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	snd := transport.NewSender(conn, 100, storage.Options{})
	const n = 500
	for i := 0; i < n; i++ {
		if err := snd.Record("temp", int64(i+1)*1000, int64(i%13)); err != nil {
			t.Fatal(err)
		}
	}
	if err := snd.Close(); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The receiver goroutine races the sender's close; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if ser, ok := st.Series("temp"); ok && ser.NumPoints() == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ingested series never reached expected size")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body := httpGet(t, srv.URL+"/query?q=SELECT+COUNT(A)+FROM+temp")
	if !strings.Contains(body, "COUNT(A) = 500") {
		t.Errorf("query over ingested data wrong:\n%s", body)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	return httpGetAccept(t, url, "")
}

// httpGetAccept is httpGet with an explicit Accept header, for
// content-negotiation tests.
func httpGetAccept(t *testing.T, url, accept string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != 200 {
		t.Fatalf("GET %s: status %d\n%s", url, res.StatusCode, body)
	}
	return string(body)
}
