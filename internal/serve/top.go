// Live terminal ops console: the client side of /debug/windows. The
// etsqp-cli top subcommand polls the endpoint and renders a refreshing
// table of window rates, quantiles, pool utilization, and the most
// expensive recent queries — the operator view of the per-query
// resource attribution the engine collects.

package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
	"unicode/utf8"
)

// FetchWindows GETs baseURL+"/debug/windows" and decodes the document.
func FetchWindows(baseURL string) (*WindowsDoc, error) {
	resp, err := http.Get(strings.TrimRight(baseURL, "/") + "/debug/windows")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/windows: %s", resp.Status)
	}
	var doc WindowsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decode /debug/windows: %w", err)
	}
	return &doc, nil
}

// fmtNs renders a nanosecond quantity human-readably.
func fmtNs(v float64) string {
	switch {
	case v <= 0:
		return "-"
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fus", v/1e3)
	default:
		return fmt.Sprintf("%.0fns", v)
	}
}

// trimQuery bounds a query string for one-line table display. The cut
// lands on a rune boundary so a multi-byte character at the limit is
// dropped whole rather than split into an invalid sequence.
func trimQuery(q string, max int) string {
	q = strings.Join(strings.Fields(q), " ")
	if len(q) <= max {
		return q
	}
	cut := max - 1
	for cut > 0 && !utf8.RuneStart(q[cut]) {
		cut--
	}
	return q[:cut] + "…"
}

// RenderTop writes one frame of the ops console.
func RenderTop(w io.Writer, doc *WindowsDoc, topN int) {
	fmt.Fprintf(w, "etsqp top — %s · %d pool workers\n\n",
		time.Unix(0, doc.AtUnixNs).Format("15:04:05"), doc.PoolWorkers)
	fmt.Fprintf(w, "%-6s %10s %10s %10s %9s %9s %12s %11s\n",
		"window", "qps", "p50", "p99", "pool%", "cache%", "decode B/s", "morsels/s")
	if len(doc.Windows) == 0 {
		fmt.Fprintln(w, "(no window samples yet)")
	}
	for _, win := range doc.Windows {
		fmt.Fprintf(w, "%-6s %10.2f %10s %10s %8.1f%% %8.1f%% %12.0f %11.1f\n",
			win.Label, win.QPS, fmtNs(win.P50Ns), fmtNs(win.P99Ns),
			100*win.PoolUtilization, 100*win.CacheHitRatio,
			win.DecodeBytesPerSec, win.MorselsPerSec)
	}
	if len(doc.Gauges) > 0 {
		names := make([]string, 0, len(doc.Gauges))
		for name := range doc.Gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "\nruntime:")
		for _, name := range names {
			fmt.Fprintf(w, " %s=%d", name, doc.Gauges[name])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nslow: %d logged, %d dropped (ring max %d), last %s\n",
		doc.Slow.Count, doc.Slow.Dropped, doc.Slow.Max, fmtNs(float64(doc.Slow.LastNs)))
	top := doc.Top
	if topN > 0 && len(top) > topN {
		top = top[:topN]
	}
	fmt.Fprintf(w, "\n%-18s %10s %10s  %s\n", "trace id", "cpu", "elapsed", "query")
	if len(top) == 0 {
		fmt.Fprintln(w, "(no queries recorded)")
	}
	for _, q := range top {
		fmt.Fprintf(w, "%-18s %10s %10s  %s\n",
			q.TraceID, fmtNs(float64(q.CPUNs)), fmtNs(float64(q.ElapsedNs)),
			trimQuery(q.Query, 60))
	}
}

// clearScreen is the ANSI home-and-clear sequence each refresh starts
// with, giving the console its top(1)-style in-place redraw.
const clearScreen = "\x1b[H\x1b[2J"

// RunTop polls a server's /debug/windows every interval and renders
// the console to w. iterations > 0 bounds the number of frames (for CI
// smoke runs and tests); 0 runs until a fetch fails twice in a row.
func RunTop(w io.Writer, baseURL string, interval time.Duration, iterations, topN int) error {
	if interval <= 0 {
		interval = time.Second
	}
	fails := 0
	for frame := 0; iterations <= 0 || frame < iterations; frame++ {
		if frame > 0 {
			time.Sleep(interval)
		}
		doc, err := FetchWindows(baseURL)
		if err != nil {
			fails++
			if iterations > 0 || fails >= 2 {
				return err
			}
			fmt.Fprintf(w, "fetch failed (%v), retrying\n", err)
			continue
		}
		fails = 0
		fmt.Fprint(w, clearScreen)
		RenderTop(w, doc, topN)
	}
	return nil
}
