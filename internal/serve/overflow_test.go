package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"etsqp/internal/engine"
	"etsqp/internal/storage"
)

// overflowServer serves a series whose SUM leaves int64: two values of
// MaxInt64 wrap any signed accumulator on the second fold.
func overflowServer(t *testing.T, slowLog *bytes.Buffer) *Server {
	t.Helper()
	ts := []int64{1, 2, 3, 4}
	vals := []int64{math.MaxInt64, math.MaxInt64, 1, 2}
	st := storage.NewStore()
	if err := st.Append("hot", ts, vals, storage.Options{PageSize: 4}); err != nil {
		t.Fatal(err)
	}
	e := engine.New(st, engine.ModeETSQP)
	e.Workers = 1
	return &Server{Engine: e, Store: st, SlowThreshold: 0, SlowLog: slowLog, MaxRows: 20}
}

// TestQueryOverflowStructuredError is the end-to-end Section VI-C check
// for the serving surface: an overflowing aggregate must come back as a
// structured JSON error with the "overflow" kind and a 422 — never a 500
// and never a silently wrapped number — and the failed query must still
// leave a slow-log trace recording the failure.
func TestQueryOverflowStructuredError(t *testing.T) {
	var slowLog bytes.Buffer
	s := overflowServer(t, &slowLog)
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/query?q=SELECT+SUM(A)+FROM+hot", nil))

	if rec.Code != 422 {
		t.Fatalf("overflowing SUM: status = %d, want 422; body: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("overflowing SUM: Content-Type = %q, want application/json", ct)
	}
	var qe struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &qe); err != nil {
		t.Fatalf("overflow response is not JSON: %v\n%s", err, rec.Body.String())
	}
	if qe.Kind != "overflow" {
		t.Errorf("kind = %q, want %q", qe.Kind, "overflow")
	}
	if !strings.Contains(qe.Error, "overflow") {
		t.Errorf("error %q does not mention overflow", qe.Error)
	}

	// The failure reached the slow-query log as a trace line carrying the
	// error, and the slow counter advanced.
	count, _ := s.SlowStats()
	if count != 1 {
		t.Fatalf("slow count = %d, want 1 (failed query must be recorded)", count)
	}
	var trLine struct {
		Query string `json:"query"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(slowLog.Bytes(), &trLine); err != nil {
		t.Fatalf("slow log line is not JSON: %v\n%s", err, slowLog.String())
	}
	if !strings.Contains(trLine.Error, "overflow") {
		t.Errorf("slow-log trace error = %q, want it to record the overflow", trLine.Error)
	}
	if !strings.Contains(trLine.Query, "SUM(A)") {
		t.Errorf("slow-log trace query = %q, want the failing statement", trLine.Query)
	}

	// COUNT over the same series never consumes the wrapped sum: the
	// serving path must keep answering what is still well-defined.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/query?q=SELECT+COUNT(A)+FROM+hot", nil))
	if rec.Code != 200 {
		t.Fatalf("COUNT after overflow: status = %d, want 200; body: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "4") {
		t.Errorf("COUNT body %q does not contain the row count", rec.Body.String())
	}

	// Malformed SQL stays a plain bad_query 400, now structured too.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/query?q=SELECT+FROM", nil))
	if rec.Code != 400 {
		t.Fatalf("malformed SQL: status = %d, want 400", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &qe); err != nil {
		t.Fatalf("malformed-SQL response is not JSON: %v\n%s", err, rec.Body.String())
	}
	if qe.Kind != "bad_query" {
		t.Errorf("malformed SQL kind = %q, want %q", qe.Kind, "bad_query")
	}
}
