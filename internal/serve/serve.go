// Package serve is the live observability surface of the engine: an
// HTTP server exposing the obs registry as Prometheus text exposition
// (/metrics), as a /debug/vars-style JSON document, the stdlib pprof
// profiling handlers, and a /query endpoint that executes SQL with
// tracing on and emits a span-tree JSON line to the slow-query log for
// any query over the configured threshold. An optional TCP listener
// ingests transport frames into the served store, so a running server
// is a complete device-to-dashboard loop: devices ship encoded pages
// in, operators read quantiles and profiles out.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"etsqp/internal/cli"
	"etsqp/internal/engine"
	"etsqp/internal/obs"
	"etsqp/internal/storage"
	"etsqp/internal/transport"
)

// defaultSlowMax bounds the in-memory slow-query trace ring when the
// server does not configure SlowMax.
const defaultSlowMax = 1024

// recentCap bounds the recent-query ring feeding the top-N view.
const recentCap = 512

// Server wires an engine and its store to the HTTP surface.
type Server struct {
	Engine *engine.Engine
	Store  *storage.Store

	// SlowThreshold gates the slow-query log: a /query execution whose
	// wall time meets or exceeds it emits one trace-JSON line to SlowLog.
	// Zero logs every query; negative disables the log.
	SlowThreshold time.Duration
	// SlowLog receives slow-query trace lines (nil disables).
	SlowLog io.Writer
	// MaxRows caps row output on /query (0 = unlimited).
	MaxRows int
	// SlowMax caps the slow-query traces retained in memory for
	// /debug/windows and exemplar resolution; when the ring is full the
	// oldest entry is dropped and counted (obs serve.slow_dropped). Zero
	// selects defaultSlowMax; negative retains none.
	SlowMax int
	// Windows, when non-nil, is the rolling-window sampler backing
	// /debug/windows and /debug/dash. The caller owns its lifecycle
	// (obs.NewWindow(...).Start()).
	Windows *obs.Window

	logMu       sync.Mutex
	slowCount   int64           //etsqp:guardedby logMu
	lastSlowNs  int64           //etsqp:guardedby logMu
	slowRing    []*engine.Trace //etsqp:guardedby logMu
	slowHead    int             //etsqp:guardedby logMu
	slowDropped int64           //etsqp:guardedby logMu

	recMu   sync.Mutex
	recent  []QuerySummary //etsqp:guardedby recMu
	recHead int            //etsqp:guardedby recMu
}

// Handler builds the HTTP mux:
//
//	/metrics          Prometheus text exposition of every obs metric
//	/debug/vars       JSON registry dump (counters + histogram summaries)
//	/debug/pprof/...  stdlib profiling endpoints
//	/query?q=SQL      execute a statement with tracing on
//	/healthz          liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Exemplars are OpenMetrics-only syntax: a classic text-format
		// parser errors on the trailing "# {...}", so the richer format is
		// served only to scrapers that negotiate it via Accept.
		if acceptsOpenMetrics(r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", openMetricsContentType)
			_ = WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteMetrics(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteVars(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/windows", s.handleWindows)
	mux.HandleFunc("/debug/dash", handleDash)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleQuery executes ?q= (or the POST body) with tracing on, renders
// the result as the shell would, and feeds the slow-query log.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sql := r.URL.Query().Get("q")
	if sql == "" && r.Body != nil {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err == nil {
			sql = strings.TrimSpace(string(body))
		}
	}
	if sql == "" {
		http.Error(w, "missing query: pass ?q=SQL or a request body", http.StatusBadRequest)
		return
	}
	res, tr, err := s.Engine.TraceSQL(sql)
	if err != nil {
		// An execution failure still carries a trace (parse/plan failures
		// do not): feed it to the slow-query log so operators see what the
		// query did before it errored.
		if tr != nil {
			s.logSlow(tr)
			s.recordQuery(tr)
		}
		writeQueryError(w, err)
		return
	}
	s.logSlow(tr)
	s.recordQuery(tr)
	if r.URL.Query().Get("trace") != "" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = tr.WriteJSON(w)
		return
	}
	cli.RenderResult(w, res, s.MaxRows)
}

// queryError is the structured /query error document. Kind gives clients
// a stable discriminator: "overflow" for Section VI-C aggregate overflow
// (the query is well-formed; the data exceeds int64 — retry at a larger
// quantity or narrower window), "bad_query" for everything else.
type queryError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// writeQueryError maps an engine error to a structured JSON response.
// Overflow is the client-actionable case: 422 (the request was valid,
// the aggregate is just not representable), never a 500 and never a
// silently wrapped value.
func writeQueryError(w http.ResponseWriter, err error) {
	qe := queryError{Error: err.Error(), Kind: "bad_query"}
	status := http.StatusBadRequest
	if errors.Is(err, engine.ErrOverflow) {
		qe.Kind = "overflow"
		status = http.StatusUnprocessableEntity
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(qe)
}

// slowMax resolves the configured slow-ring bound: 0 means the
// default, negative means retain nothing (counting still happens).
func (s *Server) slowMax() int {
	if s.SlowMax == 0 {
		return defaultSlowMax
	}
	if s.SlowMax < 0 {
		return 0
	}
	return s.SlowMax
}

// logSlow counts the query as slow, retains the trace in the bounded
// in-memory ring (evicting — and counting — the oldest entry when
// full), and emits the trace as one JSON line when a log sink is
// configured. Lines are written whole under logMu, so concurrent slow
// queries never interleave mid-line; the same lock guards the
// slow-query counters so SlowStats is consistent with the log even
// when SlowLog is nil.
func (s *Server) logSlow(tr *engine.Trace) {
	if s.SlowThreshold < 0 || time.Duration(tr.ElapsedNs) < s.SlowThreshold {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	s.slowCount++
	s.lastSlowNs = tr.ElapsedNs
	if max := s.slowMax(); max > 0 {
		if len(s.slowRing) < max {
			s.slowRing = append(s.slowRing, tr)
		} else {
			s.slowRing[s.slowHead] = tr
			s.slowHead = (s.slowHead + 1) % max
			s.slowDropped++
			obs.ServeSlowDropped.Inc()
		}
	}
	if s.SlowLog != nil {
		_ = tr.WriteJSON(s.SlowLog)
	}
}

// SlowStats reports how many queries crossed the slow threshold and
// the wall time of the most recent one (0 when none have).
func (s *Server) SlowStats() (count, lastNs int64) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	return s.slowCount, s.lastSlowNs
}

// SlowEntries returns the retained slow-query traces, oldest first.
// The returned slice is a copy; the traces themselves are shared (a
// trace is immutable once finished).
func (s *Server) SlowEntries() []*engine.Trace {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	out := make([]*engine.Trace, 0, len(s.slowRing))
	out = append(out, s.slowRing[s.slowHead:]...)
	out = append(out, s.slowRing[:s.slowHead]...)
	return out
}

// SlowDropped reports how many slow-query traces the bounded ring has
// evicted.
func (s *Server) SlowDropped() int64 {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	return s.slowDropped
}

// recordQuery adds the finished query to the bounded recent-query ring
// that feeds the /debug/windows top-N view. Every traced /query run is
// recorded regardless of the slow threshold.
func (s *Server) recordQuery(tr *engine.Trace) {
	sum := QuerySummary{
		TraceID:   tr.TraceID,
		Query:     tr.Query,
		ElapsedNs: tr.ElapsedNs,
		AtUnixNs:  time.Now().UnixNano(),
	}
	if tr.Resources != nil {
		sum.CPUNs = tr.Resources.CPUNanos
	}
	s.recMu.Lock()
	defer s.recMu.Unlock()
	if len(s.recent) < recentCap {
		s.recent = append(s.recent, sum)
	} else {
		s.recent[s.recHead] = sum
		s.recHead = (s.recHead + 1) % recentCap
	}
}

// TopQueries returns the n recent queries that consumed the most
// worker CPU (ties broken by wall time), most expensive first.
func (s *Server) TopQueries(n int) []QuerySummary {
	s.recMu.Lock()
	out := make([]QuerySummary, len(s.recent))
	copy(out, s.recent)
	s.recMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].CPUNs != out[j].CPUNs {
			return out[i].CPUNs > out[j].CPUNs
		}
		return out[i].ElapsedNs > out[j].ElapsedNs
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ServeIngest accepts transport connections on l, ingesting frames into
// the server's store until the listener closes. Each connection is one
// device session; a corrupt frame terminates its session only.
func (s *Server) ServeIngest(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			_, _ = transport.Receive(conn, s.Store)
		}()
	}
}

// promName converts a dotted obs metric name to a Prometheus series
// name: etsqp_ prefix, dots to underscores.
func promName(name string) string {
	return "etsqp_" + strings.ReplaceAll(name, ".", "_")
}

// promFloat formats a bucket bound the way Prometheus text exposition
// expects floats.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// openMetricsContentType is the content type negotiated for the
// exemplar-bearing exposition.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// acceptsOpenMetrics reports whether an Accept header asks for the
// OpenMetrics exposition format. Parameters (version, q-weights) are
// ignored: offering the media type at all is taken as the opt-in, which
// matches how Prometheus negotiates its scrape format.
func acceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mediaType, _, _ := strings.Cut(part, ";")
		if strings.EqualFold(strings.TrimSpace(mediaType), "application/openmetrics-text") {
			return true
		}
	}
	return false
}

// promExemplar renders an OpenMetrics exemplar suffix for a bucket
// line: " # {trace_id=\"...\"} value timestamp" with the timestamp in
// seconds.
func promExemplar(e obs.Exemplar) string {
	return fmt.Sprintf(" # {trace_id=%q} %d %s",
		e.TraceID, e.Value,
		strconv.FormatFloat(float64(e.UnixNanos)/1e9, 'f', 3, 64))
}

// metricFamily is one exposition family, assembled before writing so
// the output can be sorted by series name regardless of registration
// order.
type metricFamily struct {
	name string // prometheus series name
	help string
	kind string // "counter", "gauge", or "histogram"
	val  int64  // counter/gauge value
	hist obs.HistogramSnapshot
	ex   map[int]obs.Exemplar // histogram bucket exemplars
}

// WriteMetrics writes every obs counter, gauge, and histogram in the
// classic Prometheus text exposition format (version 0.0.4), families
// sorted by series name. Counters and timers expose as counter series;
// gauges (sampled from runtime/metrics just before capture) as gauge
// series; histograms as cumulative _bucket{le=...} series over their
// non-empty power-of-two buckets plus the mandatory le="+Inf" bucket,
// and _sum/_count series. Exemplars are omitted — they are not valid in
// this format; scrapers that want them negotiate WriteOpenMetrics.
func WriteMetrics(w io.Writer) error {
	return writeMetrics(w, false)
}

// WriteOpenMetrics writes the same registry in OpenMetrics 1.0 syntax:
// counter samples carry the mandated _total suffix, a bucket whose
// histogram holds an exemplar (the most recent traced observation
// landing in it) carries an exemplar suffix with the trace ID — so a
// scrape links a latency bucket to a resolvable slow-query-log entry —
// and the exposition ends with the required "# EOF" trailer.
func WriteOpenMetrics(w io.Writer) error {
	return writeMetrics(w, true)
}

func writeMetrics(w io.Writer, openMetrics bool) error {
	obs.SampleRuntime()
	var fams []metricFamily
	snap := obs.Capture()
	for _, m := range obs.Metrics() {
		fams = append(fams, metricFamily{
			name: promName(m.Name), help: m.Help, kind: "counter", val: snap[m.Name],
		})
	}
	gsnap := obs.CaptureGauges()
	for _, g := range obs.Gauges() {
		fams = append(fams, metricFamily{
			name: promName(g.Name), help: g.Help, kind: "gauge", val: gsnap[g.Name],
		})
	}
	helps := obs.Histograms()
	exemplars := obs.CaptureExemplars()
	for i, hs := range obs.CaptureHistograms() {
		fams = append(fams, metricFamily{
			name: promName(hs.Name), help: helps[i].Help, kind: "histogram",
			hist: hs, ex: exemplars[i].ByBucket,
		})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		if f.kind != "histogram" {
			sample := f.name
			if openMetrics && f.kind == "counter" {
				// OpenMetrics mandates the _total suffix on counter samples
				// (the family name in TYPE/HELP stays bare).
				sample += "_total"
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", sample, f.val); err != nil {
				return err
			}
			continue
		}
		var cum int64
		// The top bucket's bound is +Inf, already covered by the
		// mandatory trailing le="+Inf" line — emitting it here too would
		// duplicate the sample.
		for b := 0; b < obs.HistBuckets-1; b++ {
			if f.hist.Buckets[b] == 0 {
				continue
			}
			cum += f.hist.Buckets[b]
			suffix := ""
			if openMetrics {
				if e, ok := f.ex[b]; ok {
					suffix = promExemplar(e)
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n",
				f.name, promFloat(obs.BucketUpperBound(b)), cum, suffix); err != nil {
				return err
			}
		}
		suffix := ""
		if openMetrics {
			if e, ok := f.ex[obs.HistBuckets-1]; ok {
				suffix = promExemplar(e)
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n%s_sum %d\n%s_count %d\n",
			f.name, f.hist.Count, suffix, f.name, f.hist.Sum, f.name, f.hist.Count); err != nil {
			return err
		}
	}
	if openMetrics {
		if _, err := io.WriteString(w, "# EOF\n"); err != nil {
			return err
		}
	}
	return nil
}

// histVar is the JSON summary of one histogram in the /debug/vars dump.
type histVar struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// WriteVars writes the whole obs registry as one JSON object — the
// /debug/vars-style surface. Counter and gauge names map to their values;
// histogram names map to {count, sum, p50, p90, p99} objects. Keys are
// the dotted metric names, sorted (encoding/json sorts map keys), so
// the document layout is stable.
func WriteVars(w io.Writer) error {
	obs.SampleRuntime()
	vars := make(map[string]any)
	for name, v := range obs.Capture() {
		vars[name] = v
	}
	for name, v := range obs.CaptureGauges() {
		vars[name] = v
	}
	for _, hs := range obs.CaptureHistograms() {
		vars[hs.Name] = histVar{
			Count: hs.Count, Sum: hs.Sum,
			P50: hs.Quantile(0.50), P90: hs.Quantile(0.90), P99: hs.Quantile(0.99),
		}
	}
	out, err := json.MarshalIndent(vars, "", "  ")
	if err != nil {
		return err
	}
	if _, err := w.Write(out); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}
