// Package serve is the live observability surface of the engine: an
// HTTP server exposing the obs registry as Prometheus text exposition
// (/metrics), as a /debug/vars-style JSON document, the stdlib pprof
// profiling handlers, and a /query endpoint that executes SQL with
// tracing on and emits a span-tree JSON line to the slow-query log for
// any query over the configured threshold. An optional TCP listener
// ingests transport frames into the served store, so a running server
// is a complete device-to-dashboard loop: devices ship encoded pages
// in, operators read quantiles and profiles out.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"etsqp/internal/cli"
	"etsqp/internal/engine"
	"etsqp/internal/obs"
	"etsqp/internal/storage"
	"etsqp/internal/transport"
)

// Server wires an engine and its store to the HTTP surface.
type Server struct {
	Engine *engine.Engine
	Store  *storage.Store

	// SlowThreshold gates the slow-query log: a /query execution whose
	// wall time meets or exceeds it emits one trace-JSON line to SlowLog.
	// Zero logs every query; negative disables the log.
	SlowThreshold time.Duration
	// SlowLog receives slow-query trace lines (nil disables).
	SlowLog io.Writer
	// MaxRows caps row output on /query (0 = unlimited).
	MaxRows int

	logMu      sync.Mutex
	slowCount  int64 //etsqp:guardedby logMu
	lastSlowNs int64 //etsqp:guardedby logMu
}

// Handler builds the HTTP mux:
//
//	/metrics          Prometheus text exposition of every obs metric
//	/debug/vars       JSON registry dump (counters + histogram summaries)
//	/debug/pprof/...  stdlib profiling endpoints
//	/query?q=SQL      execute a statement with tracing on
//	/healthz          liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteMetrics(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteVars(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleQuery executes ?q= (or the POST body) with tracing on, renders
// the result as the shell would, and feeds the slow-query log.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sql := r.URL.Query().Get("q")
	if sql == "" && r.Body != nil {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err == nil {
			sql = strings.TrimSpace(string(body))
		}
	}
	if sql == "" {
		http.Error(w, "missing query: pass ?q=SQL or a request body", http.StatusBadRequest)
		return
	}
	res, tr, err := s.Engine.TraceSQL(sql)
	if err != nil {
		// An execution failure still carries a trace (parse/plan failures
		// do not): feed it to the slow-query log so operators see what the
		// query did before it errored.
		if tr != nil {
			s.logSlow(tr)
		}
		writeQueryError(w, err)
		return
	}
	s.logSlow(tr)
	if r.URL.Query().Get("trace") != "" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = tr.WriteJSON(w)
		return
	}
	cli.RenderResult(w, res, s.MaxRows)
}

// queryError is the structured /query error document. Kind gives clients
// a stable discriminator: "overflow" for Section VI-C aggregate overflow
// (the query is well-formed; the data exceeds int64 — retry at a larger
// quantity or narrower window), "bad_query" for everything else.
type queryError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// writeQueryError maps an engine error to a structured JSON response.
// Overflow is the client-actionable case: 422 (the request was valid,
// the aggregate is just not representable), never a 500 and never a
// silently wrapped value.
func writeQueryError(w http.ResponseWriter, err error) {
	qe := queryError{Error: err.Error(), Kind: "bad_query"}
	status := http.StatusBadRequest
	if errors.Is(err, engine.ErrOverflow) {
		qe.Kind = "overflow"
		status = http.StatusUnprocessableEntity
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(qe)
}

// logSlow counts the query as slow and emits the trace as one JSON
// line when a log sink is configured. Lines are written whole under
// logMu, so concurrent slow queries never interleave mid-line; the
// same lock guards the slow-query counters so SlowStats is consistent
// with the log even when SlowLog is nil.
func (s *Server) logSlow(tr *engine.Trace) {
	if s.SlowThreshold < 0 || time.Duration(tr.ElapsedNs) < s.SlowThreshold {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	s.slowCount++
	s.lastSlowNs = tr.ElapsedNs
	if s.SlowLog != nil {
		_ = tr.WriteJSON(s.SlowLog)
	}
}

// SlowStats reports how many queries crossed the slow threshold and
// the wall time of the most recent one (0 when none have).
func (s *Server) SlowStats() (count, lastNs int64) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	return s.slowCount, s.lastSlowNs
}

// ServeIngest accepts transport connections on l, ingesting frames into
// the server's store until the listener closes. Each connection is one
// device session; a corrupt frame terminates its session only.
func (s *Server) ServeIngest(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			_, _ = transport.Receive(conn, s.Store)
		}()
	}
}

// promName converts a dotted obs metric name to a Prometheus series
// name: etsqp_ prefix, dots to underscores.
func promName(name string) string {
	return "etsqp_" + strings.ReplaceAll(name, ".", "_")
}

// promFloat formats a bucket bound the way Prometheus text exposition
// expects floats.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteMetrics writes every obs counter, timer, and histogram in the
// Prometheus text exposition format. Counters and timers expose as
// counter series; histograms expose cumulative _bucket{le=...} series
// over their non-empty power-of-two buckets plus the mandatory
// le="+Inf" bucket, and _sum/_count series.
func WriteMetrics(w io.Writer) error {
	snap := obs.Capture()
	for _, m := range obs.Metrics() {
		n := promName(m.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			n, m.Help, n, n, snap[m.Name]); err != nil {
			return err
		}
	}
	helps := obs.Histograms()
	for i, hs := range obs.CaptureHistograms() {
		n := promName(hs.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
			n, helps[i].Help, n); err != nil {
			return err
		}
		var cum int64
		// The top bucket's bound is +Inf, already covered by the
		// mandatory trailing le="+Inf" line — emitting it here too would
		// duplicate the sample.
		for b := 0; b < obs.HistBuckets-1; b++ {
			if hs.Buckets[b] == 0 {
				continue
			}
			cum += hs.Buckets[b]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
				n, promFloat(obs.BucketUpperBound(b)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			n, hs.Count, n, hs.Sum, n, hs.Count); err != nil {
			return err
		}
	}
	return nil
}

// histVar is the JSON summary of one histogram in the /debug/vars dump.
type histVar struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// WriteVars writes the whole obs registry as one JSON object — the
// /debug/vars-style surface. Counter names map to their values;
// histogram names map to {count, sum, p50, p90, p99} objects. Keys are
// the dotted metric names, sorted (encoding/json sorts map keys), so
// the document layout is stable.
func WriteVars(w io.Writer) error {
	vars := make(map[string]any)
	for name, v := range obs.Capture() {
		vars[name] = v
	}
	for _, hs := range obs.CaptureHistograms() {
		vars[hs.Name] = histVar{
			Count: hs.Count, Sum: hs.Sum,
			P50: hs.Quantile(0.50), P90: hs.Quantile(0.90), P99: hs.Quantile(0.99),
		}
	}
	out, err := json.MarshalIndent(vars, "", "  ")
	if err != nil {
		return err
	}
	if _, err := w.Write(out); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}
