// Package prune implements Section V: stopping rules that terminate
// decoding early from encoder statistics alone.
//
// A page header stores the packing parameters of its Delta (and Repeat)
// streams. Those bound every future delta —
//
//	D_m >= minBase,   D_M <= minBase + 2^w - 1
//
// and every run length (R_M). Given the last decoded element and a range
// filter, Propositions 4 and 5 decide whether any remaining element can
// still satisfy the filter; if not, the rest of the page is skipped.
package prune

import (
	"etsqp/internal/encoding/ts2diff"
	"etsqp/internal/obs"
	"etsqp/internal/storage"
)

// Bounds carries the per-step bounds derived from encoder statistics.
type Bounds struct {
	Dm int64 // lower bound of every delta (minBase)
	DM int64 // upper bound of every delta (minBase + 2^w - 1)
	RM int64 // upper bound of run lengths (1 when no Repeat encoder)
}

// BoundsFromBlock derives delta bounds from a TS2DIFF block header.
func BoundsFromBlock(b *ts2diff.Block) Bounds {
	dm, dM := b.DeltaBounds()
	return Bounds{Dm: dm, DM: dM, RM: 1}
}

// WithRunLength returns a copy with the Repeat bound set (for
// Delta-Repeat encoded pages, R_M is estimated from the run-length
// packing width: R_M <= 2^w_RLE - 1 + minBase_RLE).
func (b Bounds) WithRunLength(rm int64) Bounds {
	if rm < 1 {
		rm = 1
	}
	b.RM = rm
	return b
}

// StopValueLow implements Proposition 5(1): with a[k] < c1 and n-k-1
// remaining steps, the remaining values can never reach c1 when even
// maximal deltas fall short: D_M < (c1 - a[k]) / (n-k-1).
func (b Bounds) StopValueLow(ak int64, k, n int, c1 int64) bool {
	steps := int64(n - k - 1)
	if steps <= 0 {
		return true // nothing left to decode
	}
	if ak >= c1 {
		return false
	}
	// D_M * steps < c1 - a[k]  (integer-safe form of the division test).
	return b.DM*steps < c1-ak
}

// StopValueHigh implements Proposition 5(2): with a[k] > c2, the lower
// bounds a[k] + j*D_m stay above c2 for every remaining j when
// D_m > (c2 - a[k]) / (n-k-1).
func (b Bounds) StopValueHigh(ak int64, k, n int, c2 int64) bool {
	steps := int64(n - k - 1)
	if steps <= 0 {
		return true
	}
	if ak <= c2 {
		return false
	}
	return b.Dm*steps > c2-ak
}

// StopValue combines both directions for a range filter c1 < A < c2.
func (b Bounds) StopValue(ak int64, k, n int, c1, c2 int64) bool {
	if b.StopValueLow(ak, k, n, c1) || b.StopValueHigh(ak, k, n, c2) {
		obs.PruneStopsValue.Inc()
		return true
	}
	return false
}

// StopTimeLow implements Proposition 4(1) for a time filter T > t1: with
// Repeat encoding each of the n-k-1 remaining D-R tuples advances time by
// at most R_M * D_M, so decoding stops when t[k] < t1 and
// D_M < (t1 - t[k]) / (R_M (n-k-1)).
func (b Bounds) StopTimeLow(tk int64, k, n int, t1 int64) bool {
	steps := int64(n - k - 1)
	if steps <= 0 {
		return true
	}
	if tk >= t1 {
		return false
	}
	return b.DM*b.RM*steps < t1-tk
}

// StopTimeHigh implements Proposition 4(2) for T < t2. Timestamps are
// non-decreasing, so once t[k] > t2 no later tuple can satisfy the filter
// whenever the minimal advance keeps time above t2.
func (b Bounds) StopTimeHigh(tk int64, k, n int, t2 int64) bool {
	steps := int64(n - k - 1)
	if steps <= 0 {
		return true
	}
	if tk <= t2 {
		return false
	}
	return b.Dm*b.RM*steps > t2-tk
}

// StopTime combines both directions for t1 < T < t2.
func (b Bounds) StopTime(tk int64, k, n int, t1, t2 int64) bool {
	if b.StopTimeLow(tk, k, n, t1) || b.StopTimeHigh(tk, k, n, t2) {
		obs.PruneStopsTime.Inc()
		return true
	}
	return false
}

// PositionsForConstantInterval handles the special case at the end of
// Proposition 4: when the time interval D is constant (width-0 packing),
// the valid positions for t1 <= T <= t2 are computed directly with no
// decoding at all. It returns the half-open row range [lo, hi).
func PositionsForConstantInterval(first, interval int64, n int, t1, t2 int64) (lo, hi int) {
	if n == 0 || t2 < t1 {
		return 0, 0
	}
	if interval <= 0 {
		// Degenerate: all timestamps equal first.
		if first >= t1 && first <= t2 {
			return 0, n
		}
		return 0, 0
	}
	// Smallest i with first + i*interval >= t1.
	lo = 0
	if first < t1 {
		lo = int((t1 - first + interval - 1) / interval)
	}
	// Largest i with first + i*interval <= t2, exclusive bound.
	if first > t2 {
		return 0, 0
	}
	hi = int((t2-first)/interval) + 1
	if hi > n {
		hi = n
	}
	if lo >= hi {
		return 0, 0
	}
	return lo, hi
}

// SkipPageByTime reports whether a whole page can be skipped for the time
// range [t1, t2] using only its header (the cheapest rule: no payload
// read at all, the "pruned pages" counted by the throughput metric).
func SkipPageByTime(h storage.PageHeader, t1, t2 int64) bool {
	if h.EndTime < t1 || h.StartTime > t2 {
		obs.PrunePagesTime.Inc()
		return true
	}
	return false
}

// SkipPageByValue reports whether a whole page can be skipped for the
// value range [c1, c2] using its min/max statistics.
func SkipPageByValue(h storage.PageHeader, c1, c2 int64) bool {
	if h.MaxValue < c1 || h.MinValue > c2 {
		obs.PrunePagesValue.Inc()
		return true
	}
	return false
}

// AllValuesInRange is the dual of SkipPageByValue: the header statistics
// prove every value of the page satisfies c1 <= v <= c2, so a range
// filter is vacuous over it. The engine uses this to keep the fused
// no-materialization aggregation path on for pages a value predicate
// cannot actually reject.
func AllValuesInRange(h storage.PageHeader, c1, c2 int64) bool {
	return h.MinValue >= c1 && h.MaxValue <= c2
}
