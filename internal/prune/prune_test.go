package prune

import (
	"math/rand"
	"testing"

	"etsqp/internal/encoding/ts2diff"
	"etsqp/internal/storage"
)

func TestBoundsFromBlock(t *testing.T) {
	// Deltas 4,6,5,6 → base 4, width 2 → bounds [4,7].
	b, err := ts2diff.Encode([]int64{0, 4, 10, 15, 21}, ts2diff.Order1)
	if err != nil {
		t.Fatal(err)
	}
	bd := BoundsFromBlock(b)
	if bd.Dm != 4 || bd.DM != 7 || bd.RM != 1 {
		t.Fatalf("bounds = %+v", bd)
	}
	bd2 := bd.WithRunLength(16)
	if bd2.RM != 16 || bd.RM != 1 {
		t.Fatal("WithRunLength must copy")
	}
	if bd.WithRunLength(0).RM != 1 {
		t.Fatal("RM floor is 1")
	}
}

// pruneIsSound: whenever a stop rule fires at position k, no element after
// k satisfies the filter.
func TestStopValueSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(100) + 2
		vals := make([]int64, n)
		cur := int64(rng.Intn(100))
		for i := range vals {
			vals[i] = cur
			cur += rng.Int63n(20) - 5
		}
		b, err := ts2diff.Encode(vals, ts2diff.Order1)
		if err != nil {
			t.Fatal(err)
		}
		bd := BoundsFromBlock(b)
		c1 := vals[0] + rng.Int63n(100) - 50
		c2 := c1 + rng.Int63n(100)
		for k := 0; k < n-1; k++ {
			if bd.StopValue(vals[k], k, n, c1, c2) {
				for j := k + 1; j < n; j++ {
					if vals[j] > c1 && vals[j] < c2 {
						t.Fatalf("trial %d: pruned at %d but vals[%d]=%d in (%d,%d)",
							trial, k, j, vals[j], c1, c2)
					}
				}
				break
			}
		}
	}
}

func TestStopValueFires(t *testing.T) {
	// Monotone slow growth: once far below c1 with bounded deltas, the
	// rule must fire.
	bd := Bounds{Dm: 0, DM: 3, RM: 1}
	// 10 steps of at most +3 cannot reach c1 = 1000 from a[k] = 0.
	if !bd.StopValueLow(0, 0, 11, 1000) {
		t.Fatal("StopValueLow must fire")
	}
	// But can reach 20.
	if bd.StopValueLow(0, 0, 11, 20) {
		t.Fatal("StopValueLow must not fire when reachable")
	}
	// High side with positive Dm: values only grow.
	bd = Bounds{Dm: 1, DM: 5, RM: 1}
	if !bd.StopValueHigh(100, 0, 11, 50) {
		t.Fatal("StopValueHigh must fire when values can only grow")
	}
	// High side with negative Dm: values may come back down.
	bd = Bounds{Dm: -10, DM: 5, RM: 1}
	if bd.StopValueHigh(100, 0, 11, 50) {
		t.Fatal("StopValueHigh must not fire when deltas can be negative")
	}
	// No steps left → always prune.
	if !bd.StopValue(0, 10, 11, 0, 100) {
		t.Fatal("no remaining steps must prune")
	}
}

func TestStopTimeSoundnessWithRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		// D-R tuples: each advances time by delta for run steps.
		nTuples := rng.Intn(30) + 2
		type tuple struct{ delta, run int64 }
		tuples := make([]tuple, nTuples)
		var rm, dm, dM int64 = 1, 1 << 62, -(1 << 62)
		for i := range tuples {
			tuples[i] = tuple{delta: rng.Int63n(10) + 1, run: rng.Int63n(5) + 1}
			if tuples[i].run > rm {
				rm = tuples[i].run
			}
			if tuples[i].delta < dm {
				dm = tuples[i].delta
			}
			if tuples[i].delta > dM {
				dM = tuples[i].delta
			}
		}
		bd := Bounds{Dm: dm, DM: dM, RM: rm}
		// Tuple start times.
		starts := make([]int64, nTuples)
		cur := int64(0)
		for i, tp := range tuples {
			starts[i] = cur
			cur += tp.delta * tp.run
		}
		end := cur
		t1 := rng.Int63n(end + 10)
		for k := 0; k < nTuples-1; k++ {
			// starts[k] is observed before consuming tuple k, so nTuples-k
			// tuples remain: pass n = nTuples+1 to make steps = nTuples-k.
			if bd.StopTimeLow(starts[k], k, nTuples+1, t1) {
				// No later time may reach t1.
				if end >= t1 {
					t.Fatalf("trial %d: pruned at tuple %d but end %d >= t1 %d",
						trial, k, end, t1)
				}
				break
			}
		}
	}
}

func TestStopTimeHighMonotone(t *testing.T) {
	// Timestamps are non-decreasing (Dm >= 0): once past t2, prune.
	bd := Bounds{Dm: 1, DM: 100, RM: 8}
	if !bd.StopTimeHigh(500, 3, 100, 400) {
		t.Fatal("must prune after passing t2")
	}
	if bd.StopTimeHigh(300, 3, 100, 400) {
		t.Fatal("must not prune before t2")
	}
}

func TestPositionsForConstantInterval(t *testing.T) {
	cases := []struct {
		first, interval int64
		n               int
		t1, t2          int64
		lo, hi          int
	}{
		{0, 10, 100, 25, 55, 3, 6},   // 30,40,50
		{0, 10, 100, 0, 990, 0, 100}, // everything
		{0, 10, 100, -50, -1, 0, 0},  // before start
		{0, 10, 10, 95, 200, 0, 0},   // after end
		{0, 10, 100, 30, 30, 3, 4},   // exact hit
		{0, 10, 100, 31, 39, 0, 0},   // between points
		{100, 10, 5, 0, 1000, 0, 5},  // full range
		{100, 0, 5, 100, 100, 0, 5},  // degenerate interval, match
		{100, 0, 5, 0, 50, 0, 0},     // degenerate interval, no match
		{0, 10, 100, 55, 25, 0, 0},   // inverted range
	}
	for i, c := range cases {
		lo, hi := PositionsForConstantInterval(c.first, c.interval, c.n, c.t1, c.t2)
		if lo != c.lo || hi != c.hi {
			t.Errorf("case %d: got [%d,%d) want [%d,%d)", i, lo, hi, c.lo, c.hi)
		}
	}
}

func TestPositionsMatchScan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		first := rng.Int63n(1000)
		interval := rng.Int63n(50) + 1
		n := rng.Intn(200) + 1
		t1 := rng.Int63n(first + interval*int64(n) + 100)
		t2 := t1 + rng.Int63n(interval*int64(n)+1)
		lo, hi := PositionsForConstantInterval(first, interval, n, t1, t2)
		wantLo, wantHi := 0, 0
		found := false
		for i := 0; i < n; i++ {
			ts := first + int64(i)*interval
			if ts >= t1 && ts <= t2 {
				if !found {
					wantLo = i
					found = true
				}
				wantHi = i + 1
			}
		}
		if lo != wantLo || hi != wantHi {
			t.Fatalf("trial %d: got [%d,%d) want [%d,%d)", trial, lo, hi, wantLo, wantHi)
		}
	}
}

func TestSkipPage(t *testing.T) {
	h := storage.PageHeader{StartTime: 100, EndTime: 200, MinValue: -5, MaxValue: 50}
	if !SkipPageByTime(h, 300, 400) || !SkipPageByTime(h, 0, 50) {
		t.Fatal("non-overlapping time range must skip")
	}
	if SkipPageByTime(h, 150, 160) || SkipPageByTime(h, 0, 100) || SkipPageByTime(h, 200, 300) {
		t.Fatal("overlapping time range must not skip")
	}
	if !SkipPageByValue(h, 51, 100) || !SkipPageByValue(h, -100, -6) {
		t.Fatal("non-overlapping value range must skip")
	}
	if SkipPageByValue(h, 0, 10) {
		t.Fatal("overlapping value range must not skip")
	}
}
