package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// TsFile-like container: a magic header, a series count, and for each
// series its name and length-prefixed pages. All integers big-endian.
var fileMagic = [6]byte{'E', 'T', 'S', 'Q', 'P', '1'}

// WriteFile persists the whole store to path.
func (s *Store) WriteFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriter(f)
	if err := s.writeTo(w); err != nil {
		return err
	}
	return w.Flush()
}

// writeTo streams the store in file format.
func (s *Store) writeTo(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, err := w.Write(fileMagic[:]); err != nil {
		return err
	}
	names := make([]string, 0, len(s.series))
	for n := range s.series {
		names = append(names, n)
	}
	// Deterministic output: sorted series order.
	sort.Strings(names)
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], uint32(len(names)))
	if _, err := w.Write(tmp[:]); err != nil {
		return err
	}
	for _, name := range names {
		pages := s.series[name].pagesSnapshot()
		binary.BigEndian.PutUint32(tmp[:], uint32(len(name)))
		if _, err := w.Write(tmp[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, name); err != nil {
			return err
		}
		binary.BigEndian.PutUint32(tmp[:], uint32(len(pages)))
		if _, err := w.Write(tmp[:]); err != nil {
			return err
		}
		for _, pp := range pages {
			buf := marshalPage(nil, pp.Time)
			buf = marshalPage(buf, pp.Value)
			binary.BigEndian.PutUint32(tmp[:], uint32(len(buf)))
			if _, err := w.Write(tmp[:]); err != nil {
				return err
			}
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadFile loads a store previously written with WriteFile.
func ReadFile(path string) (*Store, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ReadBytes(raw)
}

// ReadBytes parses the file format from memory.
func ReadBytes(raw []byte) (*Store, error) {
	if len(raw) < len(fileMagic)+4 || string(raw[:6]) != string(fileMagic[:]) {
		return nil, fmt.Errorf("storage: bad file magic")
	}
	off := 6
	u32 := func() (int, error) {
		if off+4 > len(raw) {
			return 0, io.ErrUnexpectedEOF
		}
		v := int(binary.BigEndian.Uint32(raw[off:]))
		off += 4
		return v, nil
	}
	nSeries, err := u32()
	if err != nil {
		return nil, err
	}
	st := NewStore()
	for i := 0; i < nSeries; i++ {
		nameLen, err := u32()
		if err != nil {
			return nil, err
		}
		if off+nameLen > len(raw) {
			return nil, io.ErrUnexpectedEOF
		}
		name := string(raw[off : off+nameLen])
		off += nameLen
		nPages, err := u32()
		if err != nil {
			return nil, err
		}
		var pages []PagePair
		for p := 0; p < nPages; p++ {
			pairLen, err := u32()
			if err != nil {
				return nil, err
			}
			if off+pairLen > len(raw) {
				return nil, io.ErrUnexpectedEOF
			}
			pairBuf := raw[off : off+pairLen]
			off += pairLen
			tp, n, err := unmarshalPage(pairBuf)
			if err != nil {
				return nil, err
			}
			vp, _, err := unmarshalPage(pairBuf[n:])
			if err != nil {
				return nil, err
			}
			pages = append(pages, PagePair{Time: tp, Value: vp})
		}
		ser := &Series{Name: name}
		ser.setPages(pages)
		st.putSeries(name, ser)
	}
	return st, nil
}
