// Package storage implements the IoTDB-like storage substrate the query
// pipelines read from: each time series is stored as a sequence of pages,
// every page encoded separately with a private header carrying the
// statistics Sections III and V rely on — first value, packing parameters,
// counts, time range and value bounds.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"etsqp/internal/encoding"
	"etsqp/internal/obs"
)

// ColumnKind distinguishes the timestamp column from value columns.
type ColumnKind uint8

// Column kinds.
const (
	ColumnTime ColumnKind = iota
	ColumnValue
)

// PageHeader carries the per-page metadata that decoding pipelines and
// pruning rules consume without touching the payload.
type PageHeader struct {
	Kind      ColumnKind
	Codec     string // registry name of the combined encoder
	Count     int    // number of data points
	StartTime int64  // first timestamp covered by the page
	EndTime   int64  // last timestamp covered by the page
	MinValue  int64  // column statistics for value pruning
	MaxValue  int64
	// SumValue is the exact column sum when SumValid — the statistic
	// that lets SUM/AVG over fully-covered pages skip the payload
	// entirely (IoTDB-style statistics-level aggregation).
	SumValue int64
	SumValid bool
	// Checksum is the CRC-32 (IEEE) of the payload, written at encode
	// time and verified before decoding so bit rot surfaces as a clear
	// error instead of silently wrong values.
	Checksum uint32
}

// Page is one encoded column chunk.
type Page struct {
	Header PageHeader
	Data   []byte // self-contained codec block
}

// VerifyChecksum reports whether the payload matches the stored CRC.
// Pages built before checksumming (Checksum == 0 with data) are accepted.
func (p *Page) VerifyChecksum() error {
	if p.Header.Checksum == 0 {
		return nil
	}
	if got := crc32.ChecksumIEEE(p.Data); got != p.Header.Checksum {
		return fmt.Errorf("storage: page checksum mismatch (got %08x want %08x): %w",
			got, p.Header.Checksum, ErrCorrupt)
	}
	return nil
}

// Decode recovers the page's column values via the registered codec,
// verifying the payload checksum first.
func (p *Page) Decode() ([]int64, error) {
	if err := p.VerifyChecksum(); err != nil {
		return nil, err
	}
	obs.StoragePagesRead.Inc()
	obs.StorageBytesScanned.Add(int64(len(p.Data)))
	c, err := encoding.Lookup(p.Header.Codec)
	if err != nil {
		return nil, err
	}
	vals, err := c.Decode(p.Data)
	if err != nil {
		return nil, fmt.Errorf("storage: page decode (%s): %w", p.Header.Codec, err)
	}
	if len(vals) != p.Header.Count {
		return nil, fmt.Errorf("storage: page count %d, decoded %d", p.Header.Count, len(vals))
	}
	return vals, nil
}

// PagePair groups the timestamp page and value page covering the same rows
// of one series; the pipeline decodes them in lock-step (Figure 2).
type PagePair struct {
	Time  *Page
	Value *Page
}

// Count returns the number of rows covered by the pair.
func (pp PagePair) Count() int { return pp.Time.Header.Count }

// StartTime and EndTime expose the pair's time range for merge nodes.
func (pp PagePair) StartTime() int64 { return pp.Time.Header.StartTime }

// EndTime reports the last timestamp covered by the pair.
func (pp PagePair) EndTime() int64 { return pp.Time.Header.EndTime }

// ErrCorrupt reports a malformed serialized page.
var ErrCorrupt = errors.New("storage: corrupt page")

// marshalPage appends the page wire format to dst.
func marshalPage(dst []byte, p *Page) []byte {
	var tmp [8]byte
	dst = append(dst, byte(p.Header.Kind))
	dst = append(dst, byte(len(p.Header.Codec)))
	dst = append(dst, p.Header.Codec...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(p.Header.Count))
	dst = append(dst, tmp[:4]...)
	for _, v := range []int64{p.Header.StartTime, p.Header.EndTime, p.Header.MinValue, p.Header.MaxValue, p.Header.SumValue} {
		binary.BigEndian.PutUint64(tmp[:], uint64(v))
		dst = append(dst, tmp[:]...)
	}
	if p.Header.SumValid {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	binary.BigEndian.PutUint32(tmp[:4], p.Header.Checksum)
	dst = append(dst, tmp[:4]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(p.Data)))
	dst = append(dst, tmp[:4]...)
	return append(dst, p.Data...)
}

// unmarshalPage parses one page from buf, returning the page and the
// number of bytes consumed.
func unmarshalPage(buf []byte) (*Page, int, error) {
	if len(buf) < 2 {
		return nil, 0, ErrCorrupt
	}
	p := &Page{Header: PageHeader{Kind: ColumnKind(buf[0])}}
	nameLen := int(buf[1])
	off := 2
	if len(buf) < off+nameLen+4+45+4 {
		return nil, 0, ErrCorrupt
	}
	p.Header.Codec = string(buf[off : off+nameLen])
	off += nameLen
	p.Header.Count = int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	read := func() int64 {
		v := int64(binary.BigEndian.Uint64(buf[off:]))
		off += 8
		return v
	}
	p.Header.StartTime = read()
	p.Header.EndTime = read()
	p.Header.MinValue = read()
	p.Header.MaxValue = read()
	p.Header.SumValue = read()
	p.Header.SumValid = buf[off] == 1
	off++
	p.Header.Checksum = binary.BigEndian.Uint32(buf[off:])
	off += 4
	dataLen := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	if len(buf) < off+dataLen {
		return nil, 0, ErrCorrupt
	}
	p.Data = buf[off : off+dataLen]
	return p, off + dataLen, nil
}

// MarshalPagePair serializes a page pair (used by the network transport
// and the file container alike).
func MarshalPagePair(pp PagePair) []byte {
	buf := marshalPage(nil, pp.Time)
	return marshalPage(buf, pp.Value)
}

// UnmarshalPagePair parses a serialized page pair.
func UnmarshalPagePair(buf []byte) (PagePair, error) {
	tp, n, err := unmarshalPage(buf)
	if err != nil {
		return PagePair{}, err
	}
	vp, _, err := unmarshalPage(buf[n:])
	if err != nil {
		return PagePair{}, err
	}
	return PagePair{Time: tp, Value: vp}, nil
}
