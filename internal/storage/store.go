package storage

import (
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"etsqp/internal/encoding"
	"etsqp/internal/obs"
)

// Defaults for series ingestion.
const (
	// DefaultPageSize mirrors IoTDB's points-per-page order of magnitude;
	// small enough that short buffered series still flush (Section I's
	// flexibility requirement).
	DefaultPageSize = 4096
	// DefaultTimeCodec encodes timestamps with second-order deltas
	// (regular intervals pack to zero width).
	DefaultTimeCodec = "ts2diff2"
	// DefaultValueCodec encodes sensor values with first-order deltas.
	DefaultValueCodec = "ts2diff"
)

// Options configures how Append encodes a series.
type Options struct {
	PageSize   int    // points per page; DefaultPageSize if zero
	TimeCodec  string // codec for the timestamp column
	ValueCodec string // codec for the value column
}

func (o Options) withDefaults() Options {
	if o.PageSize <= 0 {
		o.PageSize = DefaultPageSize
	}
	if o.TimeCodec == "" {
		o.TimeCodec = DefaultTimeCodec
	}
	if o.ValueCodec == "" {
		o.ValueCodec = DefaultValueCodec
	}
	return o
}

// Series is one stored time series: pages of (timestamp, value) columns.
//
// mu guards Pages: a *Series handed out by Store.Series may be queried
// (PagesInRange, TimeRange, NumPoints, ...) while ingest goroutines
// append through Store.Append/AppendPages, so the accessor methods take
// mu and the store's mutators hold it while changing Pages. The
// contract is machine-checked: every read of Pages must hold mu (RLock
// suffices) and every write the write lock — loaders build page lists
// locally and publish them through setPages.
type Series struct {
	Name  string
	Pages []PagePair //etsqp:guardedby mu — snapshot via pagesSnapshot, publish via setPages

	mu sync.RWMutex
}

// pagesSnapshot returns a stable view of the page list. Mutators only
// append past the snapshot's length or swap in a freshly built slice
// (Compact); existing elements are never written in place, so the
// returned header can be read without holding the lock.
func (s *Series) pagesSnapshot() []PagePair {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.Pages
}

// NumPages reports the number of stored pages.
func (s *Series) NumPages() int { return len(s.pagesSnapshot()) }

// setPages publishes a fully built page list — the loaders' single
// write to a series they are about to share.
func (s *Series) setPages(pages []PagePair) {
	s.mu.Lock()
	s.Pages = pages
	s.mu.Unlock()
}

// NumPoints sums the page counts.
func (s *Series) NumPoints() int {
	n := 0
	for _, pp := range s.pagesSnapshot() {
		n += pp.Count()
	}
	return n
}

// TimeRange returns the series' covered [start, end] time range.
func (s *Series) TimeRange() (start, end int64) {
	pages := s.pagesSnapshot()
	if len(pages) == 0 {
		return 0, 0
	}
	return pages[0].StartTime(), pages[len(pages)-1].EndTime()
}

// EncodedBytes sums the payload sizes of all pages (the I/O volume the
// throughput benchmarks charge against each encoder).
func (s *Series) EncodedBytes() int {
	n := 0
	for _, pp := range s.pagesSnapshot() {
		n += len(pp.Time.Data) + len(pp.Value.Data)
	}
	return n
}

// Store is an in-memory collection of series (the receiving-buffer side of
// an IoT database). It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	series map[string]*Series //etsqp:guardedby mu

	// onMutate callbacks run after a successful mutation of a series'
	// page list (Append, AppendPages, Compact), outside the store and
	// series locks. The execution layer registers its decoded-page cache
	// invalidation here. Registered during single-goroutine setup only
	// (see OnMutate), so the slice itself needs no lock.
	onMutate []func(series string)
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{series: make(map[string]*Series)}
}

// OnMutate registers fn to run after every successful mutation of a
// series' page list, with the series name. Callbacks run outside the
// store and series locks (so they may call back into the store) but
// before the mutating call returns, so a caller that mutates and then
// queries observes the callback's effect. Registration is not safe
// concurrently with mutations; register callbacks during setup.
func (s *Store) OnMutate(fn func(series string)) {
	s.onMutate = append(s.onMutate, fn)
}

// notifyMutate runs the registered mutation callbacks. Call with no
// store or series locks held.
func (s *Store) notifyMutate(series string) {
	for _, fn := range s.onMutate {
		fn(series)
	}
}

// EncodePages encodes aligned (ts, vals) columns into page pairs without
// touching a store — the building block Append and the benchmarks share.
func EncodePages(ts, vals []int64, opts Options) ([]PagePair, error) {
	if len(ts) != len(vals) {
		return nil, fmt.Errorf("storage: column length mismatch %d vs %d", len(ts), len(vals))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			return nil, fmt.Errorf("storage: timestamps not strictly increasing at row %d", i)
		}
	}
	opts = opts.withDefaults()
	timeCodec, err := encoding.Lookup(opts.TimeCodec)
	if err != nil {
		return nil, err
	}
	valueCodec, err := encoding.Lookup(opts.ValueCodec)
	if err != nil {
		return nil, err
	}
	var pairs []PagePair
	for off := 0; off < len(ts); off += opts.PageSize {
		end := off + opts.PageSize
		if end > len(ts) {
			end = len(ts)
		}
		tCol, vCol := ts[off:end], vals[off:end]
		tData, err := timeCodec.Encode(tCol)
		if err != nil {
			return nil, err
		}
		vData, err := valueCodec.Encode(vCol)
		if err != nil {
			return nil, err
		}
		minV, maxV := vCol[0], vCol[0]
		var sumV int64
		sumOK := true
		for _, v := range vCol {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
			s := sumV + v
			if (sumV > 0 && v > 0 && s < 0) || (sumV < 0 && v < 0 && s >= 0) {
				sumOK = false
			}
			sumV = s
		}
		pairs = append(pairs, PagePair{
			Time: &Page{
				Header: PageHeader{
					Kind: ColumnTime, Codec: opts.TimeCodec, Count: len(tCol),
					StartTime: tCol[0], EndTime: tCol[len(tCol)-1],
					MinValue: tCol[0], MaxValue: tCol[len(tCol)-1],
					Checksum: crc32.ChecksumIEEE(tData),
				},
				Data: tData,
			},
			Value: &Page{
				Header: PageHeader{
					Kind: ColumnValue, Codec: opts.ValueCodec, Count: len(vCol),
					StartTime: tCol[0], EndTime: tCol[len(tCol)-1],
					MinValue: minV, MaxValue: maxV,
					SumValue: sumV, SumValid: sumOK,
					Checksum: crc32.ChecksumIEEE(vData),
				},
				Data: vData,
			},
		})
	}
	obs.StoragePagesEncoded.Add(int64(len(pairs)))
	return pairs, nil
}

// Append encodes and appends (ts, vals) rows to the named series. The new
// rows must start after the series' current end time.
func (s *Store) Append(name string, ts, vals []int64, opts Options) error {
	pairs, err := EncodePages(ts, vals, opts)
	if err != nil {
		return err
	}
	if err := s.appendPairs(name, pairs); err != nil {
		return err
	}
	s.notifyMutate(name)
	return nil
}

// appendPairs appends page pairs under the store and series locks,
// releasing both before returning so mutation callbacks can run.
func (s *Store) appendPairs(name string, pairs []PagePair) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ser, ok := s.series[name]
	if !ok {
		ser = &Series{Name: name}
		s.series[name] = ser
	}
	ser.mu.Lock()
	defer ser.mu.Unlock()
	for _, pp := range pairs {
		if len(ser.Pages) > 0 {
			if last := ser.Pages[len(ser.Pages)-1].EndTime(); pp.StartTime() <= last {
				return fmt.Errorf("storage: append to %q out of time order (%d <= %d)",
					name, pp.StartTime(), last)
			}
		}
		ser.Pages = append(ser.Pages, pp)
	}
	return nil
}

// putSeries publishes a loader-built series into the store's map.
func (s *Store) putSeries(name string, ser *Series) {
	s.mu.Lock()
	s.series[name] = ser
	s.mu.Unlock()
}

// Series returns the named series.
func (s *Store) Series(name string) (*Series, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ser, ok := s.series[name]
	return ser, ok
}

// Names lists the stored series in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.series))
	for n := range s.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ReadColumns decodes an entire series back to flat (ts, vals) columns —
// the reference path tests compare the pipeline engine against.
func (s *Store) ReadColumns(name string) (ts, vals []int64, err error) {
	ser, ok := s.Series(name)
	if !ok {
		return nil, nil, fmt.Errorf("storage: unknown series %q", name)
	}
	for _, pp := range ser.pagesSnapshot() {
		t, err := pp.Time.Decode()
		if err != nil {
			return nil, nil, err
		}
		v, err := pp.Value.Decode()
		if err != nil {
			return nil, nil, err
		}
		ts = append(ts, t...)
		vals = append(vals, v...)
	}
	return ts, vals, nil
}

// PagesInRange returns the page pairs whose time range intersects
// [t1, t2], located by binary search over the (time-ordered) page list —
// the index lookup a query uses instead of scanning every page header.
func (s *Series) PagesInRange(t1, t2 int64) []PagePair {
	if t2 < t1 {
		return nil
	}
	pages := s.pagesSnapshot()
	// First page whose end reaches t1.
	lo := sort.Search(len(pages), func(i int) bool {
		return pages[i].EndTime() >= t1
	})
	// First page that starts after t2.
	hi := sort.Search(len(pages), func(i int) bool {
		return pages[i].StartTime() > t2
	})
	if lo >= hi {
		return nil
	}
	return pages[lo:hi]
}

// Compact re-encodes a series into uniform pages of the given options —
// merging the small blocks that incremental flushing produces (the
// write-path counterpart of Section VI-C's memory management: many short
// buffered flushes, later consolidated).
func (s *Store) Compact(name string, opts Options) error {
	ts, vals, err := s.ReadColumns(name)
	if err != nil {
		return err
	}
	pairs, err := EncodePages(ts, vals, opts)
	if err != nil {
		return err
	}
	s.mu.Lock()
	ser, ok := s.series[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("storage: unknown series %q", name)
	}
	ser.mu.Lock()
	ser.Pages = pairs
	ser.mu.Unlock()
	s.mu.Unlock()
	s.notifyMutate(name)
	return nil
}

// AppendPages appends already-encoded page pairs to a series — the
// server-side ingest path for pages that arrive encoded over the
// network (Section I: data is delivered compressed, never re-encoded).
func (s *Store) AppendPages(name string, pairs []PagePair) error {
	if err := s.appendPairs(name, pairs); err != nil {
		return err
	}
	s.notifyMutate(name)
	return nil
}
