package storage

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	// Register codecs used by the tests.
	_ "etsqp/internal/encoding/rlbe"
	_ "etsqp/internal/encoding/sprintz"
	_ "etsqp/internal/encoding/ts2diff"
	_ "etsqp/internal/fastlanes"
)

func genSeries(n int) (ts, vals []int64) {
	ts = make([]int64, n)
	vals = make([]int64, n)
	for i := 0; i < n; i++ {
		ts[i] = 1_700_000_000_000 + int64(i)*1000
		vals[i] = int64(i%97) * 3
	}
	return ts, vals
}

func TestAppendAndReadColumns(t *testing.T) {
	st := NewStore()
	ts, vals := genSeries(10_000)
	if err := st.Append("root.sg.d1.velocity", ts, vals, Options{PageSize: 1024}); err != nil {
		t.Fatal(err)
	}
	ser, ok := st.Series("root.sg.d1.velocity")
	if !ok {
		t.Fatal("series missing")
	}
	if got, want := len(ser.Pages), 10; got != want {
		t.Fatalf("pages = %d, want %d", got, want)
	}
	if ser.NumPoints() != 10_000 {
		t.Fatalf("points = %d", ser.NumPoints())
	}
	gotTs, gotVals, err := st.ReadColumns("root.sg.d1.velocity")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTs, ts) || !reflect.DeepEqual(gotVals, vals) {
		t.Fatal("round trip mismatch")
	}
}

func TestPageHeaderStatistics(t *testing.T) {
	st := NewStore()
	ts := []int64{10, 20, 30, 40}
	vals := []int64{5, -2, 100, 7}
	if err := st.Append("s", ts, vals, Options{}); err != nil {
		t.Fatal(err)
	}
	ser, _ := st.Series("s")
	pp := ser.Pages[0]
	if pp.StartTime() != 10 || pp.EndTime() != 40 {
		t.Fatalf("time range [%d,%d]", pp.StartTime(), pp.EndTime())
	}
	if pp.Value.Header.MinValue != -2 || pp.Value.Header.MaxValue != 100 {
		t.Fatalf("value stats [%d,%d]", pp.Value.Header.MinValue, pp.Value.Header.MaxValue)
	}
	if pp.Time.Header.Kind != ColumnTime || pp.Value.Header.Kind != ColumnValue {
		t.Fatal("column kinds wrong")
	}
}

func TestAppendValidation(t *testing.T) {
	st := NewStore()
	if err := st.Append("s", []int64{1, 2}, []int64{1}, Options{}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if err := st.Append("s", []int64{5, 5}, []int64{1, 2}, Options{}); err == nil {
		t.Fatal("non-increasing timestamps must fail")
	}
	if err := st.Append("s", []int64{1, 2}, []int64{1, 2}, Options{}); err != nil {
		t.Fatal(err)
	}
	// Out-of-order append across calls.
	if err := st.Append("s", []int64{2, 3}, []int64{1, 2}, Options{}); err == nil {
		t.Fatal("overlapping append must fail")
	}
	if err := st.Append("s", []int64{10, 11}, []int64{1, 2}, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownCodec(t *testing.T) {
	st := NewStore()
	err := st.Append("s", []int64{1}, []int64{1}, Options{ValueCodec: "nope"})
	if err == nil {
		t.Fatal("unknown codec must fail")
	}
}

func TestAllCodecsThroughStorage(t *testing.T) {
	ts, vals := genSeries(3000)
	for _, codec := range []string{"ts2diff", "sprintz", "rlbe", "fastlanes"} {
		st := NewStore()
		if err := st.Append("s", ts, vals, Options{ValueCodec: codec, PageSize: 1000}); err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		_, gotVals, err := st.ReadColumns("s")
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		if !reflect.DeepEqual(gotVals, vals) {
			t.Fatalf("%s: round trip mismatch", codec)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	st := NewStore()
	ts, vals := genSeries(5000)
	if err := st.Append("a.b.c", ts, vals, Options{PageSize: 777}); err != nil {
		t.Fatal(err)
	}
	ts2 := make([]int64, len(ts))
	for i := range ts2 {
		ts2[i] = ts[i] + 37
	}
	if err := st.Append("x.y", ts2, vals, Options{ValueCodec: "sprintz"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "store.etsqp")
	if err := st.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Names(), st2.Names()) {
		t.Fatalf("names %v vs %v", st.Names(), st2.Names())
	}
	for _, name := range st.Names() {
		t1, v1, err := st.ReadColumns(name)
		if err != nil {
			t.Fatal(err)
		}
		t2c, v2, err := st2.ReadColumns(name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(t1, t2c) || !reflect.DeepEqual(v1, v2) {
			t.Fatalf("series %s mismatch after file round trip", name)
		}
	}
}

func TestReadBytesCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("WRONGMAGIC"),
		[]byte("ETSQP1\x00\x00\x00\x05"), // claims 5 series, no data
	}
	for i, c := range cases {
		if _, err := ReadBytes(c); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Truncate a valid file at every eighth byte; must error, never panic.
	st := NewStore()
	ts, vals := genSeries(100)
	if err := st.Append("s", ts, vals, Options{}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "f")
	if err := st.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full)-1; cut += 8 {
		if _, err := ReadBytes(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestEncodePagesQuick(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		ts := make([]int64, n)
		vals := make([]int64, n)
		for i := 0; i < n; i++ {
			ts[i] = int64(i)*100 + (seed%50+50)*int64(i%3)/3 + int64(i)
			vals[i] = (seed + int64(i*i)) % 100000
		}
		pairs, err := EncodePages(ts, vals, Options{PageSize: 333})
		if err != nil {
			return false
		}
		var gotT, gotV []int64
		for _, pp := range pairs {
			tc, err := pp.Time.Decode()
			if err != nil {
				return false
			}
			vc, err := pp.Value.Decode()
			if err != nil {
				return false
			}
			gotT = append(gotT, tc...)
			gotV = append(gotV, vc...)
		}
		return reflect.DeepEqual(gotT, ts) && reflect.DeepEqual(gotV, vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedBytesAndTimeRange(t *testing.T) {
	st := NewStore()
	ts, vals := genSeries(2000)
	if err := st.Append("s", ts, vals, Options{}); err != nil {
		t.Fatal(err)
	}
	ser, _ := st.Series("s")
	if ser.EncodedBytes() <= 0 {
		t.Fatal("encoded bytes must be positive")
	}
	// TS2DIFF on this series must compress well below raw size.
	if raw := 2000 * 16; ser.EncodedBytes() > raw/4 {
		t.Fatalf("weak compression: %d bytes vs raw %d", ser.EncodedBytes(), raw)
	}
	start, end := ser.TimeRange()
	if start != ts[0] || end != ts[len(ts)-1] {
		t.Fatalf("time range [%d,%d]", start, end)
	}
	var empty Series
	if s, e := empty.TimeRange(); s != 0 || e != 0 {
		t.Fatal("empty series time range")
	}
}

func TestPagesInRange(t *testing.T) {
	st := NewStore()
	ts, vals := genSeries(10_000)
	if err := st.Append("s", ts, vals, Options{PageSize: 1000}); err != nil {
		t.Fatal(err)
	}
	ser, _ := st.Series("s")
	// Reference: linear scan.
	for _, rg := range [][2]int64{
		{ts[0], ts[len(ts)-1]},
		{ts[0] - 100, ts[0] - 1},
		{ts[len(ts)-1] + 1, ts[len(ts)-1] + 100},
		{ts[2500], ts[2500]},
		{ts[999], ts[1000]},
		{ts[1500], ts[8700]},
		{ts[5], ts[3]}, // inverted
	} {
		got := ser.PagesInRange(rg[0], rg[1])
		var want []PagePair
		if rg[1] >= rg[0] {
			for _, pp := range ser.Pages {
				if pp.EndTime() >= rg[0] && pp.StartTime() <= rg[1] {
					want = append(want, pp)
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("range %v: got %d pages want %d", rg, len(got), len(want))
		}
		for i := range got {
			if got[i].Time != want[i].Time {
				t.Fatalf("range %v: page %d differs", rg, i)
			}
		}
	}
}

func TestCompact(t *testing.T) {
	st := NewStore()
	ts, vals := genSeries(5000)
	// Ingest in many small appends (short flush blocks).
	for off := 0; off < len(ts); off += 137 {
		end := off + 137
		if end > len(ts) {
			end = len(ts)
		}
		if err := st.Append("s", ts[off:end], vals[off:end], Options{PageSize: 137}); err != nil {
			t.Fatal(err)
		}
	}
	ser, _ := st.Series("s")
	smallPages := len(ser.Pages)
	sizeBefore := ser.EncodedBytes()
	if err := st.Compact("s", Options{PageSize: 2048}); err != nil {
		t.Fatal(err)
	}
	if got := len(ser.Pages); got >= smallPages || got != 3 {
		t.Fatalf("pages after compact = %d (before %d)", got, smallPages)
	}
	if ser.EncodedBytes() >= sizeBefore {
		t.Fatalf("compaction did not shrink: %d -> %d", sizeBefore, ser.EncodedBytes())
	}
	gotTs, gotVals, err := st.ReadColumns("s")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTs, ts) || !reflect.DeepEqual(gotVals, vals) {
		t.Fatal("compaction changed data")
	}
	if err := st.Compact("nosuch", Options{}); err == nil {
		t.Fatal("unknown series must fail")
	}
}

func TestLazyFile(t *testing.T) {
	st := NewStore()
	ts, vals := genSeries(6000)
	if err := st.Append("a", ts, vals, Options{PageSize: 700}); err != nil {
		t.Fatal(err)
	}
	ts2 := make([]int64, len(ts))
	for i := range ts2 {
		ts2[i] = ts[i] + 3
	}
	if err := st.Append("b", ts2, vals, Options{PageSize: 900}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.etsqp")
	if err := st.WriteIndexedFile(path); err != nil {
		t.Fatal(err)
	}
	// The indexed file stays readable by the eager reader.
	eager, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(eager.Names()) != 2 {
		t.Fatalf("eager names: %v", eager.Names())
	}
	// Lazy access loads only what is asked for.
	lf, err := OpenLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	if got := lf.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("names: %v", got)
	}
	serA, err := lf.Series("a")
	if err != nil {
		t.Fatal(err)
	}
	if serA.NumPoints() != 6000 {
		t.Fatalf("points = %d", serA.NumPoints())
	}
	// Cached instance is reused.
	serA2, _ := lf.Series("a")
	if serA != serA2 {
		t.Fatal("series not cached")
	}
	if _, err := lf.Series("missing"); err == nil {
		t.Fatal("unknown series must fail")
	}
	// Cache limit evicts.
	lf.SetCacheLimit(1)
	if _, err := lf.Series("b"); err != nil {
		t.Fatal(err)
	}
	// LoadStore round trip matches the original data.
	st2, err := lf.LoadStore("a")
	if err != nil {
		t.Fatal(err)
	}
	gt, gv, err := st2.ReadColumns("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gt, ts) || !reflect.DeepEqual(gv, vals) {
		t.Fatal("lazy round trip mismatch")
	}
	// Files without an index are rejected by OpenLazy with a clear error.
	plain := filepath.Join(t.TempDir(), "plain.etsqp")
	if err := st.WriteFile(plain); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLazy(plain); err == nil {
		t.Fatal("plain file must be rejected")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	st := NewStore()
	ts, vals := genSeries(500)
	if err := st.Append("s", ts, vals, Options{PageSize: 250}); err != nil {
		t.Fatal(err)
	}
	ser, _ := st.Series("s")
	page := ser.Pages[0].Value
	if page.Header.Checksum == 0 {
		t.Fatal("checksum not written")
	}
	if err := page.VerifyChecksum(); err != nil {
		t.Fatal(err)
	}
	page.Data[3] ^= 0x01 // single bit flip
	if err := page.VerifyChecksum(); err == nil {
		t.Fatal("bit flip not detected")
	}
	if _, err := page.Decode(); err == nil {
		t.Fatal("decode of corrupted page must fail")
	}
	// Legacy pages without a checksum are accepted.
	page.Header.Checksum = 0
	if err := page.VerifyChecksum(); err != nil {
		t.Fatal("zero checksum must be accepted")
	}
}

// TestStoreConcurrentIngestAndQuery pins the serve-loop contract under
// the race detector: ingest goroutines append pages through
// Store.Append/AppendPages while query goroutines hold a *Series — the
// way the engine holds one after Store.Series returns — and read it
// through the accessor methods for the whole duration of the ingest.
func TestStoreConcurrentIngestAndQuery(t *testing.T) {
	st := NewStore()
	const (
		batches   = 50
		batchRows = 64
		readers   = 4
	)
	allTs, allVals := genSeries(batches * batchRows)

	// Publish both series with their first batch so readers can grab and
	// hold a *Series before the ingest traffic starts.
	for _, name := range []string{"ingest", "flushed"} {
		if err := st.Append(name, allTs[:batchRows], allVals[:batchRows], Options{PageSize: 16}); err != nil {
			t.Fatal(err)
		}
	}

	var wg, writers, readersUp sync.WaitGroup
	writersDone := make(chan struct{})
	readersUp.Add(readers)
	writers.Add(2)
	wg.Add(1)
	go func() { // the transport.Receive path: pre-encoded pages in
		defer wg.Done()
		defer writers.Done()
		readersUp.Wait()
		for b := 1; b < batches; b++ {
			off := b * batchRows
			pairs, err := EncodePages(allTs[off:off+batchRows], allVals[off:off+batchRows], Options{PageSize: 16})
			if err != nil {
				t.Error(err)
				return
			}
			if err := st.AppendPages("ingest", pairs); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // the buffered-flush path on a second series
		defer wg.Done()
		defer writers.Done()
		readersUp.Wait()
		for b := 1; b < batches; b++ {
			off := b * batchRows
			if err := st.Append("flushed", allTs[off:off+batchRows], allVals[off:off+batchRows], Options{PageSize: 16}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		writers.Wait()
		close(writersDone)
	}()
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() { // the engine path: hold the series, read until ingest ends
			defer wg.Done()
			serA, _ := st.Series("ingest")
			serB, _ := st.Series("flushed")
			readersUp.Done()
			for {
				for _, ser := range []*Series{serA, serB} {
					start, end := ser.TimeRange()
					for _, pp := range ser.PagesInRange(start, end) {
						if pp.Count() <= 0 {
							t.Error("empty page in range")
							return
						}
					}
					_ = ser.NumPoints()
					_ = ser.EncodedBytes()
				}
				select {
				case <-writersDone:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()

	for _, name := range []string{"ingest", "flushed"} {
		ser, ok := st.Series(name)
		if !ok || ser.NumPoints() != batches*batchRows {
			t.Fatalf("%s: points = %d, want %d", name, ser.NumPoints(), batches*batchRows)
		}
		if _, _, err := st.ReadColumns(name); err != nil {
			t.Fatal(err)
		}
	}
}
