package storage

import (
	"os"
	"testing"
)

// FuzzReadBytes drives arbitrary bytes through the file-format parser.
func FuzzReadBytes(f *testing.F) {
	st := NewStore()
	ts, vals := genSeries(200)
	_ = st.Append("s", ts, vals, Options{PageSize: 64})
	var buf []byte
	{
		// Serialize a valid store as the seed.
		tmp := f.TempDir() + "/seed"
		if err := st.WriteFile(tmp); err == nil {
			if raw, err := os.ReadFile(tmp); err == nil {
				buf = raw
			}
		}
	}
	f.Add(buf)
	f.Add([]byte("ETSQP1\x00\x00\x00\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ReadBytes(data)
		if err != nil {
			return
		}
		// A parsed store must be traversable without panics.
		for _, name := range st.Names() {
			_, _, _ = st.ReadColumns(name)
		}
	})
}
