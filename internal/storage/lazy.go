package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"etsqp/internal/obs"
)

// Lazy-access container: WriteIndexedFile appends an index footer
// (series name → byte offset) after the regular file body, so a reader
// can open the file, list series, and load only the series a query
// touches — the gradual, memory-bounded page loading of Section VI-C.
//
// Footer layout (all big-endian):
//
//	repeat: nameLen(2) name offset(8) length(8)
//	indexLen(4) "IDX1"
var indexMagic = [4]byte{'I', 'D', 'X', '1'}

// WriteIndexedFile persists the store with a lazy-load index footer.
// Files written this way remain readable by ReadFile (the footer is
// trailing data the eager reader never reaches).
func (s *Store) WriteIndexedFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	// Body: same as WriteFile, but record per-series extents.
	s.mu.RLock()
	names := make([]string, 0, len(s.series))
	for n := range s.series {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)

	var body []byte
	body = append(body, fileMagic[:]...)
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(names)))
	body = append(body, tmp[:4]...)
	type extent struct {
		name        string
		off, length int
	}
	extents := make([]extent, 0, len(names))
	s.mu.RLock()
	for _, name := range names {
		start := len(body)
		pages := s.series[name].pagesSnapshot()
		binary.BigEndian.PutUint32(tmp[:4], uint32(len(name)))
		body = append(body, tmp[:4]...)
		body = append(body, name...)
		binary.BigEndian.PutUint32(tmp[:4], uint32(len(pages)))
		body = append(body, tmp[:4]...)
		for _, pp := range pages {
			buf := marshalPage(nil, pp.Time)
			buf = marshalPage(buf, pp.Value)
			binary.BigEndian.PutUint32(tmp[:4], uint32(len(buf)))
			body = append(body, tmp[:4]...)
			body = append(body, buf...)
		}
		extents = append(extents, extent{name, start, len(body) - start})
	}
	s.mu.RUnlock()
	if _, err := f.Write(body); err != nil {
		return err
	}
	// Footer.
	var idx []byte
	for _, e := range extents {
		binary.BigEndian.PutUint16(tmp[:2], uint16(len(e.name)))
		idx = append(idx, tmp[:2]...)
		idx = append(idx, e.name...)
		binary.BigEndian.PutUint64(tmp[:], uint64(e.off))
		idx = append(idx, tmp[:]...)
		binary.BigEndian.PutUint64(tmp[:], uint64(e.length))
		idx = append(idx, tmp[:]...)
	}
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(idx)))
	idx = append(idx, tmp[:4]...)
	idx = append(idx, indexMagic[:]...)
	_, err = f.Write(idx)
	return err
}

// LazyFile reads series on demand from an indexed store file.
type LazyFile struct {
	f  *os.File
	mu sync.Mutex
	// index and names are filled once by readIndex before the LazyFile
	// is returned to any caller and are read-only afterwards, so they
	// carry no lock contract.
	index   map[string][2]int64 // name -> (offset, length)
	names   []string
	cache   map[string]*Series //etsqp:guardedby mu
	maxHeld int                //etsqp:guardedby mu
}

// OpenLazy opens an indexed store file without loading any series data.
func OpenLazy(path string) (*LazyFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	lf := &LazyFile{f: f, index: map[string][2]int64{}, cache: map[string]*Series{}}
	if err := lf.readIndex(); err != nil {
		f.Close()
		return nil, err
	}
	return lf, nil
}

// SetCacheLimit bounds the number of series kept decoded in memory; the
// oldest entries are evicted first (0 = unbounded).
func (lf *LazyFile) SetCacheLimit(n int) {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	lf.maxHeld = n
}

// Close releases the file handle.
func (lf *LazyFile) Close() error { return lf.f.Close() }

// Names lists the indexed series.
func (lf *LazyFile) Names() []string {
	return append([]string(nil), lf.names...)
}

func (lf *LazyFile) readIndex() error {
	st, err := lf.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < 8 {
		return fmt.Errorf("storage: file too small for index")
	}
	var tail [8]byte
	if _, err := lf.f.ReadAt(tail[:], st.Size()-8); err != nil {
		return err
	}
	if tail[4] != indexMagic[0] || tail[5] != indexMagic[1] ||
		tail[6] != indexMagic[2] || tail[7] != indexMagic[3] {
		return fmt.Errorf("storage: missing index footer (use WriteIndexedFile)")
	}
	idxLen := int64(binary.BigEndian.Uint32(tail[:4]))
	if idxLen < 0 || idxLen > st.Size()-8 {
		return fmt.Errorf("storage: corrupt index length")
	}
	idx := make([]byte, idxLen)
	if _, err := lf.f.ReadAt(idx, st.Size()-8-idxLen); err != nil {
		return err
	}
	for off := 0; off < len(idx); {
		if off+2 > len(idx) {
			return fmt.Errorf("storage: corrupt index entry")
		}
		nameLen := int(binary.BigEndian.Uint16(idx[off:]))
		off += 2
		if off+nameLen+16 > len(idx) {
			return fmt.Errorf("storage: corrupt index entry")
		}
		name := string(idx[off : off+nameLen])
		off += nameLen
		dataOff := int64(binary.BigEndian.Uint64(idx[off:]))
		dataLen := int64(binary.BigEndian.Uint64(idx[off+8:]))
		off += 16
		if dataOff < 0 || dataLen < 0 || dataOff+dataLen > st.Size() {
			return fmt.Errorf("storage: corrupt index extent for %q", name)
		}
		lf.index[name] = [2]int64{dataOff, dataLen}
		lf.names = append(lf.names, name)
	}
	return nil
}

// Series loads (and caches) one series from disk.
func (lf *LazyFile) Series(name string) (*Series, error) {
	lf.mu.Lock()
	if ser, ok := lf.cache[name]; ok {
		lf.mu.Unlock()
		return ser, nil
	}
	ext, ok := lf.index[name]
	lf.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("storage: unknown series %q", name)
	}
	raw := make([]byte, ext[1])
	if _, err := lf.f.ReadAt(raw, ext[0]); err != nil {
		return nil, err
	}
	ser, err := parseSeriesRecord(raw)
	if err != nil {
		return nil, err
	}
	obs.StorageLazySeriesLoaded.Inc()
	obs.StorageLazyPagesLoaded.Add(int64(ser.NumPages()))
	lf.mu.Lock()
	defer lf.mu.Unlock()
	if lf.maxHeld > 0 && len(lf.cache) >= lf.maxHeld {
		// Evict an arbitrary held series (memory bound, not LRU fidelity).
		for k := range lf.cache {
			delete(lf.cache, k)
			break
		}
	}
	lf.cache[name] = ser
	return ser, nil
}

// LoadStore materializes the named series (all when names is empty) into
// a regular Store for querying.
func (lf *LazyFile) LoadStore(names ...string) (*Store, error) {
	if len(names) == 0 {
		names = lf.Names()
	}
	st := NewStore()
	for _, name := range names {
		ser, err := lf.Series(name)
		if err != nil {
			return nil, err
		}
		st.putSeries(name, ser)
	}
	return st, nil
}

// parseSeriesRecord parses one series record (name, page count, pages).
func parseSeriesRecord(raw []byte) (*Series, error) {
	if len(raw) < 8 {
		return nil, io.ErrUnexpectedEOF
	}
	nameLen := int(binary.BigEndian.Uint32(raw))
	off := 4
	if len(raw) < off+nameLen+4 {
		return nil, io.ErrUnexpectedEOF
	}
	name := string(raw[off : off+nameLen])
	off += nameLen
	nPages := int(binary.BigEndian.Uint32(raw[off:]))
	off += 4
	var pages []PagePair
	for p := 0; p < nPages; p++ {
		if len(raw) < off+4 {
			return nil, io.ErrUnexpectedEOF
		}
		pairLen := int(binary.BigEndian.Uint32(raw[off:]))
		off += 4
		if len(raw) < off+pairLen {
			return nil, io.ErrUnexpectedEOF
		}
		pairBuf := raw[off : off+pairLen]
		off += pairLen
		tp, n, err := unmarshalPage(pairBuf)
		if err != nil {
			return nil, err
		}
		vp, _, err := unmarshalPage(pairBuf[n:])
		if err != nil {
			return nil, err
		}
		pages = append(pages, PagePair{Time: tp, Value: vp})
	}
	ser := &Series{Name: name}
	ser.setPages(pages)
	return ser, nil
}
