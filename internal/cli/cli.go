// Package cli implements the etsqp-cli shell logic: store construction
// from flags, statement dispatch (queries, EXPLAIN, and EXPLAIN
// ANALYZE), and result rendering. It lives outside cmd/ so the
// behaviour is unit-testable.
package cli

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"etsqp/internal/dataset"
	"etsqp/internal/engine"
	"etsqp/internal/storage"
)

// Modes maps the -mode flag values to execution modes.
var Modes = map[string]engine.Mode{
	"etsqp":     engine.ModeETSQP,
	"prune":     engine.ModeETSQPPrune,
	"serial":    engine.ModeSerial,
	"sboost":    engine.ModeSBoost,
	"fastlanes": engine.ModeFastLanes,
}

// Config describes a shell session.
type Config struct {
	LoadPath string // store file to load (exclusive with GenLabel)
	GenLabel string // Table II dataset to generate
	Rows     int
	Seed     int64
	Codec    string
	Mode     string
	Workers  int
	MaxRows  int // row-output cap
}

// BuildStore materializes the session's store from the config.
func (c Config) BuildStore() (*storage.Store, error) {
	switch {
	case c.LoadPath != "":
		return storage.ReadFile(c.LoadPath)
	case c.GenLabel != "":
		d, err := dataset.Generate(c.GenLabel, c.Rows, c.Seed)
		if err != nil {
			return nil, err
		}
		st := storage.NewStore()
		for a, col := range d.Attrs {
			name := fmt.Sprintf("ts%d", a+1)
			if err := st.Append(name, d.Time, col, storage.Options{ValueCodec: c.Codec}); err != nil {
				return nil, err
			}
		}
		return st, nil
	default:
		return nil, fmt.Errorf("cli: need a store file or a dataset label")
	}
}

// NewEngine builds the engine for the config.
func (c Config) NewEngine(st *storage.Store) (*engine.Engine, error) {
	m, ok := Modes[strings.ToLower(c.Mode)]
	if !ok {
		return nil, fmt.Errorf("cli: unknown mode %q", c.Mode)
	}
	e := engine.New(st, m)
	if c.Workers > 0 {
		e.Workers = c.Workers
	}
	return e, nil
}

// Execute runs one statement (query, EXPLAIN, or EXPLAIN ANALYZE) and
// renders the result.
func Execute(w io.Writer, eng *engine.Engine, sql string, maxRows int) error {
	trimmed := strings.TrimSpace(sql)
	if rest, ok := cutPrefixFold(trimmed, "EXPLAIN ANALYZE "); ok {
		info, err := eng.ExplainAnalyze(rest)
		if err != nil {
			return err
		}
		fmt.Fprint(w, info)
		return nil
	}
	if rest, ok := cutPrefixFold(trimmed, "EXPLAIN "); ok {
		info, err := eng.Explain(rest)
		if err != nil {
			return err
		}
		fmt.Fprint(w, info)
		return nil
	}
	res, err := eng.ExecuteSQL(sql)
	if err != nil {
		return err
	}
	RenderResult(w, res, maxRows)
	return nil
}

// RenderResult writes a query result as the shell renders it: window
// rows, sorted aggregates, or tuples (capped at maxRows), followed by a
// one-line stats summary. The serve package reuses it for the /query
// endpoint so both surfaces render identically.
func RenderResult(w io.Writer, res *engine.Result, maxRows int) {
	switch {
	case len(res.Windows) > 0:
		for _, win := range res.Windows {
			fmt.Fprintf(w, "  window %d [%d, %d): %v (%d points)\n",
				win.Index, win.Start, win.End, win.Value, win.Count)
		}
	case res.Aggregates != nil:
		keys := make([]string, 0, len(res.Aggregates))
		for k := range res.Aggregates {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %s = %v\n", k, res.Aggregates[k])
		}
	default:
		for i, r := range res.Rows {
			if maxRows > 0 && i >= maxRows {
				fmt.Fprintf(w, "  ... %d more rows\n", len(res.Rows)-maxRows)
				break
			}
			fmt.Fprintf(w, "  %d\t%v\n", r.Time, r.Values)
		}
	}
	fmt.Fprintf(w, "  (%d pages, %d pruned, %d jobs, %d tuples)\n",
		res.Stats.PagesTotal, res.Stats.PagesPruned, res.Stats.SlicesRun, res.Stats.TuplesLoaded)
}

// Repl reads statements line by line, executing each.
func Repl(r io.Reader, w, errW io.Writer, eng *engine.Engine, maxRows int) {
	sc := bufio.NewScanner(r)
	fmt.Fprint(w, "etsqp> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch line {
		case "":
			fmt.Fprint(w, "etsqp> ")
			continue
		case "exit", "quit":
			return
		}
		if err := Execute(w, eng, line, maxRows); err != nil {
			fmt.Fprintf(errW, "error: %v\n", err)
		}
		fmt.Fprint(w, "etsqp> ")
	}
}

// cutPrefixFold is strings.CutPrefix with ASCII case folding.
func cutPrefixFold(s, prefix string) (string, bool) {
	if len(s) < len(prefix) {
		return s, false
	}
	if strings.EqualFold(s[:len(prefix)], prefix) {
		return s[len(prefix):], true
	}
	return s, false
}
