package cli

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"etsqp/internal/storage"

	_ "etsqp/internal/encoding/sprintz"
	_ "etsqp/internal/encoding/ts2diff"
)

func sessionConfig() Config {
	return Config{GenLabel: "Atm", Rows: 3000, Seed: 1, Codec: "ts2diff", Mode: "etsqp", MaxRows: 5}
}

func TestBuildStoreFromDataset(t *testing.T) {
	cfg := sessionConfig()
	st, err := cfg.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	if names := st.Names(); len(names) != 3 || names[0] != "ts1" {
		t.Fatalf("names = %v", names)
	}
	if _, err := (Config{}).BuildStore(); err == nil {
		t.Fatal("empty config must fail")
	}
	if _, err := (Config{GenLabel: "nope", Rows: 10}).BuildStore(); err == nil {
		t.Fatal("unknown dataset must fail")
	}
}

func TestBuildStoreFromFile(t *testing.T) {
	st := storage.NewStore()
	if err := st.Append("s", []int64{1, 2, 3}, []int64{7, 8, 9}, storage.Options{}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "f.etsqp")
	if err := st.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	st2, err := Config{LoadPath: path}.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Names()) != 1 {
		t.Fatalf("names = %v", st2.Names())
	}
}

func TestNewEngineModes(t *testing.T) {
	cfg := sessionConfig()
	st, _ := cfg.BuildStore()
	for name := range Modes {
		cfg.Mode = name
		if _, err := cfg.NewEngine(st); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	cfg.Mode = "bogus"
	if _, err := cfg.NewEngine(st); err == nil {
		t.Fatal("unknown mode must fail")
	}
}

func TestExecuteRendering(t *testing.T) {
	cfg := sessionConfig()
	st, _ := cfg.BuildStore()
	eng, _ := cfg.NewEngine(st)

	var buf bytes.Buffer
	if err := Execute(&buf, eng, "SELECT SUM(A), COUNT(A) FROM ts1", 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "SUM(A) =") || !strings.Contains(out, "COUNT(A) = 3000") {
		t.Fatalf("aggregate render: %s", out)
	}
	// Deterministic key order.
	if strings.Index(out, "COUNT(A)") > strings.Index(out, "SUM(A)") {
		t.Fatalf("keys not sorted: %s", out)
	}

	buf.Reset()
	if err := Execute(&buf, eng, "SELECT * FROM ts1 WHERE A > -999999 LIMIT 8", 5); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "... 3 more rows") {
		t.Fatalf("row cap render: %s", out)
	}

	buf.Reset()
	if err := Execute(&buf, eng, "explain SELECT SUM(A) FROM ts1", 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "aggregate query") {
		t.Fatalf("explain render: %s", buf.String())
	}

	buf.Reset()
	if err := Execute(&buf, eng, "explain analyze SELECT SUM(A) FROM ts1", 5); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "aggregate query") || !strings.Contains(out, "analyze:") ||
		!strings.Contains(out, "elapsed:") {
		t.Fatalf("explain analyze render: %s", out)
	}

	if err := Execute(&buf, eng, "not sql", 5); err == nil {
		t.Fatal("bad SQL must error")
	}
	if err := Execute(&buf, eng, "EXPLAIN not sql", 5); err == nil {
		t.Fatal("bad EXPLAIN must error")
	}
	if err := Execute(&buf, eng, "EXPLAIN ANALYZE not sql", 5); err == nil {
		t.Fatal("bad EXPLAIN ANALYZE must error")
	}
}

func TestExecuteWindows(t *testing.T) {
	cfg := sessionConfig()
	st, _ := cfg.BuildStore()
	eng, _ := cfg.NewEngine(st)
	var buf bytes.Buffer
	// Atm timestamps start at 1.6e12 with 1 s interval.
	if err := Execute(&buf, eng, "SELECT SUM(A) FROM ts1 SW(1600000000000, 1000000)", 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "window 0 [") {
		t.Fatalf("window render: %s", buf.String())
	}
}

func TestRepl(t *testing.T) {
	cfg := sessionConfig()
	st, _ := cfg.BuildStore()
	eng, _ := cfg.NewEngine(st)
	in := strings.NewReader("SELECT COUNT(A) FROM ts1\n\nbad sql\nexit\n")
	var out, errOut bytes.Buffer
	Repl(in, &out, &errOut, eng, 5)
	if !strings.Contains(out.String(), "COUNT(A) = 3000") {
		t.Fatalf("repl out: %s", out.String())
	}
	if !strings.Contains(errOut.String(), "error:") {
		t.Fatalf("repl err: %s", errOut.String())
	}
	if got := strings.Count(out.String(), "etsqp> "); got < 3 {
		t.Fatalf("prompts = %d", got)
	}
}
