package encoding

// DeltaEncode computes first-order deltas: d[i] = v[i+1] - v[i].
// It returns the first value (kept in the header by IoT encoders) and the
// len(v)-1 differences. An empty input yields (0, nil).
func DeltaEncode(vals []int64) (first int64, deltas []int64) {
	if len(vals) == 0 {
		return 0, nil
	}
	first = vals[0]
	deltas = make([]int64, len(vals)-1)
	for i := 1; i < len(vals); i++ {
		deltas[i-1] = vals[i] - vals[i-1]
	}
	return first, deltas
}

// DeltaDecode inverts DeltaEncode: v[0] = first, v[i] = v[i-1] + d[i-1].
func DeltaDecode(first int64, deltas []int64) []int64 {
	out := make([]int64, len(deltas)+1)
	out[0] = first
	for i, d := range deltas {
		out[i+1] = out[i] + d
	}
	return out
}

// Delta2Encode computes second-order deltas (the ±² row of Table I, used
// by TS2DIFF for timestamps): it delta-encodes the delta sequence.
// It returns the first value, the first delta, and len(v)-2 second-order
// differences.
func Delta2Encode(vals []int64) (first, firstDelta int64, dd []int64) {
	if len(vals) < 2 {
		if len(vals) == 1 {
			return vals[0], 0, nil
		}
		return 0, 0, nil
	}
	first = vals[0]
	_, deltas := DeltaEncode(vals)
	firstDelta = deltas[0]
	_, dd = DeltaEncode(deltas)
	return first, firstDelta, dd
}

// Delta2Decode inverts Delta2Encode for n >= 2 original values.
func Delta2Decode(first, firstDelta int64, dd []int64) []int64 {
	deltas := DeltaDecode(firstDelta, dd)
	return DeltaDecode(first, deltas)
}

// XORDeltaEncode computes the XOR-with-previous transform over raw 64-bit
// words (float bit patterns for Gorilla/Chimp/Elf). The first word passes
// through unchanged.
func XORDeltaEncode(words []uint64) []uint64 {
	out := make([]uint64, len(words))
	var prev uint64
	for i, w := range words {
		out[i] = w ^ prev
		prev = w
	}
	return out
}

// XORDeltaDecode inverts XORDeltaEncode.
func XORDeltaDecode(xs []uint64) []uint64 {
	out := make([]uint64, len(xs))
	var prev uint64
	for i, x := range xs {
		out[i] = x ^ prev
		prev = out[i]
	}
	return out
}
