// Package rlbe implements the RLBE combined encoder (Table I row "RLBE"):
// first-order Delta, Run-length on the delta sequence, and Fibonacci
// (variable-width) packing of both the delta magnitudes and the run
// lengths.
//
// Each Delta-Repeat pair is written as two self-delimiting Fibonacci
// codewords: fib(zigzag(delta)+1) then fib(runLength). The "+1" lifts the
// zigzag code into Fibonacci's >= 1 domain. Because every codeword ends in
// the unique "11" pair, slices of the payload remain decodable from any
// codeword boundary — the property Section III-C exploits to split
// variable-width pages across cores.
package rlbe

import (
	"encoding/binary"
	"errors"

	"etsqp/internal/bitio"
	"etsqp/internal/encoding"
)

// Block is a parsed RLBE block.
type Block struct {
	Count   int
	First   int64
	NumRuns int
	Payload []byte // Fibonacci codewords: (delta, runlen) per run
}

// Encode builds an RLBE block.
func Encode(vals []int64) (*Block, error) {
	b := &Block{Count: len(vals)}
	if len(vals) == 0 {
		return b, nil
	}
	first, pairs := encoding.DeltaRLEEncode(vals)
	b.First = first
	b.NumRuns = len(pairs)
	w := bitio.NewWriter(len(pairs) * 4)
	for _, p := range pairs {
		if err := encoding.FibonacciEncode(w, encoding.ZigZag(p.Delta)+1); err != nil {
			return nil, err
		}
		if err := encoding.FibonacciEncode(w, uint64(p.Count)); err != nil {
			return nil, err
		}
	}
	b.Payload = w.Bytes()
	return b, nil
}

// Pairs decodes the payload back to Delta-Repeat pairs without flattening —
// the representation Section IV's fused aggregations consume directly.
func (b *Block) Pairs() ([]encoding.DeltaRun, error) {
	if b.NumRuns < 0 {
		return nil, ErrCorrupt
	}
	r := bitio.NewReader(b.Payload)
	// NumRuns comes from an untrusted header: cap the pre-allocation and
	// let append grow it as codewords actually arrive (each run costs at
	// least four payload bits, so a short buffer fails fast).
	capRuns := b.NumRuns
	if capRuns > 1<<16 {
		capRuns = 1 << 16
	}
	pairs := make([]encoding.DeltaRun, 0, capRuns)
	for i := 0; i < b.NumRuns; i++ {
		zz, err := encoding.FibonacciDecode(r)
		if err != nil {
			return nil, err
		}
		run, err := encoding.FibonacciDecode(r)
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, encoding.DeltaRun{Delta: encoding.UnZigZag(zz - 1), Count: int(run)})
	}
	return pairs, nil
}

// Decode recovers the original values.
func (b *Block) Decode() ([]int64, error) {
	if b.Count == 0 {
		return nil, nil
	}
	pairs, err := b.Pairs()
	if err != nil {
		return nil, err
	}
	// Validate run totals before flattening: corrupt codewords can claim
	// runs far past Count, and DeltaRLEDecode would materialize them all.
	total := 1
	for _, p := range pairs {
		if p.Count < 0 || total > b.Count-p.Count {
			return nil, ErrCorrupt
		}
		total += p.Count
	}
	if total != b.Count {
		return nil, ErrCorrupt
	}
	vals := encoding.DeltaRLEDecode(b.First, pairs)
	if len(vals) != b.Count {
		return nil, ErrCorrupt
	}
	return vals, nil
}

const blockMagic = 0xB1

// ErrCorrupt reports a malformed serialized block.
var ErrCorrupt = errors.New("rlbe: corrupt block")

// Marshal serializes the block.
func (b *Block) Marshal() []byte {
	out := make([]byte, 0, 21+len(b.Payload))
	out = append(out, blockMagic)
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], uint32(b.Count))
	out = append(out, tmp[:4]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(b.First))
	out = append(out, tmp[:]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(b.NumRuns))
	out = append(out, tmp[:4]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(b.Payload)))
	out = append(out, tmp[:4]...)
	return append(out, b.Payload...)
}

// Unmarshal parses a serialized block.
func Unmarshal(buf []byte) (*Block, error) {
	if len(buf) < 21 || buf[0] != blockMagic {
		return nil, ErrCorrupt
	}
	b := &Block{
		Count:   int(binary.BigEndian.Uint32(buf[1:])),
		First:   int64(binary.BigEndian.Uint64(buf[5:])),
		NumRuns: int(binary.BigEndian.Uint32(buf[13:])),
	}
	plen := int(binary.BigEndian.Uint32(buf[17:]))
	if len(buf) < 21+plen {
		return nil, ErrCorrupt
	}
	b.Payload = buf[21 : 21+plen]
	return b, nil
}

type codec struct{}

func (codec) Name() string { return "rlbe" }

func (codec) Semantics() []encoding.Semantics {
	return []encoding.Semantics{
		encoding.SemanticsDelta, encoding.SemanticsRepeat, encoding.SemanticsPacking,
	}
}

func (codec) Encode(vals []int64) ([]byte, error) {
	b, err := Encode(vals)
	if err != nil {
		return nil, err
	}
	return b.Marshal(), nil
}

func (codec) Decode(block []byte) ([]int64, error) {
	b, err := Unmarshal(block)
	if err != nil {
		return nil, err
	}
	return b.Decode()
}

func init() { encoding.Register(codec{}) }
