package rlbe

import (
	"reflect"
	"testing"
	"testing/quick"

	"etsqp/internal/encoding"
)

func TestRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		for i := range vals {
			vals[i] %= 1 << 40
		}
		b, err := Encode(vals)
		if err != nil {
			return false
		}
		got, err := b.Decode()
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRegularSeriesIsOneRun(t *testing.T) {
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(i) * 50
	}
	b, err := Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRuns != 1 {
		t.Fatalf("NumRuns = %d, want 1", b.NumRuns)
	}
	if len(b.Payload) > 8 {
		t.Fatalf("payload %d bytes for a single run, want tiny", len(b.Payload))
	}
	pairs, err := b.Pairs()
	if err != nil {
		t.Fatal(err)
	}
	if pairs[0] != (encoding.DeltaRun{Delta: 50, Count: 9999}) {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestPairsExposedForFusion(t *testing.T) {
	vals := []int64{0, 2, 4, 6, 5, 4, 4, 4}
	b, _ := Encode(vals)
	pairs, err := b.Pairs()
	if err != nil {
		t.Fatal(err)
	}
	want := []encoding.DeltaRun{{Delta: 2, Count: 3}, {Delta: -1, Count: 2}, {Delta: 0, Count: 2}}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("pairs = %v, want %v", pairs, want)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	vals := []int64{7, 7, 7, 9, 11, 13, -5}
	b, _ := Encode(vals)
	b2, err := Unmarshal(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got, err := b2.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatalf("got %v", got)
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	for i, c := range [][]byte{nil, {blockMagic, 1}, append([]byte{0x00}, make([]byte, 30)...)} {
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Count mismatch between header and payload is detected at decode.
	b, _ := Encode([]int64{1, 2, 3})
	b.Count = 99
	if _, err := b.Decode(); err == nil {
		t.Fatal("expected count mismatch error")
	}
}

func TestCodec(t *testing.T) {
	c, err := encoding.Lookup("rlbe")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Semantics()) != 3 {
		t.Fatal("rlbe combines Delta+Repeat+Packing")
	}
	vals := []int64{10, 10, 10, 20, 30, 40}
	raw, _ := c.Encode(vals)
	got, err := c.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatalf("got %v", got)
	}
}

func BenchmarkEncodeRegular(b *testing.B) {
	vals := make([]int64, 8192)
	for i := range vals {
		vals[i] = int64(i) * 50
	}
	b.SetBytes(int64(len(vals) * 8))
	for i := 0; i < b.N; i++ {
		if _, err := Encode(vals); err != nil {
			b.Fatal(err)
		}
	}
}
