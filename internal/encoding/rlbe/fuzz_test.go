package rlbe

import "testing"

// FuzzUnmarshal drives arbitrary bytes through RLBE block parsing,
// pair recovery and decoding: corruption must surface as errors, never
// panics or run-length blowups, and values that do decode must survive
// a fresh Encode→Decode round trip exactly.
func FuzzUnmarshal(f *testing.F) {
	if good, err := Encode([]int64{5, 10, 15, 20, 20, 20, 7}); err == nil {
		f.Add(good.Marshal())
	}
	if run, err := Encode(make([]int64, 64)); err == nil {
		f.Add(run.Marshal())
	}
	f.Add([]byte{blockMagic, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 1, 0, 0, 0, 1, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Unmarshal(data)
		if err != nil {
			return
		}
		if b.Count > 1<<20 || b.NumRuns > 1<<20 {
			return // decoding huge claimed counts is valid but slow
		}
		vals, err := b.Decode()
		if err != nil {
			return
		}
		if len(vals) != b.Count {
			t.Fatalf("decoded %d values for count %d", len(vals), b.Count)
		}
		if b.Count == 0 {
			return
		}
		again, err := Encode(vals)
		if err != nil {
			t.Fatalf("re-encoding decoded values: %v", err)
		}
		back, err := again.Decode()
		if err != nil {
			t.Fatalf("decoding re-encoded block: %v", err)
		}
		if len(back) != len(vals) {
			t.Fatalf("round trip %d values, want %d", len(back), len(vals))
		}
		for i := range vals {
			if back[i] != vals[i] {
				t.Fatalf("value %d: got %d want %d", i, back[i], vals[i])
			}
		}
	})
}
