package encoding

// ZigZag maps signed integers to unsigned so that small-magnitude values
// (positive or negative) become small codes: 0→0, -1→1, 1→2, -2→3, …
// Sprintz uses ZigZag before bit-packing so negative deltas do not force
// full-width codes.
//
//etsqp:hotpath
//etsqp:nobce
//etsqp:noescape
//etsqp:inline
func ZigZag(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}

// UnZigZag inverts ZigZag.
//
//etsqp:hotpath
//etsqp:nobce
//etsqp:noescape
//etsqp:inline
func UnZigZag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// ZigZagSlice encodes every element in place-compatible fashion.
func ZigZagSlice(vs []int64) []uint64 {
	out := make([]uint64, len(vs))
	for i, v := range vs {
		out[i] = ZigZag(v)
	}
	return out
}

// UnZigZagSlice decodes every element.
func UnZigZagSlice(us []uint64) []int64 {
	out := make([]int64, len(us))
	for i, u := range us {
		out[i] = UnZigZag(u)
	}
	return out
}
