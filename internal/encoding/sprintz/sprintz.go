// Package sprintz implements the Sprintz combined encoder for IoT integer
// series (Table I row "Sprintz"): first-order Delta, then ZigZag to make
// deltas non-negative, then constant-width bit-packing.
//
// Sprintz proper packs in small fixed-size groups with per-group headers so
// the width can track local variance; we keep that structure (groups of 64
// deltas, one width byte per group) because it is what gives Sprintz its
// compression/ratio behaviour in the encoder comparison benchmarks.
package sprintz

import (
	"encoding/binary"
	"errors"

	"etsqp/internal/bitio"
	"etsqp/internal/encoding"
)

// GroupSize is the number of deltas covered by one width header.
const GroupSize = 64

// Block is a parsed Sprintz block.
type Block struct {
	Count   int
	First   int64
	Widths  []uint8 // one packing width per group of GroupSize deltas
	Payload []byte  // big-endian packed ZigZag deltas, group by group
}

// Encode builds a Sprintz block.
func Encode(vals []int64) (*Block, error) {
	b := &Block{Count: len(vals)}
	if len(vals) == 0 {
		return b, nil
	}
	first, deltas := encoding.DeltaEncode(vals)
	b.First = first
	zz := encoding.ZigZagSlice(deltas)
	w := bitio.NewWriter(len(zz))
	for off := 0; off < len(zz); off += GroupSize {
		end := off + GroupSize
		if end > len(zz) {
			end = len(zz)
		}
		group := zz[off:end]
		width := encoding.BitWidth(group)
		b.Widths = append(b.Widths, uint8(width))
		encoding.PackInto(w, group, width)
	}
	b.Payload = w.Bytes()
	return b, nil
}

// Decode recovers the original values.
func (b *Block) Decode() ([]int64, error) {
	if b.Count == 0 {
		return nil, nil
	}
	n := b.Count - 1
	r := bitio.NewReader(b.Payload)
	zz := make([]uint64, 0, n)
	for g := 0; len(zz) < n; g++ {
		if g >= len(b.Widths) {
			return nil, ErrCorrupt
		}
		take := n - len(zz)
		if take > GroupSize {
			take = GroupSize
		}
		group, err := encoding.UnpackFrom(r, take, uint(b.Widths[g]))
		if err != nil {
			return nil, err
		}
		zz = append(zz, group...)
	}
	return encoding.DeltaDecode(b.First, encoding.UnZigZagSlice(zz)), nil
}

const blockMagic = 0x5A

// ErrCorrupt reports a malformed serialized block.
var ErrCorrupt = errors.New("sprintz: corrupt block")

// Marshal serializes the block.
func (b *Block) Marshal() []byte {
	out := make([]byte, 0, 17+len(b.Widths)+len(b.Payload))
	out = append(out, blockMagic)
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], uint32(b.Count))
	out = append(out, tmp[:4]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(b.First))
	out = append(out, tmp[:]...)
	binary.BigEndian.PutUint16(tmp[:2], uint16(len(b.Widths)))
	out = append(out, tmp[:2]...)
	out = append(out, b.Widths...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(b.Payload)))
	out = append(out, tmp[:4]...)
	return append(out, b.Payload...)
}

// Unmarshal parses a serialized block.
func Unmarshal(buf []byte) (*Block, error) {
	if len(buf) < 19 || buf[0] != blockMagic {
		return nil, ErrCorrupt
	}
	b := &Block{Count: int(binary.BigEndian.Uint32(buf[1:]))}
	b.First = int64(binary.BigEndian.Uint64(buf[5:]))
	nw := int(binary.BigEndian.Uint16(buf[13:]))
	if len(buf) < 19+nw {
		return nil, ErrCorrupt
	}
	b.Widths = buf[15 : 15+nw]
	plen := int(binary.BigEndian.Uint32(buf[15+nw:]))
	if len(buf) < 19+nw+plen {
		return nil, ErrCorrupt
	}
	b.Payload = buf[19+nw : 19+nw+plen]
	return b, nil
}

type codec struct{}

func (codec) Name() string { return "sprintz" }

func (codec) Semantics() []encoding.Semantics {
	return []encoding.Semantics{encoding.SemanticsDelta, encoding.SemanticsPacking}
}

func (codec) Encode(vals []int64) ([]byte, error) {
	b, err := Encode(vals)
	if err != nil {
		return nil, err
	}
	return b.Marshal(), nil
}

func (codec) Decode(block []byte) ([]int64, error) {
	b, err := Unmarshal(block)
	if err != nil {
		return nil, err
	}
	return b.Decode()
}

func init() { encoding.Register(codec{}) }
