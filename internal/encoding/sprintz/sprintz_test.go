package sprintz

import (
	"reflect"
	"testing"
	"testing/quick"

	"etsqp/internal/encoding"
)

func TestRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		for i := range vals {
			vals[i] %= 1 << 40
		}
		b, err := Encode(vals)
		if err != nil {
			return false
		}
		got, err := b.Decode()
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDeltasStaySmall(t *testing.T) {
	// Alternating ±1 deltas: ZigZag keeps the group width at 2 bits.
	vals := make([]int64, 200)
	for i := range vals {
		vals[i] = int64(i % 2)
	}
	b, err := Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range b.Widths {
		if w > 2 {
			t.Fatalf("group width %d, want <= 2 (zigzag of ±1)", w)
		}
	}
}

func TestPerGroupWidthAdapts(t *testing.T) {
	// First group small deltas, second group large: widths must differ.
	vals := make([]int64, 2*GroupSize+1)
	for i := 1; i <= GroupSize; i++ {
		vals[i] = vals[i-1] + 1
	}
	for i := GroupSize + 1; i < len(vals); i++ {
		vals[i] = vals[i-1] + 1_000_000
	}
	b, err := Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Widths) != 2 || b.Widths[0] >= b.Widths[1] {
		t.Fatalf("widths = %v, want adaptive groups", b.Widths)
	}
	got, err := b.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatal("round trip mismatch")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	vals := []int64{5, 9, 2, -100, 33, 34, 35}
	b, _ := Encode(vals)
	b2, err := Unmarshal(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got, err := b2.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatalf("got %v", got)
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	for i, c := range [][]byte{nil, {blockMagic}, append([]byte{0x00}, make([]byte, 30)...)} {
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestCodec(t *testing.T) {
	c, err := encoding.Lookup("sprintz")
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{1, -1, 2, -2, 1000}
	raw, err := c.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatalf("got %v", got)
	}
}

func BenchmarkEncode(b *testing.B) {
	vals := make([]int64, 8192)
	for i := range vals {
		vals[i] = int64(i * 3 % 977)
	}
	b.SetBytes(int64(len(vals) * 8))
	for i := 0; i < b.N; i++ {
		if _, err := Encode(vals); err != nil {
			b.Fatal(err)
		}
	}
}
