// Package gorilla implements the Gorilla combined encoder (Table I row
// "Gorilla"): delta-of-delta timestamps with flag-bit Repeat compression,
// and XOR value compression with leading/trailing-zero pattern packing.
//
// Timestamps: the delta-of-delta is written under a prefix flag —
//
//	'0'                 dod == 0 (the Repeat flag: one bit per repeat)
//	'10'  + 7 bits      dod in [-63, 64]
//	'110' + 9 bits      dod in [-255, 256]
//	'1110'+ 12 bits     dod in [-2047, 2048]
//	'1111'+ 64 bits     everything else
//
// Values: each 64-bit word is XORed with its predecessor; a zero XOR costs
// one bit, otherwise the meaningful (non-zero) window is written either
// inside the previous window ('10') or with explicit leading-zero count
// and length ('11').
package gorilla

import (
	"encoding/binary"
	"errors"

	"etsqp/internal/bitio"
	"etsqp/internal/encoding"
	"math/bits"
)

// ErrCorrupt reports a malformed block.
var ErrCorrupt = errors.New("gorilla: corrupt block")

// EncodeTimestamps writes the delta-of-delta stream for ts.
func EncodeTimestamps(w *bitio.Writer, ts []int64) {
	if len(ts) == 0 {
		return
	}
	w.WriteBits(uint64(ts[0]), 64)
	if len(ts) == 1 {
		return
	}
	firstDelta := ts[1] - ts[0]
	w.WriteBits(uint64(firstDelta), 64)
	prevDelta := firstDelta
	for i := 2; i < len(ts); i++ {
		delta := ts[i] - ts[i-1]
		dod := delta - prevDelta
		prevDelta = delta
		switch {
		case dod == 0:
			w.WriteBit(0)
		case dod >= -63 && dod <= 64:
			w.WriteBits(0b10, 2)
			w.WriteBits(uint64(dod+63), 7)
		case dod >= -255 && dod <= 256:
			w.WriteBits(0b110, 3)
			w.WriteBits(uint64(dod+255), 9)
		case dod >= -2047 && dod <= 2048:
			w.WriteBits(0b1110, 4)
			w.WriteBits(uint64(dod+2047), 12)
		default:
			w.WriteBits(0b1111, 4)
			w.WriteBits(uint64(dod), 64)
		}
	}
}

// DecodeTimestamps reads n timestamps written by EncodeTimestamps.
func DecodeTimestamps(r *bitio.Reader, n int) ([]int64, error) {
	if n == 0 {
		return nil, nil
	}
	out := make([]int64, 0, clampPrealloc(n))
	first, err := r.ReadBits(64)
	if err != nil {
		return nil, err
	}
	out = append(out, int64(first))
	if n == 1 {
		return out, nil
	}
	fd, err := r.ReadBits(64)
	if err != nil {
		return nil, err
	}
	delta := int64(fd)
	out = append(out, out[0]+delta)
	for len(out) < n {
		var dod int64
		b0, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if b0 == 1 {
			b1, err := r.ReadBit()
			if err != nil {
				return nil, err
			}
			if b1 == 0 { // '10'
				v, err := r.ReadBits(7)
				if err != nil {
					return nil, err
				}
				dod = int64(v) - 63
			} else {
				b2, err := r.ReadBit()
				if err != nil {
					return nil, err
				}
				if b2 == 0 { // '110'
					v, err := r.ReadBits(9)
					if err != nil {
						return nil, err
					}
					dod = int64(v) - 255
				} else {
					b3, err := r.ReadBit()
					if err != nil {
						return nil, err
					}
					if b3 == 0 { // '1110'
						v, err := r.ReadBits(12)
						if err != nil {
							return nil, err
						}
						dod = int64(v) - 2047
					} else { // '1111'
						v, err := r.ReadBits(64)
						if err != nil {
							return nil, err
						}
						dod = int64(v)
					}
				}
			}
		}
		delta += dod
		out = append(out, out[len(out)-1]+delta)
	}
	return out, nil
}

// EncodeValues writes the XOR-compressed stream for 64-bit words.
func EncodeValues(w *bitio.Writer, words []uint64) {
	if len(words) == 0 {
		return
	}
	w.WriteBits(words[0], 64)
	prev := words[0]
	prevLead, prevTrail := -1, -1
	for _, cur := range words[1:] {
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.WriteBit(0)
			continue
		}
		w.WriteBit(1)
		lead := bits.LeadingZeros64(xor)
		if lead > 31 {
			lead = 31
		}
		trail := bits.TrailingZeros64(xor)
		if prevLead >= 0 && lead >= prevLead && trail >= prevTrail {
			// Fits the previous window: '0' control bit, reuse window.
			w.WriteBit(0)
			m := 64 - prevLead - prevTrail
			w.WriteBits(xor>>uint(prevTrail), uint(m))
		} else {
			// New window: '1' control bit + 5b lead + 6b (len-1) + bits.
			w.WriteBit(1)
			m := 64 - lead - trail
			w.WriteBits(uint64(lead), 5)
			w.WriteBits(uint64(m-1), 6)
			w.WriteBits(xor>>uint(trail), uint(m))
			prevLead, prevTrail = lead, trail
		}
	}
}

// clampPrealloc bounds decode-side pre-allocation: n comes from an
// untrusted block header, so a corrupt count must not reserve gigabytes
// before the bit reader has proven there is any data behind it. Growth
// past the clamp is paid only when the payload actually delivers values.
func clampPrealloc(n int) int {
	const maxPrealloc = 1 << 16
	if n > maxPrealloc {
		return maxPrealloc
	}
	return n
}

// DecodeValues reads n 64-bit words written by EncodeValues.
func DecodeValues(r *bitio.Reader, n int) ([]uint64, error) {
	if n == 0 {
		return nil, nil
	}
	out := make([]uint64, 0, clampPrealloc(n))
	first, err := r.ReadBits(64)
	if err != nil {
		return nil, err
	}
	out = append(out, first)
	prev := first
	prevLead, prevTrail := -1, -1
	for len(out) < n {
		b0, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if b0 == 0 {
			out = append(out, prev)
			continue
		}
		b1, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		var xor uint64
		if b1 == 0 {
			if prevLead < 0 {
				return nil, ErrCorrupt
			}
			m := 64 - prevLead - prevTrail
			v, err := r.ReadBits(uint(m))
			if err != nil {
				return nil, err
			}
			xor = v << uint(prevTrail)
		} else {
			lead64, err := r.ReadBits(5)
			if err != nil {
				return nil, err
			}
			mlen, err := r.ReadBits(6)
			if err != nil {
				return nil, err
			}
			m := int(mlen) + 1
			v, err := r.ReadBits(uint(m))
			if err != nil {
				return nil, err
			}
			lead := int(lead64)
			trail := 64 - lead - m
			if trail < 0 {
				return nil, ErrCorrupt
			}
			xor = v << uint(trail)
			prevLead, prevTrail = lead, trail
		}
		cur := prev ^ xor
		out = append(out, cur)
		prev = cur
	}
	return out, nil
}

const blockMagic = 0x60

type codec struct{ timestamps bool }

func (c codec) Name() string {
	if c.timestamps {
		return "gorilla-time"
	}
	return "gorilla"
}

func (c codec) Semantics() []encoding.Semantics {
	return []encoding.Semantics{
		encoding.SemanticsDelta, encoding.SemanticsRepeat, encoding.SemanticsPacking,
	}
}

func (c codec) Encode(vals []int64) ([]byte, error) {
	w := bitio.NewWriter(len(vals) * 2)
	if c.timestamps {
		EncodeTimestamps(w, vals)
	} else {
		words := make([]uint64, len(vals))
		for i, v := range vals {
			words[i] = uint64(v)
		}
		EncodeValues(w, words)
	}
	payload := w.Bytes()
	out := make([]byte, 0, 5+len(payload))
	out = append(out, blockMagic)
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], uint32(len(vals)))
	out = append(out, tmp[:]...)
	return append(out, payload...), nil
}

func (c codec) Decode(block []byte) ([]int64, error) {
	if len(block) < 5 || block[0] != blockMagic {
		return nil, ErrCorrupt
	}
	n := int(binary.BigEndian.Uint32(block[1:]))
	r := bitio.NewReader(block[5:])
	if c.timestamps {
		return DecodeTimestamps(r, n)
	}
	words, err := DecodeValues(r, n)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(words))
	for i, w := range words {
		out[i] = int64(w)
	}
	return out, nil
}

func init() {
	encoding.Register(codec{timestamps: false})
	encoding.Register(codec{timestamps: true})
}
