package gorilla

import (
	"encoding/binary"
	"testing"
)

// FuzzRoundTrip drives both Gorilla codec variants: fuzzer bytes become
// a value series that must survive Encode→Decode exactly, and the raw
// bytes are also fed straight to Decode, where corruption must surface
// as an error — never a panic or an unbounded allocation.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{0xff, 0x00, 0x80, 0x01, 0x7f, 0xfe})
	f.Add([]byte{blockMagic, 0, 0, 0, 9, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := make([]int64, 0, len(data)/8)
		for i := 0; i+8 <= len(data); i += 8 {
			vals = append(vals, int64(binary.BigEndian.Uint64(data[i:])))
		}
		for _, c := range []codec{{timestamps: false}, {timestamps: true}} {
			blk, err := c.Encode(vals)
			if err != nil {
				t.Fatalf("%s: encode: %v", c.Name(), err)
			}
			got, err := c.Decode(blk)
			if err != nil {
				t.Fatalf("%s: decode of own encoding: %v", c.Name(), err)
			}
			if len(got) != len(vals) {
				t.Fatalf("%s: round trip %d values, want %d", c.Name(), len(got), len(vals))
			}
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("%s: value %d: got %d want %d", c.Name(), i, got[i], vals[i])
				}
			}
		}
		// Adversarial: arbitrary bytes as a block. Skip absurd claimed
		// counts — decoding them is valid but slow, like the ts2diff
		// fuzz target does.
		if len(data) >= 5 && int(binary.BigEndian.Uint32(data[1:])) > 1<<20 {
			return
		}
		for _, c := range []codec{{timestamps: false}, {timestamps: true}} {
			_, _ = c.Decode(data)
		}
	})
}
