package gorilla

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"etsqp/internal/bitio"
	"etsqp/internal/encoding"
)

func TestTimestampRoundTrip(t *testing.T) {
	f := func(deltas []int16, start int64) bool {
		ts := make([]int64, len(deltas)+1)
		ts[0] = start % (1 << 48)
		for i, d := range deltas {
			ts[i+1] = ts[i] + int64(d)
		}
		w := bitio.NewWriter(len(ts))
		EncodeTimestamps(w, ts)
		got, err := DecodeTimestamps(bitio.NewReader(w.Bytes()), len(ts))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRegularTimestampsCostOneBitEach(t *testing.T) {
	ts := make([]int64, 1000)
	for i := range ts {
		ts[i] = 1_700_000_000_000 + int64(i)*1000
	}
	w := bitio.NewWriter(len(ts))
	EncodeTimestamps(w, ts)
	// 64 + 64 header bits + 998 single '0' flag bits.
	if got, want := w.BitLen(), 128+998; got != want {
		t.Fatalf("bits = %d, want %d", got, want)
	}
}

func TestTimestampLargeDod(t *testing.T) {
	ts := []int64{0, 10, 20, 1 << 40, 1<<40 + 10}
	w := bitio.NewWriter(16)
	EncodeTimestamps(w, ts)
	got, err := DecodeTimestamps(bitio.NewReader(w.Bytes()), len(ts))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ts) {
		t.Fatalf("got %v", got)
	}
}

func TestValueRoundTrip(t *testing.T) {
	f := func(words []uint64) bool {
		w := bitio.NewWriter(len(words) * 2)
		EncodeValues(w, words)
		got, err := DecodeValues(bitio.NewReader(w.Bytes()), len(words))
		if err != nil {
			return false
		}
		if len(words) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, words)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatValues(t *testing.T) {
	vals := []float64{21.5, 21.5, 21.6, 21.7, 21.7, 22.0, -3.25, math.Pi}
	words := make([]uint64, len(vals))
	for i, v := range vals {
		words[i] = math.Float64bits(v)
	}
	w := bitio.NewWriter(64)
	EncodeValues(w, words)
	got, err := DecodeValues(bitio.NewReader(w.Bytes()), len(words))
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if math.Float64frombits(g) != vals[i] {
			t.Fatalf("value %d: got %v want %v", i, math.Float64frombits(g), vals[i])
		}
	}
}

func TestRepeatedValuesCostOneBit(t *testing.T) {
	words := make([]uint64, 100)
	for i := range words {
		words[i] = 0x4035800000000000 // constant
	}
	w := bitio.NewWriter(32)
	EncodeValues(w, words)
	if got, want := w.BitLen(), 64+99; got != want {
		t.Fatalf("bits = %d, want %d", got, want)
	}
}

func TestCodecs(t *testing.T) {
	for _, name := range []string{"gorilla", "gorilla-time"} {
		c, err := encoding.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		vals := []int64{100, 200, 300, 400, 380, 380}
		raw, err := c.Encode(vals)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, vals) {
			t.Fatalf("%s: got %v", name, got)
		}
		if _, err := c.Decode([]byte{1, 2}); err == nil {
			t.Fatalf("%s: expected corrupt error", name)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	w := bitio.NewWriter(1)
	EncodeTimestamps(w, nil)
	EncodeValues(w, nil)
	if w.BitLen() != 0 {
		t.Fatal("empty input must write nothing")
	}
	got, err := DecodeTimestamps(bitio.NewReader(nil), 0)
	if err != nil || got != nil {
		t.Fatalf("got %v/%v", got, err)
	}
}

func BenchmarkEncodeTimestamps(b *testing.B) {
	ts := make([]int64, 8192)
	for i := range ts {
		ts[i] = int64(i) * 1000
	}
	b.SetBytes(int64(len(ts) * 8))
	for i := 0; i < b.N; i++ {
		w := bitio.NewWriter(len(ts))
		EncodeTimestamps(w, ts)
	}
}
