package ts2diff

import (
	"reflect"
	"testing"
	"testing/quick"

	"etsqp/internal/encoding"
)

func TestPaperExample(t *testing.T) {
	// Figure 1(b): velocity with base-reduced deltas. Construct a series
	// whose deltas are close so the packing width is small.
	vals := []int64{12, 16, 22, 27, 33, 38, 44}
	b, err := Encode(vals, Order1)
	if err != nil {
		t.Fatal(err)
	}
	if b.First != 12 {
		t.Fatalf("First = %d", b.First)
	}
	// Deltas: 4 6 5 6 5 6 → base 4, max 6, width 2.
	if b.MinBase != 4 || b.Width != 2 {
		t.Fatalf("MinBase=%d Width=%d, want 4, 2", b.MinBase, b.Width)
	}
	got, err := b.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatalf("decode = %v", got)
	}
}

func TestOrder1RoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		for i := range vals {
			vals[i] %= 1 << 40
		}
		b, err := Encode(vals, Order1)
		if err != nil {
			return false
		}
		got, err := b.Decode()
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOrder2RoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		for i := range vals {
			vals[i] %= 1 << 38
		}
		b, err := Encode(vals, Order2)
		if err != nil {
			return false
		}
		got, err := b.Decode()
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRegularTimestampsCompressToZeroWidth(t *testing.T) {
	ts := make([]int64, 1000)
	for i := range ts {
		ts[i] = 1_700_000_000_000 + int64(i)*1000
	}
	b, err := Encode(ts, Order2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Width != 0 {
		t.Fatalf("regular timestamps must pack at width 0, got %d", b.Width)
	}
	if len(b.Packed) != 0 {
		t.Fatalf("payload should be empty, got %d bytes", len(b.Packed))
	}
	got, err := b.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ts) {
		t.Fatal("round trip mismatch")
	}
}

func TestSmallInputs(t *testing.T) {
	for _, vals := range [][]int64{{}, {42}, {42, 50}, {42, 50, 61}} {
		for _, order := range []Order{Order1, Order2} {
			b, err := Encode(vals, order)
			if err != nil {
				t.Fatal(err)
			}
			got, err := b.Decode()
			if err != nil {
				t.Fatal(err)
			}
			if len(vals) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, vals) {
				t.Fatalf("order %d vals %v: got %v", order, vals, got)
			}
		}
	}
}

func TestInvalidOrder(t *testing.T) {
	if _, err := Encode([]int64{1}, Order(3)); err == nil {
		t.Fatal("expected error for invalid order")
	}
}

func TestStatistics(t *testing.T) {
	b, err := Encode([]int64{5, -3, 12, 0}, Order1)
	if err != nil {
		t.Fatal(err)
	}
	if b.MinValue != -3 || b.MaxValue != 12 {
		t.Fatalf("stats = [%d,%d], want [-3,12]", b.MinValue, b.MaxValue)
	}
}

func TestDeltaBounds(t *testing.T) {
	b, err := Encode([]int64{0, 4, 10, 15, 21}, Order1)
	if err != nil {
		t.Fatal(err)
	}
	dm, dM := b.DeltaBounds()
	// Deltas 4 6 5 6: base 4, width 2 → bounds [4, 7].
	if dm != 4 || dM != 7 {
		t.Fatalf("bounds = [%d,%d], want [4,7]", dm, dM)
	}
	// Every actual delta must fall in the bounds (the pruning invariant).
	vals, _ := b.Decode()
	for i := 1; i < len(vals); i++ {
		d := vals[i] - vals[i-1]
		if d < dm || d > dM {
			t.Fatalf("delta %d outside bounds [%d,%d]", d, dm, dM)
		}
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	f := func(vals []int64, order1 bool) bool {
		for i := range vals {
			vals[i] %= 1 << 38
		}
		order := Order1
		if !order1 {
			order = Order2
		}
		b, err := Encode(vals, order)
		if err != nil {
			return false
		}
		b2, err := Unmarshal(b.Marshal())
		if err != nil {
			return false
		}
		got, err := b2.Decode()
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		append([]byte{0xFF}, make([]byte, 60)...),             // bad magic
		append([]byte{blockMagic, 9, 3}, make([]byte, 60)...), // bad order
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("case %d: expected corruption error", i)
		}
	}
	// Truncated payload: claim more packed bytes than present.
	b, _ := Encode([]int64{1, 5, 9, 20, 100}, Order1)
	raw := b.Marshal()
	if _, err := Unmarshal(raw[:len(raw)-1]); err == nil {
		t.Fatal("expected corruption error on truncated payload")
	}
}

func TestCodecRegistry(t *testing.T) {
	c, err := encoding.Lookup("ts2diff")
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{10, 20, 35, 50}
	blk, err := c.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(blk)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatalf("got %v", got)
	}
	if len(c.Semantics()) != 2 {
		t.Fatal("ts2diff must declare Delta+Packing semantics")
	}
	if _, err := encoding.Lookup("ts2diff2"); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	vals := make([]int64, 8192)
	for i := range vals {
		vals[i] = int64(i)*7 + int64(i%13)
	}
	b.SetBytes(int64(len(vals) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(vals, Order1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeScalar(b *testing.B) {
	vals := make([]int64, 8192)
	for i := range vals {
		vals[i] = int64(i)*7 + int64(i%13)
	}
	blk, _ := Encode(vals, Order1)
	b.SetBytes(int64(len(vals) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blk.Decode(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStreamEncoderMatchesBatch(t *testing.T) {
	vals := make([]int64, 10_500)
	for i := range vals {
		vals[i] = int64(i)*13 + int64(i%31)
	}
	s, err := NewStreamEncoder(Order1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if err := s.Write(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	blocks := s.Blocks()
	if len(blocks) != 3 { // 4096 + 4096 + 2308
		t.Fatalf("blocks = %d", len(blocks))
	}
	got, err := DecodeAll(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatal("streaming round trip mismatch")
	}
	if s.Buffered() != 0 {
		t.Fatalf("buffered = %d after flush", s.Buffered())
	}
}

func TestStreamEncoderShortSeries(t *testing.T) {
	// Flexibility: a short series (buffer never fills) still flushes.
	s, _ := NewStreamEncoder(Order2, 1024)
	for i := int64(0); i < 10; i++ {
		if err := s.Write(i * 100); err != nil {
			t.Fatal(err)
		}
	}
	if s.Buffered() != 10 {
		t.Fatalf("buffered = %d", s.Buffered())
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAll(s.Blocks())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[9] != 900 {
		t.Fatalf("got %v", got)
	}
	// Double flush is a no-op.
	if err := s.Flush(); err != nil || len(s.Blocks()) != 1 {
		t.Fatal("empty flush must not add blocks")
	}
}

func TestStreamEncoderValidation(t *testing.T) {
	if _, err := NewStreamEncoder(Order(9), 100); err == nil {
		t.Fatal("bad order must fail")
	}
	if _, err := NewStreamEncoder(Order1, 1); err == nil {
		t.Fatal("tiny block size must fail")
	}
}
