// Package ts2diff implements the TS2DIFF combined encoder (Figure 1(b) of
// the paper; the TS_2DIFF format of Apache IoTDB): Delta (order 1 for
// values, order 2 for timestamps) followed by minBase subtraction and
// constant-width bit-packing in big-endian order.
//
// A block holds a header — the first value (and the first delta for order
// 2), the minimum delta minBase, the packing width, the count, and min/max
// value statistics for pruning — followed by (count-1) packed deltas of
// width bits each, where packed[i] = delta[i] - minBase >= 0.
//
// The header statistics are exactly what Section V's pruning rules need:
// the bounds D_m >= minBase and D_M <= minBase + 2^width - 1 follow from
// the stored (minBase, width) pair.
package ts2diff

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"etsqp/internal/encoding"
)

// Order selects first- or second-order deltas.
type Order uint8

// Supported delta orders.
const (
	Order1 Order = 1 // values (±)
	Order2 Order = 2 // timestamps (±²)
)

// Block is a parsed TS2DIFF block. The pipeline engine reads the header
// fields directly (packing width, minBase) to build its unpack layout and
// pruning bounds without touching the payload.
type Block struct {
	Order Order
	// Count is the number of original values. Encode rejects longer
	// inputs and Unmarshal parses the count from a uint32, so the bound
	// is a format invariant, not an aspiration; rangeflow seeds kernel
	// intervals from it.
	//
	//etsqp:bounds [0, 1<<32)
	Count      int
	First      int64 // X0
	FirstDelta int64 // D1, order 2 only
	MinBase    int64 // minimum delta (base in Figure 1(b))
	// Width is the packing width omega; Unmarshal rejects widths past 64.
	//
	//etsqp:bounds [0, 64]
	Width    uint
	MinValue int64 // statistics for pruning
	MaxValue int64
	Packed   []byte // big-endian packed (delta - MinBase) values
}

// NumPacked returns the number of packed deltas in the payload.
//
//etsqp:bounds return [0, 1<<32)
//etsqp:rangecheck
func (b *Block) NumPacked() int {
	switch {
	case b.Count <= 1:
		return 0
	case b.Order == Order2:
		if b.Count == 2 {
			return 0
		}
		return b.Count - 2
	default:
		return b.Count - 1
	}
}

// Encode builds a TS2DIFF block from vals using the given delta order.
func Encode(vals []int64, order Order) (*Block, error) {
	if order != Order1 && order != Order2 {
		return nil, fmt.Errorf("ts2diff: invalid order %d", order)
	}
	if len(vals) > math.MaxUint32 {
		// Marshal stores the count as a uint32; a longer block would
		// round-trip with a silently truncated Count.
		return nil, fmt.Errorf("ts2diff: %d values exceed the 2^32-1 block limit", len(vals))
	}
	b := &Block{Order: order, Count: len(vals)}
	if len(vals) == 0 {
		return b, nil
	}
	b.MinValue, b.MaxValue = vals[0], vals[0]
	for _, v := range vals {
		if v < b.MinValue {
			b.MinValue = v
		}
		if v > b.MaxValue {
			b.MaxValue = v
		}
	}
	var deltas []int64
	switch order {
	case Order1:
		b.First, deltas = encoding.DeltaEncode(vals)
	case Order2:
		b.First, b.FirstDelta, deltas = encoding.Delta2Encode(vals)
	}
	if len(deltas) == 0 {
		return b, nil
	}
	base, width := encoding.BitWidthSigned(deltas)
	b.MinBase, b.Width = base, width
	packed := make([]uint64, len(deltas))
	for i, d := range deltas {
		packed[i] = uint64(d - base)
	}
	b.Packed = encoding.Pack(packed, width)
	return b, nil
}

// Decode recovers the original values (the scalar reference decoder; the
// vectorized path lives in internal/pipeline).
func (b *Block) Decode() ([]int64, error) {
	if b.Count == 0 {
		return nil, nil
	}
	n := b.NumPacked()
	packed, err := encoding.Unpack(b.Packed, n, b.Width)
	if err != nil {
		return nil, fmt.Errorf("ts2diff: payload: %w", err)
	}
	deltas := make([]int64, n)
	for i, p := range packed {
		deltas[i] = int64(p) + b.MinBase
	}
	switch b.Order {
	case Order2:
		if b.Count == 1 {
			return []int64{b.First}, nil
		}
		return encoding.Delta2Decode(b.First, b.FirstDelta, deltas), nil
	default:
		return encoding.DeltaDecode(b.First, deltas), nil
	}
}

// DeltaBounds returns the pruning bounds of Proposition 4/5:
// every delta d satisfies D_m <= d <= D_M with D_m = minBase and
// D_M = minBase + 2^width - 1.
func (b *Block) DeltaBounds() (dm, dM int64) {
	dm = b.MinBase
	if b.Width >= 63 {
		return dm, 1<<62 - 1 + dm // clamp; widths that large do not occur
	}
	return dm, b.MinBase + (1<<b.Width - 1)
}

const blockMagic = 0x7D

// Marshal serializes the block (header big-endian, then payload),
// the on-disk format storage pages embed.
func (b *Block) Marshal() []byte {
	out := make([]byte, 0, 44+len(b.Packed))
	out = append(out, blockMagic, byte(b.Order), byte(b.Width))
	var tmp [8]byte
	put := func(v int64) {
		binary.BigEndian.PutUint64(tmp[:], uint64(v))
		out = append(out, tmp[:]...)
	}
	binary.BigEndian.PutUint32(tmp[:4], uint32(b.Count))
	out = append(out, tmp[:4]...)
	put(b.First)
	put(b.FirstDelta)
	put(b.MinBase)
	put(b.MinValue)
	put(b.MaxValue)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(b.Packed)))
	out = append(out, tmp[:4]...)
	return append(out, b.Packed...)
}

// ErrCorrupt reports a malformed serialized block.
var ErrCorrupt = errors.New("ts2diff: corrupt block")

// Unmarshal parses a serialized block.
func Unmarshal(buf []byte) (*Block, error) {
	if len(buf) < 51 || buf[0] != blockMagic {
		return nil, ErrCorrupt
	}
	b := &Block{Order: Order(buf[1]), Width: uint(buf[2])}
	if b.Order != Order1 && b.Order != Order2 || b.Width > 64 {
		return nil, ErrCorrupt
	}
	b.Count = int(binary.BigEndian.Uint32(buf[3:]))
	get := func(off int) int64 { return int64(binary.BigEndian.Uint64(buf[off:])) }
	b.First = get(7)
	b.FirstDelta = get(15)
	b.MinBase = get(23)
	b.MinValue = get(31)
	b.MaxValue = get(39)
	plen := int(binary.BigEndian.Uint32(buf[47:]))
	if len(buf) < 51+plen {
		return nil, ErrCorrupt
	}
	b.Packed = buf[51 : 51+plen]
	if need := (b.NumPacked()*int(b.Width) + 7) / 8; plen < need {
		return nil, ErrCorrupt
	}
	return b, nil
}

// codec adapts Block to the encoding.Codec registry (order-1 deltas).
type codec struct{ order Order }

func (c codec) Name() string {
	if c.order == Order2 {
		return "ts2diff2"
	}
	return "ts2diff"
}

func (c codec) Semantics() []encoding.Semantics {
	return []encoding.Semantics{encoding.SemanticsDelta, encoding.SemanticsPacking}
}

func (c codec) Encode(vals []int64) ([]byte, error) {
	b, err := Encode(vals, c.order)
	if err != nil {
		return nil, err
	}
	return b.Marshal(), nil
}

func (c codec) Decode(block []byte) ([]int64, error) {
	b, err := Unmarshal(block)
	if err != nil {
		return nil, err
	}
	return b.Decode()
}

func init() {
	encoding.Register(codec{order: Order1})
	encoding.Register(codec{order: Order2})
}
