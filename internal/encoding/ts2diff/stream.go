package ts2diff

import "fmt"

// StreamEncoder ingests data points one at a time — the *flexible*,
// incremental operation Figure 1(b) requires of IoT encoders: the
// receiving buffer keeps only the latest record plus pending deltas, and
// a block is flushed whenever the buffer fills (or on demand), whatever
// its size. This contrasts with FLMM1024's fixed 1024-point blocks,
// which force servers to buffer 1024 points per series.
type StreamEncoder struct {
	order     Order
	blockSize int

	buf     []int64 // pending raw values (bounded by blockSize)
	flushed []*Block
}

// NewStreamEncoder returns a streaming encoder flushing blocks of at
// most blockSize points.
func NewStreamEncoder(order Order, blockSize int) (*StreamEncoder, error) {
	if order != Order1 && order != Order2 {
		return nil, fmt.Errorf("ts2diff: invalid order %d", order)
	}
	if blockSize < 2 {
		return nil, fmt.Errorf("ts2diff: block size %d too small", blockSize)
	}
	return &StreamEncoder{order: order, blockSize: blockSize}, nil
}

// Write ingests one data point, flushing a block when the buffer fills.
func (s *StreamEncoder) Write(v int64) error {
	s.buf = append(s.buf, v)
	if len(s.buf) >= s.blockSize {
		return s.flush()
	}
	return nil
}

// Flush encodes any buffered points into a final (possibly short) block.
func (s *StreamEncoder) Flush() error {
	if len(s.buf) == 0 {
		return nil
	}
	return s.flush()
}

func (s *StreamEncoder) flush() error {
	b, err := Encode(s.buf, s.order)
	if err != nil {
		return err
	}
	s.flushed = append(s.flushed, b)
	s.buf = s.buf[:0]
	return nil
}

// Blocks returns the flushed blocks so far (Flush first to include the
// partial tail).
func (s *StreamEncoder) Blocks() []*Block { return s.flushed }

// Buffered reports how many points await the next flush — the receiving
// buffer pressure metric of Section I.
func (s *StreamEncoder) Buffered() int { return len(s.buf) }

// DecodeAll decodes and concatenates a block sequence.
func DecodeAll(blocks []*Block) ([]int64, error) {
	var out []int64
	for _, b := range blocks {
		vals, err := b.Decode()
		if err != nil {
			return nil, err
		}
		out = append(out, vals...)
	}
	return out, nil
}
