package ts2diff

import "testing"

// FuzzUnmarshal drives arbitrary bytes through block parsing and
// decoding: structural corruption must surface as errors, never panics
// or out-of-range reads.
func FuzzUnmarshal(f *testing.F) {
	good, _ := Encode([]int64{1, 5, 9, 20, 100, 99, 98}, Order1)
	f.Add(good.Marshal())
	good2, _ := Encode([]int64{1000, 2000, 3000}, Order2)
	f.Add(good2.Marshal())
	f.Add([]byte{blockMagic, 1, 10, 0, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Unmarshal(data)
		if err != nil {
			return
		}
		if b.Count > 1<<20 {
			return // decoding huge claimed counts is valid but slow
		}
		vals, err := b.Decode()
		if err != nil {
			return
		}
		if len(vals) != b.Count {
			t.Fatalf("decoded %d values for count %d", len(vals), b.Count)
		}
	})
}
