// Package elf implements the Elf combined encoder (Table I row "Elf"):
// erasure-based lossless floating-point compression. Elf observes that a
// double whose shortest decimal representation has α significant digits
// carries mantissa bits below that precision which can be *erased*
// (zeroed) and later restored exactly by rounding the erased double back
// to α significant decimal digits. Erasure lengthens trailing-zero runs
// dramatically, which the XOR + pattern Packing stage then exploits.
//
// Per value the stream holds a one-bit flag: '1' means α follows (6
// bits) and the XOR-compressed word is the erased double; '0' means the
// value did not benefit from erasure and is XOR-compressed as-is. The
// XOR stage reuses the Gorilla window coding (leading/trailing zero
// patterns), operating on the erased stream.
package elf

import (
	"encoding/binary"
	"errors"
	"math"
	"strconv"

	"etsqp/internal/bitio"
	"etsqp/internal/encoding"
	"etsqp/internal/encoding/gorilla"
)

// ErrCorrupt reports a malformed block.
var ErrCorrupt = errors.New("elf: corrupt block")

// maxAlpha bounds the significant-digit count of a float64 (17 digits
// always suffice for exact round trip).
const maxAlpha = 17

// sigDigits returns the number of significant decimal digits in the
// shortest representation of v.
func sigDigits(v float64) int {
	s := strconv.FormatFloat(v, 'e', -1, 64) // d.dddde±xx
	digits := 0
	for _, c := range s {
		if c >= '0' && c <= '9' {
			digits++
		}
		if c == 'e' {
			break
		}
	}
	// Exponent digits were cut by the break; count mantissa digits only.
	return digits
}

// roundAlpha rounds v to α significant decimal digits — the Elf restore
// operation.
func roundAlpha(v float64, alpha int) float64 {
	s := strconv.FormatFloat(v, 'e', alpha-1, 64)
	r, _ := strconv.ParseFloat(s, 64)
	return r
}

// erase zeroes as many trailing mantissa bits of v as the α-digit
// restore can undo, returning the erased value and whether erasing
// helped (at least minGain bits were cleared).
const minGain = 8 // flag+alpha cost 7 bits; demand a little more

func erase(v float64, alpha int) (float64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
		return v, false
	}
	bits := math.Float64bits(v)
	// Binary search the largest k with restore(erased(k)) == v.
	lo, hi := 0, 52
	for lo < hi {
		mid := (lo + hi + 1) / 2
		cand := bits &^ (1<<uint(mid) - 1)
		if roundAlpha(math.Float64frombits(cand), alpha) == v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if lo < minGain {
		return v, false
	}
	return math.Float64frombits(bits &^ (1<<uint(lo) - 1)), true
}

// EncodeFloats writes the Elf stream for vals.
func EncodeFloats(w *bitio.Writer, vals []float64) {
	erased := make([]uint64, len(vals))
	flags := make([]bool, len(vals))
	alphas := make([]int, len(vals))
	for i, v := range vals {
		alpha := sigDigits(v)
		if alpha > maxAlpha {
			alpha = maxAlpha
		}
		if ev, ok := erase(v, alpha); ok {
			erased[i] = math.Float64bits(ev)
			flags[i] = true
			alphas[i] = alpha
		} else {
			erased[i] = math.Float64bits(v)
		}
	}
	// Header bits per value, then the XOR-compressed erased stream.
	for i := range vals {
		if flags[i] {
			w.WriteBit(1)
			w.WriteBits(uint64(alphas[i]), 6)
		} else {
			w.WriteBit(0)
		}
	}
	gorilla.EncodeValues(w, erased)
}

// DecodeFloats reads n values written by EncodeFloats.
func DecodeFloats(r *bitio.Reader, n int) ([]float64, error) {
	flags := make([]bool, n)
	alphas := make([]int, n)
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if b == 1 {
			a, err := r.ReadBits(6)
			if err != nil {
				return nil, err
			}
			if a == 0 || a > maxAlpha {
				return nil, ErrCorrupt
			}
			flags[i] = true
			alphas[i] = int(a)
		}
	}
	words, err := gorilla.DecodeValues(r, n)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i, wbits := range words {
		v := math.Float64frombits(wbits)
		if flags[i] {
			v = roundAlpha(v, alphas[i])
		}
		out[i] = v
	}
	return out, nil
}

const blockMagic = 0xE1

type codec struct{}

func (codec) Name() string { return "elf" }

func (codec) Semantics() []encoding.Semantics {
	return []encoding.Semantics{encoding.SemanticsDelta, encoding.SemanticsPacking}
}

// Encode treats the int64 column as float64 bit patterns, matching how
// float series are stored in the integer page pipeline.
func (codec) Encode(vals []int64) ([]byte, error) {
	fs := make([]float64, len(vals))
	for i, v := range vals {
		fs[i] = math.Float64frombits(uint64(v))
	}
	w := bitio.NewWriter(len(vals) * 4)
	EncodeFloats(w, fs)
	payload := w.Bytes()
	out := make([]byte, 0, 5+len(payload))
	out = append(out, blockMagic)
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], uint32(len(vals)))
	out = append(out, tmp[:]...)
	return append(out, payload...), nil
}

func (codec) Decode(block []byte) ([]int64, error) {
	if len(block) < 5 || block[0] != blockMagic {
		return nil, ErrCorrupt
	}
	n := int(binary.BigEndian.Uint32(block[1:]))
	fs, err := DecodeFloats(bitio.NewReader(block[5:]), n)
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	for i, f := range fs {
		out[i] = int64(math.Float64bits(f))
	}
	return out, nil
}

func init() { encoding.Register(codec{}) }
