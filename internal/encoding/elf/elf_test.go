package elf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"etsqp/internal/bitio"
	"etsqp/internal/encoding"
	"etsqp/internal/encoding/gorilla"
)

func TestRoundTripExact(t *testing.T) {
	vals := []float64{
		0, 1, -1, 3.14, 21.5, 21.7, 0.001, 123456.789,
		math.MaxFloat64, math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1), 1e-300, -7.25,
	}
	w := bitio.NewWriter(64)
	EncodeFloats(w, vals)
	got, err := DecodeFloats(bitio.NewReader(w.Bytes()), len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: got %v want %v", i, got[i], vals[i])
		}
	}
}

func TestRoundTripNaN(t *testing.T) {
	vals := []float64{1.5, math.NaN(), 2.5}
	w := bitio.NewWriter(16)
	EncodeFloats(w, vals)
	got, err := DecodeFloats(bitio.NewReader(w.Bytes()), len(vals))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1.5 || !math.IsNaN(got[1]) || got[2] != 2.5 {
		t.Fatalf("got %v", got)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(raw []float64) bool {
		w := bitio.NewWriter(len(raw) * 4)
		EncodeFloats(w, raw)
		got, err := DecodeFloats(bitio.NewReader(w.Bytes()), len(raw))
		if err != nil {
			return false
		}
		for i := range raw {
			if got[i] != raw[i] && !(math.IsNaN(got[i]) && math.IsNaN(raw[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestErasureBeatsGorillaOnDecimalData(t *testing.T) {
	// Low-precision decimal readings (temperatures with one decimal) are
	// Elf's target: erasure should shorten the stream vs raw Gorilla XOR.
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 2000)
	v := 20.0
	for i := range vals {
		v += float64(rng.Intn(11)-5) / 10
		vals[i] = math.Round(v*10) / 10
	}
	wElf := bitio.NewWriter(len(vals) * 4)
	EncodeFloats(wElf, vals)
	words := make([]uint64, len(vals))
	for i, f := range vals {
		words[i] = math.Float64bits(f)
	}
	wGor := bitio.NewWriter(len(vals) * 4)
	gorilla.EncodeValues(wGor, words)
	if wElf.BitLen() >= wGor.BitLen() {
		t.Fatalf("elf %d bits should beat gorilla %d bits on decimal data",
			wElf.BitLen(), wGor.BitLen())
	}
}

func TestSigDigitsAndRound(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{1, 1}, {1.5, 2}, {21.7, 3}, {0.001, 1}, {123.456, 6},
	}
	for _, c := range cases {
		if got := sigDigits(c.v); got != c.want {
			t.Errorf("sigDigits(%v) = %d want %d", c.v, got, c.want)
		}
	}
	if r := roundAlpha(21.699999999999999, 3); r != 21.7 {
		t.Fatalf("roundAlpha = %v", r)
	}
}

func TestEraseRestores(t *testing.T) {
	for _, v := range []float64{21.7, 0.1, 1234.5, -3.25, 9.999} {
		alpha := sigDigits(v)
		ev, ok := erase(v, alpha)
		if !ok {
			continue // erasing may not pay off; that is fine
		}
		if roundAlpha(ev, alpha) != v {
			t.Fatalf("restore(erase(%v)) = %v", v, roundAlpha(ev, alpha))
		}
		if math.Float64bits(ev)&(1<<minGain-1) != 0 {
			t.Fatalf("erase(%v) left low bits set", v)
		}
	}
}

func TestCodec(t *testing.T) {
	c, err := encoding.Lookup("elf")
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{
		int64(math.Float64bits(21.5)),
		int64(math.Float64bits(21.7)),
		int64(math.Float64bits(-3.0)),
	}
	raw, err := c.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("got %v want %v", got, vals)
		}
	}
	if _, err := c.Decode([]byte{1}); err == nil {
		t.Fatal("corrupt block must fail")
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 4096)
	v := 20.0
	for i := range vals {
		v += float64(rng.Intn(11)-5) / 10
		vals[i] = math.Round(v*10) / 10
	}
	b.SetBytes(int64(len(vals) * 8))
	for i := 0; i < b.N; i++ {
		w := bitio.NewWriter(len(vals) * 4)
		EncodeFloats(w, vals)
	}
}
