// Package encoding implements the primitive encoding operators that the
// combined IoT encoders (Table I of the paper) are built from:
//
//	Delta   — differences of adjacent values (±, ±², XOR)
//	Repeat  — run-length compression of repeated values/deltas
//	Packing — constant-width bit-packing, ZigZag, Fibonacci coding
//
// Each combined encoder (ts2diff, sprintz, rlbe, gorilla, chimp) composes
// these primitives in its own sub-package.
package encoding

// Semantics classifies a primitive operator by the paper's taxonomy.
type Semantics int

// The three encoder semantics of Table I.
const (
	SemanticsDelta Semantics = iota
	SemanticsRepeat
	SemanticsPacking
)

// String returns the Table I column name.
func (s Semantics) String() string {
	switch s {
	case SemanticsDelta:
		return "Delta"
	case SemanticsRepeat:
		return "Repeat"
	case SemanticsPacking:
		return "Packing"
	}
	return "Unknown"
}
