package encoding

import (
	"fmt"
	"sort"
	"sync"
)

// Codec is a self-contained combined encoder: Encode produces one encoded
// block (header + payload) and Decode recovers the original values.
// Combined encoders (ts2diff, sprintz, rlbe, gorilla, chimp, fastlanes)
// register themselves so storage and the benchmark harness can select
// codecs by name.
type Codec interface {
	// Name is the registry key, e.g. "ts2diff".
	Name() string
	// Semantics lists the Table I operator semantics the codec combines.
	Semantics() []Semantics
	// Encode serializes vals into one block.
	Encode(vals []int64) ([]byte, error)
	// Decode recovers the values of a block produced by Encode.
	Decode(block []byte) ([]int64, error)
}

var (
	codecMu  sync.RWMutex
	codecs   = map[string]Codec{}
	codecSeq []string
)

// Register makes a codec available by name. It panics on duplicates,
// following the convention of image.RegisterFormat: a duplicate name is
// an init-time programmer error, not a data-dependent condition.
//
//etsqp:trusted
func Register(c Codec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := codecs[c.Name()]; dup {
		panic(fmt.Sprintf("encoding: duplicate codec %q", c.Name()))
	}
	codecs[c.Name()] = c
	codecSeq = append(codecSeq, c.Name())
}

// Lookup returns the codec registered under name.
func Lookup(name string) (Codec, error) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := codecs[name]
	if !ok {
		return nil, fmt.Errorf("encoding: unknown codec %q", name)
	}
	return c, nil
}

// Names lists all registered codecs in sorted order.
func Names() []string {
	codecMu.RLock()
	defer codecMu.RUnlock()
	out := append([]string(nil), codecSeq...)
	sort.Strings(out)
	return out
}
