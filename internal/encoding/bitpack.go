package encoding

import (
	"math/bits"

	"etsqp/internal/bitio"
)

// BitWidth returns the minimum packing width for the values: the number of
// bits of the largest value, with a floor of 0 for an all-zero input.
func BitWidth(vals []uint64) uint {
	var w uint
	for _, v := range vals {
		if n := uint(bits.Len64(v)); n > w {
			w = n
		}
	}
	return w
}

// BitWidthSigned returns the packing width needed after subtracting base
// (minimum) from every value, plus the base. TS2DIFF packs (v - minBase).
func BitWidthSigned(vals []int64) (base int64, width uint) {
	if len(vals) == 0 {
		return 0, 0
	}
	base = vals[0]
	maxV := vals[0]
	for _, v := range vals[1:] {
		if v < base {
			base = v
		}
		if v > maxV {
			maxV = v
		}
	}
	return base, BitWidth([]uint64{uint64(maxV - base)})
}

// Pack writes each value with the given constant width, big-endian,
// MSB-first — the on-disk format IoT databases flush (Figure 1(b)).
// Values must fit in width bits.
func Pack(vals []uint64, width uint) []byte {
	w := bitio.NewWriter((len(vals)*int(width) + 7) / 8)
	PackInto(w, vals, width)
	return w.Bytes()
}

// PackInto appends packed values to an existing bit writer so combined
// encoders can interleave headers and payloads.
func PackInto(w *bitio.Writer, vals []uint64, width uint) {
	for _, v := range vals {
		w.WriteBits(v, width)
	}
}

// Unpack reads n values of the given constant width from buf.
// This is the scalar (serial) reference decoder; the vectorized unpacker
// lives in internal/pipeline.
func Unpack(buf []byte, n int, width uint) ([]uint64, error) {
	r := bitio.NewReader(buf)
	return UnpackFrom(r, n, width)
}

// UnpackFrom reads n constant-width values from a bit reader.
func UnpackFrom(r *bitio.Reader, n int, width uint) ([]uint64, error) {
	out := make([]uint64, n)
	for i := range out {
		v, err := r.ReadBits(width)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
