package encoding

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"etsqp/internal/bitio"
)

func TestZigZagKnownValues(t *testing.T) {
	cases := []struct {
		in   int64
		want uint64
	}{
		{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4},
		{math.MaxInt64, 0xFFFFFFFFFFFFFFFE},
		{math.MinInt64, 0xFFFFFFFFFFFFFFFF},
	}
	for _, c := range cases {
		if got := ZigZag(c.in); got != c.want {
			t.Errorf("ZigZag(%d) = %d, want %d", c.in, got, c.want)
		}
		if back := UnZigZag(c.want); back != c.in {
			t.Errorf("UnZigZag(%d) = %d, want %d", c.want, back, c.in)
		}
	}
}

func TestZigZagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZigZagSlices(t *testing.T) {
	in := []int64{-3, 0, 7, -1}
	if got := UnZigZagSlice(ZigZagSlice(in)); !reflect.DeepEqual(got, in) {
		t.Fatalf("got %v want %v", got, in)
	}
}

func TestBitWidth(t *testing.T) {
	cases := []struct {
		vals []uint64
		want uint
	}{
		{nil, 0},
		{[]uint64{0, 0}, 0},
		{[]uint64{1}, 1},
		{[]uint64{0, 7}, 3},
		{[]uint64{1023}, 10},
		{[]uint64{1 << 31}, 32},
		{[]uint64{math.MaxUint64}, 64},
	}
	for _, c := range cases {
		if got := BitWidth(c.vals); got != c.want {
			t.Errorf("BitWidth(%v) = %d, want %d", c.vals, got, c.want)
		}
	}
}

func TestBitWidthSigned(t *testing.T) {
	base, w := BitWidthSigned([]int64{-5, 3, 10})
	if base != -5 || w != 4 { // 10-(-5)=15 -> 4 bits
		t.Fatalf("got base=%d w=%d, want -5, 4", base, w)
	}
	base, w = BitWidthSigned([]int64{7, 7, 7})
	if base != 7 || w != 0 {
		t.Fatalf("constant input got base=%d w=%d", base, w)
	}
	base, w = BitWidthSigned(nil)
	if base != 0 || w != 0 {
		t.Fatalf("empty input got base=%d w=%d", base, w)
	}
}

func TestPackUnpackWidths(t *testing.T) {
	for width := uint(1); width <= 32; width++ {
		vals := make([]uint64, 100)
		for i := range vals {
			vals[i] = uint64(i*2654435761) & (1<<width - 1)
		}
		buf := Pack(vals, width)
		wantBytes := (len(vals)*int(width) + 7) / 8
		if len(buf) != wantBytes {
			t.Fatalf("width %d: %d bytes, want %d", width, len(buf), wantBytes)
		}
		got, err := Unpack(buf, len(vals), width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if !reflect.DeepEqual(got, vals) {
			t.Fatalf("width %d: round trip mismatch", width)
		}
	}
}

func TestUnpackShortBuffer(t *testing.T) {
	if _, err := Unpack([]byte{0xFF}, 2, 10); err == nil {
		t.Fatal("expected error on short buffer")
	}
}

func TestDeltaEncodeDecode(t *testing.T) {
	vals := []int64{12, 18, 24, 29, 35, 30, -2}
	first, deltas := DeltaEncode(vals)
	if first != 12 {
		t.Fatalf("first = %d", first)
	}
	want := []int64{6, 6, 5, 6, -5, -32}
	if !reflect.DeepEqual(deltas, want) {
		t.Fatalf("deltas = %v, want %v", deltas, want)
	}
	if got := DeltaDecode(first, deltas); !reflect.DeepEqual(got, vals) {
		t.Fatalf("decode = %v, want %v", got, vals)
	}
}

func TestDeltaEmptyAndSingle(t *testing.T) {
	if f, d := DeltaEncode(nil); f != 0 || d != nil {
		t.Fatalf("empty: %d %v", f, d)
	}
	f, d := DeltaEncode([]int64{42})
	if f != 42 || len(d) != 0 {
		t.Fatalf("single: %d %v", f, d)
	}
	if got := DeltaDecode(42, nil); !reflect.DeepEqual(got, []int64{42}) {
		t.Fatalf("decode single: %v", got)
	}
}

func TestDelta2RoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) < 2 {
			return true
		}
		// Constrain magnitudes to avoid int64 overflow in differences.
		for i := range vals {
			vals[i] %= 1 << 40
		}
		first, fd, dd := Delta2Encode(vals)
		return reflect.DeepEqual(Delta2Decode(first, fd, dd), vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDelta2Known(t *testing.T) {
	// Regular timestamps: second-order deltas are all zero.
	ts := []int64{1000, 2000, 3000, 4000, 5000}
	first, fd, dd := Delta2Encode(ts)
	if first != 1000 || fd != 1000 {
		t.Fatalf("first=%d fd=%d", first, fd)
	}
	for _, d := range dd {
		if d != 0 {
			t.Fatalf("dd = %v, want zeros", dd)
		}
	}
}

func TestXORDeltaRoundTrip(t *testing.T) {
	f := func(words []uint64) bool {
		return reflect.DeepEqual(XORDeltaDecode(XORDeltaEncode(words)), words)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXORDeltaCloseValues(t *testing.T) {
	a := math.Float64bits(21.7)
	b := math.Float64bits(21.8)
	enc := XORDeltaEncode([]uint64{a, b})
	if enc[0] != a {
		t.Fatalf("first word must pass through")
	}
	if enc[1] != a^b {
		t.Fatalf("second word must be XOR of neighbours")
	}
}

func TestRLERoundTrip(t *testing.T) {
	vals := []int64{5, 5, 5, 2, 2, 9, 5, 5}
	runs := RLEEncode(vals)
	want := []Run{{5, 3}, {2, 2}, {9, 1}, {5, 2}}
	if !reflect.DeepEqual(runs, want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
	if got := RLEDecode(runs); !reflect.DeepEqual(got, vals) {
		t.Fatalf("decode = %v", got)
	}
	if RLEEncode(nil) != nil {
		t.Fatal("empty input must give nil runs")
	}
}

func TestDeltaRLERoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		for i := range vals {
			vals[i] %= 1 << 40
		}
		first, pairs := DeltaRLEEncode(vals)
		return reflect.DeepEqual(DeltaRLEDecode(first, pairs), vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaRLERegularSeries(t *testing.T) {
	// A perfectly regular series compresses to a single Delta-Repeat pair.
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i) * 60
	}
	first, pairs := DeltaRLEEncode(vals)
	if first != 0 || len(pairs) != 1 || pairs[0] != (DeltaRun{60, 999}) {
		t.Fatalf("first=%d pairs=%v", first, pairs)
	}
}

func TestFibonacciKnownCodes(t *testing.T) {
	// Classic codewords: 1→"11", 2→"011", 3→"0011", 4→"1011", 5→"00011".
	cases := []struct {
		v    uint64
		bits []uint
	}{
		{1, []uint{1, 1}},
		{2, []uint{0, 1, 1}},
		{3, []uint{0, 0, 1, 1}},
		{4, []uint{1, 0, 1, 1}},
		{5, []uint{0, 0, 0, 1, 1}},
		{12, []uint{1, 0, 1, 0, 1, 1}},
	}
	for _, c := range cases {
		w := bitio.NewWriter(2)
		if err := FibonacciEncode(w, c.v); err != nil {
			t.Fatal(err)
		}
		r := bitio.NewReader(w.Bytes())
		for i, want := range c.bits {
			got, err := r.ReadBit()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("v=%d bit %d: got %d want %d", c.v, i, got, want)
			}
		}
		if got := FibonacciCodeLen(c.v); got != len(c.bits) {
			t.Fatalf("FibonacciCodeLen(%d) = %d, want %d", c.v, got, len(c.bits))
		}
	}
}

func TestFibonacciRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		vals := make([]uint64, len(raw))
		for i, r := range raw {
			vals[i] = uint64(r) + 1 // >= 1
		}
		buf, err := FibonacciEncodeAll(vals)
		if err != nil {
			return false
		}
		got, err := FibonacciDecodeAll(buf, len(vals))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFibonacciLargeValues(t *testing.T) {
	vals := []uint64{1, 1 << 20, 1 << 40, 1 << 62, (1 << 62) + 12345}
	buf, err := FibonacciEncodeAll(vals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FibonacciDecodeAll(buf, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatalf("got %v want %v", got, vals)
	}
}

func TestFibonacciZeroRejected(t *testing.T) {
	w := bitio.NewWriter(1)
	if err := FibonacciEncode(w, 0); err != ErrNotPositive {
		t.Fatalf("got %v want ErrNotPositive", err)
	}
}

func TestFibonacciTruncated(t *testing.T) {
	r := bitio.NewReader([]byte{0b01010101})
	if _, err := FibonacciDecode(r); err == nil {
		t.Fatal("expected error decoding codeword without terminator")
	}
}

func TestSemanticsString(t *testing.T) {
	if SemanticsDelta.String() != "Delta" || SemanticsRepeat.String() != "Repeat" ||
		SemanticsPacking.String() != "Packing" || Semantics(99).String() != "Unknown" {
		t.Fatal("Semantics.String mismatch")
	}
}

func BenchmarkPack10Bit(b *testing.B) {
	vals := make([]uint64, 8192)
	for i := range vals {
		vals[i] = uint64(i) & 1023
	}
	b.SetBytes(int64(len(vals) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Pack(vals, 10)
	}
}

func BenchmarkUnpack10Bit(b *testing.B) {
	vals := make([]uint64, 8192)
	for i := range vals {
		vals[i] = uint64(i) & 1023
	}
	buf := Pack(vals, 10)
	b.SetBytes(int64(len(vals) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(buf, len(vals), 10); err != nil {
			b.Fatal(err)
		}
	}
}
