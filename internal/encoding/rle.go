package encoding

// Run is one (value, repeat count) pair of a run-length encoding.
type Run struct {
	Value int64
	Count int
}

// RLEEncode compresses consecutive repeated values into runs.
func RLEEncode(vals []int64) []Run {
	if len(vals) == 0 {
		return nil
	}
	runs := make([]Run, 0, 8)
	cur := Run{Value: vals[0], Count: 1}
	for _, v := range vals[1:] {
		if v == cur.Value {
			cur.Count++
			continue
		}
		runs = append(runs, cur)
		cur = Run{Value: v, Count: 1}
	}
	return append(runs, cur)
}

// RLEDecode expands runs back to the flat sequence ("Repeat flatten" in
// the pipeline terminology).
func RLEDecode(runs []Run) []int64 {
	n := 0
	for _, r := range runs {
		n += r.Count
	}
	out := make([]int64, 0, n)
	for _, r := range runs {
		for i := 0; i < r.Count; i++ {
			out = append(out, r.Value)
		}
	}
	return out
}

// DeltaRun is one (delta, run length) pair of the Delta-Repeat combined
// representation that Section IV fuses aggregations over: the series
// advances by Delta at each of Count consecutive steps.
type DeltaRun struct {
	Delta int64
	Count int
}

// DeltaRLEEncode converts a value sequence to the header value plus its
// Delta-Repeat pairs: runs of equal consecutive deltas.
func DeltaRLEEncode(vals []int64) (first int64, pairs []DeltaRun) {
	first, deltas := DeltaEncode(vals)
	for _, r := range RLEEncode(deltas) {
		pairs = append(pairs, DeltaRun{Delta: r.Value, Count: r.Count})
	}
	return first, pairs
}

// DeltaRLEDecode expands Delta-Repeat pairs back to values.
func DeltaRLEDecode(first int64, pairs []DeltaRun) []int64 {
	n := 1
	for _, p := range pairs {
		n += p.Count
	}
	out := make([]int64, 0, n)
	out = append(out, first)
	cur := first
	for _, p := range pairs {
		for i := 0; i < p.Count; i++ {
			cur += p.Delta
			out = append(out, cur)
		}
	}
	return out
}
