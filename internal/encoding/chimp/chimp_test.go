package chimp

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"etsqp/internal/bitio"
	"etsqp/internal/encoding"
)

func TestRoundTrip(t *testing.T) {
	f := func(words []uint64) bool {
		w := bitio.NewWriter(len(words) * 2)
		Encode(w, words)
		got, err := Decode(bitio.NewReader(w.Bytes()), len(words))
		if err != nil {
			return false
		}
		if len(words) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, words)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatSeries(t *testing.T) {
	vals := make([]float64, 500)
	v := 20.0
	for i := range vals {
		v += math.Sin(float64(i) / 10)
		vals[i] = v
	}
	words := make([]uint64, len(vals))
	for i, f := range vals {
		words[i] = math.Float64bits(f)
	}
	w := bitio.NewWriter(len(words) * 4)
	Encode(w, words)
	got, err := Decode(bitio.NewReader(w.Bytes()), len(words))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, words) {
		t.Fatal("round trip mismatch")
	}
	// Chimp must beat raw storage on a smooth float series.
	if w.BitLen() >= len(words)*64 {
		t.Fatalf("no compression: %d bits for %d words", w.BitLen(), len(words))
	}
}

func TestConstantSeriesTwoBitsEach(t *testing.T) {
	words := make([]uint64, 100)
	for i := range words {
		words[i] = math.Float64bits(42.0)
	}
	w := bitio.NewWriter(32)
	Encode(w, words)
	if got, want := w.BitLen(), 64+2*99; got != want {
		t.Fatalf("bits = %d, want %d", got, want)
	}
}

func TestRoundLead(t *testing.T) {
	cases := []struct{ in, idx, rounded int }{
		{0, 0, 0}, {7, 0, 0}, {8, 1, 8}, {11, 1, 8}, {12, 2, 12},
		{17, 3, 16}, {24, 7, 24}, {63, 7, 24},
	}
	for _, c := range cases {
		idx, rounded := roundLead(c.in)
		if idx != c.idx || rounded != c.rounded {
			t.Errorf("roundLead(%d) = (%d,%d), want (%d,%d)", c.in, idx, rounded, c.idx, c.rounded)
		}
	}
}

func TestCodec(t *testing.T) {
	c, err := encoding.Lookup("chimp")
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{100, 100, 104, 108, -7}
	raw, _ := c.Encode(vals)
	got, err := c.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatalf("got %v", got)
	}
	if _, err := c.Decode([]byte{9}); err == nil {
		t.Fatal("expected corrupt error")
	}
}

func BenchmarkEncode(b *testing.B) {
	words := make([]uint64, 8192)
	v := 20.0
	for i := range words {
		v += math.Sin(float64(i) / 10)
		words[i] = math.Float64bits(v)
	}
	b.SetBytes(int64(len(words) * 8))
	for i := 0; i < b.N; i++ {
		w := bitio.NewWriter(len(words) * 4)
		Encode(w, words)
	}
}
