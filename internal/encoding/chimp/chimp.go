// Package chimp implements the Chimp combined encoder (Table I row
// "Chimp"): XOR delta with pattern-based variable-width packing that,
// unlike Gorilla, spends only two flag bits per value and reuses the
// previous leading-zero count.
//
// Per value (after XOR with the predecessor):
//
//	'00'                      xor == 0
//	'01' + 3b lead + 6b len   trailing zeros > 6: center bits only
//	'10' + (64-prevLead) bits leading zeros match the previous value
//	'11' + 3b lead + (64-lead) bits
//
// The 3-bit lead index rounds into {0,8,12,16,18,20,22,24}, as in the
// Chimp paper.
package chimp

import (
	"encoding/binary"
	"errors"
	"math/bits"

	"etsqp/internal/bitio"
	"etsqp/internal/encoding"
)

// ErrCorrupt reports a malformed block.
var ErrCorrupt = errors.New("chimp: corrupt block")

var leadingRound = [8]int{0, 8, 12, 16, 18, 20, 22, 24}

// roundLead maps a leading-zero count to (table index, rounded value).
func roundLead(lead int) (idx, rounded int) {
	idx = 0
	for i, v := range leadingRound {
		if lead >= v {
			idx = i
		}
	}
	return idx, leadingRound[idx]
}

// Encode writes the Chimp stream for 64-bit words.
func Encode(w *bitio.Writer, words []uint64) {
	if len(words) == 0 {
		return
	}
	w.WriteBits(words[0], 64)
	prev := words[0]
	prevLead := -1
	for _, cur := range words[1:] {
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.WriteBits(0b00, 2)
			prevLead = -1
			continue
		}
		lead := bits.LeadingZeros64(xor)
		trail := bits.TrailingZeros64(xor)
		idx, rounded := roundLead(lead)
		if trail > 6 {
			// '01': center bits between rounded lead and trail.
			center := 64 - rounded - trail
			w.WriteBits(0b01, 2)
			w.WriteBits(uint64(idx), 3)
			w.WriteBits(uint64(center), 6)
			w.WriteBits(xor>>uint(trail), uint(center))
			prevLead = -1
		} else if rounded == prevLead {
			// '10': same leading window as previous value.
			w.WriteBits(0b10, 2)
			w.WriteBits(xor, uint(64-rounded))
		} else {
			// '11': new leading window.
			w.WriteBits(0b11, 2)
			w.WriteBits(uint64(idx), 3)
			w.WriteBits(xor, uint(64-rounded))
			prevLead = rounded
		}
	}
}

// Decode reads n words written by Encode.
func Decode(r *bitio.Reader, n int) ([]uint64, error) {
	if n == 0 {
		return nil, nil
	}
	out := make([]uint64, 0, n)
	first, err := r.ReadBits(64)
	if err != nil {
		return nil, err
	}
	out = append(out, first)
	prev := first
	prevLead := -1
	for len(out) < n {
		flag, err := r.ReadBits(2)
		if err != nil {
			return nil, err
		}
		var xor uint64
		switch flag {
		case 0b00:
			prevLead = -1
		case 0b01:
			idx, err := r.ReadBits(3)
			if err != nil {
				return nil, err
			}
			center, err := r.ReadBits(6)
			if err != nil {
				return nil, err
			}
			rounded := leadingRound[idx]
			trail := 64 - rounded - int(center)
			if trail < 0 {
				return nil, ErrCorrupt
			}
			v, err := r.ReadBits(uint(center))
			if err != nil {
				return nil, err
			}
			xor = v << uint(trail)
			prevLead = -1
		case 0b10:
			if prevLead < 0 {
				return nil, ErrCorrupt
			}
			v, err := r.ReadBits(uint(64 - prevLead))
			if err != nil {
				return nil, err
			}
			xor = v
		case 0b11:
			idx, err := r.ReadBits(3)
			if err != nil {
				return nil, err
			}
			rounded := leadingRound[idx]
			v, err := r.ReadBits(uint(64 - rounded))
			if err != nil {
				return nil, err
			}
			xor = v
			prevLead = rounded
		}
		cur := prev ^ xor
		out = append(out, cur)
		prev = cur
	}
	return out, nil
}

const blockMagic = 0xC4

type codec struct{}

func (codec) Name() string { return "chimp" }

func (codec) Semantics() []encoding.Semantics {
	return []encoding.Semantics{encoding.SemanticsDelta, encoding.SemanticsPacking}
}

func (codec) Encode(vals []int64) ([]byte, error) {
	w := bitio.NewWriter(len(vals) * 2)
	words := make([]uint64, len(vals))
	for i, v := range vals {
		words[i] = uint64(v)
	}
	Encode(w, words)
	payload := w.Bytes()
	out := make([]byte, 0, 5+len(payload))
	out = append(out, blockMagic)
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], uint32(len(vals)))
	out = append(out, tmp[:]...)
	return append(out, payload...), nil
}

func (codec) Decode(block []byte) ([]int64, error) {
	if len(block) < 5 || block[0] != blockMagic {
		return nil, ErrCorrupt
	}
	n := int(binary.BigEndian.Uint32(block[1:]))
	words, err := Decode(bitio.NewReader(block[5:]), n)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(words))
	for i, w := range words {
		out[i] = int64(w)
	}
	return out, nil
}

func init() { encoding.Register(codec{}) }
