package encoding

import (
	"errors"

	"etsqp/internal/bitio"
)

// fibTable holds Fibonacci numbers F(2)=1, F(3)=2, F(4)=3, … up to the
// largest value below 2^63, the basis of Fibonacci (Zeckendorf) coding.
var fibTable = buildFibTable()

func buildFibTable() []uint64 {
	fs := []uint64{1, 2}
	for {
		next := fs[len(fs)-1] + fs[len(fs)-2]
		if next < fs[len(fs)-1] { // overflow
			break
		}
		fs = append(fs, next)
		if next > 1<<62 {
			break
		}
	}
	return fs
}

// ErrNotPositive reports a Fibonacci-coding input below 1.
var ErrNotPositive = errors.New("encoding: fibonacci code requires v >= 1")

// ErrBadFibCode reports a malformed Fibonacci codeword.
var ErrBadFibCode = errors.New("encoding: malformed fibonacci codeword")

// FibonacciEncode appends the Fibonacci codeword for v (v >= 1) to w.
// The codeword lists Zeckendorf digits from F(2) upward and terminates
// with an extra 1, so every codeword ends in "11" and no other "11"
// appears — the self-delimiting property RLBE packing relies on
// (Figure 7: each pair of adjacent 1s marks a termination).
func FibonacciEncode(w *bitio.Writer, v uint64) error {
	if v == 0 {
		return ErrNotPositive
	}
	// Find the largest Fibonacci number <= v.
	hi := 0
	for hi+1 < len(fibTable) && fibTable[hi+1] <= v {
		hi++
	}
	digits := make([]uint, hi+1)
	rem := v
	for i := hi; i >= 0; i-- {
		if fibTable[i] <= rem {
			digits[i] = 1
			rem -= fibTable[i]
		}
	}
	for _, d := range digits {
		w.WriteBit(d)
	}
	w.WriteBit(1) // terminator: forms the "11" pair with the top digit
	return nil
}

// FibonacciDecode reads one Fibonacci codeword from r.
func FibonacciDecode(r *bitio.Reader) (uint64, error) {
	var v uint64
	prev := uint(0)
	for i := 0; ; i++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if bit == 1 && prev == 1 {
			return v, nil
		}
		if bit == 1 {
			if i >= len(fibTable) {
				return 0, ErrBadFibCode
			}
			v += fibTable[i]
		}
		prev = bit
	}
}

// FibonacciEncodeAll encodes a slice of positive values back to back.
func FibonacciEncodeAll(vals []uint64) ([]byte, error) {
	w := bitio.NewWriter(len(vals) * 2)
	for _, v := range vals {
		if err := FibonacciEncode(w, v); err != nil {
			return nil, err
		}
	}
	return w.Bytes(), nil
}

// FibonacciDecodeAll decodes n codewords from buf.
func FibonacciDecodeAll(buf []byte, n int) ([]uint64, error) {
	r := bitio.NewReader(buf)
	out := make([]uint64, n)
	for i := range out {
		v, err := FibonacciDecode(r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// FibonacciCodeLen returns the codeword length in bits for v >= 1.
func FibonacciCodeLen(v uint64) int {
	hi := 0
	for hi+1 < len(fibTable) && fibTable[hi+1] <= v {
		hi++
	}
	return hi + 2 // digits F(2)..F(hi+2) plus terminator
}
