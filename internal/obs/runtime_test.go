package obs

import (
	"runtime"
	"runtime/metrics"
	"testing"
)

// pauseHistCount reads the current go.hist.gc_pause_ns observation
// count.
func pauseHistCount() int64 {
	return GoHistGCPause.Count()
}

// TestFeedPauseHistogramBaselinesFirstSample checks the first runtime
// pause sample (and any bucket-layout change) only records the
// baseline: the process's cumulative pre-enable pause history must not
// be replayed into the histogram as if it just happened.
func TestFeedPauseHistogramBaselinesFirstSample(t *testing.T) {
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	runtimeMu.Lock()
	defer runtimeMu.Unlock()
	lastPauseCounts = nil

	h := &metrics.Float64Histogram{
		Counts:  []uint64{5, 2},
		Buckets: []float64{0, 1e-6, 1e-3},
	}
	feedPauseHistogram(h)
	if got := pauseHistCount(); got != 0 {
		t.Fatalf("first sample folded %d pre-existing pauses into the histogram, want 0", got)
	}

	// Two new pauses in the first bucket: only the delta is observed.
	h.Counts = []uint64{7, 2}
	feedPauseHistogram(h)
	if got := pauseHistCount(); got != 2 {
		t.Fatalf("second sample observed %d pauses, want the delta 2", got)
	}

	// A bucket-layout change re-baselines instead of replaying counts.
	wide := &metrics.Float64Histogram{
		Counts:  []uint64{9, 3, 1},
		Buckets: []float64{0, 1e-7, 1e-6, 1e-3},
	}
	feedPauseHistogram(wide)
	if got := pauseHistCount(); got != 2 {
		t.Fatalf("layout change observed %d extra pauses, want none (count stays 2)", got)
	}
	wide.Counts = []uint64{10, 3, 1}
	feedPauseHistogram(wide)
	if got := pauseHistCount(); got != 3 {
		t.Fatalf("post-rebaseline delta observed count %d, want 3", got)
	}
}

// TestGCCyclesIsCounter checks go.gc_cycles registers as a counter (so
// PromQL rate() works and Window deltas include it), not a gauge.
func TestGCCyclesIsCounter(t *testing.T) {
	for _, g := range Gauges() {
		if g.Name == "go.gc_cycles" {
			t.Fatal("go.gc_cycles is registered as a gauge; it is monotone and must be a counter")
		}
	}
	for _, m := range Metrics() {
		if m.Name == "go.gc_cycles" {
			return
		}
	}
	t.Fatal("go.gc_cycles is not in the counter registry")
}

// TestGCCyclesAdvancesByDelta checks SampleRuntime feeds the cycle
// counter with per-sample deltas: a sample right after Reset must not
// re-add the process's whole cumulative cycle count.
func TestGCCyclesAdvancesByDelta(t *testing.T) {
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	runtime.GC()
	runtime.GC()
	runtimeMu.Lock()
	lastGCCycles = 0
	runtimeMu.Unlock()
	SampleRuntime()
	cumulative := GoGCCycles.Load()
	if cumulative < 2 {
		t.Fatalf("go.gc_cycles = %d after two forced GCs from a zero baseline, want >= 2", cumulative)
	}
	Reset()
	SampleRuntime()
	if got := GoGCCycles.Load(); got >= cumulative {
		t.Errorf("go.gc_cycles = %d after Reset+sample, want a small delta, not the cumulative %d", got, cumulative)
	}
}
