package obs_test

import (
	"fmt"

	"etsqp/internal/engine"
	"etsqp/internal/obs"
	"etsqp/internal/storage"
)

// Example shows the snapshot → query → delta → reset cycle: enable the
// layer, capture a baseline, run a query, and read the counter movement
// it caused.
func Example() {
	// A small store: 24 regular points in three 8-row pages.
	ts := make([]int64, 24)
	vals := make([]int64, 24)
	for i := range ts {
		ts[i] = int64(i)
		vals[i] = int64(i % 5)
	}
	st := storage.NewStore()
	if err := st.Append("sensor", ts, vals, storage.Options{PageSize: 8}); err != nil {
		panic(err)
	}

	obs.Enable()
	defer obs.Disable()
	obs.Reset()
	before := obs.Capture()

	eng := engine.New(st, engine.ModeETSQP)
	eng.Workers = 2
	if _, err := eng.ExecuteSQL("SELECT SUM(A) FROM sensor"); err != nil {
		panic(err)
	}

	delta := obs.Capture().Delta(before)
	fmt.Println("queries:", delta["engine.queries"])
	fmt.Println("values fused:", delta["engine.values_fused"])
	fmt.Println("values decoded:", delta["engine.values_decoded"])

	obs.Reset()
	fmt.Println("after reset:", obs.Capture()["engine.queries"])
	// Output:
	// queries: 1
	// values fused: 24
	// values decoded: 0
	// after reset: 0
}
