package obs

// The complete metric registry. Names are dotted <package>.<metric>;
// semantics, units and overhead notes for every entry are documented in
// docs/OBSERVABILITY.md. All metrics are declared here (rather than in
// the packages that increment them) so the surface is reviewable in one
// place and the import graph stays acyclic: obs depends only on the
// standard library.

// Engine: query-level totals, published once per query from the
// per-query stats collector (engine.Stats remains the per-query view).
var (
	EngineQueries = newCounter("engine.queries",
		"queries executed successfully")
	EngineRowsOut = newCounter("engine.rows_out",
		"result rows, window rows and aggregate cells returned")
	EngineTuplesLoaded = newCounter("engine.tuples_loaded",
		"tuples covered by loaded or pruned pages (Section VII-B throughput unit)")
	EngineSlicesRun = newCounter("engine.slices_run",
		"pipeline jobs (pages or slices) executed by workers")
	EngineValuesFused = newCounter("engine.values_fused",
		"values aggregated on encoded form, never materialized (Section IV)")
	EngineValuesDecoded = newCounter("engine.values_decoded",
		"values materialized for filtering or aggregation")
	EnginePagesStatAnswered = newCounter("engine.pages_stat_answered",
		"pages answered from header statistics alone, payload untouched")
	EngineMergeRanges = newCounter("engine.merge_ranges",
		"time-range merge nodes executed for merge/join queries (Figure 9)")
	EngineWindowSegments = newCounter("engine.window_segments",
		"disjoint row segments cut by window boundaries, each aggregated once and shared by overlapping windows")
	EngineCursorBatches = newCounter("engine.cursor_batches",
		"columnar batches yielded by storage batch cursors for merge/join/scan queries")
)

// Engine stage timers: per-stage wall time summed across workers, so a
// parallel query can accumulate more stage time than wall time.
var (
	EngineTimeIO = newTimer("engine.time.io_ns",
		"wall time loading page payloads into worker buffers")
	EngineTimeDecode = newTimer("engine.time.decode_ns",
		"wall time in decoding pipelines")
	EngineTimeFilter = newTimer("engine.time.filter_ns",
		"wall time applying value predicates to materialized rows")
	EngineTimeAgg = newTimer("engine.time.agg_ns",
		"wall time folding values into aggregate states")
	EngineTimeWindow = newTimer("engine.time.window_ns",
		"wall time filling per-window partials and merging shared segments")
	EngineTimeMerge = newTimer("engine.time.merge_ns",
		"wall time merging and joining per-range results")
	EngineTimeQuery = newTimer("engine.time.query_ns",
		"end-to-end wall time of executed queries")
	EngineTimePrune = newTimer("engine.time.prune_ns",
		"wall time selecting and pruning pages by header statistics")
)

// Pipeline: vectorized unpack work (Section III).
var (
	PipelineValuesUnpacked = newCounter("pipeline.values_unpacked",
		"values produced by the decode pipelines (DecodeBlock/DecodeRange/RangeScanner)")
	PipelineVectorOps = newCounter("pipeline.vector_ops",
		"unpack vectors processed by the SIMD block loops (gather+shift+mask per vector)")
	PipelineSlices = newCounter("pipeline.slices",
		"slices created by the page-to-slice scheduler (Figure 8)")
	PipelinePrefixFixups = newCounter("pipeline.prefix_fixups",
		"cross-slice prefix dependencies resolved (SumPacked or order-2 replay)")
)

// Prune: Section V stop rules and page-statistics decisions.
var (
	PrunePagesTime = newCounter("prune.pages_skipped_time",
		"whole pages skipped by the header time-range rule")
	PrunePagesValue = newCounter("prune.pages_skipped_value",
		"whole pages skipped by the header min/max value rule")
	PruneStopsValue = newCounter("prune.stops_value",
		"in-page scans stopped early by the Proposition 5 value rule")
	PruneStopsTime = newCounter("prune.stops_time",
		"in-page scans stopped early by the Proposition 4 time rule")
	PruneRowsSkipped = newCounter("prune.rows_skipped",
		"rows never decoded thanks to in-page stop rules")
	PrunePagesVacuous = newCounter("prune.pages_filter_vacuous",
		"pages whose header stats prove every row passes the value filter (fused path stays on)")
)

// Storage: page payload traffic.
var (
	StoragePagesRead = newCounter("storage.pages_read",
		"page payload loads (a page re-read after a failed fused attempt counts twice)")
	StorageBytesScanned = newCounter("storage.bytes_scanned",
		"encoded payload bytes moved into working buffers")
	StoragePagesEncoded = newCounter("storage.pages_encoded",
		"pages encoded by ingestion (Append, transport senders, compaction)")
	StorageLazySeriesLoaded = newCounter("storage.lazy_series_loaded",
		"series materialized on demand from an indexed file")
	StorageLazyPagesLoaded = newCounter("storage.lazy_pages_loaded",
		"pages materialized by lazy series loads")
)

// Distributions: power-of-two-bucket histograms (histogram.go). The
// engine.hist.* stage histograms receive one observation per query (the
// query's summed stage nanoseconds), so they answer "how do stage costs
// distribute across queries" — the Sections III/VII questions the sum
// timers above cannot. The page/slice histograms observe once per decode
// call / pipeline job.
var (
	EngineHistQuery = newHistogram("engine.hist.query_ns",
		"distribution of end-to-end query wall time")
	EngineHistIO = newHistogram("engine.hist.io_ns",
		"per-query distribution of summed IO stage time")
	EngineHistDecode = newHistogram("engine.hist.decode_ns",
		"per-query distribution of summed decode stage time")
	EngineHistFilter = newHistogram("engine.hist.filter_ns",
		"per-query distribution of summed filter stage time")
	EngineHistAgg = newHistogram("engine.hist.agg_ns",
		"per-query distribution of summed aggregation stage time")
	EngineHistWindow = newHistogram("engine.hist.window_ns",
		"per-query distribution of summed windowed-aggregation stage time")
	EngineHistMerge = newHistogram("engine.hist.merge_ns",
		"per-query distribution of summed merge stage time")
	EngineHistPageDecode = newHistogram("engine.hist.page_decode_ns",
		"per-call distribution of page load+decode wall time (Section VII per-page decode cost)")
	EngineHistSliceRows = newHistogram("engine.hist.slice_rows",
		"distribution of rows per executed pipeline job (Figure 8 slice sizing)")
	TransportHistFrameBytes = newHistogram("transport.hist.frame_bytes",
		"wire-size distribution of frames written and parsed")
)

// Exec: the shared execution layer (internal/exec) — morsel batches on
// the process-wide worker pool and the decoded-page cache fronting
// storage.
var (
	ExecBatches = newCounter("exec.batches",
		"morsel batches submitted to the shared worker pool")
	ExecMorsels = newCounter("exec.morsels",
		"morsels (pages or slices) executed by batch participants")
	ExecSteals = newCounter("exec.steals",
		"morsels claimed from another participant's chunk (work stealing)")
	ExecCacheHits = newCounter("exec.cache.hits",
		"decoded-page cache lookups served without re-decoding")
	ExecCacheMisses = newCounter("exec.cache.misses",
		"decoded-page cache lookups that fell through to the decode path")
	ExecCacheInserts = newCounter("exec.cache.inserts",
		"decoded page columns admitted to the cache")
	ExecCacheInsertBytes = newCounter("exec.cache.insert_bytes",
		"decoded bytes admitted to the cache")
	ExecCacheEvictions = newCounter("exec.cache.evictions",
		"cache entries evicted by the clock sweep to meet the byte budget")
	ExecCacheEvictedBytes = newCounter("exec.cache.evicted_bytes",
		"decoded bytes reclaimed by clock eviction")
	ExecCacheInvalidated = newCounter("exec.cache.invalidated",
		"cache entries dropped because their series was mutated by ingest")
	ExecHistMorsel = newHistogram("exec.hist.morsel_ns",
		"distribution of single-morsel execution wall time")
	ExecHistQueueDepth = newHistogram("exec.hist.queue_depth",
		"active-batch count observed at each multi-participant submission")
)

// Serve: the HTTP observability and query surface.
var (
	ServeSlowDropped = newCounter("serve.slow_dropped",
		"slow-query traces evicted from the bounded in-memory ring (-slow-max)")
)

// Transport: the Section I encoded-delivery path.
var (
	TransportFramesOut = newCounter("transport.frames_out",
		"frames written by senders")
	TransportFramesIn = newCounter("transport.frames_in",
		"frames parsed successfully by receivers")
	TransportBytesOut = newCounter("transport.bytes_out",
		"wire bytes written (headers, payloads and CRC trailers)")
	TransportBytesIn = newCounter("transport.bytes_in",
		"wire bytes read from successfully parsed frames")
	TransportCRCFailures = newCounter("transport.crc_failures",
		"frames rejected for a CRC-32 payload mismatch")
)
