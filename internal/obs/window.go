package obs

import (
	"sync/atomic"
	"time"
)

// windowSpan is how much history a Window retains by default: enough
// for a 5-minute rate with slack for tick jitter.
const windowSpan = 5*time.Minute + 30*time.Second

// Window is a lock-free ring of timestamped registry snapshots that
// turns the process-lifetime cumulative counters into rates over recent
// time windows (10s/1m/5m on the serving surface). A single sampler —
// the Start goroutine, or a test driving Tick with a deterministic
// clock — appends one immutable sample per interval; readers walk the
// ring through atomic pointers, so a sample overwritten mid-walk is
// detected by its newer timestamp rather than read torn.
type Window struct {
	interval time.Duration
	ring     []atomic.Pointer[windowSample]
	head     atomic.Int64 //etsqp:atomic — samples published so far
}

// windowSample is one immutable point-in-time capture of the registry.
type windowSample struct {
	at       int64 // unix nanoseconds
	counters Snapshot
	gauges   Snapshot
	hists    []HistogramSnapshot
}

// NewWindow builds a ring sampling every interval and retaining span of
// history. A non-positive interval defaults to one second; a
// non-positive span defaults to 5m30s.
func NewWindow(interval, span time.Duration) *Window {
	if interval <= 0 {
		interval = time.Second
	}
	if span <= 0 {
		span = windowSpan
	}
	n := int(span/interval) + 2
	if n < 2 {
		n = 2
	}
	return &Window{interval: interval, ring: make([]atomic.Pointer[windowSample], n)}
}

// Interval returns the sampling interval the ring was built for.
func (w *Window) Interval() time.Duration { return w.interval }

// Tick captures one sample stamped with now. It is exported so tests
// can drive the ring with a deterministic clock; production use runs it
// from the Start goroutine. Tick also refreshes the Go runtime gauges,
// so windowed views include runtime health without a separate sampler.
func (w *Window) Tick(now time.Time) {
	SampleRuntime()
	s := &windowSample{
		at:       now.UnixNano(),
		counters: Capture(),
		gauges:   CaptureGauges(),
		hists:    CaptureHistograms(),
	}
	h := w.head.Load()
	w.ring[int(h%int64(len(w.ring)))].Store(s)
	w.head.Store(h + 1)
}

// Start launches the sampler goroutine and returns a function that
// stops it. One initial sample is taken immediately so the first
// interval already has a baseline.
func (w *Window) Start() (stop func()) {
	w.Tick(time.Now())
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(w.interval)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				w.Tick(now)
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}

// WindowStats is the registry movement between two ring samples: the
// newest sample and the oldest retained sample within the requested
// window. Seconds is the actual elapsed time between the two, so rates
// stay honest when ticks jitter or the ring has not yet filled.
type WindowStats struct {
	Seconds float64
	// Delta holds counter movement over the window; Last holds the newest
	// absolute counter values.
	Delta Snapshot
	Last  Snapshot
	// Gauges holds the newest sampled gauge values (a gauge has no rate).
	Gauges Snapshot
	// Hists holds per-histogram delta distributions over the window.
	Hists map[string]HistogramSnapshot
}

// Rate returns a counter's per-second rate over the window.
func (ws *WindowStats) Rate(name string) float64 {
	if ws.Seconds <= 0 {
		return 0
	}
	return float64(ws.Delta[name]) / ws.Seconds
}

// Stats computes the registry movement over (up to) the last d of
// history. It reports false when fewer than two samples are retained —
// there is no interval to rate over yet.
func (w *Window) Stats(d time.Duration) (*WindowStats, bool) {
	h := w.head.Load()
	if h < 2 {
		return nil, false
	}
	n := int64(len(w.ring))
	newest := w.ring[int((h-1)%n)].Load()
	if newest == nil {
		return nil, false
	}
	// Walk back to the oldest retained sample still inside the window.
	// A slot overwritten by a concurrent Tick carries a timestamp newer
	// than the sample before it in the walk; stop there.
	base := newest
	lo := h - n
	if lo < 0 {
		lo = 0
	}
	floor := newest.at - int64(d)
	for i := h - 2; i >= lo; i-- {
		s := w.ring[int(i%n)].Load()
		if s == nil || s.at >= base.at {
			break
		}
		if s.at < floor {
			break
		}
		base = s
	}
	if base == newest {
		return nil, false
	}
	ws := &WindowStats{
		Seconds: float64(newest.at-base.at) / 1e9,
		Delta:   newest.counters.Delta(base.counters),
		Last:    newest.counters,
		Gauges:  newest.gauges,
		Hists:   make(map[string]HistogramSnapshot, len(newest.hists)),
	}
	for i, hs := range newest.hists {
		if i < len(base.hists) && base.hists[i].Name == hs.Name {
			ws.Hists[hs.Name] = hs.Delta(base.hists[i])
		} else {
			ws.Hists[hs.Name] = hs
		}
	}
	return ws, true
}
