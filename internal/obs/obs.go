// Package obs is the engine's observability layer: a fixed registry of
// process-global counters and stage timers that the execution stack
// (engine, pipeline, prune, storage, transport) increments while queries
// run. The Lemire/Boytsov line of work shows that per-stage accounting is
// what makes decoding pipelines tunable; this package is the equivalent
// instrument panel for ETSQP.
//
// # Design
//
// Every metric is an atomic int64 behind a package-wide enable gate.
// When disabled (the default) an update is one atomic load and a
// predicted branch — no stores, no allocation, no locks — so
// instrumented hot paths cost effectively nothing in production builds
// that leave the layer off. When enabled, an update is a single atomic
// add. Neither path allocates (verified by testing.AllocsPerRun in the
// package tests).
//
// The full metric set is declared in counters.go and documented in
// docs/OBSERVABILITY.md. Per-query numbers (the ones EXPLAIN ANALYZE
// prints) come from engine.Stats, which is always collected; this
// package holds the process-wide totals.
//
// # Usage
//
//	obs.Enable()
//	before := obs.Capture()
//	// ... run queries ...
//	delta := obs.Capture().Delta(before)
//	obs.Dump(os.Stdout) // expvar-style "name value" lines
//	obs.Reset()
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// enabled gates every metric update. Off by default.
var enabled atomic.Bool

// Enable turns metric collection on.
func Enable() { enabled.Store(true) }

// Disable turns metric collection off. Counter values are retained.
func Disable() { enabled.Store(false) }

// Enabled reports whether metric collection is on. Callers batching
// several updates can check it once and skip the whole batch.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing metric. The zero value is not
// usable; counters are created at init time by counters.go so the
// registry is fixed before any concurrent access.
type Counter struct {
	v    atomic.Int64 //etsqp:atomic
	name string
	help string
}

// Add increments the counter by n when collection is enabled. It never
// allocates; when disabled it is a single atomic load and branch.
func (c *Counter) Add(n int64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Name returns the registered dotted metric name.
func (c *Counter) Name() string { return c.name }

// Help returns the one-line metric description.
func (c *Counter) Help() string { return c.help }

// Timer accumulates wall time in nanoseconds. It shares Counter's
// storage and gate, so the same overhead guarantees apply.
type Timer struct {
	c Counter
}

// Add folds a measured duration into the timer.
func (t *Timer) Add(d time.Duration) { t.c.Add(int64(d)) }

// AddNanos folds already-measured nanoseconds into the timer — the
// engine uses it to publish its per-query stage nanos in one shot.
func (t *Timer) AddNanos(ns int64) { t.c.Add(ns) }

// Since folds the wall time elapsed from start into the timer. The
// time.Since call is skipped entirely when collection is disabled.
func (t *Timer) Since(start time.Time) {
	if enabled.Load() {
		t.c.v.Add(int64(time.Since(start)))
	}
}

// Load returns the accumulated duration.
func (t *Timer) Load() time.Duration { return time.Duration(t.c.Load()) }

// Name returns the registered dotted metric name.
func (t *Timer) Name() string { return t.c.name }

// registry holds every metric in declaration order. It is append-only
// and fully built by package init, so reads need no lock.
var registry []*Counter

func newCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	registry = append(registry, c)
	return c
}

func newTimer(name, help string) *Timer {
	t := &Timer{}
	t.c.name, t.c.help = name, help
	registry = append(registry, &t.c)
	return t
}

// Snapshot is a point-in-time copy of every registered metric, keyed by
// metric name. Timer values are nanoseconds.
type Snapshot map[string]int64

// Capture copies the current value of every registered metric.
func Capture() Snapshot {
	s := make(Snapshot, len(registry))
	for _, c := range registry {
		s[c.name] = c.v.Load()
	}
	return s
}

// Delta returns this snapshot minus prev, metric by metric — the counter
// movement between two Capture calls.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := make(Snapshot, len(s))
	for name, v := range s {
		d[name] = v - prev[name]
	}
	return d
}

// Reset zeroes every registered metric, gauge and histogram. Concurrent
// updates during the reset land in the post-reset totals of the counters
// already visited.
func Reset() {
	for _, c := range registry {
		c.v.Store(0)
	}
	for _, g := range gaugeRegistry {
		g.v.Store(0)
	}
	for _, h := range histRegistry {
		h.reset()
	}
}

// Dump writes the current value of every metric as sorted
// "name value" lines — the expvar-style text surface etsqp-bench and
// etsqp-cli expose behind their -obs flags. Gauges contribute their last
// sampled value; histograms contribute five derived lines each: .count,
// .sum, .p50, .p90 and .p99.
func Dump(w io.Writer) error {
	s := Capture()
	for name, v := range CaptureGauges() {
		s[name] = v
	}
	for _, hs := range CaptureHistograms() {
		s[hs.Name+".count"] = hs.Count
		s[hs.Name+".sum"] = hs.Sum
		s[hs.Name+".p50"] = int64(hs.Quantile(0.50))
		s[hs.Name+".p90"] = int64(hs.Quantile(0.90))
		s[hs.Name+".p99"] = int64(hs.Quantile(0.99))
	}
	return s.Dump(w)
}

// Dump writes the snapshot as sorted "name value" lines.
func (s Snapshot) Dump(w io.Writer) error {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s[name]); err != nil {
			return err
		}
	}
	return nil
}

// Metrics lists every registered metric (name and help) in declaration
// order, for documentation and debugging surfaces.
func Metrics() []struct{ Name, Help string } {
	out := make([]struct{ Name, Help string }, len(registry))
	for i, c := range registry {
		out[i] = struct{ Name, Help string }{c.name, c.help}
	}
	return out
}
