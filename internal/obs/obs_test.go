package obs

import (
	"strings"
	"testing"
	"time"
)

// withClean runs f from a disabled, zeroed registry and restores that
// state afterwards, so tests do not leak counter values into each other.
func withClean(t *testing.T, f func()) {
	t.Helper()
	Disable()
	Reset()
	t.Cleanup(func() {
		Disable()
		Reset()
	})
	f()
}

func TestDisabledUpdatesAreDropped(t *testing.T) {
	withClean(t, func() {
		EngineQueries.Add(5)
		EngineTimeIO.Add(time.Second)
		EngineTimeIO.Since(time.Now().Add(-time.Hour))
		if v := EngineQueries.Load(); v != 0 {
			t.Fatalf("disabled counter moved: %d", v)
		}
		if v := EngineTimeIO.Load(); v != 0 {
			t.Fatalf("disabled timer moved: %v", v)
		}
	})
}

func TestEnabledUpdatesAccumulate(t *testing.T) {
	withClean(t, func() {
		Enable()
		EngineQueries.Add(2)
		EngineQueries.Inc()
		if v := EngineQueries.Load(); v != 3 {
			t.Fatalf("counter = %d, want 3", v)
		}
		EngineTimeAgg.Add(3 * time.Millisecond)
		EngineTimeAgg.AddNanos(int64(time.Millisecond))
		if v := EngineTimeAgg.Load(); v != 4*time.Millisecond {
			t.Fatalf("timer = %v, want 4ms", v)
		}
	})
}

func TestSnapshotDeltaReset(t *testing.T) {
	withClean(t, func() {
		Enable()
		PipelineValuesUnpacked.Add(100)
		before := Capture()
		if before["pipeline.values_unpacked"] != 100 {
			t.Fatalf("snapshot = %v", before["pipeline.values_unpacked"])
		}
		PipelineValuesUnpacked.Add(42)
		PrunePagesValue.Inc()
		d := Capture().Delta(before)
		if d["pipeline.values_unpacked"] != 42 {
			t.Fatalf("delta = %d, want 42", d["pipeline.values_unpacked"])
		}
		if d["prune.pages_skipped_value"] != 1 {
			t.Fatalf("delta = %d, want 1", d["prune.pages_skipped_value"])
		}
		if d["engine.queries"] != 0 {
			t.Fatalf("untouched counter delta = %d", d["engine.queries"])
		}
		Reset()
		if v := Capture()["pipeline.values_unpacked"]; v != 0 {
			t.Fatalf("post-reset = %d", v)
		}
	})
}

func TestDumpSortedAndComplete(t *testing.T) {
	withClean(t, func() {
		Enable()
		TransportCRCFailures.Add(7)
		var b strings.Builder
		if err := Dump(&b); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(b.String()), "\n")
		want := len(registry) + len(gaugeRegistry) + 5*len(histRegistry)
		if len(lines) != want {
			t.Fatalf("dump has %d lines, want %d (%d counters + %d gauges + 5x%d histograms)",
				len(lines), want, len(registry), len(gaugeRegistry), len(histRegistry))
		}
		for i := 1; i < len(lines); i++ {
			if lines[i-1] >= lines[i] {
				t.Fatalf("dump not sorted: %q before %q", lines[i-1], lines[i])
			}
		}
		if !strings.Contains(b.String(), "transport.crc_failures 7") {
			t.Fatalf("dump missing value:\n%s", b.String())
		}
	})
}

func TestMetricsNamesUniqueAndHelpful(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Metrics() {
		if seen[m.Name] {
			t.Fatalf("duplicate metric name %q", m.Name)
		}
		seen[m.Name] = true
		if m.Help == "" {
			t.Fatalf("metric %q has no help text", m.Name)
		}
	}
}

// TestHotPathAllocs is the acceptance check that counter and timer
// updates allocate nothing, enabled or not.
func TestHotPathAllocs(t *testing.T) {
	withClean(t, func() {
		for _, on := range []bool{false, true} {
			if on {
				Enable()
			} else {
				Disable()
			}
			if n := testing.AllocsPerRun(1000, func() {
				PipelineValuesUnpacked.Add(1024)
				StorageBytesScanned.Add(4096)
				EngineTimeDecode.AddNanos(500)
			}); n != 0 {
				t.Fatalf("enabled=%v: counter hot path allocates %.1f/op", on, n)
			}
		}
	})
}

// The overhead benchmarks back docs/OBSERVABILITY.md's numbers: run with
//
//	go test -bench=Counter -benchmem ./internal/obs
func BenchmarkCounterDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PipelineValuesUnpacked.Add(1)
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PipelineValuesUnpacked.Add(1)
	}
}

func BenchmarkTimerSinceDisabled(b *testing.B) {
	Disable()
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EngineTimeQuery.Since(start)
	}
}
