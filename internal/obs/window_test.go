package obs

import (
	"testing"
	"time"
)

// TestWindowRatesDeterministicClock drives a small ring with a
// synthetic clock across more ticks than it has slots and checks the
// derived rates at every horizon: deltas divide by the actual elapsed
// time between the samples used, the window floor bounds how far back
// the walk goes, and wrap-around discards exactly the overwritten
// history.
func TestWindowRatesDeterministicClock(t *testing.T) {
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	// 1s interval, 4s span → 6 ring slots.
	w := NewWindow(time.Second, 4*time.Second)
	if _, ok := w.Stats(time.Second); ok {
		t.Fatal("Stats reported ok with no samples")
	}
	base := time.Unix(1_700_000_000, 0)
	// Tick 10 times (wrapping the 6-slot ring), bumping a counter by 10
	// and the query histogram by one observation per second.
	for i := 0; i < 10; i++ {
		EngineQueries.Add(10)
		EngineHistQuery.Observe(int64(1000 << i)) // distinct bucket per tick
		w.Tick(base.Add(time.Duration(i) * time.Second))
	}
	// 2-second horizon: newest sample at t=9, base at t=7.
	ws, ok := w.Stats(2 * time.Second)
	if !ok {
		t.Fatal("Stats(2s) not ok")
	}
	if ws.Seconds != 2 {
		t.Fatalf("Stats(2s) spans %.1fs, want 2", ws.Seconds)
	}
	if got := ws.Delta["engine.queries"]; got != 20 {
		t.Errorf("2s delta = %d, want 20 (two ticks of 10)", got)
	}
	if got := ws.Rate("engine.queries"); got != 10 {
		t.Errorf("2s rate = %.1f/s, want 10", got)
	}
	if got := ws.Hists["engine.hist.query_ns"].Count; got != 2 {
		t.Errorf("2s histogram delta count = %d, want 2", got)
	}
	if got := ws.Last["engine.queries"]; got != 100 {
		t.Errorf("Last = %d, want the absolute 100", got)
	}

	// A horizon wider than the retained history clamps to the oldest
	// surviving sample: 10 ticks through 6 slots leaves t=4..9, so the
	// widest stats span 5 seconds, not the requested 60.
	ws, ok = w.Stats(time.Minute)
	if !ok {
		t.Fatal("Stats(1m) not ok")
	}
	if ws.Seconds != 5 {
		t.Fatalf("Stats(1m) spans %.1fs after wrap, want the 5 retained", ws.Seconds)
	}
	if got := ws.Delta["engine.queries"]; got != 50 {
		t.Errorf("wrapped delta = %d, want 50", got)
	}
	if got := ws.Hists["engine.hist.query_ns"].Count; got != 5 {
		t.Errorf("wrapped histogram delta count = %d, want 5", got)
	}
}

// TestWindowGaugesAreLastValue checks gauges report the newest sampled
// value, not a delta.
func TestWindowGaugesAreLastValue(t *testing.T) {
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	w := NewWindow(time.Second, 10*time.Second)
	base := time.Unix(1_700_000_000, 0)
	w.Tick(base)
	w.Tick(base.Add(time.Second))
	ws, ok := w.Stats(5 * time.Second)
	if !ok {
		t.Fatal("Stats not ok")
	}
	// Tick samples the runtime, so the goroutine gauge is live.
	if got := ws.Gauges["go.goroutines"]; got <= 0 {
		t.Errorf("go.goroutines gauge = %d, want > 0", got)
	}
}

// TestWindowStartStop smoke-tests the production sampler goroutine.
func TestWindowStartStop(t *testing.T) {
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	w := NewWindow(time.Millisecond, 100*time.Millisecond)
	stop := w.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := w.Stats(time.Second); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler produced no usable window within 2s")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
}
