package obs

import (
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentSnapshotDeltaReset hammers the read side of the registry
// (Capture, Delta, Dump, CaptureHistograms, Reset, Enable/Disable) from
// GOMAXPROCS goroutines while an equal number of writers update counters
// and histograms. Run under -race in CI, it proves the lock-free design
// holds: no data races, and every observed snapshot is well-formed
// (non-negative counts, bucket sums matching the derived count).
func TestConcurrentSnapshotDeltaReset(t *testing.T) {
	withClean(t, func() {
		Enable()
		workers := runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
		const iters = 500
		var wg sync.WaitGroup

		// Writers: counters, timers and histograms.
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				for i := int64(0); i < iters; i++ {
					EngineQueries.Inc()
					PipelineValuesUnpacked.Add(seed + i)
					EngineTimeDecode.AddNanos(100 + i)
					EngineHistQuery.Observe(seed*1000 + i)
					EngineHistPageDecode.Observe(i)
				}
			}(int64(w))
		}

		// Readers: snapshot, delta, dump and histogram capture.
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				prev := Capture()
				for i := 0; i < iters/10; i++ {
					cur := Capture()
					_ = cur.Delta(prev)
					prev = cur
					for _, hs := range CaptureHistograms() {
						var total int64
						for _, b := range hs.Buckets {
							if b < 0 {
								t.Errorf("histogram %s: negative bucket %d", hs.Name, b)
								return
							}
							total += b
						}
						if total != hs.Count {
							t.Errorf("histogram %s: bucket total %d != count %d", hs.Name, total, hs.Count)
							return
						}
						_ = hs.Quantile(0.99)
					}
				}
			}()
		}

		// Resetters and gate flippers: the destructive operations the
		// snapshotters must survive.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/25; i++ {
				Reset()
				Disable()
				Enable()
			}
		}()

		wg.Wait()
	})
}
