package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of power-of-two histogram buckets. Bucket 0
// counts observations of value 0 (and clamped negatives); bucket b for
// b >= 1 counts values in [2^(b-1), 2^b). 64 buckets cover the full
// non-negative int64 range, so no observation is ever dropped.
const HistBuckets = 64

// Histogram is a lock-free distribution metric: a fixed array of
// power-of-two buckets plus a sum and a count, all atomic int64s behind
// the same package-wide enable gate as Counter. An Observe is bucket
// selection (one bits.Len64) plus three atomic adds — no locks, no
// allocation — so per-query stage latencies and per-page decode costs
// can be recorded even on instrumented paths that run millions of times.
//
// Quantiles are estimated from the bucket counts with linear
// interpolation inside the winning bucket, so the relative error of a
// reported quantile is bounded by the bucket's width: at most a factor
// of two, and in practice far less for smooth latency distributions
// (docs/OBSERVABILITY.md quantifies the bounds).
type Histogram struct {
	buckets [HistBuckets]atomic.Int64 //etsqp:atomic
	sum     atomic.Int64              //etsqp:atomic
	count   atomic.Int64              //etsqp:atomic
	ex      [HistBuckets]exemplarCell
	name    string
	help    string
}

// exemplarCell retains the most recent exemplar landed in one bucket: a
// value, its trace ID and a timestamp. The cell is a seqlock built from
// atomics so readers and the writer never race at the memory level (the
// race detector sees only atomic traffic) while the sequence word still
// guarantees the three fields are read as a consistent triple: the
// writer CASes seq even→odd, stores the fields, then publishes seq+2; a
// reader that observes an odd or changed seq retries. A writer that
// loses the CAS simply skips — the cell holds "most recent", so a
// concurrent writer's exemplar is an equally good winner.
type exemplarCell struct {
	seq atomic.Uint64          //etsqp:atomic
	val atomic.Int64           //etsqp:atomic
	at  atomic.Int64           //etsqp:atomic — unix nanoseconds
	id  atomic.Pointer[string] //etsqp:atomic
}

// histBucket maps a value to its bucket index. Negative values clamp to
// bucket 0: stage timers can only produce non-negative nanoseconds, but
// a clamp is cheaper and safer than a branchy error path.
//
//etsqp:inline
func histBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value when collection is enabled. It never
// allocates; when disabled it is a single atomic load and branch.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	h.buckets[histBucket(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveN records n observations of the same value when collection is
// enabled — the bulk form runtime-histogram importers use to fold
// per-bucket count deltas into the registry without n separate calls.
func (h *Histogram) ObserveN(v, n int64) {
	if n <= 0 || !enabled.Load() {
		return
	}
	h.buckets[histBucket(v)].Add(n)
	h.sum.Add(v * n)
	h.count.Add(n)
}

// ObserveExemplar records one value like Observe and, when traceID is
// non-empty, retains it as the bucket's exemplar: the most recent
// (value, trace ID, timestamp) triple that landed there, exposed in
// OpenMetrics exemplar syntax on /metrics so a histogram bucket links
// back to the trace that filled it. The exemplar store is best-effort
// under contention (a concurrent writer wins the cell and this one
// skips); the bucket counts themselves are always exact.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	if !enabled.Load() {
		return
	}
	b := histBucket(v)
	h.buckets[b].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	if traceID == "" {
		return
	}
	cell := &h.ex[b]
	seq := cell.seq.Load()
	if seq&1 != 0 || !cell.seq.CompareAndSwap(seq, seq+1) {
		return // another writer owns the cell; newest-wins either way
	}
	cell.val.Store(v)
	cell.at.Store(time.Now().UnixNano())
	cell.id.Store(&traceID)
	cell.seq.Store(seq + 2)
}

// Exemplar is one retained (value, trace ID, timestamp) triple.
type Exemplar struct {
	Value     int64
	TraceID   string
	UnixNanos int64
}

// Exemplars returns the current exemplar of every bucket that has one,
// keyed by bucket index. Each cell is read under its sequence word, so
// every returned triple is consistent; a cell whose writer is mid-update
// after a few retries is skipped rather than returned torn.
func (h *Histogram) Exemplars() map[int]Exemplar {
	var out map[int]Exemplar
	for b := range h.ex {
		cell := &h.ex[b]
		for attempt := 0; attempt < 4; attempt++ {
			s1 := cell.seq.Load()
			if s1 == 0 {
				break // never written
			}
			if s1&1 != 0 {
				continue // writer mid-update
			}
			v := cell.val.Load()
			at := cell.at.Load()
			idp := cell.id.Load()
			if cell.seq.Load() != s1 {
				continue
			}
			if idp == nil {
				break
			}
			if out == nil {
				out = make(map[int]Exemplar)
			}
			out[b] = Exemplar{Value: v, TraceID: *idp, UnixNanos: at}
			break
		}
	}
	return out
}

// Name returns the registered dotted metric name.
func (h *Histogram) Name() string { return h.name }

// Help returns the one-line metric description.
func (h *Histogram) Help() string { return h.help }

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of recorded observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Snapshot copies the histogram's current state. Buckets are read one by
// one, so a snapshot taken during concurrent writes is a slightly torn
// but always well-formed view (every bucket value did occur).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Name: h.name}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = h.sum.Load()
	return s
}

// reset zeroes the histogram, dropping retained exemplars.
func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sum.Store(0)
	h.count.Store(0)
	for i := range h.ex {
		h.ex[i].id.Store(nil)
		h.ex[i].val.Store(0)
		h.ex[i].at.Store(0)
		h.ex[i].seq.Store(0)
	}
}

// HistogramSnapshot is a point-in-time copy of one histogram. Count is
// derived from the bucket sum so quantile math is internally consistent
// even when the snapshot races concurrent writers.
type HistogramSnapshot struct {
	Name    string
	Buckets [HistBuckets]int64
	Sum     int64
	Count   int64
}

// BucketUpperBound returns the exclusive upper bound of bucket i: 1 for
// bucket 0 (zero values), 2^i for the rest, +Inf for the last bucket
// (whose nominal bound would overflow int64).
func BucketUpperBound(i int) float64 {
	if i <= 0 {
		return 1
	}
	if i >= HistBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, i)
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts, interpolating linearly within the winning bucket. The estimate
// always lies within the winning bucket's [lo, hi) range — p100 of
// all-value-3 observations reports a value in [2, 4), never 4. An empty
// histogram reports 0.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if seen+fc < rank {
			seen += fc
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = math.Ldexp(1, i-1)
		}
		hi := BucketUpperBound(i)
		if math.IsInf(hi, 1) {
			return lo // top bucket: report its lower bound
		}
		// Clamp the in-bucket rank to fc-0.5 so frac < 1 and the estimate
		// stays inside [lo, hi): when the rank lands exactly on a bucket
		// boundary, interpolating to frac = 1 would report the exclusive
		// upper bound — a value no observation in the bucket can have.
		r := rank - seen
		if r > fc-0.5 {
			r = fc - 0.5
		}
		return lo + (hi-lo)*(r/fc)
	}
	return 0
}

// Delta returns this snapshot minus prev, bucket by bucket — the
// distribution of observations between two snapshots.
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{Name: s.Name}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
		d.Count += d.Buckets[i]
	}
	d.Sum = s.Sum - prev.Sum
	return d
}

// histRegistry holds every histogram in declaration order. Like the
// counter registry it is fully built by package init, so reads need no
// lock.
var histRegistry []*Histogram

func newHistogram(name, help string) *Histogram {
	h := &Histogram{name: name, help: help}
	histRegistry = append(histRegistry, h)
	return h
}

// CaptureHistograms copies the current state of every registered
// histogram, in declaration order.
func CaptureHistograms() []HistogramSnapshot {
	out := make([]HistogramSnapshot, len(histRegistry))
	for i, h := range histRegistry {
		out[i] = h.Snapshot()
	}
	return out
}

// HistogramExemplars pairs one histogram's name with its current
// per-bucket exemplars.
type HistogramExemplars struct {
	Name     string
	ByBucket map[int]Exemplar
}

// CaptureExemplars copies the current exemplars of every registered
// histogram, in declaration order (index-aligned with Histograms and
// CaptureHistograms). Histograms with no exemplars contribute a nil map.
func CaptureExemplars() []HistogramExemplars {
	out := make([]HistogramExemplars, len(histRegistry))
	for i, h := range histRegistry {
		out[i] = HistogramExemplars{Name: h.name, ByBucket: h.Exemplars()}
	}
	return out
}

// Histograms lists every registered histogram (name and help) in
// declaration order, for documentation and exporter surfaces.
func Histograms() []struct{ Name, Help string } {
	out := make([]struct{ Name, Help string }, len(histRegistry))
	for i, h := range histRegistry {
		out[i] = struct{ Name, Help string }{h.name, h.help}
	}
	return out
}
