package obs

import "sync/atomic"

// Gauge is a point-in-time metric: a sampled value that can move both
// ways (goroutine count, heap bytes in use), as opposed to a Counter's
// monotone accumulation. It shares the Counter's storage discipline —
// one atomic int64 behind the package-wide enable gate — so a Set on a
// disabled registry is a single atomic load and branch, and neither
// path allocates.
type Gauge struct {
	v    atomic.Int64 //etsqp:atomic
	name string
	help string
}

// Set records the sampled value when collection is enabled.
func (g *Gauge) Set(v int64) {
	if enabled.Load() {
		g.v.Store(v)
	}
}

// Load returns the most recently recorded value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Name returns the registered dotted metric name.
func (g *Gauge) Name() string { return g.name }

// Help returns the one-line metric description.
func (g *Gauge) Help() string { return g.help }

// gaugeRegistry holds every gauge in declaration order. Like the counter
// registry it is fully built by package init, so reads need no lock.
var gaugeRegistry []*Gauge

func newGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	gaugeRegistry = append(gaugeRegistry, g)
	return g
}

// CaptureGauges copies the current value of every registered gauge,
// keyed by metric name.
func CaptureGauges() Snapshot {
	s := make(Snapshot, len(gaugeRegistry))
	for _, g := range gaugeRegistry {
		s[g.name] = g.v.Load()
	}
	return s
}

// Gauges lists every registered gauge (name and help) in declaration
// order, for documentation and exporter surfaces.
func Gauges() []struct{ Name, Help string } {
	out := make([]struct{ Name, Help string }, len(gaugeRegistry))
	for i, g := range gaugeRegistry {
		out[i] = struct{ Name, Help string }{g.name, g.help}
	}
	return out
}
