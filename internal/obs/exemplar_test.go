package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestObserveExemplarStampsBucket checks an exemplar lands in the same
// bucket as its observation and carries the trace ID, value, and a
// timestamp.
func TestObserveExemplarStampsBucket(t *testing.T) {
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	EngineHistQuery.Observe(1000)                    // no exemplar
	EngineHistQuery.ObserveExemplar(1000, "aaaa")    // bucket 10
	EngineHistQuery.ObserveExemplar(1_000_000, "bb") // bucket 20
	ex := EngineHistQuery.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("got %d exemplar buckets, want 2: %v", len(ex), ex)
	}
	e10, ok := ex[histBucket(1000)]
	if !ok || e10.TraceID != "aaaa" || e10.Value != 1000 {
		t.Errorf("bucket %d exemplar = %+v, want trace aaaa value 1000", histBucket(1000), e10)
	}
	e20, ok := ex[histBucket(1_000_000)]
	if !ok || e20.TraceID != "bb" || e20.Value != 1_000_000 {
		t.Errorf("bucket %d exemplar = %+v, want trace bb value 1000000", histBucket(1_000_000), e20)
	}
	if e10.UnixNanos <= 0 || e20.UnixNanos <= 0 {
		t.Error("exemplars missing timestamps")
	}
	// Newest-wins within a bucket.
	EngineHistQuery.ObserveExemplar(1001, "cccc")
	if e := EngineHistQuery.Exemplars()[histBucket(1001)]; e.TraceID != "cccc" {
		t.Errorf("bucket exemplar = %+v, want the newer trace cccc", e)
	}
	// The observation itself still counted.
	if got := EngineHistQuery.Snapshot().Count; got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
}

// TestObserveExemplarDisabledOrEmpty checks the gates: disabled
// collection and empty trace IDs leave no exemplar.
func TestObserveExemplarDisabledOrEmpty(t *testing.T) {
	Reset()
	EngineHistQuery.ObserveExemplar(1000, "off") // disabled: no-op
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	EngineHistQuery.ObserveExemplar(1000, "") // counted, but no exemplar
	if got := len(EngineHistQuery.Exemplars()); got != 0 {
		t.Errorf("got %d exemplars, want 0", got)
	}
	if got := EngineHistQuery.Snapshot().Count; got != 1 {
		t.Errorf("count = %d, want 1 (empty-ID observation still counts)", got)
	}
	// Reset clears exemplars.
	EngineHistQuery.ObserveExemplar(1000, "x")
	Reset()
	if got := len(EngineHistQuery.Exemplars()); got != 0 {
		t.Errorf("Reset left %d exemplars", got)
	}
}

// TestCaptureExemplarsAligned checks the capture is index-aligned with
// the histogram registry, so the exposition can zip the three captures.
func TestCaptureExemplarsAligned(t *testing.T) {
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	EngineHistQuery.ObserveExemplar(2000, "dddd")
	hists := Histograms()
	caps := CaptureExemplars()
	if len(caps) != len(hists) {
		t.Fatalf("CaptureExemplars returned %d entries, registry has %d", len(caps), len(hists))
	}
	found := false
	for i, c := range caps {
		if c.Name != hists[i].Name {
			t.Errorf("entry %d: name %q, registry %q", i, c.Name, hists[i].Name)
		}
		if c.Name == "engine.hist.query_ns" {
			found = len(c.ByBucket) == 1
		}
	}
	if !found {
		t.Error("engine.hist.query_ns exemplar missing from capture")
	}
}

// TestExemplarRace hammers ObserveExemplar against concurrent readers;
// the seqlock must keep every returned exemplar internally consistent
// (a trace ID always paired with its own value) and the run clean under
// -race.
func TestExemplarRace(t *testing.T) {
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	const writers, readers, rounds = 4, 4, 2000
	ids := make([]string, writers)
	for i := range ids {
		// Writer w only ever records value 1000+w with trace ID "w<w>",
		// all landing in one bucket, so a torn read would surface as a
		// mismatched (value, id) pair.
		ids[i] = fmt.Sprintf("w%d", i)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				EngineHistQuery.ObserveExemplar(int64(1000+w), ids[w])
			}
		}()
	}
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for b, e := range EngineHistQuery.Exemplars() {
					w := e.Value - 1000
					if w < 0 || w >= writers || e.TraceID != ids[w] {
						select {
						case errs <- fmt.Sprintf("bucket %d: torn exemplar %+v", b, e):
						default:
						}
						return
					}
				}
				CaptureExemplars() // registry-wide read path too
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}
