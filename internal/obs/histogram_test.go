package obs

import (
	"math"
	"testing"
)

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {math.MaxInt64, 63},
	}
	for _, tc := range cases {
		if got := histBucket(tc.v); got != tc.want {
			t.Errorf("histBucket(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// Bucket b (b >= 1) must cover [2^(b-1), 2^b); the exported bounds
	// must agree with the bucketing function.
	for b := 1; b < HistBuckets-1; b++ {
		lo := int64(1) << (b - 1)
		hi := int64(1)<<b - 1
		if histBucket(lo) != b || histBucket(hi) != b {
			t.Fatalf("bucket %d does not cover [%d, %d]", b, lo, hi)
		}
		if ub := BucketUpperBound(b); ub != math.Ldexp(1, b) {
			t.Fatalf("BucketUpperBound(%d) = %v", b, ub)
		}
	}
	if !math.IsInf(BucketUpperBound(HistBuckets-1), 1) {
		t.Fatal("top bucket upper bound must be +Inf")
	}
}

func TestHistogramDisabledDropsObservations(t *testing.T) {
	withClean(t, func() {
		EngineHistQuery.Observe(1000)
		if EngineHistQuery.Count() != 0 {
			t.Fatalf("disabled histogram moved: count=%d", EngineHistQuery.Count())
		}
	})
}

func TestHistogramObserveAndQuantiles(t *testing.T) {
	withClean(t, func() {
		Enable()
		// 100 observations uniform in [0, 1000): quantiles must land
		// within the power-of-two bucket error bound (a factor of two).
		for i := int64(0); i < 100; i++ {
			EngineHistQuery.Observe(i * 10)
		}
		s := EngineHistQuery.Snapshot()
		if s.Count != 100 {
			t.Fatalf("count = %d, want 100", s.Count)
		}
		if want := int64(10 * 99 * 100 / 2); s.Sum != want {
			t.Fatalf("sum = %d, want %d", s.Sum, want)
		}
		p50 := s.Quantile(0.50)
		if p50 < 256 || p50 > 1024 {
			t.Errorf("p50 = %v, want within a bucket of ~500", p50)
		}
		p99 := s.Quantile(0.99)
		if p99 < 512 || p99 > 1024 {
			t.Errorf("p99 = %v, want within a bucket of ~990", p99)
		}
		if q0 := s.Quantile(0); q0 < 0 || q0 > 1 {
			t.Errorf("q0 = %v, want ~0", q0)
		}
	})
}

// TestHistogramQuantileStaysInBucket pins the boundary behavior: when
// the rank lands exactly on a bucket boundary the estimate must stay
// inside the winning bucket's [lo, hi) range, not report the exclusive
// upper bound.
func TestHistogramQuantileStaysInBucket(t *testing.T) {
	withClean(t, func() {
		Enable()
		// All observations are 3: every quantile lives in bucket [2, 4).
		for i := 0; i < 10; i++ {
			EngineHistQuery.Observe(3)
		}
		s := EngineHistQuery.Snapshot()
		for _, q := range []float64{0, 0.5, 0.9, 1} {
			if v := s.Quantile(q); v < 2 || v >= 4 {
				t.Errorf("Quantile(%v) = %v, want within [2, 4)", q, v)
			}
		}
		// A boundary rank between two occupied buckets must not overshoot
		// the lower bucket either: 5 obs in [2,4), 5 in [4,8) puts the
		// p50 rank exactly on the bucket edge.
		Reset()
		for i := 0; i < 5; i++ {
			EngineHistQuery.Observe(3)
			EngineHistQuery.Observe(5)
		}
		s = EngineHistQuery.Snapshot()
		if v := s.Quantile(0.5); v < 2 || v >= 4 {
			t.Errorf("boundary p50 = %v, want within the lower bucket [2, 4)", v)
		}
	})
}

func TestHistogramDelta(t *testing.T) {
	withClean(t, func() {
		Enable()
		EngineHistDecode.Observe(100)
		before := EngineHistDecode.Snapshot()
		EngineHistDecode.Observe(5000)
		EngineHistDecode.Observe(5001)
		d := EngineHistDecode.Snapshot().Delta(before)
		if d.Count != 2 {
			t.Fatalf("delta count = %d, want 2", d.Count)
		}
		if d.Sum != 10001 {
			t.Fatalf("delta sum = %d, want 10001", d.Sum)
		}
		if d.Buckets[histBucket(100)] != 0 {
			t.Fatal("delta kept pre-snapshot observation")
		}
	})
}

func TestHistogramResetViaReset(t *testing.T) {
	withClean(t, func() {
		Enable()
		TransportHistFrameBytes.Observe(64)
		Reset()
		if TransportHistFrameBytes.Count() != 0 || TransportHistFrameBytes.Sum() != 0 {
			t.Fatal("Reset did not zero histogram")
		}
	})
}

func TestHistogramNamesRegisteredAndHelpful(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Metrics() {
		seen[m.Name] = true
	}
	for _, h := range Histograms() {
		if seen[h.Name] {
			t.Fatalf("histogram %q collides with a counter name", h.Name)
		}
		if seen["h:"+h.Name] {
			t.Fatalf("duplicate histogram name %q", h.Name)
		}
		seen["h:"+h.Name] = true
		if h.Help == "" {
			t.Fatalf("histogram %q has no help text", h.Name)
		}
	}
}

// TestHistogramHotPathAllocs extends the zero-allocation acceptance
// check to Observe, enabled or not.
func TestHistogramHotPathAllocs(t *testing.T) {
	withClean(t, func() {
		for _, on := range []bool{false, true} {
			if on {
				Enable()
			} else {
				Disable()
			}
			if n := testing.AllocsPerRun(1000, func() {
				EngineHistPageDecode.Observe(4096)
				EngineHistSliceRows.Observe(1024)
			}); n != 0 {
				t.Fatalf("enabled=%v: Observe allocates %.1f/op", on, n)
			}
		}
	})
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EngineHistPageDecode.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EngineHistPageDecode.Observe(int64(i))
	}
}
