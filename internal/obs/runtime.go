package obs

import (
	"math"
	"runtime/metrics"
	"sync"
)

// Go runtime telemetry: sampled from runtime/metrics into the registry
// so /metrics exposes runtime health (etsqp_go_* families) without the
// operator scraping pprof. Gauges hold the latest sample; the GC cycle
// counter advances by the per-sample delta so it keeps counter
// semantics; the GC pause histogram folds the runtime's cumulative
// pause distribution into the registry's power-of-two nanosecond
// buckets by observing per-bucket count deltas at each runtime bucket's
// midpoint (the first sample only records the baseline).
var (
	GoGoroutines = newGauge("go.goroutines",
		"live goroutines at the last runtime sample")
	GoHeapInuse = newGauge("go.heap_inuse_bytes",
		"heap bytes in use (live objects plus unswept span slack) at the last runtime sample")
	GoGCCycles = newCounter("go.gc_cycles",
		"completed GC cycles (monotonic, fed by per-sample deltas from runtime/metrics)")
	GoHistGCPause = newHistogram("go.hist.gc_pause_ns",
		"distribution of GC stop-the-world pause times")
)

// runtimeSamples is the fixed runtime/metrics query set. Indices match
// the reads in SampleRuntime.
var runtimeSamples = []metrics.Sample{
	{Name: "/sched/goroutines:goroutines"},
	{Name: "/memory/classes/heap/objects:bytes"},
	{Name: "/memory/classes/heap/unused:bytes"},
	{Name: "/gc/cycles/total:gc-cycles"},
	{Name: "/gc/pauses:seconds"},
}

var (
	runtimeMu sync.Mutex
	// lastPauseCounts remembers the cumulative per-bucket pause counts of
	// the previous sample so only new pauses are folded into the
	// histogram.
	lastPauseCounts []uint64 //etsqp:guardedby runtimeMu
	// lastGCCycles remembers the previous cumulative GC cycle count so
	// GoGCCycles advances by the delta each sample.
	lastGCCycles uint64 //etsqp:guardedby runtimeMu
)

// SampleRuntime reads the runtime metrics into the go.* gauges and the
// GC pause histogram. It is called on every /metrics scrape and every
// Window tick; the mutex serializes concurrent samplers so the pause
// deltas are never double-counted. A no-op while collection is off.
func SampleRuntime() {
	if !enabled.Load() {
		return
	}
	runtimeMu.Lock()
	defer runtimeMu.Unlock()
	metrics.Read(runtimeSamples)
	if v := &runtimeSamples[0].Value; v.Kind() == metrics.KindUint64 {
		GoGoroutines.Set(int64(v.Uint64()))
	}
	var heap uint64
	if v := &runtimeSamples[1].Value; v.Kind() == metrics.KindUint64 {
		heap += v.Uint64()
	}
	if v := &runtimeSamples[2].Value; v.Kind() == metrics.KindUint64 {
		heap += v.Uint64()
	}
	GoHeapInuse.Set(int64(heap))
	if v := &runtimeSamples[3].Value; v.Kind() == metrics.KindUint64 {
		// Fed as deltas so the counter stays monotone across obs.Reset()
		// (PromQL rate() needs counter semantics, which a gauge set to the
		// cumulative value would not give after a reset).
		if cur := v.Uint64(); cur >= lastGCCycles {
			GoGCCycles.Add(int64(cur - lastGCCycles))
			lastGCCycles = cur
		}
	}
	if v := &runtimeSamples[4].Value; v.Kind() == metrics.KindFloat64Histogram {
		feedPauseHistogram(v.Float64Histogram())
	}
}

// feedPauseHistogram folds the cumulative runtime pause histogram into
// GoHistGCPause: for each runtime bucket whose count grew since the
// previous sample, the new pauses are observed at the bucket's midpoint
// converted from seconds to nanoseconds.
func feedPauseHistogram(h *metrics.Float64Histogram) {
	if h == nil || len(h.Counts) == 0 || len(h.Buckets) != len(h.Counts)+1 {
		return
	}
	if len(lastPauseCounts) != len(h.Counts) {
		// First sample (or a runtime bucket-layout change): record the
		// baseline without observing. Folding the cumulative counts in here
		// would replay the process's entire pre-enable pause history into
		// the histogram as if those pauses just happened.
		lastPauseCounts = make([]uint64, len(h.Counts))
		copy(lastPauseCounts, h.Counts)
		return
	}
	for i, c := range h.Counts {
		prev := lastPauseCounts[i]
		lastPauseCounts[i] = c
		if c <= prev {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := midpointSeconds(lo, hi)
		GoHistGCPause.ObserveN(int64(mid*1e9), int64(c-prev))
	}
}

// midpointSeconds picks a representative value for a runtime histogram
// bucket, tolerating the ±Inf bounds of the edge buckets.
func midpointSeconds(lo, hi float64) float64 {
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi / 2
	case math.IsInf(hi, 1):
		return lo
	default:
		return (lo + hi) / 2
	}
}
