// Package linttest runs analyzers over fixture modules and checks their
// diagnostics against expectations written in the fixture source, in the
// style of golang.org/x/tools/go/analysis/analysistest:
//
//	buf := make([]int64, n) // want `hot path Kernel calls make \(allocates\)`
//
// A `// want` comment holds one or more quoted regular expressions; each
// must match exactly one diagnostic reported on that line. Diagnostics
// without a matching expectation, and expectations without a matching
// diagnostic, fail the test.
package linttest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"etsqp/internal/lint"
)

type wantExp struct {
	re   *regexp.Regexp
	used bool
}

type posKey struct {
	file string
	line int
}

// Run loads the fixture module rooted at dir (which must contain its own
// go.mod so the surrounding module's build ignores it), runs the given
// analyzers and compares diagnostics with the fixture's want comments.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	m, err := lint.Load(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.Run(m, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	CheckExpectations(t, m, diags)
}

// CheckExpectations compares diagnostics (however produced — analyzers
// here, compiler facts in vettest) against the module's want comments.
func CheckExpectations(t *testing.T, m *lint.Module, diags []lint.Diagnostic) {
	t.Helper()
	wants := collectWants(t, m)
	for _, d := range diags {
		key := posKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

// collectWants scans every fixture file for `// want "re" ...` comments.
func collectWants(t *testing.T, m *lint.Module) map[posKey][]*wantExp {
	t.Helper()
	wants := map[posKey][]*wantExp{}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					key := posKey{pos.Filename, pos.Line}
					for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
						q, err := strconv.QuotedPrefix(rest)
						if err != nil {
							t.Fatalf("%s: malformed want comment %q: %v", pos, c.Text, err)
						}
						rest = rest[len(q):]
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: unquoting %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: compiling want pattern %q: %v", pos, pat, err)
						}
						wants[key] = append(wants[key], &wantExp{re: re})
					}
				}
			}
		}
	}
	return wants
}
