package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked analysis unit: a directory's package
// including its in-package _test.go files (external foo_test packages are
// skipped — the invariants under check live in the shipped code, but
// in-package tests exercise internal APIs like plan construction and are
// analyzed too).
type Package struct {
	Path  string // full import path, e.g. "etsqp/internal/pipeline"
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is a loaded, fully type-checked module plus the function index
// the cross-package analyzers (reachability, hot-path closure) run on.
type Module struct {
	Path string // module path from go.mod
	Dir  string
	Fset *token.FileSet
	Pkgs []*Package

	// Funcs maps a canonical function key (types.Func.FullName) to its
	// declaration, package, annotations and static callees.
	Funcs map[string]*FuncInfo

	// Fields maps annotated struct fields (//etsqp:guardedby,
	// //etsqp:atomic) to their directives, keyed by name so lookups work
	// across analysis units.
	Fields map[FieldKey]*FieldDir
}

// loader type-checks the module bottom-up. Module-internal imports are
// resolved by recursively checking the non-test ("base") files of the
// imported directory; everything else (the standard library) is delegated
// to the source importer, so no export data or network is needed.
type loader struct {
	fset     *token.FileSet
	modPath  string
	root     string
	std      types.ImporterFrom
	base     map[string]*types.Package
	checking map[string]bool
}

// Load parses and type-checks the module rooted at dir (which must
// contain go.mod) and builds the function index.
func Load(dir string) (*Module, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:     fset,
		modPath:  modPath,
		root:     root,
		std:      importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		base:     map[string]*types.Package{},
		checking: map[string]bool{},
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	m := &Module{Path: modPath, Dir: root, Fset: fset}
	for _, d := range dirs {
		pkg, err := l.loadUnit(d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			m.Pkgs = append(m.Pkgs, pkg)
		}
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	m.buildIndex()
	return m, nil
}

// Import resolves an import path for the type checker.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		return l.loadBase(path)
	}
	return l.std.ImportFrom(path, srcDir, 0)
}

// loadBase type-checks the non-test files of a module-internal package.
func (l *loader) loadBase(path string) (*types.Package, error) {
	if p, ok := l.base[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer func() { l.checking[path] = false }()

	dir := filepath.Join(l.root, strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/"))
	files, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	l.base[path] = pkg
	return pkg, nil
}

// loadUnit builds the analysis unit for one directory: base files plus
// in-package test files, type-checked with full types.Info.
func (l *loader) loadUnit(dir string) (*Package, error) {
	files, testFiles, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return nil, err
	}
	path := l.modPath
	if rel != "." {
		path = l.modPath + "/" + filepath.ToSlash(rel)
	}
	// Ensure the base package is in the importer cache first so that
	// test-only imports of dependents never see the augmented package.
	if _, err := l.loadBase(path); err != nil {
		return nil, err
	}
	all := append(append([]*ast.File{}, files...), testFiles...)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, all, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s (with tests): %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: all, Types: tpkg, Info: info}, nil
}

// parseDir parses a directory's Go files, splitting them into base files
// and in-package test files. External (foo_test) test files and files for
// other package names are skipped.
func (l *loader) parseDir(dir string) (files, testFiles []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type parsed struct {
		f    *ast.File
		test bool
	}
	var all []parsed
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, parsed{f, strings.HasSuffix(name, "_test.go")})
	}
	// The package name is the one used by the non-test files.
	var pkgName string
	for _, p := range all {
		if !p.test {
			pkgName = p.f.Name.Name
			break
		}
	}
	if pkgName == "" {
		return nil, nil, nil // test-only directory
	}
	for _, p := range all {
		switch {
		case !p.test:
			files = append(files, p.f)
		case p.f.Name.Name == pkgName:
			testFiles = append(testFiles, p.f)
		}
	}
	return files, testFiles, nil
}

// packageDirs walks the module collecting directories that contain Go
// files, skipping nested modules, testdata and hidden directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			return nil
		}
		name := fi.Name()
		if path != root {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module (analyzer fixtures)
			}
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}
