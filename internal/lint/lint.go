// Package lint is a self-contained static-analysis framework for the
// ETSQP repository: a module loader built on the standard library's
// go/parser + go/types (no external dependencies), a function index with
// a static call graph and //etsqp: annotation support, and the Analyzer /
// Pass / Diagnostic plumbing that cmd/etsqp-lint drives.
//
// The shape mirrors golang.org/x/tools/go/analysis deliberately — an
// Analyzer has a Name, a Doc string and a Run function over a Pass — so
// the project-specific analyzers in internal/lint/analyzers read like
// ordinary vet checks. Unlike go/analysis, a Pass here sees the whole
// module at once: the invariants being enforced (hot-path allocation
// freedom, panic reachability from decode entry points) are properties of
// cross-package call chains, not of single packages.
//
// The annotation surface is documented in docs/STATIC_ANALYSIS.md:
//
//	//etsqp:hotpath  — function and its module-internal callees must not allocate
//	//etsqp:coldpath — stops the hot-path traversal (cached/amortized setup)
//	//etsqp:trusted  — panics here are accepted programmer-error guards
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"strings"

	"etsqp/internal/lint/findings"
)

// An Analyzer describes one invariant check over a loaded Module.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass carries one analyzer run over one module.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Module.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding. It is the shared schema of
// internal/lint/findings, so etsqp-lint and etsqp-vet findings are
// interchangeable (one sort order, one JSON shape, one problem matcher).
type Diagnostic = findings.Finding

// Run executes the analyzers over the module and returns all diagnostics
// sorted by position.
func Run(m *Module, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Module: m}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s: %w", a.Name, err)
		}
		out = append(out, pass.diags...)
	}
	Sort(out)
	return out, nil
}

// Sort orders diagnostics deterministically. It forwards to
// findings.Sort; kept so analyzers and tests can stay on the lint API.
func Sort(diags []Diagnostic) { findings.Sort(diags) }

// WriteJSON writes diagnostics as an indented JSON array (never null:
// zero findings encode as []), in the order given. It forwards to
// findings.WriteJSON.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	return findings.WriteJSON(w, diags)
}

// WalkStack walks the AST rooted at n, calling fn with each node and the
// stack of its ancestors (outermost first, not including n itself).
// Returning false from fn prunes the subtree.
func WalkStack(n ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(node, stack) {
			return false
		}
		stack = append(stack, node)
		return true
	})
}

// PathHasSuffix reports whether an import path ends in the given slash-
// separated suffix at a path-segment boundary. Analyzers match packages
// this way ("internal/obs", "pipeline") so they work identically on the
// real module and on test fixtures with a different module path.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
