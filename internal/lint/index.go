package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FuncInfo is the per-function record of the module index: declaration,
// package, //etsqp: annotations and the statically resolved
// module-internal callees.
type FuncInfo struct {
	Key         string // types.Func.FullName
	Decl        *ast.FuncDecl
	Pkg         *Package
	Obj         *types.Func
	Annotations map[string]bool // "hotpath", "coldpath", "trusted", ...
	Callees     []string        // keys of module functions statically called
}

// Annotated reports whether the function carries //etsqp:<name>.
func (f *FuncInfo) Annotated(name string) bool { return f.Annotations[name] }

// buildIndex populates Module.Funcs from the analysis units.
func (m *Module) buildIndex() {
	m.Funcs = map[string]*FuncInfo{}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{
					Key:         obj.FullName(),
					Decl:        fd,
					Pkg:         pkg,
					Obj:         obj,
					Annotations: parseAnnotations(fd.Doc),
				}
				if fd.Body != nil {
					fi.Callees = m.calleesOf(pkg, fd.Body)
				}
				m.Funcs[fi.Key] = fi
			}
		}
	}
}

// calleesOf resolves the module-internal functions statically called
// anywhere in body (including inside function literals).
func (m *Module) calleesOf(pkg *Package, body *ast.BlockStmt) []string {
	seen := map[string]bool{}
	var out []string
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := CalleeFunc(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		if path != m.Path && !strings.HasPrefix(path, m.Path+"/") {
			return true
		}
		key := fn.FullName()
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
		return true
	})
	return out
}

// CalleeFunc resolves the *types.Func a call expression statically
// invokes, or nil for builtins, conversions and dynamic calls through
// function values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// parseAnnotations extracts //etsqp:<word> directives from a doc comment.
func parseAnnotations(doc *ast.CommentGroup) map[string]bool {
	out := map[string]bool{}
	if doc == nil {
		return out
	}
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, "//etsqp:"); ok {
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				rest = rest[:i]
			}
			if rest != "" {
				out[rest] = true
			}
		}
	}
	return out
}

// Closure returns the transitive closure of the given root function keys
// through module-internal calls. Functions annotated with any of the
// stopAt annotations are excluded and not traversed.
func (m *Module) Closure(roots []string, stopAt ...string) map[string]*FuncInfo {
	out := map[string]*FuncInfo{}
	var visit func(key string)
	visit = func(key string) {
		if _, done := out[key]; done {
			return
		}
		fi, ok := m.Funcs[key]
		if !ok {
			return
		}
		for _, s := range stopAt {
			if fi.Annotated(s) {
				return
			}
		}
		out[key] = fi
		for _, c := range fi.Callees {
			visit(c)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return out
}
