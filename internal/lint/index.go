package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FuncInfo is the per-function record of the module index: declaration,
// package, //etsqp: annotations and the statically resolved
// module-internal callees.
type FuncInfo struct {
	Key  string // types.Func.FullName
	Decl *ast.FuncDecl
	Pkg  *Package
	Obj  *types.Func
	// Annotations maps directive name to its argument ("" for bare
	// directives): "hotpath", "coldpath", "trusted", "locked mu", ...
	Annotations map[string]string
	Callees     []string // keys of module functions statically called
}

// Annotated reports whether the function carries //etsqp:<name>.
func (f *FuncInfo) Annotated(name string) bool {
	_, ok := f.Annotations[name]
	return ok
}

// AnnotationArg returns the argument of //etsqp:<name> <arg>, or "".
func (f *FuncInfo) AnnotationArg(name string) string { return f.Annotations[name] }

// A FieldKey identifies a struct field by name, not object identity:
// the loader type-checks a defining package once per importing unit, so
// *types.Var field objects differ across units while these strings match.
type FieldKey struct {
	PkgPath string // defining package import path
	Type    string // struct type name
	Field   string // field name
}

// FieldDir is a //etsqp: directive attached to a struct field (in the
// field's doc comment or trailing line comment):
//
//	//etsqp:guardedby <mutexField> — reads/writes require the named
//	    sync.Mutex/RWMutex in the same struct to be held
//	//etsqp:atomic — the field may only be touched through sync/atomic
//	//etsqp:bounds [lo, hi] — the field's value stays in the interval
//	    (a ')' closer makes hi exclusive); consumed by rangeflow.go
type FieldDir struct {
	Key       FieldKey
	GuardedBy string // mutex field name; "" when not guarded
	Atomic    bool
	Bounds    string    // raw //etsqp:bounds argument; "" when absent
	Pos       token.Pos // the annotated field name, for misannotation reports
}

// FieldOf resolves a field selection to its FieldKey, or false when the
// selection is not a direct (non-embedded) field of a named struct type.
func FieldOf(sel *types.Selection) (FieldKey, bool) {
	if sel == nil || sel.Kind() != types.FieldVal || len(sel.Index()) != 1 {
		return FieldKey{}, false
	}
	recv := sel.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return FieldKey{}, false
	}
	return FieldKey{
		PkgPath: named.Obj().Pkg().Path(),
		Type:    named.Obj().Name(),
		Field:   sel.Obj().Name(),
	}, true
}

// buildFieldIndex collects the //etsqp:guardedby and //etsqp:atomic
// field directives of every struct declaration in the module.
func (m *Module) buildFieldIndex() {
	m.Fields = map[FieldKey]*FieldDir{}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					m.indexStructFields(pkg, ts.Name.Name, st)
				}
			}
		}
	}
}

func (m *Module) indexStructFields(pkg *Package, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		anns := parseAnnotations(field.Doc)
		for name, arg := range parseAnnotations(field.Comment) {
			anns[name] = arg
		}
		guard, hasGuard := anns["guardedby"]
		// The argument is the first token; anything after it on the line
		// is free-form commentary.
		if f := strings.Fields(guard); len(f) > 0 {
			guard = f[0]
		} else {
			guard = ""
		}
		_, hasAtomic := anns["atomic"]
		bounds, hasBounds := anns["bounds"]
		if !hasGuard && !hasAtomic && !hasBounds {
			continue
		}
		for _, id := range field.Names {
			key := FieldKey{PkgPath: pkg.Path, Type: typeName, Field: id.Name}
			if _, dup := m.Fields[key]; dup {
				continue // same directive seen through another analysis unit
			}
			m.Fields[key] = &FieldDir{
				Key:       key,
				GuardedBy: guard,
				Atomic:    hasAtomic,
				Bounds:    bounds,
				Pos:       id.Pos(),
			}
		}
	}
}

// buildIndex populates Module.Funcs from the analysis units.
func (m *Module) buildIndex() {
	m.Funcs = map[string]*FuncInfo{}
	m.buildFieldIndex()
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{
					Key:         obj.FullName(),
					Decl:        fd,
					Pkg:         pkg,
					Obj:         obj,
					Annotations: parseAnnotations(fd.Doc),
				}
				if fd.Body != nil {
					fi.Callees = m.calleesOf(pkg, fd.Body)
				}
				m.Funcs[fi.Key] = fi
			}
		}
	}
}

// calleesOf resolves the module-internal functions statically called
// anywhere in body (including inside function literals).
func (m *Module) calleesOf(pkg *Package, body *ast.BlockStmt) []string {
	seen := map[string]bool{}
	var out []string
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := CalleeFunc(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		if path != m.Path && !strings.HasPrefix(path, m.Path+"/") {
			return true
		}
		key := fn.FullName()
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
		return true
	})
	return out
}

// CalleeFunc resolves the *types.Func a call expression statically
// invokes, or nil for builtins, conversions and dynamic calls through
// function values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// parseAnnotations extracts //etsqp:<word> [arg] directives from a doc
// or trailing comment group, keyed by directive name with the rest of
// the line (trimmed) as the argument.
func parseAnnotations(doc *ast.CommentGroup) map[string]string {
	out := map[string]string{}
	if doc == nil {
		return out
	}
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, "//etsqp:"); ok {
			name, arg := rest, ""
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				name, arg = rest[:i], strings.TrimSpace(rest[i+1:])
			}
			if name != "" {
				out[name] = arg
			}
		}
	}
	return out
}

// Closure returns the transitive closure of the given root function keys
// through module-internal calls. Functions annotated with any of the
// stopAt annotations are excluded and not traversed.
func (m *Module) Closure(roots []string, stopAt ...string) map[string]*FuncInfo {
	out := map[string]*FuncInfo{}
	var visit func(key string)
	visit = func(key string) {
		if _, done := out[key]; done {
			return
		}
		fi, ok := m.Funcs[key]
		if !ok {
			return
		}
		for _, s := range stopAt {
			if fi.Annotated(s) {
				return
			}
		}
		out[key] = fi
		for _, c := range fi.Callees {
			visit(c)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return out
}
