package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"etsqp/internal/lint"
)

// SharedWrite proves the Section III-C fan-out pattern write-disjoint:
// a goroutine spawned in a loop may write only to per-worker slots — a
// slice/array element indexed by the spawn loop variable (directly, with
// go 1.22 per-iteration semantics, or passed as a parameter) — and never
// to a plain shared variable. Reads of the slot-written results in the
// spawning function must come after a sync.WaitGroup Wait call.
//
// Channel sends are always allowed (they synchronize), and mutating
// shared state through method calls is not flagged — the mutex-guarded
// merge in executeAgg (lock, global.merge(local), unlock) is the blessed
// pattern for non-slot accumulation.
var SharedWrite = &lint.Analyzer{
	Name: "sharedwrite",
	Doc:  "goroutines spawned in loops write only disjoint per-worker slots",
	Run:  runSharedWrite,
}

func runSharedWrite(pass *lint.Pass) error {
	for _, pkg := range pass.Module.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					checkFanOuts(pass, pkg.Info, fd)
				}
			}
		}
	}
	return nil
}

// checkFanOuts analyzes every goroutine the function spawns from inside
// a loop.
func checkFanOuts(pass *lint.Pass, info *types.Info, fd *ast.FuncDecl) {
	lint.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		loopVars, loop := enclosingLoops(info, stack)
		if loop == nil {
			return true // a single goroutine cannot race with a sibling
		}
		sw := &spawnCheck{pass: pass, info: info, fd: fd, gs: gs, lit: lit, loopVars: loopVars}
		sw.checkBody()
		sw.checkWaitDomination(loop)
		return true
	})
}

// enclosingLoops collects the iteration variables of every for/range
// statement on the ancestor stack and returns the innermost loop.
func enclosingLoops(info *types.Info, stack []ast.Node) (map[types.Object]bool, ast.Stmt) {
	vars := map[types.Object]bool{}
	var innermost ast.Stmt
	for _, n := range stack {
		switch s := n.(type) {
		case *ast.RangeStmt:
			innermost = s
			if s.Tok == token.DEFINE {
				for _, e := range []ast.Expr{s.Key, s.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil {
							vars[obj] = true
						}
					}
				}
			}
		case *ast.ForStmt:
			innermost = s
			if init, ok := s.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, e := range init.Lhs {
					if id, ok := e.(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil {
							vars[obj] = true
						}
					}
				}
			}
		}
	}
	return vars, innermost
}

// spawnCheck verifies one go-func-in-a-loop site.
type spawnCheck struct {
	pass     *lint.Pass
	info     *types.Info
	fd       *ast.FuncDecl
	gs       *ast.GoStmt
	lit      *ast.FuncLit
	loopVars map[types.Object]bool

	// slotVars are the free variables that received accepted per-worker
	// slot writes; their post-loop reads need wg.Wait() domination.
	slotVars map[types.Object]bool
}

func (s *spawnCheck) checkBody() {
	s.slotVars = map[types.Object]bool{}
	ast.Inspect(s.lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				s.checkWrite(lhs, "writes")
			}
		case *ast.IncDecStmt:
			s.checkWrite(n.X, "writes")
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) > 0 {
				if b, ok := s.info.Uses[id].(*types.Builtin); ok && b.Name() == "copy" {
					s.checkWrite(n.Args[0], "copies into")
				}
			}
		}
		return true
	})
}

// checkWrite validates one written expression: peel selectors, derefs and
// indexes down to the base identifier; a free base is only legal when one
// of the peeled indexes is a per-worker slot index.
func (s *spawnCheck) checkWrite(e ast.Expr, verb string) {
	var indexes []ast.Expr
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			indexes = append(indexes, x.Index)
			e = x.X
		case *ast.SliceExpr:
			// A window into a shared slice is only disjoint when its low
			// bound is a per-worker slot index; a nil low bound (x[:n])
			// can never be.
			indexes = append(indexes, x.Low)
			e = x.X
		default:
			base, ok := e.(*ast.Ident)
			if !ok || base.Name == "_" {
				return
			}
			obj, isVar := s.info.ObjectOf(base).(*types.Var)
			if !isVar || s.declaredInside(obj) {
				return
			}
			s.checkSharedWrite(base, obj, indexes, verb)
			return
		}
	}
}

// checkSharedWrite handles a write whose base variable is captured from
// the spawning function.
func (s *spawnCheck) checkSharedWrite(base *ast.Ident, obj *types.Var, indexes []ast.Expr, verb string) {
	name := s.fd.Name.Name
	if len(indexes) == 0 {
		s.pass.Reportf(base.Pos(),
			"goroutine in %s %s shared variable %s; use a per-worker slot, a channel, or the mutex-guarded merge pattern",
			name, verb, obj.Name())
		return
	}
	for _, idx := range indexes {
		if s.isSlotIndex(idx) {
			s.slotVars[obj] = true
			return
		}
	}
	s.pass.Reportf(base.Pos(),
		"goroutine in %s %s %s through an index that is not the spawn loop variable (slots may overlap across workers)",
		name, verb, obj.Name())
}

// isSlotIndex reports whether an index expression identifies a disjoint
// per-worker slot: the spawn loop variable itself (per-iteration since go
// 1.22), a parameter of the literal whose call argument is the loop
// variable, or an index the goroutine claimed from a shared atomic
// counter (the work-stealing deque/morsel ownership pattern of
// internal/exec: each Add return value is handed to exactly one
// goroutine, so claimed indices never overlap).
func (s *spawnCheck) isSlotIndex(idx ast.Expr) bool {
	if idx == nil {
		return false
	}
	id, ok := ast.Unparen(idx).(*ast.Ident)
	if !ok {
		return false
	}
	obj := s.info.ObjectOf(id)
	if obj == nil {
		return false
	}
	if s.loopVars[obj] {
		return true
	}
	if s.isClaimedIndex(obj) {
		return true
	}
	argIdx, isParam := s.paramIndex(obj)
	if !isParam || argIdx >= len(s.gs.Call.Args) {
		return false
	}
	arg, ok := ast.Unparen(s.gs.Call.Args[argIdx]).(*ast.Ident)
	return ok && s.loopVars[s.info.ObjectOf(arg)]
}

// isClaimedIndex reports whether the index variable is declared inside
// the goroutine literal by a := whose right-hand side derives from an
// Add call on a sync/atomic counter captured from the spawning function.
// A shared counter hands every Add return value to exactly one claimant,
// so such indices are disjoint across the spawned goroutines. A counter
// declared inside the literal is per-goroutine and proves nothing.
func (s *spawnCheck) isClaimedIndex(obj types.Object) bool {
	if !s.declaredInside(obj) {
		return false
	}
	claimed := false
	ast.Inspect(s.lit.Body, func(n ast.Node) bool {
		if claimed {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || s.info.ObjectOf(id) != obj {
				continue
			}
			for _, rhs := range as.Rhs {
				if s.containsSharedAtomicAdd(rhs) {
					claimed = true
				}
			}
		}
		return !claimed
	})
	return claimed
}

// containsSharedAtomicAdd reports whether the expression contains an
// Add call on a sync/atomic value whose base variable is captured from
// outside the goroutine literal.
func (s *spawnCheck) containsSharedAtomicAdd(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		tv, ok := s.info.Types[sel.X]
		if !ok || tv.Type == nil {
			return true
		}
		t := tv.Type
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return true
		}
		if o := named.Obj(); o.Pkg() == nil || o.Pkg().Path() != "sync/atomic" {
			return true
		}
		// Peel to the counter's base variable: it must be shared
		// (captured), not a fresh per-goroutine counter.
		base := ast.Unparen(sel.X)
		for {
			switch x := base.(type) {
			case *ast.ParenExpr:
				base = x.X
			case *ast.SelectorExpr:
				base = x.X
			case *ast.StarExpr:
				base = x.X
			case *ast.IndexExpr:
				base = x.X
			case *ast.UnaryExpr:
				base = x.X
			default:
				if id, ok := base.(*ast.Ident); ok {
					if bobj := s.info.ObjectOf(id); bobj != nil && !s.declaredInside(bobj) {
						found = true
					}
				}
				return !found
			}
		}
	})
	return found
}

// paramIndex returns the positional index of obj in the literal's
// parameter list.
func (s *spawnCheck) paramIndex(obj types.Object) (int, bool) {
	i := 0
	for _, field := range s.lit.Type.Params.List {
		for _, name := range field.Names {
			if s.info.ObjectOf(name) == obj {
				return i, true
			}
			i++
		}
	}
	return 0, false
}

func (s *spawnCheck) declaredInside(obj types.Object) bool {
	return s.lit.Pos() <= obj.Pos() && obj.Pos() < s.lit.End()
}

// checkWaitDomination requires every post-loop read of a slot-written
// variable to come after a sync.WaitGroup Wait call that itself follows
// the spawning loop.
func (s *spawnCheck) checkWaitDomination(loop ast.Stmt) {
	if len(s.slotVars) == 0 {
		return
	}
	waitPos := token.Pos(-1)
	ast.Inspect(s.fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && call.Pos() > loop.End() && s.isWaitGroupWait(call) {
			if waitPos < 0 || call.Pos() < waitPos {
				waitPos = call.Pos()
			}
		}
		return true
	})
	ast.Inspect(s.fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= loop.End() {
			return true
		}
		obj := s.info.ObjectOf(id)
		if obj == nil || !s.slotVars[obj] {
			return true
		}
		if waitPos < 0 {
			s.pass.Reportf(id.Pos(),
				"per-worker slots of %s in %s are read without a wg.Wait() after the spawn loop",
				obj.Name(), s.fd.Name.Name)
		} else if id.Pos() < waitPos {
			s.pass.Reportf(id.Pos(),
				"%s in %s is read before wg.Wait(); worker writes may still be in flight",
				obj.Name(), s.fd.Name.Name)
		}
		return false
	})
}

// isWaitGroupWait reports whether the call is sync.WaitGroup.Wait.
func (s *spawnCheck) isWaitGroupWait(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	tv, ok := s.info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Pkg() != nil && o.Pkg().Path() == "sync" && o.Name() == "WaitGroup"
}
