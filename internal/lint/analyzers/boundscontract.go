package analyzers

import (
	"go/ast"
	"go/types"

	"etsqp/internal/lint"
)

// BoundsContract turns //etsqp:bounds parameter directives into
// module-wide checked contracts: at every call site of a bounds-annotated
// function, anywhere in the module, the rangeflow interval interpreter
// must be able to show each annotated argument's interval fits the
// declared parameter range. Encoding invariants — page row caps, bit
// widths, run lengths — thereby hold by construction at every producer,
// and the //etsqp:rangecheck kernels consuming them may assume the
// declared intervals without re-validating.
//
// Directive syntax and misannotation problems are reported by rangecheck
// alone, so running both analyzers never duplicates a finding. Variadic
// tails and arguments whose type is not integer are skipped.
var BoundsContract = &lint.Analyzer{
	Name: "boundscontract",
	Doc:  "call sites satisfy callees' declared //etsqp:bounds parameter intervals",
	Run:  runBoundsContract,
}

func runBoundsContract(pass *lint.Pass) error {
	m := pass.Module
	bounds := buildBoundsIndex(m)
	// Parameter-name → argument-index tables for every annotated callee.
	argIndex := map[string]map[string]int{}
	for key, fb := range bounds.funcs {
		if len(fb.params) == 0 {
			continue
		}
		fi, ok := m.Funcs[key]
		if !ok || fi.Decl.Type.Params == nil {
			continue
		}
		idx := map[string]int{}
		i := 0
		for _, field := range fi.Decl.Type.Params.List {
			for _, id := range field.Names {
				idx[id.Name] = i
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
		argIndex[key] = idx
	}
	for _, fi := range sortedFuncs(m) {
		if fi.Decl.Body == nil || inTestFile(m, fi.Decl.Pos()) {
			continue
		}
		caller := fi
		hooks := rangeHooks{
			call: func(call *ast.CallExpr, argIval func(i int) *ival) {
				checkCallContract(pass, m, bounds, argIndex, caller, call, argIval)
			},
		}
		walkRangeFunc(m, fi, bounds, hooks)
	}
	return nil
}

func checkCallContract(pass *lint.Pass, m *lint.Module, bounds *boundsIndex, argIndex map[string]map[string]int, caller *lint.FuncInfo, call *ast.CallExpr, argIval func(i int) *ival) {
	fn := lint.CalleeFunc(caller.Pkg.Info, call)
	if fn == nil {
		return
	}
	key := fn.FullName()
	fb, ok := bounds.funcs[key]
	if !ok || len(fb.params) == 0 {
		return
	}
	idx, ok := argIndex[key]
	if !ok {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	for _, name := range sortedBoundNames(fb.params) {
		d := fb.params[name]
		if d.err != "" {
			continue
		}
		i, ok := idx[name]
		if !ok || i >= len(call.Args) {
			continue
		}
		if sig != nil && sig.Variadic() && i >= sig.Params().Len()-1 {
			continue // variadic tail: per-element contracts not modeled
		}
		got := argIval(i)
		if got == nil || got.subsetOf(d.iv) {
			continue
		}
		pass.Reportf(call.Args[i].Pos(), "argument %q to %s has interval %s, outside declared //etsqp:bounds %s %s",
			name, fn.Name(), got, name, d.iv)
	}
}
