package analyzers

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"etsqp/internal/lint"
)

// ObsGuard enforces the observability layer's overhead contract:
//
//  1. Inside the obs package, the metric storage fields (Counter.v,
//     Gauge.v, and Histogram's buckets/sum/count/ex) may only be touched
//     by the atomic helper methods (Counter/Timer/Gauge/Histogram
//     receivers) and the registry-wide capture/reset helpers — never by
//     ad-hoc code that could race or bypass the enable gate.
//  2. In //etsqp:hotpath functions (and their module callees), every
//     counter/timer/gauge/histogram mutation must sit behind an
//     obs.Enabled() check so a disabled build pays one predicted branch,
//     not argument computation plus an atomic load per metric.
//  3. Every metric registered in the obs package (newCounter / newTimer /
//     newGauge / newHistogram) must appear in a docs/OBSERVABILITY.md
//     table row, and every table row must name a registered metric — the
//     doc is the reviewed metrics surface and may not drift from the
//     registry.
var ObsGuard = &lint.Analyzer{
	Name: "obsguard",
	Doc:  "obs counters: atomic helpers only, Enabled()-gated in hot paths, docs in sync",
	Run:  runObsGuard,
}

// obsMutators are the Counter/Timer/Gauge/Histogram methods that write
// a metric.
var obsMutators = map[string]bool{
	"Add": true, "Inc": true, "AddNanos": true, "Since": true,
	"Observe": true, "ObserveN": true, "ObserveExemplar": true, "Set": true,
}

func runObsGuard(pass *lint.Pass) error {
	m := pass.Module
	// Rule 1: direct storage-field access inside the obs package.
	for _, pkg := range m.Pkgs {
		if lint.PathHasSuffix(pkg.Path, "internal/obs") {
			checkObsFieldAccess(pass, pkg)
			checkObsDocSync(pass, pkg)
		}
	}
	// Rule 2: Enabled() gating in the hot-path closure.
	var roots []string
	for key, fi := range m.Funcs {
		if fi.Annotated("hotpath") {
			roots = append(roots, key)
		}
	}
	for _, fi := range m.Closure(roots, "coldpath") {
		if lint.PathHasSuffix(fi.Pkg.Path, "internal/obs") {
			continue // the helpers themselves carry the gate
		}
		checkObsGated(pass, fi)
	}
	return nil
}

// checkObsFieldAccess flags selections of the unexported counter storage
// outside the helper methods.
func checkObsFieldAccess(pass *lint.Pass, pkg *lint.Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obsHelperFunc(pkg, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := pkg.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				field := s.Obj()
				if !isObsCounterType(s.Recv()) {
					return true
				}
				switch field.Name() {
				case "v":
					pass.Reportf(sel.Pos(), "direct access to counter storage outside the atomic helpers; use Add/Inc/Load")
				case "buckets", "sum", "count":
					pass.Reportf(sel.Pos(), "direct access to histogram storage outside the atomic helpers; use Observe/Snapshot")
				case "ex":
					pass.Reportf(sel.Pos(), "direct access to histogram exemplar storage outside the seqlock helpers; use ObserveExemplar/Exemplars")
				}
				return true
			})
		}
	}
}

// obsHelperFunc reports whether fd is allowed to touch metric storage:
// a method on Counter, Timer, Gauge or Histogram, or the registry-wide
// capture/reset helpers.
func obsHelperFunc(pkg *lint.Package, fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		switch fd.Name.Name {
		case "Capture", "CaptureHistograms", "CaptureGauges", "CaptureExemplars", "Reset":
			return true
		}
		return false
	}
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return obsMetricTypes[named.Obj().Name()]
}

// obsMetricTypes are the obs package's metric holder types.
var obsMetricTypes = map[string]bool{
	"Counter": true, "Timer": true, "Gauge": true, "Histogram": true,
}

// isObsCounterType reports whether t (possibly a pointer) is the obs
// Counter, Timer or Histogram type.
func isObsCounterType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if !lint.PathHasSuffix(named.Obj().Pkg().Path(), "internal/obs") {
		return false
	}
	return obsMetricTypes[named.Obj().Name()]
}

// checkObsGated flags counter mutations in a hot function that are not
// enclosed in an if whose condition calls obs.Enabled().
func checkObsGated(pass *lint.Pass, fi *lint.FuncInfo) {
	if fi.Decl.Body == nil {
		return
	}
	info := fi.Pkg.Info
	lint.WalkStack(fi.Decl.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lint.CalleeFunc(info, call)
		if fn == nil || !obsMutators[fn.Name()] {
			return true
		}
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil || !isObsCounterType(recv.Type()) {
			return true
		}
		if !enclosedInEnabledCheck(info, stack) {
			pass.Reportf(call.Pos(), "obs counter update in hot path %s is not behind obs.Enabled()", fi.Obj.Name())
		}
		return true
	})
}

// enclosedInEnabledCheck reports whether any enclosing if statement's
// condition contains a call to obs.Enabled.
func enclosedInEnabledCheck(info *types.Info, stack []ast.Node) bool {
	for _, n := range stack {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := CalleeEnabledFunc(info, call)
			if fn {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// CalleeEnabledFunc reports whether a call invokes obs.Enabled.
func CalleeEnabledFunc(info *types.Info, call *ast.CallExpr) bool {
	fn := lint.CalleeFunc(info, call)
	return fn != nil && fn.Name() == "Enabled" && fn.Pkg() != nil &&
		lint.PathHasSuffix(fn.Pkg().Path(), "internal/obs")
}

// obsRegistrars are the obs package constructors that register a metric
// under a dotted name.
var obsRegistrars = map[string]bool{
	"newCounter": true, "newTimer": true, "newGauge": true, "newHistogram": true,
}

// obsRegistration is one newCounter/newTimer/newHistogram call site.
type obsRegistration struct {
	name string
	pos  ast.Node
}

// checkObsDocSync cross-checks the metric registry against the
// docs/OBSERVABILITY.md tables: every registered name must appear in a
// table row (`| `name` | meaning |`) and every table row must name a
// registered metric. Packages with no registration calls are skipped —
// they keep their metrics outside the documented registry on purpose.
func checkObsDocSync(pass *lint.Pass, pkg *lint.Package) {
	var regs []obsRegistration
	var firstRegFile *ast.File
	for _, file := range pkg.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || !obsRegistrars[id.Name] {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			regs = append(regs, obsRegistration{name: name, pos: call.Args[0]})
			if firstRegFile == nil {
				firstRegFile = file
			}
			return true
		})
	}
	if len(regs) == 0 {
		return
	}
	docPath := filepath.Join(pass.Module.Dir, "docs", "OBSERVABILITY.md")
	data, err := os.ReadFile(docPath)
	if err != nil {
		pass.Reportf(firstRegFile.Name.Pos(), "metric registry has no docs/OBSERVABILITY.md to sync against: %v", err)
		return
	}
	documented := docMetricNames(string(data))
	declared := make(map[string]bool, len(regs))
	for _, r := range regs {
		declared[r.name] = true
		if !documented[r.name] {
			pass.Reportf(r.pos.Pos(), "metric %s is not documented in docs/OBSERVABILITY.md", r.name)
		}
	}
	var ghosts []string
	for name := range documented {
		if !declared[name] {
			ghosts = append(ghosts, name)
		}
	}
	sort.Strings(ghosts)
	for _, name := range ghosts {
		pass.Reportf(firstRegFile.Name.Pos(), "docs/OBSERVABILITY.md documents %s but no such metric is registered", name)
	}
}

// docMetricNames extracts metric names from OBSERVABILITY.md table rows.
// Only rows of the form `| `name` | ... |` whose name is dotted and
// space-free count (the registry's naming convention): prose and other
// tables may mention metrics freely without registering a doc claim.
func docMetricNames(doc string) map[string]bool {
	out := map[string]bool{}
	for _, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		rest := line[len("| `"):]
		end := strings.IndexByte(rest, '`')
		if end <= 0 {
			continue
		}
		name := rest[:end]
		if !strings.Contains(name, ".") || strings.ContainsAny(name, " \t") {
			continue
		}
		out[name] = true
	}
	return out
}
