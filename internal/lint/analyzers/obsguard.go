package analyzers

import (
	"go/ast"
	"go/types"

	"etsqp/internal/lint"
)

// ObsGuard enforces the observability layer's overhead contract:
//
//  1. Inside the obs package, the counter storage field (Counter.v) may
//     only be touched by the atomic helper methods (Counter/Timer
//     receivers) and the registry-wide Capture/Reset — never by ad-hoc
//     code that could race or bypass the enable gate.
//  2. In //etsqp:hotpath functions (and their module callees), every
//     counter/timer mutation must sit behind an obs.Enabled() check so a
//     disabled build pays one predicted branch, not argument computation
//     plus an atomic load per metric.
var ObsGuard = &lint.Analyzer{
	Name: "obsguard",
	Doc:  "obs counters: atomic helpers only, and Enabled()-gated in hot paths",
	Run:  runObsGuard,
}

// obsMutators are the Counter/Timer methods that write a metric.
var obsMutators = map[string]bool{"Add": true, "Inc": true, "AddNanos": true, "Since": true}

func runObsGuard(pass *lint.Pass) error {
	m := pass.Module
	// Rule 1: direct storage-field access inside the obs package.
	for _, pkg := range m.Pkgs {
		if lint.PathHasSuffix(pkg.Path, "internal/obs") {
			checkObsFieldAccess(pass, pkg)
		}
	}
	// Rule 2: Enabled() gating in the hot-path closure.
	var roots []string
	for key, fi := range m.Funcs {
		if fi.Annotated("hotpath") {
			roots = append(roots, key)
		}
	}
	for _, fi := range m.Closure(roots, "coldpath") {
		if lint.PathHasSuffix(fi.Pkg.Path, "internal/obs") {
			continue // the helpers themselves carry the gate
		}
		checkObsGated(pass, fi)
	}
	return nil
}

// checkObsFieldAccess flags selections of the unexported counter storage
// outside the helper methods.
func checkObsFieldAccess(pass *lint.Pass, pkg *lint.Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obsHelperFunc(pkg, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := pkg.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				field := s.Obj()
				if field.Name() != "v" || !isObsCounterType(s.Recv()) {
					return true
				}
				pass.Reportf(sel.Pos(), "direct access to counter storage outside the atomic helpers; use Add/Inc/Load")
				return true
			})
		}
	}
}

// obsHelperFunc reports whether fd is allowed to touch counter storage:
// a method on Counter or Timer, or the registry-wide Capture/Reset.
func obsHelperFunc(pkg *lint.Package, fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		return fd.Name.Name == "Capture" || fd.Name.Name == "Reset"
	}
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Counter" || named.Obj().Name() == "Timer"
}

// isObsCounterType reports whether t (possibly a pointer) is the obs
// Counter or Timer type.
func isObsCounterType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if !lint.PathHasSuffix(named.Obj().Pkg().Path(), "internal/obs") {
		return false
	}
	return named.Obj().Name() == "Counter" || named.Obj().Name() == "Timer"
}

// checkObsGated flags counter mutations in a hot function that are not
// enclosed in an if whose condition calls obs.Enabled().
func checkObsGated(pass *lint.Pass, fi *lint.FuncInfo) {
	if fi.Decl.Body == nil {
		return
	}
	info := fi.Pkg.Info
	lint.WalkStack(fi.Decl.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lint.CalleeFunc(info, call)
		if fn == nil || !obsMutators[fn.Name()] {
			return true
		}
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil || !isObsCounterType(recv.Type()) {
			return true
		}
		if !enclosedInEnabledCheck(info, stack) {
			pass.Reportf(call.Pos(), "obs counter update in hot path %s is not behind obs.Enabled()", fi.Obj.Name())
		}
		return true
	})
}

// enclosedInEnabledCheck reports whether any enclosing if statement's
// condition contains a call to obs.Enabled.
func enclosedInEnabledCheck(info *types.Info, stack []ast.Node) bool {
	for _, n := range stack {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := CalleeEnabledFunc(info, call)
			if fn {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// CalleeEnabledFunc reports whether a call invokes obs.Enabled.
func CalleeEnabledFunc(info *types.Info, call *ast.CallExpr) bool {
	fn := lint.CalleeFunc(info, call)
	return fn != nil && fn.Name() == "Enabled" && fn.Pkg() != nil &&
		lint.PathHasSuffix(fn.Pkg().Path(), "internal/obs")
}
