package analyzers_test

import (
	"testing"

	"etsqp/internal/lint/analyzers"
	"etsqp/internal/lint/linttest"
)

func TestRangeCheck(t *testing.T) {
	linttest.Run(t, "testdata/rangecheck", analyzers.RangeCheck)
}

func TestBoundsContract(t *testing.T) {
	linttest.Run(t, "testdata/boundscontract", analyzers.BoundsContract)
}

func TestGuardedBy(t *testing.T) {
	linttest.Run(t, "testdata/guardedby", analyzers.GuardedBy)
}

func TestAtomicField(t *testing.T) {
	linttest.Run(t, "testdata/atomicfield", analyzers.AtomicField)
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata/lockorder", analyzers.LockOrder)
}

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, "testdata/hotpathalloc", analyzers.HotPathAlloc)
}

func TestNoPanic(t *testing.T) {
	linttest.Run(t, "testdata/nopanic", analyzers.NoPanic)
}

func TestObsGuard(t *testing.T) {
	linttest.Run(t, "testdata/obsguard", analyzers.ObsGuard)
}

func TestQueryDoc(t *testing.T) {
	linttest.Run(t, "testdata/querydoc", analyzers.QueryDoc)
}

func TestPlanTable(t *testing.T) {
	linttest.Run(t, "testdata/plantable", analyzers.PlanTable)
}

func TestSharedWrite(t *testing.T) {
	linttest.Run(t, "testdata/sharedwrite", analyzers.SharedWrite)
}
