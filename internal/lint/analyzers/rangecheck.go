package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"etsqp/internal/lint"
)

// RangeCheck enforces the Section VI-C checked-arithmetic discipline
// inside functions annotated //etsqp:rangecheck: every raw + - * << (and
// the one overflowing / case, MinInt64 / -1) whose static type is int64
// and whose exact result interval — computed by the rangeflow interval
// interpreter from //etsqp:bounds directives, constants, branch guards
// and loop fixpoints — can leave int64 must instead flow through an
// //etsqp:checked helper (fusion.addChecked, fusion.mulChecked, ...) or
// have its operands provably bounded. Declared //etsqp:bounds return
// intervals are verified against the computed return-value intervals,
// the ok result of a checked helper must not be discarded, and
// malformed or misannotated directives are findings.
//
// Plain `int` index arithmetic is deliberately out of scope: indices are
// policed dynamically by slice bounds checks and statically by the
// //etsqp:nobce budget of etsqp-vet; int64 is the aggregate-value
// domain where a wrap is a silent wrong answer, not a panic.
var RangeCheck = &lint.Analyzer{
	Name: "rangecheck",
	Doc:  "int64 arithmetic in //etsqp:rangecheck kernels is checked or provably in range",
	Run:  runRangeCheck,
}

func runRangeCheck(pass *lint.Pass) error {
	m := pass.Module
	bounds := buildBoundsIndex(m)
	reportDirectiveErrors(pass, m, bounds)
	for _, fi := range sortedFuncs(m) {
		if !fi.Annotated("rangecheck") || fi.Annotated("checked") {
			continue
		}
		if fi.Decl.Body == nil || inTestFile(m, fi.Decl.Pos()) {
			continue
		}
		checkRangeFunc(pass, m, fi, bounds)
	}
	return nil
}

func checkRangeFunc(pass *lint.Pass, m *lint.Module, fi *lint.FuncInfo, bounds *boundsIndex) {
	fb := bounds.funcs[fi.Key]
	hooks := rangeHooks{
		rawOp: func(pos token.Pos, op token.Token, desc string, exact *ival, t types.Type) {
			if !isInt64Type(t) || exact.subsetOf(int64Range) {
				return
			}
			pass.Reportf(pos, "%s: unchecked int64 %s with result interval %s can overflow; use an //etsqp:checked helper or tighten the operands' //etsqp:bounds",
				fi.Obj.Name(), opWord(op), exact)
		},
		blankOK: func(pos token.Pos, callee string) {
			pass.Reportf(pos, "%s: ok result of checked helper %s discarded; the overflow flag must be observed", fi.Obj.Name(), callee)
		},
	}
	if fb != nil && fb.ret != nil && fb.ret.err == "" {
		ret := fb.ret
		hooks.ret = func(rs *ast.ReturnStmt, results []*ival) {
			if len(results) == 0 || results[0] == nil {
				return
			}
			if !results[0].subsetOf(ret.iv) {
				pass.Reportf(rs.Pos(), "%s: return value interval %s exceeds declared //etsqp:bounds return %s",
					fi.Obj.Name(), results[0], ret.iv)
			}
		}
	}
	walkRangeFunc(m, fi, bounds, hooks)
}

func opWord(op token.Token) string {
	switch op {
	case token.ADD:
		return "addition"
	case token.SUB:
		return "subtraction"
	case token.MUL:
		return "multiplication"
	case token.QUO:
		return "division"
	case token.SHL:
		return "shift"
	}
	return op.String()
}

// reportDirectiveErrors validates the module's //etsqp:bounds and
// //etsqp:checked directives. Only rangecheck reports these, so running
// both analyzers does not duplicate findings.
func reportDirectiveErrors(pass *lint.Pass, m *lint.Module, bounds *boundsIndex) {
	for _, fi := range sortedFuncs(m) {
		fb := bounds.funcs[fi.Key]
		if fb != nil {
			for _, bad := range fb.bad {
				pass.Reportf(fi.Decl.Pos(), "%s: malformed //etsqp:bounds directive %q: %s", fi.Obj.Name(), bad.raw, bad.err)
			}
			validateFuncBounds(pass, fi, fb)
		}
		if kind, ok := bounds.checked[fi.Key]; ok {
			validateChecked(pass, fi, kind)
		}
	}
	for _, key := range sortedFieldKeys(m) {
		d, ok := bounds.fields[key]
		if !ok {
			continue
		}
		if d.err != "" {
			pass.Reportf(d.pos, "field %s.%s: malformed //etsqp:bounds directive %q: %s", key.Type, key.Field, d.raw, d.err)
			continue
		}
		ft := structFieldType(m, key.PkgPath, key.Type, key.Field)
		tr := typeIval(ft)
		if tr == nil {
			pass.Reportf(d.pos, "field %s.%s: //etsqp:bounds on non-integer field", key.Type, key.Field)
			continue
		}
		if !d.iv.subsetOf(tr) {
			pass.Reportf(d.pos, "field %s.%s: declared //etsqp:bounds %s exceeds the field's type range %s", key.Type, key.Field, d.iv, tr)
		}
	}
}

// validateFuncBounds checks that parameter bounds name real integer
// parameters within their type ranges and that a return bound has an
// integer first result to describe.
func validateFuncBounds(pass *lint.Pass, fi *lint.FuncInfo, fb *funcBounds) {
	params := map[string]types.Type{}
	if fi.Decl.Type.Params != nil {
		for _, field := range fi.Decl.Type.Params.List {
			for _, id := range field.Names {
				params[id.Name] = fi.Pkg.Info.TypeOf(field.Type)
			}
		}
	}
	pos := fi.Decl.Pos()
	for _, name := range sortedBoundNames(fb.params) {
		d := fb.params[name]
		t, ok := params[name]
		if !ok {
			pass.Reportf(pos, "%s: //etsqp:bounds names unknown parameter %q", fi.Obj.Name(), name)
			continue
		}
		tr := typeIval(t)
		if tr == nil {
			pass.Reportf(pos, "%s: //etsqp:bounds on non-integer parameter %q", fi.Obj.Name(), name)
			continue
		}
		if !d.iv.subsetOf(tr) {
			pass.Reportf(pos, "%s: declared //etsqp:bounds for %q %s exceeds the parameter's type range %s", fi.Obj.Name(), name, d.iv, tr)
		}
	}
	if fb.ret != nil && fb.ret.err == "" {
		res := fi.Decl.Type.Results
		if res == nil || len(res.List) == 0 || typeIval(fi.Pkg.Info.TypeOf(res.List[0].Type)) == nil {
			pass.Reportf(pos, "%s: //etsqp:bounds return requires an integer first result", fi.Obj.Name())
		}
	}
}

// validateChecked checks an //etsqp:checked helper's shape: results
// (integer, ..., bool), and for the "add"/"mul" exact models exactly
// two integer parameters.
func validateChecked(pass *lint.Pass, fi *lint.FuncInfo, kind string) {
	pos := fi.Decl.Pos()
	if kind != "" && kind != "add" && kind != "mul" {
		pass.Reportf(pos, "%s: //etsqp:checked argument must be \"add\" or \"mul\", got %q", fi.Obj.Name(), kind)
		return
	}
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	okShape := res.Len() >= 2 && typeIval(res.At(0).Type()) != nil && isBoolType(res.At(res.Len()-1).Type())
	if !okShape {
		pass.Reportf(pos, "%s: //etsqp:checked helper must return (integer, ..., bool)", fi.Obj.Name())
		return
	}
	if kind == "add" || kind == "mul" {
		ps := sig.Params()
		if ps.Len() != 2 || typeIval(ps.At(0).Type()) == nil || typeIval(ps.At(1).Type()) == nil {
			pass.Reportf(pos, "%s: //etsqp:checked %s helper must take exactly two integer parameters", fi.Obj.Name(), kind)
		}
	}
}

func isBoolType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}

func sortedBoundNames(decls map[string]*boundDecl) []string {
	names := make([]string, 0, len(decls))
	for n := range decls {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
