package analyzers

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"etsqp/internal/lint"
)

// LockOrder builds the module-wide lock-acquisition order graph and
// fails on cycles. Nodes are lock classes (declaration identity of a
// mutex: "storage.Series.mu", "expr.planMu"); an edge A -> B is added
// whenever B is acquired while A is held — directly in a function body,
// or through a call to a function whose transitive acquisition summary
// contains B. //etsqp:locked annotations seed the held set, so helper
// protocols contribute their edges even without a resolvable call
// chain. Function literals that escape (deferred, go'd, passed as
// values) are summarized separately with an empty held set: they run at
// another time, so their acquisitions are not attributed to callers of
// the defining function. Same-class nesting (lock coupling over two
// instances of one struct) is out of scope and not reported.
var LockOrder = &lint.Analyzer{
	Name: "lockorder",
	Doc:  "the module-wide lock-acquisition graph over mutex classes is acyclic",
	Run:  runLockOrder,
}

type lockEdge struct{ from, to string }

type lockCallFact struct {
	callee string
	held   []string
	pos    token.Pos
}

func runLockOrder(pass *lint.Pass) error {
	m := pass.Module

	// Pass A: interpret every function, collecting direct-acquire edges,
	// per-function direct acquisition summaries (function level only,
	// escaped closures excluded), and held-across-call facts.
	edges := map[lockEdge]token.Pos{}
	directAcq := map[string]map[string]bool{} // func key → classes
	var callFacts []lockCallFact

	addEdge := func(from, to string, pos token.Pos) {
		if from == "" || to == "" || from == to {
			return
		}
		e := lockEdge{from, to}
		if old, ok := edges[e]; !ok || posLess(m, pos, old) {
			edges[e] = pos
		}
	}

	for _, fi := range sortedFuncs(m) {
		fi := fi
		if fi.Decl.Body == nil || inTestFile(m, fi.Decl.Pos()) {
			continue
		}
		acq := map[string]bool{}
		directAcq[fi.Key] = acq
		inClosure := false
		hooks := lockHooks{
			acquire: func(op *mutexOp, held lockSet) {
				if op.class != "" && !inClosure {
					acq[op.class] = true
				}
				for _, li := range held {
					addEdge(li.class, op.class, op.call.Pos())
				}
			},
			call: func(call *ast.CallExpr, set lockSet) {
				if len(set) == 0 {
					return
				}
				fn := lint.CalleeFunc(fi.Pkg.Info, call)
				if fn == nil || fn.Pkg() == nil {
					return
				}
				path := fn.Pkg().Path()
				if path != m.Path && !strings.HasPrefix(path, m.Path+"/") {
					return
				}
				var held []string
				for _, li := range set {
					if li.class != "" {
						held = append(held, li.class)
					}
				}
				if len(held) > 0 {
					callFacts = append(callFacts, lockCallFact{fn.FullName(), held, call.Pos()})
				}
			},
			enterClosure: func() { inClosure = true },
		}
		walkLockFunc(fi.Pkg, fi.Decl, lockedSeed(fi), hooks)
	}

	// Pass B: transitive acquisition summaries over synchronous callees
	// (calls outside function literals), then edges for held-across-call.
	memo := map[string]map[string]bool{}
	onStack := map[string]bool{}
	var transAcq func(key string) map[string]bool
	transAcq = func(key string) map[string]bool {
		if s, ok := memo[key]; ok {
			return s
		}
		if onStack[key] {
			return nil // recursion: resolved by the fixpoint-free DFS below it
		}
		fi, ok := m.Funcs[key]
		if !ok || fi.Decl.Body == nil {
			return nil
		}
		onStack[key] = true
		out := map[string]bool{}
		for c := range directAcq[key] {
			out[c] = true
		}
		for _, callee := range syncCallees(m, fi) {
			for c := range transAcq(callee) {
				out[c] = true
			}
		}
		delete(onStack, key)
		memo[key] = out
		return out
	}
	for _, cf := range callFacts {
		for to := range transAcq(cf.callee) {
			for _, from := range cf.held {
				addEdge(from, to, cf.pos)
			}
		}
	}

	reportLockCycles(pass, edges)
	return nil
}

// syncCallees resolves the module-internal functions called from the
// function body outside any function literal — the calls that execute
// synchronously under the caller's locks.
func syncCallees(m *lint.Module, fi *lint.FuncInfo) []string {
	var out []string
	seen := map[string]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lint.CalleeFunc(fi.Pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		if path != m.Path && !strings.HasPrefix(path, m.Path+"/") {
			return true
		}
		if key := fn.FullName(); !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
		return true
	})
	return out
}

// reportLockCycles finds strongly connected components of the edge
// graph and reports each cycle once, at its smallest edge position.
func reportLockCycles(pass *lint.Pass, edges map[lockEdge]token.Pos) {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	for n := range adj {
		sort.Strings(adj[n])
	}
	for _, scc := range stronglyConnected(nodes, adj) {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		// Report position: the smallest edge position inside the SCC.
		pos := token.NoPos
		for e, p := range edges {
			if inSCC[e.from] && inSCC[e.to] && (pos == token.NoPos || posLess(pass.Module, p, pos)) {
				pos = p
			}
		}
		cycle := findCycle(scc[0], adj, inSCC)
		names := make([]string, 0, len(cycle)+1)
		for _, c := range cycle {
			names = append(names, shortClass(c))
		}
		names = append(names, shortClass(scc[0]))
		pass.Reportf(pos, "lock acquisition order cycle: %s", strings.Join(names, " -> "))
	}
}

// findCycle returns a path from start back to start within the SCC.
func findCycle(start string, adj map[string][]string, inSCC map[string]bool) []string {
	var path []string
	visited := map[string]bool{}
	var dfs func(n string) bool
	dfs = func(n string) bool {
		path = append(path, n)
		visited[n] = true
		for _, nb := range adj[n] {
			if !inSCC[nb] {
				continue
			}
			if nb == start {
				return true
			}
			if !visited[nb] && dfs(nb) {
				return true
			}
		}
		path = path[:len(path)-1]
		return false
	}
	dfs(start)
	return path
}

// stronglyConnected is Tarjan's algorithm over the class graph.
func stronglyConnected(nodes map[string]bool, adj map[string][]string) [][]string {
	sorted := make([]string, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	index := map[string]int{}
	lowlink := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], lowlink[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range sorted {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return sccs
}

// shortClass trims the import-path prefix of a lock class for display:
// "etsqp/internal/storage.Series.mu" → "storage.Series.mu".
func shortClass(class string) string {
	if i := strings.LastIndex(class, "/"); i >= 0 {
		return class[i+1:]
	}
	return class
}

func posLess(m *lint.Module, a, b token.Pos) bool {
	pa, pb := m.Fset.Position(a), m.Fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	return pa.Column < pb.Column
}
