package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"etsqp/internal/lint"
)

// GuardedBy proves the //etsqp:guardedby field contracts: every read of
// an annotated field must hold the named mutex (RLock suffices on a
// RWMutex), and every write must hold it at write strength. Proofs come
// from the intra-procedural lock-set dataflow in lockflow.go; locked
// accessor helpers are annotated //etsqp:locked <mu>, which seeds their
// lock set and turns every call site into a "caller must hold" check.
var GuardedBy = &lint.Analyzer{
	Name: "guardedby",
	Doc:  "reads/writes of //etsqp:guardedby fields hold the named mutex (lock-set dataflow)",
	Run:  runGuardedBy,
}

// guardDir is one validated guardedby directive: the annotated field
// plus the resolved kind of its guard mutex.
type guardDir struct {
	dir     *lint.FieldDir
	rwMutex bool // guard is sync.RWMutex (RLock is a valid read hold)
}

func runGuardedBy(pass *lint.Pass) error {
	m := pass.Module
	guards := validateGuardDirs(pass)
	lockedFuncs := validateLockedDirs(pass)
	if len(guards) == 0 && len(lockedFuncs) == 0 {
		return nil
	}
	for _, fi := range sortedFuncs(m) {
		fi := fi
		if fi.Decl.Body == nil || inTestFile(m, fi.Decl.Pos()) {
			continue
		}
		seed := lockedSeed(fi)
		hooks := lockHooks{
			access: func(sel *ast.SelectorExpr, set lockSet, write bool) {
				checkGuardedAccess(pass, fi.Pkg, guards, sel, set, write)
			},
			call: func(call *ast.CallExpr, set lockSet) {
				checkLockedCall(pass, fi.Pkg, lockedFuncs, call, set)
			},
		}
		walkLockFunc(fi.Pkg, fi.Decl, seed, hooks)
	}
	return nil
}

// validateGuardDirs checks every //etsqp:guardedby directive names a
// sync.Mutex/RWMutex field of the same struct, reporting misannotations
// and returning the usable directives.
func validateGuardDirs(pass *lint.Pass) map[lint.FieldKey]*guardDir {
	m := pass.Module
	out := map[lint.FieldKey]*guardDir{}
	for _, key := range sortedFieldKeys(m) {
		d := m.Fields[key]
		if d.GuardedBy == "" {
			continue
		}
		mt := structFieldType(m, key.PkgPath, key.Type, d.GuardedBy)
		if mt == nil {
			pass.Reportf(d.Pos, "//etsqp:guardedby %s: %s.%s has no field %q",
				d.GuardedBy, key.Type, key.Field, d.GuardedBy)
			continue
		}
		if !isSyncMutexType(mt) {
			pass.Reportf(d.Pos, "//etsqp:guardedby %s: field %q of %s is %s, not a sync.Mutex or sync.RWMutex",
				d.GuardedBy, d.GuardedBy, key.Type, mt.String())
			continue
		}
		out[key] = &guardDir{dir: d, rwMutex: isRWMutexType(mt)}
	}
	return out
}

// validateLockedDirs checks every //etsqp:locked directive: the
// function must be a method whose receiver struct has the named mutex
// field(s), or a package-level function naming package-level mutexes.
func validateLockedDirs(pass *lint.Pass) map[string]*lint.FuncInfo {
	m := pass.Module
	out := map[string]*lint.FuncInfo{}
	for _, fi := range sortedFuncs(m) {
		if !fi.Annotated("locked") {
			continue
		}
		arg := fi.AnnotationArg("locked")
		if len(lockedMutexNames(fi)) == 0 {
			pass.Reportf(fi.Decl.Pos(), "//etsqp:locked needs a mutex name: //etsqp:locked <mu>")
			continue
		}
		ok := true
		for _, name := range lockedMutexNames(fi) {
			var mt types.Type
			if tn := recvTypeName(fi); tn != "" {
				mt = structFieldType(m, fi.Pkg.Path, tn, name)
			} else if obj, _ := fi.Pkg.Types.Scope().Lookup(name).(*types.Var); obj != nil {
				mt = obj.Type()
			}
			if mt == nil || !isSyncMutexType(mt) {
				pass.Reportf(fi.Decl.Pos(), "//etsqp:locked %s: %q is not a sync.Mutex/RWMutex reachable from %s",
					arg, name, fi.Obj.Name())
				ok = false
			}
		}
		if ok {
			out[fi.Key] = fi
		}
	}
	return out
}

// lockedMutexNames splits the //etsqp:locked argument ("mu" or
// "mu,errMu"; the first token — the rest of the line is commentary)
// into the named mutexes.
func lockedMutexNames(fi *lint.FuncInfo) []string {
	fields := strings.Fields(fi.AnnotationArg("locked"))
	if len(fields) == 0 {
		return nil
	}
	var out []string
	for _, n := range strings.Split(fields[0], ",") {
		if n != "" {
			out = append(out, n)
		}
	}
	return out
}

// lockedSeed builds the entry lock set of an //etsqp:locked function:
// each named mutex held at write strength through the receiver (or
// bare, for package-level mutexes).
func lockedSeed(fi *lint.FuncInfo) lockSet {
	if !fi.Annotated("locked") {
		return nil
	}
	seed := lockSet{}
	recv := recvIdentName(fi)
	for _, name := range lockedMutexNames(fi) {
		path, class := name, ""
		if recv != "" {
			path = recv + "." + name
			if tn := recvTypeName(fi); tn != "" {
				class = fi.Pkg.Path + "." + tn + "." + name
			}
		} else {
			class = fi.Pkg.Path + "." + name
		}
		seed[path] = lockInfo{strength: lockWrite, class: class}
	}
	return seed
}

// checkGuardedAccess reports a guarded-field access whose required
// mutex is not held (or held only for reading on a write).
func checkGuardedAccess(pass *lint.Pass, pkg *lint.Package, guards map[lint.FieldKey]*guardDir, sel *ast.SelectorExpr, set lockSet, write bool) {
	key, ok := lint.FieldOf(pkg.Info.Selections[sel])
	if !ok {
		return
	}
	g, ok := guards[key]
	if !ok {
		return
	}
	lockPath := types.ExprString(ast.Unparen(sel.X)) + "." + g.dir.GuardedBy
	li, held := set[lockPath]
	field := key.Type + "." + key.Field
	switch {
	case !held && write:
		pass.Reportf(sel.Pos(), "write to %s without holding %s (//etsqp:guardedby)", field, lockPath)
	case !held:
		pass.Reportf(sel.Pos(), "read of %s without holding %s (//etsqp:guardedby)", field, lockPath)
	case write && li.strength < lockWrite:
		pass.Reportf(sel.Pos(), "write to %s with %s read-locked (write lock required)", field, lockPath)
	}
}

// checkLockedCall reports calls to //etsqp:locked functions made
// without holding the required mutex(es) at write strength.
func checkLockedCall(pass *lint.Pass, pkg *lint.Package, lockedFuncs map[string]*lint.FuncInfo, call *ast.CallExpr, set lockSet) {
	fn := lint.CalleeFunc(pkg.Info, call)
	if fn == nil {
		return
	}
	target, ok := lockedFuncs[fn.FullName()]
	if !ok {
		return
	}
	// For methods, the caller must hold the mutex through the same
	// receiver expression it invokes the method on: b.mu for b.resetLocked().
	base := ""
	if recvIdentName(target) != "" {
		selFun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return // method value/expression call; receiver unknown
		}
		base = types.ExprString(ast.Unparen(selFun.X)) + "."
	}
	for _, name := range lockedMutexNames(target) {
		want := base + name
		if li, held := set[want]; !held || li.strength < lockWrite {
			pass.Reportf(call.Pos(), "call to %s requires holding %s (//etsqp:locked)", fn.Name(), want)
		}
	}
}

// ---- shared small helpers ----

// sortedFuncs returns the module's functions in deterministic key order.
func sortedFuncs(m *lint.Module) []*lint.FuncInfo {
	keys := make([]string, 0, len(m.Funcs))
	for k := range m.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*lint.FuncInfo, 0, len(keys))
	for _, k := range keys {
		out = append(out, m.Funcs[k])
	}
	return out
}

// sortedFieldKeys returns the module's annotated field keys in
// deterministic order.
func sortedFieldKeys(m *lint.Module) []lint.FieldKey {
	keys := make([]lint.FieldKey, 0, len(m.Fields))
	for k := range m.Fields {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		return fmt.Sprintf("%s.%s.%s", a.PkgPath, a.Type, a.Field) < fmt.Sprintf("%s.%s.%s", b.PkgPath, b.Type, b.Field)
	})
	return keys
}

// structFieldType resolves the type of a named struct's direct field,
// or nil when the package, type or field does not exist.
func structFieldType(m *lint.Module, pkgPath, typeName, fieldName string) types.Type {
	for _, pkg := range m.Pkgs {
		if pkg.Path != pkgPath {
			continue
		}
		tn, _ := pkg.Types.Scope().Lookup(typeName).(*types.TypeName)
		if tn == nil {
			return nil
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			return nil
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == fieldName {
				return st.Field(i).Type()
			}
		}
		return nil
	}
	return nil
}

func isRWMutexType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "RWMutex"
}

// recvTypeName returns the name of a method's receiver type, "" for
// plain functions.
func recvTypeName(fi *lint.FuncInfo) string {
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// recvIdentName returns the declared receiver identifier ("b" in
// func (b *batch) ...), or "" for functions and unnamed receivers.
func recvIdentName(fi *lint.FuncInfo) string {
	if fi.Decl.Recv == nil || len(fi.Decl.Recv.List) == 0 {
		return ""
	}
	names := fi.Decl.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return ""
	}
	return names[0].Name
}
