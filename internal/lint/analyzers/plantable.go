package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"etsqp/internal/lint"
)

// maxPlanWidth is the widest packing width the plan tables support; it
// mirrors the [33]*Plan cache in internal/pipeline.
const maxPlanWidth = 32

// PlanTable checks the static side of the JIT plan-table contract:
//
//  1. Constant width arguments to PlanFor/PlanFor512 must lie in the
//     table range [0, 32]. Calls that capture the returned error are
//     exempt — they are deliberately exercising the validation path.
//  2. Counted loops (for i := 0; i < K; i++) whose index flows into a
//     fixed-size array — the simd lane vectors and gather index tables —
//     must not run past the array length. This catches a 16-lane bound
//     applied to an 8-lane vector, which Go's compiler cannot reject
//     because the index is a variable.
//
// The dynamic side — that every width in 1..64 builds internally
// consistent tables or is rejected — is pipeline.(*Plan).Check, run
// exhaustively by TestPlanTableInvariants.
var PlanTable = &lint.Analyzer{
	Name: "plantable",
	Doc:  "plan-table widths in range and lane loops within vector bounds",
	Run:  runPlanTable,
}

func runPlanTable(pass *lint.Pass) error {
	for _, pkg := range pass.Module.Pkgs {
		for _, file := range pkg.Files {
			checkPlanWidths(pass, pkg, file)
			checkLaneLoops(pass, pkg, file)
		}
	}
	return nil
}

// checkPlanWidths flags constant out-of-range widths at plan lookups.
func checkPlanWidths(pass *lint.Pass, pkg *lint.Package, file *ast.File) {
	lint.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lint.CalleeFunc(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
			return true
		}
		if fn.Name() != "PlanFor" && fn.Name() != "PlanFor512" {
			return true
		}
		if !lint.PathHasSuffix(fn.Pkg().Path(), "pipeline") {
			return true
		}
		w, ok := constIntValue(pkg.Info, call.Args[0])
		if !ok || (w >= 0 && w <= maxPlanWidth) {
			return true
		}
		if errCaptured(stack, call) {
			return true // deliberately testing the width validation
		}
		pass.Reportf(call.Args[0].Pos(), "constant width %d is outside the plan table range [0, %d]", w, maxPlanWidth)
		return true
	})
}

// errCaptured reports whether the call's error result is captured by the
// enclosing statement (p, err := PlanFor(w)).
func errCaptured(stack []ast.Node, call *ast.CallExpr) bool {
	if len(stack) == 0 {
		return false
	}
	assign, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 || assign.Rhs[0] != call || len(assign.Lhs) != 2 {
		return false
	}
	id, ok := assign.Lhs[1].(*ast.Ident)
	return ok && id.Name != "_"
}

// checkLaneLoops flags counted loops indexing a fixed-size array past its
// length.
func checkLaneLoops(pass *lint.Pass, pkg *lint.Package, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond == nil || loop.Body == nil {
			return true
		}
		idx, bound, ok := countedLoop(pkg.Info, loop)
		if !ok {
			return true
		}
		ast.Inspect(loop.Body, func(n ast.Node) bool {
			ie, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			id, ok := ie.Index.(*ast.Ident)
			if !ok || pkg.Info.Uses[id] != idx {
				return true
			}
			alen, ok := arrayLen(pkg.Info, ie.X)
			if !ok || bound <= alen {
				return true
			}
			pass.Reportf(ie.Pos(), "loop bound %d exceeds array length %d", bound, alen)
			return true
		})
		return true
	})
}

// countedLoop matches `for i := 0; i < K; i++` (or <=) with K a constant,
// returning the index object and the exclusive upper bound.
func countedLoop(info *types.Info, loop *ast.ForStmt) (idx types.Object, bound int64, ok bool) {
	init, ok := loop.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 {
		return nil, 0, false
	}
	id, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, 0, false
	}
	obj := info.Defs[id]
	if obj == nil {
		return nil, 0, false
	}
	start, ok := constIntValue(info, init.Rhs[0])
	if !ok || start != 0 {
		return nil, 0, false
	}
	cond, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return nil, 0, false
	}
	condID, ok := cond.X.(*ast.Ident)
	if !ok || info.Uses[condID] != obj {
		return nil, 0, false
	}
	k, ok := constIntValue(info, cond.Y)
	if !ok {
		return nil, 0, false
	}
	if cond.Op == token.LEQ {
		k++
	}
	return obj, k, true
}

// arrayLen returns the length of e's array type, following pointers to
// arrays (which index implicitly in Go).
func arrayLen(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return 0, false
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	if a, ok := t.(*types.Array); ok {
		return a.Len(), true
	}
	return 0, false
}

// constIntValue constant-folds e to an int64 if possible.
func constIntValue(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
