// Package kernel exercises obsguard rule 2: counter mutations in
// //etsqp:hotpath functions must sit behind an obs.Enabled() check.
package kernel

import "fixture.test/obsguard/internal/obs"

//etsqp:hotpath
func Sum(vals []int64) int64 {
	var s int64
	for _, v := range vals {
		s += v
	}
	obs.Ops.Add(int64(len(vals))) // want `obs counter update in hot path Sum is not behind obs\.Enabled\(\)`
	return s
}

//etsqp:hotpath
func SumGated(vals []int64) int64 {
	var s int64
	for _, v := range vals {
		s += v
	}
	if len(vals) > 0 && obs.Enabled() {
		obs.Ops.Add(int64(len(vals))) // gated: not flagged
	}
	return s
}

//etsqp:hotpath
func Hist(vals []int64) int64 {
	var s int64
	for _, v := range vals {
		s += v
	}
	obs.Latency.Observe(s) // want `obs counter update in hot path Hist is not behind obs\.Enabled\(\)`
	return s
}

//etsqp:hotpath
func HistGated(vals []int64) int64 {
	var s int64
	for _, v := range vals {
		s += v
	}
	if obs.Enabled() {
		obs.Latency.Observe(s) // gated: not flagged
	}
	return s
}

//etsqp:hotpath
func GaugeSet(vals []int64) int64 {
	var s int64
	for _, v := range vals {
		s += v
	}
	obs.Goroutines.Set(s) // want `obs counter update in hot path GaugeSet is not behind obs\.Enabled\(\)`
	return s
}

//etsqp:hotpath
func Exemplar(vals []int64) int64 {
	var s int64
	for _, v := range vals {
		s += v
	}
	obs.Latency.ObserveExemplar(s, "tid") // want `obs counter update in hot path Exemplar is not behind obs\.Enabled\(\)`
	if obs.Enabled() {
		obs.Latency.ObserveExemplar(s, "tid") // gated: not flagged
		obs.Goroutines.Set(s)                 // gated: not flagged
	}
	return s
}

// Cold is not a hot path; ungated updates are fine (the helper itself
// carries the enable gate).
func Cold(vals []int64) {
	obs.Ops.Add(int64(len(vals)))
	obs.Latency.Observe(int64(len(vals)))
	obs.Goroutines.Set(int64(len(vals)))
	obs.Latency.ObserveExemplar(int64(len(vals)), "tid")
}
