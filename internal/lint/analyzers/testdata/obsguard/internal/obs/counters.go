// The fixture's metric registry. Rule 3 cross-checks these names
// against docs/OBSERVABILITY.md: the doc's `fixture.ghost` row has no
// registration, so the package clause below carries its diagnostic.

package obs // want `docs/OBSERVABILITY\.md documents fixture\.ghost but no such metric is registered`

var (
	Queries = newCounter("fixture.queries",
		"queries executed")
	Dropped = newCounter("fixture.dropped", // want `metric fixture\.dropped is not documented in docs/OBSERVABILITY\.md`
		"missing from the doc tables")
	Latency = newHistogram("fixture.latency_ns",
		"query latency distribution")
	Goroutines = newGauge("fixture.goroutines",
		"live goroutines at last sample")
)
