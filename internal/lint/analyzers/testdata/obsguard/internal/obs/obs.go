// Package obs mirrors the real observability layer's shape so the
// obsguard fixture can exercise both rules: storage-field access outside
// the atomic helpers, and ungated mutations in hot paths.
package obs

import "sync/atomic"

var enabled atomic.Bool

// Enabled reports whether counters are collected.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter when collection is enabled.
func (c *Counter) Add(n int64) {
	if !Enabled() {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Timer accumulates nanoseconds.
type Timer struct{ c Counter }

// AddNanos folds an elapsed duration into the timer.
func (t *Timer) AddNanos(n int64) { t.c.Add(n) }

// Gauge mirrors the real last-value metric.
type Gauge struct{ v atomic.Int64 }

// Set records the current value when collection is enabled.
func (g *Gauge) Set(v int64) {
	if !Enabled() {
		return
	}
	g.v.Store(v)
}

// exemplarCell mirrors the real seqlock exemplar slot.
type exemplarCell struct {
	seq atomic.Uint64
	val atomic.Int64
}

// Histogram mirrors the real power-of-two-bucket distribution metric.
type Histogram struct {
	buckets [4]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
	ex      [4]exemplarCell
	name    string
}

// Observe records one value when collection is enabled.
func (h *Histogram) Observe(v int64) {
	if !Enabled() {
		return
	}
	h.buckets[0].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveExemplar records one value with an exemplar trace ID.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	h.Observe(v)
	if !Enabled() || traceID == "" {
		return
	}
	h.ex[0].val.Store(v)
	h.ex[0].seq.Add(2)
}

// registry mirrors the real package's declaration-order metric list.
var registry []string

func newCounter(name, help string) *Counter {
	registry = append(registry, name)
	return new(Counter)
}

func newGauge(name, help string) *Gauge {
	registry = append(registry, name)
	return new(Gauge)
}

func newHistogram(name, help string) *Histogram {
	registry = append(registry, name)
	return &Histogram{name: name}
}

// Ops is the package's example counter.
var Ops Counter

// Capture may read counter storage directly: it is a sanctioned helper.
func Capture() int64 {
	return Ops.v.Load()
}

// CaptureHistograms is likewise sanctioned for histogram storage.
func CaptureHistograms() int64 {
	return Latency.count.Load()
}

// CaptureGauges is sanctioned for gauge storage.
func CaptureGauges() int64 {
	return Goroutines.v.Load()
}

// CaptureExemplars is sanctioned for exemplar storage.
func CaptureExemplars() uint64 {
	return Latency.ex[0].seq.Load()
}

// Zero bypasses the helpers; rule 1 flags the storage access.
func Zero() {
	Ops.v.Store(0) // want `direct access to counter storage outside the atomic helpers; use Add/Inc/Load`
}

// Drain bypasses the helpers; rule 1 flags histogram storage too.
func Drain(h *Histogram) int64 {
	return h.sum.Load() // want `direct access to histogram storage outside the atomic helpers; use Observe/Snapshot`
}

// Peek bypasses the gauge helpers; rule 1 flags gauge storage too.
func Peek(g *Gauge) int64 {
	return g.v.Load() // want `direct access to counter storage outside the atomic helpers; use Add/Inc/Load`
}

// Steal bypasses the seqlock; rule 1 flags exemplar storage.
func Steal(h *Histogram) uint64 {
	return h.ex[1].seq.Load() // want `direct access to histogram exemplar storage outside the seqlock helpers; use ObserveExemplar/Exemplars`
}
