// Package obs mirrors the real observability layer's shape so the
// obsguard fixture can exercise both rules: storage-field access outside
// the atomic helpers, and ungated mutations in hot paths.
package obs

import "sync/atomic"

var enabled atomic.Bool

// Enabled reports whether counters are collected.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter when collection is enabled.
func (c *Counter) Add(n int64) {
	if !Enabled() {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Timer accumulates nanoseconds.
type Timer struct{ c Counter }

// AddNanos folds an elapsed duration into the timer.
func (t *Timer) AddNanos(n int64) { t.c.Add(n) }

// Ops is the package's example counter.
var Ops Counter

// Capture may read counter storage directly: it is a sanctioned helper.
func Capture() int64 {
	return Ops.v.Load()
}

// Zero bypasses the helpers; rule 1 flags the storage access.
func Zero() {
	Ops.v.Store(0) // want `direct access to counter storage outside the atomic helpers; use Add/Inc/Load`
}
