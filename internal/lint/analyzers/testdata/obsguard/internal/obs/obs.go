// Package obs mirrors the real observability layer's shape so the
// obsguard fixture can exercise both rules: storage-field access outside
// the atomic helpers, and ungated mutations in hot paths.
package obs

import "sync/atomic"

var enabled atomic.Bool

// Enabled reports whether counters are collected.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter when collection is enabled.
func (c *Counter) Add(n int64) {
	if !Enabled() {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Timer accumulates nanoseconds.
type Timer struct{ c Counter }

// AddNanos folds an elapsed duration into the timer.
func (t *Timer) AddNanos(n int64) { t.c.Add(n) }

// Histogram mirrors the real power-of-two-bucket distribution metric.
type Histogram struct {
	buckets [4]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
	name    string
}

// Observe records one value when collection is enabled.
func (h *Histogram) Observe(v int64) {
	if !Enabled() {
		return
	}
	h.buckets[0].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// registry mirrors the real package's declaration-order metric list.
var registry []string

func newCounter(name, help string) *Counter {
	registry = append(registry, name)
	return new(Counter)
}

func newHistogram(name, help string) *Histogram {
	registry = append(registry, name)
	return &Histogram{name: name}
}

// Ops is the package's example counter.
var Ops Counter

// Capture may read counter storage directly: it is a sanctioned helper.
func Capture() int64 {
	return Ops.v.Load()
}

// CaptureHistograms is likewise sanctioned for histogram storage.
func CaptureHistograms() int64 {
	return Latency.count.Load()
}

// Zero bypasses the helpers; rule 1 flags the storage access.
func Zero() {
	Ops.v.Store(0) // want `direct access to counter storage outside the atomic helpers; use Add/Inc/Load`
}

// Drain bypasses the helpers; rule 1 flags histogram storage too.
func Drain(h *Histogram) int64 {
	return h.sum.Load() // want `direct access to histogram storage outside the atomic helpers; use Observe/Snapshot`
}
