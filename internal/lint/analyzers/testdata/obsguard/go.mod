module fixture.test/obsguard

go 1.22
