module fixture.test/plantable

go 1.22
