package pipeline

func widths() {
	p, _ := PlanFor(33) // want `constant width 33 is outside the plan table range \[0, 32\]`
	_ = p
	q, _ := PlanFor512(64) // want `constant width 64 is outside the plan table range \[0, 32\]`
	_ = q
	r, err := PlanFor(40) // error captured: deliberately testing validation
	_, _ = r, err
	s, _ := PlanFor(10) // in range: fine
	_ = s
}

func laneLoops() uint32 {
	var v [8]uint32
	for i := 0; i < 16; i++ {
		v[i&7] += uint32(i)
	}
	for i := 0; i < 16; i++ {
		v[i] = uint32(i) // want `loop bound 16 exceeds array length 8`
	}
	for i := 0; i < 8; i++ {
		v[i] = uint32(i) // bound matches the lane count: fine
	}
	var w [16]uint32
	for i := 0; i <= 15; i++ {
		w[i] = uint32(i) // inclusive bound still within range: fine
	}
	return v[0] + w[0]
}
