// Package pipeline mirrors the real plan-table API shape so the
// plantable fixture can exercise constant-width checks at PlanFor call
// sites and counted-loop lane bounds.
package pipeline

import "errors"

// ErrWidthRange mirrors the real pipeline's width validation error.
var ErrWidthRange = errors.New("pipeline: width out of range")

// Plan is a stand-in for the JIT unpack tables.
type Plan struct{ Width uint }

// PlanFor returns the plan for a packing width, or ErrWidthRange.
func PlanFor(width uint) (*Plan, error) {
	if width > 32 {
		return nil, ErrWidthRange
	}
	return &Plan{Width: width}, nil
}

// PlanFor512 is the 512-bit variant.
func PlanFor512(width uint) (*Plan, error) {
	return PlanFor(width)
}
