module fixture.test/sharedwrite

go 1.22
