// Package fanout exercises sharedwrite: goroutines spawned in loops must
// write only disjoint per-worker slots, and slot-written results must be
// read after wg.Wait().
package fanout

import (
	"sync"
	"sync/atomic"
)

func work(i int) int { return i * i }

// GoodSlots is the blessed fan-out: slot indexed by the loop variable via
// a parameter, results read only after Wait.
func GoodSlots(n int) []int {
	res := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res[i] = work(i)
		}(i)
	}
	wg.Wait()
	return res
}

// GoodLoopVarCapture indexes by the captured loop variable directly —
// disjoint since go 1.22 gives each iteration its own variable.
func GoodLoopVarCapture(n int) []int {
	res := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res[i] = work(i)
		}()
	}
	wg.Wait()
	return res
}

// GoodChannel communicates over a channel instead of shared memory.
func GoodChannel(n int) int {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) { ch <- work(i) }(i)
	}
	total := 0
	for j := 0; j < n; j++ {
		total += <-ch
	}
	return total
}

// BadCounter increments a plain shared variable from every worker.
func BadCounter(n int) int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			total += work(i) // want `goroutine in BadCounter writes shared variable total`
		}(i)
	}
	wg.Wait()
	return total
}

// BadFixedSlot parameterizes the slot but feeds it a constant, so every
// worker writes slot zero.
func BadFixedSlot(n int) []int {
	res := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			res[slot] = work(slot) // want `goroutine in BadFixedSlot writes res through an index that is not the spawn loop variable`
		}(0)
	}
	wg.Wait()
	return res
}

// BadFreeIndex indexes by a variable captured from outside the loop,
// which all workers share.
func BadFreeIndex(n int) []int {
	res := make([]int, n)
	k := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res[k] = work(k) // want `goroutine in BadFreeIndex writes res through an index that is not the spawn loop variable`
		}()
	}
	wg.Wait()
	return res
}

// BadCopy bulk-copies into a shared slice with no per-worker slot.
func BadCopy(n int, dst, src []int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			copy(dst, src) // want `goroutine in BadCopy copies into shared variable dst`
		}(i)
	}
	wg.Wait()
}

// BadSliceWindow copies into a window of the shared slice whose bound is
// computed, not the loop variable itself.
func BadSliceWindow(n int, dst, src []int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			copy(dst[i*2:], src) // want `goroutine in BadSliceWindow copies into dst through an index that is not the spawn loop variable`
		}(i)
	}
	wg.Wait()
}

// BadEarlyRead reads the slot-written results before Wait.
func BadEarlyRead(n int) []int {
	res := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res[i] = work(i)
		}(i)
	}
	first := res[0] // want `res in BadEarlyRead is read before wg.Wait\(\)`
	wg.Wait()
	res[0] = first
	return res
}

// BadNoWait merges slot results with no WaitGroup at all.
func BadNoWait(n int) []int {
	res := make([]int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			res[i] = work(i)
		}(i)
	}
	return res // want `per-worker slots of res in BadNoWait are read without a wg.Wait\(\)`
}

// GoodClaimedIndex writes through indices claimed from a shared atomic
// counter — every Add return value reaches exactly one goroutine, so the
// slots are disjoint (the work-stealing morsel ownership pattern).
func GoodClaimedIndex(n, workers int) []int {
	res := make([]int, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				res[i] = work(i)
			}
		}()
	}
	wg.Wait()
	return res
}

// GoodClaimedIndexField claims from an atomic counter reached through a
// captured struct, as the engine's range executor does.
func GoodClaimedIndexField(n, workers int) []int {
	var state struct {
		next atomic.Int32
	}
	res := make([]int, n)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(state.next.Add(1)) - 1
				if i >= n {
					return
				}
				res[i] = work(i)
			}
		}()
	}
	wg.Wait()
	return res
}

// BadClaimedEarlyRead claims indices correctly but reads the results
// before Wait — the claim makes writes disjoint, not visible.
func BadClaimedEarlyRead(n, workers int) []int {
	res := make([]int, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				res[i] = work(i)
			}
		}()
	}
	first := res[0] // want `res in BadClaimedEarlyRead is read before wg.Wait\(\)`
	wg.Wait()
	res[0] = first
	return res
}

// BadLocalCounter declares the counter inside the goroutine: each worker
// counts from zero, so the "claimed" indices collide across workers.
func BadLocalCounter(n, workers int) []int {
	res := make([]int, n)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var next atomic.Int64
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				res[i] = work(i) // want `goroutine in BadLocalCounter writes res through an index that is not the spawn loop variable`
			}
		}()
	}
	wg.Wait()
	return res
}

// BadDerivedNotClaimed assigns the index from plain arithmetic on a
// captured variable, not an atomic claim.
func BadDerivedNotClaimed(n, workers int) []int {
	res := make([]int, n)
	k := 0
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := k + 1
			res[i] = work(i) // want `goroutine in BadDerivedNotClaimed writes res through an index that is not the spawn loop variable`
		}()
	}
	wg.Wait()
	return res
}
