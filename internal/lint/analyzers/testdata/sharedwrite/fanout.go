// Package fanout exercises sharedwrite: goroutines spawned in loops must
// write only disjoint per-worker slots, and slot-written results must be
// read after wg.Wait().
package fanout

import "sync"

func work(i int) int { return i * i }

// GoodSlots is the blessed fan-out: slot indexed by the loop variable via
// a parameter, results read only after Wait.
func GoodSlots(n int) []int {
	res := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res[i] = work(i)
		}(i)
	}
	wg.Wait()
	return res
}

// GoodLoopVarCapture indexes by the captured loop variable directly —
// disjoint since go 1.22 gives each iteration its own variable.
func GoodLoopVarCapture(n int) []int {
	res := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res[i] = work(i)
		}()
	}
	wg.Wait()
	return res
}

// GoodChannel communicates over a channel instead of shared memory.
func GoodChannel(n int) int {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) { ch <- work(i) }(i)
	}
	total := 0
	for j := 0; j < n; j++ {
		total += <-ch
	}
	return total
}

// BadCounter increments a plain shared variable from every worker.
func BadCounter(n int) int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			total += work(i) // want `goroutine in BadCounter writes shared variable total`
		}(i)
	}
	wg.Wait()
	return total
}

// BadFixedSlot parameterizes the slot but feeds it a constant, so every
// worker writes slot zero.
func BadFixedSlot(n int) []int {
	res := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			res[slot] = work(slot) // want `goroutine in BadFixedSlot writes res through an index that is not the spawn loop variable`
		}(0)
	}
	wg.Wait()
	return res
}

// BadFreeIndex indexes by a variable captured from outside the loop,
// which all workers share.
func BadFreeIndex(n int) []int {
	res := make([]int, n)
	k := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res[k] = work(k) // want `goroutine in BadFreeIndex writes res through an index that is not the spawn loop variable`
		}()
	}
	wg.Wait()
	return res
}

// BadCopy bulk-copies into a shared slice with no per-worker slot.
func BadCopy(n int, dst, src []int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			copy(dst, src) // want `goroutine in BadCopy copies into shared variable dst`
		}(i)
	}
	wg.Wait()
}

// BadSliceWindow copies into a window of the shared slice whose bound is
// computed, not the loop variable itself.
func BadSliceWindow(n int, dst, src []int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			copy(dst[i*2:], src) // want `goroutine in BadSliceWindow copies into dst through an index that is not the spawn loop variable`
		}(i)
	}
	wg.Wait()
}

// BadEarlyRead reads the slot-written results before Wait.
func BadEarlyRead(n int) []int {
	res := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res[i] = work(i)
		}(i)
	}
	first := res[0] // want `res in BadEarlyRead is read before wg.Wait\(\)`
	wg.Wait()
	res[0] = first
	return res
}

// BadNoWait merges slot results with no WaitGroup at all.
func BadNoWait(n int) []int {
	res := make([]int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			res[i] = work(i)
		}(i)
	}
	return res // want `per-worker slots of res in BadNoWait are read without a wg.Wait\(\)`
}
