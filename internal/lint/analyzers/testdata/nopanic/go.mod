module fixture.test/nopanic

go 1.22
