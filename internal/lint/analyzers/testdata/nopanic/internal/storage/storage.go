// Package storage exercises the nopanic analyzer: panics statically
// reachable from exported Decode*/Read*/Unmarshal* functions in the
// decode package trees are flagged unless //etsqp:trusted.
package storage

import "errors"

var errEmpty = errors.New("empty page")

// DecodePage is an untrusted-input entry point.
func DecodePage(b []byte) error {
	if len(b) == 0 {
		panic("storage: empty page") // want `panic in DecodePage is reachable from a decode entry point`
	}
	return check(b)
}

// check is reachable from DecodePage, so its panic is flagged too.
func check(b []byte) error {
	if len(b) > 1<<20 {
		panic("storage: page too large") // want `panic in check is reachable from a decode entry point`
	}
	return nil
}

// ReadHeader returns errors properly: nothing to flag.
func ReadHeader(b []byte) (byte, error) {
	if len(b) == 0 {
		return 0, errEmpty
	}
	return b[0], nil
}

// UnmarshalTrusted keeps its programmer-error guard via the escape hatch.
//
//etsqp:trusted
func UnmarshalTrusted(b []byte) {
	if b == nil {
		panic("storage: nil input") // trusted: not flagged
	}
}

// orphan panics but is not reachable from any entry point.
func orphan() {
	panic("storage: unreachable")
}

type page struct{ n int }

// DecodeBody looks like an entry, but its receiver type is unexported
// and nothing reachable calls it.
func (p *page) DecodeBody() {
	panic("storage: not an entry")
}
