// Package util is outside the decode package trees: its Decode-named
// function may panic without being flagged.
package util

// DecodeThing is not in a decode package; the analyzer ignores it.
func DecodeThing(b []byte) byte {
	if len(b) == 0 {
		panic("util: empty")
	}
	return b[0]
}
