// Package boundscontract exercises the module-wide //etsqp:bounds
// parameter contracts: every call site of an annotated function must
// pass arguments whose intervals fit the declared ranges.
package boundscontract

// decodeLane requires a hardware-meaningful lane width.
//
//etsqp:bounds width [0, 32]
func decodeLane(width int64) int64 {
	return int64(1) << width
}

// fillPage's capacity bound is exclusive.
//
//etsqp:bounds n [0, 4096)
func fillPage(n int64) int64 { return n }

// ok: a constant in range.
func callConst() int64 {
	return decodeLane(17)
}

// ok: the caller narrows before the call.
func callNarrowed(w int64) int64 {
	if w < 0 || w > 32 {
		return 0
	}
	return decodeLane(w)
}

// bad: unvalidated input flows to the bounded parameter.
func callWild(w int64) int64 {
	return decodeLane(w) // want `argument "width" to decodeLane has interval \[-9223372036854775808, 9223372036854775807\], outside declared //etsqp:bounds width \[0, 32\]`
}

// bad: an off-by-one against the exclusive page bound.
func callEdge(n int64) int64 {
	if n < 0 || n > 4096 {
		return 0
	}
	return fillPage(n) // want `argument "n" to fillPage has interval \[0, 4096\], outside declared //etsqp:bounds n \[0, 4095\]`
}

// Header's field bound feeds call-site intervals.
type Header struct {
	//etsqp:bounds [0, 64]
	Width int64
}

// bad: the field bound alone is wider than decodeLane's contract.
func callFromField(h Header) int64 {
	return decodeLane(h.Width) // want `argument "width" to decodeLane has interval \[0, 64\], outside declared //etsqp:bounds width \[0, 32\]`
}

// ok: the guard narrows the field path below the contract.
func callFromFieldNarrowed(h Header) int64 {
	if h.Width > 32 {
		return 0
	}
	return decodeLane(h.Width)
}
