module fixture.test/boundscontract

go 1.22
