package sqlparse // want `docs/QUERYING.md documents token FOO but the parser does not accept it`

import "strings"

type parser struct {
	toks []string
	pos  int
}

func (p *parser) acceptKw(kw string) bool {
	if p.pos < len(p.toks) && strings.EqualFold(p.toks[p.pos], kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) bool { return p.acceptKw(kw) }

func (p *parser) parse() bool {
	if !p.expectKw("SELECT") {
		return false
	}
	if !p.expectKw("FROM") {
		return false
	}
	return p.acceptKw("ZORP") // want `grammar token ZORP is not documented in docs/QUERYING.md`
}

var aggNames = map[string]int{
	"SUM":  1,
	"MAXX": 2, // want `grammar token MAXX is not documented in docs/QUERYING.md`
}

var cmpOps = map[string]int{"<": 1, "<=": 2}

func isColumnName(s string) bool {
	switch strings.ToUpper(s) {
	case "A", "TIME":
		return true
	}
	return false
}
