module fixture.test/querydoc

go 1.22
