module fixture.test/atomicfield

go 1.22
