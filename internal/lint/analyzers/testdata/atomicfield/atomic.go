// Package atomicfield exercises //etsqp:atomic in both styles: modern
// atomic.Int64-typed fields and legacy plain integers driven through
// the sync/atomic functions.
package atomicfield

import "sync/atomic"

type Counter struct {
	hits  atomic.Int64 //etsqp:atomic
	skips int64        //etsqp:atomic
	name  string
}

func (c *Counter) Hit() { c.hits.Add(1) } // ok: sync/atomic method

func (c *Counter) Skip() { atomic.AddInt64(&c.skips, 1) } // ok: address into sync/atomic

func (c *Counter) Load() int64 { return c.hits.Load() } // ok

func (c *Counter) Name() string { return c.name } // ok: unannotated field

func (c *Counter) racyRead() int64 {
	return c.skips // want `plain read of atomic field Counter.skips \(use sync/atomic\)`
}

func (c *Counter) racyWrite() {
	c.skips = 0 // want `plain write to atomic field Counter.skips \(use sync/atomic\)`
}

func (c *Counter) racyIncr() {
	c.skips++ // want `plain write to atomic field Counter.skips \(use sync/atomic\)`
}

func (c *Counter) escape() *int64 {
	return &c.skips // want `address of atomic field Counter.skips escapes \(pass it only to sync/atomic operations\)`
}

func (c *Counter) copyValue() int64 {
	v := c.hits // want `plain read of atomic field Counter.hits \(use sync/atomic\)`
	return v.Load()
}

// timed mirrors engine's stats helper: a pointer-to-atomic parameter is
// an allowed sink for a field address.
func timed(v *atomic.Int64, f func()) {
	v.Add(1)
	f()
}

func (c *Counter) Timed(f func()) { timed(&c.hits, f) } // ok: *atomic.Int64 parameter
