package atomicfield

import "sync/atomic"

// Hist exercises arrays of atomics, the obs.Histogram shape.
type Hist struct {
	buckets [8]atomic.Int64 //etsqp:atomic
	legacy  [4]int64        //etsqp:atomic
}

func (h *Hist) Observe(i int) { h.buckets[i].Add(1) } // ok: element method

func (h *Hist) ObserveLegacy(i int) { atomic.AddInt64(&h.legacy[i], 1) } // ok: element address into sync/atomic

func (h *Hist) Sum() int64 {
	var s int64
	for i := range h.buckets { // ok: index-only range
		s += h.buckets[i].Load()
	}
	return s
}

func (h *Hist) Buckets() int { return len(h.buckets) } // ok: len

func (h *Hist) racyElem(i int) int64 {
	x := h.buckets[i] // want `plain read of atomic field Hist.buckets \(use sync/atomic\)`
	return x.Load()
}

func (h *Hist) racyRange() int64 {
	var s int64
	for _, b := range h.buckets { // want `plain read of atomic field Hist.buckets \(use sync/atomic\)`
		s += b.Load()
	}
	return s
}

// BadAtomic exercises directive validation: only sync/atomic types,
// arrays of them, and plain integers can honor the contract.
type BadAtomic struct {
	//etsqp:atomic
	s []int // want `//etsqp:atomic on BadAtomic.s: type \[\]int is not a sync/atomic type, an array of them, or a plain integer`
}
