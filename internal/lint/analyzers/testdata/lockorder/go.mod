module fixture.test/lockorder

go 1.22
