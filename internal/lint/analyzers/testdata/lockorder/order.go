// Package lockorder exercises the module-wide lock-acquisition graph:
// direct inversions, inversions threaded through calls, a clean
// hierarchy, //etsqp:locked seeding and goroutine exclusion.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock acquisition order cycle: lockorder\.A\.mu -> lockorder\.B\.mu -> lockorder\.A\.mu`
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // the inverse ordering that closes the cycle
	a.mu.Unlock()
	b.mu.Unlock()
}
