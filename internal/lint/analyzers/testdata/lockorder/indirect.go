package lockorder

import "sync"

// C and D invert their order through calls: the edge comes from the
// callee's transitive acquisition summary, not a direct Lock.
type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

func lockC(c *C) {
	c.mu.Lock()
	c.mu.Unlock()
}

func cThenD(c *C, d *D) {
	c.mu.Lock()
	lockD(d) // want `lock acquisition order cycle: lockorder\.C\.mu -> lockorder\.D\.mu -> lockorder\.C\.mu`
	c.mu.Unlock()
}

func dThenC(c *C, d *D) {
	d.mu.Lock()
	lockC(c) // the inverse ordering, through a call as well
	d.mu.Unlock()
}
