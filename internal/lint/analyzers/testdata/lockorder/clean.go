package lockorder

import "sync"

// Store -> Series2 is a clean two-level hierarchy: one consistent
// order, no finding.
type Store struct {
	mu     sync.RWMutex
	series map[string]*Series2
}

type Series2 struct {
	mu    sync.RWMutex
	pages []int
}

func (st *Store) appendTo(name string, v int) {
	st.mu.Lock()
	ser := st.series[name]
	ser.mu.Lock()
	ser.pages = append(ser.pages, v)
	ser.mu.Unlock()
	st.mu.Unlock()
}

// P's locked helper acquires Q.mu: the //etsqp:locked seed contributes
// the P.mu -> Q.mu edge even with no resolvable call chain. Acyclic.
type P struct {
	mu sync.Mutex
	q  Q
}

type Q struct{ mu sync.Mutex }

//etsqp:locked mu
func (p *P) pokeLocked() {
	p.q.mu.Lock()
	p.q.mu.Unlock()
}

// R and S would form a cycle only if goroutine bodies inherited the
// spawner's held locks; they run later and must not.
type R struct{ mu sync.Mutex }

type S struct{ mu sync.Mutex }

func spawnRS(r *R, s *S) {
	r.mu.Lock()
	go func() {
		s.mu.Lock()
		s.mu.Unlock()
	}()
	r.mu.Unlock()
}

func sThenR(r *R, s *S) {
	s.mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	s.mu.Unlock()
}
