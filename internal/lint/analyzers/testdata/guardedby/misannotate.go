package guardedby

import "sync"

// Bad exercises directive validation: the guard must name a sibling
// sync.Mutex/RWMutex field.
type Bad struct {
	//etsqp:guardedby missing
	data []int // want `//etsqp:guardedby missing: Bad.data has no field "missing"`
	//etsqp:guardedby notMu
	n     int // want `field "notMu" of Bad is int, not a sync.Mutex or sync.RWMutex`
	notMu int
	mu    sync.Mutex
}

//etsqp:locked nothere
func (b *Bad) helper() { // want `//etsqp:locked nothere: "nothere" is not a sync.Mutex/RWMutex reachable from helper`
	b.n++
}
