module fixture.test/guardedby

go 1.22
