// Package guardedby exercises the //etsqp:guardedby lock-set checks on
// a protocol modeled after storage.Series — including the historical
// ingest-vs-read race, where Series.Pages was read with no lock while
// an ingest goroutine appended to it.
package guardedby

import "sync"

type PagePair struct{ N int }

type Series struct {
	Name  string
	Pages []PagePair //etsqp:guardedby mu
	mu    sync.RWMutex
}

// pagesSnapshot is the canonical read accessor: the deferred RUnlock
// keeps the lock held through the return expression.
func (s *Series) pagesSnapshot() []PagePair {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.Pages // ok: read lock held to function exit
}

func (s *Series) NumPoints() int {
	n := 0
	for _, p := range s.pagesSnapshot() {
		n += p.N
	}
	return n
}

func (s *Series) Append(p PagePair) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Pages = append(s.Pages, p) // ok: write lock held
}

// racyLen reproduces the historical ingest-vs-read race.
func (s *Series) racyLen() int {
	return len(s.Pages) // want `read of Series.Pages without holding s.mu \(//etsqp:guardedby\)`
}

// racyAppend mutates the page list while only read-locked.
func (s *Series) racyAppend(p PagePair) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.Pages = append(s.Pages, p) // want `write to Series.Pages with s.mu read-locked \(write lock required\)`
}

// branchy holds at least a read lock on every path: the branch merge
// keeps the weaker strength, which satisfies a read.
func (s *Series) branchy(write bool) int {
	if write {
		s.mu.Lock()
		defer s.mu.Unlock()
	} else {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	return len(s.Pages) // ok: read-locked or better on both paths
}

// maybeReset locks on only one path, so the write is unproven.
func (s *Series) maybeReset(cond bool) {
	if cond {
		s.mu.Lock()
	}
	s.Pages = nil // want `write to Series.Pages without holding s.mu \(//etsqp:guardedby\)`
	if cond {
		s.mu.Unlock()
	}
}

// asyncRead spawns a goroutine under the lock: the goroutine body runs
// later with an empty lock set and must re-acquire for itself.
func (s *Series) asyncRead() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		_ = s.Pages // want `read of Series.Pages without holding s.mu \(//etsqp:guardedby\)`
	}()
}

// useAfterUnlock loses the lock at the explicit Unlock.
func (s *Series) useAfterUnlock() {
	s.mu.Lock()
	s.Pages = nil // ok
	s.mu.Unlock()
	s.Pages = nil // want `write to Series.Pages without holding s.mu \(//etsqp:guardedby\)`
}

// drain unlocks and relocks inside the loop: the lock is held at loop
// entry, after every iteration and after the loop, so the fixpoint
// proves every access.
func (s *Series) drain() {
	s.mu.Lock()
	for len(s.Pages) > 0 {
		s.Pages = s.Pages[:len(s.Pages)-1]
		s.mu.Unlock()
		s.mu.Lock()
	}
	s.mu.Unlock()
}

// leakyDrain drops the lock inside the loop without reacquiring it, so
// iterations after the first run unlocked.
func (s *Series) leakyDrain() {
	s.mu.Lock()
	for i := 0; i < 3; i++ {
		_ = s.Pages // want `read of Series.Pages without holding s.mu \(//etsqp:guardedby\)`
		s.mu.Unlock()
	}
}
