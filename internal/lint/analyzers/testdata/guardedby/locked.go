package guardedby

import "sync"

// Pool exercises //etsqp:locked accessor protocols: annotated helpers
// assume the lock, and their call sites must prove it.
type Pool struct {
	active []int //etsqp:guardedby mu
	mu     sync.RWMutex
}

// compactLocked requires the caller to hold p.mu for writing.
//
//etsqp:locked mu
func (p *Pool) compactLocked() {
	p.active = p.active[:0] // ok: lock seeded by the annotation
}

func (p *Pool) Shrink() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.compactLocked() // ok: write lock held at the call
}

func (p *Pool) badShrink() {
	p.compactLocked() // want `call to compactLocked requires holding p.mu \(//etsqp:locked\)`
}

// readShrink holds only the read lock, which is not enough for a
// helper that mutates guarded state.
func (p *Pool) readShrink() {
	p.mu.RLock()
	defer p.mu.RUnlock()
	p.compactLocked() // want `call to compactLocked requires holding p.mu \(//etsqp:locked\)`
}
