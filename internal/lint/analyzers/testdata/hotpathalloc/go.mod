module fixture.test/hotpathalloc

go 1.22
