// Package hot exercises the hotpathalloc analyzer: allocating constructs
// in //etsqp:hotpath functions and their module callees are flagged;
// //etsqp:coldpath stops the traversal.
package hot

import "fmt"

type anyT = interface{}

//etsqp:hotpath
func Kernel(out []int64, n int) []int64 {
	buf := make([]int64, n) // want `hot path Kernel calls make \(allocates\)`
	_ = buf
	out = append(out, 1) // want `hot path Kernel calls append \(growth allocates\)`
	f := func() {}       // want `hot path Kernel contains a closure \(allocates\)`
	f()
	fmt.Println(n) // want `hot path Kernel calls fmt\.Println \(allocates\)`
	_ = anyT(n)    // want `hot path Kernel converts concrete value to interface \(allocates\)`
	takeAny(n)     // want `hot path Kernel passes concrete value as interface argument \(allocates\)`
	return out
}

func takeAny(v interface{}) {}

// helper is unannotated but reachable from Outer's hot closure.
func helper(n int) {
	_ = make([]byte, n) // want `hot path helper calls make \(allocates\)`
}

//etsqp:hotpath
func Outer(n int) {
	helper(n)
}

// setup allocates, but coldpath stops the traversal: cached, amortized
// construction is allowed to allocate.
//
//etsqp:coldpath
func setup() []int64 {
	return make([]int64, 8)
}

//etsqp:hotpath
func UsesSetup() int64 {
	p := setup()
	if len(p) == 0 {
		return 0
	}
	return p[0]
}

//etsqp:hotpath
func CleanKernel(vals []int64) int64 {
	var arr [8]int64
	window := arr[:4] // slicing a stack array does not allocate
	var s int64
	for i, v := range vals {
		s += v
		window[i&3] = v
	}
	return s + window[0]
}

func variadic(vs ...interface{}) {}

//etsqp:hotpath
func Forward(vs []interface{}) {
	variadic(vs...) // forwarding an existing slice: no boxing
}

// NotHot allocates freely: it is not in any hot closure.
func NotHot(n int) []int64 {
	return make([]int64, n)
}
