module fixture.test/rangecheck

go 1.22
