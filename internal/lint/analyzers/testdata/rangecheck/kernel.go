// Package rangecheck exercises the interval abstract interpretation:
// //etsqp:bounds seeding, branch narrowing, loop widening, checked
// helpers, and the findings for int64 arithmetic that can wrap.
package rangecheck

// addChecked is the checked-addition primitive. Its body is exempt from
// rangecheck; call sites model the exact sum clamped to int64.
//
//etsqp:checked add
func addChecked(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

//etsqp:checked mul
func mulChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// Block mirrors the ts2diff encoded-block header: Count parses from a
// uint32 on the wire and Width is validated <= 64 at decode time.
type Block struct {
	//etsqp:bounds [0, 1<<32)
	Count int64
	//etsqp:bounds [0, 64]
	Width   int64
	MinBase int64
}

// SumRamp reproduces the historical internal/fusion/ts2diff.go ramp bug:
// Count*(Count-1) wraps for Count > 3037000499 even though the true
// triangle number fits int64 for every Count below 1<<32.
//
//etsqp:rangecheck
func SumRamp(b Block) (int64, bool) {
	n := b.Count
	return mulChecked(b.MinBase, n*(n-1)/2) // want `SumRamp: unchecked int64 multiplication`
}

// SumRampFixed computes the same ramp through the checked triangle.
//
//etsqp:rangecheck
func SumRampFixed(b Block) (int64, bool) {
	t, ok := triangleChecked(b.Count)
	if !ok {
		return 0, false
	}
	return mulChecked(b.MinBase, t)
}

// triangleChecked returns n*(n-1)/2 without an intermediate wrap by
// halving the even factor before multiplying.
//
//etsqp:bounds n [0, 1<<32)
//etsqp:rangecheck
func triangleChecked(n int64) (int64, bool) {
	if n%2 == 0 {
		return mulChecked(n/2, n-1)
	}
	return mulChecked(n, (n-1)/2)
}

// prefixBase is in range only because of Block.Count's declared bound:
// widening the directive past 1<<61 turns this into a finding.
//
//etsqp:rangecheck
func prefixBase(b Block) int64 {
	return b.Count * 8
}

// laneLimit's shift stays inside int64 thanks to the width bound.
//
//etsqp:bounds width [0, 32]
//etsqp:rangecheck
func laneLimit(width int64) int64 {
	return int64(1) << width
}

//etsqp:rangecheck
func laneLimitWild(width int64) int64 {
	return int64(1) << width // want `laneLimitWild: unchecked int64 shift`
}

// sumWidthLanes accumulates lane values proven < 1<<width, through the
// checked helper: branch narrowing bounds v, addChecked bounds sum.
//
//etsqp:bounds width [0, 32]
//etsqp:rangecheck
func sumWidthLanes(vals []int64, width int64) (int64, bool) {
	limit := int64(1) << width
	var sum int64
	for _, v := range vals {
		if v < 0 || v >= limit {
			return 0, false
		}
		s, ok := addChecked(sum, v)
		if !ok {
			return 0, false
		}
		sum = s
	}
	return sum, true
}

// sumRaw is the shape rangecheck exists to reject: a raw += of an
// unbounded lane into the accumulator.
//
//etsqp:rangecheck
func sumRaw(vals []int64) int64 {
	var sum int64
	for _, v := range vals {
		sum += v // want `sumRaw: unchecked int64 addition`
	}
	return sum
}

// clampWidth proves its declared return interval by construction.
//
//etsqp:bounds return [0, 64]
//etsqp:rangecheck
func clampWidth(w int64) int64 {
	if w < 0 {
		return 0
	}
	if w > 64 {
		return 64
	}
	return w
}

// leakWidth declares a return bound narrower than what it returns.
//
//etsqp:bounds return [0, 64]
//etsqp:rangecheck
func leakWidth(w int64) int64 {
	if w < 0 {
		return 0
	}
	return w // want `leakWidth: return value interval \[0, 9223372036854775807\] exceeds declared //etsqp:bounds return \[0, 64\]`
}

//etsqp:rangecheck
func dropsOverflowFlag(a, b int64) int64 {
	s, _ := addChecked(a, b) // want `dropsOverflowFlag: ok result of checked helper addChecked discarded`
	return s
}
