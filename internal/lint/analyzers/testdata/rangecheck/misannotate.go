package rangecheck

// badParam names a parameter that does not exist.
//
//etsqp:bounds m [0, 10]
func badParam(n int64) int64 { // want `badParam: //etsqp:bounds names unknown parameter "m"`
	return n
}

// badInterval declares an empty interval.
//
//etsqp:bounds n [10, 0]
func badInterval(n int64) int64 { // want `badInterval: malformed //etsqp:bounds directive`
	return n
}

// wideParam declares a bound the parameter type cannot represent.
//
//etsqp:bounds n [0, 1<<40]
func wideParam(n int32) int32 { // want `wideParam: declared //etsqp:bounds for "n" \[0, 1099511627776\] exceeds the parameter's type range`
	return n
}

// BadField's bound exceeds its int32 range.
type BadField struct {
	//etsqp:bounds [0, 1<<40]
	w int32 // want `field BadField.w: declared //etsqp:bounds \[0, 1099511627776\] exceeds the field's type range`
}

func useBadField(b BadField) int32 { return b.w }
