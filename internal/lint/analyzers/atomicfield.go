package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"etsqp/internal/lint"
)

// AtomicField proves the //etsqp:atomic field contracts: an annotated
// field may only be touched through sync/atomic — method calls on
// atomic.IntNN-style typed fields, or its address passed directly to a
// sync/atomic function (or to a helper whose parameter is a pointer to
// an atomic type, like engine's timed(&col.x, fn)). Plain loads, plain
// stores and escaping addresses are findings. Ranging over an array of
// atomics is allowed when only the index is bound.
var AtomicField = &lint.Analyzer{
	Name: "atomicfield",
	Doc:  "//etsqp:atomic fields are touched only through sync/atomic, never plain loads/stores",
	Run:  runAtomicField,
}

func runAtomicField(pass *lint.Pass) error {
	m := pass.Module
	atomicDirs := validateAtomicDirs(pass)
	if len(atomicDirs) == 0 {
		return nil
	}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			if inTestFile(m, file.Pos()) {
				continue
			}
			lint.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				key, ok := lint.FieldOf(pkg.Info.Selections[sel])
				if !ok || !atomicDirs[key] {
					return true
				}
				checkAtomicUse(pass, pkg, key, sel, stack)
				return true
			})
		}
	}
	return nil
}

// validateAtomicDirs reports //etsqp:atomic directives on fields whose
// type cannot be used atomically and returns the usable keys.
func validateAtomicDirs(pass *lint.Pass) map[lint.FieldKey]bool {
	m := pass.Module
	out := map[lint.FieldKey]bool{}
	for _, key := range sortedFieldKeys(m) {
		d := m.Fields[key]
		if !d.Atomic {
			continue
		}
		t := structFieldType(m, key.PkgPath, key.Type, key.Field)
		if t == nil {
			continue
		}
		if !atomicCompatible(t) {
			pass.Reportf(d.Pos, "//etsqp:atomic on %s.%s: type %s is not a sync/atomic type, an array of them, or a plain integer",
				key.Type, key.Field, t.String())
			continue
		}
		out[key] = true
	}
	return out
}

func atomicCompatible(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		t = arr.Elem()
	}
	if isAtomicNamed(t) {
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Info()&types.IsInteger != 0
	}
	return false
}

// isAtomicNamed reports whether t is a named type from sync/atomic
// (atomic.Int64, atomic.Uint64, atomic.Bool, ...).
func isAtomicNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}

// checkAtomicUse classifies one selector of an annotated field by its
// syntactic context and reports anything outside the allowed shapes.
func checkAtomicUse(pass *lint.Pass, pkg *lint.Package, key lint.FieldKey, sel *ast.SelectorExpr, stack []ast.Node) {
	field := key.Type + "." + key.Field
	if len(stack) > 0 {
		switch p := stack[len(stack)-1].(type) {
		case *ast.SelectorExpr:
			// c.v.Add(1): a sync/atomic method selected on the field.
			if p.X == sel && atomicMethodSel(pkg, p) {
				return
			}
		case *ast.IndexExpr:
			// h.buckets[i]...: element of an array-of-atomics field.
			if p.X == sel && len(stack) >= 2 {
				switch g := stack[len(stack)-2].(type) {
				case *ast.SelectorExpr:
					if g.X == ast.Expr(p) && atomicMethodSel(pkg, g) {
						return
					}
				case *ast.UnaryExpr:
					if g.Op == token.AND && g.X == ast.Expr(p) && len(stack) >= 3 &&
						okAtomicAddressArg(pkg, stack[len(stack)-3], g) {
						return
					}
				}
			}
		case *ast.RangeStmt:
			// for i := range h.buckets — index-only iteration.
			if p.X == sel && p.Value == nil {
				return
			}
		case *ast.UnaryExpr:
			if p.Op == token.AND && p.X == ast.Expr(sel) {
				var above ast.Node
				if len(stack) >= 2 {
					above = stack[len(stack)-2]
				}
				if okAtomicAddressArg(pkg, above, p) {
					return
				}
				pass.Reportf(sel.Pos(), "address of atomic field %s escapes (pass it only to sync/atomic operations)", field)
				return
			}
		case *ast.CallExpr:
			if isBuiltinCall(pkg, p, "len") || isBuiltinCall(pkg, p, "cap") {
				return
			}
		}
	}
	if isWritePos(sel, stack) {
		pass.Reportf(sel.Pos(), "plain write to atomic field %s (use sync/atomic)", field)
	} else {
		pass.Reportf(sel.Pos(), "plain read of atomic field %s (use sync/atomic)", field)
	}
}

// atomicMethodSel reports whether p selects a method declared in
// sync/atomic.
func atomicMethodSel(pkg *lint.Package, p *ast.SelectorExpr) bool {
	s := pkg.Info.Selections[p]
	return s != nil && s.Kind() == types.MethodVal &&
		s.Obj().Pkg() != nil && s.Obj().Pkg().Path() == "sync/atomic"
}

// okAtomicAddressArg reports whether &field (the unary) is passed
// directly as an argument to a sync/atomic function, or to a function
// whose corresponding parameter is a pointer to a sync/atomic type.
func okAtomicAddressArg(pkg *lint.Package, above ast.Node, unary *ast.UnaryExpr) bool {
	call, ok := above.(*ast.CallExpr)
	if !ok {
		return false
	}
	argIdx := -1
	for i, a := range call.Args {
		if ast.Unparen(a) == ast.Expr(unary) {
			argIdx = i
			break
		}
	}
	if argIdx < 0 {
		return false
	}
	if fn := lint.CalleeFunc(pkg.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
		return true
	}
	sig, ok := pkg.Info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return false
	}
	var paramType types.Type
	switch {
	case sig.Variadic() && argIdx >= sig.Params().Len()-1:
		if sl, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
			paramType = sl.Elem()
		}
	case argIdx < sig.Params().Len():
		paramType = sig.Params().At(argIdx).Type()
	}
	ptr, ok := paramType.(*types.Pointer)
	return ok && isAtomicNamed(ptr.Elem())
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(pkg *lint.Package, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isWritePos reports whether the selector (possibly through index or
// paren expressions) is an assignment or inc/dec target.
func isWritePos(sel ast.Expr, stack []ast.Node) bool {
	cur := ast.Expr(sel)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == cur {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == cur
		case *ast.IndexExpr:
			if p.X != cur {
				return false
			}
			cur = p
		case *ast.ParenExpr:
			cur = p
		default:
			return false
		}
	}
	return false
}
