// Package analyzers holds the project-specific invariant checks that
// cmd/etsqp-lint runs over the module. Each analyzer is documented in
// docs/STATIC_ANALYSIS.md together with the //etsqp: annotations that
// configure it.
package analyzers

import (
	"go/ast"
	"go/types"

	"etsqp/internal/lint"
)

// All is the analyzer suite cmd/etsqp-lint runs.
var All = []*lint.Analyzer{AtomicField, BoundsContract, GuardedBy, HotPathAlloc, LockOrder, NoPanic, ObsGuard, PlanTable, QueryDoc, RangeCheck, SharedWrite}

// HotPathAlloc enforces that functions annotated //etsqp:hotpath — and
// every module function they statically call — contain no allocating
// constructs: make, append (growth may allocate), closures, fmt calls and
// implicit conversions of concrete values to interfaces (which box).
// Functions annotated //etsqp:coldpath (cached, amortized setup such as
// plan construction) stop the traversal.
//
// A stray allocation in an unpacking kernel erases the vectorization win
// (Lemire & Boytsov); the AllocsPerRun tests in internal/pipeline and
// internal/fusion cross-check this analyzer at runtime.
var HotPathAlloc = &lint.Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocating constructs reachable from //etsqp:hotpath functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *lint.Pass) error {
	m := pass.Module
	var roots []string
	for key, fi := range m.Funcs {
		if fi.Annotated("hotpath") {
			roots = append(roots, key)
		}
	}
	for _, fi := range m.Closure(roots, "coldpath") {
		checkHotFunc(pass, fi)
	}
	return nil
}

func checkHotFunc(pass *lint.Pass, fi *lint.FuncInfo) {
	if fi.Decl.Body == nil {
		return
	}
	info := fi.Pkg.Info
	name := fi.Obj.Name()
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path %s contains a closure (allocates)", name)
			return false // the closure body is not part of this hot path
		case *ast.CallExpr:
			checkHotCall(pass, info, name, n)
		}
		return true
	})
}

func checkHotCall(pass *lint.Pass, info *types.Info, name string, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	// Builtins and conversions.
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "hot path %s calls make (allocates)", name)
				return
			case "append":
				pass.Reportf(call.Pos(), "hot path %s calls append (growth allocates)", name)
				return
			}
		}
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		// Explicit conversion: T(x). Converting to an interface boxes.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && !isInterfaceOrNil(info, call.Args[0]) {
			pass.Reportf(call.Pos(), "hot path %s converts concrete value to interface (allocates)", name)
		}
		return
	}
	if fn := lint.CalleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "hot path %s calls fmt.%s (allocates)", name, fn.Name())
		return
	}
	// Implicit interface conversions at call arguments.
	sig, ok := typeAsSignature(info, fun)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && !isInterfaceOrNil(info, arg) {
			pass.Reportf(arg.Pos(), "hot path %s passes concrete value as interface argument (allocates)", name)
		}
	}
}

// typeAsSignature returns the call signature of an expression, following
// method selections.
func typeAsSignature(info *types.Info, fun ast.Expr) (*types.Signature, bool) {
	tv, ok := info.Types[fun]
	if !ok || tv.Type == nil {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

// isInterfaceOrNil reports whether an expression is already
// interface-typed (no boxing on assignment) or the untyped nil.
func isInterfaceOrNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return true // be conservative: don't flag what we can't type
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	return types.IsInterface(tv.Type)
}
