package analyzers

import (
	"go/ast"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"etsqp/internal/lint"
)

// QueryDoc enforces the query-language documentation contract: the SQL
// surface the parser actually accepts and the reference tables in
// docs/QUERYING.md may not drift apart.
//
// The grammar surface is extracted from internal/sqlparse mechanically:
//
//   - keywords: string-literal arguments of acceptKw / expectKw calls
//   - aggregate functions: keys of the aggNames map literal
//   - comparison operators: keys of the cmpOps map literal
//   - column names: case literals of isColumnName
//
// The documented surface is every backticked token inside the table
// region delimited by `<!-- querydoc:begin -->` and `<!-- querydoc:end -->`
// in docs/QUERYING.md (uppercase words and operator glyphs count; mixed-
// case metavariables like `Tmin` do not). Every parsed token must be
// documented and every documented token must be parsed.
var QueryDoc = &lint.Analyzer{
	Name: "querydoc",
	Doc:  "SQL keywords/operators and the docs/QUERYING.md reference stay in sync",
	Run:  runQueryDoc,
}

// keywordAcceptors are the parser helpers whose string argument is a
// grammar keyword.
var keywordAcceptors = map[string]bool{"acceptKw": true, "expectKw": true}

// tokenMaps are the sqlparse map literals whose keys are grammar tokens.
var tokenMaps = map[string]bool{"aggNames": true, "cmpOps": true}

// grammarToken is one token of the parser's accepted surface.
type grammarToken struct {
	text string
	pos  ast.Node
}

func runQueryDoc(pass *lint.Pass) error {
	for _, pkg := range pass.Module.Pkgs {
		if lint.PathHasSuffix(pkg.Path, "internal/sqlparse") {
			checkQueryDocSync(pass, pkg)
		}
	}
	return nil
}

func checkQueryDocSync(pass *lint.Pass, pkg *lint.Package) {
	var toks []grammarToken
	var firstFile *ast.File
	addLit := func(lit *ast.BasicLit) {
		s, err := strconv.Unquote(lit.Value)
		if err != nil || s == "" {
			return
		}
		toks = append(toks, grammarToken{text: strings.ToUpper(s), pos: lit})
	}
	for _, file := range pkg.Files {
		if firstFile == nil {
			firstFile = file
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// Keywords: acceptKw("SELECT") / expectKw("FROM").
				if len(n.Args) != 1 {
					return true
				}
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !keywordAcceptors[sel.Sel.Name] {
					return true
				}
				if lit, ok := n.Args[0].(*ast.BasicLit); ok {
					addLit(lit)
				}
			case *ast.ValueSpec:
				// Token maps: aggNames / cmpOps keys.
				for i, name := range n.Names {
					if !tokenMaps[name.Name] || i >= len(n.Values) {
						continue
					}
					cl, ok := n.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if lit, ok := kv.Key.(*ast.BasicLit); ok {
							addLit(lit)
						}
					}
				}
			case *ast.FuncDecl:
				// Column names: the isColumnName switch cases.
				if n.Name.Name != "isColumnName" || n.Body == nil {
					return true
				}
				ast.Inspect(n.Body, func(m ast.Node) bool {
					cc, ok := m.(*ast.CaseClause)
					if !ok {
						return true
					}
					for _, e := range cc.List {
						if lit, ok := e.(*ast.BasicLit); ok {
							addLit(lit)
						}
					}
					return true
				})
				return false
			}
			return true
		})
	}
	if len(toks) == 0 {
		return
	}
	docPath := filepath.Join(pass.Module.Dir, "docs", "QUERYING.md")
	data, err := os.ReadFile(docPath)
	if err != nil {
		pass.Reportf(firstFile.Name.Pos(), "sqlparse grammar has no docs/QUERYING.md to sync against: %v", err)
		return
	}
	documented, ok := docGrammarTokens(string(data))
	if !ok {
		pass.Reportf(firstFile.Name.Pos(), "docs/QUERYING.md lacks the querydoc:begin/querydoc:end token-table markers")
		return
	}
	parsed := make(map[string]bool, len(toks))
	reported := map[string]bool{}
	for _, tk := range toks {
		parsed[tk.text] = true
		if !documented[tk.text] && !reported[tk.text] {
			reported[tk.text] = true
			pass.Reportf(tk.pos.Pos(), "grammar token %s is not documented in docs/QUERYING.md", tk.text)
		}
	}
	var ghosts []string
	for t := range documented {
		if !parsed[t] {
			ghosts = append(ghosts, t)
		}
	}
	sort.Strings(ghosts)
	for _, t := range ghosts {
		pass.Reportf(firstFile.Name.Pos(), "docs/QUERYING.md documents token %s but the parser does not accept it", t)
	}
}

// docGrammarTokens extracts the documented token set from the marked
// region of QUERYING.md: inside each backtick span of a table row,
// all-uppercase words and pure operator glyph runs count as claims.
func docGrammarTokens(doc string) (map[string]bool, bool) {
	begin := strings.Index(doc, "<!-- querydoc:begin -->")
	end := strings.Index(doc, "<!-- querydoc:end -->")
	if begin < 0 || end < 0 || end < begin {
		return nil, false
	}
	out := map[string]bool{}
	for _, line := range strings.Split(doc[begin:end], "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") {
			continue
		}
		for _, span := range backtickSpans(line) {
			if isOperatorGlyphs(span) {
				out[span] = true
				continue
			}
			for _, word := range strings.FieldsFunc(span, func(r rune) bool {
				return r < 'A' || (r > 'Z' && r < 'a') || r > 'z'
			}) {
				if word == strings.ToUpper(word) {
					out[word] = true
				}
			}
		}
	}
	return out, true
}

// backtickSpans returns the contents of every `...` span in a line.
func backtickSpans(line string) []string {
	var out []string
	for {
		i := strings.IndexByte(line, '`')
		if i < 0 {
			return out
		}
		line = line[i+1:]
		j := strings.IndexByte(line, '`')
		if j < 0 {
			return out
		}
		if j > 0 {
			out = append(out, line[:j])
		}
		line = line[j+1:]
	}
}

// isOperatorGlyphs reports whether s is a non-empty run of comparison
// glyphs (the cmpOps key alphabet).
func isOperatorGlyphs(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch r {
		case '<', '>', '=', '!':
		default:
			return false
		}
	}
	return true
}
