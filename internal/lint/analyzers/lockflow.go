package analyzers

// Lock-set dataflow shared by the guardedby and lockorder analyzers: an
// intra-procedural abstract interpretation that tracks, at every
// program point, which sync.Mutex/RWMutex receiver paths are held and
// at what strength (read vs write).
//
// The abstraction is deliberately simple and strict:
//
//   - A lock is identified by the printed path of its receiver
//     expression ("s.mu", "c.mu", "planMu"), so aliasing through local
//     copies is invisible; annotated protocols must lock through the
//     same path they access guarded state through.
//   - if/else and switch merge by set intersection over the exits of
//     non-terminated branches: a lock counts as held only when it is
//     held on every path.
//   - Loops run a silent fixpoint pass first (the stable entry set is
//     the intersection of the loop entry with every back edge), then a
//     single reporting pass — so a workerLoop-style "unlock in the
//     middle, relock before looping" body is proven, and a path that
//     leaks a lock out of an iteration is not.
//   - defer mu.Unlock() is modeled as "held until function exit" (no
//     transition); deferred and go'd function literals are scanned
//     separately with an empty lock set, since they run at another time
//     (or on another goroutine) with no inherited locks. Immediately
//     invoked literals are interpreted inline with the current set.
//   - panic, os.Exit, runtime.Goexit and log.Fatal* terminate a path.
//   - sync.Cond.Wait needs no special case: it atomically re-acquires
//     its mutex before returning, so "held before, held after" — the
//     net effect of not modeling a transition — is exact.
//
// Not modeled (kept out of the annotated protocols instead): mutexes
// embedded into structs (promoted Lock calls), locks reached through
// local pointer copies, and cross-struct guards (a field guarded by
// another struct's mutex); such fields stay unannotated with a comment.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"etsqp/internal/lint"
)

// lockStrength orders lock modes: a write lock satisfies a read
// requirement, not vice versa.
type lockStrength int

const (
	lockRead  lockStrength = iota + 1 // RLock held
	lockWrite                         // Lock held
)

// lockInfo is the abstract state of one held lock.
type lockInfo struct {
	strength lockStrength
	class    string // declaration identity, e.g. "etsqp/internal/storage.Series.mu"
}

// lockSet maps receiver path ("s.mu") to the held lock's state.
type lockSet map[string]lockInfo

func cloneSet(s lockSet) lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// intersectSets keeps locks held in both sets at the weaker strength.
func intersectSets(a, b lockSet) lockSet {
	out := lockSet{}
	for k, av := range a {
		if bv, ok := b[k]; ok {
			v := av
			if bv.strength < v.strength {
				v = bv
			}
			out[k] = v
		}
	}
	return out
}

func equalSets(a, b lockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		if bv, ok := b[k]; !ok || bv != av {
			return false
		}
	}
	return true
}

// mutexOp is one Lock/RLock/Unlock/RUnlock call on a sync mutex.
type mutexOp struct {
	call     *ast.CallExpr
	path     string // receiver path, e.g. "s.mu"
	class    string // declaration identity, "" when unresolvable
	acquire  bool
	strength lockStrength // valid when acquire
}

// lockHooks are the dataflow events an analyzer observes. Hooks only
// fire during reporting passes, never during silent fixpoint passes.
type lockHooks struct {
	// access fires for every selector-expression evaluation, with the
	// lock set at that point; write marks assignment targets.
	access func(sel *ast.SelectorExpr, set lockSet, write bool)
	// acquire fires when a mutex acquisition executes, with the set held
	// before the acquisition takes effect.
	acquire func(op *mutexOp, held lockSet)
	// call fires for every ordinary (non-mutex, non-literal) call.
	call func(call *ast.CallExpr, set lockSet)
	// enterClosure fires once before the escaped function literals
	// (deferred, go'd, or passed as values) are scanned with empty sets.
	enterClosure func()
}

// flowCtx is one enclosing breakable statement (loop, switch, select).
type flowCtx struct {
	label     string
	isLoop    bool
	breaks    []lockSet
	continues []lockSet
}

type lockFlow struct {
	pkg        *lint.Package
	hooks      lockHooks
	silent     bool
	set        lockSet
	terminated bool
	ctxs       []*flowCtx
	returns    []lockSet
	label      string // pending label for the next loop/switch statement

	queue  []*ast.FuncLit
	queued map[*ast.FuncLit]bool
}

// walkLockFunc interprets one function body from the given seed set
// (non-nil for //etsqp:locked functions), then scans every escaped
// function literal with an empty set.
func walkLockFunc(pkg *lint.Package, fd *ast.FuncDecl, seed lockSet, hooks lockHooks) {
	if fd.Body == nil {
		return
	}
	f := &lockFlow{pkg: pkg, hooks: hooks, queued: map[*ast.FuncLit]bool{}}
	f.set = cloneSet(seed)
	f.stmt(fd.Body)
	if len(f.queue) > 0 && hooks.enterClosure != nil {
		hooks.enterClosure()
	}
	for i := 0; i < len(f.queue); i++ {
		lit := f.queue[i]
		f.set, f.terminated, f.ctxs, f.returns, f.label = lockSet{}, false, nil, nil, ""
		f.stmt(lit.Body)
	}
}

func (f *lockFlow) enqueue(lit *ast.FuncLit) {
	if f.silent || f.queued[lit] {
		return
	}
	f.queued[lit] = true
	f.queue = append(f.queue, lit)
}

// ---- statements ----

func (f *lockFlow) stmt(s ast.Stmt) {
	if f.terminated || s == nil {
		return
	}
	lbl := f.label
	f.label = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			f.stmt(st)
		}
	case *ast.ExprStmt:
		f.expr(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			f.expr(r)
		}
		for _, l := range s.Lhs {
			f.writeExpr(l)
		}
	case *ast.IncDecStmt:
		f.expr(s.X)
		f.writeExpr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						f.expr(v)
					}
				}
			}
		}
	case *ast.SendStmt:
		f.expr(s.Chan)
		f.expr(s.Value)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			f.expr(r)
		}
		if !f.silent {
			f.returns = append(f.returns, cloneSet(f.set))
		}
		f.terminated = true
	case *ast.DeferStmt:
		f.deferStmt(s)
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			f.expr(a)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			f.enqueue(lit)
		} else {
			f.expr(s.Call.Fun)
		}
	case *ast.IfStmt:
		f.ifStmt(s)
	case *ast.ForStmt:
		f.forStmt(s, lbl)
	case *ast.RangeStmt:
		f.rangeStmt(s, lbl)
	case *ast.SwitchStmt:
		f.switchStmt(s.Init, s.Tag, nil, s.Body, lbl)
	case *ast.TypeSwitchStmt:
		f.switchStmt(s.Init, nil, s.Assign, s.Body, lbl)
	case *ast.SelectStmt:
		f.selectStmt(s, lbl)
	case *ast.BranchStmt:
		f.branchStmt(s)
	case *ast.LabeledStmt:
		f.label = s.Label.Name
		f.stmt(s.Stmt)
	case *ast.EmptyStmt:
	}
}

// deferStmt evaluates the deferred call's operands now. A deferred
// mutex operation causes no transition: defer mu.Unlock() means the
// lock stays held to function exit, exactly what no-op models.
func (f *lockFlow) deferStmt(s *ast.DeferStmt) {
	for _, a := range s.Call.Args {
		f.expr(a)
	}
	if f.mutexOp(s.Call) != nil {
		return
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		f.enqueue(lit)
		return
	}
	f.expr(s.Call.Fun)
}

func (f *lockFlow) ifStmt(s *ast.IfStmt) {
	f.stmt(s.Init)
	f.expr(s.Cond)
	entry := cloneSet(f.set)

	f.set = cloneSet(entry)
	f.stmt(s.Body)
	thenSet, thenTerm := f.set, f.terminated
	f.terminated = false

	f.set = cloneSet(entry)
	if s.Else != nil {
		f.stmt(s.Else)
	}
	elseSet, elseTerm := f.set, f.terminated
	f.terminated = false

	switch {
	case thenTerm && elseTerm:
		f.terminated = true
	case thenTerm:
		f.set = elseSet
	case elseTerm:
		f.set = thenSet
	default:
		f.set = intersectSets(thenSet, elseSet)
	}
}

func (f *lockFlow) forStmt(s *ast.ForStmt, lbl string) {
	f.stmt(s.Init)
	entry := cloneSet(f.set)
	stable := f.loopFixpoint(entry, func() {
		f.expr(s.Cond)
		f.stmt(s.Body)
		f.stmt(s.Post)
	})
	ctx := f.loopReportPass(stable, lbl, func() {
		f.expr(s.Cond)
		f.stmt(s.Body)
		f.stmt(s.Post)
	})
	f.afterLoop(s.Cond != nil, stable, ctx)
}

func (f *lockFlow) rangeStmt(s *ast.RangeStmt, lbl string) {
	f.expr(s.X)
	entry := cloneSet(f.set)
	body := func() {
		if s.Key != nil {
			f.writeExpr(s.Key)
		}
		if s.Value != nil {
			f.writeExpr(s.Value)
		}
		f.stmt(s.Body)
	}
	stable := f.loopFixpoint(entry, body)
	ctx := f.loopReportPass(stable, lbl, body)
	// A range loop always terminates with the pre-iteration set (the
	// range may be empty), like a for loop with a condition.
	f.afterLoop(true, stable, ctx)
}

// loopFixpoint finds the stable loop-entry set: the intersection of the
// entry set with every back edge (normal body end and continue), run
// silently until it stops shrinking.
func (f *lockFlow) loopFixpoint(entry lockSet, iter func()) lockSet {
	cur := entry
	savedSilent := f.silent
	f.silent = true
	for i := 0; i < 8; i++ {
		ctx := &flowCtx{isLoop: true, label: f.label}
		f.ctxs = append(f.ctxs, ctx)
		f.set = cloneSet(cur)
		f.terminated = false
		iter()
		exits := ctx.continues
		if !f.terminated {
			exits = append(exits, f.set)
		}
		f.ctxs = f.ctxs[:len(f.ctxs)-1]
		next := cur
		for _, e := range exits {
			next = intersectSets(next, e)
		}
		if equalSets(next, cur) {
			break
		}
		cur = next
	}
	f.silent = savedSilent
	f.terminated = false
	return cur
}

// loopReportPass runs one reporting iteration from the stable set and
// returns the context with the collected break sets.
func (f *lockFlow) loopReportPass(stable lockSet, lbl string, iter func()) *flowCtx {
	ctx := &flowCtx{isLoop: true, label: lbl}
	f.ctxs = append(f.ctxs, ctx)
	f.set = cloneSet(stable)
	f.terminated = false
	iter()
	f.ctxs = f.ctxs[:len(f.ctxs)-1]
	f.terminated = false
	return ctx
}

// afterLoop computes the post-loop set: the condition-false exit (when
// the loop has one) intersected with every break.
func (f *lockFlow) afterLoop(hasCondExit bool, stable lockSet, ctx *flowCtx) {
	var exits []lockSet
	if hasCondExit {
		exits = append(exits, stable)
	}
	exits = append(exits, ctx.breaks...)
	if len(exits) == 0 {
		f.terminated = true // for {} with no break: only returns leave it
		return
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = intersectSets(out, e)
	}
	f.set = out
}

// switchStmt handles switch and type-switch: each clause runs from the
// statement entry; the post set intersects every non-terminated clause
// exit, every break, and — without a default — the entry itself.
func (f *lockFlow) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, lbl string) {
	f.stmt(init)
	f.expr(tag)
	f.stmt(assign)
	entry := cloneSet(f.set)
	ctx := &flowCtx{label: lbl}
	f.ctxs = append(f.ctxs, ctx)
	var exits []lockSet
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		f.set = cloneSet(entry)
		f.terminated = false
		for _, e := range cc.List {
			f.expr(e)
		}
		for _, st := range cc.Body {
			f.stmt(st)
		}
		if !f.terminated {
			exits = append(exits, f.set)
		}
	}
	f.ctxs = f.ctxs[:len(f.ctxs)-1]
	f.terminated = false
	exits = append(exits, ctx.breaks...)
	if !hasDefault {
		exits = append(exits, entry)
	}
	f.mergeExits(exits)
}

func (f *lockFlow) selectStmt(s *ast.SelectStmt, lbl string) {
	entry := cloneSet(f.set)
	ctx := &flowCtx{label: lbl}
	f.ctxs = append(f.ctxs, ctx)
	var exits []lockSet
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		f.set = cloneSet(entry)
		f.terminated = false
		f.stmt(cc.Comm)
		for _, st := range cc.Body {
			f.stmt(st)
		}
		if !f.terminated {
			exits = append(exits, f.set)
		}
	}
	f.ctxs = f.ctxs[:len(f.ctxs)-1]
	f.terminated = false
	exits = append(exits, ctx.breaks...)
	f.mergeExits(exits)
}

func (f *lockFlow) mergeExits(exits []lockSet) {
	if len(exits) == 0 {
		f.terminated = true
		return
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = intersectSets(out, e)
	}
	f.set = out
}

func (f *lockFlow) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(f.ctxs) - 1; i >= 0; i-- {
			c := f.ctxs[i]
			if label == "" || c.label == label {
				c.breaks = append(c.breaks, cloneSet(f.set))
				break
			}
		}
		f.terminated = true
	case token.CONTINUE:
		for i := len(f.ctxs) - 1; i >= 0; i-- {
			c := f.ctxs[i]
			if c.isLoop && (label == "" || c.label == label) {
				c.continues = append(c.continues, cloneSet(f.set))
				break
			}
		}
		f.terminated = true
	case token.GOTO:
		f.terminated = true // conservative: stop tracking this path
	case token.FALLTHROUGH:
		// Treated as clause end; the next clause re-enters from the
		// switch entry set, which only under-approximates held locks.
	}
}

// ---- expressions ----

func (f *lockFlow) expr(e ast.Expr) {
	if f.terminated || e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		f.call(e)
	case *ast.FuncLit:
		f.enqueue(e)
	case *ast.SelectorExpr:
		f.expr(e.X)
		f.fieldAccess(e, false)
	case *ast.ParenExpr:
		f.expr(e.X)
	case *ast.StarExpr:
		f.expr(e.X)
	case *ast.UnaryExpr:
		f.expr(e.X)
	case *ast.BinaryExpr:
		f.expr(e.X)
		f.expr(e.Y)
	case *ast.IndexExpr:
		f.expr(e.X)
		f.expr(e.Index)
	case *ast.IndexListExpr:
		f.expr(e.X)
		for _, ix := range e.Indices {
			f.expr(ix)
		}
	case *ast.SliceExpr:
		f.expr(e.X)
		f.expr(e.Low)
		f.expr(e.High)
		f.expr(e.Max)
	case *ast.TypeAssertExpr:
		f.expr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			f.expr(el)
		}
	case *ast.KeyValueExpr:
		f.expr(e.Key)
		f.expr(e.Value)
	}
}

// writeExpr processes an assignment target: the base selector is an
// annotated-field write; inner index/pointer expressions are reads.
func (f *lockFlow) writeExpr(e ast.Expr) {
	if f.terminated || e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		f.expr(e.X)
		f.fieldAccess(e, true)
	case *ast.IndexExpr:
		f.writeExpr(e.X)
		f.expr(e.Index)
	case *ast.SliceExpr:
		f.writeExpr(e.X)
		f.expr(e.Low)
		f.expr(e.High)
		f.expr(e.Max)
	case *ast.ParenExpr:
		f.writeExpr(e.X)
	case *ast.StarExpr:
		f.expr(e.X) // write through the pointee, field itself only read
	case *ast.Ident:
	default:
		f.expr(e)
	}
}

func (f *lockFlow) fieldAccess(sel *ast.SelectorExpr, write bool) {
	if !f.silent && f.hooks.access != nil {
		f.hooks.access(sel, f.set, write)
	}
}

func (f *lockFlow) call(c *ast.CallExpr) {
	for _, a := range c.Args {
		f.expr(a)
	}
	if op := f.mutexOp(c); op != nil {
		if op.acquire {
			if !f.silent && f.hooks.acquire != nil {
				f.hooks.acquire(op, f.set)
			}
			f.set[op.path] = lockInfo{strength: op.strength, class: op.class}
		} else {
			delete(f.set, op.path)
		}
		return
	}
	if lit, ok := ast.Unparen(c.Fun).(*ast.FuncLit); ok {
		// Immediately invoked: interpret inline with the current set.
		exit, diverges := f.subFlow(lit.Body, f.set)
		if diverges {
			f.terminated = true
		} else {
			f.set = exit
		}
		return
	}
	// delete(guardedMap, k) writes through the map field.
	if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
		if b, isBuiltin := f.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			if b.Name() == "delete" && len(c.Args) == 2 {
				f.writeExpr(c.Args[0])
			}
			if b.Name() == "copy" && len(c.Args) == 2 {
				f.writeExpr(c.Args[0])
			}
			if b.Name() == "panic" {
				f.terminated = true
			}
			return
		}
	}
	f.expr(c.Fun)
	if f.isTerminator(c) {
		f.terminated = true
		return
	}
	if !f.silent && f.hooks.call != nil {
		f.hooks.call(c, f.set)
	}
}

// subFlow interprets a block from seed in a nested function context and
// returns the intersection of its exit sets (returns + normal end).
func (f *lockFlow) subFlow(body *ast.BlockStmt, seed lockSet) (exit lockSet, diverges bool) {
	savedSet, savedTerm, savedCtxs, savedReturns, savedLabel := f.set, f.terminated, f.ctxs, f.returns, f.label
	f.set, f.terminated, f.ctxs, f.returns, f.label = cloneSet(seed), false, nil, nil, ""
	f.stmt(body)
	exits := f.returns
	if !f.terminated {
		exits = append(exits, f.set)
	}
	f.set, f.terminated, f.ctxs, f.returns, f.label = savedSet, savedTerm, savedCtxs, savedReturns, savedLabel
	if len(exits) == 0 {
		return nil, true
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = intersectSets(out, e)
	}
	return out, false
}

// mutexOp recognizes Lock/RLock/Unlock/RUnlock calls on a
// sync.Mutex/RWMutex-typed receiver expression.
func (f *lockFlow) mutexOp(c *ast.CallExpr) *mutexOp {
	sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	var acquire bool
	var strength lockStrength
	switch sel.Sel.Name {
	case "Lock":
		acquire, strength = true, lockWrite
	case "RLock":
		acquire, strength = true, lockRead
	case "Unlock", "RUnlock":
	default:
		return nil
	}
	if !isSyncMutexType(f.pkg.Info.Types[sel.X].Type) {
		return nil
	}
	recv := ast.Unparen(sel.X)
	return &mutexOp{
		call:     c,
		path:     types.ExprString(recv),
		class:    lockClassOf(f.pkg.Info, recv),
		acquire:  acquire,
		strength: strength,
	}
}

func isSyncMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// lockClassOf resolves the declaration identity of a mutex receiver
// expression: "pkgpath.Type.field" for struct fields, "pkgpath.name"
// for package-level mutexes, "" for anything else (locals).
func lockClassOf(info *types.Info, recv ast.Expr) string {
	switch recv := recv.(type) {
	case *ast.SelectorExpr:
		if key, ok := lint.FieldOf(info.Selections[recv]); ok {
			return key.PkgPath + "." + key.Type + "." + key.Field
		}
		// Qualified package-level mutex: pkg.Mu.
		if v, ok := info.Uses[recv.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := info.Uses[recv].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

// isTerminator reports whether a call never returns.
func (f *lockFlow) isTerminator(c *ast.CallExpr) bool {
	fn := lint.CalleeFunc(f.pkg.Info, c)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		return strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic")
	}
	return false
}

// inTestFile reports whether a declaration lives in a _test.go file.
// The concurrency-contract analyzers skip tests: in-package tests poke
// unpublished structs single-threaded, and the race-detector CI jobs
// cover them dynamically.
func inTestFile(m *lint.Module, pos token.Pos) bool {
	return strings.HasSuffix(m.Fset.Position(pos).Filename, "_test.go")
}
