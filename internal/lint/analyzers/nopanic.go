package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"etsqp/internal/lint"
)

// decodePkgSuffixes are the package path suffixes whose Decode/Read entry
// points face bytes from untrusted pages (a corrupt file or frame must
// surface as an error, never a crash).
var decodePkgSuffixes = []string{
	"internal/bitio",
	"internal/storage",
	"internal/transport",
	"internal/encoding",
	"internal/pipeline",
	"internal/engine",
}

// decodeEntryPrefixes mark the exported functions considered entry points
// for untrusted input.
var decodeEntryPrefixes = []string{"Decode", "Read", "Unmarshal"}

// NoPanic enforces that no explicit panic is statically reachable from a
// decode entry point: an exported function named Decode*/Read*/Unmarshal*
// in the storage, transport, encoding, bitio, pipeline or engine trees.
// Programmer-error guards (e.g. the codec registry's duplicate check) are
// suppressed by annotating the containing function //etsqp:trusted.
var NoPanic = &lint.Analyzer{
	Name: "nopanic",
	Doc:  "flag panics reachable from Decode/Read/Unmarshal entry points",
	Run:  runNoPanic,
}

func runNoPanic(pass *lint.Pass) error {
	m := pass.Module
	var roots []string
	for key, fi := range m.Funcs {
		if !isDecodeEntry(fi) {
			continue
		}
		roots = append(roots, key)
	}
	reach := m.Closure(roots)
	for _, fi := range reach {
		if fi.Annotated("trusted") || fi.Decl.Body == nil {
			continue
		}
		name := fi.Obj.Name()
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, ok := fi.Pkg.Info.Uses[id].(*types.Builtin); !ok {
				return true
			}
			pass.Reportf(call.Pos(), "panic in %s is reachable from a decode entry point; return an error (or annotate //etsqp:trusted)", name)
			return true
		})
	}
	return nil
}

// isDecodeEntry reports whether a function is an untrusted-input entry
// point: exported, decode-prefixed, in one of the decode packages. For
// methods, the receiver type must be exported too.
func isDecodeEntry(fi *lint.FuncInfo) bool {
	if !fi.Obj.Exported() {
		return false
	}
	inDecodePkg := false
	for _, s := range decodePkgSuffixes {
		if lint.PathHasSuffix(fi.Pkg.Path, s) || strings.Contains(fi.Pkg.Path, "/"+s+"/") {
			inDecodePkg = true
			break
		}
	}
	if !inDecodePkg {
		return false
	}
	hasPrefix := false
	for _, p := range decodeEntryPrefixes {
		if strings.HasPrefix(fi.Obj.Name(), p) {
			hasPrefix = true
			break
		}
	}
	if !hasPrefix {
		return false
	}
	if recv := fi.Obj.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && !named.Obj().Exported() {
			return false
		}
	}
	return true
}
