package analyzers

// Interval dataflow shared by the rangecheck and boundscontract
// analyzers: an intra-procedural abstract interpretation that tracks, at
// every program point, a [lo, hi] interval for every integer variable
// and field path in scope, following lockflow.go's walker shape.
//
// The abstraction:
//
//   - Intervals are exact mathematical integers (math/big), always
//     finite: the top element of a variable is its type's value range
//     (int and uint are assumed 64 bits wide, as every supported
//     platform of this module has them).
//   - Arithmetic is evaluated exactly over operand intervals; the raw-op
//     hook sees the exact result interval *before* it is clamped back to
//     the type range, which is how rangecheck detects results that can
//     leave int64.
//   - Intervals seed from //etsqp:bounds directives on parameters and
//     struct fields, from constants, and from conversions of narrower
//     types; comparisons narrow them along branches (if/else, boolean
//     switch clauses, loop conditions), with && in the true branch and
//     || in the false branch decomposed.
//   - Loops run silent join iterations first; entries still changing
//     after a few rounds are widened to their type range, after which
//     loop-condition narrowing re-establishes index bounds. Hooks fire
//     only in the single reporting pass, exactly like lockflow.
//   - Functions annotated //etsqp:checked are runtime-checked arithmetic
//     primitives: their (int64, bool) results are clamped to int64 (the
//     directive argument "add" or "mul" models the exact operation, a
//     //etsqp:bounds return directive models anything else), and their
//     bodies are exempt from rangecheck.
//   - Variable identity is the printed path of the reference ("n",
//     "b.Count"), so facts about fields survive only until a call or an
//     assignment could invalidate them; address-taken locals are dropped
//     at every call.
//
// Not modeled: relational facts (i <= j+k), per-element slice intervals,
// and anything about float64 — the int64 value domain of Section VI-C is
// the whole scope; plain `int` index math is covered dynamically by the
// bounds-check-elimination budget of etsqp-vet instead.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"go/types"
	"math/big"
	"strings"

	"etsqp/internal/lint"
)

// ---- intervals ----

// ival is a closed interval [lo, hi] of mathematical integers. The
// bounds are never nil and never mutated after construction.
type ival struct {
	lo, hi *big.Int
}

var (
	bigZero      = big.NewInt(0)
	bigOne       = big.NewInt(1)
	bigMinInt64  = new(big.Int).Lsh(big.NewInt(-1), 63)
	bigMaxInt64  = new(big.Int).Sub(new(big.Int).Lsh(bigOne, 63), bigOne)
	bigMaxUint64 = new(big.Int).Sub(new(big.Int).Lsh(bigOne, 64), bigOne)
	int64Range   = &ival{lo: bigMinInt64, hi: bigMaxInt64}
)

func newIval(lo, hi *big.Int) *ival { return &ival{lo: lo, hi: hi} }

func pointIval(v *big.Int) *ival { return &ival{lo: v, hi: v} }

func (a *ival) String() string { return fmt.Sprintf("[%s, %s]", a.lo, a.hi) }

func (a *ival) subsetOf(b *ival) bool {
	return a.lo.Cmp(b.lo) >= 0 && a.hi.Cmp(b.hi) <= 0
}

func (a *ival) contains(v *big.Int) bool {
	return a.lo.Cmp(v) <= 0 && a.hi.Cmp(v) >= 0
}

func (a *ival) isPoint() bool { return a.lo.Cmp(a.hi) == 0 }

// joinIval is the union hull.
func joinIval(a, b *ival) *ival {
	lo, hi := a.lo, a.hi
	if b.lo.Cmp(lo) < 0 {
		lo = b.lo
	}
	if b.hi.Cmp(hi) > 0 {
		hi = b.hi
	}
	return newIval(lo, hi)
}

// meetIval is the intersection; ok is false when it is empty.
func meetIval(a, b *ival) (*ival, bool) {
	lo, hi := a.lo, a.hi
	if b.lo.Cmp(lo) > 0 {
		lo = b.lo
	}
	if b.hi.Cmp(hi) < 0 {
		hi = b.hi
	}
	if lo.Cmp(hi) > 0 {
		return nil, false
	}
	return newIval(lo, hi), true
}

func equalIval(a, b *ival) bool {
	return a.lo.Cmp(b.lo) == 0 && a.hi.Cmp(b.hi) == 0
}

// hullOf returns the min/max hull of a candidate set.
func hullOf(cands ...*big.Int) *ival {
	lo, hi := cands[0], cands[0]
	for _, c := range cands[1:] {
		if c.Cmp(lo) < 0 {
			lo = c
		}
		if c.Cmp(hi) > 0 {
			hi = c
		}
	}
	return newIval(lo, hi)
}

func addIval(a, b *ival) *ival {
	return newIval(new(big.Int).Add(a.lo, b.lo), new(big.Int).Add(a.hi, b.hi))
}

func subIval(a, b *ival) *ival {
	return newIval(new(big.Int).Sub(a.lo, b.hi), new(big.Int).Sub(a.hi, b.lo))
}

func negIval(a *ival) *ival {
	return newIval(new(big.Int).Neg(a.hi), new(big.Int).Neg(a.lo))
}

func mulIval(a, b *ival) *ival {
	return hullOf(
		new(big.Int).Mul(a.lo, b.lo), new(big.Int).Mul(a.lo, b.hi),
		new(big.Int).Mul(a.hi, b.lo), new(big.Int).Mul(a.hi, b.hi),
	)
}

// quoIval bounds Go's truncated integer division. Divisor candidates are
// the endpoints plus ±1 where the interval crosses them (the extremes of
// the quotient occur at divisors of minimal magnitude). A divisor that
// can only be zero yields nil (the op panics; no value flows on).
func quoIval(a, b *ival) *ival {
	var divs []*big.Int
	add := func(d *big.Int) {
		if d.Sign() != 0 && b.contains(d) {
			divs = append(divs, d)
		}
	}
	add(b.lo)
	add(b.hi)
	add(bigOne)
	add(big.NewInt(-1))
	if len(divs) == 0 {
		return nil
	}
	var cands []*big.Int
	for _, d := range divs {
		cands = append(cands,
			new(big.Int).Quo(a.lo, d), new(big.Int).Quo(a.hi, d))
	}
	return hullOf(cands...)
}

// remIval bounds Go's truncated remainder: |a % b| < max(|b|) with the
// sign of a, refined by |a| when a is small.
func remIval(a, b *ival) *ival {
	m := new(big.Int).Abs(b.lo)
	if abs := new(big.Int).Abs(b.hi); abs.Cmp(m) > 0 {
		m = abs
	}
	if m.Sign() == 0 {
		return nil // only divisor is zero: the op panics
	}
	bound := new(big.Int).Sub(m, bigOne)
	lo, hi := new(big.Int).Neg(bound), bound
	if a.lo.Sign() >= 0 {
		lo = bigZero
		if a.hi.Cmp(hi) < 0 {
			hi = a.hi
		}
	} else if a.hi.Sign() <= 0 {
		hi = bigZero
		if neg := new(big.Int).Neg(a.lo); neg.Cmp(bound) < 0 {
			lo = a.lo
		}
	}
	return newIval(lo, hi)
}

// maxShift caps modeled shift amounts: beyond it the result interval is
// astronomically out of every type range anyway, and the cap keeps the
// big.Int arithmetic small.
const maxShift = 256

func shlIval(a, b *ival) *ival {
	smin, smax := shiftRange(b)
	return hullOf(
		shiftLeft(a.lo, smin), shiftLeft(a.lo, smax),
		shiftLeft(a.hi, smin), shiftLeft(a.hi, smax),
	)
}

func shrIval(a, b *ival) *ival {
	smin, smax := shiftRange(b)
	// big.Int.Rsh on a negative value is floor division by 2^n — exactly
	// Go's arithmetic right shift.
	return hullOf(
		new(big.Int).Rsh(a.lo, smin), new(big.Int).Rsh(a.lo, smax),
		new(big.Int).Rsh(a.hi, smin), new(big.Int).Rsh(a.hi, smax),
	)
}

func shiftRange(b *ival) (uint, uint) {
	smin, smax := uint(0), uint(maxShift)
	if b.lo.Sign() > 0 && b.lo.Cmp(big.NewInt(maxShift)) < 0 {
		smin = uint(b.lo.Int64())
	}
	if b.hi.Sign() >= 0 && b.hi.Cmp(big.NewInt(maxShift)) < 0 {
		smax = uint(b.hi.Int64())
	}
	if smax < smin {
		smax = smin
	}
	return smin, smax
}

func shiftLeft(v *big.Int, n uint) *big.Int {
	return new(big.Int).Lsh(v, n) // Lsh is sign-preserving: v * 2^n
}

// bitwiseIval bounds & | ^ &^ for non-negative operands; nil otherwise.
func bitwiseIval(op token.Token, a, b *ival) *ival {
	if a.lo.Sign() < 0 || b.lo.Sign() < 0 {
		return nil
	}
	switch op {
	case token.AND:
		hi := a.hi
		if b.hi.Cmp(hi) < 0 {
			hi = b.hi
		}
		return newIval(bigZero, hi)
	case token.AND_NOT:
		return newIval(bigZero, a.hi)
	case token.OR, token.XOR:
		m := a.hi
		if b.hi.Cmp(m) > 0 {
			m = b.hi
		}
		bound := new(big.Int).Sub(new(big.Int).Lsh(bigOne, uint(m.BitLen())), bigOne)
		return newIval(bigZero, bound)
	}
	return nil
}

// typeIval returns the value range of an integer type (nil for anything
// else). int, uint and uintptr are assumed 64 bits wide.
func typeIval(t types.Type) *ival {
	if t == nil {
		return nil
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	switch basic.Kind() {
	case types.Int, types.Int64:
		return int64Range
	case types.Int8:
		return newIval(big.NewInt(-128), big.NewInt(127))
	case types.Int16:
		return newIval(big.NewInt(-32768), big.NewInt(32767))
	case types.Int32:
		return newIval(big.NewInt(-1<<31), big.NewInt(1<<31-1))
	case types.Uint, types.Uint64, types.Uintptr:
		return newIval(bigZero, bigMaxUint64)
	case types.Uint8:
		return newIval(bigZero, big.NewInt(255))
	case types.Uint16:
		return newIval(bigZero, big.NewInt(65535))
	case types.Uint32:
		return newIval(bigZero, big.NewInt(1<<32-1))
	case types.UntypedInt:
		return int64Range
	}
	return nil
}

// isInt64Type reports whether the expression type is the int64 value
// domain rangecheck polices (underlying int64, excluding plain int —
// index math is the province of the BCE budget, not Section VI-C).
func isInt64Type(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Int64
}

// ---- //etsqp:bounds directives ----

// boundDecl is one parsed //etsqp:bounds directive.
type boundDecl struct {
	name string // parameter name, "return", or "" for fields
	iv   *ival
	pos  token.Pos
	raw  string
	err  string // non-empty when the directive is malformed
}

// funcBounds aggregates a function's bounds directives.
type funcBounds struct {
	params map[string]*boundDecl
	ret    *boundDecl
	bad    []*boundDecl
}

// boundsIndex is the module-wide directive table both analyzers share.
type boundsIndex struct {
	funcs   map[string]*funcBounds       // by FuncInfo.Key
	fields  map[lint.FieldKey]*boundDecl // by annotated field
	checked map[string]string            // //etsqp:checked funcs: key -> arg ("", "add", "mul")
}

// buildBoundsIndex parses every //etsqp:bounds and //etsqp:checked
// directive in the module. Multiple bounds lines per doc comment are
// supported (the generic annotation map keeps only the last, so the doc
// comments are rescanned here).
func buildBoundsIndex(m *lint.Module) *boundsIndex {
	idx := &boundsIndex{
		funcs:   map[string]*funcBounds{},
		fields:  map[lint.FieldKey]*boundDecl{},
		checked: map[string]string{},
	}
	for _, fi := range sortedFuncs(m) {
		if fi.Annotated("checked") {
			idx.checked[fi.Key] = strings.TrimSpace(fi.AnnotationArg("checked"))
		}
		if fi.Decl.Doc == nil {
			continue
		}
		var fb *funcBounds
		for _, c := range fi.Decl.Doc.List {
			arg, ok := cutBoundsLine(c.Text)
			if !ok {
				continue
			}
			if fb == nil {
				fb = &funcBounds{params: map[string]*boundDecl{}}
			}
			d := parseBoundDecl(arg, c.Pos(), true, constResolver(fi.Pkg, fb))
			switch {
			case d.err != "":
				fb.bad = append(fb.bad, d)
			case d.name == "return":
				fb.ret = d
			default:
				fb.params[d.name] = d
			}
		}
		if fb != nil {
			idx.funcs[fi.Key] = fb
		}
	}
	// Field directives resolve package constants and sibling fields'
	// declared bounds (for symbolic forms like [0, 1<<Width)); two passes
	// so declaration order does not matter.
	for pass := 0; pass < 2; pass++ {
		for _, key := range sortedFieldKeys(m) {
			dir := m.Fields[key]
			if dir.Bounds == "" {
				continue
			}
			if d, done := idx.fields[key]; done && d.err == "" {
				continue
			}
			pkg := pkgByPath(m, key.PkgPath)
			if pkg == nil {
				continue
			}
			resolve := func(name string) *ival {
				sib := lint.FieldKey{PkgPath: key.PkgPath, Type: key.Type, Field: name}
				if d, ok := idx.fields[sib]; ok && d.err == "" {
					return d.iv
				}
				return lookupConst(pkg, name)
			}
			idx.fields[key] = parseBoundDecl(dir.Bounds, dir.Pos, false, resolve)
		}
	}
	return idx
}

func pkgByPath(m *lint.Module, path string) *lint.Package {
	for _, pkg := range m.Pkgs {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// cutBoundsLine extracts the argument of a //etsqp:bounds comment line.
func cutBoundsLine(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, "//etsqp:bounds")
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// constResolver resolves bound-expression identifiers against the
// declaring package's constants and the function's sibling parameter
// bounds parsed so far.
func constResolver(pkg *lint.Package, fb *funcBounds) func(string) *ival {
	return func(name string) *ival {
		if fb != nil {
			if d, ok := fb.params[name]; ok {
				return d.iv
			}
		}
		return lookupConst(pkg, name)
	}
}

// lookupConst resolves a (possibly pkg-qualified) integer constant to a
// point interval.
func lookupConst(pkg *lint.Package, name string) *ival {
	scope := pkg.Types.Scope()
	if dot := strings.IndexByte(name, '.'); dot >= 0 {
		qual, rest := name[:dot], name[dot+1:]
		scope = nil
		for _, imp := range pkg.Types.Imports() {
			if imp.Name() == qual {
				scope = imp.Scope()
				break
			}
		}
		if scope == nil {
			return nil
		}
		name = rest
	}
	c, ok := scope.Lookup(name).(*types.Const)
	if !ok {
		return nil
	}
	return constIval(c.Val())
}

func constIval(v constant.Value) *ival {
	if v == nil || v.Kind() != constant.Int {
		return nil
	}
	switch val := constant.Val(v).(type) {
	case int64:
		return pointIval(big.NewInt(val))
	case *big.Int:
		return pointIval(new(big.Int).Set(val))
	}
	return nil
}

// parseBoundDecl parses "name [lo, hi]" (named true) or "[lo, hi]"
// (struct fields). A ')' closer makes hi exclusive. The bound
// expressions are Go constant expressions over integer literals, + - *
// / % << >> and identifiers the resolver can supply an interval for.
func parseBoundDecl(arg string, pos token.Pos, named bool, resolve func(string) *ival) *boundDecl {
	d := &boundDecl{pos: pos, raw: arg}
	spec := strings.TrimSpace(arg)
	if named && !strings.HasPrefix(spec, "[") {
		i := strings.IndexAny(spec, " \t")
		if i < 0 {
			d.err = "want <name> [lo, hi]"
			return d
		}
		d.name, spec = spec[:i], strings.TrimSpace(spec[i+1:])
	}
	if named && d.name == "" {
		d.err = "want <name> [lo, hi]"
		return d
	}
	exclusive := false
	switch {
	case strings.HasPrefix(spec, "[") && strings.HasSuffix(spec, "]"):
	case strings.HasPrefix(spec, "[") && strings.HasSuffix(spec, ")"):
		exclusive = true
	default:
		d.err = fmt.Sprintf("malformed interval %q: want [lo, hi] or [lo, hi)", spec)
		return d
	}
	inner := spec[1 : len(spec)-1]
	parts := strings.SplitN(inner, ",", 2)
	if len(parts) != 2 {
		d.err = fmt.Sprintf("malformed interval %q: want two comma-separated bounds", spec)
		return d
	}
	lo := evalBoundExpr(parts[0], resolve)
	hi := evalBoundExpr(parts[1], resolve)
	if lo == nil || hi == nil {
		d.err = fmt.Sprintf("cannot evaluate interval %q: bounds must be integer constant expressions", spec)
		return d
	}
	hiV := hi.hi
	if exclusive {
		hiV = new(big.Int).Sub(hiV, bigOne)
	}
	if lo.lo.Cmp(hiV) > 0 {
		d.err = fmt.Sprintf("empty interval %q", spec)
		return d
	}
	d.iv = newIval(lo.lo, hiV)
	return d
}

// evalBoundExpr evaluates one bound expression to an interval (a point
// for fully constant expressions; a hull when it references bounded
// siblings). nil means unresolvable.
func evalBoundExpr(src string, resolve func(string) *ival) *ival {
	e, err := parser.ParseExpr(strings.TrimSpace(src))
	if err != nil {
		return nil
	}
	var eval func(e ast.Expr) *ival
	eval = func(e ast.Expr) *ival {
		switch e := e.(type) {
		case *ast.BasicLit:
			if e.Kind != token.INT {
				return nil
			}
			v, ok := new(big.Int).SetString(e.Value, 0)
			if !ok {
				return nil
			}
			return pointIval(v)
		case *ast.Ident:
			return resolve(e.Name)
		case *ast.SelectorExpr:
			if base, ok := e.X.(*ast.Ident); ok {
				return resolve(base.Name + "." + e.Sel.Name)
			}
			return nil
		case *ast.ParenExpr:
			return eval(e.X)
		case *ast.UnaryExpr:
			x := eval(e.X)
			if x == nil {
				return nil
			}
			switch e.Op {
			case token.SUB:
				return negIval(x)
			case token.ADD:
				return x
			}
			return nil
		case *ast.BinaryExpr:
			x, y := eval(e.X), eval(e.Y)
			if x == nil || y == nil {
				return nil
			}
			switch e.Op {
			case token.ADD:
				return addIval(x, y)
			case token.SUB:
				return subIval(x, y)
			case token.MUL:
				return mulIval(x, y)
			case token.QUO:
				return quoIval(x, y)
			case token.REM:
				return remIval(x, y)
			case token.SHL:
				return shlIval(x, y)
			case token.SHR:
				return shrIval(x, y)
			}
			return nil
		}
		return nil
	}
	return eval(e)
}

// ---- the dataflow walker ----

// rangeEnv maps reference paths ("n", "b.Count") to their intervals.
type rangeEnv map[string]*rangeFact

type rangeFact struct {
	iv *ival
	t  types.Type
}

func cloneEnv(env rangeEnv) rangeEnv {
	out := make(rangeEnv, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// joinEnv keeps paths present in both, with the interval hull.
func joinEnv(a, b rangeEnv) rangeEnv {
	out := rangeEnv{}
	for k, av := range a {
		if bv, ok := b[k]; ok {
			out[k] = &rangeFact{iv: joinIval(av.iv, bv.iv), t: av.t}
		}
	}
	return out
}

func equalEnv(a, b rangeEnv) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || !equalIval(av.iv, bv.iv) {
			return false
		}
	}
	return true
}

// rangeHooks are the dataflow events an analyzer observes; they fire
// only during reporting passes.
type rangeHooks struct {
	// rawOp fires for every raw (unchecked) binary arithmetic op and
	// op-assignment, with the exact (pre-clamp) result interval.
	rawOp func(pos token.Pos, op token.Token, desc string, exact *ival, t types.Type)
	// call fires for every ordinary call, with an evaluator for the
	// interval of argument i at the call point.
	call func(call *ast.CallExpr, argIval func(i int) *ival)
	// ret fires at every return with the interval of each integer result
	// (nil entries for non-integer results).
	ret func(rs *ast.ReturnStmt, results []*ival)
	// blankOK fires when the ok result of a //etsqp:checked helper is
	// assigned to the blank identifier.
	blankOK func(pos token.Pos, callee string)
}

type rangeFlow struct {
	pkg        *lint.Package
	m          *lint.Module
	bounds     *boundsIndex
	hooks      rangeHooks
	silent     bool
	env        rangeEnv
	terminated bool
	ctxs       []*rangeCtx
	label      string
	addrTaken  map[string]bool

	queue  []*ast.FuncLit
	queued map[*ast.FuncLit]bool
}

type rangeCtx struct {
	label     string
	isLoop    bool
	breaks    []rangeEnv
	continues []rangeEnv
}

// walkRangeFunc interprets one function body. The seed environment maps
// parameter names to their declared (or type) intervals. Escaped
// function literals are scanned afterwards with an empty environment.
func walkRangeFunc(m *lint.Module, fi *lint.FuncInfo, bounds *boundsIndex, hooks rangeHooks) {
	if fi.Decl.Body == nil {
		return
	}
	f := &rangeFlow{
		pkg:       fi.Pkg,
		m:         m,
		bounds:    bounds,
		hooks:     hooks,
		queued:    map[*ast.FuncLit]bool{},
		addrTaken: map[string]bool{},
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if id, ok := ast.Unparen(u.X).(*ast.Ident); ok {
				f.addrTaken[id.Name] = true
			}
		}
		return true
	})
	f.env = seedEnv(fi, bounds)
	f.stmt(fi.Decl.Body)
	for i := 0; i < len(f.queue); i++ {
		lit := f.queue[i]
		f.env, f.terminated, f.ctxs, f.label = rangeEnv{}, false, nil, ""
		seedLitParams(f, lit)
		f.stmt(lit.Body)
	}
}

// seedEnv builds a function's entry environment: every integer
// parameter at its declared //etsqp:bounds interval (meet the type
// range) or at the type range.
func seedEnv(fi *lint.FuncInfo, bounds *boundsIndex) rangeEnv {
	env := rangeEnv{}
	fb := bounds.funcs[fi.Key]
	if fi.Decl.Type.Params == nil {
		return env
	}
	for _, field := range fi.Decl.Type.Params.List {
		for _, id := range field.Names {
			t := fi.Pkg.Info.TypeOf(field.Type)
			tr := typeIval(t)
			if tr == nil {
				continue
			}
			iv := tr
			if fb != nil {
				if d, ok := fb.params[id.Name]; ok && d.err == "" {
					if met, ok := meetIval(d.iv, tr); ok {
						iv = met
					}
				}
			}
			env[id.Name] = &rangeFact{iv: iv, t: t}
		}
	}
	return env
}

func seedLitParams(f *rangeFlow, lit *ast.FuncLit) {
	if lit.Type.Params == nil {
		return
	}
	for _, field := range lit.Type.Params.List {
		for _, id := range field.Names {
			t := f.pkg.Info.TypeOf(field.Type)
			if tr := typeIval(t); tr != nil {
				f.env[id.Name] = &rangeFact{iv: tr, t: t}
			}
		}
	}
}

func (f *rangeFlow) enqueue(lit *ast.FuncLit) {
	if f.silent || f.queued[lit] {
		return
	}
	f.queued[lit] = true
	f.queue = append(f.queue, lit)
}

// pathOf returns the environment key of a variable or field reference,
// or "" when the expression is not a trackable path.
func (f *rangeFlow) pathOf(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return ""
		}
		if _, ok := f.pkg.Info.ObjectOf(e).(*types.Var); ok {
			return e.Name
		}
	case *ast.SelectorExpr:
		if _, ok := f.pkg.Info.ObjectOf(e.Sel).(*types.Var); !ok {
			return ""
		}
		base := f.pathOf(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// set records a fact for a path, dropping facts about its sub-paths.
func (f *rangeFlow) set(path string, iv *ival, t types.Type) {
	f.killPrefix(path)
	f.env[path] = &rangeFact{iv: iv, t: t}
}

func (f *rangeFlow) killPrefix(path string) {
	delete(f.env, path)
	pfx := path + "."
	for k := range f.env {
		if strings.HasPrefix(k, pfx) {
			delete(f.env, k)
		}
	}
}

// killOnCall drops facts a call could invalidate: every field path and
// every address-taken local.
func (f *rangeFlow) killOnCall() {
	for k := range f.env {
		if strings.ContainsRune(k, '.') || f.addrTaken[k] {
			delete(f.env, k)
		}
	}
}

// ---- statements ----

func (f *rangeFlow) stmt(s ast.Stmt) {
	if f.terminated || s == nil {
		return
	}
	lbl := f.label
	f.label = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			f.stmt(st)
		}
	case *ast.ExprStmt:
		f.eval(s.X)
	case *ast.AssignStmt:
		f.assign(s)
	case *ast.IncDecStmt:
		iv := f.eval(s.X)
		if path := f.pathOf(s.X); path != "" && iv != nil {
			one := pointIval(bigOne)
			var exact *ival
			if s.Tok == token.INC {
				exact = addIval(iv, one)
			} else {
				exact = subIval(iv, one)
			}
			t := f.pkg.Info.TypeOf(s.X)
			f.reportRaw(s.Pos(), token.ADD, types.ExprString(s.X)+s.Tok.String(), exact, t)
			f.set(path, clampToType(exact, t), t)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					t := f.pkg.Info.TypeOf(id)
					var iv *ival
					if i < len(vs.Values) {
						iv = f.eval(vs.Values[i])
					} else {
						// var x int64 — zero value.
						if typeIval(t) != nil {
							iv = pointIval(bigZero)
						}
					}
					if iv != nil && id.Name != "_" {
						f.set(id.Name, iv, t)
					}
				}
			}
		}
	case *ast.SendStmt:
		f.eval(s.Chan)
		f.eval(s.Value)
	case *ast.ReturnStmt:
		var results []*ival
		for _, r := range s.Results {
			results = append(results, f.eval(r))
		}
		if !f.silent && f.hooks.ret != nil {
			f.hooks.ret(s, results)
		}
		f.terminated = true
	case *ast.DeferStmt:
		f.callLike(s.Call)
	case *ast.GoStmt:
		f.callLike(s.Call)
	case *ast.IfStmt:
		f.ifStmt(s)
	case *ast.ForStmt:
		f.forStmt(s, lbl)
	case *ast.RangeStmt:
		f.rangeStmt(s, lbl)
	case *ast.SwitchStmt:
		f.switchStmt(s, lbl)
	case *ast.TypeSwitchStmt:
		f.typeSwitchStmt(s, lbl)
	case *ast.SelectStmt:
		f.selectStmt(s, lbl)
	case *ast.BranchStmt:
		f.branchStmt(s)
	case *ast.LabeledStmt:
		f.label = s.Label.Name
		f.stmt(s.Stmt)
	case *ast.EmptyStmt:
	}
}

// callLike evaluates a go/defer call's operands; literals escape.
func (f *rangeFlow) callLike(c *ast.CallExpr) {
	if lit, ok := ast.Unparen(c.Fun).(*ast.FuncLit); ok {
		for _, a := range c.Args {
			f.eval(a)
		}
		f.enqueue(lit)
		f.killOnCall()
		return
	}
	f.eval(c)
}

// assign interprets every assignment form, including op-assignments
// (desugared to the raw binary op) and checked-helper multi-assigns.
func (f *rangeFlow) assign(s *ast.AssignStmt) {
	// x op= y  →  x = x op y with the raw-op check.
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		op := assignOp(s.Tok)
		lhs := s.Lhs[0]
		liv, riv := f.eval(lhs), f.eval(s.Rhs[0])
		t := f.pkg.Info.TypeOf(lhs)
		if liv != nil && riv != nil {
			exact := f.binIval(op, liv, riv, t)
			desc := types.ExprString(lhs) + " " + s.Tok.String() + " " + types.ExprString(s.Rhs[0])
			f.reportRaw(s.Pos(), op, desc, exact, t)
			if path := f.pathOf(lhs); path != "" {
				f.set(path, clampToType(exact, t), t)
				return
			}
		}
		f.invalidateTarget(lhs)
		return
	}
	// x, ok := checkedHelper(a, b)
	if len(s.Rhs) == 1 && len(s.Lhs) == 2 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if iv, isChecked := f.checkedCall(call); isChecked {
				if id, ok := ast.Unparen(s.Lhs[1]).(*ast.Ident); ok && id.Name == "_" && !f.silent && f.hooks.blankOK != nil {
					callee := lint.CalleeFunc(f.pkg.Info, call)
					f.hooks.blankOK(s.Pos(), callee.Name())
				}
				f.assignTo(s.Lhs[0], iv)
				f.invalidateTarget(s.Lhs[1])
				return
			}
		}
	}
	if len(s.Rhs) == len(s.Lhs) {
		ivs := make([]*ival, len(s.Rhs))
		for i, r := range s.Rhs {
			ivs[i] = f.eval(r)
		}
		for i, l := range s.Lhs {
			f.assignTo(l, ivs[i])
		}
		return
	}
	// Multi-value from one call/map/assert: evaluate and drop to tops.
	for _, r := range s.Rhs {
		f.eval(r)
	}
	for _, l := range s.Lhs {
		f.invalidateTarget(l)
	}
}

func assignOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	}
	return token.ILLEGAL
}

func (f *rangeFlow) assignTo(l ast.Expr, iv *ival) {
	path := f.pathOf(l)
	t := f.pkg.Info.TypeOf(l)
	if path != "" && iv != nil && typeIval(t) != nil {
		f.set(path, clampToType(iv, t), t)
		return
	}
	f.invalidateTarget(l)
}

// invalidateTarget drops facts an untracked assignment could change.
func (f *rangeFlow) invalidateTarget(l ast.Expr) {
	switch l := ast.Unparen(l).(type) {
	case *ast.Ident:
		if l.Name != "_" {
			f.killPrefix(l.Name)
		}
	case *ast.SelectorExpr:
		if path := f.pathOf(l); path != "" {
			f.killPrefix(path)
			return
		}
		f.eval(l.X)
	case *ast.IndexExpr:
		f.eval(l.X)
		f.eval(l.Index)
	case *ast.StarExpr:
		f.eval(l.X)
	}
}

func (f *rangeFlow) ifStmt(s *ast.IfStmt) {
	f.stmt(s.Init)
	f.eval(s.Cond)
	entry := cloneEnv(f.env)

	f.env = cloneEnv(entry)
	thenDead := !f.narrow(s.Cond, true)
	if thenDead {
		f.runDead(s.Body)
	} else {
		f.stmt(s.Body)
	}
	thenEnv, thenTerm := f.env, f.terminated || thenDead
	f.terminated = false

	f.env = cloneEnv(entry)
	elseDead := !f.narrow(s.Cond, false)
	if s.Else != nil {
		if elseDead {
			f.runDead(s.Else)
		} else {
			f.stmt(s.Else)
		}
	}
	elseEnv, elseTerm := f.env, f.terminated || elseDead
	f.terminated = false

	switch {
	case thenTerm && elseTerm:
		f.terminated = true
	case thenTerm:
		f.env = elseEnv
	case elseTerm:
		f.env = thenEnv
	default:
		f.env = joinEnv(thenEnv, elseEnv)
	}
}

// runDead walks a statically unreachable branch silently (no hooks): a
// contradiction-guarded body must not produce findings.
func (f *rangeFlow) runDead(s ast.Stmt) {
	saved := f.silent
	f.silent = true
	f.stmt(s)
	f.silent = saved
}

func (f *rangeFlow) forStmt(s *ast.ForStmt, lbl string) {
	f.stmt(s.Init)
	entry := cloneEnv(f.env)
	iter := func() {
		f.eval(s.Cond)
		if s.Cond != nil && !f.narrow(s.Cond, true) {
			f.terminated = true // loop body unreachable
			return
		}
		f.stmt(s.Body)
		f.stmt(s.Post)
	}
	stable := f.loopFixpoint(entry, iter)
	ctx := f.loopReportPass(stable, lbl, iter)
	f.afterLoop(s.Cond, stable, ctx)
}

func (f *rangeFlow) rangeStmt(s *ast.RangeStmt, lbl string) {
	f.eval(s.X)
	entry := cloneEnv(f.env)
	body := func() {
		f.seedRangeVars(s)
		f.stmt(s.Body)
	}
	stable := f.loopFixpoint(entry, body)
	ctx := f.loopReportPass(stable, lbl, body)
	f.afterLoop(nil, stable, ctx)
	// The range may be empty: the post env must include the entry.
	if !f.terminated {
		f.env = joinEnv(f.env, stable)
	} else {
		f.env, f.terminated = stable, false
	}
}

// seedRangeVars assigns the loop variables' intervals: slice/array/
// string keys are non-negative ints; `range n` keys are [0, n-1];
// element values get their type range.
func (f *rangeFlow) seedRangeVars(s *ast.RangeStmt) {
	xt := f.pkg.Info.TypeOf(s.X)
	if s.Key != nil {
		kt := f.pkg.Info.TypeOf(s.Key)
		if tr := typeIval(kt); tr != nil {
			iv := tr
			switch xt.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Basic:
				if basic, ok := xt.Underlying().(*types.Basic); ok && basic.Info()&types.IsInteger != 0 {
					// for i := range n
					if n := f.silentEval(s.X); n != nil && n.hi.Sign() > 0 {
						iv, _ = meetIval(newIval(bigZero, new(big.Int).Sub(n.hi, bigOne)), tr)
					} else {
						iv, _ = meetIval(newIval(bigZero, bigMaxInt64), tr)
					}
				} else {
					iv, _ = meetIval(newIval(bigZero, bigMaxInt64), tr)
				}
			}
			if iv == nil {
				iv = tr
			}
			f.assignIdent(s.Key, iv, kt)
		} else {
			f.invalidateTarget(s.Key)
		}
	}
	if s.Value != nil {
		vt := f.pkg.Info.TypeOf(s.Value)
		if tr := typeIval(vt); tr != nil {
			f.assignIdent(s.Value, tr, vt)
		} else {
			f.invalidateTarget(s.Value)
		}
	}
}

// silentEval evaluates without firing hooks, for re-evaluations of
// expressions the walker has already visited.
func (f *rangeFlow) silentEval(e ast.Expr) *ival {
	saved := f.silent
	f.silent = true
	iv := f.eval(e)
	f.silent = saved
	return iv
}

func (f *rangeFlow) assignIdent(e ast.Expr, iv *ival, t types.Type) {
	if path := f.pathOf(e); path != "" {
		f.set(path, iv, t)
		return
	}
	f.invalidateTarget(e)
}

// loopFixpoint runs silent join iterations to a stable loop-entry env;
// entries still unstable after a few rounds widen to their type range.
func (f *rangeFlow) loopFixpoint(entry rangeEnv, iter func()) rangeEnv {
	cur := entry
	savedSilent := f.silent
	f.silent = true
	for i := 0; i < 6; i++ {
		ctx := &rangeCtx{isLoop: true, label: f.label}
		f.ctxs = append(f.ctxs, ctx)
		f.env = cloneEnv(cur)
		f.terminated = false
		iter()
		edges := ctx.continues
		if !f.terminated {
			edges = append(edges, f.env)
		}
		f.ctxs = f.ctxs[:len(f.ctxs)-1]
		next := cur
		for _, e := range edges {
			next = joinBackEdge(next, e)
		}
		if equalEnv(next, cur) {
			break
		}
		if i >= 3 {
			next = widenEnv(cur, next)
		}
		cur = next
	}
	f.silent = savedSilent
	f.terminated = false
	return cur
}

// joinBackEdge joins a back-edge env into the entry env: entries the
// back edge lacks are dropped, shared entries take the hull.
func joinBackEdge(entry, edge rangeEnv) rangeEnv {
	return joinEnv(entry, edge)
}

// widenEnv jumps still-growing bounds straight to the type range so the
// fixpoint terminates; loop-condition narrowing recovers index bounds
// on the next pass.
func widenEnv(prev, next rangeEnv) rangeEnv {
	out := rangeEnv{}
	for k, nv := range next {
		pv, ok := prev[k]
		if !ok || equalIval(pv.iv, nv.iv) {
			out[k] = nv
			continue
		}
		tr := typeIval(nv.t)
		if tr == nil {
			tr = int64Range
		}
		lo, hi := nv.iv.lo, nv.iv.hi
		if nv.iv.lo.Cmp(pv.iv.lo) < 0 {
			lo = tr.lo
		}
		if nv.iv.hi.Cmp(pv.iv.hi) > 0 {
			hi = tr.hi
		}
		out[k] = &rangeFact{iv: newIval(lo, hi), t: nv.t}
	}
	return out
}

func (f *rangeFlow) loopReportPass(stable rangeEnv, lbl string, iter func()) *rangeCtx {
	ctx := &rangeCtx{isLoop: true, label: lbl}
	f.ctxs = append(f.ctxs, ctx)
	f.env = cloneEnv(stable)
	f.terminated = false
	iter()
	f.ctxs = f.ctxs[:len(f.ctxs)-1]
	f.terminated = false
	return ctx
}

// afterLoop computes the post-loop env: the condition-false exit (when
// there is a condition) joined with every break.
func (f *rangeFlow) afterLoop(cond ast.Expr, stable rangeEnv, ctx *rangeCtx) {
	var exits []rangeEnv
	if cond != nil {
		f.env = cloneEnv(stable)
		f.narrow(cond, false)
		exits = append(exits, f.env)
	} else if len(ctx.breaks) == 0 {
		// for {} or range with no breaks: range loops handle the empty
		// case in rangeStmt; a plain for {} only exits via return.
		f.terminated = true
		return
	}
	exits = append(exits, ctx.breaks...)
	out := exits[0]
	for _, e := range exits[1:] {
		out = joinEnv(out, e)
	}
	f.env = out
	f.terminated = false
}

// switchStmt interprets a (possibly expressionless) switch with
// narrowing: in a bool switch each clause narrows by its condition and
// the negation of every earlier clause; in a tag switch over a tracked
// integer a single-value clause pins the tag.
func (f *rangeFlow) switchStmt(s *ast.SwitchStmt, lbl string) {
	f.stmt(s.Init)
	f.eval(s.Tag)
	entry := cloneEnv(f.env)
	tagPath := ""
	var tagType types.Type
	if s.Tag != nil {
		tagPath = f.pathOf(s.Tag)
		tagType = f.pkg.Info.TypeOf(s.Tag)
	}
	ctx := &rangeCtx{label: lbl}
	f.ctxs = append(f.ctxs, ctx)
	var exits []rangeEnv
	hasDefault := false
	fallen := cloneEnv(entry) // entry narrowed by prior clauses being false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		f.env = cloneEnv(fallen)
		f.terminated = false
		dead := false
		if s.Tag == nil && len(cc.List) == 1 {
			// switch { case cond: } — narrow by the condition.
			f.eval(cc.List[0])
			dead = !f.narrow(cc.List[0], true)
		} else {
			for _, e := range cc.List {
				f.eval(e)
			}
			if tagPath != "" && len(cc.List) == 1 {
				if v := f.eval(cc.List[0]); v != nil {
					if cur, ok := f.env[tagPath]; ok {
						if met, nonEmpty := meetIval(cur.iv, v); nonEmpty {
							f.set(tagPath, met, tagType)
						} else {
							dead = true
						}
					}
				}
			}
		}
		if dead {
			for _, st := range cc.Body {
				f.runDead(st)
			}
			f.terminated = true
		} else {
			for _, st := range cc.Body {
				f.stmt(st)
			}
		}
		if !f.terminated {
			exits = append(exits, f.env)
		}
		// Later clauses see this one's condition as false.
		if s.Tag == nil && len(cc.List) == 1 {
			f.env = fallen
			f.terminated = false
			f.narrow(cc.List[0], false)
			fallen = f.env
		}
	}
	f.ctxs = f.ctxs[:len(f.ctxs)-1]
	f.terminated = false
	exits = append(exits, ctx.breaks...)
	if !hasDefault {
		exits = append(exits, fallen)
	}
	f.mergeExits(exits)
}

func (f *rangeFlow) typeSwitchStmt(s *ast.TypeSwitchStmt, lbl string) {
	f.stmt(s.Init)
	f.stmt(s.Assign)
	entry := cloneEnv(f.env)
	ctx := &rangeCtx{label: lbl}
	f.ctxs = append(f.ctxs, ctx)
	var exits []rangeEnv
	hasDefault := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		f.env = cloneEnv(entry)
		f.terminated = false
		for _, st := range cc.Body {
			f.stmt(st)
		}
		if !f.terminated {
			exits = append(exits, f.env)
		}
	}
	f.ctxs = f.ctxs[:len(f.ctxs)-1]
	f.terminated = false
	exits = append(exits, ctx.breaks...)
	if !hasDefault {
		exits = append(exits, entry)
	}
	f.mergeExits(exits)
}

func (f *rangeFlow) selectStmt(s *ast.SelectStmt, lbl string) {
	entry := cloneEnv(f.env)
	ctx := &rangeCtx{label: lbl}
	f.ctxs = append(f.ctxs, ctx)
	var exits []rangeEnv
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		f.env = cloneEnv(entry)
		f.terminated = false
		f.stmt(cc.Comm)
		for _, st := range cc.Body {
			f.stmt(st)
		}
		if !f.terminated {
			exits = append(exits, f.env)
		}
	}
	f.ctxs = f.ctxs[:len(f.ctxs)-1]
	f.terminated = false
	exits = append(exits, ctx.breaks...)
	f.mergeExits(exits)
}

func (f *rangeFlow) mergeExits(exits []rangeEnv) {
	if len(exits) == 0 {
		f.terminated = true
		return
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = joinEnv(out, e)
	}
	f.env = out
}

func (f *rangeFlow) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(f.ctxs) - 1; i >= 0; i-- {
			c := f.ctxs[i]
			if label == "" || c.label == label {
				c.breaks = append(c.breaks, cloneEnv(f.env))
				break
			}
		}
		f.terminated = true
	case token.CONTINUE:
		for i := len(f.ctxs) - 1; i >= 0; i-- {
			c := f.ctxs[i]
			if c.isLoop && (label == "" || c.label == label) {
				c.continues = append(c.continues, cloneEnv(f.env))
				break
			}
		}
		f.terminated = true
	case token.GOTO:
		f.terminated = true
	case token.FALLTHROUGH:
		// The next clause re-enters from the switch entry, a superset of
		// the facts here — sound, merely imprecise.
	}
}

// ---- narrowing ----

// narrow refines the environment assuming cond evaluates to sense.
// It returns false when the assumption is contradictory (dead branch).
// Narrowing re-evaluates subexpressions the walker has already hooked,
// so it always runs silent.
func (f *rangeFlow) narrow(cond ast.Expr, sense bool) bool {
	saved := f.silent
	f.silent = true
	ok := f.narrow0(cond, sense)
	f.silent = saved
	return ok
}

func (f *rangeFlow) narrow0(cond ast.Expr, sense bool) bool {
	if cond == nil {
		return true
	}
	switch c := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return f.narrow0(c.X, !sense)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if sense {
				return f.narrow0(c.X, true) && f.narrow0(c.Y, true)
			}
			return true // !(a && b): no single fact
		case token.LOR:
			if !sense {
				return f.narrow0(c.X, false) && f.narrow0(c.Y, false)
			}
			return true
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			return f.narrowCmp(c, sense)
		}
	}
	return true
}

// narrowCmp applies one comparison to both sides' paths.
func (f *rangeFlow) narrowCmp(c *ast.BinaryExpr, sense bool) bool {
	op := c.Op
	if !sense {
		op = negateCmp(op)
	}
	liv, riv := f.eval(c.X), f.eval(c.Y)
	if liv == nil || riv == nil {
		return true
	}
	ok := true
	if path := f.pathOf(c.X); path != "" {
		ok = f.applyCmp(path, f.pkg.Info.TypeOf(c.X), liv, op, riv) && ok
	}
	if path := f.pathOf(c.Y); path != "" {
		ok = f.applyCmp(path, f.pkg.Info.TypeOf(c.Y), riv, flipCmp(op), liv) && ok
	}
	return ok
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return op
}

// flipCmp mirrors a comparison: a < b  ⇔  b > a.
func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// applyCmp narrows `path` (currently cur) under `path op other`.
func (f *rangeFlow) applyCmp(path string, t types.Type, cur *ival, op token.Token, other *ival) bool {
	var constraint *ival
	switch op {
	case token.LSS:
		constraint = newIval(bigMinOf(), new(big.Int).Sub(other.hi, bigOne))
	case token.LEQ:
		constraint = newIval(bigMinOf(), other.hi)
	case token.GTR:
		constraint = newIval(new(big.Int).Add(other.lo, bigOne), bigMaxOf())
	case token.GEQ:
		constraint = newIval(other.lo, bigMaxOf())
	case token.EQL:
		constraint = other
	case token.NEQ:
		// Trim only a point endpoint.
		if other.isPoint() {
			out := cur
			if cur.lo.Cmp(other.lo) == 0 {
				out = newIval(new(big.Int).Add(cur.lo, bigOne), cur.hi)
			} else if cur.hi.Cmp(other.lo) == 0 {
				out = newIval(cur.lo, new(big.Int).Sub(cur.hi, bigOne))
			}
			if out.lo.Cmp(out.hi) > 0 {
				return false
			}
			f.set(path, out, t)
		}
		return true
	default:
		return true
	}
	met, nonEmpty := meetIval(cur, constraint)
	if !nonEmpty {
		return false
	}
	f.set(path, met, t)
	return true
}

// bigMinOf/bigMaxOf are the unbounded ends of one-sided constraints;
// the meet with the current interval restores finiteness.
func bigMinOf() *big.Int { return new(big.Int).Lsh(big.NewInt(-1), 200) }
func bigMaxOf() *big.Int { return new(big.Int).Lsh(bigOne, 200) }

// ---- expressions ----

// eval returns the interval of an expression, nil for non-integer
// expressions. Integer expressions always get a finite interval (worst
// case: the type range).
func (f *rangeFlow) eval(e ast.Expr) *ival {
	if e == nil {
		return nil
	}
	t := f.pkg.Info.TypeOf(e)
	if tv, ok := f.pkg.Info.Types[e]; ok && tv.Value != nil {
		if iv := constIval(tv.Value); iv != nil {
			return iv
		}
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return f.eval(e.X)
	case *ast.Ident:
		if fact, ok := f.env[e.Name]; ok {
			return fact.iv
		}
		return typeIval(t)
	case *ast.SelectorExpr:
		f.eval(e.X)
		if path := f.pathOf(e); path != "" {
			if fact, ok := f.env[path]; ok {
				return fact.iv
			}
		}
		if iv := f.fieldBound(e); iv != nil {
			return iv
		}
		return typeIval(t)
	case *ast.BinaryExpr:
		return f.binExpr(e, t)
	case *ast.UnaryExpr:
		return f.unaryExpr(e, t)
	case *ast.CallExpr:
		return f.callExpr(e, t)
	case *ast.IndexExpr:
		f.eval(e.X)
		f.eval(e.Index)
		return typeIval(t)
	case *ast.IndexListExpr:
		f.eval(e.X)
		for _, ix := range e.Indices {
			f.eval(ix)
		}
		return typeIval(t)
	case *ast.SliceExpr:
		f.eval(e.X)
		f.eval(e.Low)
		f.eval(e.High)
		f.eval(e.Max)
		return nil
	case *ast.StarExpr:
		f.eval(e.X)
		return typeIval(t)
	case *ast.TypeAssertExpr:
		f.eval(e.X)
		return typeIval(t)
	case *ast.FuncLit:
		f.enqueue(e)
		return nil
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			f.eval(el)
		}
		return nil
	case *ast.KeyValueExpr:
		f.eval(e.Key)
		f.eval(e.Value)
		return nil
	}
	return typeIval(t)
}

// fieldBound returns the declared //etsqp:bounds interval of a field
// selection, met with the field's type range.
func (f *rangeFlow) fieldBound(sel *ast.SelectorExpr) *ival {
	key, ok := lint.FieldOf(f.pkg.Info.Selections[sel])
	if !ok {
		return nil
	}
	d, ok := f.bounds.fields[key]
	if !ok || d.err != "" {
		return nil
	}
	tr := typeIval(f.pkg.Info.TypeOf(sel))
	if tr == nil {
		return d.iv
	}
	if met, nonEmpty := meetIval(d.iv, tr); nonEmpty {
		return met
	}
	return tr
}

func (f *rangeFlow) binExpr(e *ast.BinaryExpr, t types.Type) *ival {
	liv := f.eval(e.X)
	riv := f.eval(e.Y)
	switch e.Op {
	case token.LAND, token.LOR, token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return nil // boolean
	}
	if liv == nil || riv == nil {
		return typeIval(t)
	}
	exact := f.binIval(e.Op, liv, riv, t)
	desc := types.ExprString(e)
	f.reportRaw(e.OpPos, e.Op, desc, exact, t)
	return clampToType(exact, t)
}

// binIval evaluates one binary op exactly over intervals; nil means the
// op's result is unmodeled (caller falls back to the type range).
func (f *rangeFlow) binIval(op token.Token, a, b *ival, t types.Type) *ival {
	switch op {
	case token.ADD:
		return addIval(a, b)
	case token.SUB:
		return subIval(a, b)
	case token.MUL:
		return mulIval(a, b)
	case token.QUO:
		return quoIval(a, b)
	case token.REM:
		return remIval(a, b)
	case token.SHL:
		return shlIval(a, b)
	case token.SHR:
		return shrIval(a, b)
	case token.AND, token.OR, token.XOR, token.AND_NOT:
		return bitwiseIval(op, a, b)
	}
	return nil
}

// reportRaw fires the raw-op hook for overflow-relevant operators when
// the exact result is known.
func (f *rangeFlow) reportRaw(pos token.Pos, op token.Token, desc string, exact *ival, t types.Type) {
	if f.silent || f.hooks.rawOp == nil || exact == nil {
		return
	}
	switch op {
	case token.ADD, token.SUB, token.MUL, token.SHL, token.QUO:
		f.hooks.rawOp(pos, op, desc, exact, t)
	}
}

// clampToType clamps an exact interval back into the type's value range
// (the wrapped value is *somewhere* in the range; the raw-op hook has
// already seen the exact interval).
func clampToType(exact *ival, t types.Type) *ival {
	tr := typeIval(t)
	if tr == nil {
		return exact
	}
	if exact == nil {
		return tr
	}
	if met, nonEmpty := meetIval(exact, tr); nonEmpty && exact.subsetOf(tr) {
		return met
	}
	return tr
}

func (f *rangeFlow) unaryExpr(e *ast.UnaryExpr, t types.Type) *ival {
	x := f.eval(e.X)
	switch e.Op {
	case token.SUB:
		if x == nil {
			return typeIval(t)
		}
		exact := negIval(x)
		f.reportRaw(e.OpPos, token.SUB, types.ExprString(e), exact, t)
		return clampToType(exact, t)
	case token.ADD:
		return x
	case token.XOR: // ^x == -x - 1
		if x == nil {
			return typeIval(t)
		}
		return clampToType(subIval(negIval(x), pointIval(bigOne)), t)
	}
	return typeIval(t)
}

func (f *rangeFlow) callExpr(c *ast.CallExpr, t types.Type) *ival {
	// Conversion: T(x).
	if tv, ok := f.pkg.Info.Types[ast.Unparen(c.Fun)]; ok && tv.IsType() && len(c.Args) == 1 {
		x := f.eval(c.Args[0])
		tr := typeIval(t)
		if tr == nil {
			return nil
		}
		if x != nil && x.subsetOf(tr) {
			return x
		}
		return tr // may wrap: all we know is the target range
	}
	// Builtins.
	if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
		if b, isBuiltin := f.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			return f.builtinCall(b.Name(), c, t)
		}
	}
	fn := lint.CalleeFunc(f.pkg.Info, c)
	if fn != nil {
		if _, isChecked := f.bounds.checked[fn.FullName()]; isChecked {
			// Checked helpers mutate nothing; their tuple results are
			// modeled at the assignment. checkedCall evaluates the
			// arguments (with hooks) exactly once.
			if iv, ok := f.checkedCall(c); ok && !isTuple(t) {
				return iv
			}
			return nil
		}
	}
	for _, a := range c.Args {
		f.eval(a)
	}
	if lit, ok := ast.Unparen(c.Fun).(*ast.FuncLit); ok {
		f.enqueue(lit)
		f.killOnCall()
		return typeIval(t)
	}
	f.eval(c.Fun)
	if !f.silent && f.hooks.call != nil {
		env := cloneEnv(f.env)
		f.hooks.call(c, func(i int) *ival {
			saved := f.env
			f.env = env
			savedSilent := f.silent
			f.silent = true
			iv := f.eval(c.Args[i])
			f.env = saved
			f.silent = savedSilent
			return iv
		})
	}
	if isTerminatorCall(f.pkg, c) {
		f.terminated = true
		return nil
	}
	f.killOnCall()
	// Declared return bounds apply to the first result.
	if fn != nil && !isTuple(t) {
		if fb, ok := f.bounds.funcs[fn.FullName()]; ok && fb.ret != nil && fb.ret.err == "" {
			if met, nonEmpty := meetIval(fb.ret.iv, orFull(typeIval(t))); nonEmpty {
				return met
			}
		}
	}
	return typeIval(t)
}

func isTuple(t types.Type) bool {
	_, ok := t.(*types.Tuple)
	return ok
}

func orFull(iv *ival) *ival {
	if iv == nil {
		return int64Range
	}
	return iv
}

func (f *rangeFlow) builtinCall(name string, c *ast.CallExpr, t types.Type) *ival {
	ivs := make([]*ival, len(c.Args))
	for i, a := range c.Args {
		ivs[i] = f.eval(a)
	}
	switch name {
	case "len", "cap":
		return newIval(bigZero, bigMaxInt64)
	case "min", "max":
		var out *ival
		for _, iv := range ivs {
			if iv == nil {
				return typeIval(t)
			}
			if out == nil {
				out = iv
			} else if name == "min" {
				lo, hi := out.lo, out.hi
				if iv.lo.Cmp(lo) < 0 {
					lo = iv.lo
				}
				if iv.hi.Cmp(hi) < 0 {
					hi = iv.hi
				}
				out = newIval(lo, hi)
			} else {
				lo, hi := out.lo, out.hi
				if iv.lo.Cmp(lo) > 0 {
					lo = iv.lo
				}
				if iv.hi.Cmp(hi) > 0 {
					hi = iv.hi
				}
				out = newIval(lo, hi)
			}
		}
		return out
	case "panic":
		f.terminated = true
		return nil
	case "delete", "copy", "append", "clear":
		for _, a := range c.Args {
			f.invalidateTarget(a)
		}
		return typeIval(t)
	}
	return typeIval(t)
}

// checkedCall models a call to an //etsqp:checked helper: the first
// result is the exact operation (for "add"/"mul") or the declared
// return bounds, clamped to int64 — the runtime check guarantees the
// value is only used when it stayed in range.
func (f *rangeFlow) checkedCall(c *ast.CallExpr) (*ival, bool) {
	fn := lint.CalleeFunc(f.pkg.Info, c)
	if fn == nil {
		return nil, false
	}
	kind, ok := f.bounds.checked[fn.FullName()]
	if !ok {
		return nil, false
	}
	var iv *ival
	switch kind {
	case "add", "mul":
		if len(c.Args) == 2 {
			a, b := f.eval(c.Args[0]), f.eval(c.Args[1])
			if a != nil && b != nil {
				var exact *ival
				if kind == "add" {
					exact = addIval(a, b)
				} else {
					exact = mulIval(a, b)
				}
				if met, nonEmpty := meetIval(exact, int64Range); nonEmpty {
					iv = met
				} else {
					iv = pointIval(bigZero) // check always fails
				}
			}
		}
	default:
		for _, a := range c.Args {
			f.eval(a)
		}
		if fb, ok := f.bounds.funcs[fn.FullName()]; ok && fb.ret != nil && fb.ret.err == "" {
			if met, nonEmpty := meetIval(fb.ret.iv, int64Range); nonEmpty {
				iv = met
			}
		}
	}
	if iv == nil {
		iv = int64Range
	}
	// On check failure the helper returns zero; the ok bool is untracked,
	// so the modeled value must cover both outcomes.
	iv = joinIval(iv, pointIval(bigZero))
	return iv, true
}

// isTerminatorCall reports whether a call never returns.
func isTerminatorCall(pkg *lint.Package, c *ast.CallExpr) bool {
	fn := lint.CalleeFunc(pkg.Info, c)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		return strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic")
	}
	return false
}
