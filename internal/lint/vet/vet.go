// Package vet is the compiler-diagnostics half of the ETSQP static
// verification story. internal/lint's analyzers enforce invariants
// visible in the AST and type graph; this package enforces contracts
// only the Go compiler itself can certify: that a kernel compiles with
// zero retained bounds checks, that nothing in it escapes to the heap,
// and that a helper stays under the inlining budget.
//
// It runs
//
//	go build -gcflags=-m=2 -d=ssa/check_bce/debug=1 ./...
//
// over the module, parses the escape/inline/BCE diagnostics into
// per-function facts (the go command replays cached compiler output, so
// warm runs are cheap), and checks three doc-comment contracts:
//
//	//etsqp:nobce     zero retained bounds checks in the function body
//	//etsqp:noescape  no parameter or local escapes to the heap
//	//etsqp:inline    the function must be inlinable
//
// The contracts and the escape/BCE budget they enforce are documented in
// docs/STATIC_ANALYSIS.md.
package vet

import (
	"fmt"
	"go/token"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"etsqp/internal/lint"
)

// Contract names, in the order Checks runs them.
const (
	ContractNoBCE    = "nobce"
	ContractNoEscape = "noescape"
	ContractInline   = "inline"
)

// AllContracts lists the directive names this pass understands.
var AllContracts = []string{ContractNoBCE, ContractNoEscape, ContractInline}

// A fact is one attributed compiler diagnostic.
type fact struct {
	pos token.Position
	msg string
}

// facts holds the parsed compiler diagnostics for one module build.
type facts struct {
	bounds  []fact          // "Found IsInBounds" / "Found IsSliceInBounds"
	escapes []fact          // "... escapes to heap", "moved to heap: x", leaking params
	inline  map[string]fact // file:line:col of func name -> can/cannot inline
}

// Check loads the module at dir, collects compiler facts and verifies
// every annotated contract, returning diagnostics in deterministic order.
// contracts selects a subset of AllContracts (nil means all).
func Check(dir string, contracts []string) ([]lint.Diagnostic, error) {
	m, err := lint.Load(dir)
	if err != nil {
		return nil, err
	}
	f, err := collectFacts(m.Dir)
	if err != nil {
		return nil, err
	}
	if len(contracts) == 0 {
		contracts = AllContracts
	}
	var diags []lint.Diagnostic
	for _, c := range contracts {
		switch c {
		case ContractNoBCE:
			diags = append(diags, checkNoBCE(m, f)...)
		case ContractNoEscape:
			diags = append(diags, checkNoEscape(m, f)...)
		case ContractInline:
			diags = append(diags, checkInline(m, f)...)
		default:
			return nil, fmt.Errorf("vet: unknown contract %q", c)
		}
	}
	lint.Sort(diags)
	return diags, nil
}

// buildGcflags are the compiler flags whose diagnostics the pass parses:
// -m=2 for escape analysis and inlining decisions, check_bce for the
// bounds checks the SSA prove pass could not eliminate.
const buildGcflags = "-gcflags=-m=2 -d=ssa/check_bce/debug=1"

// collectFacts compiles the module with diagnostic flags and parses the
// output. The gcflags apply to the packages named by ./... (the module's
// own), so the standard library builds quietly.
func collectFacts(root string) (*facts, error) {
	cmd := exec.Command("go", "build", buildGcflags, "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("vet: go build failed: %v\n%s", err, out)
	}
	f := &facts{inline: map[string]fact{}}
	// -m=2 prints some escape facts twice (once bare, once with a trailing
	// colon introducing the flow explanation); dedupe on normalized
	// position+message so each fact is recorded once.
	seen := map[string]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		pos, msg, ok := splitDiag(line, root)
		if !ok {
			continue
		}
		key := posKey(pos) + "|" + msg
		if seen[key] {
			continue
		}
		seen[key] = true
		switch {
		case msg == "Found IsInBounds" || msg == "Found IsSliceInBounds":
			f.bounds = append(f.bounds, fact{pos, msg})
		case strings.HasPrefix(msg, "moved to heap: "),
			strings.HasSuffix(msg, " escapes to heap"),
			strings.HasPrefix(msg, "leaking param") && !strings.Contains(msg, "to result"):
			f.escapes = append(f.escapes, fact{pos, msg})
		case strings.HasPrefix(msg, "can inline "), strings.HasPrefix(msg, "cannot inline "):
			f.inline[posKey(pos)] = fact{pos, msg}
		}
	}
	return f, nil
}

// splitDiag parses one `path:line:col: message` compiler line. Package
// headers (`# etsqp/...`), blank lines and the indented flow-explanation
// continuations of -m=2 are rejected. Paths are printed relative to the
// module root; they come back absolute so positions match the loader's.
func splitDiag(line, root string) (token.Position, string, bool) {
	var pos token.Position
	if line == "" || strings.HasPrefix(line, "#") {
		return pos, "", false
	}
	rest := line
	var parts [3]string
	for i := 0; i < 3; i++ {
		j := strings.Index(rest, ":")
		if j < 0 {
			return pos, "", false
		}
		parts[i] = rest[:j]
		rest = rest[j+1:]
	}
	msg, ok := strings.CutPrefix(rest, " ")
	if !ok || msg == "" || msg[0] == ' ' { // continuation detail line
		return pos, "", false
	}
	lineNo, err1 := strconv.Atoi(parts[1])
	colNo, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || !strings.HasSuffix(parts[0], ".go") {
		return pos, "", false
	}
	file := parts[0]
	if !filepath.IsAbs(file) {
		file = filepath.Join(root, file)
	}
	pos = token.Position{Filename: file, Line: lineNo, Column: colNo}
	return pos, strings.TrimSuffix(msg, ":"), true
}

func posKey(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

// annotated returns the indexed functions carrying //etsqp:<name>, with
// bodies, skipping test files (go build does not compile _test.go, so no
// facts exist for them).
func annotated(m *lint.Module, name string) []*lint.FuncInfo {
	var out []*lint.FuncInfo
	for _, fi := range m.Funcs {
		if !fi.Annotated(name) || fi.Decl.Body == nil {
			continue
		}
		if strings.HasSuffix(m.Fset.Position(fi.Decl.Pos()).Filename, "_test.go") {
			continue
		}
		out = append(out, fi)
	}
	return out
}

// inRange reports whether pos falls inside the function declaration.
func inRange(m *lint.Module, fi *lint.FuncInfo, pos token.Position) bool {
	start := m.Fset.Position(fi.Decl.Pos())
	end := m.Fset.Position(fi.Decl.End())
	if pos.Filename != start.Filename {
		return false
	}
	afterStart := pos.Line > start.Line || (pos.Line == start.Line && pos.Column >= start.Column)
	beforeEnd := pos.Line < end.Line || (pos.Line == end.Line && pos.Column <= end.Column)
	return afterStart && beforeEnd
}

func report(diags []lint.Diagnostic, contract string, pos token.Position, format string, args ...any) []lint.Diagnostic {
	return append(diags, lint.Diagnostic{
		Pos:      pos,
		Analyzer: contract,
		Message:  fmt.Sprintf(format, args...),
	})
}

// checkNoBCE flags every bounds check the compiler retained inside an
// //etsqp:nobce function.
func checkNoBCE(m *lint.Module, f *facts) []lint.Diagnostic {
	var diags []lint.Diagnostic
	for _, fi := range annotated(m, ContractNoBCE) {
		for _, b := range f.bounds {
			if inRange(m, fi, b.pos) {
				diags = report(diags, ContractNoBCE, b.pos,
					"nobce function %s retains a bounds check (%s); hoist a re-slice or add a length guard",
					fi.Obj.Name(), b.msg)
			}
		}
	}
	return diags
}

// checkNoEscape flags heap escapes inside //etsqp:noescape functions.
func checkNoEscape(m *lint.Module, f *facts) []lint.Diagnostic {
	var diags []lint.Diagnostic
	for _, fi := range annotated(m, ContractNoEscape) {
		for _, e := range f.escapes {
			if inRange(m, fi, e.pos) {
				diags = report(diags, ContractNoEscape, e.pos,
					"noescape function %s: %s", fi.Obj.Name(), e.msg)
			}
		}
	}
	return diags
}

// checkInline requires a "can inline" fact at every //etsqp:inline
// function's declaration.
func checkInline(m *lint.Module, f *facts) []lint.Diagnostic {
	var diags []lint.Diagnostic
	for _, fi := range annotated(m, ContractInline) {
		namePos := m.Fset.Position(fi.Decl.Name.Pos())
		fc, ok := f.inline[posKey(namePos)]
		switch {
		case !ok:
			diags = report(diags, ContractInline, namePos,
				"inline function %s: compiler recorded no inlining fact", fi.Obj.Name())
		case strings.HasPrefix(fc.msg, "cannot inline "):
			diags = report(diags, ContractInline, namePos,
				"inline function %s: %s", fi.Obj.Name(), fc.msg)
		}
	}
	return diags
}
