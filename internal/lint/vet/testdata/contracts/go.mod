module fixture.test/contracts

go 1.22
