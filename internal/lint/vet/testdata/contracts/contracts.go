// Package contracts exercises the three etsqp-vet compiler contracts:
// each Bad* function violates the contract it is annotated with, each
// Good* function satisfies it.
package contracts

// SumIndexed gathers through an index slice, so the compiler cannot
// prove the loads in range: the retained check must be reported.
//
//etsqp:nobce
func SumIndexed(xs []int64, idx []int) int64 {
	var s int64
	for _, i := range idx {
		s += xs[i] // want `nobce function SumIndexed retains a bounds check \(Found IsInBounds\)`
	}
	return s
}

// SumDense iterates its own length, so every check is eliminated.
//
//etsqp:nobce
func SumDense(xs []int64) int64 {
	var s int64
	for i := 0; i < len(xs); i++ {
		s += xs[i]
	}
	return s
}

// NewCell returns a pointer into the heap: the allocation escapes.
//
//etsqp:noescape
func NewCell(n int) *int64 {
	x := new(int64) // want `noescape function NewCell: new\(int64\) escapes to heap`
	*x = int64(n)
	return x
}

// AddInPlace works entirely through its arguments; nothing escapes.
//
//etsqp:noescape
func AddInPlace(dst, src []int64) {
	n := len(dst)
	if n > len(src) {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] += src[i]
	}
}

// Fib is self-recursive, which the inliner refuses.
//
//etsqp:inline
func Fib(n int) int { // want `inline function Fib: cannot inline Fib: recursive`
	if n < 2 {
		return n
	}
	return Fib(n-1) + Fib(n-2)
}

// Mid is a leaf helper well under the inlining budget.
//
//etsqp:inline
func Mid(a, b int64) int64 {
	return a + (b-a)/2
}
