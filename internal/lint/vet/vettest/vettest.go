// Package vettest runs the compiler-contract pass over fixture modules
// and checks its diagnostics against `// want` expectations in the
// fixture source, exactly like linttest does for the AST analyzers.
// Because vet shells out to go build, fixtures must be complete modules
// that compile on their own.
package vettest

import (
	"testing"

	"etsqp/internal/lint"
	"etsqp/internal/lint/linttest"
	"etsqp/internal/lint/vet"
)

// Run checks the given contracts (all of them when none are named) on the
// fixture module rooted at dir.
func Run(t *testing.T, dir string, contracts ...string) {
	t.Helper()
	if len(contracts) == 0 {
		contracts = vet.AllContracts
	}
	diags, err := vet.Check(dir, contracts)
	if err != nil {
		t.Fatalf("vetting fixture %s: %v", dir, err)
	}
	m, err := lint.Load(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	linttest.CheckExpectations(t, m, diags)
}
