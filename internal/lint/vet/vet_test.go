package vet_test

import (
	"testing"

	"etsqp/internal/lint/vet"
	"etsqp/internal/lint/vet/vettest"
)

func TestContracts(t *testing.T) {
	vettest.Run(t, "testdata/contracts")
}

func TestUnknownContract(t *testing.T) {
	_, err := vet.Check("testdata/contracts", []string{"nosuch"})
	if err == nil {
		t.Fatal("Check with unknown contract: want error, got nil")
	}
}
