// Package findings defines the finding schema shared by the project's
// two static-verification tools: cmd/etsqp-lint (AST/type-graph
// analyzers) and cmd/etsqp-vet (compiler-contract checks). Both emit
// the same struct, sort with the same order and encode the same JSON
// shape, so one problem matcher and one documentation table cover both
// tools.
package findings

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
)

// A Finding is one reported diagnostic: a position, the analyzer (or
// compiler contract) that produced it, and a message.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Sort orders findings deterministically: by file, line, column,
// analyzer, then message. Both etsqp-lint and etsqp-vet emit in this
// order so repeated runs (and CI annotation diffs) are stable.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// jsonFinding is the stable machine-readable finding shape shared by
// the -json modes of cmd/etsqp-lint and cmd/etsqp-vet.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON writes findings as an indented JSON array (never null:
// zero findings encode as []), in the order given.
func WriteJSON(w io.Writer, fs []Finding) error {
	out := make([]jsonFinding, 0, len(fs))
	for _, f := range fs {
		out = append(out, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
