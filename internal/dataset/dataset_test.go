package dataset

import (
	"reflect"
	"testing"

	"etsqp/internal/encoding"
	_ "etsqp/internal/encoding/rlbe"
	_ "etsqp/internal/encoding/ts2diff"
)

func TestSpecsMatchTableII(t *testing.T) {
	if len(Specs) != 6 {
		t.Fatalf("Table II has 6 datasets, got %d", len(Specs))
	}
	want := map[string]struct {
		size  int
		attrs int
	}{
		"Atm": {132_000, 3}, "Clim": {8_400_000, 4}, "Gas": {925_000, 19},
		"Time": {1_000_000_000, 2}, "Sine": {1_000_000_000, 6}, "TPCH": {24_000, 4},
	}
	for _, s := range Specs {
		w, ok := want[s.Label]
		if !ok {
			t.Fatalf("unexpected label %s", s.Label)
		}
		if s.Size != w.size || s.Attrs != w.attrs {
			t.Fatalf("%s: size/attrs %d/%d want %d/%d", s.Label, s.Size, s.Attrs, w.size, w.attrs)
		}
	}
}

func TestGenerateAllLabels(t *testing.T) {
	for _, s := range Specs {
		d, err := Generate(s.Label, 5000, 42)
		if err != nil {
			t.Fatalf("%s: %v", s.Label, err)
		}
		if d.Rows() != 5000 || len(d.Attrs) != s.Attrs {
			t.Fatalf("%s: rows=%d attrs=%d", s.Label, d.Rows(), len(d.Attrs))
		}
		for i := 1; i < d.Rows(); i++ {
			if d.Time[i] <= d.Time[i-1] {
				t.Fatalf("%s: timestamps not strictly increasing at %d", s.Label, i)
			}
		}
		for a, col := range d.Attrs {
			if len(col) != d.Rows() {
				t.Fatalf("%s attr %d: length %d", s.Label, a, len(col))
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate("Gas", 1000, 7)
	b, _ := Generate("Gas", 1000, 7)
	if !reflect.DeepEqual(a.Time, b.Time) || !reflect.DeepEqual(a.Attrs, b.Attrs) {
		t.Fatal("same seed must give same data")
	}
	c, _ := Generate("Gas", 1000, 8)
	if reflect.DeepEqual(a.Attrs, c.Attrs) {
		t.Fatal("different seeds must differ")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate("nope", 10, 1); err == nil {
		t.Fatal("unknown label must fail")
	}
	if _, err := Generate("Atm", 0, 1); err == nil {
		t.Fatal("n=0 must fail")
	}
	if _, err := SpecByLabel("zzz"); err == nil {
		t.Fatal("unknown spec must fail")
	}
}

// encodedSize encodes a column and returns its byte count.
func encodedSize(t *testing.T, codec string, col []int64) int {
	t.Helper()
	c, err := encoding.Lookup(codec)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := c.Encode(col)
	if err != nil {
		t.Fatal(err)
	}
	return len(blk)
}

func TestDatasetCompressionProperties(t *testing.T) {
	n := 20000
	// Gas is plateau-heavy: RLBE must beat TS2DIFF on it.
	gas, _ := Generate("Gas", n, 1)
	gasRLBE := encodedSize(t, "rlbe", gas.Attrs[0])
	gasTS := encodedSize(t, "ts2diff", gas.Attrs[0])
	if gasRLBE >= gasTS {
		t.Fatalf("Gas: rlbe %d B should beat ts2diff %d B on plateaus", gasRLBE, gasTS)
	}
	// Regular timestamps compress to near nothing under order-2 deltas.
	tm, _ := Generate("Time", n, 1)
	tsSize := encodedSize(t, "ts2diff2", tm.Time)
	if tsSize > 200 {
		t.Fatalf("Time timestamps: %d B for %d regular points", tsSize, n)
	}
	// TPCH random values compress poorly relative to IoT walks: deltas
	// span the full 21-bit value range, so >= 2.5 B/value.
	tpch, _ := Generate("TPCH", n, 1)
	tpchSize := encodedSize(t, "ts2diff", tpch.Attrs[0])
	if tpchSize < n*5/2 {
		t.Fatalf("TPCH: %d B is implausibly small for random data", tpchSize)
	}
	// Atm walks have small deltas: strong compression.
	atm, _ := Generate("Atm", n, 1)
	atmSize := encodedSize(t, "ts2diff", atm.Attrs[0])
	if atmSize > n*8/8 {
		t.Fatalf("Atm: %d B, want >= 8x compression", atmSize)
	}
}
