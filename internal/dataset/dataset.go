// Package dataset generates the Table II workloads. The original
// Atmosphere/Climate/Gas/Timestamp traces are not redistributable, so
// each generator reproduces the properties the evaluation depends on —
// timestamp regularity (order-2 delta width), value delta magnitudes
// (packing width), repeat-run structure (RLE effectiveness) and value
// locality (pruning selectivity) — with deterministic seeds.
//
//	Label  Paper source              Generator behaviour
//	Atm    weather-station IoT       1 s regular timestamps, smooth
//	                                 random-walk temperatures (tenths °C)
//	Clim   long climate records      hourly timestamps, seasonal sine +
//	                                 walk, strong day-level periodicity
//	Gas    UCI gas sensors (open)    100 ms sampling, drifting baselines
//	                                 with plateaus (repeat-heavy)
//	Time   production timestamps     1 ms regular timestamps, value is a
//	                                 monotone event counter
//	Sine   synthetic sine functions  quantized sine waves, six phases
//	TPCH   TPC-H derived             uniform random values (the
//	                                 incompressible adversary)
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Spec describes one Table II dataset.
type Spec struct {
	Name     string
	Label    string
	Size     int // paper row count (#Size)
	Attrs    int
	Category string
}

// Specs lists Table II. Sizes are the paper's; Generate scales them down
// via its n parameter for laptop runs.
var Specs = []Spec{
	{Name: "Atmosphere", Label: "Atm", Size: 132_000, Attrs: 3, Category: "IoT"},
	{Name: "Climate", Label: "Clim", Size: 8_400_000, Attrs: 4, Category: "IoT"},
	{Name: "Gas", Label: "Gas", Size: 925_000, Attrs: 19, Category: "IoT, Open"},
	{Name: "Timestamp", Label: "Time", Size: 1_000_000_000, Attrs: 2, Category: "IoT"},
	{Name: "Sine-function", Label: "Sine", Size: 1_000_000_000, Attrs: 6, Category: "Generated"},
	{Name: "TPC-H", Label: "TPCH", Size: 24_000, Attrs: 4, Category: "Generated"},
}

// SpecByLabel resolves a Table II label.
func SpecByLabel(label string) (Spec, error) {
	for _, s := range Specs {
		if s.Label == label {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown label %q", label)
}

// Dataset is one generated workload: a timestamp column plus attribute
// columns of equal length.
type Dataset struct {
	Spec  Spec
	Time  []int64
	Attrs [][]int64
}

// Rows reports the generated row count.
func (d *Dataset) Rows() int { return len(d.Time) }

// Generate builds n rows of the labelled dataset deterministically.
func Generate(label string, n int, seed int64) (*Dataset, error) {
	spec, err := SpecByLabel(label)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("dataset: n must be positive")
	}
	d := &Dataset{Spec: spec, Time: make([]int64, n), Attrs: make([][]int64, spec.Attrs)}
	for a := range d.Attrs {
		d.Attrs[a] = make([]int64, n)
	}
	rng := rand.New(rand.NewSource(seed))
	switch label {
	case "Atm":
		genWalk(d, rng, 1000, 0, 5, 0) // 1 s interval, walk step <=5
	case "Clim":
		genSeasonal(d, rng)
	case "Gas":
		genPlateau(d, rng)
	case "Time":
		genCounter(d, rng)
	case "Sine":
		genSine(d)
	case "TPCH":
		genUniform(d, rng)
	}
	return d, nil
}

// genWalk: regular interval, per-attribute random walks.
func genWalk(d *Dataset, rng *rand.Rand, interval, jitter int64, step int64, base int64) {
	cur := int64(1_600_000_000_000)
	vals := make([]int64, len(d.Attrs))
	for a := range vals {
		vals[a] = base + int64(a)*100 + 200
	}
	for i := range d.Time {
		d.Time[i] = cur
		cur += interval
		if jitter > 0 {
			cur += rng.Int63n(2*jitter+1) - jitter
		}
		for a := range d.Attrs {
			vals[a] += rng.Int63n(2*step+1) - step
			d.Attrs[a][i] = vals[a]
		}
	}
}

// genSeasonal: hourly timestamps, sine seasonality plus noise.
func genSeasonal(d *Dataset, rng *rand.Rand) {
	cur := int64(1_500_000_000_000)
	for i := range d.Time {
		d.Time[i] = cur
		cur += 3_600_000
		day := float64(i) / 24
		for a := range d.Attrs {
			season := 150 * math.Sin(2*math.Pi*day/365+float64(a))
			daily := 40 * math.Sin(2*math.Pi*float64(i%24)/24)
			d.Attrs[a][i] = int64(season+daily) + rng.Int63n(11) - 5 + int64(a)*500
		}
	}
}

// genPlateau: 100 ms sampling; sensors hold values for runs then jump —
// the repeat-heavy profile that favours Delta-Repeat encoders.
func genPlateau(d *Dataset, rng *rand.Rand) {
	cur := int64(1_650_000_000_000)
	vals := make([]int64, len(d.Attrs))
	hold := make([]int, len(d.Attrs))
	for a := range vals {
		vals[a] = 1000 + int64(a)*50
	}
	for i := range d.Time {
		d.Time[i] = cur
		cur += 100
		for a := range d.Attrs {
			if hold[a] == 0 {
				vals[a] += rng.Int63n(41) - 20
				hold[a] = rng.Intn(32) + 1 // plateau length
			}
			hold[a]--
			d.Attrs[a][i] = vals[a]
		}
	}
}

// genCounter: 1 ms regular timestamps; attribute 0 is a monotone event
// counter, attribute 1 a slowly changing gauge.
func genCounter(d *Dataset, rng *rand.Rand) {
	cur := int64(1_700_000_000_000)
	count := int64(0)
	gauge := int64(50)
	for i := range d.Time {
		d.Time[i] = cur
		cur++
		count += rng.Int63n(3)
		if len(d.Attrs) > 0 {
			d.Attrs[0][i] = count
		}
		if len(d.Attrs) > 1 {
			if i%100 == 0 {
				gauge += rng.Int63n(7) - 3
			}
			d.Attrs[1][i] = gauge
		}
	}
}

// genSine: quantized sine waves at six phases, regular timestamps.
func genSine(d *Dataset) {
	cur := int64(1_000_000_000_000)
	for i := range d.Time {
		d.Time[i] = cur
		cur += 10
		for a := range d.Attrs {
			phase := float64(a) * math.Pi / 3
			d.Attrs[a][i] = int64(10000 * math.Sin(2*math.Pi*float64(i)/997+phase))
		}
	}
}

// genUniform: the incompressible case — regular timestamps but uniform
// random values (TPC-H-style generated columns).
func genUniform(d *Dataset, rng *rand.Rand) {
	cur := int64(900_000_000_000)
	for i := range d.Time {
		d.Time[i] = cur
		cur += 1000
		for a := range d.Attrs {
			d.Attrs[a][i] = rng.Int63n(1_000_000)
		}
	}
}
