// Package baseline implements the system-level comparators of the
// Figure 13 deployment study. The decoding-approach baselines (Serial,
// SBoost, FastLanes) are execution modes of internal/engine; this package
// adds the *architectural* comparators:
//
//	IoTDB       the unvectorized database read path (Serial mode over
//	            IoT-encoded pages)
//	IoTDB-SIMD  the paper's system (ETSQP-prune mode)
//	MonetDB     a block-materializing columnar executor: every relevant
//	            block decompresses to a memory-resident column before any
//	            operator runs (no decoder/operator pipelining, full
//	            materialization traffic)
//	Spark/HDFS  an executor over general-purpose byte compression
//	            (DEFLATE): weak, type-blind compression means far more
//	            bytes move per query — the I/O bottleneck the paper
//	            attributes to HDFS compressors
//
// Each system ingests identical columns and answers the two Figure 13
// query shapes: time-range SUM and value-filter SUM.
package baseline

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"

	"etsqp/internal/engine"
	"etsqp/internal/storage"
)

// SystemKind selects a simulated deployment.
type SystemKind int

// Figure 13 systems.
const (
	SystemIoTDB SystemKind = iota
	SystemIoTDBSIMD
	SystemMonetDB
	SystemSparkHDFS
)

// String names the system as the figure labels it.
func (k SystemKind) String() string {
	switch k {
	case SystemIoTDB:
		return "IoTDB"
	case SystemIoTDBSIMD:
		return "IoTDB-SIMD"
	case SystemMonetDB:
		return "MonetDB"
	case SystemSparkHDFS:
		return "Spark/HDFS"
	}
	return "Unknown"
}

// System is one loaded deployment ready to answer queries.
type System struct {
	Kind  SystemKind
	n     int
	eng   *engine.Engine // IoTDB variants
	store *storage.Store
	// MonetDB: encoded pages that materialize per query.
	pages []storage.PagePair
	// Spark: flate-compressed column chunks.
	flateTime [][]byte
	flateVals [][]byte
	chunkRows int
	encBytes  int
}

// NewSystem ingests the columns into the chosen deployment.
func NewSystem(kind SystemKind, ts, vals []int64, pageSize int) (*System, error) {
	s := &System{Kind: kind, n: len(ts), chunkRows: pageSize}
	switch kind {
	case SystemIoTDB, SystemIoTDBSIMD:
		st := storage.NewStore()
		if err := st.Append("ts", ts, vals, storage.Options{PageSize: pageSize}); err != nil {
			return nil, err
		}
		mode := engine.ModeSerial
		if kind == SystemIoTDBSIMD {
			mode = engine.ModeETSQPPrune
		}
		s.store = st
		s.eng = engine.New(st, mode)
		ser, _ := st.Series("ts")
		s.encBytes = ser.EncodedBytes()
	case SystemMonetDB:
		pairs, err := storage.EncodePages(ts, vals, storage.Options{PageSize: pageSize})
		if err != nil {
			return nil, err
		}
		s.pages = pairs
		for _, pp := range pairs {
			s.encBytes += len(pp.Time.Data) + len(pp.Value.Data)
		}
	case SystemSparkHDFS:
		for off := 0; off < len(ts); off += pageSize {
			end := off + pageSize
			if end > len(ts) {
				end = len(ts)
			}
			tc, err := flateCompress(ts[off:end])
			if err != nil {
				return nil, err
			}
			vc, err := flateCompress(vals[off:end])
			if err != nil {
				return nil, err
			}
			s.flateTime = append(s.flateTime, tc)
			s.flateVals = append(s.flateVals, vc)
			s.encBytes += len(tc) + len(vc)
		}
	default:
		return nil, fmt.Errorf("baseline: unknown system %d", kind)
	}
	return s, nil
}

// EncodedBytes reports the storage footprint (the I/O volume proxy).
func (s *System) EncodedBytes() int { return s.encBytes }

// NumPoints reports the ingested row count.
func (s *System) NumPoints() int { return s.n }

// TimeRangeSum answers SELECT SUM(A) WHERE t1 <= TIME <= t2.
func (s *System) TimeRangeSum(t1, t2 int64) (int64, error) {
	switch s.Kind {
	case SystemIoTDB, SystemIoTDBSIMD:
		res, err := s.eng.ExecuteSQL(fmt.Sprintf(
			"SELECT SUM(A) FROM ts WHERE TIME >= %d AND TIME <= %d", t1, t2))
		if err != nil {
			return 0, err
		}
		return int64(res.Aggregates["SUM(A)"]), nil
	case SystemMonetDB:
		ts, vals, err := s.materialize()
		if err != nil {
			return 0, err
		}
		var sum int64
		for i := range ts {
			if ts[i] >= t1 && ts[i] <= t2 {
				sum += vals[i]
			}
		}
		return sum, nil
	case SystemSparkHDFS:
		var sum int64
		for c := range s.flateTime {
			ts, err := flateDecompress(s.flateTime[c])
			if err != nil {
				return 0, err
			}
			vals, err := flateDecompress(s.flateVals[c])
			if err != nil {
				return 0, err
			}
			for i := range ts {
				if ts[i] >= t1 && ts[i] <= t2 {
					sum += vals[i]
				}
			}
		}
		return sum, nil
	}
	return 0, fmt.Errorf("baseline: unknown system")
}

// ValueFilterSum answers SELECT SUM(A) WHERE A > c.
func (s *System) ValueFilterSum(c int64) (int64, error) {
	switch s.Kind {
	case SystemIoTDB, SystemIoTDBSIMD:
		res, err := s.eng.ExecuteSQL(fmt.Sprintf(
			"SELECT SUM(A) FROM (SELECT * FROM ts WHERE A > %d)", c))
		if err != nil {
			return 0, err
		}
		return int64(res.Aggregates["SUM(A)"]), nil
	case SystemMonetDB:
		_, vals, err := s.materialize()
		if err != nil {
			return 0, err
		}
		var sum int64
		for _, v := range vals {
			if v > c {
				sum += v
			}
		}
		return sum, nil
	case SystemSparkHDFS:
		var sum int64
		for _, chunk := range s.flateVals {
			vals, err := flateDecompress(chunk)
			if err != nil {
				return 0, err
			}
			for _, v := range vals {
				if v > c {
					sum += v
				}
			}
		}
		return sum, nil
	}
	return 0, fmt.Errorf("baseline: unknown system")
}

// materialize is MonetDB's block-at-a-time decompression of every
// relevant column into memory before operators run.
func (s *System) materialize() (ts, vals []int64, err error) {
	ts = make([]int64, 0, s.n)
	vals = make([]int64, 0, s.n)
	for _, pp := range s.pages {
		tc, err := pp.Time.Decode()
		if err != nil {
			return nil, nil, err
		}
		vc, err := pp.Value.Decode()
		if err != nil {
			return nil, nil, err
		}
		ts = append(ts, tc...)
		vals = append(vals, vc...)
	}
	return ts, vals, nil
}

// flateCompress DEFLATEs a column of little-endian 64-bit values — the
// type-blind general compressor standing in for the HDFS codec.
func flateCompress(vals []int64) ([]byte, error) {
	raw := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(raw[i*8:], uint64(v))
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(raw); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func flateDecompress(data []byte) ([]int64, error) {
	r := flate.NewReader(bytes.NewReader(data))
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("baseline: corrupt flate chunk")
	}
	out := make([]int64, len(raw)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out, nil
}
