package baseline

import (
	"sort"

	"etsqp/internal/expr"
)

// This file holds the decode-then-compute oracles for the multi-series
// and windowed operators: deliberately naive implementations (per-window
// re-scan, timestamp-set union, nested-loop join) that share no code
// with the engine's shared-segment and streaming-cursor paths, so the
// differential and fuzz tests in differential_test.go can require
// bit-for-bit agreement between the two routes.

// ScalarWindow is one window instance's decode-then-compute aggregates
// over the covered rows [Start, End).
type ScalarWindow struct {
	Start, End int64
	Sum        int64
	SumSq      float64
	Count      int64
	Min, Max   int64 // valid when Count > 0
	First      int64 // value at the earliest covered timestamp
	Last       int64 // value at the latest covered timestamp
}

// ScalarWindowed enumerates the hopping windows w_k = [anchor + k·slide,
// anchor + k·slide + width) for k >= 0 while the start does not exceed
// tMax, and aggregates each window with a full re-scan of the rows — the
// O(windows × rows) route the engine's shared segments avoid. Float
// accumulation (Σv²) uses per-value adds in row order.
func ScalarWindowed(ts, vals []int64, anchor, width, slide, tMax int64) []ScalarWindow {
	if width <= 0 || slide <= 0 {
		return nil
	}
	var out []ScalarWindow
	for k := int64(0); ; k++ {
		start := anchor + k*slide
		if start > tMax {
			break
		}
		w := ScalarWindow{Start: start, End: start + width}
		for i := range ts {
			if ts[i] < w.Start || ts[i] >= w.End {
				continue
			}
			v := vals[i]
			if w.Count == 0 {
				w.Min, w.Max = v, v
				w.First = v
			} else {
				if v < w.Min {
					w.Min = v
				}
				if v > w.Max {
					w.Max = v
				}
			}
			w.Sum += v
			w.SumSq += float64(v) * float64(v)
			w.Last = v
			w.Count++
		}
		out = append(out, w)
	}
	return out
}

// MergedRow is one row of the oracle's series concatenation: a timestamp
// with the value from each side, or expr.NullValue for an absent side.
type MergedRow struct {
	Time int64
	L, R int64
}

// ScalarConcat computes the time-ordered concatenation of two decoded
// series by unioning the timestamp sets, sorting, and looking each
// timestamp up on both sides — no merge walk shared with the engine.
// Timestamps must be unique within each side.
func ScalarConcat(lts, lvs, rts, rvs []int64) []MergedRow {
	lm := make(map[int64]int64, len(lts))
	for i, t := range lts {
		lm[t] = lvs[i]
	}
	rm := make(map[int64]int64, len(rts))
	for i, t := range rts {
		rm[t] = rvs[i]
	}
	set := make(map[int64]struct{}, len(lm)+len(rm))
	for t := range lm {
		set[t] = struct{}{}
	}
	for t := range rm {
		set[t] = struct{}{}
	}
	times := make([]int64, 0, len(set))
	for t := range set {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	out := make([]MergedRow, len(times))
	for i, t := range times {
		row := MergedRow{Time: t, L: expr.NullValue, R: expr.NullValue}
		if v, ok := lm[t]; ok {
			row.L = v
		}
		if v, ok := rm[t]; ok {
			row.R = v
		}
		out[i] = row
	}
	return out
}

// JoinedRow is one row of the oracle's natural join.
type JoinedRow struct {
	Time, L, R int64
}

// ScalarJoin computes the natural (time-aligned) join with an O(n·m)
// nested loop over both decoded series.
func ScalarJoin(lts, lvs, rts, rvs []int64) []JoinedRow {
	var out []JoinedRow
	for i := range lts {
		for j := range rts {
			if lts[i] == rts[j] {
				out = append(out, JoinedRow{Time: lts[i], L: lvs[i], R: rvs[j]})
			}
		}
	}
	return out
}
