package baseline

import "etsqp/internal/encoding"

// ScalarAggregates holds the decode-then-aggregate results for one
// Delta-Repeat page: the integer sums, and the float aggregates computed
// with exactly the operation order fusion's algebraic forms use, so the
// two routes must agree bit-for-bit.
type ScalarAggregates struct {
	Sum        int64
	SumSquares int64
	Count      int
	Avg        float64
	Variance   float64
}

// ScalarAggregateDeltaRuns is the differential oracle for the
// Proposition 3 closed forms in internal/fusion: it flattens the page
// naively (one value at a time, the unvectorized IoTDB route) and folds
// SUM, Σv², AVG and population variance value by value.
func ScalarAggregateDeltaRuns(first int64, pairs []encoding.DeltaRun) ScalarAggregates {
	agg := ScalarAggregates{Sum: first, SumSquares: first * first, Count: 1}
	cur := first
	for _, p := range pairs {
		for k := 0; k < p.Count; k++ {
			cur += p.Delta
			agg.Sum += cur
			agg.SumSquares += cur * cur
			agg.Count++
		}
	}
	n := float64(agg.Count)
	mean := float64(agg.Sum) / n
	agg.Avg = mean
	agg.Variance = float64(agg.SumSquares)/n - mean*mean
	return agg
}

// ScalarAggregateDeltaRunsChecked is the overflow-aware sibling of
// ScalarAggregateDeltaRuns: the same one-value-at-a-time fold with every
// int64 step checked. overflow reports whether any reconstruction step
// (cur += delta), Sum fold, square, or SumSquares fold left int64.
//
// It anchors the overflow-parity contract with internal/fusion: whenever
// the decode-then-aggregate route stays in range (overflow == false), the
// fused closed forms must succeed and match bit-for-bit; when it wraps,
// the fused path must either return ErrOverflow or the exact value — it
// may be conservative, but never silently wrong.
func ScalarAggregateDeltaRunsChecked(first int64, pairs []encoding.DeltaRun) (agg ScalarAggregates, overflow bool) {
	agg = ScalarAggregates{Sum: first, Count: 1}
	sq, okSq := mulCheck(first, first)
	overflow = !okSq
	agg.SumSquares = sq
	cur := first
	for _, p := range pairs {
		for k := 0; k < p.Count; k++ {
			var ok bool
			cur, ok = addCheck(cur, p.Delta)
			overflow = overflow || !ok
			agg.Sum, ok = addCheck(agg.Sum, cur)
			overflow = overflow || !ok
			s, okM := mulCheck(cur, cur)
			agg.SumSquares, ok = addCheck(agg.SumSquares, s)
			overflow = overflow || !okM || !ok
			agg.Count++
		}
	}
	n := float64(agg.Count)
	mean := float64(agg.Sum) / n
	agg.Avg = mean
	agg.Variance = float64(agg.SumSquares)/n - mean*mean
	return agg, overflow
}

// addCheck returns a+b and whether the sum stayed in int64.
//
//etsqp:checked add
func addCheck(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return s, false
	}
	return s, true
}

// mulCheck returns a*b and whether the product stayed in int64.
//
//etsqp:checked mul
func mulCheck(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return p, false
	}
	return p, true
}
