package baseline

import "etsqp/internal/encoding"

// ScalarAggregates holds the decode-then-aggregate results for one
// Delta-Repeat page: the integer sums, and the float aggregates computed
// with exactly the operation order fusion's algebraic forms use, so the
// two routes must agree bit-for-bit.
type ScalarAggregates struct {
	Sum        int64
	SumSquares int64
	Count      int
	Avg        float64
	Variance   float64
}

// ScalarAggregateDeltaRuns is the differential oracle for the
// Proposition 3 closed forms in internal/fusion: it flattens the page
// naively (one value at a time, the unvectorized IoTDB route) and folds
// SUM, Σv², AVG and population variance value by value.
func ScalarAggregateDeltaRuns(first int64, pairs []encoding.DeltaRun) ScalarAggregates {
	agg := ScalarAggregates{Sum: first, SumSquares: first * first, Count: 1}
	cur := first
	for _, p := range pairs {
		for k := 0; k < p.Count; k++ {
			cur += p.Delta
			agg.Sum += cur
			agg.SumSquares += cur * cur
			agg.Count++
		}
	}
	n := float64(agg.Count)
	mean := float64(agg.Sum) / n
	agg.Avg = mean
	agg.Variance = float64(agg.SumSquares)/n - mean*mean
	return agg
}
