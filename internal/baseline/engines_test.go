package baseline

import (
	"testing"

	_ "etsqp/internal/encoding/ts2diff"
)

var allSystems = []SystemKind{SystemIoTDB, SystemIoTDBSIMD, SystemMonetDB, SystemSparkHDFS}

func buildColumns(n int) (ts, vals []int64) {
	ts = make([]int64, n)
	vals = make([]int64, n)
	for i := 0; i < n; i++ {
		ts[i] = 1_000_000 + int64(i)*100
		vals[i] = int64(i%1000) - 200
	}
	return ts, vals
}

func TestAllSystemsAgreeOnTimeRangeSum(t *testing.T) {
	ts, vals := buildColumns(20_000)
	t1, t2 := ts[2500], ts[17_500]
	var want int64
	for i := range ts {
		if ts[i] >= t1 && ts[i] <= t2 {
			want += vals[i]
		}
	}
	for _, kind := range allSystems {
		s, err := NewSystem(kind, ts, vals, 2048)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		got, err := s.TimeRangeSum(t1, t2)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if got != want {
			t.Fatalf("%v: got %d want %d", kind, got, want)
		}
		if s.NumPoints() != len(ts) {
			t.Fatalf("%v: points = %d", kind, s.NumPoints())
		}
	}
}

func TestAllSystemsAgreeOnValueFilterSum(t *testing.T) {
	ts, vals := buildColumns(20_000)
	c := int64(300)
	var want int64
	for _, v := range vals {
		if v > c {
			want += v
		}
	}
	for _, kind := range allSystems {
		s, err := NewSystem(kind, ts, vals, 2048)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		got, err := s.ValueFilterSum(c)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if got != want {
			t.Fatalf("%v: got %d want %d", kind, got, want)
		}
	}
}

func TestIoTEncodingBeatsFlateOnFootprint(t *testing.T) {
	// The architectural claim behind Figure 13: IoT encoders compress
	// regular sensor data far better than a general byte compressor.
	ts, vals := buildColumns(50_000)
	iot, err := NewSystem(SystemIoTDB, ts, vals, 4096)
	if err != nil {
		t.Fatal(err)
	}
	spark, err := NewSystem(SystemSparkHDFS, ts, vals, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if iot.EncodedBytes() <= 0 || spark.EncodedBytes() <= 0 {
		t.Fatal("footprints must be positive")
	}
	if iot.EncodedBytes() >= spark.EncodedBytes() {
		t.Fatalf("IoT encoding (%d B) should beat flate (%d B) on this data",
			iot.EncodedBytes(), spark.EncodedBytes())
	}
}

func TestSystemKindString(t *testing.T) {
	names := map[SystemKind]string{
		SystemIoTDB: "IoTDB", SystemIoTDBSIMD: "IoTDB-SIMD",
		SystemMonetDB: "MonetDB", SystemSparkHDFS: "Spark/HDFS",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d: %s", k, k.String())
		}
	}
	if SystemKind(99).String() != "Unknown" {
		t.Error("unknown kind")
	}
	if _, err := NewSystem(SystemKind(99), []int64{1}, []int64{1}, 10); err == nil {
		t.Error("unknown kind must fail")
	}
}

func TestFlateRoundTrip(t *testing.T) {
	vals := []int64{0, -1, 1 << 40, -(1 << 40), 12345}
	c, err := flateCompress(vals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := flateDecompress(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("got %v", got)
		}
	}
	if _, err := flateDecompress([]byte{0x00}); err == nil {
		t.Fatal("garbage must fail")
	}
}
