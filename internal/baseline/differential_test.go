package baseline

import (
	"fmt"
	"math/rand"
	"testing"

	_ "etsqp/internal/encoding/rlbe"
	_ "etsqp/internal/encoding/ts2diff"
	"etsqp/internal/engine"
	"etsqp/internal/storage"
)

// The differential harness: the engine's shared-segment window path and
// streaming cursor merge/join must agree bit-for-bit with the naive
// decode-then-compute oracles in oracle.go. Values are clamped to
// |v| <= 2^20 and windows cover < 2^12 rows, so every Σv² partial stays
// below 2^53 and float accumulation is exact in any association order —
// AVG and VAR compare with ==, not a tolerance.

const walkClamp = 1 << 20

// genWalk builds a strictly-increasing timestamp column with random
// gaps and a clamped random-walk value column.
func genWalk(rng *rand.Rand, n int, t0 int64) (ts, vals []int64) {
	ts = make([]int64, n)
	vals = make([]int64, n)
	t := t0
	var v int64
	for i := 0; i < n; i++ {
		t += 1 + int64(rng.Intn(20))
		v += int64(rng.Intn(2001)) - 1000
		if v > walkClamp {
			v = walkClamp
		}
		if v < -walkClamp {
			v = -walkClamp
		}
		ts[i] = t
		vals[i] = v
	}
	return ts, vals
}

// wantWindowValue replicates the engine's finalization (operation order
// included) from the oracle's per-window scalars.
func wantWindowValue(agg string, w ScalarWindow) float64 {
	if w.Count == 0 {
		return 0
	}
	switch agg {
	case "SUM":
		return float64(w.Sum)
	case "COUNT":
		return float64(w.Count)
	case "AVG":
		return float64(w.Sum) / float64(w.Count)
	case "MIN":
		return float64(w.Min)
	case "MAX":
		return float64(w.Max)
	case "VAR":
		mean := float64(w.Sum) / float64(w.Count)
		return w.SumSq/float64(w.Count) - mean*mean
	case "FIRST":
		return float64(w.First)
	case "LAST":
		return float64(w.Last)
	}
	return 0
}

func windowStore(t testing.TB, ts, vals []int64, pageSize int) *storage.Store {
	st := storage.NewStore()
	if err := st.Append("ts", ts, vals, storage.Options{PageSize: pageSize}); err != nil {
		t.Fatal(err)
	}
	return st
}

// checkWindowed runs one windowed query on every execution mode and
// compares each window instance against the re-scan oracle.
func checkWindowed(t testing.TB, ts, vals []int64, pageSize int,
	agg string, sql string, anchor, width, slide int64) {
	t.Helper()
	want := ScalarWindowed(ts, vals, anchor, width, slide, ts[len(ts)-1])
	st := windowStore(t, ts, vals, pageSize)
	for _, mode := range []engine.Mode{engine.ModeSerial, engine.ModeETSQP, engine.ModeETSQPPrune} {
		e := engine.New(st, mode)
		res, err := e.ExecuteSQL(sql)
		if err != nil {
			t.Fatalf("%v %q: %v", mode, sql, err)
		}
		if len(res.Windows) != len(want) {
			t.Fatalf("%v %q: %d windows, oracle has %d", mode, sql, len(res.Windows), len(want))
		}
		for i, w := range res.Windows {
			o := want[i]
			if w.Start != o.Start || w.End != o.End {
				t.Fatalf("%v %q window %d: bounds [%d,%d) want [%d,%d)",
					mode, sql, i, w.Start, w.End, o.Start, o.End)
			}
			if w.Count != o.Count {
				t.Fatalf("%v %q window %d: count %d want %d", mode, sql, i, w.Count, o.Count)
			}
			if wv := wantWindowValue(agg, o); w.Value != wv {
				t.Fatalf("%v %q window %d [%d,%d): %s = %v, oracle %v",
					mode, sql, i, w.Start, w.End, agg, w.Value, wv)
			}
		}
	}
}

// TestWindowDifferentialAllAggs checks every aggregate over randomized
// series, window widths and slides (overlapping, tumbling and gapped),
// for both the SW and GROUP BY TIME forms, across all engine modes.
func TestWindowDifferentialAllAggs(t *testing.T) {
	aggs := []string{"SUM", "COUNT", "AVG", "MIN", "MAX", "VAR", "FIRST", "LAST"}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(2000)
		t0 := int64(1_000_000 + rng.Intn(1000))
		ts, vals := genWalk(rng, n, t0)
		pageSize := 128 << rng.Intn(3)
		width := int64(1 + rng.Intn(900))
		slide := int64(1 + rng.Intn(900))
		anchor := t0 + int64(rng.Intn(200)) - 100
		agg := aggs[rng.Intn(len(aggs))]

		// SW form: explicit anchor and slide.
		sql := fmt.Sprintf("SELECT %s(A) FROM ts SW(%d, %d, %d)", agg, anchor, width, slide)
		checkWindowed(t, ts, vals, pageSize, agg, sql, anchor, width, slide)

		// GROUP BY TIME form: anchored at the series start.
		sql = fmt.Sprintf("SELECT %s(A) FROM ts GROUP BY TIME(%d, %d)", agg, width, slide)
		checkWindowed(t, ts, vals, pageSize, agg, sql, ts[0], width, slide)

		// Tumbling SW without an explicit slide.
		sql = fmt.Sprintf("SELECT %s(A) FROM ts SW(%d, %d)", agg, anchor, width)
		checkWindowed(t, ts, vals, pageSize, agg, sql, anchor, width, width)
	}
}

// TestWindowDifferentialTimeBounds checks windowed queries under WHERE
// TIME bounds: the window set clips at the upper bound and only rows
// inside [t1, t2] aggregate.
func TestWindowDifferentialTimeBounds(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ts, vals := genWalk(rng, 1200, 5_000)
		t1 := ts[100+rng.Intn(200)]
		t2 := ts[700+rng.Intn(400)]
		width := int64(1 + rng.Intn(300))
		slide := int64(1 + rng.Intn(300))

		// Oracle sees only the rows inside [t1, t2]; windows enumerate to
		// min(series end, t2) — here t2.
		var fts, fvs []int64
		for i := range ts {
			if ts[i] >= t1 && ts[i] <= t2 {
				fts = append(fts, ts[i])
				fvs = append(fvs, vals[i])
			}
		}
		want := ScalarWindowed(fts, fvs, t1, width, slide, t2)

		st := windowStore(t, ts, vals, 256)
		sql := fmt.Sprintf(
			"SELECT SUM(A) FROM ts WHERE TIME >= %d AND TIME <= %d GROUP BY TIME(%d, %d)",
			t1, t2, width, slide)
		for _, mode := range []engine.Mode{engine.ModeSerial, engine.ModeETSQP, engine.ModeETSQPPrune} {
			e := engine.New(st, mode)
			res, err := e.ExecuteSQL(sql)
			if err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
			if len(res.Windows) != len(want) {
				t.Fatalf("%v: %d windows, oracle has %d", mode, len(res.Windows), len(want))
			}
			for i, w := range res.Windows {
				if w.Count != want[i].Count || w.Value != float64(want[i].Sum) {
					t.Fatalf("%v window %d: (%v, %d) want (%d, %d)",
						mode, i, w.Value, w.Count, want[i].Sum, want[i].Count)
				}
			}
		}
	}
}

// sharedGrid builds two series sampled from one timestamp grid so their
// merge has all three row shapes (left-only, right-only, both) and the
// join is non-trivial.
func sharedGrid(rng *rand.Rand, n int) (lts, lvs, rts, rvs []int64) {
	t := int64(10_000)
	for i := 0; i < n; i++ {
		t += 1 + int64(rng.Intn(10))
		v := int64(rng.Intn(2*walkClamp)) - walkClamp
		if rng.Intn(10) < 7 {
			lts = append(lts, t)
			lvs = append(lvs, v)
		}
		if rng.Intn(10) < 7 {
			rts = append(rts, t)
			rvs = append(rvs, v+1)
		}
	}
	return lts, lvs, rts, rvs
}

func twoSeriesStore(t testing.TB, lts, lvs, rts, rvs []int64, pageSize int) *storage.Store {
	st := storage.NewStore()
	if err := st.Append("ts1", lts, lvs, storage.Options{PageSize: pageSize}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("ts2", rts, rvs, storage.Options{PageSize: pageSize}); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestConcatJoinDifferential checks UNION ... ORDER BY TIME against the
// timestamp-set oracle and the natural join (star and sum projections)
// against the nested-loop oracle, across all engine modes.
func TestConcatJoinDifferential(t *testing.T) {
	for seed := int64(20); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		lts, lvs, rts, rvs := sharedGrid(rng, 400+rng.Intn(600))
		st := twoSeriesStore(t, lts, lvs, rts, rvs, 128<<rng.Intn(3))
		wantMerge := ScalarConcat(lts, lvs, rts, rvs)
		wantJoin := ScalarJoin(lts, lvs, rts, rvs)
		for _, mode := range []engine.Mode{engine.ModeSerial, engine.ModeETSQP, engine.ModeETSQPPrune} {
			e := engine.New(st, mode)

			res, err := e.ExecuteSQL("SELECT * FROM ts1 UNION ts2 ORDER BY TIME")
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != len(wantMerge) {
				t.Fatalf("%v merge: %d rows, oracle has %d", mode, len(res.Rows), len(wantMerge))
			}
			for i, r := range res.Rows {
				o := wantMerge[i]
				if r.Time != o.Time || r.Values[0] != o.L || r.Values[1] != o.R {
					t.Fatalf("%v merge row %d: %v want %+v", mode, i, r, o)
				}
			}

			res, err = e.ExecuteSQL("SELECT * FROM ts1, ts2")
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != len(wantJoin) {
				t.Fatalf("%v join: %d rows, oracle has %d", mode, len(res.Rows), len(wantJoin))
			}
			for i, r := range res.Rows {
				o := wantJoin[i]
				if r.Time != o.Time || r.Values[0] != o.L || r.Values[1] != o.R {
					t.Fatalf("%v join row %d: %v want %+v", mode, i, r, o)
				}
			}

			res, err = e.ExecuteSQL("SELECT ts1.A + ts2.A FROM ts1, ts2")
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range res.Rows {
				o := wantJoin[i]
				if r.Time != o.Time || r.Values[0] != o.L+o.R {
					t.Fatalf("%v join-sum row %d: %v want %+v", mode, i, r, o)
				}
			}
		}
	}
}

// FuzzWindowDifferential fuzzes window geometry (width, slide, anchor)
// and the aggregate against the re-scan oracle on the ETSQP mode.
func FuzzWindowDifferential(f *testing.F) {
	f.Add(int64(1), uint16(50), uint16(20), uint8(0), int16(0))
	f.Add(int64(2), uint16(7), uint16(90), uint8(3), int16(-50))
	f.Add(int64(3), uint16(128), uint16(128), uint8(5), int16(40))
	aggs := []string{"SUM", "COUNT", "AVG", "MIN", "MAX", "VAR", "FIRST", "LAST"}
	f.Fuzz(func(t *testing.T, seed int64, widthRaw, slideRaw uint16, aggIdx uint8, anchorOff int16) {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(900)
		t0 := int64(1_000_000)
		ts, vals := genWalk(rng, n, t0)
		width := int64(widthRaw%1000) + 1
		slide := int64(slideRaw%1000) + 1
		anchor := t0 + int64(anchorOff)
		agg := aggs[int(aggIdx)%len(aggs)]
		sql := fmt.Sprintf("SELECT %s(A) FROM ts SW(%d, %d, %d)", agg, anchor, width, slide)
		want := ScalarWindowed(ts, vals, anchor, width, slide, ts[len(ts)-1])
		st := windowStore(t, ts, vals, 256)
		e := engine.New(st, engine.ModeETSQP)
		res, err := e.ExecuteSQL(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if len(res.Windows) != len(want) {
			t.Fatalf("%q: %d windows, oracle has %d", sql, len(res.Windows), len(want))
		}
		for i, w := range res.Windows {
			o := want[i]
			if w.Count != o.Count || w.Value != wantWindowValue(agg, o) {
				t.Fatalf("%q window %d [%d,%d): (%v, %d) want (%v, %d)",
					sql, i, o.Start, o.End, w.Value, w.Count, wantWindowValue(agg, o), o.Count)
			}
		}
	})
}

// FuzzMergeJoinDifferential fuzzes the shared-grid shape of two series
// and checks the streaming merge and join against the oracles.
func FuzzMergeJoinDifferential(f *testing.F) {
	f.Add(int64(1), uint16(300))
	f.Add(int64(7), uint16(64))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16) {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%600) + 20
		lts, lvs, rts, rvs := sharedGrid(rng, n)
		if len(lts) == 0 || len(rts) == 0 {
			t.Skip("empty side")
		}
		st := twoSeriesStore(t, lts, lvs, rts, rvs, 128)
		e := engine.New(st, engine.ModeETSQP)

		wantMerge := ScalarConcat(lts, lvs, rts, rvs)
		res, err := e.ExecuteSQL("SELECT * FROM ts1 UNION ts2 ORDER BY TIME")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(wantMerge) {
			t.Fatalf("merge: %d rows, oracle has %d", len(res.Rows), len(wantMerge))
		}
		for i, r := range res.Rows {
			o := wantMerge[i]
			if r.Time != o.Time || r.Values[0] != o.L || r.Values[1] != o.R {
				t.Fatalf("merge row %d: %v want %+v", i, r, o)
			}
		}

		wantJoin := ScalarJoin(lts, lvs, rts, rvs)
		res, err = e.ExecuteSQL("SELECT * FROM ts1, ts2")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(wantJoin) {
			t.Fatalf("join: %d rows, oracle has %d", len(res.Rows), len(wantJoin))
		}
		for i, r := range res.Rows {
			o := wantJoin[i]
			if r.Time != o.Time || r.Values[0] != o.L || r.Values[1] != o.R {
				t.Fatalf("join row %d: %v want %+v", i, r, o)
			}
		}
	})
}
