// Package sqlparse parses the SQL dialect of the benchmark queries
// (Table III): single-series aggregations with time/value predicates and
// sliding windows, series union with time ordering, and natural joins
// with arithmetic projections.
//
// Grammar (case-insensitive keywords):
//
//	query   := SELECT items FROM source [WHERE pred (AND pred)*]
//	           [window] [UNION series] [ORDER BY TIME] [LIMIT int] [';']
//	window  := SW '(' int ',' int [',' int] ')'
//	         | GROUP BY TIME '(' int [',' int] ')'
//	items   := '*' | item (',' item)*
//	item    := agg '(' col ')' | CORR '(' col ',' col ')' | col '+' col | col
//	agg     := SUM | AVG | COUNT | MIN | MAX | VAR | FIRST | LAST
//	source  := series [',' series] | '(' query ')'
//	pred    := col op int
//	col     := [series '.'] ('A' | 'TIME' | 'VALUE')
//	op      := '<' | '<=' | '>' | '>=' | '=' | '!='
//
// SW(Tmin, width[, slide]) anchors windows at the explicit Tmin;
// GROUP BY TIME(width[, slide]) anchors at the query's time lower bound
// (or the series' first timestamp when unbounded below). Omitting slide
// tumbles (slide = width).
//
// Series names are dotted identifiers (e.g. root.sg.d1.velocity); a final
// segment A, TIME, or VALUE denotes a column reference on that series.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokSymbol // one of ( ) , * + ; . and comparison operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex splits src into tokens; comparison operators are greedy (<= not <,=).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		switch {
		case unicode.IsSpace(c):
			l.pos++
		case unicode.IsLetter(c) || c == '_':
			l.lexIdent()
		case unicode.IsDigit(c):
			l.lexNumber()
		case c == '-':
			// Negative literal (the dialect has no binary minus).
			l.pos++
			if l.pos >= len(l.src) || !unicode.IsDigit(rune(l.src[l.pos])) {
				return nil, fmt.Errorf("sqlparse: stray '-' at %d", l.pos-1)
			}
			start := l.pos - 1
			for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
				l.pos++
			}
			l.tokens = append(l.tokens, token{tokNumber, l.src[start:l.pos], start})
		case strings.ContainsRune("<>!=", c):
			start := l.pos
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
			}
			op := l.src[start:l.pos]
			if op == "!" {
				return nil, fmt.Errorf("sqlparse: stray '!' at %d", start)
			}
			l.tokens = append(l.tokens, token{tokSymbol, op, start})
		case strings.ContainsRune("(),*+;.", c):
			l.tokens = append(l.tokens, token{tokSymbol, string(c), l.pos})
			l.pos++
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at %d", c, l.pos)
		}
	}
	l.tokens = append(l.tokens, token{tokEOF, "", l.pos})
	return l.tokens, nil
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			l.pos++
			continue
		}
		break
	}
	l.tokens = append(l.tokens, token{tokIdent, l.src[start:l.pos], start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
	}
	l.tokens = append(l.tokens, token{tokNumber, l.src[start:l.pos], start})
}
