package sqlparse

import "etsqp/internal/expr"

// AggFunc names an aggregation function.
type AggFunc string

// Supported aggregation functions.
const (
	AggNone  AggFunc = ""
	AggSum   AggFunc = "SUM"
	AggAvg   AggFunc = "AVG"
	AggCount AggFunc = "COUNT"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
	AggVar   AggFunc = "VAR"
	AggFirst AggFunc = "FIRST" // value at the earliest timestamp in range
	AggLast  AggFunc = "LAST"  // value at the latest timestamp in range
	AggCorr  AggFunc = "CORR"  // Pearson correlation of two joined columns
)

// ColumnRef names a column, optionally qualified by a series.
type ColumnRef struct {
	Series string // "" = the (single) FROM series
	Column string // "A", "TIME", or "VALUE" (alias of A)
}

// IsTime reports whether the reference is the timestamp column.
func (c ColumnRef) IsTime() bool { return c.Column == "TIME" }

// SelectItem is one projection of the SELECT list.
type SelectItem struct {
	Star bool
	Agg  AggFunc
	Col  ColumnRef
	// Col2 is the second argument of two-column aggregates (CORR).
	Col2 *ColumnRef
	// Add holds the two operands of a col '+' col projection (Q4).
	Add *[2]ColumnRef
}

// Pred is one conjunct of the WHERE clause.
type Pred struct {
	Col   ColumnRef
	Op    expr.CmpOp
	Value int64
}

// Window is a sliding-window clause: either the explicit-anchor
// SW(Tmin, width[, slide]) form or the anchor-inferred
// GROUP BY TIME(width[, slide]) form. Window k covers
// [anchor + k·Slide, anchor + k·Slide + DT); Slide < DT overlaps,
// Slide = DT tumbles (the paper's G_sw(Tmin, ΔT)).
type Window struct {
	TMin int64
	// HasTMin distinguishes SW (explicit anchor) from GROUP BY TIME,
	// whose anchor is the query's time lower bound — or the series'
	// first timestamp when the time range is unbounded below.
	HasTMin bool
	DT      int64 // window width
	Slide   int64 // hop between window starts; 0 means DT (tumbling)
}

// Hop returns the effective slide: Slide, or DT for tumbling windows.
func (w *Window) Hop() int64 {
	if w.Slide > 0 {
		return w.Slide
	}
	return w.DT
}

// Query is a parsed statement.
type Query struct {
	Items       []SelectItem
	Series      []string // FROM series (1, or 2 for a natural join)
	Sub         *Query   // FROM (subquery), exclusive with Series
	UnionWith   string   // UNION <series>
	OrderByTime bool
	Preds       []Pred
	Window      *Window
	Limit       int // LIMIT n; 0 = unlimited
}
