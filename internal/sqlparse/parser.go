package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"etsqp/internal/expr"
)

// Parse parses one statement.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sqlparse: trailing input at %q", p.peek().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// acceptKw consumes an identifier token matching the keyword.
func (p *parser) acceptKw(kw string) bool {
	if p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return fmt.Errorf("sqlparse: expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

// accept consumes a symbol token with the given text.
func (p *parser) accept(sym string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(sym string) error {
	if !p.accept(sym) {
		return fmt.Errorf("sqlparse: expected %q, got %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if err := p.parseItems(q); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	if err := p.parseSource(q); err != nil {
		return nil, err
	}
	if p.acceptKw("WHERE") {
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			q.Preds = append(q.Preds, pred)
			if !p.acceptKw("AND") {
				break
			}
		}
	}
	if p.acceptKw("SW") {
		w, err := p.parseWindow()
		if err != nil {
			return nil, err
		}
		q.Window = w
	} else if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		if err := p.expectKw("TIME"); err != nil {
			return nil, err
		}
		w, err := p.parseGroupByTime()
		if err != nil {
			return nil, err
		}
		q.Window = w
	}
	if p.acceptKw("UNION") {
		name, err := p.parseSeriesName()
		if err != nil {
			return nil, err
		}
		q.UnionWith = name
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		if err := p.expectKw("TIME"); err != nil {
			return nil, err
		}
		q.OrderByTime = true
	}
	if p.acceptKw("LIMIT") {
		if p.peek().kind != tokNumber {
			return nil, fmt.Errorf("sqlparse: expected number after LIMIT, got %q", p.peek().text)
		}
		n, err := strconv.ParseInt(p.next().text, 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("sqlparse: bad LIMIT %d", n)
		}
		q.Limit = int(n)
	}
	return q, nil
}

func (p *parser) parseItems(q *Query) error {
	if p.accept("*") {
		q.Items = []SelectItem{{Star: true}}
		return nil
	}
	for {
		item, err := p.parseItem()
		if err != nil {
			return err
		}
		q.Items = append(q.Items, item)
		if !p.accept(",") {
			break
		}
	}
	return nil
}

var aggNames = map[string]AggFunc{
	"SUM": AggSum, "AVG": AggAvg, "COUNT": AggCount,
	"MIN": AggMin, "MAX": AggMax, "VAR": AggVar,
	"FIRST": AggFirst, "LAST": AggLast, "CORR": AggCorr,
}

func (p *parser) parseItem() (SelectItem, error) {
	if p.peek().kind != tokIdent {
		return SelectItem{}, fmt.Errorf("sqlparse: expected select item, got %q", p.peek().text)
	}
	if agg, ok := aggNames[strings.ToUpper(p.peek().text)]; ok && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
		p.next() // agg name
		p.next() // '('
		col, err := p.parseColumnRef()
		if err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Agg: agg, Col: col}
		if p.accept(",") {
			if agg != AggCorr {
				return SelectItem{}, fmt.Errorf("sqlparse: %s takes one argument", agg)
			}
			col2, err := p.parseColumnRef()
			if err != nil {
				return SelectItem{}, err
			}
			item.Col2 = &col2
		} else if agg == AggCorr {
			return SelectItem{}, fmt.Errorf("sqlparse: CORR takes two arguments")
		}
		if err := p.expect(")"); err != nil {
			return SelectItem{}, err
		}
		return item, nil
	}
	col, err := p.parseColumnRef()
	if err != nil {
		return SelectItem{}, err
	}
	if p.accept("+") {
		col2, err := p.parseColumnRef()
		if err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Add: &[2]ColumnRef{col, col2}}, nil
	}
	return SelectItem{Col: col}, nil
}

func (p *parser) parseSource(q *Query) error {
	if p.accept("(") {
		sub, err := p.parseQuery()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		q.Sub = sub
		return nil
	}
	name, err := p.parseSeriesName()
	if err != nil {
		return err
	}
	q.Series = []string{name}
	if p.accept(",") {
		name2, err := p.parseSeriesName()
		if err != nil {
			return err
		}
		q.Series = append(q.Series, name2)
	}
	return nil
}

// parseSeriesName consumes a dotted identifier.
func (p *parser) parseSeriesName() (string, error) {
	if p.peek().kind != tokIdent {
		return "", fmt.Errorf("sqlparse: expected series name, got %q", p.peek().text)
	}
	parts := []string{p.next().text}
	for p.peek().kind == tokSymbol && p.peek().text == "." {
		// Lookahead: the dot must be followed by an identifier.
		if p.toks[p.pos+1].kind != tokIdent {
			return "", fmt.Errorf("sqlparse: dangling '.' in series name")
		}
		p.pos++ // '.'
		parts = append(parts, p.next().text)
	}
	return strings.Join(parts, "."), nil
}

// columnNames are the recognized column identifiers.
func isColumnName(s string) bool {
	switch strings.ToUpper(s) {
	case "A", "TIME", "VALUE":
		return true
	}
	return false
}

// parseColumnRef consumes [series '.'] column.
func (p *parser) parseColumnRef() (ColumnRef, error) {
	name, err := p.parseSeriesName()
	if err != nil {
		return ColumnRef{}, err
	}
	parts := strings.Split(name, ".")
	last := parts[len(parts)-1]
	if !isColumnName(last) {
		return ColumnRef{}, fmt.Errorf("sqlparse: %q is not a column (want A, TIME, or VALUE)", name)
	}
	col := strings.ToUpper(last)
	if col == "VALUE" {
		col = "A"
	}
	return ColumnRef{
		Series: strings.Join(parts[:len(parts)-1], "."),
		Column: col,
	}, nil
}

var cmpOps = map[string]expr.CmpOp{
	"<": expr.OpLT, "<=": expr.OpLE, ">": expr.OpGT,
	">=": expr.OpGE, "=": expr.OpEQ, "!=": expr.OpNE,
}

func (p *parser) parsePred() (Pred, error) {
	col, err := p.parseColumnRef()
	if err != nil {
		return Pred{}, err
	}
	if p.peek().kind != tokSymbol {
		return Pred{}, fmt.Errorf("sqlparse: expected comparison, got %q", p.peek().text)
	}
	op, ok := cmpOps[p.peek().text]
	if !ok {
		return Pred{}, fmt.Errorf("sqlparse: unknown operator %q", p.peek().text)
	}
	p.next()
	if p.peek().kind != tokNumber {
		return Pred{}, fmt.Errorf("sqlparse: expected number, got %q", p.peek().text)
	}
	v, err := strconv.ParseInt(p.next().text, 10, 64)
	if err != nil {
		return Pred{}, fmt.Errorf("sqlparse: bad number: %w", err)
	}
	return Pred{Col: col, Op: op, Value: v}, nil
}

// readWindowInt consumes one integer argument of a window clause.
func (p *parser) readWindowInt(clause string) (int64, error) {
	if p.peek().kind != tokNumber {
		return 0, fmt.Errorf("sqlparse: expected number in %s, got %q", clause, p.peek().text)
	}
	return strconv.ParseInt(p.next().text, 10, 64)
}

// parseWindow parses the explicit-anchor form SW(Tmin, width[, slide]).
func (p *parser) parseWindow() (*Window, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	tmin, err := p.readWindowInt("SW")
	if err != nil {
		return nil, err
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	dt, err := p.readWindowInt("SW")
	if err != nil {
		return nil, err
	}
	w := &Window{TMin: tmin, HasTMin: true, DT: dt}
	if p.accept(",") {
		slide, err := p.readWindowInt("SW")
		if err != nil {
			return nil, err
		}
		if slide <= 0 {
			return nil, fmt.Errorf("sqlparse: SW slide must be positive")
		}
		w.Slide = slide
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return validateWindow(w, "SW")
}

// parseGroupByTime parses the anchor-inferred form
// GROUP BY TIME(width[, slide]); the anchor comes from the query's time
// range at execution time.
func (p *parser) parseGroupByTime() (*Window, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	dt, err := p.readWindowInt("GROUP BY TIME")
	if err != nil {
		return nil, err
	}
	w := &Window{DT: dt}
	if p.accept(",") {
		slide, err := p.readWindowInt("GROUP BY TIME")
		if err != nil {
			return nil, err
		}
		if slide <= 0 {
			return nil, fmt.Errorf("sqlparse: GROUP BY TIME slide must be positive")
		}
		w.Slide = slide
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return validateWindow(w, "GROUP BY TIME")
}

func validateWindow(w *Window, clause string) (*Window, error) {
	if w.DT <= 0 {
		return nil, fmt.Errorf("sqlparse: %s width must be positive", clause)
	}
	if w.Slide == w.DT {
		w.Slide = 0 // canonical tumbling form
	}
	return w, nil
}
