package sqlparse

import (
	"testing"

	"etsqp/internal/expr"
)

func TestParseQ1SlidingWindowSum(t *testing.T) {
	q, err := Parse("SELECT SUM(A) FROM root.sg.d1.velocity SW(0, 1000);")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items) != 1 || q.Items[0].Agg != AggSum || q.Items[0].Col.Column != "A" {
		t.Fatalf("items = %+v", q.Items)
	}
	if len(q.Series) != 1 || q.Series[0] != "root.sg.d1.velocity" {
		t.Fatalf("series = %v", q.Series)
	}
	if q.Window == nil || q.Window.TMin != 0 || q.Window.DT != 1000 {
		t.Fatalf("window = %+v", q.Window)
	}
}

func TestParseQ2Avg(t *testing.T) {
	q, err := Parse("select avg(a) from ts sw(100, 50)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Items[0].Agg != AggAvg || q.Window.TMin != 100 || q.Window.DT != 50 {
		t.Fatalf("%+v", q)
	}
}

func TestParseQ3Subquery(t *testing.T) {
	q, err := Parse("SELECT SUM(A) FROM (SELECT * FROM ts WHERE A > 5);")
	if err != nil {
		t.Fatal(err)
	}
	if q.Sub == nil || len(q.Series) != 0 {
		t.Fatalf("sub = %+v", q.Sub)
	}
	if !q.Sub.Items[0].Star {
		t.Fatal("subquery must select *")
	}
	if len(q.Sub.Preds) != 1 || q.Sub.Preds[0].Op != expr.OpGT || q.Sub.Preds[0].Value != 5 {
		t.Fatalf("preds = %+v", q.Sub.Preds)
	}
}

func TestParseQ4JoinAdd(t *testing.T) {
	q, err := Parse("SELECT ts1.A+ts2.A FROM ts1, ts2;")
	if err != nil {
		t.Fatal(err)
	}
	if q.Items[0].Add == nil {
		t.Fatal("expected add projection")
	}
	add := *q.Items[0].Add
	if add[0].Series != "ts1" || add[1].Series != "ts2" || add[0].Column != "A" {
		t.Fatalf("add = %+v", add)
	}
	if len(q.Series) != 2 {
		t.Fatalf("series = %v", q.Series)
	}
}

func TestParseQ5Union(t *testing.T) {
	q, err := Parse("SELECT * FROM ts1 UNION ts2 ORDER BY TIME;")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Items[0].Star || q.UnionWith != "ts2" || !q.OrderByTime {
		t.Fatalf("%+v", q)
	}
}

func TestParseQ6NaturalJoin(t *testing.T) {
	q, err := Parse("SELECT * FROM ts1, ts2;")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Series) != 2 || !q.Items[0].Star {
		t.Fatalf("%+v", q)
	}
}

func TestParseTimeRange(t *testing.T) {
	q, err := Parse("SELECT AVG(A) FROM v WHERE TIME >= 180 AND TIME <= 300;")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 2 {
		t.Fatalf("preds = %+v", q.Preds)
	}
	if !q.Preds[0].Col.IsTime() || q.Preds[0].Op != expr.OpGE || q.Preds[0].Value != 180 {
		t.Fatalf("pred 0 = %+v", q.Preds[0])
	}
	if q.Preds[1].Op != expr.OpLE || q.Preds[1].Value != 300 {
		t.Fatalf("pred 1 = %+v", q.Preds[1])
	}
}

func TestParseNegativeLiteral(t *testing.T) {
	q, err := Parse("SELECT SUM(A) FROM ts WHERE A > -42")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Value != -42 {
		t.Fatalf("value = %d", q.Preds[0].Value)
	}
}

func TestParseValueAlias(t *testing.T) {
	q, err := Parse("SELECT MAX(VALUE) FROM ts")
	if err != nil {
		t.Fatal(err)
	}
	if q.Items[0].Col.Column != "A" {
		t.Fatalf("VALUE must alias A: %+v", q.Items[0])
	}
}

func TestParseAllAggs(t *testing.T) {
	for _, agg := range []string{"SUM", "AVG", "COUNT", "MIN", "MAX", "VAR"} {
		q, err := Parse("SELECT " + agg + "(A) FROM ts")
		if err != nil {
			t.Fatalf("%s: %v", agg, err)
		}
		if string(q.Items[0].Agg) != agg {
			t.Fatalf("%s parsed as %s", agg, q.Items[0].Agg)
		}
	}
}

func TestParseMultipleItems(t *testing.T) {
	q, err := Parse("SELECT MIN(A), MAX(A), COUNT(A) FROM ts")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items) != 3 {
		t.Fatalf("items = %d", len(q.Items))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM ts",
		"SELECT SUM(A FROM ts",
		"SELECT SUM(A) ts",
		"SELECT SUM(A) FROM ts WHERE",
		"SELECT SUM(A) FROM ts WHERE A >",
		"SELECT SUM(A) FROM ts WHERE A ! 5",
		"SELECT SUM(A) FROM ts SW(1)",
		"SELECT SUM(A) FROM ts SW(1, 0)",
		"SELECT SUM(A) FROM ts extra",
		"SELECT SUM(B) FROM ts",             // unknown column
		"SELECT SUM(A) FROM ts WHERE A > x", // non-numeric literal
		"SELECT SUM(A) FROM (SELECT * FROM ts",
		"SELECT * FROM ts ORDER BY A",
		"SELECT * FROM ts. ",
		"SELECT @ FROM ts",
		"SELECT SUM(A) FROM ts WHERE A - 5",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseQualifiedPredicate(t *testing.T) {
	q, err := Parse("SELECT * FROM ts1, ts2 WHERE ts1.A > 10")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Col.Series != "ts1" {
		t.Fatalf("pred = %+v", q.Preds[0])
	}
}

func TestParseDottedSeriesWithColumnTail(t *testing.T) {
	// A trailing .A turns a dotted name into a column reference.
	q, err := Parse("SELECT SUM(root.sg.d1.velocity.A) FROM root.sg.d1.velocity")
	if err != nil {
		t.Fatal(err)
	}
	if q.Items[0].Col.Series != "root.sg.d1.velocity" {
		t.Fatalf("col = %+v", q.Items[0].Col)
	}
}

func TestParseLimit(t *testing.T) {
	q, err := Parse("SELECT * FROM ts WHERE A > 5 LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 10 {
		t.Fatalf("limit = %d", q.Limit)
	}
	q2, err := Parse("SELECT * FROM ts1 UNION ts2 ORDER BY TIME LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Limit != 3 || !q2.OrderByTime {
		t.Fatalf("%+v", q2)
	}
	for _, bad := range []string{"SELECT * FROM ts LIMIT", "SELECT * FROM ts LIMIT 0", "SELECT * FROM ts LIMIT x"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestParseCorr(t *testing.T) {
	q, err := Parse("SELECT CORR(ts1.A, ts2.A) FROM ts1, ts2")
	if err != nil {
		t.Fatal(err)
	}
	if q.Items[0].Agg != AggCorr || q.Items[0].Col2 == nil || q.Items[0].Col2.Series != "ts2" {
		t.Fatalf("%+v", q.Items[0])
	}
	for _, bad := range []string{
		"SELECT CORR(A) FROM ts1, ts2",
		"SELECT SUM(A, A) FROM ts",
		"SELECT CORR(A, ) FROM ts1, ts2",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}
