package sqlparse

import (
	"testing"

	"etsqp/internal/expr"
)

func TestParseQ1SlidingWindowSum(t *testing.T) {
	q, err := Parse("SELECT SUM(A) FROM root.sg.d1.velocity SW(0, 1000);")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items) != 1 || q.Items[0].Agg != AggSum || q.Items[0].Col.Column != "A" {
		t.Fatalf("items = %+v", q.Items)
	}
	if len(q.Series) != 1 || q.Series[0] != "root.sg.d1.velocity" {
		t.Fatalf("series = %v", q.Series)
	}
	if q.Window == nil || q.Window.TMin != 0 || q.Window.DT != 1000 {
		t.Fatalf("window = %+v", q.Window)
	}
}

func TestParseQ2Avg(t *testing.T) {
	q, err := Parse("select avg(a) from ts sw(100, 50)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Items[0].Agg != AggAvg || q.Window.TMin != 100 || q.Window.DT != 50 {
		t.Fatalf("%+v", q)
	}
}

func TestParseQ3Subquery(t *testing.T) {
	q, err := Parse("SELECT SUM(A) FROM (SELECT * FROM ts WHERE A > 5);")
	if err != nil {
		t.Fatal(err)
	}
	if q.Sub == nil || len(q.Series) != 0 {
		t.Fatalf("sub = %+v", q.Sub)
	}
	if !q.Sub.Items[0].Star {
		t.Fatal("subquery must select *")
	}
	if len(q.Sub.Preds) != 1 || q.Sub.Preds[0].Op != expr.OpGT || q.Sub.Preds[0].Value != 5 {
		t.Fatalf("preds = %+v", q.Sub.Preds)
	}
}

func TestParseQ4JoinAdd(t *testing.T) {
	q, err := Parse("SELECT ts1.A+ts2.A FROM ts1, ts2;")
	if err != nil {
		t.Fatal(err)
	}
	if q.Items[0].Add == nil {
		t.Fatal("expected add projection")
	}
	add := *q.Items[0].Add
	if add[0].Series != "ts1" || add[1].Series != "ts2" || add[0].Column != "A" {
		t.Fatalf("add = %+v", add)
	}
	if len(q.Series) != 2 {
		t.Fatalf("series = %v", q.Series)
	}
}

func TestParseQ5Union(t *testing.T) {
	q, err := Parse("SELECT * FROM ts1 UNION ts2 ORDER BY TIME;")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Items[0].Star || q.UnionWith != "ts2" || !q.OrderByTime {
		t.Fatalf("%+v", q)
	}
}

func TestParseQ6NaturalJoin(t *testing.T) {
	q, err := Parse("SELECT * FROM ts1, ts2;")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Series) != 2 || !q.Items[0].Star {
		t.Fatalf("%+v", q)
	}
}

func TestParseTimeRange(t *testing.T) {
	q, err := Parse("SELECT AVG(A) FROM v WHERE TIME >= 180 AND TIME <= 300;")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 2 {
		t.Fatalf("preds = %+v", q.Preds)
	}
	if !q.Preds[0].Col.IsTime() || q.Preds[0].Op != expr.OpGE || q.Preds[0].Value != 180 {
		t.Fatalf("pred 0 = %+v", q.Preds[0])
	}
	if q.Preds[1].Op != expr.OpLE || q.Preds[1].Value != 300 {
		t.Fatalf("pred 1 = %+v", q.Preds[1])
	}
}

func TestParseNegativeLiteral(t *testing.T) {
	q, err := Parse("SELECT SUM(A) FROM ts WHERE A > -42")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Value != -42 {
		t.Fatalf("value = %d", q.Preds[0].Value)
	}
}

func TestParseValueAlias(t *testing.T) {
	q, err := Parse("SELECT MAX(VALUE) FROM ts")
	if err != nil {
		t.Fatal(err)
	}
	if q.Items[0].Col.Column != "A" {
		t.Fatalf("VALUE must alias A: %+v", q.Items[0])
	}
}

func TestParseAllAggs(t *testing.T) {
	for _, agg := range []string{"SUM", "AVG", "COUNT", "MIN", "MAX", "VAR"} {
		q, err := Parse("SELECT " + agg + "(A) FROM ts")
		if err != nil {
			t.Fatalf("%s: %v", agg, err)
		}
		if string(q.Items[0].Agg) != agg {
			t.Fatalf("%s parsed as %s", agg, q.Items[0].Agg)
		}
	}
}

func TestParseMultipleItems(t *testing.T) {
	q, err := Parse("SELECT MIN(A), MAX(A), COUNT(A) FROM ts")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items) != 3 {
		t.Fatalf("items = %d", len(q.Items))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM ts",
		"SELECT SUM(A FROM ts",
		"SELECT SUM(A) ts",
		"SELECT SUM(A) FROM ts WHERE",
		"SELECT SUM(A) FROM ts WHERE A >",
		"SELECT SUM(A) FROM ts WHERE A ! 5",
		"SELECT SUM(A) FROM ts SW(1)",
		"SELECT SUM(A) FROM ts SW(1, 0)",
		"SELECT SUM(A) FROM ts extra",
		"SELECT SUM(B) FROM ts",             // unknown column
		"SELECT SUM(A) FROM ts WHERE A > x", // non-numeric literal
		"SELECT SUM(A) FROM (SELECT * FROM ts",
		"SELECT * FROM ts ORDER BY A",
		"SELECT * FROM ts. ",
		"SELECT @ FROM ts",
		"SELECT SUM(A) FROM ts WHERE A - 5",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseWindowForms(t *testing.T) {
	// SW with explicit slide.
	q, err := Parse("SELECT SUM(A) FROM ts SW(100, 50, 10)")
	if err != nil {
		t.Fatal(err)
	}
	w := q.Window
	if w == nil || !w.HasTMin || w.TMin != 100 || w.DT != 50 || w.Slide != 10 || w.Hop() != 10 {
		t.Fatalf("window = %+v", w)
	}
	// SW slide equal to width canonicalizes to tumbling (Slide = 0).
	q, err = Parse("SELECT SUM(A) FROM ts SW(100, 50, 50)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Window.Slide != 0 || q.Window.Hop() != 50 {
		t.Fatalf("window = %+v", q.Window)
	}
	// GROUP BY TIME: anchor inferred, tumbling by default.
	q, err = Parse("SELECT AVG(A) FROM ts WHERE TIME >= 10 AND TIME <= 99 GROUP BY TIME(25)")
	if err != nil {
		t.Fatal(err)
	}
	w = q.Window
	if w == nil || w.HasTMin || w.TMin != 0 || w.DT != 25 || w.Slide != 0 || w.Hop() != 25 {
		t.Fatalf("window = %+v", w)
	}
	// GROUP BY TIME with hop.
	q, err = Parse("select count(a) from ts group by time(30, 7) limit 4")
	if err != nil {
		t.Fatal(err)
	}
	w = q.Window
	if w == nil || w.HasTMin || w.DT != 30 || w.Slide != 7 || q.Limit != 4 {
		t.Fatalf("%+v", q)
	}
}

func TestParseWindowErrors(t *testing.T) {
	bad := []string{
		"SELECT SUM(A) FROM ts SW(0, -5)",
		"SELECT SUM(A) FROM ts SW(0, 10, 0)",
		"SELECT SUM(A) FROM ts SW(0, 10, -3)",
		"SELECT SUM(A) FROM ts SW(0, 10,)",
		"SELECT SUM(A) FROM ts GROUP BY TIME",
		"SELECT SUM(A) FROM ts GROUP BY TIME()",
		"SELECT SUM(A) FROM ts GROUP BY TIME(0)",
		"SELECT SUM(A) FROM ts GROUP BY TIME(10, 0)",
		"SELECT SUM(A) FROM ts GROUP BY TIME(10, -1)",
		"SELECT SUM(A) FROM ts GROUP TIME(10)",
		"SELECT SUM(A) FROM ts GROUP BY A",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseQualifiedPredicate(t *testing.T) {
	q, err := Parse("SELECT * FROM ts1, ts2 WHERE ts1.A > 10")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Col.Series != "ts1" {
		t.Fatalf("pred = %+v", q.Preds[0])
	}
}

func TestParseDottedSeriesWithColumnTail(t *testing.T) {
	// A trailing .A turns a dotted name into a column reference.
	q, err := Parse("SELECT SUM(root.sg.d1.velocity.A) FROM root.sg.d1.velocity")
	if err != nil {
		t.Fatal(err)
	}
	if q.Items[0].Col.Series != "root.sg.d1.velocity" {
		t.Fatalf("col = %+v", q.Items[0].Col)
	}
}

func TestParseLimit(t *testing.T) {
	q, err := Parse("SELECT * FROM ts WHERE A > 5 LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 10 {
		t.Fatalf("limit = %d", q.Limit)
	}
	q2, err := Parse("SELECT * FROM ts1 UNION ts2 ORDER BY TIME LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Limit != 3 || !q2.OrderByTime {
		t.Fatalf("%+v", q2)
	}
	for _, bad := range []string{"SELECT * FROM ts LIMIT", "SELECT * FROM ts LIMIT 0", "SELECT * FROM ts LIMIT x"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestParseCorr(t *testing.T) {
	q, err := Parse("SELECT CORR(ts1.A, ts2.A) FROM ts1, ts2")
	if err != nil {
		t.Fatal(err)
	}
	if q.Items[0].Agg != AggCorr || q.Items[0].Col2 == nil || q.Items[0].Col2.Series != "ts2" {
		t.Fatalf("%+v", q.Items[0])
	}
	for _, bad := range []string{
		"SELECT CORR(A) FROM ts1, ts2",
		"SELECT SUM(A, A) FROM ts",
		"SELECT CORR(A, ) FROM ts1, ts2",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}
