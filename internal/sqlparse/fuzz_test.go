package sqlparse

import (
	"reflect"
	"testing"
)

// FuzzParse drives arbitrary strings through the SQL parser: malformed
// input must produce errors, never panics.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT SUM(A) FROM ts SW(0, 1000);",
		"SELECT AVG(A) FROM root.sg.d1.v WHERE TIME >= 1 AND TIME <= 2",
		"SELECT * FROM ts1 UNION ts2 ORDER BY TIME",
		"SELECT ts1.A+ts2.A FROM ts1, ts2;",
		"SELECT SUM(A) FROM (SELECT * FROM ts WHERE A > -5)",
		"SELECT FIRST(A), LAST(A) FROM ts",
		"((((",
		"SELECT \x00 FROM",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if q == nil {
			t.Fatal("nil query without error")
		}
		if len(q.Items) == 0 {
			t.Fatal("parsed query with no items")
		}
	})
}

// FuzzParseSQL hardens the raw-string boundary the serving path
// exposes (/query hands request bodies straight to Parse): any input
// must either produce an error or a structurally valid query, never a
// panic, and parsing must be deterministic — the same string yields
// the same AST or the same error on every call. The nopanic analyzer
// proves the handler's call tree free of intentional panics; this
// target chases the unintentional ones (index/slice/nil failures on
// adversarial bytes).
func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		"SELECT SUM(A) FROM ts",
		"SELECT AVG(A), VAR(A) FROM root.sg.d1.v WHERE TIME >= 1 AND A != -7 LIMIT 5",
		"SELECT COUNT(A) FROM ts GROUP BY TIME(100, 25)",
		"SELECT SUM(A) FROM ts SW(0, 1000, 250);",
		"SELECT CORR(ts1.A, ts2.A) FROM ts1, ts2",
		"SELECT * FROM ts1 UNION ts2 ORDER BY TIME LIMIT 3",
		"SELECT MAX(A) FROM (SELECT * FROM ts WHERE A > 100)",
		"select sum(a) from ts where time <= 10",
		"SELECT SUM(A) FROM ts WHERE TIME >= 9223372036854775807",
		"SELECT SUM(A) FROM ts --",
		"\xff\xfe SELECT",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q1, err1 := Parse(src)
		q2, err2 := Parse(src)
		switch {
		case (err1 == nil) != (err2 == nil):
			t.Fatalf("nondeterministic outcome: %v vs %v", err1, err2)
		case err1 != nil:
			if err1.Error() != err2.Error() {
				t.Fatalf("nondeterministic error: %q vs %q", err1, err2)
			}
			return
		}
		if !reflect.DeepEqual(q1, q2) {
			t.Fatalf("nondeterministic AST:\n%#v\n%#v", q1, q2)
		}
		// Structural invariants every accepted query must satisfy —
		// downstream planning assumes them without re-checking.
		if q1 == nil || len(q1.Items) == 0 {
			t.Fatalf("accepted query without items: %#v", q1)
		}
		if len(q1.Series) == 0 && q1.Sub == nil {
			t.Fatalf("accepted query without a FROM source: %#v", q1)
		}
		if len(q1.Series) > 0 && q1.Sub != nil {
			t.Fatalf("accepted query with both series and subquery: %#v", q1)
		}
		if q1.Window != nil && q1.Window.DT <= 0 {
			t.Fatalf("accepted window with non-positive width: %#v", q1.Window)
		}
		if q1.Limit < 0 {
			t.Fatalf("accepted negative LIMIT: %d", q1.Limit)
		}
	})
}
