package sqlparse

import "testing"

// FuzzParse drives arbitrary strings through the SQL parser: malformed
// input must produce errors, never panics.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT SUM(A) FROM ts SW(0, 1000);",
		"SELECT AVG(A) FROM root.sg.d1.v WHERE TIME >= 1 AND TIME <= 2",
		"SELECT * FROM ts1 UNION ts2 ORDER BY TIME",
		"SELECT ts1.A+ts2.A FROM ts1, ts2;",
		"SELECT SUM(A) FROM (SELECT * FROM ts WHERE A > -5)",
		"SELECT FIRST(A), LAST(A) FROM ts",
		"((((",
		"SELECT \x00 FROM",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if q == nil {
			t.Fatal("nil query without error")
		}
		if len(q.Items) == 0 {
			t.Fatal("parsed query with no items")
		}
	})
}
