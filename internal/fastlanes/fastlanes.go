// Package fastlanes implements an FLMM1024-style FastLanes-Delta layout
// (Figure 1(c) of the paper), the state-of-the-art SIMD-friendly baseline.
//
// A block covers exactly BlockSize = 1024 values arranged as Lanes = 32
// interleaved lanes over a virtual 1024-bit register: lane l holds values
// v[l], v[l+32], v[l+64], …  Lane heads (the 32 original values at
// positions 0..31) are stored at full width; the remaining 992 positions
// store intra-lane deltas D[l,j] = v[l+32j] - v[l+32(j-1)], bit-packed
// with one shared width.
//
// Decoding is embarrassingly SIMD-parallel — each step is one 32-lane
// vector addition with no in-register dependency — which is the property
// the paper credits FastLanes for. The costs the paper also observes are
// reproduced structurally: 32 full-width bases per block (lower
// compression), a fixed 1024-point buffering requirement (short series pad
// to a full block), and strided deltas that are ~32x larger than adjacent
// deltas (wider packing, more I/O).
package fastlanes

import (
	"encoding/binary"
	"errors"

	"etsqp/internal/encoding"
)

// Geometry of the FLMM1024 virtual register with 32-bit lanes.
const (
	BlockSize = 1024
	Lanes     = 32
	Steps     = BlockSize / Lanes // 32 values per lane
)

// ErrCorrupt reports a malformed block.
var ErrCorrupt = errors.New("fastlanes: corrupt block")

// Block is one encoded FLMM1024 block.
type Block struct {
	Count  int // real values (<= BlockSize; the rest is padding)
	Width  uint
	Base   int64        // minimum intra-lane delta
	Heads  [Lanes]int64 // lane heads (original values)
	Packed []byte       // (Steps-1)*Lanes packed deltas, step-major
}

// Encode builds blocks covering vals; the final block is padded by
// repeating the last value (padding deltas are zero).
func Encode(vals []int64) []*Block {
	if len(vals) == 0 {
		return nil
	}
	var blocks []*Block
	for off := 0; off < len(vals); off += BlockSize {
		end := off + BlockSize
		count := BlockSize
		if end > len(vals) {
			count = len(vals) - off
			end = len(vals)
		}
		chunk := make([]int64, BlockSize)
		copy(chunk, vals[off:end])
		for i := count; i < BlockSize; i++ {
			chunk[i] = chunk[count-1] // pad with last real value
		}
		blocks = append(blocks, encodeBlock(chunk, count))
	}
	return blocks
}

func encodeBlock(chunk []int64, count int) *Block {
	b := &Block{Count: count}
	for l := 0; l < Lanes; l++ {
		b.Heads[l] = chunk[l]
	}
	// Intra-lane deltas in step-major order: step j holds the deltas of
	// all 32 lanes, matching one vector addition per step at decode time.
	deltas := make([]int64, 0, (Steps-1)*Lanes)
	for j := 1; j < Steps; j++ {
		for l := 0; l < Lanes; l++ {
			deltas = append(deltas, chunk[j*Lanes+l]-chunk[(j-1)*Lanes+l])
		}
	}
	base, width := encoding.BitWidthSigned(deltas)
	b.Base, b.Width = base, width
	packed := make([]uint64, len(deltas))
	for i, d := range deltas {
		packed[i] = uint64(d - base)
	}
	b.Packed = encoding.Pack(packed, width)
	return b
}

// Decode recovers the real (unpadded) values of the block.
func (b *Block) Decode() ([]int64, error) {
	deltas, err := encoding.Unpack(b.Packed, (Steps-1)*Lanes, b.Width)
	if err != nil {
		return nil, err
	}
	out := make([]int64, BlockSize)
	cur := b.Heads
	copy(out[:Lanes], cur[:])
	for j := 1; j < Steps; j++ {
		row := deltas[(j-1)*Lanes : j*Lanes]
		// One vector addition per step: cur[l] += base + delta[l].
		for l := 0; l < Lanes; l++ {
			cur[l] += b.Base + int64(row[l])
		}
		copy(out[j*Lanes:(j+1)*Lanes], cur[:])
	}
	return out[:b.Count], nil
}

// DecodeAll concatenates the decoded values of all blocks.
func DecodeAll(blocks []*Block) ([]int64, error) {
	var out []int64
	for _, b := range blocks {
		vals, err := b.Decode()
		if err != nil {
			return nil, err
		}
		out = append(out, vals...)
	}
	return out, nil
}

const blockMagic = 0xF1

// Marshal serializes the block.
func (b *Block) Marshal() []byte {
	out := make([]byte, 0, 16+Lanes*8+len(b.Packed))
	out = append(out, blockMagic, byte(b.Width))
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], uint32(b.Count))
	out = append(out, tmp[:4]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(b.Base))
	out = append(out, tmp[:]...)
	for _, h := range b.Heads {
		binary.BigEndian.PutUint64(tmp[:], uint64(h))
		out = append(out, tmp[:]...)
	}
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(b.Packed)))
	out = append(out, tmp[:4]...)
	return append(out, b.Packed...)
}

// Unmarshal parses a serialized block.
func Unmarshal(buf []byte) (*Block, error) {
	headLen := 2 + 4 + 8 + Lanes*8 + 4
	if len(buf) < headLen || buf[0] != blockMagic {
		return nil, ErrCorrupt
	}
	b := &Block{Width: uint(buf[1])}
	b.Count = int(binary.BigEndian.Uint32(buf[2:]))
	b.Base = int64(binary.BigEndian.Uint64(buf[6:]))
	for l := 0; l < Lanes; l++ {
		b.Heads[l] = int64(binary.BigEndian.Uint64(buf[14+l*8:]))
	}
	plen := int(binary.BigEndian.Uint32(buf[14+Lanes*8:]))
	if len(buf) < headLen+plen || b.Count < 1 || b.Count > BlockSize {
		return nil, ErrCorrupt
	}
	b.Packed = buf[headLen : headLen+plen]
	return b, nil
}

type codec struct{}

func (codec) Name() string { return "fastlanes" }

func (codec) Semantics() []encoding.Semantics {
	return []encoding.Semantics{encoding.SemanticsDelta, encoding.SemanticsPacking}
}

func (codec) Encode(vals []int64) ([]byte, error) {
	blocks := Encode(vals)
	var out []byte
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], uint32(len(blocks)))
	out = append(out, tmp[:]...)
	for _, b := range blocks {
		raw := b.Marshal()
		binary.BigEndian.PutUint32(tmp[:], uint32(len(raw)))
		out = append(out, tmp[:]...)
		out = append(out, raw...)
	}
	return out, nil
}

func (codec) Decode(block []byte) ([]int64, error) {
	if len(block) < 4 {
		return nil, ErrCorrupt
	}
	n := int(binary.BigEndian.Uint32(block))
	block = block[4:]
	blocks := make([]*Block, 0, n)
	for i := 0; i < n; i++ {
		if len(block) < 4 {
			return nil, ErrCorrupt
		}
		l := int(binary.BigEndian.Uint32(block))
		block = block[4:]
		if len(block) < l {
			return nil, ErrCorrupt
		}
		b, err := Unmarshal(block[:l])
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, b)
		block = block[l:]
	}
	return DecodeAll(blocks)
}

func init() { encoding.Register(codec{}) }

// DecodeRangeBlocks decodes rows [from, to) of a codec container by
// touching only the FLMM1024 blocks that cover the range — the
// block-granular slicing the evaluation uses to distribute FastLanes
// pages across threads fairly (Section VII-C).
func DecodeRangeBlocks(container []byte, from, to int) ([]int64, error) {
	if len(container) < 4 {
		return nil, ErrCorrupt
	}
	n := int(binary.BigEndian.Uint32(container))
	container = container[4:]
	out := make([]int64, 0, to-from)
	rowBase := 0
	for i := 0; i < n && rowBase < to; i++ {
		if len(container) < 4 {
			return nil, ErrCorrupt
		}
		l := int(binary.BigEndian.Uint32(container))
		container = container[4:]
		if len(container) < l {
			return nil, ErrCorrupt
		}
		raw := container[:l]
		container = container[l:]
		// Peek the count without full decode.
		if l < 6 {
			return nil, ErrCorrupt
		}
		count := int(binary.BigEndian.Uint32(raw[2:]))
		blockEnd := rowBase + count
		if blockEnd <= from {
			rowBase = blockEnd
			continue
		}
		b, err := Unmarshal(raw)
		if err != nil {
			return nil, err
		}
		vals, err := b.Decode()
		if err != nil {
			return nil, err
		}
		lo, hi := 0, len(vals)
		if from > rowBase {
			lo = from - rowBase
		}
		if to < blockEnd {
			hi = to - rowBase
		}
		out = append(out, vals[lo:hi]...)
		rowBase = blockEnd
	}
	if len(out) != to-from {
		return nil, ErrCorrupt
	}
	return out, nil
}
