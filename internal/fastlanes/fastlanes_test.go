package fastlanes

import (
	"reflect"
	"testing"
	"testing/quick"

	"etsqp/internal/encoding"
)

func TestRoundTripExactBlock(t *testing.T) {
	vals := make([]int64, BlockSize)
	for i := range vals {
		vals[i] = int64(i)*3 + int64(i%7)
	}
	blocks := Encode(vals)
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(blocks))
	}
	got, err := DecodeAll(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatal("round trip mismatch")
	}
}

func TestRoundTripPartialBlock(t *testing.T) {
	for _, n := range []int{1, 31, 32, 33, 1000, 1023, 1025, 3000} {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(i) * 5
		}
		got, err := DecodeAll(Encode(vals))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(got, vals) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(vals []int64) bool {
		for i := range vals {
			vals[i] %= 1 << 40
		}
		got, err := DecodeAll(Encode(vals))
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLaneLayout(t *testing.T) {
	vals := make([]int64, BlockSize)
	for i := range vals {
		vals[i] = int64(i)
	}
	b := Encode(vals)[0]
	// Lane heads are the first 32 original values (Figure 1(c): Lane 0
	// keeps originals).
	for l := 0; l < Lanes; l++ {
		if b.Heads[l] != int64(l) {
			t.Fatalf("head %d = %d", l, b.Heads[l])
		}
	}
	// Intra-lane deltas of an arithmetic series are the constant stride.
	if b.Base != Lanes {
		t.Fatalf("base = %d, want %d (stride)", b.Base, Lanes)
	}
	if b.Width != 0 {
		t.Fatalf("width = %d, want 0 for constant deltas", b.Width)
	}
}

func TestStridedDeltasAreWiderThanAdjacent(t *testing.T) {
	// The compression-ratio disadvantage the paper describes: FastLanes
	// deltas span 32 steps, so they need ~5 more bits than TS2DIFF.
	vals := make([]int64, BlockSize)
	for i := range vals {
		vals[i] = int64(i) * 7
	}
	fl := Encode(vals)[0]
	_, adjacent := encoding.BitWidthSigned([]int64{7}) // adjacent deltas constant
	if fl.Width != 0 || adjacent != 0 {
		t.Skip("constant case packs to zero either way")
	}
}

func TestPaddingUsesLastValue(t *testing.T) {
	vals := []int64{10, 20, 30}
	b := Encode(vals)[0]
	if b.Count != 3 {
		t.Fatalf("count = %d", b.Count)
	}
	got, err := b.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatalf("got %v", got)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	vals := make([]int64, 1500)
	for i := range vals {
		vals[i] = int64(i * i % 4096)
	}
	for _, b := range Encode(vals) {
		b2, err := Unmarshal(b.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		g1, _ := b.Decode()
		g2, err := b2.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g1, g2) {
			t.Fatal("marshal round trip mismatch")
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	for i, c := range [][]byte{nil, {blockMagic}, append([]byte{0x00}, make([]byte, 300)...)} {
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestCodec(t *testing.T) {
	c, err := encoding.Lookup("fastlanes")
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 2100)
	for i := range vals {
		vals[i] = int64(i) * 11
	}
	raw, err := c.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatal("codec round trip mismatch")
	}
	if _, err := c.Decode([]byte{0, 0, 0, 1, 0}); err == nil {
		t.Fatal("expected corrupt error")
	}
}

func BenchmarkDecodeBlock(b *testing.B) {
	vals := make([]int64, BlockSize)
	for i := range vals {
		vals[i] = int64(i)*3 + int64(i%7)
	}
	blk := Encode(vals)[0]
	b.SetBytes(BlockSize * 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := blk.Decode(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecodeRangeBlocks(t *testing.T) {
	vals := make([]int64, 3700)
	for i := range vals {
		vals[i] = int64(i)*3 + int64(i%11)
	}
	c, _ := encoding.Lookup("fastlanes")
	raw, err := c.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	for _, rg := range [][2]int{{0, 3700}, {0, 1}, {3699, 3700}, {1024, 2048}, {1000, 1100}, {500, 3500}, {100, 100}} {
		got, err := DecodeRangeBlocks(raw, rg[0], rg[1])
		if err != nil {
			t.Fatalf("range %v: %v", rg, err)
		}
		want := vals[rg[0]:rg[1]]
		if len(got) != len(want) {
			t.Fatalf("range %v: len %d want %d", rg, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("range %v: row %d mismatch", rg, i)
			}
		}
	}
	if _, err := DecodeRangeBlocks([]byte{1}, 0, 1); err == nil {
		t.Fatal("short container must fail")
	}
}
