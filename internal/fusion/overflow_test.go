package fusion

import (
	"errors"
	"math"
	"math/big"
	"testing"

	"etsqp/internal/encoding/ts2diff"
)

// fitsInt64 reports whether z fits int64, returning the value when it does.
func fitsInt64(z *big.Int) (int64, bool) {
	if z.IsInt64() {
		return z.Int64(), true
	}
	return 0, false
}

// boundaryNs covers both sides of every interesting threshold:
//   - sqrt(2^63) ≈ 3037000499.98, where naive n*(n±1) wraps,
//   - 2^31, the sumSquaresArithChecked reject guard,
//   - 2^32-1, the largest block Count ts2diff can round-trip,
//   - MaxInt64 itself (n+1 wraps in any naive form).
var boundaryNs = []int64{
	0, 1, 2, 3, 4, 5, 6, 7,
	1<<31 - 1, 1 << 31, 1<<31 + 1,
	3037000499, 3037000500,
	4_000_000_000,
	1<<32 - 1, 1 << 32,
	math.MaxInt64 - 1, math.MaxInt64,
}

func TestSumArithCheckedAgainstBig(t *testing.T) {
	for _, n := range boundaryNs {
		got, ok := sumArithChecked(n)
		// n(n+1)/2 exactly, in big-int arithmetic.
		z := new(big.Int).SetInt64(n)
		z.Mul(z, big.NewInt(0).Add(big.NewInt(n), big.NewInt(1)))
		z.Div(z, big.NewInt(2))
		want, fits := fitsInt64(z)
		if ok != fits {
			t.Errorf("sumArithChecked(%d): ok = %v, want %v (big value %s)", n, ok, fits, z)
			continue
		}
		if ok && got != want {
			t.Errorf("sumArithChecked(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestTriangleCheckedAgainstBig(t *testing.T) {
	for _, n := range boundaryNs {
		got, ok := triangleChecked(n)
		z := new(big.Int).SetInt64(n)
		z.Mul(z, big.NewInt(0).Sub(big.NewInt(n), big.NewInt(1)))
		z.Div(z, big.NewInt(2))
		want, fits := fitsInt64(z)
		if ok != fits {
			t.Errorf("triangleChecked(%d): ok = %v, want %v (big value %s)", n, ok, fits, z)
			continue
		}
		if ok && got != want {
			t.Errorf("triangleChecked(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSumSquaresArithCheckedAgainstBig(t *testing.T) {
	for _, n := range boundaryNs {
		got, ok := sumSquaresArithChecked(n)
		// n(n+1)(2n+1)/6 exactly.
		z := new(big.Int).SetInt64(n)
		z.Mul(z, big.NewInt(0).Add(big.NewInt(n), big.NewInt(1)))
		z.Mul(z, big.NewInt(0).Add(big.NewInt(0).Mul(big.NewInt(2), big.NewInt(n)), big.NewInt(1)))
		z.Div(z, big.NewInt(6))
		want, fits := fitsInt64(z)
		if ok && got != want {
			t.Errorf("sumSquaresArithChecked(%d) = %d, want %d", n, got, want)
		}
		// The helper may reject early (n >= 2^31 guard) even when the true
		// value would fit — conservative is allowed — but it must never
		// accept a value that does not fit, and below the guard it must be
		// exact.
		if ok && !fits {
			t.Errorf("sumSquaresArithChecked(%d): accepted a value that overflows int64 (big value %s)", n, z)
		}
		if !ok && fits && n < 1<<31 {
			t.Errorf("sumSquaresArithChecked(%d): rejected a representable value %s", n, z)
		}
	}
}

func TestWindowArithCheckedAgainstBig(t *testing.T) {
	windows := [][2]int64{
		{0, 0}, {0, 1}, {5, 4}, {0, 4_000_000_000},
		{3_999_999_000, 4_000_000_000},
		{0, 1<<32 - 1}, {1 << 31, 1 << 32},
		{0, 1<<62 - 1}, {1<<62 - 10, 1<<62 - 1},
		{-1, 5}, {0, 1 << 62}, {1, math.MaxInt64},
	}
	for _, w := range windows {
		j0, j1 := w[0], w[1]
		got, ok := windowArithChecked(j0, j1)
		if j1 < j0 {
			if !ok || got != 0 {
				t.Errorf("windowArithChecked(%d, %d) = %d, %v; want 0, true for empty window", j0, j1, got, ok)
			}
			continue
		}
		if j0 < 0 || j1 >= 1<<62 {
			if ok {
				t.Errorf("windowArithChecked(%d, %d): accepted outside the supported domain", j0, j1)
			}
			continue
		}
		// Σ_{j0..j1} j = (j0+j1)(j1-j0+1)/2 exactly.
		z := new(big.Int).SetInt64(j0)
		z.Add(z, big.NewInt(j1))
		z.Mul(z, big.NewInt(j1-j0+1))
		z.Div(z, big.NewInt(2))
		want, fits := fitsInt64(z)
		if ok != fits {
			t.Errorf("windowArithChecked(%d, %d): ok = %v, want %v (big value %s)", j0, j1, ok, fits, z)
			continue
		}
		if ok && got != want {
			t.Errorf("windowArithChecked(%d, %d) = %d, want %d", j0, j1, got, want)
		}
	}
}

// TestSumBlockRampBoundary is the regression for the silent int64 wrap the
// old ramp form had: minBase·n·(n-1)/2 computed as n*(n-1)/2 wraps for
// n > 3037000499 even when the true triangle number fits int64. Width 0
// keeps the packed-prefix term empty, so the test isolates the ramp and
// runs in microseconds despite the four-billion-row Count.
func TestSumBlockRampBoundary(t *testing.T) {
	const n = 4_000_000_000
	const tri = 7_999_999_998_000_000_000 // T(4e9) = n(n-1)/2, fits int64
	b := &ts2diff.Block{
		Order:   ts2diff.Order1,
		Count:   n,
		First:   0,
		MinBase: 1,
		Width:   0,
	}
	got, err := SumBlock(b)
	if err != nil {
		t.Fatalf("SumBlock(ramp n=%d): %v", n, err)
	}
	if got != tri {
		t.Errorf("SumBlock(ramp n=%d) = %d, want %d", n, got, tri)
	}
	// The naive form computed n*(n-1) first, which wraps past int64 and
	// came out negative; make the regression explicit.
	nn := int64(n)
	if naive := nn * (nn - 1) / 2; naive >= 0 {
		t.Fatalf("test premise broken: naive n*(n-1)/2 = %d no longer wraps", naive)
	}

	// MinBase 3 pushes the ramp past MaxInt64: the fused path must report
	// ErrOverflow, not a wrapped value.
	b.MinBase = 3
	if _, err := SumBlock(b); !errors.Is(err, ErrOverflow) {
		t.Errorf("SumBlock(ramp n=%d, minBase=3): err = %v, want ErrOverflow", n, err)
	}
}

// TestSumBlockOrder2RampOverflow drives the order-2 d1·n(n-1)/2 ramp past
// int64. The overflow is detected in the closed-form prefix before the
// packed-delta loop runs, so the four-billion-row block is still fast.
func TestSumBlockOrder2RampOverflow(t *testing.T) {
	b := &ts2diff.Block{
		Order:      ts2diff.Order2,
		Count:      4_000_000_000,
		First:      0,
		FirstDelta: 2, // 2 · T(4e9) ≈ 1.6e19 > MaxInt64
		Width:      0,
	}
	if _, err := SumBlockOrder2(b); !errors.Is(err, ErrOverflow) {
		t.Errorf("SumBlockOrder2(overflowing ramp): err = %v, want ErrOverflow", err)
	}
	// A small block with the same shape (width 0 ⇒ every second-order
	// delta equals MinBase = 0 ⇒ a pure linear ramp) checks the closed
	// form stays exact: Σ_{i<n} (first + i·d1) = n·first + d1·T(n-1).
	small := &ts2diff.Block{
		Order:      ts2diff.Order2,
		Count:      100,
		First:      -7,
		FirstDelta: 5,
		Width:      0,
	}
	got, err := SumBlockOrder2(small)
	if err != nil {
		t.Fatalf("SumBlockOrder2(small ramp): %v", err)
	}
	want := int64(small.Count)*small.First + small.FirstDelta*int64(small.Count)*(int64(small.Count)-1)/2
	if got != want {
		t.Errorf("SumBlockOrder2(small ramp) = %d, want %d", got, want)
	}
}
