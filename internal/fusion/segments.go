package fusion

import (
	"errors"

	"etsqp/internal/bitio"
	"etsqp/internal/encoding"
	"etsqp/internal/encoding/ts2diff"
	"etsqp/internal/pipeline"
)

// Segment kernels: sliding windows that overlap (slide < width) share
// rows, so re-running a range kernel per window re-reads the same
// encoded data O(windows) times. Instead the window boundaries cut the
// row range into disjoint segments, each kernel pass fills *all* segment
// sums at once, and every window is the sum of a contiguous segment run
// — the incremental-sharing evaluation of Section VI's G_sw on top of
// the Proposition 3 closed forms.

// validateCuts checks that cuts is a strictly increasing partition with
// one more entry than sums.
func validateCuts(cuts []int, nsums int) error {
	if len(cuts) != nsums+1 {
		return errors.New("fusion: cuts must have len(sums)+1 entries")
	}
	if len(cuts) > 0 && cuts[0] < 0 {
		return errors.New("fusion: negative cut")
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			return errors.New("fusion: cuts must be strictly increasing")
		}
	}
	return nil
}

// SumRangeSegments fills sums[i] with Σ values over rows
// [cuts[i], cuts[i+1]) of the flattened Delta-Repeat series, walking the
// runs exactly once. A run spanning several segments contributes one
// closed-form partial (Proposition 3) per overlapped segment; segments
// beyond the series' row count stay partial or zero.
//
//etsqp:hotpath
//etsqp:rangecheck
func SumRangeSegments(first int64, pairs []encoding.DeltaRun, cuts []int, sums []int64) error {
	if err := validateCuts(cuts, len(sums)); err != nil {
		return err
	}
	for i := range sums {
		sums[i] = 0
	}
	if len(sums) == 0 {
		return nil
	}
	// Row 0 holds `first`; run p then covers rows idx+1 .. idx+Count with
	// values cur + jΔ (j = row - idx).
	if cuts[0] == 0 {
		sums[0] = first
	}
	last := cuts[len(cuts)-1]
	cur := first
	idx := 0
	s := 0
	for _, p := range pairs {
		runEnd := idx + p.Count
		if idx+1 >= last {
			break
		}
		for s < len(sums) && cuts[s+1] <= idx+1 {
			s++
		}
		for t := s; t < len(sums) && cuts[t] <= runEnd; t++ {
			lo := cuts[t]
			if lo < idx+1 {
				lo = idx + 1
			}
			hi := cuts[t+1] - 1 // inclusive last row of the segment
			if hi > runEnd {
				hi = runEnd
			}
			if lo > hi {
				continue
			}
			j0 := int64(lo - idx)
			j1 := int64(hi - idx)
			base, ok1 := mulChecked(cur, int64(hi-lo+1))
			win, okW := windowArithChecked(j0, j1)
			inc, ok2 := mulChecked(p.Delta, win)
			runSum, ok3 := addChecked(base, inc)
			var ok4 bool
			sums[t], ok4 = addChecked(sums[t], runSum)
			if !(ok1 && okW && ok2 && ok3 && ok4) {
				return ErrOverflow
			}
		}
		step, okS := mulChecked(p.Delta, int64(p.Count))
		var okC bool
		cur, okC = addChecked(cur, step)
		if !(okS && okC) {
			return ErrOverflow
		}
		idx = runEnd
	}
	return nil
}

// SumBlockSegments fills sums[i] with Σ values over rows
// [cuts[i], cuts[i+1]) of a TS2DIFF block, streaming the packed deltas
// once through a fixed-size stack chunk (the SumBlockOrder2 idiom) for
// both orders — one decode pass regardless of how many windows cut the
// block. Cuts past b.Count contribute what exists.
//
//etsqp:hotpath
//etsqp:rangecheck
func SumBlockSegments(b *ts2diff.Block, cuts []int, sums []int64) error {
	if err := validateCuts(cuts, len(sums)); err != nil {
		return err
	}
	for i := range sums {
		sums[i] = 0
	}
	if len(sums) == 0 || b.Count == 0 {
		return nil
	}
	to := cuts[len(cuts)-1]
	if to > b.Count {
		to = b.Count
	}
	if to <= cuts[0] {
		return nil
	}
	adder := segAdder{cuts: cuts, sums: sums}
	cur := b.First
	if !adder.add(0, cur) {
		return ErrOverflow
	}
	delta := b.FirstDelta // order-2 running first difference
	m := b.NumPacked()
	need := to - 1
	if need > m {
		need = m
	}
	// Chunk boundaries stay multiples of the plan's BlockElems so each
	// chunk starts byte-aligned in the packed stream.
	var chunk [8 * pipeline.MaxNv]int64
	chunkE := len(chunk)
	if b.Width > 0 && b.Width <= pipeline.MaxNarrowWidth {
		p, err := pipeline.PlanFor(b.Width)
		if err != nil {
			return err
		}
		chunkE = len(chunk) / p.BlockElems * p.BlockElems
	}
	row := 1
	for e := 0; e < need; e += chunkE {
		cnt := need - e
		if cnt > chunkE {
			cnt = chunkE
		}
		off := e * int(b.Width) / 8
		if off > len(b.Packed) {
			return bitio.ErrShortBuffer
		}
		if err := pipeline.DecodeDeltasInto(chunk[:cnt], b.Packed[off:], cnt, b.Width, b.MinBase); err != nil {
			return err
		}
		for _, d := range chunk[:cnt] {
			var okC bool
			if b.Order == ts2diff.Order1 {
				cur, okC = addChecked(cur, d)
			} else {
				cur, okC = addChecked(cur, delta)
				var okD bool
				delta, okD = addChecked(delta, d)
				okC = okC && okD
			}
			if !okC {
				return ErrOverflow
			}
			if !adder.add(row, cur) {
				return ErrOverflow
			}
			row++
		}
	}
	// Order-2 blocks have n-2 packed deltas for n-1 steps: the final rows
	// advance by the last accumulated first difference.
	for ; row < to; row++ {
		var okC bool
		cur, okC = addChecked(cur, delta)
		if !okC {
			return ErrOverflow
		}
		if !adder.add(row, cur) {
			return ErrOverflow
		}
	}
	return nil
}

// segAdder folds row values into the segment their row index falls in,
// advancing the current segment monotonically as rows stream in order.
type segAdder struct {
	cuts []int
	sums []int64
	s    int
}

// add folds v at row into its segment; false reports overflow.
//
//etsqp:hotpath
//etsqp:rangecheck
func (a *segAdder) add(row int, v int64) bool {
	for a.s < len(a.sums) && a.cuts[a.s+1] <= row {
		a.s++
	}
	if a.s < len(a.sums) && a.cuts[a.s] <= row {
		var ok bool
		a.sums[a.s], ok = addChecked(a.sums[a.s], v)
		return ok
	}
	return true
}
