package fusion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"etsqp/internal/encoding"
	"etsqp/internal/encoding/ts2diff"
)

// refSum decodes and sums — the unfused reference.
func refSum(first int64, pairs []encoding.DeltaRun) int64 {
	var s int64
	for _, v := range encoding.DeltaRLEDecode(first, pairs) {
		s += v
	}
	return s
}

func randomPairsSeries(seed int64, maxRun int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	n := rng.Intn(500) + 1
	vals := make([]int64, n)
	cur := rng.Int63n(1000)
	for i := 0; i < n; {
		d := rng.Int63n(41) - 20
		run := rng.Intn(maxRun) + 1
		for k := 0; k < run && i < n; k++ {
			vals[i] = cur
			cur += d
			i++
		}
	}
	return vals
}

func TestSumMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		vals := randomPairsSeries(seed, 30)
		first, pairs := encoding.DeltaRLEEncode(vals)
		got, err := Sum(first, pairs)
		if err != nil {
			t.Fatal(err)
		}
		if want := refSum(first, pairs); got != want {
			t.Fatalf("seed %d: got %d want %d", seed, got, want)
		}
	}
}

func TestSumLongRunIsO1(t *testing.T) {
	// A billion-point run costs one pair — the fused sum must still be
	// exact (closed form, no iteration).
	pairs := []encoding.DeltaRun{{Delta: 3, Count: 1_000_000_000}}
	got, err := Sum(10, pairs)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(1_000_000_000)
	want := 10*(n+1) + 3*n*(n+1)/2
	if got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestSumOverflow(t *testing.T) {
	pairs := []encoding.DeltaRun{{Delta: math.MaxInt64 / 2, Count: 1000}}
	if _, err := Sum(math.MaxInt64/2, pairs); err != ErrOverflow {
		t.Fatalf("got %v want ErrOverflow", err)
	}
}

func TestSumRange(t *testing.T) {
	vals := randomPairsSeries(42, 10)
	first, pairs := encoding.DeltaRLEEncode(vals)
	for from := 0; from <= len(vals); from += 7 {
		for to := from; to <= len(vals); to += 5 {
			got, err := SumRange(first, pairs, from, to)
			if err != nil {
				t.Fatal(err)
			}
			var want int64
			for _, v := range vals[from:to] {
				want += v
			}
			if got != want {
				t.Fatalf("[%d,%d): got %d want %d", from, to, got, want)
			}
		}
	}
}

func TestCountAvgMinMax(t *testing.T) {
	vals := []int64{10, 15, 20, 25, 25, 25, 23, 21, 30}
	first, pairs := encoding.DeltaRLEEncode(vals)
	if got := Count(pairs); got != len(vals) {
		t.Fatalf("Count = %d", got)
	}
	avg, err := Avg(first, pairs)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, v := range vals {
		sum += v
	}
	if want := float64(sum) / float64(len(vals)); avg != want {
		t.Fatalf("Avg = %f want %f", avg, want)
	}
	minV, maxV := MinMax(first, pairs)
	if minV != 10 || maxV != 30 {
		t.Fatalf("MinMax = %d,%d", minV, maxV)
	}
}

func TestMinMaxInteriorExtreme(t *testing.T) {
	// Peak occurs at a run boundary in the middle.
	vals := []int64{0, 10, 20, 10, 0, -10}
	first, pairs := encoding.DeltaRLEEncode(vals)
	minV, maxV := MinMax(first, pairs)
	if minV != -10 || maxV != 20 {
		t.Fatalf("MinMax = %d,%d", minV, maxV)
	}
}

func TestSumSquaresAndVariance(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		vals := randomPairsSeries(seed, 20)
		first, pairs := encoding.DeltaRLEEncode(vals)
		got, err := SumSquares(first, pairs)
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		for _, v := range vals {
			want += v * v
		}
		if got != want {
			t.Fatalf("seed %d: SumSquares got %d want %d", seed, got, want)
		}
		v, err := Variance(first, pairs)
		if err != nil {
			t.Fatal(err)
		}
		mean := 0.0
		for _, x := range vals {
			mean += float64(x)
		}
		mean /= float64(len(vals))
		wantVar := 0.0
		for _, x := range vals {
			wantVar += (float64(x) - mean) * (float64(x) - mean)
		}
		wantVar /= float64(len(vals))
		if math.Abs(v-wantVar) > 1e-6*(1+wantVar) {
			t.Fatalf("seed %d: Variance got %f want %f", seed, v, wantVar)
		}
	}
}

func TestDotProduct(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		a := randomPairsSeries(seed, 15)
		b := randomPairsSeries(seed+1000, 7)
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		aF, aP := encoding.DeltaRLEEncode(a)
		bF, bP := encoding.DeltaRLEEncode(b)
		got, err := DotProduct(aF, aP, bF, bP)
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		for i := range a {
			want += a[i] * b[i]
		}
		if got != want {
			t.Fatalf("seed %d: got %d want %d", seed, got, want)
		}
	}
}

func TestDotProductLengthMismatch(t *testing.T) {
	if _, err := DotProduct(0, []encoding.DeltaRun{{Delta: 1, Count: 2}}, 0, nil); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestCorrelation(t *testing.T) {
	// Perfectly correlated series → 1; anti-correlated → -1.
	a := []int64{0, 2, 4, 6, 8, 8, 8, 10}
	bPos := make([]int64, len(a))
	bNeg := make([]int64, len(a))
	for i, v := range a {
		bPos[i] = 3*v + 7
		bNeg[i] = -2*v + 5
	}
	aF, aP := encoding.DeltaRLEEncode(a)
	pF, pP := encoding.DeltaRLEEncode(bPos)
	nF, nP := encoding.DeltaRLEEncode(bNeg)
	if r, err := Correlation(aF, aP, pF, pP); err != nil || math.Abs(r-1) > 1e-9 {
		t.Fatalf("corr = %f, %v", r, err)
	}
	if r, err := Correlation(aF, aP, nF, nP); err != nil || math.Abs(r+1) > 1e-9 {
		t.Fatalf("anticorr = %f, %v", r, err)
	}
	// Zero variance must error, not divide by zero.
	cF, cP := encoding.DeltaRLEEncode([]int64{5, 5, 5, 5, 5, 5, 5, 5})
	if _, err := Correlation(aF, aP, cF, cP); err == nil {
		t.Fatal("zero variance must fail")
	}
}

func TestSumBlockMatchesDecode(t *testing.T) {
	f := func(raw []int64) bool {
		for i := range raw {
			raw[i] %= 1 << 30
		}
		b, err := ts2diff.Encode(raw, ts2diff.Order1)
		if err != nil {
			return false
		}
		got, err := SumBlock(b)
		if err != nil {
			return false
		}
		vals, _ := b.Decode()
		var want int64
		for _, v := range vals {
			want += v
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSumBlockLargeVectorPath(t *testing.T) {
	// Enough values that whole plan blocks are exercised.
	rng := rand.New(rand.NewSource(9))
	vals := make([]int64, 10000)
	cur := int64(0)
	for i := range vals {
		vals[i] = cur
		cur += rng.Int63n(1000)
	}
	b, _ := ts2diff.Encode(vals, ts2diff.Order1)
	got, err := SumBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, v := range vals {
		want += v
	}
	if got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestSumBlockRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, 2000)
	cur := int64(100)
	for i := range vals {
		vals[i] = cur
		cur += rng.Int63n(50) - 10
	}
	for _, order := range []ts2diff.Order{ts2diff.Order1, ts2diff.Order2} {
		b, err := ts2diff.Encode(vals, order)
		if err != nil {
			t.Fatal(err)
		}
		for _, rg := range [][2]int{{0, 2000}, {0, 1}, {1999, 2000}, {500, 1500}, {7, 8}, {100, 100}} {
			got, err := SumBlockRange(b, rg[0], rg[1])
			if err != nil {
				t.Fatalf("order %d range %v: %v", order, rg, err)
			}
			var want int64
			for _, v := range vals[rg[0]:rg[1]] {
				want += v
			}
			if got != want {
				t.Fatalf("order %d range %v: got %d want %d", order, rg, got, want)
			}
		}
	}
}

func TestSumBlockOrder2Delegates(t *testing.T) {
	ts := make([]int64, 500)
	for i := range ts {
		ts[i] = int64(i) * 1000
	}
	b, _ := ts2diff.Encode(ts, ts2diff.Order2)
	got, err := SumBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, v := range ts {
		want += v
	}
	if got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func BenchmarkFusedSumVsDecode(b *testing.B) {
	vals := make([]int64, 100000)
	cur := int64(0)
	for i := range vals {
		vals[i] = cur
		cur += int64(i%7) * 3
	}
	first, pairs := encoding.DeltaRLEEncode(vals)
	b.Run("fused", func(b *testing.B) {
		b.SetBytes(int64(len(vals) * 8))
		for i := 0; i < b.N; i++ {
			if _, err := Sum(first, pairs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-then-sum", func(b *testing.B) {
		b.SetBytes(int64(len(vals) * 8))
		for i := 0; i < b.N; i++ {
			var s int64
			for _, v := range encoding.DeltaRLEDecode(first, pairs) {
				s += v
			}
			_ = s
		}
	})
}

func TestSumBlockOrder2ClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(2000) + 1
		ts := make([]int64, n)
		cur := int64(rng.Intn(100000))
		interval := int64(rng.Intn(100) + 1)
		for i := range ts {
			ts[i] = cur
			interval += rng.Int63n(9) - 4
			cur += interval
		}
		b, err := ts2diff.Encode(ts, ts2diff.Order2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SumBlockOrder2(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var want int64
		for _, v := range ts {
			want += v
		}
		if got != want {
			t.Fatalf("trial %d (n=%d): got %d want %d", trial, n, got, want)
		}
	}
	// Misuse guard.
	b1, _ := ts2diff.Encode([]int64{1, 2, 3}, ts2diff.Order1)
	if _, err := SumBlockOrder2(b1); err == nil {
		t.Fatal("order-1 input must be rejected")
	}
}
