// Overflow-parity oracle: the fused closed forms and the checked
// decode-then-aggregate route must agree on overflow detection. The
// contract is one-directional where it has to be — fusion's per-run
// polynomials (n·a², Δ²·Σi², …) can leave int64 on intermediates even
// when every flattened value and running sum fits, so the fused path is
// allowed to be conservative (return ErrOverflow) — but it must NEVER
// return a silently wrapped value:
//
//  1. fused success ⇒ the result equals the exact big-int value
//     (which therefore fits int64);
//  2. checked-scalar no-overflow ⇒ the scalar fold equals the exact
//     big-int value;
//  3. both succeed ⇒ bit-for-bit agreement.
package fusion_test

import (
	"encoding/binary"
	"errors"
	"math"
	"math/big"
	"testing"

	"etsqp/internal/baseline"
	"etsqp/internal/encoding"
	"etsqp/internal/fusion"
)

// bigAggregate folds Σv and Σv² exactly in big-int arithmetic — the
// ground truth both integer routes are compared against.
func bigAggregate(first int64, pairs []encoding.DeltaRun) (sum, sumSq *big.Int) {
	cur := big.NewInt(first)
	sum = big.NewInt(first)
	sumSq = new(big.Int).Mul(cur, cur)
	d := new(big.Int)
	sq := new(big.Int)
	for _, p := range pairs {
		d.SetInt64(p.Delta)
		for k := 0; k < p.Count; k++ {
			cur.Add(cur, d)
			sum.Add(sum, cur)
			sq.Mul(cur, cur)
			sumSq.Add(sumSq, sq)
		}
	}
	return sum, sumSq
}

func assertOverflowParity(t *testing.T, name string, first int64, pairs []encoding.DeltaRun) {
	t.Helper()
	bigSum, bigSq := bigAggregate(first, pairs)
	scalar, scOv := baseline.ScalarAggregateDeltaRunsChecked(first, pairs)

	fsum, errSum := fusion.Sum(first, pairs)
	fsq, errSq := fusion.SumSquares(first, pairs)
	if errSum != nil && !errors.Is(errSum, fusion.ErrOverflow) {
		t.Fatalf("%s: Sum returned unexpected error %v", name, errSum)
	}
	if errSq != nil && !errors.Is(errSq, fusion.ErrOverflow) {
		t.Fatalf("%s: SumSquares returned unexpected error %v", name, errSq)
	}

	// (1) Fused success must be exact — never a wrapped value.
	if errSum == nil {
		if !bigSum.IsInt64() || fsum != bigSum.Int64() {
			t.Errorf("%s: fused Sum = %d, exact value %s", name, fsum, bigSum)
		}
	}
	if errSq == nil {
		if !bigSq.IsInt64() || fsq != bigSq.Int64() {
			t.Errorf("%s: fused SumSquares = %d, exact value %s", name, fsq, bigSq)
		}
	}

	// (2) The checked scalar fold is exact whenever it reports no overflow.
	if !scOv {
		if !bigSum.IsInt64() || scalar.Sum != bigSum.Int64() {
			t.Errorf("%s: checked scalar Sum = %d, exact value %s", name, scalar.Sum, bigSum)
		}
		if !bigSq.IsInt64() || scalar.SumSquares != bigSq.Int64() {
			t.Errorf("%s: checked scalar SumSquares = %d, exact value %s", name, scalar.SumSquares, bigSq)
		}
		// (3) Both routes in range ⇒ bitwise agreement.
		if errSum == nil && fsum != scalar.Sum {
			t.Errorf("%s: fused Sum %d != scalar Sum %d", name, fsum, scalar.Sum)
		}
		if errSq == nil && fsq != scalar.SumSquares {
			t.Errorf("%s: fused SumSquares %d != scalar SumSquares %d", name, fsq, scalar.SumSquares)
		}
	}

	// The exact value leaving int64 forces overflow reports on BOTH routes:
	// conservative disagreement is allowed only in the fits-int64 direction.
	if !bigSum.IsInt64() {
		if errSum == nil {
			t.Errorf("%s: Sum exact value %s exceeds int64 but fused path succeeded", name, bigSum)
		}
		if !scOv {
			t.Errorf("%s: Sum exact value %s exceeds int64 but checked scalar saw no overflow", name, bigSum)
		}
	}
	if !bigSq.IsInt64() {
		if errSq == nil {
			t.Errorf("%s: SumSquares exact value %s exceeds int64 but fused path succeeded", name, bigSq)
		}
		if !scOv {
			t.Errorf("%s: SumSquares exact value %s exceeds int64 but checked scalar saw no overflow", name, bigSq)
		}
	}
}

func TestOverflowParityExtremePages(t *testing.T) {
	cases := []struct {
		name  string
		first int64
		pairs []encoding.DeltaRun
	}{
		{"max-first-step-up", math.MaxInt64, []encoding.DeltaRun{{Delta: 1, Count: 1}}},
		{"min-first-step-down", math.MinInt64, []encoding.DeltaRun{{Delta: -1, Count: 3}}},
		{"half-max-doubled", math.MaxInt64 / 2, []encoding.DeltaRun{{Delta: math.MaxInt64 / 2, Count: 2}}},
		{"sum-fold-wraps", math.MaxInt64 - 10, []encoding.DeltaRun{{Delta: 0, Count: 5}}},
		{"squares-wrap-small-values", 3_100_000_000, []encoding.DeltaRun{{Delta: 0, Count: 2}}},
		{"squares-accumulate-past-max", 3_000_000_000, []encoding.DeltaRun{{Delta: 0, Count: 3}}},
		{"huge-delta-one-step", -3_000_000_000, []encoding.DeltaRun{{Delta: 6_000_000_000, Count: 1}}},
		{"cancelling-walk", math.MaxInt64 / 2, []encoding.DeltaRun{
			{Delta: -math.MaxInt64 / 2, Count: 1}, {Delta: math.MaxInt64 / 2, Count: 1}, {Delta: -math.MaxInt64 / 2, Count: 1},
		}},
		{"long-ramp-wraps", 0, []encoding.DeltaRun{{Delta: 1 << 40, Count: 10_000}}},
		{"moderate-in-range", 1 << 30, []encoding.DeltaRun{{Delta: 1 << 20, Count: 100}, {Delta: -(1 << 19), Count: 200}}},
		{"zero-page", 0, []encoding.DeltaRun{{Delta: 0, Count: 64}}},
	}
	for _, c := range cases {
		assertOverflowParity(t, c.name, c.first, c.pairs)
	}

	// Moderate pages must not trip conservative rejection: the fused path
	// has to succeed, not merely be sound, for realistic IoT magnitudes
	// (sensor readings around 2^20 keep Σv² near 2^47, far inside int64).
	moderate := []encoding.DeltaRun{{Delta: 1 << 10, Count: 100}, {Delta: -(1 << 9), Count: 100}}
	sum, err := fusion.Sum(1<<20, moderate)
	if err != nil {
		t.Fatalf("moderate page: fused Sum rejected: %v", err)
	}
	want := baseline.ScalarAggregateDeltaRuns(1<<20, moderate)
	if sum != want.Sum {
		t.Fatalf("moderate page: fused Sum = %d, oracle %d", sum, want.Sum)
	}
	sq, err := fusion.SumSquares(1<<20, moderate)
	if err != nil {
		t.Fatalf("moderate page: fused SumSquares rejected: %v", err)
	}
	if sq != want.SumSquares {
		t.Fatalf("moderate page: fused SumSquares = %d, oracle %d", sq, want.SumSquares)
	}
}

// parityRuns decodes the fuzz input shape shared with etsqp-gencorpus:
// 9 bytes per run — a big-endian uint64 delta followed by a count byte.
// Deltas keep their full 64-bit range so the corpus reaches the extreme
// magnitudes the clamped random-walk differential targets never produce;
// counts stay small so the big-int oracle fold stays fast.
func parityRuns(raw []byte) []encoding.DeltaRun {
	const maxRuns = 64
	var pairs []encoding.DeltaRun
	for len(raw) >= 9 && len(pairs) < maxRuns {
		d := int64(binary.BigEndian.Uint64(raw[:8]))
		cnt := 1 + int(raw[8])%32
		pairs = append(pairs, encoding.DeltaRun{Delta: d, Count: cnt})
		raw = raw[9:]
	}
	return pairs
}

func FuzzOverflowParity(f *testing.F) {
	seed := func(first int64, pairs []encoding.DeltaRun) {
		raw := make([]byte, 0, len(pairs)*9)
		for _, p := range pairs {
			var b [9]byte
			binary.BigEndian.PutUint64(b[:8], uint64(p.Delta))
			b[8] = byte(p.Count - 1)
			raw = append(raw, b[:]...)
		}
		f.Add(first, raw)
	}
	seed(math.MaxInt64, []encoding.DeltaRun{{Delta: 1, Count: 1}})
	seed(math.MaxInt64/2, []encoding.DeltaRun{{Delta: math.MaxInt64 / 2, Count: 2}})
	seed(-3_000_000_000, []encoding.DeltaRun{{Delta: 6_000_000_000, Count: 1}})
	seed(1<<30, []encoding.DeltaRun{{Delta: 1 << 20, Count: 31}, {Delta: -(1 << 19), Count: 7}})
	seed(0, []encoding.DeltaRun{{Delta: 1 << 40, Count: 32}})

	f.Fuzz(func(t *testing.T, first int64, raw []byte) {
		assertOverflowParity(t, "fuzz", first, parityRuns(raw))
	})
}
