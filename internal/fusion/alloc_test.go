package fusion

import (
	"fmt"
	"testing"

	"etsqp/internal/encoding"
	"etsqp/internal/encoding/ts2diff"
)

// TestFusedKernelAllocs is the runtime cross-check of the hotpathalloc
// analyzer for the fusion package: once the plan cache is warm, the
// fused aggregation kernels must not allocate. SumBlock covers both
// orders — the order-2 path streams second-order deltas through a stack
// chunk rather than materializing them.
func TestFusedKernelAllocs(t *testing.T) {
	for _, tc := range []struct {
		order ts2diff.Order
		width uint
	}{
		{ts2diff.Order1, 4},
		{ts2diff.Order1, 10},
		{ts2diff.Order1, 30},
		{ts2diff.Order2, 10},
	} {
		vals := allocSeries(4096, tc.width, tc.order)
		blk, err := ts2diff.Encode(vals, tc.order)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := SumBlock(blk); err != nil { // warm plan cache
			t.Fatal(err)
		}
		t.Run(fmt.Sprintf("order=%d/width=%d", tc.order, tc.width), func(t *testing.T) {
			if n := testing.AllocsPerRun(100, func() {
				if _, err := SumBlock(blk); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Fatalf("SumBlock allocates %.1f/op", n)
			}
		})
	}
}

// TestPairKernelAllocs checks the DeltaRun-pair aggregates.
func TestPairKernelAllocs(t *testing.T) {
	vals := randomPairsSeries(7, 30)
	first, pairs := encoding.DeltaRLEEncode(vals)
	if n := testing.AllocsPerRun(100, func() {
		if _, err := Sum(first, pairs); err != nil {
			t.Fatal(err)
		}
		if _, err := SumRange(first, pairs, 3, len(vals)-3); err != nil {
			t.Fatal(err)
		}
		_ = Count(pairs)
		_, _ = MinMax(first, pairs)
		if _, err := SumSquares(first, pairs); err != nil {
			t.Fatal(err)
		}
		if _, err := DotProduct(first, pairs, first, pairs); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("pair kernels allocate %.1f/op", n)
	}
}

// allocSeries builds a series whose deltas (order 1) or second-order
// deltas (order 2) span the requested packing width.
func allocSeries(n int, w uint, order ts2diff.Order) []int64 {
	vals := make([]int64, n)
	cur := int64(0)
	step := int64(1)
	maxDelta := int64(1)<<w - 1
	for i := range vals {
		vals[i] = cur
		if order == ts2diff.Order1 {
			cur += int64(i*2654435761) & maxDelta
		} else {
			step += int64(i) & maxDelta
			cur += step
		}
	}
	return vals
}
