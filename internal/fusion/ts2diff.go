package fusion

import (
	"etsqp/internal/bitio"
	"etsqp/internal/encoding/ts2diff"
	"etsqp/internal/pipeline"
	"etsqp/internal/simd"
)

// SumBlock computes Σ values of a TS2DIFF order-1 block without Delta
// decoding (Example 2: the sum is a weighted combination of the packed
// deltas and the base). With v_i = first + i·minBase + P_i and
// P_i = Σ_{j<i} packed_j:
//
//	Σ v = n·first + minBase·n(n-1)/2 + Σ_i P_i
//
// The Σ P term is accumulated block-wise with the same partial-sum
// vectors the decoder would build — but nothing is materialized.
//
//etsqp:hotpath
//etsqp:rangecheck
func SumBlock(b *ts2diff.Block) (int64, error) {
	if b.Order != ts2diff.Order1 {
		return SumBlockOrder2(b)
	}
	n := int64(b.Count)
	if n == 0 {
		return 0, nil
	}
	m := b.NumPacked()
	total, ok := mulChecked(b.First, n)
	if !ok {
		return 0, ErrOverflow
	}
	tri, okT := triangleChecked(n)
	ramp, ok2 := mulChecked(b.MinBase, tri)
	total, ok3 := addChecked(total, ramp)
	if !okT || !ok2 || !ok3 {
		return 0, ErrOverflow
	}
	sumP, err := sumPrefixes(b.Packed, m, b.Width)
	if err != nil {
		return 0, err
	}
	total, ok = addChecked(total, sumP)
	if !ok {
		return 0, ErrOverflow
	}
	return total, nil
}

// sumPrefixes returns Σ_{i=1..m} P_i with P_i the inclusive prefix sums of
// the packed fields, vectorized over whole plan blocks.
//
//etsqp:bounds width [0, 64]
//etsqp:hotpath
//etsqp:rangecheck
func sumPrefixes(packed []byte, m int, width uint) (int64, error) {
	if m == 0 {
		return 0, nil
	}
	if width == 0 {
		return 0, nil // all packed fields are zero
	}
	var sumP, prefixBefore int64
	e := 0
	if width <= pipeline.MaxNarrowWidth {
		p, err := pipeline.PlanFor(width)
		if err != nil {
			return 0, err
		}
		var vecsArr [pipeline.MaxNv]simd.U32x8
		vecs := vecsArr[:p.Nv]
		for ; e+p.BlockElems <= m; e += p.BlockElems {
			window := packed[e*int(width)/8:]
			for j := 0; j < p.Nv; j++ {
				vecs[j] = p.UnpackVec(window, j)
			}
			for j := 1; j < p.Nv; j++ {
				vecs[j] = simd.Add32(vecs[j-1], vecs[j])
			}
			laneTot := vecs[p.Nv-1]
			lanePrefix := simd.ExclusivePrefixSum32(laneTot)
			var localP int64
			for j := 0; j < p.Nv; j++ {
				var okH bool
				localP, okH = addChecked(localP, int64(simd.HSum32(vecs[j])))
				if !okH {
					return 0, ErrOverflow
				}
			}
			// In range by the HSum32 return bound: Nv ≤ 16, Σ lanes < 2^35.
			lane := int64(p.Nv) * int64(simd.HSum32(lanePrefix))
			localP, okL := addChecked(localP, lane)
			blockTotal := int64(lanePrefix[simd.Lanes32-1]) + int64(laneTot[simd.Lanes32-1])
			inc, ok1 := mulChecked(prefixBefore, int64(p.BlockElems))
			s, ok2 := addChecked(inc, localP)
			var ok3 bool
			sumP, ok3 = addChecked(sumP, s)
			var ok4 bool
			prefixBefore, ok4 = addChecked(prefixBefore, blockTotal)
			if !(okL && ok1 && ok2 && ok3 && ok4) {
				return 0, ErrOverflow
			}
		}
	}
	if e < m {
		r := bitio.NewReader(packed)
		if err := r.Seek(e * int(width)); err != nil {
			return 0, err
		}
		prefix := prefixBefore
		for ; e < m; e++ {
			v, err := r.ReadBits(width)
			if err != nil {
				return 0, err
			}
			var okP bool
			prefix, okP = addChecked(prefix, int64(v))
			if !okP {
				return 0, ErrOverflow
			}
			var ok bool
			sumP, ok = addChecked(sumP, prefix)
			if !ok {
				return 0, ErrOverflow
			}
		}
	}
	return sumP, nil
}

// SumBlockRange computes Σ values over rows [from, to) of a TS2DIFF block
// without materializing decoded values; it scans packed fields once up to
// `to` and stops (a window aggregation primitive).
//
//etsqp:rangecheck
func SumBlockRange(b *ts2diff.Block, from, to int) (int64, error) {
	if from < 0 {
		from = 0
	}
	if to > b.Count {
		to = b.Count
	}
	if to <= from {
		return 0, nil
	}
	// General path: stream values via the delta reader, summing only the
	// window. Works for both orders.
	deltas, err := pipeline.DecodeDeltas(b.Packed, b.NumPacked(), b.Width, b.MinBase)
	if err != nil {
		return 0, err
	}
	var total int64
	switch b.Order {
	case ts2diff.Order1:
		cur := b.First
		if from == 0 {
			total = cur
		}
		for row := 1; row < to; row++ {
			var okC bool
			cur, okC = addChecked(cur, deltas[row-1])
			if !okC {
				return 0, ErrOverflow
			}
			if row >= from {
				var ok bool
				total, ok = addChecked(total, cur)
				if !ok {
					return 0, ErrOverflow
				}
			}
		}
	case ts2diff.Order2:
		cur := b.First
		delta := b.FirstDelta
		if from == 0 {
			total = cur
		}
		for row := 1; row < to; row++ {
			var okC bool
			cur, okC = addChecked(cur, delta)
			if !okC {
				return 0, ErrOverflow
			}
			if row >= from {
				var ok bool
				total, ok = addChecked(total, cur)
				if !ok {
					return 0, ErrOverflow
				}
			}
			if row-1 < len(deltas) {
				var okD bool
				delta, okD = addChecked(delta, deltas[row-1])
				if !okD {
					return 0, ErrOverflow
				}
			}
		}
	}
	return total, nil
}

// SumBlockOrder2 computes Σ values of an order-2 TS2DIFF block without
// decoding — the two-level fusion: with second-order deltas dd_j,
//
//	v_i = first + i·d1 + Σ_{j<i} (i-1-j)·dd_j     (i >= 1)
//	Σ_{i=0..n-1} v_i = n·first + d1·n(n-1)/2 + Σ_j w_j·dd_j
//
// where w_j = Σ_{i>j+1} (i-1-j) = (n-2-j)(n-1-j)/2; a single pass over
// the packed fields evaluates the weighted sum.
//
//etsqp:hotpath
//etsqp:rangecheck
func SumBlockOrder2(b *ts2diff.Block) (int64, error) {
	if b.Order != ts2diff.Order2 {
		return 0, ErrOverflow // misuse guard; callers dispatch by order
	}
	n := int64(b.Count)
	if n == 0 {
		return 0, nil
	}
	total, ok := mulChecked(b.First, n)
	if !ok {
		return 0, ErrOverflow
	}
	if n == 1 {
		return total, nil
	}
	tri, okT := triangleChecked(n)
	ramp, ok1 := mulChecked(b.FirstDelta, tri)
	total, ok2 := addChecked(total, ramp)
	if !okT || !ok1 || !ok2 {
		return 0, ErrOverflow
	}
	m := b.NumPacked() // n-2 second-order deltas
	if m == 0 {
		return total, nil
	}
	// Weighted sum of dd_j with weight (n-2-j)(n-1-j)/2 (includes the
	// minBase shift: packed_j = dd_j - minBase). The deltas stream
	// through a fixed-size stack chunk instead of being materialized:
	// chunk boundaries are kept multiples of the plan's BlockElems (and
	// hence of 8), so every chunk starts byte-aligned in the packed
	// stream.
	var chunk [8 * pipeline.MaxNv]int64
	chunkE := len(chunk)
	if b.Width > 0 && b.Width <= pipeline.MaxNarrowWidth {
		p, err := pipeline.PlanFor(b.Width)
		if err != nil {
			return 0, err
		}
		chunkE = len(chunk) / p.BlockElems * p.BlockElems
	}
	for e := 0; e < m; e += chunkE {
		cnt := m - e
		if cnt > chunkE {
			cnt = chunkE
		}
		off := e * int(b.Width) / 8
		if off > len(b.Packed) {
			return 0, bitio.ErrShortBuffer
		}
		if err := pipeline.DecodeDeltasInto(chunk[:cnt], b.Packed[off:], cnt, b.Width, b.MinBase); err != nil {
			return 0, err
		}
		for i, d := range chunk[:cnt] {
			j := int64(e + i)
			if j < 0 || j >= n {
				return 0, ErrOverflow // unreachable: j <= m-1 <= n-3
			}
			// w = (n-2-j)(n-1-j)/2 is the triangle number T(n-1-j).
			w, okW := triangleChecked(n - 1 - j)
			term, ok1 := mulChecked(d, w)
			var ok2 bool
			total, ok2 = addChecked(total, term)
			if !okW || !ok1 || !ok2 {
				return 0, ErrOverflow
			}
		}
	}
	return total, nil
}
