package fusion

import (
	"math/rand"
	"testing"

	"etsqp/internal/encoding"
	"etsqp/internal/encoding/ts2diff"
)

// randomCuts builds a strictly increasing partition of [0, n] with at
// most k interior cuts (segments may start past 0 and end past n).
func randomCuts(rng *rand.Rand, n, k int) []int {
	set := map[int]bool{}
	for i := 0; i < k; i++ {
		set[rng.Intn(n+n/2+2)] = true
	}
	cuts := make([]int, 0, len(set)+1)
	for c := range set {
		cuts = append(cuts, c)
	}
	for i := range cuts {
		for j := i + 1; j < len(cuts); j++ {
			if cuts[j] < cuts[i] {
				cuts[i], cuts[j] = cuts[j], cuts[i]
			}
		}
	}
	if len(cuts) < 2 {
		cuts = []int{0, n + 1}
	}
	return cuts
}

func TestSumRangeSegmentsMatchesSumRange(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		vals := randomPairsSeries(seed, 12)
		first, pairs := encoding.DeltaRLEEncode(vals)
		cuts := randomCuts(rng, len(vals), 9)
		sums := make([]int64, len(cuts)-1)
		if err := SumRangeSegments(first, pairs, cuts, sums); err != nil {
			t.Fatal(err)
		}
		for i := range sums {
			from, to := cuts[i], cuts[i+1]
			if from > len(vals) {
				from = len(vals)
			}
			if to > len(vals) {
				to = len(vals)
			}
			want, err := SumRange(first, pairs, from, to)
			if err != nil {
				t.Fatal(err)
			}
			if sums[i] != want {
				t.Fatalf("seed %d seg [%d,%d): got %d want %d", seed, cuts[i], cuts[i+1], sums[i], want)
			}
		}
	}
}

func TestSumRangeSegmentsValidation(t *testing.T) {
	first, pairs := encoding.DeltaRLEEncode([]int64{1, 2, 3})
	if err := SumRangeSegments(first, pairs, []int{0, 0}, make([]int64, 1)); err == nil {
		t.Fatal("non-increasing cuts must fail")
	}
	if err := SumRangeSegments(first, pairs, []int{-1, 2}, make([]int64, 1)); err == nil {
		t.Fatal("negative cut must fail")
	}
	if err := SumRangeSegments(first, pairs, []int{0, 1, 2}, make([]int64, 1)); err == nil {
		t.Fatal("cuts/sums mismatch must fail")
	}
	// Empty segment list is a no-op.
	if err := SumRangeSegments(first, pairs, []int{3}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumBlockSegmentsMatchesSumBlockRange(t *testing.T) {
	for _, order := range []ts2diff.Order{ts2diff.Order1, ts2diff.Order2} {
		for seed := int64(0); seed < 25; seed++ {
			rng := rand.New(rand.NewSource(seed + int64(order)*1000))
			n := rng.Intn(700) + 1
			vals := make([]int64, n)
			cur := rng.Int63n(10000)
			step := rng.Int63n(20) - 10
			for i := range vals {
				vals[i] = cur
				step += rng.Int63n(7) - 3
				cur += step
			}
			b, err := ts2diff.Encode(vals, order)
			if err != nil {
				t.Fatal(err)
			}
			cuts := randomCuts(rng, n, 8)
			sums := make([]int64, len(cuts)-1)
			if err := SumBlockSegments(b, cuts, sums); err != nil {
				t.Fatal(err)
			}
			for i := range sums {
				want, err := SumBlockRange(b, cuts[i], cuts[i+1])
				if err != nil {
					t.Fatal(err)
				}
				if sums[i] != want {
					t.Fatalf("order %v seed %d seg [%d,%d): got %d want %d",
						order, seed, cuts[i], cuts[i+1], sums[i], want)
				}
			}
		}
	}
}

func TestSumBlockSegmentsWholeBlockMatchesSumBlock(t *testing.T) {
	vals := make([]int64, 300)
	for i := range vals {
		vals[i] = int64(i*i - 40*i)
	}
	for _, order := range []ts2diff.Order{ts2diff.Order1, ts2diff.Order2} {
		b, err := ts2diff.Encode(vals, order)
		if err != nil {
			t.Fatal(err)
		}
		sums := make([]int64, 1)
		if err := SumBlockSegments(b, []int{0, len(vals)}, sums); err != nil {
			t.Fatal(err)
		}
		want, err := SumBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		if sums[0] != want {
			t.Fatalf("order %v: got %d want %d", order, sums[0], want)
		}
	}
}
