// Differential oracle: every Proposition 3 closed form must equal the
// decode-then-aggregate route bit-for-bit — including the float
// aggregates, whose operation order fusion and the oracle share exactly.
// The test lives in an external package so it can import the baseline
// (which depends on engine, which depends on fusion).
package fusion_test

import (
	"fmt"
	"math/rand"
	"testing"

	"etsqp/internal/baseline"
	"etsqp/internal/encoding"
	"etsqp/internal/fusion"
)

func checkPage(t *testing.T, name string, first int64, pairs []encoding.DeltaRun) {
	t.Helper()
	want := baseline.ScalarAggregateDeltaRuns(first, pairs)
	if got := fusion.Count(pairs); got != want.Count {
		t.Errorf("%s: Count = %d, oracle %d", name, got, want.Count)
	}
	sum, err := fusion.Sum(first, pairs)
	if err != nil {
		t.Fatalf("%s: Sum: %v", name, err)
	}
	if sum != want.Sum {
		t.Errorf("%s: Sum = %d, oracle %d", name, sum, want.Sum)
	}
	sq, err := fusion.SumSquares(first, pairs)
	if err != nil {
		t.Fatalf("%s: SumSquares: %v", name, err)
	}
	if sq != want.SumSquares {
		t.Errorf("%s: SumSquares = %d, oracle %d", name, sq, want.SumSquares)
	}
	avg, err := fusion.Avg(first, pairs)
	if err != nil {
		t.Fatalf("%s: Avg: %v", name, err)
	}
	if avg != want.Avg {
		t.Errorf("%s: Avg = %v, oracle %v (must match bit-for-bit)", name, avg, want.Avg)
	}
	vr, err := fusion.Variance(first, pairs)
	if err != nil {
		t.Fatalf("%s: Variance: %v", name, err)
	}
	if vr != want.Variance {
		t.Errorf("%s: Variance = %v, oracle %v (must match bit-for-bit)", name, vr, want.Variance)
	}
}

func TestFusionMatchesScalarOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		first := int64(rng.Intn(2001) - 1000)
		pairs := make([]encoding.DeltaRun, rng.Intn(20))
		for i := range pairs {
			pairs[i] = encoding.DeltaRun{
				Delta: int64(rng.Intn(11) - 5),
				Count: 1 + rng.Intn(50),
			}
		}
		checkPage(t, fmt.Sprintf("trial%d", trial), first, pairs)
	}
}

func TestFusionOracleEdgePages(t *testing.T) {
	checkPage(t, "no-pairs", 42, nil)
	checkPage(t, "all-repeat", 7, []encoding.DeltaRun{{Delta: 0, Count: 100}})
	checkPage(t, "repeat-runs-only", -11, []encoding.DeltaRun{
		{Delta: 0, Count: 3}, {Delta: 0, Count: 1}, {Delta: 0, Count: 64},
	})
	checkPage(t, "single-run", -3, []encoding.DeltaRun{{Delta: 5, Count: 64}})
	checkPage(t, "single-element-run", 9, []encoding.DeltaRun{{Delta: -2, Count: 1}})
	checkPage(t, "alternating", 0, []encoding.DeltaRun{
		{Delta: 1, Count: 7}, {Delta: -1, Count: 7}, {Delta: 1, Count: 7}, {Delta: -1, Count: 7},
	})
}
