// Package fusion implements Section IV: aggregation without decoding.
// Associative and algebraic aggregations (SUM, COUNT, AVG, MIN, MAX,
// Σa·b, Σa², and the variances/correlations built from them) are computed
// directly on Delta-Repeat pairs and on TS2DIFF blocks, skipping the
// Repeat-flatten and Delta-accumulate decoders entirely.
//
// The core identity: over one Delta-Repeat pair ⟨Δ, R⟩ starting after
// value a, the next `valid <= R` values contribute
//
//	Σ_{i=1..valid} (a + iΔ) = valid·a + Δ·valid(valid+1)/2
//
// and analogous closed forms exist for squares and cross products
// (Proposition 3), so each pair costs O(1) regardless of its run length.
package fusion

import (
	"errors"
	"math"

	"etsqp/internal/encoding"
)

// ErrOverflow reports that an aggregation exceeded int64 (the failure
// behaviour of Section VI-C: detect, don't wrap).
var ErrOverflow = errors.New("fusion: aggregate overflow")

// addChecked adds two int64 detecting overflow.
//
//etsqp:hotpath
//etsqp:nobce
//etsqp:noescape
//etsqp:inline
func addChecked(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return s, false
	}
	return s, true
}

// mulChecked multiplies two int64 detecting overflow.
//
//etsqp:hotpath
//etsqp:nobce
//etsqp:noescape
//etsqp:inline
func mulChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return p, false
	}
	return p, true
}

// sumArith is Σ_{i=1..n} i = n(n+1)/2.
//
//etsqp:hotpath
//etsqp:nobce
//etsqp:noescape
//etsqp:inline
func sumArith(n int64) int64 { return n * (n + 1) / 2 }

// sumSquaresArith is Σ_{i=1..n} i² = n(n+1)(2n+1)/6.
//
//etsqp:hotpath
//etsqp:nobce
//etsqp:noescape
//etsqp:inline
func sumSquaresArith(n int64) int64 { return n * (n + 1) * (2*n + 1) / 6 }

// Sum aggregates Σ values over a Delta-Repeat series (first value plus
// pairs) without flattening. Cost: O(#pairs).
//
//etsqp:hotpath
//etsqp:nobce
//etsqp:noescape
func Sum(first int64, pairs []encoding.DeltaRun) (int64, error) {
	total := first
	cur := first
	ok := true
	for _, p := range pairs {
		n := int64(p.Count)
		// Σ over the run: n·cur + Δ·n(n+1)/2.
		runSum, ok1 := mulChecked(cur, n)
		inc, ok2 := mulChecked(p.Delta, sumArith(n))
		runSum, ok3 := addChecked(runSum, inc)
		total, ok = addChecked(total, runSum)
		if !(ok && ok1 && ok2 && ok3) {
			return 0, ErrOverflow
		}
		cur += p.Delta * n
	}
	return total, nil
}

// SumRange aggregates Σ values over rows [from, to) of the flattened
// series, skipping whole runs in O(1) — the building block for
// sliding-window aggregation over Delta-Repeat data.
//
//etsqp:hotpath
func SumRange(first int64, pairs []encoding.DeltaRun, from, to int) (int64, error) {
	if to <= from {
		return 0, nil
	}
	var total int64
	ok := true
	if from == 0 {
		total = first
	}
	cur := first
	idx := 0
	for _, p := range pairs {
		runEnd := idx + p.Count
		if runEnd < from || idx+1 > to {
			cur += p.Delta * int64(p.Count)
			idx = runEnd
			if idx >= to {
				break
			}
			continue
		}
		// Rows covered by this run are idx+1 .. runEnd; clamp to [from,to).
		lo := idx + 1
		if lo < from {
			lo = from
		}
		hi := runEnd
		if hi > to-1 {
			hi = to - 1
		}
		if lo <= hi {
			// Values: cur + jΔ for j = lo-idx .. hi-idx.
			j0 := int64(lo - idx)
			j1 := int64(hi - idx)
			count := j1 - j0 + 1
			base, ok1 := mulChecked(cur, count)
			inc, ok2 := mulChecked(p.Delta, sumArith(j1)-sumArith(j0-1))
			runSum, ok3 := addChecked(base, inc)
			total, ok = addChecked(total, runSum)
			if !(ok && ok1 && ok2 && ok3) {
				return 0, ErrOverflow
			}
		}
		cur += p.Delta * int64(p.Count)
		idx = runEnd
		if idx >= to {
			break
		}
	}
	return total, nil
}

// Count returns the number of values represented.
//
//etsqp:hotpath
func Count(pairs []encoding.DeltaRun) int {
	n := 1
	for _, p := range pairs {
		n += p.Count
	}
	return n
}

// Avg aggregates the mean without decoding.
func Avg(first int64, pairs []encoding.DeltaRun) (float64, error) {
	s, err := Sum(first, pairs)
	if err != nil {
		return 0, err
	}
	return float64(s) / float64(Count(pairs)), nil
}

// MinMax scans run endpoints only: within a run values are monotone, so
// extremes occur at run boundaries.
//
//etsqp:hotpath
func MinMax(first int64, pairs []encoding.DeltaRun) (minV, maxV int64) {
	minV, maxV = first, first
	cur := first
	for _, p := range pairs {
		cur += p.Delta * int64(p.Count)
		if cur < minV {
			minV = cur
		}
		if cur > maxV {
			maxV = cur
		}
	}
	return minV, maxV
}

// SumSquares aggregates Σ v² without decoding:
// Σ_{i=1..n}(a+iΔ)² = n·a² + 2aΔ·Σi + Δ²·Σi².
//
//etsqp:hotpath
func SumSquares(first int64, pairs []encoding.DeltaRun) (int64, error) {
	total, ok := mulChecked(first, first)
	if !ok {
		return 0, ErrOverflow
	}
	cur := first
	for _, p := range pairs {
		n := int64(p.Count)
		a2, ok1 := mulChecked(cur, cur)
		t1, ok2 := mulChecked(a2, n)
		cross, ok3 := mulChecked(2*cur, p.Delta)
		cross, ok4 := mulChecked(cross, sumArith(n))
		d2, ok5 := mulChecked(p.Delta, p.Delta)
		d2, ok6 := mulChecked(d2, sumSquaresArith(n))
		s, ok7 := addChecked(t1, cross)
		s, ok8 := addChecked(s, d2)
		var ok9 bool
		total, ok9 = addChecked(total, s)
		if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7 && ok8 && ok9) {
			return 0, ErrOverflow
		}
		cur += p.Delta * n
	}
	return total, nil
}

// Variance computes the population variance algebraically from the fused
// Σv and Σv² (an algebraic aggregation per Proposition 3).
func Variance(first int64, pairs []encoding.DeltaRun) (float64, error) {
	s, err := Sum(first, pairs)
	if err != nil {
		return 0, err
	}
	sq, err := SumSquares(first, pairs)
	if err != nil {
		return 0, err
	}
	n := float64(Count(pairs))
	mean := float64(s) / n
	return float64(sq)/n - mean*mean, nil
}

// DotProduct aggregates Σ aᵢ·bᵢ over two aligned Delta-Repeat series
// without decoding either, walking pairs in min(R₁,R₂) chunks exactly as
// Section IV describes:
//
//	Σ_{i=1..v}(a+iΔA)(b+iΔB) = v·ab + aΔB·Σi + bΔA·Σi + ΔAΔB·Σi²
//
//etsqp:hotpath
func DotProduct(aFirst int64, aPairs []encoding.DeltaRun, bFirst int64, bPairs []encoding.DeltaRun) (int64, error) {
	if Count(aPairs) != Count(bPairs) {
		return 0, errors.New("fusion: series length mismatch")
	}
	total, ok := mulChecked(aFirst, bFirst)
	if !ok {
		return 0, ErrOverflow
	}
	a, b := aFirst, bFirst
	ai, bi := 0, 0
	aRem, bRem := 0, 0
	if len(aPairs) > 0 {
		aRem = aPairs[0].Count
	}
	if len(bPairs) > 0 {
		bRem = bPairs[0].Count
	}
	for ai < len(aPairs) && bi < len(bPairs) {
		dA, dB := aPairs[ai].Delta, bPairs[bi].Delta
		valid := aRem
		if bRem < valid {
			valid = bRem
		}
		v := int64(valid)
		// Four-term polynomial.
		ab, ok0 := mulChecked(a, b)
		t0, okT := mulChecked(ab, v)
		ok0 = ok0 && okT
		t1, ok1 := mulChecked(a*dB+b*dA, sumArith(v))
		t2, ok2 := mulChecked(dA*dB, sumSquaresArith(v))
		s, ok3 := addChecked(t0, t1)
		s, ok4 := addChecked(s, t2)
		var ok5 bool
		total, ok5 = addChecked(total, s)
		if !(ok0 && ok1 && ok2 && ok3 && ok4 && ok5) {
			return 0, ErrOverflow
		}
		a += dA * v
		b += dB * v
		aRem -= valid
		bRem -= valid
		if aRem == 0 {
			ai++
			if ai < len(aPairs) {
				aRem = aPairs[ai].Count
			}
		}
		if bRem == 0 {
			bi++
			if bi < len(bPairs) {
				bRem = bPairs[bi].Count
			}
		}
	}
	return total, nil
}

// Correlation computes Pearson correlation of two aligned Delta-Repeat
// series from fused sums only.
func Correlation(aFirst int64, aPairs []encoding.DeltaRun, bFirst int64, bPairs []encoding.DeltaRun) (float64, error) {
	n := float64(Count(aPairs))
	sa, err := Sum(aFirst, aPairs)
	if err != nil {
		return 0, err
	}
	sb, err := Sum(bFirst, bPairs)
	if err != nil {
		return 0, err
	}
	sab, err := DotProduct(aFirst, aPairs, bFirst, bPairs)
	if err != nil {
		return 0, err
	}
	va, err := Variance(aFirst, aPairs)
	if err != nil {
		return 0, err
	}
	vb, err := Variance(bFirst, bPairs)
	if err != nil {
		return 0, err
	}
	cov := float64(sab)/n - float64(sa)/n*float64(sb)/n
	den := math.Sqrt(va * vb)
	if den == 0 {
		return 0, errors.New("fusion: zero variance")
	}
	return cov / den, nil
}
