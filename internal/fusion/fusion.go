// Package fusion implements Section IV: aggregation without decoding.
// Associative and algebraic aggregations (SUM, COUNT, AVG, MIN, MAX,
// Σa·b, Σa², and the variances/correlations built from them) are computed
// directly on Delta-Repeat pairs and on TS2DIFF blocks, skipping the
// Repeat-flatten and Delta-accumulate decoders entirely.
//
// The core identity: over one Delta-Repeat pair ⟨Δ, R⟩ starting after
// value a, the next `valid <= R` values contribute
//
//	Σ_{i=1..valid} (a + iΔ) = valid·a + Δ·valid(valid+1)/2
//
// and analogous closed forms exist for squares and cross products
// (Proposition 3), so each pair costs O(1) regardless of its run length.
package fusion

import (
	"errors"
	"math"

	"etsqp/internal/encoding"
)

// ErrOverflow reports that an aggregation exceeded int64 (the failure
// behaviour of Section VI-C: detect, don't wrap).
var ErrOverflow = errors.New("fusion: aggregate overflow")

// addChecked adds two int64 detecting overflow.
//
//etsqp:checked add
//etsqp:hotpath
//etsqp:nobce
//etsqp:noescape
//etsqp:inline
func addChecked(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return s, false
	}
	return s, true
}

// mulChecked multiplies two int64 detecting overflow.
//
//etsqp:checked mul
//etsqp:hotpath
//etsqp:nobce
//etsqp:noescape
//etsqp:inline
func mulChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return p, false
	}
	return p, true
}

// sumArithChecked is Σ_{i=1..n} i = n(n+1)/2, detecting overflow. Exactly
// one of n and n+1 is even, so halving that factor before the multiply
// keeps every intermediate exact; the one wrap (n+1 at n = MaxInt64)
// flips the sign and mulChecked rejects it.
//
//etsqp:checked
//etsqp:bounds return [0, 1<<63)
//etsqp:hotpath
//etsqp:nobce
//etsqp:noescape
func sumArithChecked(n int64) (int64, bool) {
	if n <= 0 {
		return 0, n == 0
	}
	if n&1 == 0 {
		return mulChecked(n/2, n+1)
	}
	return mulChecked(n, (n+1)/2)
}

// triangleChecked is Σ_{i=1..n-1} i = n(n-1)/2, detecting overflow — the
// ramp weight of TS2DIFF minBase/firstDelta closed forms. Same even-factor
// halving as sumArithChecked, so n up to 2^32 (the block Count ceiling)
// stays exact where the naive n*(n-1) wraps past n > 3037000499.
//
//etsqp:checked
//etsqp:bounds return [0, 1<<63)
//etsqp:hotpath
//etsqp:nobce
//etsqp:noescape
func triangleChecked(n int64) (int64, bool) {
	if n <= 1 {
		return 0, n >= 0
	}
	if n&1 == 0 {
		return mulChecked(n/2, n-1)
	}
	return mulChecked(n, (n-1)/2)
}

// sumSquaresArithChecked is Σ_{i=1..n} i² = n(n+1)(2n+1)/6, detecting
// overflow. The divisor 6 is split exactly across the three factors:
// one of {n, n+1, 2n+1} is divisible by 3 (2n+1 is when n ≡ 1 mod 3), and
// after that division the even member of {n, n+1} is still even. Beyond
// n ≥ 2^31 the true result exceeds int64 anyway (≈ n³/3 ≥ 2^91), so the
// guard rejects before 2n+1 could wrap.
//
//etsqp:checked
//etsqp:bounds return [0, 1<<63)
//etsqp:hotpath
//etsqp:nobce
//etsqp:noescape
func sumSquaresArithChecked(n int64) (int64, bool) {
	if n <= 0 {
		return 0, n == 0
	}
	if n >= 1<<31 {
		return 0, false
	}
	a, b, c := n, n+1, 2*n+1
	switch n % 3 {
	case 0:
		a /= 3
	case 1:
		c /= 3
	default:
		b /= 3
	}
	if a&1 == 0 {
		a /= 2
	} else {
		b /= 2
	}
	p, ok1 := mulChecked(a, b)
	q, ok2 := mulChecked(p, c)
	return q, ok1 && ok2
}

// windowArithChecked is Σ_{i=j0..j1} i = (j0+j1)(j1−j0+1)/2, detecting
// overflow — the windowed ramp weight of SumRange. The sum (j0+j1) and
// width (j1−j0+1) always differ in parity, so halving the even one keeps
// the product exact; the j1 < 2^62 guard keeps both factors wrap-free.
//
//etsqp:checked
//etsqp:bounds return [0, 1<<63)
//etsqp:hotpath
//etsqp:nobce
//etsqp:noescape
func windowArithChecked(j0, j1 int64) (int64, bool) {
	if j1 < j0 {
		return 0, true
	}
	if j0 < 0 || j1 >= 1<<62 {
		return 0, false
	}
	s := j0 + j1
	w := j1 - j0 + 1
	if s&1 == 0 {
		s /= 2
	} else {
		w /= 2
	}
	return mulChecked(s, w)
}

// Sum aggregates Σ values over a Delta-Repeat series (first value plus
// pairs) without flattening. Cost: O(#pairs).
//
//etsqp:hotpath
//etsqp:nobce
//etsqp:noescape
//etsqp:rangecheck
func Sum(first int64, pairs []encoding.DeltaRun) (int64, error) {
	total := first
	cur := first
	for _, p := range pairs {
		n := int64(p.Count)
		// Σ over the run: n·cur + Δ·n(n+1)/2.
		runSum, ok1 := mulChecked(cur, n)
		tri, ok2 := sumArithChecked(n)
		inc, ok3 := mulChecked(p.Delta, tri)
		runSum, ok4 := addChecked(runSum, inc)
		var ok5 bool
		total, ok5 = addChecked(total, runSum)
		step, ok6 := mulChecked(p.Delta, n)
		var ok7 bool
		cur, ok7 = addChecked(cur, step)
		if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7) {
			return 0, ErrOverflow
		}
	}
	return total, nil
}

// SumRange aggregates Σ values over rows [from, to) of the flattened
// series, skipping whole runs in O(1) — the building block for
// sliding-window aggregation over Delta-Repeat data.
//
//etsqp:hotpath
//etsqp:rangecheck
func SumRange(first int64, pairs []encoding.DeltaRun, from, to int) (int64, error) {
	if to <= from {
		return 0, nil
	}
	var total int64
	if from == 0 {
		total = first
	}
	cur := first
	idx := 0
	for _, p := range pairs {
		runEnd := idx + p.Count
		if runEnd < from || idx+1 > to {
			step, okS := mulChecked(p.Delta, int64(p.Count))
			var okC bool
			cur, okC = addChecked(cur, step)
			if !(okS && okC) {
				return 0, ErrOverflow
			}
			idx = runEnd
			if idx >= to {
				break
			}
			continue
		}
		// Rows covered by this run are idx+1 .. runEnd; clamp to [from,to).
		lo := idx + 1
		if lo < from {
			lo = from
		}
		hi := runEnd
		if hi > to-1 {
			hi = to - 1
		}
		if lo <= hi {
			// Values: cur + jΔ for j = lo-idx .. hi-idx.
			j0 := int64(lo - idx)
			j1 := int64(hi - idx)
			count := int64(hi - lo + 1)
			base, ok1 := mulChecked(cur, count)
			win, ok2 := windowArithChecked(j0, j1)
			inc, ok3 := mulChecked(p.Delta, win)
			runSum, ok4 := addChecked(base, inc)
			var ok5 bool
			total, ok5 = addChecked(total, runSum)
			if !(ok1 && ok2 && ok3 && ok4 && ok5) {
				return 0, ErrOverflow
			}
		}
		step, okS := mulChecked(p.Delta, int64(p.Count))
		var okC bool
		cur, okC = addChecked(cur, step)
		if !(okS && okC) {
			return 0, ErrOverflow
		}
		idx = runEnd
		if idx >= to {
			break
		}
	}
	return total, nil
}

// Count returns the number of values represented.
//
//etsqp:hotpath
func Count(pairs []encoding.DeltaRun) int {
	n := 1
	for _, p := range pairs {
		n += p.Count
	}
	return n
}

// Avg aggregates the mean without decoding.
func Avg(first int64, pairs []encoding.DeltaRun) (float64, error) {
	s, err := Sum(first, pairs)
	if err != nil {
		return 0, err
	}
	return float64(s) / float64(Count(pairs)), nil
}

// MinMax scans run endpoints only: within a run values are monotone, so
// extremes occur at run boundaries.
//
// MinMax has no error result, so it cannot carry the //etsqp:rangecheck
// contract: a series whose running value leaves int64 reports wrapped
// extremes. Callers that need detection aggregate Sum first — it walks
// the same endpoints under checked arithmetic and returns ErrOverflow.
//
//etsqp:hotpath
func MinMax(first int64, pairs []encoding.DeltaRun) (minV, maxV int64) {
	minV, maxV = first, first
	cur := first
	for _, p := range pairs {
		cur += p.Delta * int64(p.Count)
		if cur < minV {
			minV = cur
		}
		if cur > maxV {
			maxV = cur
		}
	}
	return minV, maxV
}

// SumSquares aggregates Σ v² without decoding:
// Σ_{i=1..n}(a+iΔ)² = n·a² + 2aΔ·Σi + Δ²·Σi².
//
//etsqp:hotpath
//etsqp:rangecheck
func SumSquares(first int64, pairs []encoding.DeltaRun) (int64, error) {
	total, ok := mulChecked(first, first)
	if !ok {
		return 0, ErrOverflow
	}
	cur := first
	for _, p := range pairs {
		n := int64(p.Count)
		a2, ok1 := mulChecked(cur, cur)
		t1, ok2 := mulChecked(a2, n)
		twoA, ok3 := mulChecked(cur, 2)
		cross, ok4 := mulChecked(twoA, p.Delta)
		tri, ok5 := sumArithChecked(n)
		cross, ok6 := mulChecked(cross, tri)
		d2, ok7 := mulChecked(p.Delta, p.Delta)
		sq, ok8 := sumSquaresArithChecked(n)
		d2, ok9 := mulChecked(d2, sq)
		s, ok10 := addChecked(t1, cross)
		s, ok11 := addChecked(s, d2)
		var ok12 bool
		total, ok12 = addChecked(total, s)
		step, ok13 := mulChecked(p.Delta, n)
		var ok14 bool
		cur, ok14 = addChecked(cur, step)
		if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7 && ok8 &&
			ok9 && ok10 && ok11 && ok12 && ok13 && ok14) {
			return 0, ErrOverflow
		}
	}
	return total, nil
}

// Variance computes the population variance algebraically from the fused
// Σv and Σv² (an algebraic aggregation per Proposition 3).
func Variance(first int64, pairs []encoding.DeltaRun) (float64, error) {
	s, err := Sum(first, pairs)
	if err != nil {
		return 0, err
	}
	sq, err := SumSquares(first, pairs)
	if err != nil {
		return 0, err
	}
	n := float64(Count(pairs))
	mean := float64(s) / n
	return float64(sq)/n - mean*mean, nil
}

// DotProduct aggregates Σ aᵢ·bᵢ over two aligned Delta-Repeat series
// without decoding either, walking pairs in min(R₁,R₂) chunks exactly as
// Section IV describes:
//
//	Σ_{i=1..v}(a+iΔA)(b+iΔB) = v·ab + aΔB·Σi + bΔA·Σi + ΔAΔB·Σi²
//
//etsqp:hotpath
//etsqp:rangecheck
func DotProduct(aFirst int64, aPairs []encoding.DeltaRun, bFirst int64, bPairs []encoding.DeltaRun) (int64, error) {
	if Count(aPairs) != Count(bPairs) {
		return 0, errors.New("fusion: series length mismatch")
	}
	total, ok := mulChecked(aFirst, bFirst)
	if !ok {
		return 0, ErrOverflow
	}
	a, b := aFirst, bFirst
	ai, bi := 0, 0
	aRem, bRem := 0, 0
	if len(aPairs) > 0 {
		aRem = aPairs[0].Count
	}
	if len(bPairs) > 0 {
		bRem = bPairs[0].Count
	}
	for ai < len(aPairs) && bi < len(bPairs) {
		dA, dB := aPairs[ai].Delta, bPairs[bi].Delta
		valid := aRem
		if bRem < valid {
			valid = bRem
		}
		v := int64(valid)
		// Four-term polynomial.
		ab, ok0 := mulChecked(a, b)
		t0, okT := mulChecked(ab, v)
		adb, okA := mulChecked(a, dB)
		bda, okB := mulChecked(b, dA)
		mix, okM := addChecked(adb, bda)
		tri, okR := sumArithChecked(v)
		t1, ok1 := mulChecked(mix, tri)
		dd, okD := mulChecked(dA, dB)
		sq, okQ := sumSquaresArithChecked(v)
		t2, ok2 := mulChecked(dd, sq)
		s, ok3 := addChecked(t0, t1)
		s, ok4 := addChecked(s, t2)
		var ok5 bool
		total, ok5 = addChecked(total, s)
		stepA, okSA := mulChecked(dA, v)
		var okAA bool
		a, okAA = addChecked(a, stepA)
		stepB, okSB := mulChecked(dB, v)
		var okBB bool
		b, okBB = addChecked(b, stepB)
		if !(ok0 && okT && okA && okB && okM && okR && ok1 && okD && okQ &&
			ok2 && ok3 && ok4 && ok5 && okSA && okAA && okSB && okBB) {
			return 0, ErrOverflow
		}
		aRem -= valid
		bRem -= valid
		if aRem == 0 {
			ai++
			if ai < len(aPairs) {
				aRem = aPairs[ai].Count
			}
		}
		if bRem == 0 {
			bi++
			if bi < len(bPairs) {
				bRem = bPairs[bi].Count
			}
		}
	}
	return total, nil
}

// Correlation computes Pearson correlation of two aligned Delta-Repeat
// series from fused sums only.
func Correlation(aFirst int64, aPairs []encoding.DeltaRun, bFirst int64, bPairs []encoding.DeltaRun) (float64, error) {
	n := float64(Count(aPairs))
	sa, err := Sum(aFirst, aPairs)
	if err != nil {
		return 0, err
	}
	sb, err := Sum(bFirst, bPairs)
	if err != nil {
		return 0, err
	}
	sab, err := DotProduct(aFirst, aPairs, bFirst, bPairs)
	if err != nil {
		return 0, err
	}
	va, err := Variance(aFirst, aPairs)
	if err != nil {
		return 0, err
	}
	vb, err := Variance(bFirst, bPairs)
	if err != nil {
		return 0, err
	}
	cov := float64(sab)/n - float64(sa)/n*float64(sb)/n
	den := math.Sqrt(va * vb)
	if den == 0 {
		return 0, errors.New("fusion: zero variance")
	}
	return cov / den, nil
}
