package fusion_test

import (
	"fmt"
	"log"

	"etsqp/internal/encoding"
	"etsqp/internal/fusion"
)

// Aggregate a Delta-Repeat encoded series without decoding a single
// value: a one-billion-point run costs one O(1) polynomial evaluation.
func ExampleSum() {
	// The series 10, 13, 16, ... advances by 3 for a billion steps.
	pairs := []encoding.DeltaRun{{Delta: 3, Count: 1_000_000_000}}
	sum, err := fusion.Sum(10, pairs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sum)
	// Output: 1500000011500000010
}

// Variance from the fused Σv and Σv² — an algebraic aggregation built on
// associative ones (Proposition 3).
func ExampleVariance() {
	vals := []int64{2, 4, 4, 4, 5, 5, 7, 9}
	first, pairs := encoding.DeltaRLEEncode(vals)
	v, err := fusion.Variance(first, pairs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v)
	// Output: 4
}
