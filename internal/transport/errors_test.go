package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"etsqp/internal/obs"
	"etsqp/internal/storage"
)

// validStream builds a wire stream carrying `frames` page-pair frames
// (no close frame), returning the raw bytes.
func validStream(t *testing.T, frames int) []byte {
	t.Helper()
	var buf bytes.Buffer
	s := NewSender(&buf, 100, storage.Options{})
	for f := 0; f < frames; f++ {
		for i := 0; i < 100; i++ {
			if err := s.Record("s", int64(f*100+i+1), int64(i%9)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// storePoints counts ingested points for series s (0 when absent).
func storePoints(st *storage.Store) int {
	ser, ok := st.Series("s")
	if !ok {
		return 0
	}
	return ser.NumPoints()
}

// TestTruncatedFrameIsBadFrame checks every possible truncation point of
// a frame stream either ends cleanly at a frame boundary (EOF → nil
// error from Receive) or reports ErrBadFrame — never a panic, and never
// a partially ingested page.
func TestTruncatedFrameIsBadFrame(t *testing.T) {
	raw := validStream(t, 2)
	frameLen := len(raw) / 2 // two identical-shape frames
	for cut := 0; cut < len(raw); cut++ {
		st := storage.NewStore()
		n, err := Receive(bytes.NewReader(raw[:cut]), st)
		atBoundary := cut == 0 || cut == frameLen
		if atBoundary {
			if err != nil {
				t.Fatalf("cut %d at frame boundary: err = %v, want clean EOF", cut, err)
			}
		} else if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("cut %d mid-frame: err = %v, want ErrBadFrame", cut, err)
		}
		// Whatever was ingested must be whole frames only.
		if want := n * 100; storePoints(st) != want {
			t.Fatalf("cut %d: store holds %d points for %d ingested pairs", cut, storePoints(st), n)
		}
	}
}

// TestFlippedCRCBytesAreBadFrame flips each of the four trailing CRC
// bytes in turn and checks the frame is rejected with ErrBadFrame and
// nothing reaches the store.
func TestFlippedCRCBytesAreBadFrame(t *testing.T) {
	raw := validStream(t, 1)
	for i := len(raw) - 4; i < len(raw); i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x01
		st := storage.NewStore()
		n, err := Receive(bytes.NewReader(mut), st)
		if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("flipped CRC byte %d: err = %v, want ErrBadFrame", i, err)
		}
		if n != 0 || storePoints(st) != 0 {
			t.Fatalf("flipped CRC byte %d: %d pairs / %d points leaked into store", i, n, storePoints(st))
		}
	}
}

// TestOversizedFrameLenIsBadFrame checks a frame advertising a payload
// beyond the 1<<28 cap is rejected before any allocation of that size.
func TestOversizedFrameLenIsBadFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(frameMagic[:])
	buf.WriteByte(framePagePair)
	var tmp [4]byte
	binary.BigEndian.PutUint16(tmp[:2], 1)
	buf.Write(tmp[:2])
	buf.WriteByte('s')
	binary.BigEndian.PutUint32(tmp[:4], 1<<28+1)
	buf.Write(tmp[:4])
	st := storage.NewStore()
	n, err := Receive(bytes.NewReader(buf.Bytes()), st)
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized frameLen: err = %v, want ErrBadFrame", err)
	}
	if n != 0 || storePoints(st) != 0 {
		t.Fatal("oversized frame leaked into store")
	}
}

// TestCleanEOFBetweenFramesIsNotAnError pins the boundary contract:
// readFrame at a clean end of stream reports io.EOF (not ErrBadFrame),
// which Receive treats as a normal end.
func TestCleanEOFBetweenFramesIsNotAnError(t *testing.T) {
	if _, _, _, err := readFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
	raw := validStream(t, 1)
	st := storage.NewStore()
	n, err := Receive(bytes.NewReader(raw), st)
	if err != nil || n != 1 {
		t.Fatalf("whole stream without close frame: n=%d err=%v", n, err)
	}
}

// TestFrameBytesHistogramObserves checks the transport frame-size
// histogram sees one observation per frame on each side of the wire.
func TestFrameBytesHistogramObserves(t *testing.T) {
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	before := obs.CaptureHistograms()
	raw := validStream(t, 2) // writeFrame observes twice
	st := storage.NewStore()
	if _, err := Receive(bytes.NewReader(raw), st); err != nil {
		t.Fatal(err)
	}
	var prev, cur obs.HistogramSnapshot
	for _, h := range before {
		if h.Name == obs.TransportHistFrameBytes.Name() {
			prev = h
		}
	}
	for _, h := range obs.CaptureHistograms() {
		if h.Name == obs.TransportHistFrameBytes.Name() {
			cur = h
		}
	}
	d := cur.Delta(prev)
	if d.Count != 4 { // 2 frames written + 2 frames read
		t.Fatalf("frame_bytes histogram count delta = %d, want 4", d.Count)
	}
	if d.Sum != 2*int64(len(raw)) {
		t.Fatalf("frame_bytes histogram sum delta = %d, want %d", d.Sum, 2*len(raw))
	}
}
