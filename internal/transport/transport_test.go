package transport

import (
	"bytes"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"

	"etsqp/internal/engine"
	"etsqp/internal/storage"

	_ "etsqp/internal/encoding/ts2diff"
)

func TestDeviceToServerOverPipe(t *testing.T) {
	// A device streams two sensors over an in-memory connection; the
	// server ingests encoded pages and answers a query.
	client, server := net.Pipe()
	st := storage.NewStore()
	var wg sync.WaitGroup
	var recvN int
	var recvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		recvN, recvErr = Receive(server, st)
	}()

	s := NewSender(client, 250, storage.Options{})
	n := 2000
	temps := make([]int64, n)
	for i := 0; i < n; i++ {
		temps[i] = 200 + int64(i%17)
		if err := s.Record("temp", int64(i+1)*1000, temps[i]); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := s.Record("hum", int64(i+1)*1000, 500+int64(i%5)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	client.Close()
	wg.Wait()
	if recvErr != nil {
		t.Fatal(recvErr)
	}
	if recvN < 8+4 {
		t.Fatalf("pairs ingested = %d", recvN)
	}

	// The ingested store answers queries like a locally built one.
	gotT, gotV, err := st.ReadColumns("temp")
	if err != nil {
		t.Fatal(err)
	}
	if len(gotT) != n || !reflect.DeepEqual(gotV, temps) {
		t.Fatal("delivered series mismatch")
	}
	e := engine.New(st, engine.ModeETSQP)
	res, err := e.ExecuteSQL("SELECT COUNT(A) FROM hum")
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregates["COUNT(A)"] != float64(n/2) {
		t.Fatalf("hum count = %v", res.Aggregates["COUNT(A)"])
	}
}

func TestWireIsEncodedNotRaw(t *testing.T) {
	// The point of shipping encoded pages: the wire volume is far below
	// 16 bytes per (t, v) point for a compressible series.
	var buf bytes.Buffer
	s := NewSender(&buf, 1000, storage.Options{})
	n := 10_000
	for i := 0; i < n; i++ {
		if err := s.Record("s", int64(i)*1000, int64(i%50)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > n*16/4 {
		t.Fatalf("wire bytes %d, want at least 4x below raw %d", buf.Len(), n*16)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	s := NewSender(&buf, 100, storage.Options{})
	for i := 0; i < 100; i++ {
		if err := s.Record("s", int64(i+1), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xFF
	st := storage.NewStore()
	if _, err := Receive(bytes.NewReader(raw), st); err == nil {
		t.Fatal("corrupted frame not detected")
	}
	// Bad magic.
	if _, err := Receive(bytes.NewReader([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}), st); err == nil {
		t.Fatal("bad magic not detected")
	}
}

func TestPartialBuffersFlushOnClose(t *testing.T) {
	var buf bytes.Buffer
	s := NewSender(&buf, 1_000_000, storage.Options{}) // never auto-flushes
	for i := 0; i < 7; i++ {
		if err := s.Record("s", int64(i+1), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := storage.NewStore()
	pairs, err := Receive(bytes.NewReader(buf.Bytes()), st)
	if err != nil {
		t.Fatal(err)
	}
	if pairs != 1 {
		t.Fatalf("pairs = %d", pairs)
	}
	ser, _ := st.Series("s")
	if ser.NumPoints() != 7 {
		t.Fatalf("points = %d", ser.NumPoints())
	}
}

func TestOutOfOrderDeliveryRejected(t *testing.T) {
	st := storage.NewStore()
	mk := func(start int64) storage.PagePair {
		ts := []int64{start, start + 1}
		pairs, err := storage.EncodePages(ts, []int64{1, 2}, storage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return pairs[0]
	}
	if err := st.AppendPages("s", []storage.PagePair{mk(100)}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendPages("s", []storage.PagePair{mk(50)}); err == nil {
		t.Fatal("out-of-order page append must fail")
	}
	if err := st.AppendPages("s", []storage.PagePair{mk(200)}); err != nil {
		t.Fatal(err)
	}
}

func TestSenderSeriesNameTooLong(t *testing.T) {
	var buf bytes.Buffer
	long := make([]byte, 70000)
	for i := range long {
		long[i] = 'a'
	}
	err := writeFrame(&buf, framePagePair, string(long), nil)
	if err == nil {
		t.Fatal("over-long series name must fail")
	}
	_ = fmt.Sprint(err)
}
