// Package transport implements the delivery path of Section I: IoT
// devices encode readings incrementally and ship the encoded blocks —
// not raw values — over the network; the server ingests them straight
// into the page store. The wire format is length-prefixed frames with a
// CRC-32 trailer:
//
//	magic(2) type(1) seriesLen(2) series frameLen(4) payload crc(4)
//
// Frame payloads are storage page pairs (time page + value page), so a
// device's flush unit and the server's storage unit coincide and the
// server never decodes in the ingest path (space-efficient delivery,
// Figure 1's motivation).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"etsqp/internal/obs"
	"etsqp/internal/storage"
)

// Frame types.
const (
	framePagePair = 0x01
	frameClose    = 0x02
)

var frameMagic = [2]byte{0xE7, 0x5A}

// ErrBadFrame reports a corrupt or unexpected frame.
var ErrBadFrame = errors.New("transport: bad frame")

// writeFrame emits one frame.
func writeFrame(w io.Writer, ftype byte, series string, payload []byte) error {
	if len(series) > 0xFFFF {
		return fmt.Errorf("transport: series name too long")
	}
	head := make([]byte, 0, 9+len(series))
	head = append(head, frameMagic[:]...)
	head = append(head, ftype)
	var tmp [4]byte
	binary.BigEndian.PutUint16(tmp[:2], uint16(len(series)))
	head = append(head, tmp[:2]...)
	head = append(head, series...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(payload)))
	head = append(head, tmp[:4]...)
	if _, err := w.Write(head); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(tmp[:4], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(tmp[:4]); err != nil {
		return err
	}
	obs.TransportFramesOut.Inc()
	obs.TransportBytesOut.Add(int64(len(head) + len(payload) + 4))
	obs.TransportHistFrameBytes.Observe(int64(len(head) + len(payload) + 4))
	return nil
}

// truncated maps an io.ReadFull error inside a frame to ErrBadFrame: a
// stream ending mid-frame is corruption, not a clean end of stream.
// (io.ReadFull reports EOF when zero bytes were read and
// io.ErrUnexpectedEOF on a short read — mid-frame, both mean the peer
// cut off inside a frame.)
func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("transport: truncated frame: %w", ErrBadFrame)
	}
	return err
}

// readFrame parses one frame.
func readFrame(r io.Reader) (ftype byte, series string, payload []byte, err error) {
	var head [5]byte
	if _, err = io.ReadFull(r, head[:]); err != nil {
		if errors.Is(err, io.EOF) {
			// A clean end of stream between frames is EOF, not corruption.
			return 0, "", nil, io.EOF
		}
		return 0, "", nil, truncated(err)
	}
	if head[0] != frameMagic[0] || head[1] != frameMagic[1] {
		return 0, "", nil, ErrBadFrame
	}
	ftype = head[2]
	nameLen := int(binary.BigEndian.Uint16(head[3:]))
	name := make([]byte, nameLen)
	if _, err = io.ReadFull(r, name); err != nil {
		return 0, "", nil, truncated(err)
	}
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, "", nil, truncated(err)
	}
	plen := binary.BigEndian.Uint32(lenBuf[:])
	if plen > 1<<28 {
		return 0, "", nil, fmt.Errorf("transport: frame length %d exceeds limit: %w", plen, ErrBadFrame)
	}
	payload = make([]byte, plen)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, "", nil, truncated(err)
	}
	var crcBuf [4]byte
	if _, err = io.ReadFull(r, crcBuf[:]); err != nil {
		return 0, "", nil, truncated(err)
	}
	if binary.BigEndian.Uint32(crcBuf[:]) != crc32.ChecksumIEEE(payload) {
		obs.TransportCRCFailures.Inc()
		return 0, "", nil, fmt.Errorf("transport: frame checksum mismatch: %w", ErrBadFrame)
	}
	obs.TransportFramesIn.Inc()
	obs.TransportBytesIn.Add(int64(5 + nameLen + 4 + len(payload) + 4))
	obs.TransportHistFrameBytes.Observe(int64(5 + nameLen + 4 + len(payload) + 4))
	return ftype, string(name), payload, nil
}

// Sender is the device side: it buffers points per series and ships
// encoded page pairs when the buffer fills (the incremental, buffer-
// bounded flush behaviour IoT encoders exist for).
type Sender struct {
	w     io.Writer
	opts  storage.Options
	ts    map[string][]int64
	vals  map[string][]int64
	Flush int // points per shipped page pair
}

// NewSender wraps a connection; pages flush every `flush` points.
func NewSender(w io.Writer, flush int, opts storage.Options) *Sender {
	if flush <= 0 {
		flush = storage.DefaultPageSize
	}
	return &Sender{
		w: w, opts: opts, Flush: flush,
		ts: map[string][]int64{}, vals: map[string][]int64{},
	}
}

// Record buffers one data point, shipping a frame when the series
// buffer reaches the flush size.
func (s *Sender) Record(series string, t, v int64) error {
	s.ts[series] = append(s.ts[series], t)
	s.vals[series] = append(s.vals[series], v)
	if len(s.ts[series]) >= s.Flush {
		return s.flushSeries(series)
	}
	return nil
}

// FlushAll ships every partially filled buffer.
func (s *Sender) FlushAll() error {
	for series := range s.ts {
		if len(s.ts[series]) > 0 {
			if err := s.flushSeries(series); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close flushes and sends the end-of-stream frame.
func (s *Sender) Close() error {
	if err := s.FlushAll(); err != nil {
		return err
	}
	return writeFrame(s.w, frameClose, "", nil)
}

func (s *Sender) flushSeries(series string) error {
	opts := s.opts
	opts.PageSize = len(s.ts[series])
	pairs, err := storage.EncodePages(s.ts[series], s.vals[series], opts)
	if err != nil {
		return err
	}
	for _, pp := range pairs {
		payload := storage.MarshalPagePair(pp)
		if err := writeFrame(s.w, framePagePair, series, payload); err != nil {
			return err
		}
	}
	s.ts[series] = s.ts[series][:0]
	s.vals[series] = s.vals[series][:0]
	return nil
}

// Receive ingests frames into the store until the close frame or EOF.
// It returns the number of page pairs ingested.
func Receive(r io.Reader, st *storage.Store) (int, error) {
	n := 0
	for {
		ftype, series, payload, err := readFrame(r)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		switch ftype {
		case frameClose:
			return n, nil
		case framePagePair:
			pp, err := storage.UnmarshalPagePair(payload)
			if err != nil {
				return n, err
			}
			if err := st.AppendPages(series, []storage.PagePair{pp}); err != nil {
				return n, err
			}
			n++
		default:
			return n, ErrBadFrame
		}
	}
}
