package pipeline

import (
	"fmt"

	"etsqp/internal/bitio"
	"etsqp/internal/encoding/ts2diff"
	"etsqp/internal/obs"
)

// RangeScanner decodes a TS2DIFF block incrementally: the prefix to the
// start row is resolved once, and each Next call continues from the
// previous position in O(chunk) — the streaming shape the Proposition
// 4/5 stop rules need, without re-resolving the Figure 8 prefix per
// chunk. Order-1 blocks vectorize aligned chunks; order-2 blocks (time
// columns) stream through the two-level scalar recurrence.
type RangeScanner struct {
	b     *ts2diff.Block
	row   int   // next row to emit
	cur   int64 // value at row-1 (undefined when row == 0)
	delta int64 // order-2 only: delta between rows row-1 and row
	r     *bitio.Reader
}

// NewRangeScanner positions a scanner at startRow of a block.
func NewRangeScanner(b *ts2diff.Block, startRow int) (*RangeScanner, error) {
	if b.Order != ts2diff.Order1 && b.Order != ts2diff.Order2 {
		return nil, fmt.Errorf("pipeline: unknown order %d", b.Order)
	}
	if startRow < 0 || startRow > b.Count {
		return nil, fmt.Errorf("pipeline: start row %d out of [0,%d]", startRow, b.Count)
	}
	s := &RangeScanner{b: b, r: bitio.NewReader(b.Packed)}
	if startRow > 0 {
		obs.PipelinePrefixFixups.Inc()
	}
	if b.Order == ts2diff.Order2 {
		s.delta = b.FirstDelta
		// Order-2 prefixes resolve by replaying the recurrence (time
		// columns are order-2; slices usually start at row 0).
		s.cur = b.First
		if startRow > 0 {
			s.row = 1
			tmp := make([]int64, 256)
			for s.row < startRow {
				want := startRow - s.row
				if want > len(tmp) {
					want = len(tmp)
				}
				if _, err := s.next2(tmp[:want]); err != nil {
					return nil, err
				}
			}
		}
		s.row = startRow
		return s, nil
	}
	s.row = startRow
	if startRow > 0 {
		skip, err := SumPacked(b.Packed, startRow-1, b.Width)
		if err != nil {
			return nil, err
		}
		s.cur = b.First + b.MinBase*int64(startRow-1) + int64(skip)
		if err := s.r.Seek((startRow - 1) * int(b.Width)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Row reports the next row the scanner will emit.
func (s *RangeScanner) Row() int { return s.row }

// Next decodes up to len(dst) rows, returning how many were produced
// (0 at the end of the block).
func (s *RangeScanner) Next(dst []int64) (int, error) {
	n := len(dst)
	if rem := s.b.Count - s.row; rem < n {
		n = rem
	}
	if n <= 0 {
		return 0, nil
	}
	var err error
	if s.b.Order == ts2diff.Order2 {
		n, err = s.next2(dst[:n])
	} else {
		n, err = s.next1(dst[:n])
	}
	if err == nil && n > 0 {
		obs.PipelineValuesUnpacked.Add(int64(n))
	}
	return n, err
}

// next1 advances an order-1 scan; byte-aligned chunk starts run through
// the vectorized pipeline.
func (s *RangeScanner) next1(dst []int64) (int, error) {
	n := len(dst)
	width := s.b.Width
	i := 0
	if s.row == 0 {
		s.cur = s.b.First
		dst[0] = s.cur
		s.row++
		i++
	}
	if i < n && width > 0 && width <= MaxNarrowWidth {
		startElem := s.row - 1
		if (startElem*int(width))%8 == 0 {
			m := n - i // packed elements to consume
			tmp := make([]int64, m+1)
			tmp[0] = s.cur
			window := s.b.Packed[startElem*int(width)/8:]
			if err := accumulateFrom(tmp, s.cur, window, m, width, s.b.MinBase); err != nil {
				return 0, err
			}
			copy(dst[i:n], tmp[1:])
			s.cur = tmp[m]
			s.row += m
			if err := s.r.Seek((s.row - 1) * int(width)); err != nil {
				return 0, err
			}
			return n, nil
		}
	}
	for ; i < n; i++ {
		var v uint64
		if width > 0 {
			var err error
			v, err = s.r.ReadBits(width)
			if err != nil {
				return 0, err
			}
		}
		s.cur += s.b.MinBase + int64(v)
		dst[i] = s.cur
		s.row++
	}
	return n, nil
}

// next2 advances an order-2 scan via the two-level recurrence:
// delta_r = delta_{r-1} + dd_{r-2}, value_r = value_{r-1} + delta_r.
func (s *RangeScanner) next2(dst []int64) (int, error) {
	n := len(dst)
	width := s.b.Width
	i := 0
	if s.row == 0 {
		s.cur = s.b.First
		s.delta = s.b.FirstDelta
		dst[0] = s.cur
		s.row++
		i++
	}
	for ; i < n; i++ {
		if s.row >= 2 {
			var dd uint64
			if width > 0 {
				var err error
				dd, err = s.r.ReadBits(width)
				if err != nil {
					return 0, err
				}
			}
			s.delta += s.b.MinBase + int64(dd)
		}
		s.cur += s.delta
		dst[i] = s.cur
		s.row++
	}
	return n, nil
}
