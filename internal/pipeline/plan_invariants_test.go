package pipeline

import (
	"errors"
	"testing"
)

// TestPlanTableInvariants is the dynamic side of the plantable analyzer:
// every width the tables support must build an internally consistent
// plan (gather indices in window range, shifts below 32, masks and ramps
// exact), and every width past the table range must be rejected with
// ErrWidthRange — for both vector-width instantiations.
func TestPlanTableInvariants(t *testing.T) {
	for w := uint(0); w <= 32; w++ {
		p, err := PlanFor(w)
		if err != nil {
			t.Fatalf("PlanFor(%d): %v", w, err)
		}
		if err := p.Check(); err != nil {
			t.Errorf("PlanFor(%d): inconsistent tables: %v", w, err)
		}
		p512, err := PlanFor512(w)
		if err != nil {
			t.Fatalf("PlanFor512(%d): %v", w, err)
		}
		if err := p512.Check(); err != nil {
			t.Errorf("PlanFor512(%d): inconsistent tables: %v", w, err)
		}
	}
	for w := uint(33); w <= 64; w++ {
		if _, err := PlanFor(w); !errors.Is(err, ErrWidthRange) {
			t.Errorf("PlanFor(%d): want ErrWidthRange, got %v", w, err)
		}
		if _, err := PlanFor512(w); !errors.Is(err, ErrWidthRange) {
			t.Errorf("PlanFor512(%d): want ErrWidthRange, got %v", w, err)
		}
	}
}
