package pipeline

import (
	"encoding/binary"
	"errors"

	"etsqp/internal/bitio"
)

// ErrBadFibStream reports a malformed Fibonacci-coded payload.
var ErrBadFibStream = errors.New("pipeline: malformed fibonacci stream")

// fibNumbers mirrors the Zeckendorf basis F(2)=1, F(3)=2, ...
var fibNumbers = func() []uint64 {
	fs := []uint64{1, 2}
	for fs[len(fs)-1] <= 1<<62 {
		fs = append(fs, fs[len(fs)-1]+fs[len(fs)-2])
	}
	return fs
}()

// UnpackFibonacci decodes n Fibonacci codewords from buf using word-at-a-
// time scanning: 64 bits are loaded per step and the (v>>1)&v trick of
// Figure 7(c) locates the "11" terminators, so the scanner touches memory
// once per word instead of once per bit (the vectorized variable-width
// unpack of Section III-A.2).
func UnpackFibonacci(buf []byte, n int) ([]uint64, error) {
	out := make([]uint64, 0, n)
	// Local copy: prove cannot carry len() facts across loads of a
	// package-level slice, so indexing fibNumbers directly keeps a bounds
	// check per digit.
	fibs := fibNumbers
	var (
		cur     uint64 // value being accumulated
		digit   int    // next Zeckendorf digit index
		prevBit uint64 // last bit of the previous word (carry for "11")
	)
	totalBits := len(buf) * 8
	pos := 0
	for pos < totalBits && len(out) < n {
		// Load up to 64 bits MSB-first from the byte stream.
		w, nb := loadWordMSB(buf, pos)
		// Scan the word's bits from its MSB.
		for i := 0; i < nb && len(out) < n; i++ {
			bit := (w >> uint(63-i)) & 1
			if bit == 1 && prevBit == 1 {
				out = append(out, cur)
				cur, digit, prevBit = 0, 0, 0
				continue
			}
			if bit == 1 {
				if digit >= len(fibs) {
					return nil, ErrBadFibStream
				}
				cur += fibs[digit]
			}
			digit++
			prevBit = bit
		}
		pos += nb
	}
	if len(out) < n {
		return nil, ErrBadFibStream
	}
	return out, nil
}

// loadWordMSB loads up to 64 bits starting at absolute bit position pos,
// left-aligned (first bit in the MSB). It returns the word and how many
// valid bits it holds; a position outside the buffer yields (0, 0). The
// byteOff guard plus constant windows into the fixed staging array keep
// the load bounds-check-free.
//
//etsqp:nobce
func loadWordMSB(buf []byte, pos int) (uint64, int) {
	byteOff := pos / 8
	bitOff := uint(pos % 8)
	if byteOff < 0 || byteOff >= len(buf) {
		return 0, 0
	}
	var tmp [9]byte
	copy(tmp[:], buf[byteOff:])
	w := binary.BigEndian.Uint64(tmp[0:8])
	if bitOff > 0 {
		w = w<<bitOff | uint64(tmp[8])>>(8-bitOff)
	}
	valid := len(buf)*8 - pos
	if valid > 64 {
		valid = 64
	}
	return w, valid
}

// fibDict is the per-byte terminator dictionary of Figure 7: indexed by
// (carry-in, byte) it yields the number of codeword terminators in the
// byte and the carry-out. The carry is 1 when the byte ends in an
// unconsumed 1 bit (a terminator consumes both of its 1s).
var fibDict = func() (d [2][256]struct{ count, carry uint8 }) {
	for carry := 0; carry < 2; carry++ {
		for b := 0; b < 256; b++ {
			prev := uint8(carry)
			var count uint8
			for i := 7; i >= 0; i-- {
				bit := uint8(b>>uint(i)) & 1
				if bit == 1 && prev == 1 {
					count++
					prev = 0
				} else {
					prev = bit
				}
			}
			d[carry][b] = struct{ count, carry uint8 }{count, prev}
		}
	}
	return d
}()

// CountFibTerminators returns the number of complete codewords in buf —
// the separator count the core-level splitter uses to find codeword
// boundaries in a page slice without decoding values (Section III-C).
// It consumes one dictionary lookup per byte, the vectorizable analogue
// of the shuffle-index dictionary in Figure 7. Masking the carry to one
// bit proves both dictionary indexes in range, so the loop is a pure
// load/add chain.
//
//etsqp:hotpath
//etsqp:nobce
func CountFibTerminators(buf []byte) int {
	count := 0
	carry := uint8(0)
	for _, b := range buf {
		e := fibDict[carry&1][b]
		count += int(e.count)
		carry = e.carry
	}
	return count
}

// UnpackFibonacciScalar is the bit-at-a-time reference decoder used by
// correctness tests and as the Serial baseline for variable widths.
func UnpackFibonacciScalar(buf []byte, n int) ([]uint64, error) {
	r := bitio.NewReader(buf)
	out := make([]uint64, 0, n)
	fibs := fibNumbers
	var cur uint64
	digit := 0
	prev := uint(0)
	for len(out) < n {
		b, err := r.ReadBit()
		if err != nil {
			return nil, ErrBadFibStream
		}
		if b == 1 && prev == 1 {
			out = append(out, cur)
			cur, digit, prev = 0, 0, 0
			continue
		}
		if b == 1 {
			if digit >= len(fibs) {
				return nil, ErrBadFibStream
			}
			cur += fibs[digit]
		}
		digit++
		prev = b
	}
	return out, nil
}
