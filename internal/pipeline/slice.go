package pipeline

import (
	"etsqp/internal/obs"
	"etsqp/internal/storage"
)

// Slice is one unit of core-level work: either a whole page pair or a
// row range of one (Section III-C / Figure 8).
type Slice struct {
	Pair     storage.PagePair
	StartRow int // inclusive
	EndRow   int // exclusive
	// Dependent is true when StartRow > 0: decoding needs the prefix sum
	// of the preceding slice of the same page (the P1S2-waits-for-P1S1
	// dependency of Figure 8).
	Dependent bool
}

// Rows returns the number of rows covered by the slice.
func (s Slice) Rows() int { return s.EndRow - s.StartRow }

// SplitPages distributes page pairs to `workers` pipelines. Following the
// paper's scheduler: when there are at least as many pages as workers,
// pages are dealt whole (no slice dependencies, no idle cores); only when
// pages are scarce is each page cut into at most ceil(workers/#pages)
// slices so every core gets work.
//
// Slice boundaries are aligned to 8-element multiples so constant-width
// slices start on whole unpack vectors (same bits per element, as the
// paper requires for constant packing widths).
func SplitPages(pairs []storage.PagePair, workers int) [][]Slice {
	if workers < 1 {
		workers = 1
	}
	out := make([][]Slice, workers)
	if len(pairs) == 0 {
		return out
	}
	if len(pairs) >= workers {
		// Deal whole pages round-robin.
		for i, pp := range pairs {
			w := i % workers
			out[w] = append(out[w], Slice{Pair: pp, StartRow: 0, EndRow: pp.Count()})
		}
		obs.PipelineSlices.Add(int64(len(pairs)))
		return out
	}
	// Fewer pages than workers: split each page into at most
	// ceil(workers/#pages) slices.
	perPage := (workers + len(pairs) - 1) / len(pairs)
	w := 0
	for _, pp := range pairs {
		for _, sl := range SplitPage(pp, perPage) {
			out[w%workers] = append(out[w%workers], sl)
			w++
		}
	}
	return out
}

// SplitPage cuts one page pair into up to n row-aligned slices.
func SplitPage(pp storage.PagePair, n int) []Slice {
	rows := pp.Count()
	if n < 1 {
		n = 1
	}
	if n > rows {
		n = rows
	}
	if n <= 1 || rows == 0 {
		obs.PipelineSlices.Inc()
		return []Slice{{Pair: pp, StartRow: 0, EndRow: rows}}
	}
	var out []Slice
	per := rows / n
	// Align interior boundaries to 8-row multiples for vector-friendly
	// starts; the final slice absorbs the remainder.
	start := 0
	for i := 0; i < n-1; i++ {
		end := start + per
		end -= end % 8
		if end <= start {
			continue
		}
		out = append(out, Slice{Pair: pp, StartRow: start, EndRow: end, Dependent: start > 0})
		start = end
	}
	if start < rows {
		out = append(out, Slice{Pair: pp, StartRow: start, EndRow: rows, Dependent: start > 0})
	}
	obs.PipelineSlices.Add(int64(len(out)))
	return out
}
