// FuzzFlatten drives the Repeat flatten path with arbitrary Delta-Repeat
// pages and cross-checks every route that materializes or aggregates
// them: Flatten vs FlattenInto vs FlattenRange windows, and the fusion
// closed forms against scalar sums of the flattened values. External
// test package: fusion imports pipeline, so the cross-check cannot live
// in-package.
package pipeline_test

import (
	"encoding/binary"
	"testing"

	"etsqp/internal/encoding"
	"etsqp/internal/fusion"
	"etsqp/internal/pipeline"
)

// parseFlattenInput maps fuzz bytes onto a Delta-Repeat page: 4 bytes of
// signed seed value, then one run per 3-byte group (signed delta byte
// scaled by a shift, count byte + 1). Totals are capped so a hostile
// input cannot allocate unbounded output.
func parseFlattenInput(data []byte) (int64, []encoding.DeltaRun) {
	var first int64
	if len(data) >= 4 {
		first = int64(int32(binary.LittleEndian.Uint32(data[:4])))
		data = data[4:]
	}
	var pairs []encoding.DeltaRun
	total := 1
	for len(data) >= 3 && len(pairs) < 256 {
		delta := int64(int8(data[0])) << (uint(data[1]) & 7)
		count := int(data[2]) + 1
		if total+count > 1<<16 {
			break
		}
		total += count
		pairs = append(pairs, encoding.DeltaRun{Delta: delta, Count: count})
		data = data[3:]
	}
	return first, pairs
}

func scalarSum(vals []int64) int64 {
	var s int64
	for _, v := range vals {
		s += v
	}
	return s
}

func FuzzFlatten(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 0, 0, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		first, pairs := parseFlattenInput(data)
		n := 1
		for _, p := range pairs {
			n += p.Count
		}
		out := pipeline.Flatten(first, pairs)
		if len(out) != n {
			t.Fatalf("Flatten returned %d values, want %d", len(out), n)
		}
		if out[0] != first {
			t.Fatalf("Flatten[0] = %d, want first %d", out[0], first)
		}
		dst := make([]int64, n)
		if w := pipeline.FlattenInto(dst, first, pairs); w != n {
			t.Fatalf("FlattenInto wrote %d values, want %d", w, n)
		}
		for i := range out {
			if dst[i] != out[i] {
				t.Fatalf("FlattenInto[%d] = %d, Flatten = %d", i, dst[i], out[i])
			}
		}
		windows := [][2]int{{0, n}, {n / 3, 2*n/3 + 1}, {n - 1, n}, {n / 2, n / 2}}
		for _, w := range windows {
			from, to := w[0], w[1]
			if to > n {
				to = n
			}
			rng := pipeline.FlattenRange(first, pairs, from, to)
			want := out[from:to]
			if to <= from {
				want = nil
			}
			if len(rng) != len(want) {
				t.Fatalf("FlattenRange(%d,%d) returned %d values, want %d", from, to, len(rng), len(want))
			}
			for i := range rng {
				if rng[i] != want[i] {
					t.Fatalf("FlattenRange(%d,%d)[%d] = %d, want %d", from, to, i, rng[i], want[i])
				}
			}
			if s, err := fusion.SumRange(first, pairs, from, to); err == nil && s != scalarSum(want) {
				t.Fatalf("fusion.SumRange(%d,%d) = %d, scalar %d", from, to, s, scalarSum(want))
			}
		}
		if s, err := fusion.Sum(first, pairs); err == nil && s != scalarSum(out) {
			t.Fatalf("fusion.Sum = %d, scalar %d", s, scalarSum(out))
		}
	})
}
