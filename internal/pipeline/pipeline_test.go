package pipeline

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"etsqp/internal/encoding"
	"etsqp/internal/encoding/ts2diff"
	"etsqp/internal/storage"
)

// seriesWithWidth builds n values whose TS2DIFF packing width is exactly w.
func seriesWithWidth(n int, w uint, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	cur := int64(1000)
	maxDelta := int64(1)<<w - 1
	for i := range vals {
		vals[i] = cur
		var d int64
		if w == 0 {
			d = 7
		} else {
			d = rng.Int63n(maxDelta + 1)
			if i == 1 {
				d = maxDelta // force the full width at least once
			}
		}
		cur += d
	}
	return vals
}

func TestDecodeBlockMatchesScalarAllWidths(t *testing.T) {
	for w := uint(0); w <= 32; w++ {
		vals := seriesWithWidth(1000, w, int64(w)+1)
		b, err := ts2diff.Encode(vals, ts2diff.Order1)
		if err != nil {
			t.Fatal(err)
		}
		if w > 0 && b.Width != w {
			t.Fatalf("width %d: block width %d", w, b.Width)
		}
		want, err := b.Decode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBlock(b)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("width %d: first mismatch at %d: got %d want %d", w, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDecodeBlockOrder2(t *testing.T) {
	// Near-regular timestamps: order-2 width stays small.
	ts := make([]int64, 5000)
	rng := rand.New(rand.NewSource(7))
	cur := int64(1_700_000_000_000)
	interval := int64(1000)
	for i := range ts {
		ts[i] = cur
		interval += rng.Int63n(5) - 2
		cur += interval
	}
	b, err := ts2diff.Encode(ts, ts2diff.Order2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := b.Decode()
	got, err := DecodeBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("order-2 vector decode mismatch")
	}
}

func TestDecodeBlockSmallCounts(t *testing.T) {
	for n := 0; n <= 40; n++ {
		vals := seriesWithWidth(n, 10, int64(n))
		b, err := ts2diff.Encode(vals, ts2diff.Order1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBlock(b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n == 0 {
			if len(got) != 0 {
				t.Fatalf("n=0 got %v", got)
			}
			continue
		}
		if !reflect.DeepEqual(got, vals) {
			t.Fatalf("n=%d mismatch", n)
		}
	}
}

func TestDecodeBlockQuick(t *testing.T) {
	f := func(raw []int64) bool {
		for i := range raw {
			raw[i] %= 1 << 40
		}
		b, err := ts2diff.Encode(raw, ts2diff.Order1)
		if err != nil {
			return false
		}
		got, err := DecodeBlock(b)
		if err != nil {
			return false
		}
		if len(raw) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBlockIntoValidation(t *testing.T) {
	b, _ := ts2diff.Encode([]int64{1, 2, 3}, ts2diff.Order1)
	if err := DecodeBlockInto(make([]int64, 2), b); err == nil {
		t.Fatal("wrong dst length must fail")
	}
	bad := *b
	bad.Order = 9
	if err := DecodeBlockInto(make([]int64, 3), &bad); err == nil {
		t.Fatal("bad order must fail")
	}
}

func TestDecodeDeltas(t *testing.T) {
	for _, w := range []uint{1, 5, 10, 13, 25, 27, 32} {
		vals := seriesWithWidth(500, w, int64(w))
		b, _ := ts2diff.Encode(vals, ts2diff.Order1)
		deltas, err := DecodeDeltas(b.Packed, b.NumPacked(), b.Width, b.MinBase)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		_, want := encoding.DeltaEncode(vals)
		if !reflect.DeepEqual(deltas, want) {
			t.Fatalf("w=%d: delta mismatch", w)
		}
	}
	// width 0
	got, err := DecodeDeltas(nil, 5, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range got {
		if d != 42 {
			t.Fatalf("got %v", got)
		}
	}
}

func TestSumPacked(t *testing.T) {
	for _, w := range []uint{1, 3, 10, 20, 25, 30} {
		vals := seriesWithWidth(700, w, int64(w)*3)
		b, _ := ts2diff.Encode(vals, ts2diff.Order1)
		got, err := SumPacked(b.Packed, b.NumPacked(), b.Width)
		if err != nil {
			t.Fatal(err)
		}
		packed, _ := encoding.Unpack(b.Packed, b.NumPacked(), b.Width)
		var want uint64
		for _, p := range packed {
			want += p
		}
		if got != want {
			t.Fatalf("w=%d: sum %d want %d", w, got, want)
		}
	}
	if s, err := SumPacked(nil, 0, 10); err != nil || s != 0 {
		t.Fatalf("empty sum: %d/%v", s, err)
	}
}

func TestChooseNv(t *testing.T) {
	// Paper example: 10-bit packing, 32-bit lanes → n_v ≈ 4.
	if got := ChooseNv(10, 32); got != 5 && got != 4 {
		t.Fatalf("ChooseNv(10,32) = %d, want ~4", got)
	}
	// 25-bit example: sqrt(32/25*5.5) ≈ 2.65 → 3.
	if got := ChooseNv(25, 32); got < 2 || got > 4 {
		t.Fatalf("ChooseNv(25,32) = %d, want ~3", got)
	}
	if ChooseNv(0, 32) != 1 {
		t.Fatal("width 0 must use a single vector")
	}
	// Wider inputs need fewer vectors than narrow ones.
	if ChooseNv(1, 32) < ChooseNv(25, 32) {
		t.Fatal("narrow widths should choose more vectors")
	}
	// Overflow clamp: width+log2(8*nv) <= 32 for every width on the
	// narrow path.
	for w := uint(1); w <= 25; w++ {
		nv := ChooseNv(w, 32)
		elems := 8 * nv
		if uint64(elems)*(uint64(1)<<w-1) >= 1<<32 {
			t.Fatalf("width %d: nv %d allows 32-bit overflow", w, nv)
		}
	}
}

func TestPlanTables(t *testing.T) {
	ResetPlanCache()
	p, err := PlanFor(10)
	if err != nil {
		t.Fatal(err)
	}
	if p.wide || p.Nv < 1 || p.BlockElems != 8*p.Nv {
		t.Fatalf("plan: %+v", p)
	}
	if p.BlockBytes != p.BlockElems*10/8 {
		t.Fatalf("BlockBytes = %d", p.BlockBytes)
	}
	// Cached instance is reused.
	if p2, err := PlanFor(10); err != nil || p2 != p {
		t.Fatalf("plan not cached (err %v)", err)
	}
	// Wide plan has no tables.
	pw, err := PlanFor(30)
	if err != nil {
		t.Fatal(err)
	}
	if !pw.wide || pw.gatherIdx != nil {
		t.Fatalf("wide plan: %+v", pw)
	}
	// A corrupt header width surfaces as an error, never a panic.
	if _, err := PlanFor(33); err == nil {
		t.Fatal("width > 32 must return ErrWidthRange")
	}
}

func TestUnpackFibonacci(t *testing.T) {
	f := func(raw []uint16) bool {
		vals := make([]uint64, len(raw))
		for i, r := range raw {
			vals[i] = uint64(r) + 1
		}
		buf, err := encoding.FibonacciEncodeAll(vals)
		if err != nil {
			return false
		}
		got, err := UnpackFibonacci(buf, len(vals))
		if err != nil {
			return false
		}
		ref, err := UnpackFibonacciScalar(buf, len(vals))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, vals) && reflect.DeepEqual(ref, vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackFibonacciTruncated(t *testing.T) {
	buf, _ := encoding.FibonacciEncodeAll([]uint64{5, 9})
	if _, err := UnpackFibonacci(buf, 3); err == nil {
		t.Fatal("expected error for missing codewords")
	}
	if _, err := UnpackFibonacciScalar(buf, 3); err == nil {
		t.Fatal("expected error for missing codewords (scalar)")
	}
}

func TestCountFibTerminators(t *testing.T) {
	vals := []uint64{1, 2, 3, 100, 7, 1, 1, 900000}
	buf, _ := encoding.FibonacciEncodeAll(vals)
	if got := CountFibTerminators(buf); got != len(vals) {
		t.Fatalf("got %d want %d", got, len(vals))
	}
	if got := CountFibTerminators(nil); got != 0 {
		t.Fatalf("empty: %d", got)
	}
}

func TestFlatten(t *testing.T) {
	pairs := []encoding.DeltaRun{{Delta: 5, Count: 3}, {Delta: 0, Count: 4}, {Delta: -2, Count: 2}}
	got := Flatten(10, pairs)
	want := []int64{10, 15, 20, 25, 25, 25, 25, 25, 23, 21}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestFlattenMatchesEncoding(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		for i := range vals {
			vals[i] %= 1 << 40
		}
		first, pairs := encoding.DeltaRLEEncode(vals)
		return reflect.DeepEqual(Flatten(first, pairs), vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFlattenRange(t *testing.T) {
	vals := []int64{10, 15, 20, 25, 25, 25, 25, 25, 23, 21}
	first, pairs := encoding.DeltaRLEEncode(vals)
	for from := 0; from <= len(vals); from++ {
		for to := from; to <= len(vals); to++ {
			got := FlattenRange(first, pairs, from, to)
			want := vals[from:to]
			if len(want) == 0 {
				if len(got) != 0 {
					t.Fatalf("[%d,%d): got %v", from, to, got)
				}
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("[%d,%d): got %v want %v", from, to, got, want)
			}
		}
	}
}

func TestTheoryEstimates(t *testing.T) {
	// T_avg must be positive and reach a minimum near ChooseNv's pick.
	best, bestNv := 1e18, 0
	for nv := 1; nv <= 16; nv++ {
		v := TAvg(10, 32, 256, nv)
		if v <= 0 {
			t.Fatalf("TAvg(nv=%d) = %f", nv, v)
		}
		if v < best {
			best, bestNv = v, nv
		}
	}
	chosen := ChooseNv(10, 32)
	if d := bestNv - chosen; d < -1 || d > 1 {
		t.Fatalf("TAvg minimum at nv=%d but ChooseNv=%d", bestNv, chosen)
	}
	// Theorem 2's worked example: ~15x with 16 threads on 10-bit data.
	r := AccelerationRatio(10, 32, 256, 16, 4)
	if r < 5 || r > 200 {
		t.Fatalf("acceleration ratio %f out of plausible range", r)
	}
	// More cores → more acceleration.
	if AccelerationRatio(10, 32, 256, 8, 4) >= r {
		t.Fatal("ratio must grow with cores")
	}
	if AccelerationRatio(0, 32, 256, 8, 4) != 1 {
		t.Fatal("width 0 ratio must be 1")
	}
}

func TestSplitPagesWholePagesWhenEnough(t *testing.T) {
	pairs := makePairs(t, 8, 100)
	got := SplitPages(pairs, 4)
	if len(got) != 4 {
		t.Fatalf("workers = %d", len(got))
	}
	total := 0
	for _, ws := range got {
		for _, sl := range ws {
			if sl.Dependent || sl.StartRow != 0 {
				t.Fatal("whole pages must not be sliced")
			}
			total += sl.Rows()
		}
	}
	if total != 800 {
		t.Fatalf("rows covered = %d", total)
	}
}

func TestSplitPagesSlicesWhenScarce(t *testing.T) {
	pairs := makePairs(t, 2, 1000)
	got := SplitPages(pairs, 8)
	nSlices := 0
	rows := 0
	for _, ws := range got {
		for _, sl := range ws {
			nSlices++
			rows += sl.Rows()
			if sl.StartRow%8 != 0 {
				t.Fatalf("slice start %d not aligned", sl.StartRow)
			}
			if (sl.StartRow > 0) != sl.Dependent {
				t.Fatal("Dependent flag wrong")
			}
		}
	}
	if rows != 2000 {
		t.Fatalf("rows covered = %d", rows)
	}
	if nSlices < 5 {
		t.Fatalf("expected each page split into ~4 slices, got %d total", nSlices)
	}
}

func TestSplitPagesEdgeCases(t *testing.T) {
	if got := SplitPages(nil, 4); len(got) != 4 {
		t.Fatal("empty input must still return worker lists")
	}
	pairs := makePairs(t, 1, 5)
	got := SplitPages(pairs, 0)
	if len(got) != 1 {
		t.Fatal("workers < 1 clamps to 1")
	}
	// Page smaller than worker count.
	got = SplitPages(makePairs(t, 1, 3), 16)
	rows := 0
	for _, ws := range got {
		for _, sl := range ws {
			rows += sl.Rows()
		}
	}
	if rows != 3 {
		t.Fatalf("rows = %d", rows)
	}
}

func makePairs(t *testing.T, nPages, rowsPer int) []storage.PagePair {
	t.Helper()
	n := nPages * rowsPer
	ts := make([]int64, n)
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		ts[i] = int64(i) * 1000
		vals[i] = int64(i % 100)
	}
	pairs, err := storage.EncodePages(ts, vals, storage.Options{PageSize: rowsPer})
	if err != nil {
		t.Fatal(err)
	}
	return pairs
}

func TestDecodeBlock512MatchesScalar(t *testing.T) {
	for w := uint(0); w <= 32; w++ {
		vals := seriesWithWidth(1500, w, int64(w)+77)
		b, err := ts2diff.Encode(vals, ts2diff.Order1)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := b.Decode()
		got, err := DecodeBlock512(b)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("width %d: 512-bit decode mismatch", w)
		}
	}
}

func TestChooseNv512(t *testing.T) {
	if ChooseNv512(0, 32) != 1 {
		t.Fatal("width 0 must use one vector")
	}
	// Overflow clamp at 16 lanes: width + log2(16*nv) <= 32.
	for w := uint(1); w <= 25; w++ {
		nv := ChooseNv512(w, 32)
		if uint64(16*nv)*(uint64(1)<<w-1) >= 1<<32 {
			t.Fatalf("width %d: nv %d allows overflow", w, nv)
		}
	}
	if _, err := PlanFor512(40); err == nil {
		t.Fatal("width > 32 must return ErrWidthRange")
	}
}

func TestCompiledDecoderMatches(t *testing.T) {
	for _, w := range []uint{0, 3, 10, 25, 30} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			vals := seriesWithWidth(n, w, int64(w)*7+int64(n))
			b, err := ts2diff.Encode(vals, ts2diff.Order1)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := Compile(b)
			if err != nil {
				t.Fatalf("w=%d n=%d: %v", w, n, err)
			}
			if dec.Count != n {
				t.Fatalf("count = %d", dec.Count)
			}
			dst := make([]int64, n)
			if err := dec.Decode(dst); err != nil {
				t.Fatal(err)
			}
			if n > 0 && !reflect.DeepEqual(dst, vals) {
				t.Fatalf("w=%d n=%d: compiled decode mismatch", w, n)
			}
			// Repeated invocation must stay correct (bound state immutable).
			if err := dec.Decode(dst); err != nil {
				t.Fatal(err)
			}
			if n > 0 && !reflect.DeepEqual(dst, vals) {
				t.Fatalf("w=%d n=%d: second decode mismatch", w, n)
			}
		}
	}
	// Order-2 delegates.
	ts := make([]int64, 300)
	for i := range ts {
		ts[i] = int64(i) * 997
	}
	b2, _ := ts2diff.Encode(ts, ts2diff.Order2)
	dec, err := Compile(b2)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int64, 300)
	if err := dec.Decode(dst); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst, ts) {
		t.Fatal("order-2 compiled decode mismatch")
	}
	// Validation.
	if err := dec.Decode(make([]int64, 2)); err == nil {
		t.Fatal("wrong dst length must fail")
	}
	bad := *b2
	bad.Order = 7
	if _, err := Compile(&bad); err == nil {
		t.Fatal("bad order must fail")
	}
}

func BenchmarkCompiledDecoder(b *testing.B) {
	vals := seriesWithWidthB(65536, 10)
	blk, _ := ts2diff.Encode(vals, ts2diff.Order1)
	dec, err := Compile(blk)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]int64, blk.Count)
	b.SetBytes(int64(len(vals) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := dec.Decode(dst); err != nil {
			b.Fatal(err)
		}
	}
}

func TestUnpackFibonacciParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(5000) + 1
		vals := make([]uint64, n)
		for i := range vals {
			// Bias toward 1s and 2s: "11"-dense payloads stress the
			// run-of-ones ambiguity the boundary pre-scan must resolve.
			switch rng.Intn(4) {
			case 0:
				vals[i] = 1
			case 1:
				vals[i] = 2
			default:
				vals[i] = uint64(rng.Intn(100000)) + 1
			}
		}
		buf, err := encoding.FibonacciEncodeAll(vals)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 4, 8} {
			got, err := UnpackFibonacciParallel(buf, n, workers)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if !reflect.DeepEqual(got, vals) {
				t.Fatalf("trial %d workers %d: mismatch", trial, workers)
			}
		}
	}
}

func TestUnpackFibonacciParallelAllOnes(t *testing.T) {
	// The worst case: every codeword is "11".
	n := 1000
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = 1
	}
	buf, _ := encoding.FibonacciEncodeAll(vals)
	got, err := UnpackFibonacciParallel(buf, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatal("all-ones payload mismatch")
	}
}

func TestUnpackFibonacciParallelTruncated(t *testing.T) {
	buf, _ := encoding.FibonacciEncodeAll([]uint64{5, 9, 1, 1, 7, 3, 2, 8})
	if _, err := UnpackFibonacciParallel(buf, 100, 4); err == nil {
		t.Fatal("claiming more codewords than present must fail")
	}
}

func TestRangeScanner(t *testing.T) {
	for _, w := range []uint{0, 4, 10, 22, 30} {
		vals := seriesWithWidth(2000, w, int64(w)+3)
		b, err := ts2diff.Encode(vals, ts2diff.Order1)
		if err != nil {
			t.Fatal(err)
		}
		for _, start := range []int{0, 1, 7, 8, 513, 1999, 2000} {
			s, err := NewRangeScanner(b, start)
			if err != nil {
				t.Fatalf("w=%d start=%d: %v", w, start, err)
			}
			var got []int64
			buf := make([]int64, 129) // odd chunk size crosses alignments
			for {
				k, err := s.Next(buf)
				if err != nil {
					t.Fatalf("w=%d start=%d: %v", w, start, err)
				}
				if k == 0 {
					break
				}
				got = append(got, buf[:k]...)
			}
			want := vals[start:]
			if len(got) != len(want) {
				t.Fatalf("w=%d start=%d: rows %d want %d", w, start, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("w=%d start=%d: row %d got %d want %d", w, start, i, got[i], want[i])
				}
			}
		}
	}
}

func TestRangeScannerOrder2(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ts := make([]int64, 1500)
	cur := int64(5000)
	interval := int64(100)
	for i := range ts {
		ts[i] = cur
		interval += rng.Int63n(9) - 4
		cur += interval
	}
	b, err := ts2diff.Encode(ts, ts2diff.Order2)
	if err != nil {
		t.Fatal(err)
	}
	for _, start := range []int{0, 1, 2, 3, 700, 1499, 1500} {
		s, err := NewRangeScanner(b, start)
		if err != nil {
			t.Fatalf("start=%d: %v", start, err)
		}
		var got []int64
		buf := make([]int64, 97)
		for {
			k, err := s.Next(buf)
			if err != nil {
				t.Fatalf("start=%d: %v", start, err)
			}
			if k == 0 {
				break
			}
			got = append(got, buf[:k]...)
		}
		want := ts[start:]
		if len(got) != len(want) {
			t.Fatalf("start=%d: rows %d want %d", start, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("start=%d: row %d got %d want %d", start, i, got[i], want[i])
			}
		}
	}
}

func TestRangeScannerValidation(t *testing.T) {
	bad := &ts2diff.Block{Order: 9, Count: 3}
	if _, err := NewRangeScanner(bad, 0); err == nil {
		t.Fatal("unknown order must be rejected")
	}
	b2, _ := ts2diff.Encode([]int64{1, 2, 3}, ts2diff.Order1)
	if _, err := NewRangeScanner(b2, -1); err == nil {
		t.Fatal("negative start must fail")
	}
	if _, err := NewRangeScanner(b2, 4); err == nil {
		t.Fatal("start past end must fail")
	}
	s, _ := NewRangeScanner(b2, 3)
	if k, err := s.Next(make([]int64, 4)); err != nil || k != 0 {
		t.Fatalf("exhausted scanner: %d/%v", k, err)
	}
	if s.Row() != 3 {
		t.Fatalf("row = %d", s.Row())
	}
}
