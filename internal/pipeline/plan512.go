package pipeline

import (
	"fmt"
	"math"
	"sync"

	"etsqp/internal/bitio"
	"etsqp/internal/encoding/ts2diff"
	"etsqp/internal/simd"
)

// MaxNv512 is ChooseNv512's register-budget clamp, used to size
// stack-resident scratch vectors in the 512-bit hot loop.
const MaxNv512 = 32

// Plan512 is the AVX-512 instantiation of the unpacking plan: the same
// layout, tables and partial-sum structure as Plan, at sixteen 32-bit
// lanes per vector. It demonstrates the paper's claim that the design
// extends to other register quantities (Section II-B); the bench harness
// compares both widths.
type Plan512 struct {
	Width      uint
	Nv         int
	BlockElems int // 16 * Nv
	BlockBytes int

	gatherIdx []*[64]int32
	shift     []simd.U32x16
	mask      simd.U32x16
	wide      bool
}

var (
	plan512Mu    sync.Mutex
	plan512Cache [33]*Plan512
)

// ChooseNv512 applies Proposition 1 at the 512-bit geometry. The lane
// count doubles, so the overflow clamp tightens by one bit.
func ChooseNv512(width, wPrime uint) int {
	if width == 0 {
		return 1
	}
	ideal := int(math.Round(math.Sqrt(float64(wPrime) / float64(width) * (costPrefix - costAdd) / costUnpack)))
	if ideal < 1 {
		ideal = 1
	}
	if ideal > MaxNv512 {
		ideal = MaxNv512 // n_v <= 32 under AVX-512 (Section III-A)
	}
	for ideal > 1 {
		if width+uint(math.Ceil(math.Log2(float64(16*ideal)))) <= 32 {
			break
		}
		ideal--
	}
	return ideal
}

// PlanFor512 returns the cached 512-bit plan for a width in [0, 32], or
// ErrWidthRange for wider (corrupt) widths.
//
//etsqp:coldpath
func PlanFor512(width uint) (*Plan512, error) {
	if width > 32 {
		return nil, ErrWidthRange
	}
	plan512Mu.Lock()
	defer plan512Mu.Unlock()
	if p := plan512Cache[width]; p != nil {
		return p, nil
	}
	p := buildPlan512(width)
	plan512Cache[width] = p
	return p, nil
}

func buildPlan512(width uint) *Plan512 {
	p := &Plan512{Width: width, Nv: ChooseNv512(width, 32)}
	p.BlockElems = simd.Lanes32x16 * p.Nv
	p.BlockBytes = p.BlockElems * int(width) / 8
	p.wide = width > MaxNarrowWidth
	if width == 0 || p.wide {
		return p
	}
	p.mask = simd.Broadcast32x16(uint32(1)<<width - 1)
	p.gatherIdx = make([]*[64]int32, p.Nv)
	p.shift = make([]simd.U32x16, p.Nv)
	for j := 0; j < p.Nv; j++ {
		idx := new([64]int32)
		var shift simd.U32x16
		for l := 0; l < simd.Lanes32x16; l++ {
			e := l*p.Nv + j
			startBit := e * int(width)
			fb := startBit / 8
			o := uint(startBit - fb*8)
			for b := 0; b < 4; b++ {
				idx[l*4+b] = int32(fb + 3 - b)
			}
			shift[l] = 32 - uint32(o) - uint32(width)
		}
		p.gatherIdx[j] = idx
		p.shift[j] = shift
	}
	return p
}

// Check verifies the 512-bit plan tables the same way (*Plan).Check does
// at 256 bits; TestPlanTableInvariants runs it for every accepted width.
func (p *Plan512) Check() error {
	if p.Nv < 1 || p.Nv > MaxNv512 {
		return fmt.Errorf("plan512 width %d: Nv %d outside [1, %d]", p.Width, p.Nv, MaxNv512)
	}
	if p.BlockElems != simd.Lanes32x16*p.Nv {
		return fmt.Errorf("plan512 width %d: BlockElems %d != 16*Nv", p.Width, p.BlockElems)
	}
	if p.BlockBytes*8 != p.BlockElems*int(p.Width) {
		return fmt.Errorf("plan512 width %d: BlockBytes %d is not BlockElems*Width/8", p.Width, p.BlockBytes)
	}
	if p.Width == 0 || p.wide {
		if p.gatherIdx != nil || p.shift != nil {
			return fmt.Errorf("plan512 width %d: table built for degenerate/wide plan", p.Width)
		}
		return nil
	}
	if len(p.gatherIdx) != p.Nv || len(p.shift) != p.Nv {
		return fmt.Errorf("plan512 width %d: %d gather / %d shift tables for Nv %d", p.Width, len(p.gatherIdx), len(p.shift), p.Nv)
	}
	if p.mask != simd.Broadcast32x16(1<<p.Width-1) {
		return fmt.Errorf("plan512 width %d: bad field mask", p.Width)
	}
	maxByte := p.BlockBytes + 2
	for j, idx := range p.gatherIdx {
		if idx == nil {
			return fmt.Errorf("plan512 width %d: nil gather table %d", p.Width, j)
		}
		for b, off := range idx {
			if off < 0 || int(off) > maxByte {
				return fmt.Errorf("plan512 width %d: gather[%d][%d] = %d outside window [0, %d]", p.Width, j, b, off, maxByte)
			}
		}
		for l := 0; l < simd.Lanes32x16; l++ {
			if s := p.shift[j][l]; s >= 32 {
				return fmt.Errorf("plan512 width %d: shift[%d][%d] = %d leaves no field bits", p.Width, j, l, s)
			}
		}
	}
	return nil
}

// UnpackVec512 runs the gather/shift/mask sequence at 512 bits.
//
//etsqp:hotpath
func (p *Plan512) UnpackVec512(window []byte, j int) simd.U32x16 {
	g := simd.GatherBytes64(window, p.gatherIdx[j])
	return simd.And32x16(simd.Srlv32x16(simd.ToU32x16(g), p.shift[j]), p.mask)
}

// DecodeBlock512 decodes a TS2DIFF order-1 block with the 512-bit
// pipeline; other shapes fall back to the 256-bit path.
func DecodeBlock512(b *ts2diff.Block) ([]int64, error) {
	if b.Order != ts2diff.Order1 || b.Count == 0 {
		return DecodeBlock(b)
	}
	out := make([]int64, b.Count)
	out[0] = b.First
	m := b.NumPacked()
	if m == 0 {
		return out, nil
	}
	width := b.Width
	if width == 0 || width > MaxNarrowWidth {
		if err := accumulateFrom(out, b.First, b.Packed, m, width, b.MinBase); err != nil {
			return nil, err
		}
		return out, nil
	}
	p, err := PlanFor512(width)
	if err != nil {
		return nil, err
	}
	minBase := b.MinBase
	var rampBase [simd.Lanes32x16]int64
	for l := 0; l < simd.Lanes32x16; l++ {
		rampBase[l] = minBase * int64(l*p.Nv)
	}
	var vecsArr [MaxNv512]simd.U32x16
	vecs := vecsArr[:p.Nv]
	v0 := b.First
	e := 0
	for ; e+p.BlockElems <= m; e += p.BlockElems {
		window := b.Packed[e*int(width)/8:]
		for j := 0; j < p.Nv; j++ {
			vecs[j] = p.UnpackVec512(window, j)
		}
		for j := 1; j < p.Nv; j++ {
			vecs[j] = simd.Add32x16(vecs[j-1], vecs[j])
		}
		laneTot := vecs[p.Nv-1]
		prefix := simd.ExclusivePrefixSum32x16(laneTot)
		for j := 0; j < p.Nv; j++ {
			s := simd.Add32x16(vecs[j], prefix)
			base := v0 + minBase*int64(j+1)
			for l := 0; l < simd.Lanes32x16; l++ {
				out[1+e+l*p.Nv+j] = base + rampBase[l] + int64(s[l])
			}
		}
		total := int64(prefix[simd.Lanes32x16-1]) + int64(laneTot[simd.Lanes32x16-1])
		v0 += minBase*int64(p.BlockElems) + total
	}
	if e < m {
		r := bitio.NewReader(b.Packed)
		if err := r.Seek(e * int(width)); err != nil {
			return nil, err
		}
		cur := v0
		for ; e < m; e++ {
			v, err := r.ReadBits(width)
			if err != nil {
				return nil, err
			}
			cur += minBase + int64(v)
			out[1+e] = cur
		}
	}
	return out, nil
}
