// Package pipeline implements the ETSQP decoding pipelines of Section III:
// vectorized constant-width unpacking with a dynamic layout that makes
// Delta recovery SIMD-parallel (Algorithm 1), variable-width Fibonacci
// unpacking, Repeat flattening, and page-to-slice splitting for core-level
// parallelism.
//
// # Layout
//
// A plan processes packed deltas in blocks of BlockElems = 8*Nv elements.
// Element e of a block lands in lane l = e / Nv of unpacked vector
// j = e % Nv, so the Nv deltas that depend on each other sequentially sit
// in the *same lane of consecutive vectors* (the FastLanes-Delta-inspired
// layout of Figure 4(d)). Delta recovery is then Nv-1 vector additions
// (partial sums, Figure 5(b)/6(b)) plus one log-depth lane prefix sum
// (the permutevar8x32 pairs of Algorithm 1 Line 13).
//
// # JIT tables
//
// The paper JIT-compiles each page's decoder once its packing width is
// known (Section III-B). Here PlanFor(width) lazily builds and caches the
// equivalent tables — gather indices (the shuffle index vectors of Figure
// 3(a)), per-lane shift vectors and the field mask — so the hot loop makes
// no per-vector decisions.
package pipeline

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"etsqp/internal/simd"
)

// ErrWidthRange reports a packing width outside the plan table range
// [0, 32]. Widths come from page headers, so an out-of-range value means
// a corrupt page — callers surface the error instead of crashing.
var ErrWidthRange = errors.New("pipeline: width out of range")

// Relative instruction costs used by Proposition 1's n_v choice. The
// ratios follow the paper's worked example (n_v = sqrt(32/10 * 11/2) ≈ 4
// for 10-bit inputs): t_add = 1, t_unpack = t_shuffle + t_or = 2 and
// t_prefix - t_add = 11.
const (
	costAdd    = 1.0
	costUnpack = 2.0
	costPrefix = 12.0
)

// MaxNarrowWidth is the widest field a 32-bit lane can unpack with a
// single 4-byte gather (wider fields span 5 bytes and take the wide path).
const MaxNarrowWidth = 25

// MaxNv is the register-budget clamp of ChooseNv: hot loops size their
// scratch vectors with it so block state lives on the stack.
const MaxNv = 16

// ChooseNv implements Proposition 1: the number of unpacked vectors that
// minimizes the per-value decoding time
//
//	n_v* = round( sqrt( (w'/w) * (t_prefix - t_add) / t_unpack ) )
//
// clamped so a block's worst-case partial sums cannot wrap a 32-bit lane
// (width + log2(8*n_v) <= 32) and to the practical register budget.
func ChooseNv(width, wPrime uint) int {
	if width == 0 {
		return 1
	}
	ideal := int(math.Round(math.Sqrt(float64(wPrime) / float64(width) * (costPrefix - costAdd) / costUnpack)))
	if ideal < 1 {
		ideal = 1
	}
	if ideal > MaxNv {
		ideal = MaxNv // n_v <= 16 on AVX2 machines (Section III-A)
	}
	// Overflow clamp: 8*n_v values of `width` bits each must sum below 2^32.
	for ideal > 1 {
		if width+uint(math.Ceil(math.Log2(float64(8*ideal)))) <= 32 {
			break
		}
		ideal--
	}
	return ideal
}

// Plan holds the JIT-compiled unpack tables for one packing width.
type Plan struct {
	// Width is the packing width; PlanFor rejects widths past 32.
	//
	//etsqp:bounds [0, 32]
	Width uint
	// Nv is the unpacked vectors per block; ChooseNv clamps to [1, MaxNv]
	// and (*Plan).Check enforces the same bound, so rangeflow can prove
	// kernel products like Nv·HSum32(·) stay far inside int64.
	//
	//etsqp:bounds [1, MaxNv]
	Nv int
	// BlockElems is 8 * Nv deltas per block.
	//
	//etsqp:bounds [8, 8*MaxNv]
	BlockElems int
	BlockBytes int // BlockElems * Width / 8 (8*Nv*Width bits is always whole bytes)
	NLoad      int // loaded 256-bit vectors per block (n_ld, for cost models)

	// gatherIdx[j] selects, for each output byte of unpacked vector j,
	// a byte offset relative to the block start (-1 → zero byte). Lane l's
	// four bytes load the big-endian 4-byte window of element l*Nv+j in
	// little-endian lane order, performing the Endian conversion of
	// Algorithm 1 Line 4 in the same shuffle.
	gatherIdx []*[32]int32
	// shift[j] is the per-lane right-shift aligning each field's LSB.
	shift []simd.U32x8
	// mask keeps the low Width bits of every lane.
	mask simd.U32x8
	// ramp[l] = l*Nv, the per-lane element offset used when adding the
	// decoded block to its base value.
	ramp simd.U32x8

	wide bool // widths > MaxNarrowWidth decode via the 8-byte-window path
}

var (
	planMu    sync.Mutex
	planCache [33]*Plan
)

// PlanFor returns the cached plan for a packing width in [0, 32], or
// ErrWidthRange for wider (corrupt) widths. The declared bound makes the
// precondition a boundscontract obligation: callers prove the width is
// narrowed (page-header validation or an explicit guard) before asking
// for tables.
//
//etsqp:bounds width [0, 32]
//etsqp:coldpath
func PlanFor(width uint) (*Plan, error) {
	if width > 32 {
		return nil, ErrWidthRange
	}
	planMu.Lock()
	defer planMu.Unlock()
	if p := planCache[width]; p != nil {
		return p, nil
	}
	p := buildPlan(width)
	planCache[width] = p
	return p, nil
}

func buildPlan(width uint) *Plan {
	p := &Plan{Width: width, Nv: ChooseNv(width, 32)}
	p.BlockElems = 8 * p.Nv
	p.BlockBytes = p.BlockElems * int(width) / 8
	p.NLoad = (p.BlockBytes + simd.WidthBytes - 1) / simd.WidthBytes
	p.wide = width > MaxNarrowWidth
	if width == 0 || p.wide {
		return p
	}
	var m uint32 = 1<<width - 1
	p.mask = simd.Broadcast32(m)
	for l := 0; l < simd.Lanes32; l++ {
		p.ramp[l] = uint32(l * p.Nv)
	}
	p.gatherIdx = make([]*[32]int32, p.Nv)
	p.shift = make([]simd.U32x8, p.Nv)
	for j := 0; j < p.Nv; j++ {
		idx := new([32]int32)
		var shift simd.U32x8
		for l := 0; l < simd.Lanes32; l++ {
			e := l*p.Nv + j
			startBit := e * int(width)
			fb := startBit / 8
			o := uint(startBit - fb*8)
			// Lane bytes 0..3 (LSB..MSB little-endian) take window bytes
			// fb+3..fb: the gather doubles as Endian conversion.
			for b := 0; b < 4; b++ {
				idx[l*4+b] = int32(fb + 3 - b)
			}
			shift[l] = 32 - uint32(o) - uint32(width)
		}
		p.gatherIdx[j] = idx
		p.shift[j] = shift
	}
	return p
}

// Check verifies the internal consistency of a built plan: block geometry
// is whole bytes, every gather index stays inside the byte window a block
// can legally touch, shifts keep fields inside a 32-bit lane and the mask
// matches the width. TestPlanTableInvariants runs it for every width the
// constructor accepts (the generator-side half of the plantable analyzer).
func (p *Plan) Check() error {
	if p.Nv < 1 || p.Nv > MaxNv {
		return fmt.Errorf("plan width %d: Nv %d outside [1, %d]", p.Width, p.Nv, MaxNv)
	}
	if p.BlockElems != 8*p.Nv {
		return fmt.Errorf("plan width %d: BlockElems %d != 8*Nv", p.Width, p.BlockElems)
	}
	if p.BlockBytes*8 != p.BlockElems*int(p.Width) {
		return fmt.Errorf("plan width %d: BlockBytes %d is not BlockElems*Width/8", p.Width, p.BlockBytes)
	}
	if p.Width == 0 || p.wide {
		if p.gatherIdx != nil || p.shift != nil {
			return fmt.Errorf("plan width %d: table built for degenerate/wide plan", p.Width)
		}
		return nil
	}
	if len(p.gatherIdx) != p.Nv || len(p.shift) != p.Nv {
		return fmt.Errorf("plan width %d: %d gather / %d shift tables for Nv %d", p.Width, len(p.gatherIdx), len(p.shift), p.Nv)
	}
	if p.mask != simd.Broadcast32(1<<p.Width-1) {
		return fmt.Errorf("plan width %d: bad field mask", p.Width)
	}
	// A narrow block's last field ends within BlockBytes, and each gather
	// window extends at most 3 bytes past a field's first byte.
	maxByte := p.BlockBytes + 2 // last field starts before BlockBytes-1, window spans +3
	for j, idx := range p.gatherIdx {
		if idx == nil {
			return fmt.Errorf("plan width %d: nil gather table %d", p.Width, j)
		}
		for b, off := range idx {
			if off < 0 || int(off) > maxByte {
				return fmt.Errorf("plan width %d: gather[%d][%d] = %d outside window [0, %d]", p.Width, j, b, off, maxByte)
			}
		}
		for l := 0; l < simd.Lanes32; l++ {
			if s := p.shift[j][l]; s >= 32 {
				return fmt.Errorf("plan width %d: shift[%d][%d] = %d leaves no field bits", p.Width, j, l, s)
			}
		}
	}
	for l := 0; l < simd.Lanes32; l++ {
		if p.ramp[l] != uint32(l*p.Nv) {
			return fmt.Errorf("plan width %d: ramp[%d] = %d, want %d", p.Width, l, p.ramp[l], l*p.Nv)
		}
	}
	return nil
}

// ResetPlanCache clears all cached plans (test hook).
func ResetPlanCache() {
	planMu.Lock()
	defer planMu.Unlock()
	for i := range planCache {
		planCache[i] = nil
	}
}
