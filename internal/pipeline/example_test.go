package pipeline_test

import (
	"fmt"
	"log"

	"etsqp/internal/encoding/ts2diff"
	"etsqp/internal/pipeline"
)

// Decode a TS2DIFF block through the vectorized Algorithm 1 pipeline.
func ExampleDecodeBlock() {
	vals := []int64{12, 16, 22, 27, 33}
	blk, err := ts2diff.Encode(vals, ts2diff.Order1)
	if err != nil {
		log.Fatal(err)
	}
	decoded, err := pipeline.DecodeBlock(blk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(decoded)
	// Output: [12 16 22 27 33]
}

// Compile binds a page's decode pipeline once (the Section III-B JIT);
// repeated decodes skip all per-page decisions.
func ExampleCompile() {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i) * 7
	}
	blk, _ := ts2diff.Encode(vals, ts2diff.Order1)
	dec, err := pipeline.Compile(blk)
	if err != nil {
		log.Fatal(err)
	}
	dst := make([]int64, dec.Count)
	if err := dec.Decode(dst); err != nil {
		log.Fatal(err)
	}
	fmt.Println(dst[:5])
	// Output: [0 7 14 21 28]
}
