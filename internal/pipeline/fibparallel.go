package pipeline

import "sync"

// UnpackFibonacciParallel decodes n Fibonacci codewords with multiple
// workers — Section III-C's core-level splitting for variable packing
// widths. A naive split cannot resynchronize inside runs of 1s (the
// value 1 encodes as "11", so "1111" is ambiguous without consumption
// state), so a cheap pre-scan walks the payload with the per-byte
// terminator dictionary of Figure 7 to find the *exact* bit position of
// every segment boundary; workers then decode disjoint codeword ranges
// concurrently. The pre-scan does one table lookup per byte — far
// cheaper than value accumulation — so the decode still parallelizes.
func UnpackFibonacciParallel(buf []byte, n, workers int) ([]uint64, error) {
	if workers <= 1 || n < workers*4 {
		return UnpackFibonacci(buf, n)
	}
	bounds, counts, err := fibBoundaries(buf, n, workers)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, 0, n)
	segs := make([][]uint64, len(bounds)-1)
	errs := make([]error, len(bounds)-1)
	var wg sync.WaitGroup
	for w := 0; w < len(bounds)-1; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			segs[w], errs[w] = decodeFibSegment(buf, bounds[w], counts[w])
		}(w)
	}
	wg.Wait()
	for w := range segs {
		if errs[w] != nil {
			return nil, errs[w]
		}
		out = append(out, segs[w]...)
	}
	return out, nil
}

// fibBoundaries returns worker-segment start bit positions (len =
// workers+1 entries, last = end sentinel) and the codeword count of each
// segment, located exactly via the per-byte terminator dictionary.
func fibBoundaries(buf []byte, n, workers int) (bounds []int, counts []int, err error) {
	per := n / workers
	targets := make([]int, 0, workers-1)
	for w := 1; w < workers; w++ {
		targets = append(targets, w*per) // boundary after codeword #target
	}
	bounds = make([]int, 0, workers+1)
	counts = make([]int, 0, workers)
	bounds = append(bounds, 0)
	seen := 0
	carry := uint8(0)
	ti := 0
	for byteIdx := 0; byteIdx < len(buf) && ti < len(targets); byteIdx++ {
		e := fibDict[carry][buf[byteIdx]]
		if seen+int(e.count) < targets[ti] {
			seen += int(e.count)
			carry = e.carry
			continue
		}
		// One or more targets land inside this byte: bit-level scan.
		prev := carry
		for bit := 7; bit >= 0; bit-- {
			b := buf[byteIdx] >> uint(bit) & 1
			if b == 1 && prev == 1 {
				seen++
				prev = 0
				if ti < len(targets) && seen == targets[ti] {
					bounds = append(bounds, byteIdx*8+(7-bit)+1)
					counts = append(counts, per)
					ti++
				}
				continue
			}
			prev = b
		}
		carry = prev
	}
	if ti < len(targets) {
		return nil, nil, ErrBadFibStream // fewer codewords than claimed
	}
	bounds = append(bounds, len(buf)*8)
	counts = append(counts, n-targets[len(targets)-1])
	return bounds, counts, nil
}

func bitAt(buf []byte, pos int) uint8 {
	return buf[pos>>3] >> (7 - uint(pos&7)) & 1
}

// decodeFibSegment decodes exactly `count` codewords starting at the
// codeword boundary startBit.
func decodeFibSegment(buf []byte, startBit, count int) ([]uint64, error) {
	totalBits := len(buf) * 8
	out := make([]uint64, 0, count)
	pos := startBit
	for len(out) < count {
		var (
			cur   uint64
			digit int
			prev  uint8
		)
		for {
			if pos >= totalBits {
				return nil, ErrBadFibStream
			}
			b := bitAt(buf, pos)
			pos++
			if b == 1 && prev == 1 {
				out = append(out, cur)
				break
			}
			if b == 1 {
				if digit >= len(fibNumbers) {
					return nil, ErrBadFibStream
				}
				cur += fibNumbers[digit]
			}
			digit++
			prev = b
		}
	}
	return out, nil
}
