package pipeline

import "etsqp/internal/encoding"

// Flatten expands Delta-Repeat pairs into the value sequence (the
// "flatten" decoder of Figure 2). Runs are expanded with bulk writes so
// long repeats cost O(values) stores and no per-value branch.
func Flatten(first int64, pairs []encoding.DeltaRun) []int64 {
	n := 1
	for _, p := range pairs {
		n += p.Count
	}
	out := make([]int64, n)
	FlattenInto(out, first, pairs)
	return out
}

// FlattenInto writes the flattened sequence into dst, which must have
// room for 1 + sum(Count) values. It returns the number of values written.
// Each run is written through a hoisted re-slice so the inner stores
// carry no bounds checks — one slice check per run instead of one index
// check per value.
//
//etsqp:hotpath
func FlattenInto(dst []int64, first int64, pairs []encoding.DeltaRun) int {
	dst[0] = first
	i := 1
	cur := first
	for _, p := range pairs {
		run := dst[i : i+p.Count]
		if p.Delta == 0 {
			// Pure repeat: a single value broadcast (the RLE fast path).
			for k := range run {
				run[k] = cur
			}
		} else {
			for k := range run {
				cur += p.Delta
				run[k] = cur
			}
		}
		i += p.Count
	}
	return i
}

// FlattenRange materializes only rows [from, to) of the flattened
// sequence, skipping whole runs arithmetically — the piece that lets
// sliced pipelines start mid-page on Delta-Repeat data.
func FlattenRange(first int64, pairs []encoding.DeltaRun, from, to int) []int64 {
	if to <= from {
		return nil
	}
	out := make([]int64, 0, to-from)
	cur := first
	idx := 0 // index of `cur` in the flat sequence
	if from == 0 {
		out = append(out, cur)
	}
	for _, p := range pairs {
		runEnd := idx + p.Count
		if runEnd < from {
			// Skip the whole run in O(1).
			cur += p.Delta * int64(p.Count)
			idx = runEnd
			continue
		}
		for k := 1; k <= p.Count; k++ {
			cur += p.Delta
			pos := idx + k
			if pos >= from && pos < to {
				out = append(out, cur)
			}
			if pos >= to {
				return out
			}
		}
		idx = runEnd
	}
	return out
}
