package pipeline

import (
	"math/rand"
	"reflect"
	"testing"

	"etsqp/internal/encoding/ts2diff"
)

func TestDecodeRangeMatchesFullDecode(t *testing.T) {
	for _, w := range []uint{0, 1, 7, 10, 13, 25, 30} {
		vals := seriesWithWidth(513, w, int64(w)+99)
		b, err := ts2diff.Encode(vals, ts2diff.Order1)
		if err != nil {
			t.Fatal(err)
		}
		full, err := DecodeBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(w)))
		ranges := [][2]int{{0, 513}, {0, 1}, {512, 513}, {0, 0}, {513, 513}, {8, 504}, {96, 200}}
		for i := 0; i < 30; i++ {
			from := rng.Intn(514)
			to := from + rng.Intn(514-from)
			ranges = append(ranges, [2]int{from, to})
		}
		for _, rg := range ranges {
			got, err := DecodeRange(b, rg[0], rg[1])
			if err != nil {
				t.Fatalf("w=%d range %v: %v", w, rg, err)
			}
			want := full[rg[0]:rg[1]]
			if len(want) == 0 {
				if len(got) != 0 {
					t.Fatalf("w=%d range %v: got %v", w, rg, got)
				}
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("w=%d range %v: mismatch", w, rg)
			}
		}
	}
}

func TestDecodeRangeOrder2(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ts := make([]int64, 300)
	cur := int64(0)
	interval := int64(50)
	for i := range ts {
		ts[i] = cur
		interval += rng.Int63n(7) - 3
		cur += interval
	}
	b, err := ts2diff.Encode(ts, ts2diff.Order2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRange(b, 100, 250)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ts[100:250]) {
		t.Fatal("order-2 range mismatch")
	}
}

func TestDecodeRangeValidation(t *testing.T) {
	b, _ := ts2diff.Encode([]int64{1, 2, 3}, ts2diff.Order1)
	for _, rg := range [][2]int{{-1, 2}, {0, 4}, {2, 1}} {
		if _, err := DecodeRange(b, rg[0], rg[1]); err == nil {
			t.Fatalf("range %v must fail", rg)
		}
	}
}

func TestDecodeRangeUnalignedStart(t *testing.T) {
	// Odd start positions exercise the unaligned scalar path for widths
	// that do not byte-align (e.g., width 10 at from=3 → bit 30).
	vals := seriesWithWidth(100, 10, 5)
	b, _ := ts2diff.Encode(vals, ts2diff.Order1)
	for from := 1; from < 9; from++ {
		got, err := DecodeRange(b, from, 97)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, vals[from:97]) {
			t.Fatalf("from=%d mismatch", from)
		}
	}
}

func TestConstantInterval(t *testing.T) {
	// Regular timestamps → constant interval detected.
	ts := make([]int64, 100)
	for i := range ts {
		ts[i] = 5000 + int64(i)*250
	}
	b, _ := ts2diff.Encode(ts, ts2diff.Order2)
	iv, ok := ConstantInterval(b)
	if !ok || iv != 250 {
		t.Fatalf("got %d/%v want 250/true", iv, ok)
	}
	// Irregular timestamps → not constant.
	ts[50] += 7
	ts[51] += 3
	b2, _ := ts2diff.Encode(ts, ts2diff.Order2)
	if _, ok := ConstantInterval(b2); ok {
		t.Fatal("irregular series must not report constant interval")
	}
	// Order-1 blocks never report.
	b3, _ := ts2diff.Encode(ts, ts2diff.Order1)
	if _, ok := ConstantInterval(b3); ok {
		t.Fatal("order-1 must not report constant interval")
	}
}

func BenchmarkDecodeRangeHalf(b *testing.B) {
	vals := seriesWithWidthB(65536, 10)
	blk, _ := ts2diff.Encode(vals, ts2diff.Order1)
	b.SetBytes(int64(len(vals) * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRange(blk, len(vals)/2, len(vals)); err != nil {
			b.Fatal(err)
		}
	}
}
