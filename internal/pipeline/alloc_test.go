package pipeline

import (
	"fmt"
	"testing"

	"etsqp/internal/encoding/ts2diff"
	"etsqp/internal/obs"
)

// TestUnpackLoopAllocs is the runtime cross-check of the hotpathalloc
// analyzer: once the plan cache is warm, decoding into caller-provided
// memory must not allocate — across the narrow (gather), wide
// (8-byte-window) and degenerate (width 0) paths, with observability
// both off and on.
func TestUnpackLoopAllocs(t *testing.T) {
	defer obs.Disable()
	for _, w := range []uint{0, 4, 10, 16, MaxNarrowWidth, 30} {
		vals := seriesWithWidthB(4096, w)
		blk, err := ts2diff.Encode(vals, ts2diff.Order1)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int64, blk.Count)
		if err := DecodeBlockInto(out, blk); err != nil { // warm plan cache
			t.Fatal(err)
		}
		for _, on := range []bool{false, true} {
			if on {
				obs.Enable()
			} else {
				obs.Disable()
			}
			t.Run(fmt.Sprintf("width=%d/obs=%v", w, on), func(t *testing.T) {
				if n := testing.AllocsPerRun(100, func() {
					if err := DecodeBlockInto(out, blk); err != nil {
						t.Fatal(err)
					}
				}); n != 0 {
					t.Fatalf("DecodeBlockInto allocates %.1f/op", n)
				}
			})
		}
	}
}

// TestDecodeDeltasIntoAllocs checks the delta kernel and the packed-sum
// kernel stay allocation-free with a warm plan cache.
func TestDecodeDeltasIntoAllocs(t *testing.T) {
	for _, w := range []uint{4, 10, MaxNarrowWidth, 30} {
		vals := seriesWithWidthB(4096, w)
		blk, err := ts2diff.Encode(vals, ts2diff.Order1)
		if err != nil {
			t.Fatal(err)
		}
		m := blk.NumPacked()
		out := make([]int64, m)
		if err := DecodeDeltasInto(out, blk.Packed, m, blk.Width, blk.MinBase); err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(100, func() {
			if err := DecodeDeltasInto(out, blk.Packed, m, blk.Width, blk.MinBase); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Fatalf("width=%d: DecodeDeltasInto allocates %.1f/op", w, n)
		}
		if n := testing.AllocsPerRun(100, func() {
			if _, err := SumPacked(blk.Packed, m, blk.Width); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Fatalf("width=%d: SumPacked allocates %.1f/op", w, n)
		}
	}
}
