package pipeline

import (
	"encoding/binary"
	"errors"
	"fmt"

	"etsqp/internal/bitio"
	"etsqp/internal/encoding/ts2diff"
	"etsqp/internal/obs"
	"etsqp/internal/simd"
)

// errOutLen is a static error so hot-path length guards stay
// allocation-free (hotpathalloc-enforced). The public entry points
// report the offending lengths before the kernels run.
var errOutLen = errors.New("pipeline: output length mismatch")

// UnpackVec runs the Figure 3 sequence for unpacked vector j of a block:
// gather (shuffle + Endian conversion), variable shift, mask.
// UnpackVec is exported for the fusion package, which reuses the same
// JIT tables to aggregate without materializing decoded values.
//
//etsqp:hotpath
func (p *Plan) UnpackVec(window []byte, j int) simd.U32x8 {
	g := simd.GatherBytes(window, p.gatherIdx[j])
	return simd.And32(simd.Srlv32(g.ToU32(), p.shift[j]), p.mask)
}

// DecodeBlock decodes a TS2DIFF block with the vectorized pipeline
// (Algorithm 1). It is the drop-in fast path for ts2diff.Block.Decode.
func DecodeBlock(b *ts2diff.Block) ([]int64, error) {
	if b.Count == 0 {
		return nil, nil
	}
	out := make([]int64, b.Count)
	if err := DecodeBlockInto(out, b); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeBlockInto decodes into a caller-provided slice of length b.Count.
func DecodeBlockInto(out []int64, b *ts2diff.Block) error {
	if err := decodeBlockInto(out, b); err != nil {
		return err
	}
	obs.PipelineValuesUnpacked.Add(int64(b.Count))
	return nil
}

func decodeBlockInto(out []int64, b *ts2diff.Block) error {
	if len(out) != b.Count {
		return fmt.Errorf("pipeline: dst len %d, want %d", len(out), b.Count)
	}
	if b.Count == 0 {
		return nil
	}
	switch b.Order {
	case ts2diff.Order1:
		out[0] = b.First
		return accumulateFrom(out, b.First, b.Packed, b.NumPacked(), b.Width, b.MinBase)
	case ts2diff.Order2:
		out[0] = b.First
		if b.Count == 1 {
			return nil
		}
		// Stage 1: recover the delta sequence (itself delta-encoded).
		deltas := make([]int64, b.Count-1)
		deltas[0] = b.FirstDelta
		if err := accumulateFrom(deltas, b.FirstDelta, b.Packed, b.NumPacked(), b.Width, b.MinBase); err != nil {
			return err
		}
		// Stage 2: accumulate deltas onto the first value.
		cur := b.First
		for i, d := range deltas {
			cur += d
			out[i+1] = cur
		}
		return nil
	default:
		return fmt.Errorf("pipeline: unknown order %d", b.Order)
	}
}

// accumulateFrom fills out[1:] with first + prefix sums of the m packed
// deltas: out[i] = first + i*minBase + sum(packed[0:i]). out[0] must
// already hold first. Accumulation wraps intentionally: Delta encode and
// decode are inverse mod 2^64, so checked adds here would reject values
// that round-trip correctly.
//
//etsqp:bounds width [0, 64]
//etsqp:hotpath
func accumulateFrom(out []int64, first int64, packed []byte, m int, width uint, minBase int64) error {
	if m == 0 {
		return nil
	}
	if len(out) != m+1 {
		return errOutLen
	}
	if width == 0 {
		// Degenerate packing: every delta equals minBase (closed form).
		cur := first
		for i := 1; i <= m; i++ {
			cur += minBase
			out[i] = cur
		}
		return nil
	}
	if width > 32 {
		// Very wide deltas (rare in IoT data): plain bit-reader path.
		return accumulateScalar(out, first, packed, m, width, minBase)
	}
	p, err := PlanFor(width)
	if err != nil {
		return err
	}
	if p.wide {
		return accumulateWide(out, first, packed, m, width, minBase)
	}
	// Per-lane base offsets: lane l of vector j decodes element l*Nv+j,
	// whose value index is that plus one. Fixed-size locals keep the
	// whole block state on the stack (hotpathalloc-enforced).
	var rampBase [simd.Lanes32]int64
	for l := 0; l < simd.Lanes32; l++ {
		rampBase[l] = minBase * int64(l*p.Nv)
	}
	var vecsArr [MaxNv]simd.U32x8
	vecs := vecsArr[:p.Nv]
	v0 := first
	e := 0
	for ; e+p.BlockElems <= m; e += p.BlockElems {
		window := packed[e*int(width)/8:]
		// Lines 6-9: unpack all vectors of the block.
		for j := 0; j < p.Nv; j++ {
			vecs[j] = p.UnpackVec(window, j)
		}
		// Lines 11-12: partial sums across vectors (same-lane chains).
		for j := 1; j < p.Nv; j++ {
			vecs[j] = simd.Add32(vecs[j-1], vecs[j])
		}
		// Line 13: lane prefix sum common to all partial-sum vectors.
		laneTot := vecs[p.Nv-1]
		prefix := simd.ExclusivePrefixSum32(laneTot)
		// Line 15 + store: add prefix and bases, widen, materialize.
		for j := 0; j < p.Nv; j++ {
			s := simd.Add32(vecs[j], prefix)
			base := v0 + minBase*int64(j+1)
			for l := 0; l < simd.Lanes32; l++ {
				out[1+e+l*p.Nv+j] = base + rampBase[l] + int64(s[l])
			}
		}
		total := int64(prefix[simd.Lanes32-1]) + int64(laneTot[simd.Lanes32-1])
		v0 += minBase*int64(p.BlockElems) + total
	}
	if e > 0 && obs.Enabled() {
		obs.PipelineVectorOps.Add(int64(e / p.BlockElems * p.Nv))
	}
	// Tail: fewer than BlockElems deltas remain; scalar path.
	if e < m {
		r := bitio.NewReader(packed)
		if err := r.Seek(e * int(width)); err != nil {
			return err
		}
		cur := v0
		for ; e < m; e++ {
			v, err := r.ReadBits(width)
			if err != nil {
				return err
			}
			cur += minBase + int64(v)
			out[1+e] = cur
		}
	}
	return nil
}

// accumulateScalar is the bit-reader fallback for widths above 32 bits.
//
//etsqp:bounds width [0, 64]
//etsqp:hotpath
func accumulateScalar(out []int64, first int64, packed []byte, m int, width uint, minBase int64) error {
	r := bitio.NewReader(packed)
	cur := first
	for e := 0; e < m; e++ {
		v, err := r.ReadBits(width)
		if err != nil {
			return err
		}
		cur += minBase + int64(v)
		out[1+e] = cur
	}
	return nil
}

// accumulateWide handles widths above MaxNarrowWidth with 8-byte windows
// and 64-bit accumulation (the two-round shuffle path of wide fields).
//
//etsqp:bounds width [0, 32]
//etsqp:hotpath
func accumulateWide(out []int64, first int64, packed []byte, m int, width uint, minBase int64) error {
	mask := uint64(1)<<width - 1
	cur := first
	for e := 0; e < m; e++ {
		startBit := e * int(width)
		fb := startBit / 8
		o := uint(startBit - fb*8)
		w, err := window64(packed, fb)
		if err != nil {
			return err
		}
		v := (w >> (64 - o - width)) & mask
		cur += minBase + int64(v)
		out[1+e] = cur
	}
	return nil
}

// window64 loads 8 bytes big-endian starting at fb, zero-padding past the
// end of the buffer but failing if the window starts outside it. The fb
// guard plus the hoisted tail slice prove every access in range (testing
// fb+8 directly would not: prove must assume the addition can overflow),
// and the whole function stays under the inlining budget so callers pay
// no call overhead.
//
//etsqp:hotpath
//etsqp:nobce
//etsqp:inline
func window64(buf []byte, fb int) (uint64, error) {
	if fb < 0 || fb >= len(buf) {
		return 0, bitio.ErrShortBuffer
	}
	w := buf[fb:]
	if len(w) >= 8 {
		return binary.BigEndian.Uint64(w[:8]), nil
	}
	var tmp [8]byte
	copy(tmp[:], w)
	return binary.BigEndian.Uint64(tmp[:8]), nil
}

// DecodeDeltas vector-unpacks m packed fields and adds minBase, returning
// the delta sequence without accumulation — the input Repeat flattening
// and the order-2 pipeline consume.
//
//etsqp:bounds m [0, 1<<32)
//etsqp:bounds width [0, 64]
func DecodeDeltas(packed []byte, m int, width uint, minBase int64) ([]int64, error) {
	out := make([]int64, m)
	if err := DecodeDeltasInto(out, packed, m, width, minBase); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeDeltasInto is the allocation-free kernel behind DecodeDeltas:
// out must have length m.
//
//etsqp:bounds width [0, 64]
//etsqp:hotpath
func DecodeDeltasInto(out []int64, packed []byte, m int, width uint, minBase int64) error {
	if len(out) != m {
		return bitio.ErrShortBuffer
	}
	if m == 0 {
		return nil
	}
	if width == 0 {
		for i := range out {
			out[i] = minBase
		}
		return nil
	}
	if width > 32 {
		r := bitio.NewReader(packed)
		for e := 0; e < m; e++ {
			v, err := r.ReadBits(width)
			if err != nil {
				return err
			}
			out[e] = minBase + int64(v)
		}
		return nil
	}
	p, err := PlanFor(width)
	if err != nil {
		return err
	}
	if p.wide {
		mask := uint64(1)<<width - 1
		for e := 0; e < m; e++ {
			startBit := e * int(width)
			fb := startBit / 8
			o := uint(startBit - fb*8)
			w, err := window64(packed, fb)
			if err != nil {
				return err
			}
			out[e] = minBase + int64((w>>(64-o-width))&mask)
		}
		return nil
	}
	e := 0
	for ; e+p.BlockElems <= m; e += p.BlockElems {
		window := packed[e*int(width)/8:]
		for j := 0; j < p.Nv; j++ {
			v := p.UnpackVec(window, j)
			for l := 0; l < simd.Lanes32; l++ {
				out[e+l*p.Nv+j] = minBase + int64(v[l])
			}
		}
	}
	if e > 0 && obs.Enabled() {
		obs.PipelineVectorOps.Add(int64(e / p.BlockElems * p.Nv))
	}
	if e < m {
		r := bitio.NewReader(packed)
		if err := r.Seek(e * int(width)); err != nil {
			return err
		}
		for ; e < m; e++ {
			v, err := r.ReadBits(width)
			if err != nil {
				return err
			}
			out[e] = minBase + int64(v)
		}
	}
	return nil
}

// SumPacked returns the sum of the first m packed fields (without
// minBase), using lane-parallel accumulation. Slices use it to resolve
// their prefix dependency and fusion uses it for SUM without decoding.
//
//etsqp:bounds width [0, 64]
//etsqp:hotpath
func SumPacked(packed []byte, m int, width uint) (uint64, error) {
	if m == 0 || width == 0 {
		return 0, nil
	}
	if width > 32 {
		r := bitio.NewReader(packed)
		var total uint64
		for e := 0; e < m; e++ {
			v, err := r.ReadBits(width)
			if err != nil {
				return 0, err
			}
			total += v
		}
		return total, nil
	}
	p, err := PlanFor(width)
	if err != nil {
		return 0, err
	}
	var total uint64
	e := 0
	if !p.wide {
		for ; e+p.BlockElems <= m; e += p.BlockElems {
			window := packed[e*int(width)/8:]
			acc := simd.U32x8{}
			for j := 0; j < p.Nv; j++ {
				acc = simd.Add32(acc, p.UnpackVec(window, j))
			}
			total += simd.HSum32(acc)
		}
		if e > 0 && obs.Enabled() {
			obs.PipelineVectorOps.Add(int64(e / p.BlockElems * p.Nv))
		}
	}
	if e < m {
		r := bitio.NewReader(packed)
		if err := r.Seek(e * int(width)); err != nil {
			return 0, err
		}
		for ; e < m; e++ {
			v, err := r.ReadBits(width)
			if err != nil {
				return 0, err
			}
			total += v
		}
	}
	return total, nil
}
