package pipeline

import (
	"fmt"
	"testing"

	"etsqp/internal/encoding"
	"etsqp/internal/encoding/ts2diff"
	"etsqp/internal/simd"
)

// BenchmarkDecodeVector measures the Algorithm 1 pipeline against the
// scalar reference across packing widths — the per-width ablation behind
// Figure 12(e,f)'s shape.
func BenchmarkDecodeVector(b *testing.B) {
	for _, w := range []uint{4, 10, 16, 20, 25, 30} {
		vals := seriesWithWidthB(65536, w)
		blk, err := ts2diff.Encode(vals, ts2diff.Order1)
		if err != nil {
			b.Fatal(err)
		}
		out := make([]int64, blk.Count)
		b.Run(fmt.Sprintf("width=%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(vals) * 8))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := DecodeBlockInto(out, blk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeScalarRef is the serial baseline for the same widths.
func BenchmarkDecodeScalarRef(b *testing.B) {
	for _, w := range []uint{4, 10, 16, 20, 25, 30} {
		vals := seriesWithWidthB(65536, w)
		blk, err := ts2diff.Encode(vals, ts2diff.Order1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("width=%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(vals) * 8))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := blk.Decode(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNv is the Proposition 1 ablation: decode time as a function of
// the vector count n_v, holding the width fixed at 10 bits.
func BenchmarkNv(b *testing.B) {
	vals := seriesWithWidthB(65536, 10)
	blk, err := ts2diff.Encode(vals, ts2diff.Order1)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]int64, blk.Count)
	for _, nv := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("nv=%d", nv), func(b *testing.B) {
			// Install a plan with the forced n_v.
			p := &Plan{Width: 10, Nv: nv}
			p.BlockElems = 8 * nv
			p.BlockBytes = p.BlockElems * 10 / 8
			forced := buildPlanWithNv(10, nv)
			planMu.Lock()
			saved := planCache[10]
			planCache[10] = forced
			planMu.Unlock()
			defer func() {
				planMu.Lock()
				planCache[10] = saved
				planMu.Unlock()
			}()
			b.SetBytes(int64(len(vals) * 8))
			for i := 0; i < b.N; i++ {
				if err := DecodeBlockInto(out, blk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func buildPlanWithNv(width uint, nv int) *Plan {
	p := buildPlan(width)
	if p.Nv == nv {
		return p
	}
	// Rebuild the tables for the forced vector count.
	forced := &Plan{Width: width, Nv: nv}
	forced.BlockElems = 8 * nv
	forced.BlockBytes = forced.BlockElems * int(width) / 8
	forced.NLoad = (forced.BlockBytes + 31) / 32
	forced.mask = p.mask
	for l := 0; l < 8; l++ {
		forced.ramp[l] = uint32(l * nv)
	}
	forced.gatherIdx = make([]*[32]int32, nv)
	forced.shift = make([]simd.U32x8, nv)
	for j := 0; j < nv; j++ {
		idx := new([32]int32)
		var shift simd.U32x8
		for l := 0; l < 8; l++ {
			e := l*nv + j
			startBit := e * int(width)
			fb := startBit / 8
			o := uint(startBit - fb*8)
			for bb := 0; bb < 4; bb++ {
				idx[l*4+bb] = int32(fb + 3 - bb)
			}
			shift[l] = 32 - uint32(o) - uint32(width)
		}
		forced.gatherIdx[j] = idx
		forced.shift[j] = shift
	}
	return forced
}

// BenchmarkFibonacciUnpack compares word-at-a-time vs bit-at-a-time
// variable-width decoding.
func BenchmarkFibonacciUnpack(b *testing.B) {
	vals := make([]uint64, 65536)
	for i := range vals {
		vals[i] = uint64(i%1000) + 1
	}
	buf, err := encoding.FibonacciEncodeAll(vals)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("word", func(b *testing.B) {
		b.SetBytes(int64(len(vals) * 8))
		for i := 0; i < b.N; i++ {
			if _, err := UnpackFibonacci(buf, len(vals)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(int64(len(vals) * 8))
		for i := 0; i < b.N; i++ {
			if _, err := UnpackFibonacciScalar(buf, len(vals)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func seriesWithWidthB(n int, w uint) []int64 {
	vals := make([]int64, n)
	cur := int64(0)
	maxDelta := int64(1)<<w - 1
	for i := range vals {
		vals[i] = cur
		d := int64(i*2654435761) & maxDelta
		if i == 1 {
			d = maxDelta
		}
		cur += d
	}
	return vals
}

// BenchmarkVectorWidth compares the 256-bit and 512-bit pipeline
// instantiations (the "other quantities and instruction sets" extension
// of Section II-B).
func BenchmarkVectorWidth(b *testing.B) {
	vals := seriesWithWidthB(65536, 10)
	blk, err := ts2diff.Encode(vals, ts2diff.Order1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("256", func(b *testing.B) {
		out := make([]int64, blk.Count)
		b.SetBytes(int64(len(vals) * 8))
		for i := 0; i < b.N; i++ {
			if err := DecodeBlockInto(out, blk); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("512", func(b *testing.B) {
		b.SetBytes(int64(len(vals) * 8))
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBlock512(blk); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkJITCache measures the Section III-B plan cache: decoding with
// cached tables vs rebuilding the tables on every page.
func BenchmarkJITCache(b *testing.B) {
	vals := seriesWithWidthB(8192, 10)
	blk, _ := ts2diff.Encode(vals, ts2diff.Order1)
	out := make([]int64, blk.Count)
	b.Run("cached", func(b *testing.B) {
		if _, err := PlanFor(10); err != nil { // warm
			b.Fatal(err)
		}
		b.SetBytes(int64(len(vals) * 8))
		for i := 0; i < b.N; i++ {
			if err := DecodeBlockInto(out, blk); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuilt", func(b *testing.B) {
		b.SetBytes(int64(len(vals) * 8))
		for i := 0; i < b.N; i++ {
			ResetPlanCache()
			if err := DecodeBlockInto(out, blk); err != nil {
				b.Fatal(err)
			}
		}
	})
	ResetPlanCache()
}

// BenchmarkFibonacciParallel measures the Section III-C variable-width
// splitting at several worker counts.
func BenchmarkFibonacciParallel(b *testing.B) {
	vals := make([]uint64, 200000)
	for i := range vals {
		vals[i] = uint64(i%997) + 1
	}
	buf, err := encoding.FibonacciEncodeAll(vals)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(vals) * 8))
			for i := 0; i < b.N; i++ {
				if _, err := UnpackFibonacciParallel(buf, len(vals), w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
