package pipeline

import (
	"fmt"

	"etsqp/internal/bitio"
	"etsqp/internal/encoding/ts2diff"
	"etsqp/internal/obs"
)

// DecodeRange decodes rows [from, to) of a TS2DIFF block. For order-1
// blocks the slice's prefix dependency (Figure 8: P1S2 waits on P1S1) is
// resolved with a lane-parallel SumPacked over the skipped prefix, then
// the requested rows decode through the normal vector pipeline; 8-row-
// aligned starts (which SplitPage guarantees) keep the packed window
// byte-aligned.
func DecodeRange(b *ts2diff.Block, from, to int) ([]int64, error) {
	if from < 0 || to > b.Count || from > to {
		return nil, fmt.Errorf("pipeline: range [%d,%d) out of block [0,%d)", from, to, b.Count)
	}
	if from == to {
		return nil, nil
	}
	if from == 0 && to == b.Count {
		return DecodeBlock(b)
	}
	if b.Order != ts2diff.Order1 {
		// Order-2 range: the start delta depends on a second prefix level;
		// decode the page once and slice (time pages are usually width 0
		// and never reach here — see ConstantInterval).
		all, err := DecodeBlock(b)
		if err != nil {
			return nil, err
		}
		return all[from:to], nil
	}
	// v[from] = First + from*MinBase + sum(packed[0:from]).
	skip, err := SumPacked(b.Packed, from, b.Width)
	if err != nil {
		return nil, err
	}
	obs.PipelinePrefixFixups.Inc()
	vFrom := b.First + b.MinBase*int64(from) + int64(skip)
	out := make([]int64, to-from)
	out[0] = vFrom
	m := to - 1 - from // packed elements consumed by rows from+1..to-1
	if m == 0 {
		obs.PipelineValuesUnpacked.Add(int64(len(out)))
		return out, nil
	}
	startBit := from * int(b.Width)
	if b.Width == 0 || startBit%8 == 0 {
		var window []byte
		if b.Width > 0 {
			window = b.Packed[startBit/8:]
		}
		if err := accumulateFrom(out, vFrom, window, m, b.Width, b.MinBase); err != nil {
			return nil, err
		}
		obs.PipelineValuesUnpacked.Add(int64(len(out)))
		return out, nil
	}
	// Unaligned start: scalar from the exact bit offset.
	r := bitio.NewReader(b.Packed)
	if err := r.Seek(startBit); err != nil {
		return nil, err
	}
	cur := vFrom
	for i := 1; i <= m; i++ {
		v, err := r.ReadBits(b.Width)
		if err != nil {
			return nil, err
		}
		cur += b.MinBase + int64(v)
		out[i] = cur
	}
	obs.PipelineValuesUnpacked.Add(int64(len(out)))
	return out, nil
}

// ConstantInterval reports whether an order-2 time block encodes a
// perfectly regular series, and if so its interval: width 0 means every
// second-order delta equals MinBase; with MinBase == 0 the interval is
// constant FirstDelta. Pruning and window planning use this to avoid
// decoding timestamps entirely (Proposition 4's constant-D special case).
func ConstantInterval(b *ts2diff.Block) (interval int64, ok bool) {
	if b.Order != ts2diff.Order2 || b.Width != 0 || b.MinBase != 0 {
		return 0, false
	}
	return b.FirstDelta, true
}
