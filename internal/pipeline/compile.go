package pipeline

import (
	"fmt"

	"etsqp/internal/encoding/ts2diff"
	"etsqp/internal/simd"
)

// Decoder is a compiled page decoder: all encoding parameters (order,
// width, plan tables, per-lane base offsets) are bound at compile time,
// so each invocation runs the pipeline with no per-page decisions — the
// JIT product of Section III-B.
type Decoder struct {
	Count int // values produced per call
	run   func(dst []int64) error
}

// Decode runs the compiled pipeline into dst (len must equal Count).
func (d *Decoder) Decode(dst []int64) error {
	if len(dst) != d.Count {
		return fmt.Errorf("pipeline: dst len %d, want %d", len(dst), d.Count)
	}
	return d.run(dst)
}

// Compile builds the decoder for one TS2DIFF block. The expensive parts
// — plan construction (shuffle/shift/mask tables) and the lane base
// vector — happen here, once per page, exactly as the paper compiles
// each thread's pipeline per page (Section VI-B).
func Compile(b *ts2diff.Block) (*Decoder, error) {
	switch b.Order {
	case ts2diff.Order1, ts2diff.Order2:
	default:
		return nil, fmt.Errorf("pipeline: unknown order %d", b.Order)
	}
	d := &Decoder{Count: b.Count}
	if b.Count == 0 {
		d.run = func([]int64) error { return nil }
		return d, nil
	}
	m := b.NumPacked()
	width := b.Width
	// Fallback shapes reuse the general path with parameters bound.
	if b.Order == ts2diff.Order2 || width == 0 || width > MaxNarrowWidth || m < 8 {
		blk := *b
		d.run = func(dst []int64) error { return DecodeBlockInto(dst, &blk) }
		return d, nil
	}
	p, err := PlanFor(width)
	if err != nil {
		return nil, err
	}
	first, minBase, packed := b.First, b.MinBase, b.Packed
	var rampBase [simd.Lanes32]int64
	for l := 0; l < simd.Lanes32; l++ {
		rampBase[l] = minBase * int64(l*p.Nv)
	}
	blockBytes := p.BlockElems * int(width) / 8
	fullBlocks := m / p.BlockElems
	tailStart := fullBlocks * p.BlockElems
	blk := *b
	d.run = func(dst []int64) error {
		dst[0] = first
		var vecsArr [MaxNv]simd.U32x8
		vecs := vecsArr[:p.Nv]
		v0 := first
		for blkIdx := 0; blkIdx < fullBlocks; blkIdx++ {
			e := blkIdx * p.BlockElems
			window := packed[blkIdx*blockBytes:]
			for j := 0; j < p.Nv; j++ {
				vecs[j] = p.UnpackVec(window, j)
			}
			for j := 1; j < p.Nv; j++ {
				vecs[j] = simd.Add32(vecs[j-1], vecs[j])
			}
			laneTot := vecs[p.Nv-1]
			prefix := simd.ExclusivePrefixSum32(laneTot)
			for j := 0; j < p.Nv; j++ {
				s := simd.Add32(vecs[j], prefix)
				base := v0 + minBase*int64(j+1)
				for l := 0; l < simd.Lanes32; l++ {
					dst[1+e+l*p.Nv+j] = base + rampBase[l] + int64(s[l])
				}
			}
			total := int64(prefix[simd.Lanes32-1]) + int64(laneTot[simd.Lanes32-1])
			v0 += minBase*int64(p.BlockElems) + total
		}
		if tailStart < m {
			// Tail via the range decoder (scalar, parameters bound in blk).
			tail, err := DecodeRange(&blk, tailStart+1, blk.Count)
			if err != nil {
				return err
			}
			copy(dst[tailStart+1:], tail)
		}
		return nil
	}
	return d, nil
}
