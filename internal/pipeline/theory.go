package pipeline

import "math"

// Cost model constants for the analytical estimates (relative clocks,
// consistent with the Proposition 1 constants in plan.go).
const (
	costLoad    = 4.0
	costShuffle = 1.0
	costAnd     = 1.0
	costShift   = 1.0
	costMask    = 1.0
	costRegSave = 1.0
)

// TAvg evaluates Proposition 1's average per-value decoding time for a
// given vector count n_v (relative clock units):
//
//	T = ((t_load+t_shuffle)·n_ld + t_unpack·n_v·n_ld + (t_and+t_shift)·n_v
//	     + (2n_v-1)·t_add + t_prefix) / (n_v · ω_SIMD / ω')
func TAvg(width, wPrime uint, wSIMD uint, nv int) float64 {
	if nv < 1 || width == 0 {
		return 0
	}
	w := float64(width)
	wp := float64(wPrime)
	ws := float64(wSIMD)
	lanes := ws / wp // values per unpacked vector
	// A block holds n_v·lanes values of ω bits: n_ld loads cover them.
	nld := math.Ceil(float64(nv) * lanes * w / ws)
	n := float64(nv)
	num := (costLoad+costShuffle)*nld + costUnpack*n*nld + (costAnd+costShift)*n +
		(2*n-1)*costAdd + costPrefix
	den := n * lanes
	return num / den
}

// SerialCost estimates the per-value cost of value-wise serial decoding
// (Theorem 2's T_serial): two memory visits, shift, mask, register save.
//
// visMemRatio is t_visMem / t_op, the memory access pattern parameter.
func SerialCost(visMemRatio float64) float64 {
	return 2*visMemRatio*costAdd + costShift + costMask + costRegSave
}

// AccelerationRatio evaluates the Theorem 2 estimate of
// T_serial / T_parallel for `cores` pipelines of width `width` inputs
// unpacked to wPrime-bit lanes on wSIMD-bit vectors.
func AccelerationRatio(width, wPrime, wSIMD uint, cores int, visMemRatio float64) float64 {
	if width == 0 || cores < 1 {
		return 1
	}
	nv := ChooseNv(width, wPrime)
	perValueParallel := TAvg(width, wPrime, wSIMD, nv) / float64(cores)
	perValueSerial := SerialCost(visMemRatio)
	return perValueSerial / perValueParallel
}
