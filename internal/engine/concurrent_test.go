package engine

import (
	"fmt"
	"sync"
	"testing"

	"etsqp/internal/exec"
	"etsqp/internal/storage"
)

// TestConcurrentQueriesSharedPool runs many queries through one shared
// worker pool and one shared decoded-page cache while an ingester
// appends and compacts a second series, exercising the OnMutate
// invalidation path under the race detector. The queried series is
// immutable for the duration, so every query must return the same sum.
func TestConcurrentQueriesSharedPool(t *testing.T) {
	pool := exec.NewPool(4)
	defer pool.Close()
	cache := exec.NewPageCache(1 << 20)

	ts, vals := testData(8_000, 77, false)
	st := storeFor(t, ModeETSQP, ts, vals, 512)
	st.OnMutate(func(series string) { cache.InvalidateSeries(series) })
	t1, t2 := ts[0], ts[len(ts)-1]
	wantSum, wantCount := sumRange(ts, vals, t1, t2, func(v int64) bool { return v > 400 })
	// Value predicate forces the decode path, so queries share cached
	// decoded pages rather than the fused encoded-form scan.
	sql := fmt.Sprintf(
		"SELECT SUM(A), COUNT(A) FROM ts WHERE TIME >= %d AND TIME <= %d AND A > 400", t1, t2)

	const queriers = 6
	const reps = 8
	var wg sync.WaitGroup
	errs := make(chan error, queriers+1)

	// Ingester: appends then compacts a second series, firing OnMutate
	// invalidations concurrently with cache fills from the queriers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		bts, bvals := testData(2_000, 99, true)
		step := int64(2_000 * 100)
		for rep := 0; rep < reps; rep++ {
			for i := range bts {
				bts[i] += step
			}
			if err := st.Append("ingest", bts, bvals, storage.Options{PageSize: 256}); err != nil {
				errs <- err
				return
			}
			if err := st.Compact("ingest", storage.Options{PageSize: 1024}); err != nil {
				errs <- err
				return
			}
		}
	}()

	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := New(st, ModeETSQP)
			e.Pool = pool
			e.Cache = cache
			e.Workers = 3
			for rep := 0; rep < reps; rep++ {
				res, err := e.ExecuteSQL(sql)
				if err != nil {
					errs <- err
					return
				}
				if res.Aggregates["SUM(A)"] != float64(wantSum) ||
					res.Aggregates["COUNT(A)"] != float64(wantCount) {
					errs <- fmt.Errorf("rep %d: got %v want sum=%d count=%d",
						rep, res.Aggregates, wantSum, wantCount)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cache.UsedBytes() > 1<<20 {
		t.Fatalf("cache over budget: %d", cache.UsedBytes())
	}
}
