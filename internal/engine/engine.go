// Package engine executes Table III-style queries over the page store,
// implementing Algorithm 2 (Pipe): a logical plan is compiled into
// per-worker pipeline jobs over pages/slices, decoders fuse with filters
// and aggregations, and time-range merge nodes combine multi-series
// results.
//
// The same engine runs in several execution modes so the evaluation can
// compare approaches on identical storage:
//
//	ModeETSQP       vectorized pipelines, operator fusion, page-aware
//	                scheduling (slices only when pages are scarce)
//	ModeETSQPPrune  ETSQP plus the Section V pruning rules
//	ModeSerial      value-at-a-time decoding, no vectorization
//	ModeSBoost      vectorized delta decoding but fixed layout, slices
//	                every page across all workers (per-slice prefix
//	                dependency), no fusion and no pruning
//	ModeFastLanes   FLMM1024 storage with its own block decoder, no
//	                fusion and no pruning
package engine

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"etsqp/internal/exec"
	"etsqp/internal/obs"
	"etsqp/internal/sqlparse"
	"etsqp/internal/storage"
)

// Mode selects the execution strategy.
type Mode int

// Execution modes.
const (
	ModeETSQP Mode = iota
	ModeETSQPPrune
	ModeSerial
	ModeSBoost
	ModeFastLanes
)

// String names the mode as the evaluation figures label it.
func (m Mode) String() string {
	switch m {
	case ModeETSQP:
		return "ETSQP"
	case ModeETSQPPrune:
		return "ETSQP-prune"
	case ModeSerial:
		return "Serial"
	case ModeSBoost:
		return "SBoost"
	case ModeFastLanes:
		return "FastLanes"
	}
	return "Unknown"
}

// Engine executes queries against a store.
type Engine struct {
	Store   *storage.Store
	Mode    Mode
	Workers int // worker pipelines (p_c); defaults to GOMAXPROCS
	// ForceSlices, when positive, splits every page into that many slices
	// regardless of page availability — the Figure 14(c,d) ablation knob
	// for studying slice-dependency idle time vs materialization cost.
	ForceSlices int
	// UseHeaderStats answers SUM/COUNT/AVG over fully-covered pages from
	// the page-header sum statistic without touching the payload
	// (IoTDB-style statistics-level aggregation). Off by default so the
	// benchmark comparisons exercise the decoding pipelines.
	UseHeaderStats bool
	// Pool is the shared execution pool slice/page morsels run on. Nil
	// selects the process-wide exec.Default() pool, so concurrent engines
	// share one set of workers unless a test or server wires its own.
	Pool *exec.Pool
	// Cache, when non-nil, is the decoded-page cache consulted before
	// every page-column decode. Register its InvalidateSeries with
	// Store.OnMutate so ingest keeps it consistent.
	Cache *exec.PageCache
}

// New returns an engine with default worker count.
func New(store *storage.Store, mode Mode) *Engine {
	return &Engine{Store: store, Mode: mode, Workers: runtime.GOMAXPROCS(0)}
}

func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// pool returns the execution pool morsel batches run on.
func (e *Engine) pool() *exec.Pool {
	if e.Pool != nil {
		return e.Pool
	}
	return exec.Default()
}

// WindowAgg is one sliding-window result row.
type WindowAgg struct {
	Index int
	Start int64
	End   int64
	Value float64
	Count int64
}

// Result carries query output plus execution statistics.
type Result struct {
	// Aggregates maps "SUM(A)"-style labels to values for plain
	// aggregation queries.
	Aggregates map[string]float64
	// Windows holds per-window aggregates for SW queries (one aggregate
	// item supported per window query).
	Windows []WindowAgg
	// Rows holds output tuples for star/join/merge/projection queries.
	Rows []Row
	// Stats reports the work done, for the throughput metrics.
	Stats Stats
}

// Row is one output tuple.
type Row struct {
	Time   int64
	Values []int64
}

// timeRange extracts the conjunctive TIME bounds from predicates,
// defaulting to (-inf, +inf).
func timeRange(preds []sqlparse.Pred) (t1, t2 int64) {
	t1, t2 = math.MinInt64+1, math.MaxInt64-1
	for _, p := range preds {
		if !p.Col.IsTime() {
			continue
		}
		switch p.Op {
		case opGE:
			if p.Value > t1 {
				t1 = p.Value
			}
		case opGT:
			if p.Value+1 > t1 {
				t1 = p.Value + 1
			}
		case opLE:
			if p.Value < t2 {
				t2 = p.Value
			}
		case opLT:
			if p.Value-1 < t2 {
				t2 = p.Value - 1
			}
		case opEQ:
			if p.Value > t1 {
				t1 = p.Value
			}
			if p.Value < t2 {
				t2 = p.Value
			}
		}
	}
	return t1, t2
}

// valuePreds returns the non-TIME predicates.
func valuePreds(preds []sqlparse.Pred) []sqlparse.Pred {
	var out []sqlparse.Pred
	for _, p := range preds {
		if !p.Col.IsTime() {
			out = append(out, p)
		}
	}
	return out
}

// rowsOut counts the result's output cardinality: tuples for row-shaped
// queries, window rows for SW queries, aggregate cells otherwise.
func (r *Result) rowsOut() int64 {
	return int64(len(r.Rows) + len(r.Windows) + len(r.Aggregates))
}

// Execute runs a parsed query.
func (e *Engine) Execute(q *sqlparse.Query) (*Result, error) {
	return e.executeTimed(q, nil)
}

// ExecuteTraced runs a parsed query with span collection feeding tr.
// The trace must be fresh (NewTrace); on success its span tree is
// assembled from the observed stage times. A nil trace is exactly
// Execute.
func (e *Engine) ExecuteTraced(q *sqlparse.Query, tr *Trace) (*Result, error) {
	return e.executeTimed(q, tr)
}

func (e *Engine) executeTimed(q *sqlparse.Query, tr *Trace) (*Result, error) {
	start := time.Now()
	res, err := e.execute(q, tr)
	if err != nil {
		if tr != nil {
			tr.fail(err, time.Since(start))
		}
		return nil, err
	}
	obs.EngineQueries.Inc()
	obs.EngineRowsOut.Add(res.rowsOut())
	if obs.Enabled() || tr != nil {
		elapsed := time.Since(start)
		if obs.Enabled() {
			obs.EngineTimeQuery.AddNanos(int64(elapsed))
			if tr != nil {
				// A traced query stamps its ID on the latency histogram as
				// an exemplar, so a /metrics bucket links to the trace.
				obs.EngineHistQuery.ObserveExemplar(int64(elapsed), tr.TraceID)
			} else {
				obs.EngineHistQuery.Observe(int64(elapsed))
			}
		}
		if tr != nil {
			tr.finish(res.Stats, elapsed)
		}
	}
	return res, nil
}

func (e *Engine) execute(q *sqlparse.Query, tr *Trace) (*Result, error) {
	switch {
	case q.Sub != nil:
		return e.executeSubqueryAgg(q, tr)
	case q.UnionWith != "":
		return e.executeMerge(q, tr)
	case len(q.Series) == 2:
		if q.Items[0].Agg == sqlparse.AggCorr {
			return e.executeJoinCorr(q, tr)
		}
		return e.executeJoin(q, tr)
	case len(q.Series) == 1:
		if q.Items[0].Star {
			return e.executeScan(q, tr)
		}
		return e.executeAgg(q, q.Series[0], q.Preds, tr)
	default:
		return nil, fmt.Errorf("engine: unsupported query shape")
	}
}

// ExecuteSQL parses and runs a statement.
func (e *Engine) ExecuteSQL(sql string) (*Result, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.Execute(q)
}

// TraceSQL parses, plans and runs a statement with tracing on, returning
// the result together with the assembled span tree. The parse and plan
// phases are timed into their own spans; planning reuses the EXPLAIN
// machinery, so a traced query also validates its plan shape. When
// execution itself fails (e.g. a Section VI-C aggregate overflow) the
// trace is still returned with the failure recorded, so serving layers
// can log what the query did before it errored; parse and plan failures
// return a nil trace — nothing executed.
func (e *Engine) TraceSQL(sql string) (*Result, *Trace, error) {
	tr := NewTrace(sql, e.Mode.String(), e.workers())
	parseStart := time.Now()
	q, err := sqlparse.Parse(sql)
	tr.parseNs = int64(time.Since(parseStart))
	if err != nil {
		return nil, nil, err
	}
	planStart := time.Now()
	if _, err := e.explainQuery(q); err != nil {
		return nil, nil, err
	}
	tr.planNs = int64(time.Since(planStart))
	res, err := e.ExecuteTraced(q, tr)
	if err != nil {
		return nil, tr, err
	}
	return res, tr, nil
}

// executeSubqueryAgg handles Q3: SELECT agg(A) FROM (SELECT * FROM ts
// WHERE ...). The filter pushes down into the aggregation pipeline
// (Equation 1's single-column predicate separation).
func (e *Engine) executeSubqueryAgg(q *sqlparse.Query, tr *Trace) (*Result, error) {
	sub := q.Sub
	if sub.Sub != nil || len(sub.Series) != 1 || !sub.Items[0].Star {
		return nil, fmt.Errorf("engine: only single-series star subqueries are supported")
	}
	outer := *q
	outer.Sub = nil
	outer.Series = sub.Series
	outer.Window = q.Window
	if outer.Window == nil {
		outer.Window = sub.Window
	}
	preds := append(append([]sqlparse.Pred(nil), sub.Preds...), q.Preds...)
	return e.executeAgg(&outer, sub.Series[0], preds, tr)
}
