package engine

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"etsqp/internal/storage"

	_ "etsqp/internal/encoding/gorilla"
	_ "etsqp/internal/encoding/rlbe"
	_ "etsqp/internal/encoding/sprintz"
	_ "etsqp/internal/encoding/ts2diff"
	_ "etsqp/internal/fastlanes"
)

var allModes = []Mode{ModeETSQP, ModeETSQPPrune, ModeSerial, ModeSBoost, ModeFastLanes}

// testData builds deterministic series columns.
func testData(n int, seed int64, regular bool) (ts, vals []int64) {
	rng := rand.New(rand.NewSource(seed))
	ts = make([]int64, n)
	vals = make([]int64, n)
	cur := int64(1_000_000)
	v := int64(500)
	for i := 0; i < n; i++ {
		ts[i] = cur
		if regular {
			cur += 100
		} else {
			cur += rng.Int63n(150) + 50
		}
		v += rng.Int63n(21) - 10
		vals[i] = v
	}
	return ts, vals
}

// storeFor builds a store with the codec appropriate to the mode.
func storeFor(t testing.TB, mode Mode, ts, vals []int64, pageSize int) *storage.Store {
	t.Helper()
	st := storage.NewStore()
	opts := storage.Options{PageSize: pageSize}
	if mode == ModeFastLanes {
		opts.ValueCodec = "fastlanes"
	}
	if err := st.Append("ts", ts, vals, opts); err != nil {
		t.Fatal(err)
	}
	return st
}

func sumRange(ts, vals []int64, t1, t2 int64, pred func(int64) bool) (sum int64, count int64) {
	for i := range ts {
		if ts[i] >= t1 && ts[i] <= t2 && pred(vals[i]) {
			sum += vals[i]
			count++
		}
	}
	return sum, count
}

func TestAggAllModesMatchReference(t *testing.T) {
	ts, vals := testData(20_000, 1, false)
	t1 := ts[3000]
	t2 := ts[17_000]
	wantSum, wantCount := sumRange(ts, vals, t1, t2, func(int64) bool { return true })
	for _, mode := range allModes {
		for _, workers := range []int{1, 4} {
			st := storeFor(t, mode, ts, vals, 2048)
			e := New(st, mode)
			e.Workers = workers
			sql := fmt.Sprintf("SELECT SUM(A), COUNT(A), AVG(A), MIN(A), MAX(A), VAR(A) FROM ts WHERE TIME >= %d AND TIME <= %d", t1, t2)
			res, err := e.ExecuteSQL(sql)
			if err != nil {
				t.Fatalf("%v/%d: %v", mode, workers, err)
			}
			if got := res.Aggregates["SUM(A)"]; got != float64(wantSum) {
				t.Fatalf("%v/%d: SUM %v want %d", mode, workers, got, wantSum)
			}
			if got := res.Aggregates["COUNT(A)"]; got != float64(wantCount) {
				t.Fatalf("%v/%d: COUNT %v want %d", mode, workers, got, wantCount)
			}
			if got := res.Aggregates["AVG(A)"]; math.Abs(got-float64(wantSum)/float64(wantCount)) > 1e-9 {
				t.Fatalf("%v/%d: AVG %v", mode, workers, got)
			}
			// MIN/MAX against scan.
			var minV, maxV int64 = 1 << 62, -(1 << 62)
			for i := range ts {
				if ts[i] >= t1 && ts[i] <= t2 {
					if vals[i] < minV {
						minV = vals[i]
					}
					if vals[i] > maxV {
						maxV = vals[i]
					}
				}
			}
			if got := res.Aggregates["MIN(A)"]; got != float64(minV) {
				t.Fatalf("%v/%d: MIN %v want %d", mode, workers, got, minV)
			}
			if got := res.Aggregates["MAX(A)"]; got != float64(maxV) {
				t.Fatalf("%v/%d: MAX %v want %d", mode, workers, got, maxV)
			}
		}
	}
}

func TestRegularSeriesUsesConstantIntervalPath(t *testing.T) {
	ts, vals := testData(10_000, 2, true)
	t1, t2 := ts[100], ts[9000]
	wantSum, _ := sumRange(ts, vals, t1, t2, func(int64) bool { return true })
	for _, mode := range allModes {
		st := storeFor(t, mode, ts, vals, 1024)
		e := New(st, mode)
		res, err := e.ExecuteSQL(fmt.Sprintf("SELECT SUM(A) FROM ts WHERE TIME >= %d AND TIME <= %d", t1, t2))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got := res.Aggregates["SUM(A)"]; got != float64(wantSum) {
			t.Fatalf("%v: SUM %v want %d", mode, got, wantSum)
		}
	}
}

func TestQ3ValueFilterAllModes(t *testing.T) {
	ts, vals := testData(20_000, 3, false)
	thresh := vals[0] + 5
	wantSum, _ := sumRange(ts, vals, math.MinInt64+1, math.MaxInt64-1, func(v int64) bool { return v > thresh })
	sql := fmt.Sprintf("SELECT SUM(A) FROM (SELECT * FROM ts WHERE A > %d)", thresh)
	for _, mode := range allModes {
		st := storeFor(t, mode, ts, vals, 2048)
		e := New(st, mode)
		res, err := e.ExecuteSQL(sql)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got := res.Aggregates["SUM(A)"]; got != float64(wantSum) {
			t.Fatalf("%v: got %v want %d", mode, got, wantSum)
		}
	}
}

func TestPrunePagesByValueStats(t *testing.T) {
	// First half of the series is low, second half high: a selective
	// high filter must prune the low pages in prune mode only.
	n := 16_384
	ts := make([]int64, n)
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		ts[i] = int64(i) * 1000
		if i < n/2 {
			vals[i] = int64(i % 50)
		} else {
			vals[i] = 10_000 + int64(i%50)
		}
	}
	var want int64
	for _, v := range vals {
		if v > 9000 {
			want += v
		}
	}
	sql := "SELECT SUM(A) FROM (SELECT * FROM ts WHERE A > 9000)"
	for _, mode := range []Mode{ModeETSQP, ModeETSQPPrune} {
		st := storeFor(t, mode, ts, vals, 1024)
		e := New(st, mode)
		res, err := e.ExecuteSQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Aggregates["SUM(A)"]; got != float64(want) {
			t.Fatalf("%v: got %v want %d", mode, got, want)
		}
		if mode == ModeETSQPPrune && res.Stats.PagesPruned < 7 {
			t.Fatalf("prune mode pruned only %d pages", res.Stats.PagesPruned)
		}
		if mode == ModeETSQP && res.Stats.PagesPruned != 0 {
			t.Fatalf("plain mode must not prune, got %d", res.Stats.PagesPruned)
		}
		// Pruned pages still count toward loaded tuples (throughput).
		if res.Stats.TuplesLoaded != int64(n) {
			t.Fatalf("%v: TuplesLoaded = %d want %d", mode, res.Stats.TuplesLoaded, n)
		}
	}
}

func TestSlidingWindowQ1Q2(t *testing.T) {
	ts, vals := testData(10_000, 4, true) // regular, interval 100
	for _, mode := range allModes {
		st := storeFor(t, mode, ts, vals, 1500)
		e := New(st, mode)
		dt := int64(100 * 1000) // 1000 points per window
		res, err := e.ExecuteSQL(fmt.Sprintf("SELECT SUM(A) FROM ts SW(%d, %d)", ts[0], dt))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(res.Windows) != 10 {
			t.Fatalf("%v: windows = %d want 10", mode, len(res.Windows))
		}
		for wi, w := range res.Windows {
			var want int64
			var count int64
			for i := range ts {
				if ts[i] >= w.Start && ts[i] < w.End {
					want += vals[i]
					count++
				}
			}
			if w.Value != float64(want) || w.Count != count {
				t.Fatalf("%v window %d: got %v/%d want %d/%d", mode, wi, w.Value, w.Count, want, count)
			}
		}
		// AVG windows.
		res2, err := e.ExecuteSQL(fmt.Sprintf("SELECT AVG(A) FROM ts SW(%d, %d)", ts[0], dt))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for wi := range res2.Windows {
			if res2.Windows[wi].Count == 0 {
				continue
			}
			want := res.Windows[wi].Value / float64(res.Windows[wi].Count)
			if math.Abs(res2.Windows[wi].Value-want) > 1e-9 {
				t.Fatalf("%v window %d: AVG %v want %v", mode, wi, res2.Windows[wi].Value, want)
			}
		}
	}
}

func TestSlidingWindowIrregularTimestamps(t *testing.T) {
	ts, vals := testData(5000, 5, false)
	for _, mode := range []Mode{ModeETSQP, ModeSerial} {
		st := storeFor(t, mode, ts, vals, 600)
		e := New(st, mode)
		dt := (ts[len(ts)-1] - ts[0]) / 7
		res, err := e.ExecuteSQL(fmt.Sprintf("SELECT SUM(A) FROM ts SW(%d, %d)", ts[0], dt))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for wi, w := range res.Windows {
			var want int64
			for i := range ts {
				if ts[i] >= w.Start && ts[i] < w.End {
					want += vals[i]
				}
			}
			if w.Value != float64(want) {
				t.Fatalf("%v window %d: got %v want %d", mode, wi, w.Value, want)
			}
		}
	}
}

func TestScanStar(t *testing.T) {
	ts, vals := testData(3000, 6, false)
	st := storeFor(t, ModeETSQP, ts, vals, 512)
	e := New(st, ModeETSQP)
	t1, t2 := ts[100], ts[200]
	res, err := e.ExecuteSQL(fmt.Sprintf("SELECT * FROM ts WHERE TIME >= %d AND TIME <= %d", t1, t2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 101 {
		t.Fatalf("rows = %d want 101", len(res.Rows))
	}
	for i, r := range res.Rows {
		if r.Time != ts[100+i] || r.Values[0] != vals[100+i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestMergeQ5(t *testing.T) {
	ts1, v1 := testData(2000, 7, false)
	ts2 := make([]int64, 1500)
	v2 := make([]int64, 1500)
	for i := range ts2 {
		ts2[i] = ts1[0] + int64(i)*137 + 13
		v2[i] = int64(i)
	}
	for _, mode := range allModes {
		st := storage.NewStore()
		opts := storage.Options{PageSize: 300}
		if mode == ModeFastLanes {
			opts.ValueCodec = "fastlanes"
		}
		if err := st.Append("ts1", ts1, v1, opts); err != nil {
			t.Fatal(err)
		}
		if err := st.Append("ts2", ts2, v2, opts); err != nil {
			t.Fatal(err)
		}
		e := New(st, mode)
		res, err := e.ExecuteSQL("SELECT * FROM ts1 UNION ts2 ORDER BY TIME")
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		// Time-ordered output covering both series.
		joint := map[int64]bool{}
		for _, tt := range ts1 {
			joint[tt] = true
		}
		for _, tt := range ts2 {
			joint[tt] = true
		}
		if len(res.Rows) != len(joint) {
			t.Fatalf("%v: rows = %d want %d", mode, len(res.Rows), len(joint))
		}
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i].Time <= res.Rows[i-1].Time {
				t.Fatalf("%v: output not time ordered at %d", mode, i)
			}
		}
	}
}

func TestJoinQ4Q6(t *testing.T) {
	// Overlapping timestamps every third point.
	n := 3000
	ts1 := make([]int64, n)
	v1 := make([]int64, n)
	ts2 := make([]int64, n)
	v2 := make([]int64, n)
	for i := 0; i < n; i++ {
		ts1[i] = int64(i) * 3
		v1[i] = int64(i)
		ts2[i] = int64(i) * 2
		v2[i] = int64(i) * 10
	}
	for _, mode := range allModes {
		st := storage.NewStore()
		opts := storage.Options{PageSize: 700}
		if mode == ModeFastLanes {
			opts.ValueCodec = "fastlanes"
		}
		if err := st.Append("ts1", ts1[1:], v1[1:], opts); err != nil { // skip t=0 to offset
			t.Fatal(err)
		}
		if err := st.Append("ts2", ts2[1:], v2[1:], opts); err != nil {
			t.Fatal(err)
		}
		e := New(st, mode)
		// Q6: natural join rows.
		res, err := e.ExecuteSQL("SELECT * FROM ts1, ts2")
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		// Expected: timestamps divisible by 6 (excluding 0), up to min range.
		var want []int64
		maxT := ts1[n-1]
		if ts2[n-1] < maxT {
			maxT = ts2[n-1]
		}
		for tt := int64(6); tt <= maxT; tt += 6 {
			want = append(want, tt)
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("%v: join rows = %d want %d", mode, len(res.Rows), len(want))
		}
		for i, r := range res.Rows {
			if r.Time != want[i] {
				t.Fatalf("%v: row %d time %d want %d", mode, i, r.Time, want[i])
			}
			if r.Values[0] != r.Time/3 || r.Values[1] != r.Time/2*10 {
				t.Fatalf("%v: row %d values %v", mode, i, r.Values)
			}
		}
		// Q4: add projection.
		res4, err := e.ExecuteSQL("SELECT ts1.A + ts2.A FROM ts1, ts2")
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(res4.Rows) != len(want) {
			t.Fatalf("%v: Q4 rows = %d", mode, len(res4.Rows))
		}
		for i, r := range res4.Rows {
			if r.Values[0] != want[i]/3+want[i]/2*10 {
				t.Fatalf("%v: Q4 row %d = %v", mode, i, r.Values)
			}
		}
	}
}

func TestErrorsAndEdgeCases(t *testing.T) {
	ts, vals := testData(100, 8, true)
	st := storeFor(t, ModeETSQP, ts, vals, 50)
	e := New(st, ModeETSQP)
	if _, err := e.ExecuteSQL("SELECT SUM(A) FROM nosuch"); err == nil {
		t.Fatal("unknown series must fail")
	}
	if _, err := e.ExecuteSQL("SELECT bogus FROM ts"); err == nil {
		t.Fatal("parse error must propagate")
	}
	if _, err := e.ExecuteSQL("SELECT SUM(TIME) FROM ts"); err == nil {
		t.Fatal("aggregates over TIME unsupported")
	}
	if _, err := e.ExecuteSQL("SELECT A FROM ts"); err == nil {
		t.Fatal("non-aggregate non-star item unsupported")
	}
	// Empty result range.
	res, err := e.ExecuteSQL("SELECT SUM(A), COUNT(A) FROM ts WHERE TIME > 999999999999")
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregates["SUM(A)"] != 0 || res.Aggregates["COUNT(A)"] != 0 {
		t.Fatalf("empty range: %+v", res.Aggregates)
	}
	// MIN over empty input errors.
	if _, err := e.ExecuteSQL("SELECT MIN(A) FROM ts WHERE TIME > 999999999999"); err == nil {
		t.Fatal("MIN over empty must fail")
	}
	if ModeETSQP.String() != "ETSQP" || Mode(99).String() != "Unknown" {
		t.Fatal("Mode.String wrong")
	}
}

func TestRLBEFusedPath(t *testing.T) {
	// Repeat-heavy data stored as RLBE exercises the Delta-Repeat fused
	// sum (Section IV) end to end.
	n := 10_000
	ts := make([]int64, n)
	vals := make([]int64, n)
	v := int64(100)
	for i := 0; i < n; i++ {
		ts[i] = int64(i) * 1000
		if i%64 == 0 {
			v += int64(i % 7)
		}
		vals[i] = v
	}
	st := storage.NewStore()
	if err := st.Append("ts", ts, vals, storage.Options{PageSize: 2000, ValueCodec: "rlbe"}); err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, x := range vals {
		want += x
	}
	for _, mode := range []Mode{ModeETSQP, ModeSerial} {
		e := New(st, mode)
		res, err := e.ExecuteSQL("SELECT SUM(A) FROM ts WHERE TIME >= 0 AND TIME <= 99999999999")
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got := res.Aggregates["SUM(A)"]; got != float64(want) {
			t.Fatalf("%v: got %v want %d", mode, got, want)
		}
	}
}

func TestVarAggregation(t *testing.T) {
	ts, vals := testData(5000, 10, false)
	st := storeFor(t, ModeETSQP, ts, vals, 1000)
	e := New(st, ModeETSQP)
	res, err := e.ExecuteSQL("SELECT VAR(A) FROM ts WHERE TIME >= 0 AND TIME <= 99999999999999")
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, v := range vals {
		mean += float64(v)
	}
	mean /= float64(len(vals))
	want := 0.0
	for _, v := range vals {
		want += (float64(v) - mean) * (float64(v) - mean)
	}
	want /= float64(len(vals))
	if got := res.Aggregates["VAR(A)"]; math.Abs(got-want) > 1e-6*(1+want) {
		t.Fatalf("VAR = %v want %v", got, want)
	}
}

func TestStatsStageTimings(t *testing.T) {
	ts, vals := testData(50_000, 11, false)
	st := storeFor(t, ModeSerial, ts, vals, 4096)
	e := New(st, ModeSerial)
	res, err := e.ExecuteSQL("SELECT SUM(A) FROM (SELECT * FROM ts WHERE A > 0)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DecodeNanos <= 0 {
		t.Fatal("decode time not recorded")
	}
	if res.Stats.SlicesRun <= 0 || res.Stats.TuplesLoaded <= 0 {
		t.Fatalf("stats: %+v", res.Stats)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	ts, vals := testData(30_000, 12, false)
	st := storeFor(t, ModeETSQP, ts, vals, 1024)
	var ref *Result
	for _, w := range []int{1, 2, 3, 8, 17} {
		e := New(st, ModeETSQP)
		e.Workers = w
		res, err := e.ExecuteSQL("SELECT SUM(A), MIN(A), MAX(A), COUNT(A) FROM ts WHERE TIME >= 0 AND TIME <= 99999999999999")
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.Aggregates, ref.Aggregates) {
			t.Fatalf("workers=%d: %v != %v", w, res.Aggregates, ref.Aggregates)
		}
	}
}

func TestSumOverflowDetected(t *testing.T) {
	// Constant huge values encode fine (zero deltas) but their sum wraps
	// int64; Section VI-C requires an error, not a wrapped result.
	n := 64
	ts := make([]int64, n)
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		ts[i] = int64(i) * 1000
		vals[i] = 1 << 62
	}
	for _, mode := range []Mode{ModeETSQP, ModeSerial} {
		st := storeFor(t, mode, ts, vals, 32)
		e := New(st, mode)
		_, err := e.ExecuteSQL("SELECT SUM(A) FROM ts WHERE TIME >= 0 AND TIME <= 9999999")
		if err == nil {
			t.Fatalf("%v: overflow must be detected", mode)
		}
		// Non-overflowing aggregates still work on the same data.
		res, err := e.ExecuteSQL("SELECT MAX(A) FROM ts WHERE TIME >= 0 AND TIME <= 9999999")
		if err != nil || res.Aggregates["MAX(A)"] != float64(int64(1)<<62) {
			t.Fatalf("%v: MAX failed: %v", mode, err)
		}
	}
}

func TestFirstLastAggregates(t *testing.T) {
	ts, vals := testData(12_000, 20, false)
	t1, t2 := ts[500], ts[11_000]
	for _, mode := range allModes {
		st := storeFor(t, mode, ts, vals, 1024)
		e := New(st, mode)
		res, err := e.ExecuteSQL(fmt.Sprintf(
			"SELECT FIRST(A), LAST(A) FROM ts WHERE TIME >= %d AND TIME <= %d", t1, t2))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got := res.Aggregates["FIRST(A)"]; got != float64(vals[500]) {
			t.Fatalf("%v: FIRST %v want %d", mode, got, vals[500])
		}
		if got := res.Aggregates["LAST(A)"]; got != float64(vals[11_000]) {
			t.Fatalf("%v: LAST %v want %d", mode, got, vals[11_000])
		}
	}
	// Regular timestamps: constant-interval path must produce the same.
	ts2, vals2 := testData(8_000, 21, true)
	st := storeFor(t, ModeETSQP, ts2, vals2, 2048)
	e := New(st, ModeETSQP)
	res, err := e.ExecuteSQL(fmt.Sprintf(
		"SELECT FIRST(A), LAST(A) FROM ts WHERE TIME >= %d AND TIME <= %d", ts2[100], ts2[7000]))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregates["FIRST(A)"] != float64(vals2[100]) || res.Aggregates["LAST(A)"] != float64(vals2[7000]) {
		t.Fatalf("constant-interval FIRST/LAST wrong: %v", res.Aggregates)
	}
}

func TestFirstLastWindows(t *testing.T) {
	ts, vals := testData(5_000, 22, true) // interval 100
	st := storeFor(t, ModeETSQP, ts, vals, 900)
	e := New(st, ModeETSQP)
	dt := int64(100 * 500)
	res, err := e.ExecuteSQL(fmt.Sprintf("SELECT LAST(A) FROM ts SW(%d, %d)", ts[0], dt))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 10 {
		t.Fatalf("windows = %d", len(res.Windows))
	}
	for wi, w := range res.Windows {
		var want int64
		for i := range ts {
			if ts[i] >= w.Start && ts[i] < w.End {
				want = vals[i]
			}
		}
		if w.Value != float64(want) {
			t.Fatalf("window %d: LAST %v want %d", wi, w.Value, want)
		}
	}
}

func TestFirstLastWithValuePredsRejected(t *testing.T) {
	ts, vals := testData(100, 23, true)
	st := storeFor(t, ModeETSQP, ts, vals, 50)
	e := New(st, ModeETSQP)
	if _, err := e.ExecuteSQL("SELECT FIRST(A) FROM (SELECT * FROM ts WHERE A > 0)"); err == nil {
		t.Fatal("FIRST with value predicates must be rejected")
	}
	if _, err := e.ExecuteSQL("SELECT FIRST(A) FROM ts WHERE TIME > 999999999999"); err == nil {
		t.Fatal("FIRST over empty range must error")
	}
}

func TestCorruptPageSurfacesError(t *testing.T) {
	// Flip bytes inside stored page payloads: queries must fail with an
	// error, never panic or return wrong data silently.
	ts, vals := testData(4_000, 30, false)
	for trial := 0; trial < 20; trial++ {
		st := storeFor(t, ModeETSQP, ts, vals, 512)
		ser, _ := st.Series("ts")
		rng := rand.New(rand.NewSource(int64(trial)))
		pp := ser.Pages[rng.Intn(len(ser.Pages))]
		page := pp.Value
		if trial%2 == 0 {
			page = pp.Time
		}
		if len(page.Data) == 0 {
			continue
		}
		// Truncate or bit-flip.
		if trial%3 == 0 {
			page.Data = page.Data[:rng.Intn(len(page.Data))]
		} else {
			page.Data[rng.Intn(len(page.Data))] ^= 0xFF
		}
		for _, mode := range []Mode{ModeETSQP, ModeSerial} {
			e := New(st, mode)
			res, err := e.ExecuteSQL("SELECT SUM(A) FROM ts WHERE TIME >= 0 AND TIME <= 99999999999999")
			if err != nil {
				continue // surfaced: good
			}
			// A bit flip inside the packed payload may decode to different
			// values without structural corruption; that is acceptable as
			// long as execution completed. Sanity: result finite.
			if res == nil {
				t.Fatalf("trial %d %v: nil result without error", trial, mode)
			}
		}
	}
}

func TestAlternateTimeCodecThroughEngine(t *testing.T) {
	// gorilla-time timestamps exercise the generic (non-ts2diff) decode
	// path for the time column in every mode.
	ts, vals := testData(6_000, 31, false)
	var want int64
	t1, t2 := ts[1000], ts[5000]
	for i := range ts {
		if ts[i] >= t1 && ts[i] <= t2 {
			want += vals[i]
		}
	}
	for _, mode := range []Mode{ModeETSQP, ModeSerial} {
		st := storage.NewStore()
		if err := st.Append("ts", ts, vals, storage.Options{
			PageSize: 700, TimeCodec: "gorilla-time", ValueCodec: "sprintz",
		}); err != nil {
			t.Fatal(err)
		}
		e := New(st, mode)
		res, err := e.ExecuteSQL(fmt.Sprintf(
			"SELECT SUM(A) FROM ts WHERE TIME >= %d AND TIME <= %d", t1, t2))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got := res.Aggregates["SUM(A)"]; got != float64(want) {
			t.Fatalf("%v: got %v want %d", mode, got, want)
		}
	}
}

func TestLimitClause(t *testing.T) {
	ts, vals := testData(2000, 40, true)
	st := storeFor(t, ModeETSQP, ts, vals, 500)
	e := New(st, ModeETSQP)
	res, err := e.ExecuteSQL("SELECT * FROM ts WHERE TIME >= 0 AND TIME <= 99999999999 LIMIT 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d want 7", len(res.Rows))
	}
	// Merge path.
	st2 := storage.NewStore()
	if err := st2.Append("ts1", ts, vals, storage.Options{}); err != nil {
		t.Fatal(err)
	}
	ts2 := make([]int64, len(ts))
	for i := range ts2 {
		ts2[i] = ts[i] + 13
	}
	if err := st2.Append("ts2", ts2, vals, storage.Options{}); err != nil {
		t.Fatal(err)
	}
	e2 := New(st2, ModeETSQP)
	res2, err := e2.ExecuteSQL("SELECT * FROM ts1 UNION ts2 ORDER BY TIME LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 5 {
		t.Fatalf("merge rows = %d want 5", len(res2.Rows))
	}
	res3, err := e2.ExecuteSQL("SELECT * FROM ts1, ts2 LIMIT 4")
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Rows) > 4 {
		t.Fatalf("join rows = %d", len(res3.Rows))
	}
}

func TestExplain(t *testing.T) {
	ts, vals := testData(10_000, 50, true)
	st := storeFor(t, ModeETSQPPrune, ts, vals, 1024)
	e := New(st, ModeETSQPPrune)
	e.Workers = 4

	info, err := e.Explain("SELECT SUM(A) FROM ts WHERE TIME >= 0 AND TIME <= 99999999999999")
	if err != nil {
		t.Fatal(err)
	}
	if info.Shape != "aggregate" || !info.Fused || info.Pages != 10 || info.Pruning {
		t.Fatalf("plan: %+v", info)
	}
	info, err = e.Explain("SELECT SUM(A) FROM (SELECT * FROM ts WHERE A > 5)")
	if err != nil {
		t.Fatal(err)
	}
	if info.Fused || !info.Pruning {
		t.Fatalf("plan: %+v", info)
	}
	info, err = e.Explain(fmt.Sprintf("SELECT AVG(A) FROM ts SW(%d, %d)", ts[0], int64(100*1000)))
	if err != nil {
		t.Fatal(err)
	}
	if info.Shape != "window" || info.Windows != 10 {
		t.Fatalf("plan: %+v", info)
	}
	if s := info.String(); !contains(s, "window query") || !contains(s, "window instances: 10") {
		t.Fatalf("render: %s", s)
	}
	if _, err := e.Explain("SELECT SUM(A) FROM missing"); err == nil {
		t.Fatal("unknown series must fail")
	}
	if _, err := e.Explain("not sql"); err == nil {
		t.Fatal("parse error must propagate")
	}
	// Scan and merge shapes.
	info, err = e.Explain("SELECT * FROM ts WHERE A > 3")
	if err != nil || info.Shape != "scan" {
		t.Fatalf("%+v %v", info, err)
	}
	st2 := storage.NewStore()
	_ = st2.Append("a", ts, vals, storage.Options{PageSize: 1000})
	ts2 := make([]int64, len(ts))
	for i := range ts2 {
		ts2[i] = ts[i] + 7
	}
	_ = st2.Append("b", ts2, vals, storage.Options{PageSize: 1000})
	e2 := New(st2, ModeETSQP)
	e2.Workers = 4
	info, err = e2.Explain("SELECT * FROM a UNION b ORDER BY TIME")
	if err != nil || info.Shape != "merge" || info.MergeRanges < 2 {
		t.Fatalf("%+v %v", info, err)
	}
	info, err = e2.Explain("SELECT * FROM a, b")
	if err != nil || info.Shape != "join" {
		t.Fatalf("%+v %v", info, err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}

func TestTimeCuts(t *testing.T) {
	ts, vals := testData(10_000, 51, true)
	st := storeFor(t, ModeETSQP, ts, vals, 1000)
	ser, _ := st.Series("ts")
	t1, t2 := ts[0], ts[len(ts)-1]
	for _, n := range []int{1, 2, 4, 10, 100} {
		cuts := timeCuts(ser, t1, t2, n)
		if len(cuts) == 0 || len(cuts) > n && n > 0 {
			t.Fatalf("n=%d: %d cuts", n, len(cuts))
		}
		// Disjoint contiguous coverage of [t1, t2].
		if cuts[0][0] != t1 || cuts[len(cuts)-1][1] != t2 {
			t.Fatalf("n=%d: cover [%d,%d] with %v", n, t1, t2, cuts)
		}
		for i := 1; i < len(cuts); i++ {
			if cuts[i][0] != cuts[i-1][1]+1 {
				t.Fatalf("n=%d: gap between %v and %v", n, cuts[i-1], cuts[i])
			}
		}
	}
	// Empty page range falls back to one cut.
	if cuts := timeCuts(ser, t2+100, t2+200, 4); len(cuts) != 1 {
		t.Fatalf("empty range cuts: %v", cuts)
	}
}

func TestHeaderStatsAggregation(t *testing.T) {
	ts, vals := testData(20_000, 60, false)
	st := storeFor(t, ModeETSQP, ts, vals, 1000)
	t1, t2 := ts[0], ts[len(ts)-1]
	want, wantCount := sumRange(ts, vals, t1, t2, func(int64) bool { return true })
	sql := fmt.Sprintf("SELECT SUM(A), COUNT(A) FROM ts WHERE TIME >= %d AND TIME <= %d", t1, t2)
	e := New(st, ModeETSQP)
	e.UseHeaderStats = true
	res, err := e.ExecuteSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregates["SUM(A)"] != float64(want) || res.Aggregates["COUNT(A)"] != float64(wantCount) {
		t.Fatalf("got %v", res.Aggregates)
	}
	if res.Stats.StatAnswered != 20 {
		t.Fatalf("StatAnswered = %d want 20 (all pages)", res.Stats.StatAnswered)
	}
	// A partial range must fall back to the pipeline for edge pages.
	res2, err := e.ExecuteSQL(fmt.Sprintf(
		"SELECT SUM(A) FROM ts WHERE TIME >= %d AND TIME <= %d", ts[500], ts[19_000]))
	if err != nil {
		t.Fatal(err)
	}
	want2, _ := sumRange(ts, vals, ts[500], ts[19_000], func(int64) bool { return true })
	if res2.Aggregates["SUM(A)"] != float64(want2) {
		t.Fatalf("partial: got %v want %d", res2.Aggregates["SUM(A)"], want2)
	}
	if res2.Stats.StatAnswered == 0 || res2.Stats.StatAnswered >= 20 {
		t.Fatalf("partial StatAnswered = %d", res2.Stats.StatAnswered)
	}
	// Off by default.
	e2 := New(st, ModeETSQP)
	res3, err := e2.ExecuteSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Stats.StatAnswered != 0 {
		t.Fatal("stats answering must be opt-in")
	}
}

func TestJoinCorrelation(t *testing.T) {
	n := 5000
	ts := make([]int64, n)
	a := make([]int64, n)
	b := make([]int64, n)
	rng := rand.New(rand.NewSource(70))
	for i := 0; i < n; i++ {
		ts[i] = int64(i) * 1000
		a[i] = int64(i%100) + rng.Int63n(10)
		b[i] = 3*a[i] + 17 // perfectly linear
	}
	st := storage.NewStore()
	if err := st.Append("ts1", ts, a, storage.Options{PageSize: 800}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("ts2", ts, b, storage.Options{PageSize: 600}); err != nil {
		t.Fatal(err)
	}
	e := New(st, ModeETSQP)
	res, err := e.ExecuteSQL("SELECT CORR(ts1.A, ts2.A) FROM ts1, ts2")
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Aggregates["CORR(A,B)"]; math.Abs(r-1) > 1e-9 {
		t.Fatalf("corr = %v want 1", r)
	}
	// Anti-correlated.
	c := make([]int64, n)
	for i := range c {
		c[i] = -2 * a[i]
	}
	if err := st.Append("ts3", ts, c, storage.Options{}); err != nil {
		t.Fatal(err)
	}
	res, err = e.ExecuteSQL("SELECT CORR(ts1.A, ts3.A) FROM ts1, ts3")
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Aggregates["CORR(A,B)"]; math.Abs(r+1) > 1e-9 {
		t.Fatalf("anticorr = %v want -1", r)
	}
	// Zero variance errors.
	z := make([]int64, n)
	for i := range z {
		z[i] = 5
	}
	if err := st.Append("tsz", ts, z, storage.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecuteSQL("SELECT CORR(ts1.A, tsz.A) FROM ts1, tsz"); err == nil {
		t.Fatal("zero variance must fail")
	}
	// Empty join errors.
	ts2 := make([]int64, n)
	for i := range ts2 {
		ts2[i] = ts[i] + 1
	}
	if err := st.Append("tso", ts2, a, storage.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecuteSQL("SELECT CORR(ts1.A, tso.A) FROM ts1, tso"); err == nil {
		t.Fatal("empty join must fail")
	}
}

func TestPageSizeInvariance(t *testing.T) {
	// Identical data stored at different page sizes must answer every
	// query identically in every mode.
	ts, vals := testData(9_000, 80, false)
	t1, t2 := ts[1000], ts[8000]
	sql := fmt.Sprintf("SELECT SUM(A), COUNT(A), MIN(A), MAX(A) FROM ts WHERE TIME >= %d AND TIME <= %d", t1, t2)
	var ref map[string]float64
	for _, ps := range []int{256, 1000, 3000, 9000} {
		for _, mode := range []Mode{ModeETSQP, ModeSerial, ModeSBoost} {
			st := storeFor(t, mode, ts, vals, ps)
			res, err := New(st, mode).ExecuteSQL(sql)
			if err != nil {
				t.Fatalf("ps=%d %v: %v", ps, mode, err)
			}
			if ref == nil {
				ref = res.Aggregates
				continue
			}
			if !reflect.DeepEqual(res.Aggregates, ref) {
				t.Fatalf("ps=%d %v: %v != %v", ps, mode, res.Aggregates, ref)
			}
		}
	}
}

func TestChecksumCorruptionThroughEngine(t *testing.T) {
	ts, vals := testData(2000, 81, true)
	st := storeFor(t, ModeETSQP, ts, vals, 500)
	ser, _ := st.Series("ts")
	ser.Pages[1].Value.Data[0] ^= 0xFF
	for _, mode := range []Mode{ModeETSQP, ModeSerial} {
		e := New(st, mode)
		if _, err := e.ExecuteSQL("SELECT SUM(A) FROM ts WHERE TIME >= 0 AND TIME <= 99999999999"); err == nil {
			t.Fatalf("%v: corrupted page not detected", mode)
		}
	}
}

func TestWindowWithValuePredicate(t *testing.T) {
	ts, vals := testData(8_000, 90, true) // interval 100
	thresh := vals[0]
	dt := int64(100 * 1000)
	sql := fmt.Sprintf("SELECT SUM(A) FROM ts WHERE A > %d SW(%d, %d)", thresh, ts[0], dt)
	for _, mode := range []Mode{ModeETSQP, ModeETSQPPrune, ModeSerial} {
		st := storeFor(t, mode, ts, vals, 1500)
		res, err := New(st, mode).ExecuteSQL(sql)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for wi, w := range res.Windows {
			var want int64
			var count int64
			for i := range ts {
				if ts[i] >= w.Start && ts[i] < w.End && vals[i] > thresh {
					want += vals[i]
					count++
				}
			}
			if w.Value != float64(want) || w.Count != count {
				t.Fatalf("%v window %d: got %v/%d want %d/%d", mode, wi, w.Value, w.Count, want, count)
			}
		}
	}
}

func TestWindowMultiItemRejected(t *testing.T) {
	ts, vals := testData(100, 91, true)
	st := storeFor(t, ModeETSQP, ts, vals, 50)
	e := New(st, ModeETSQP)
	if _, err := e.ExecuteSQL(fmt.Sprintf("SELECT SUM(A), COUNT(A) FROM ts SW(%d, 1000)", ts[0])); err == nil {
		t.Fatal("multi-item window query must be rejected")
	}
}

func TestTimeScanEarlyStop(t *testing.T) {
	// Irregular timestamps + a selective time filter: prune mode must
	// stop decoding the time column once past t2 and still be exact.
	ts, vals := testData(20_000, 95, false)
	t1, t2 := ts[100], ts[2000] // early range inside the first page
	want, wantCount := sumRange(ts, vals, t1, t2, func(int64) bool { return true })
	st := storeFor(t, ModeETSQPPrune, ts, vals, 10_000) // big pages
	e := New(st, ModeETSQPPrune)
	res, err := e.ExecuteSQL(fmt.Sprintf(
		"SELECT SUM(A), COUNT(A) FROM ts WHERE TIME >= %d AND TIME <= %d", t1, t2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregates["SUM(A)"] != float64(want) || res.Aggregates["COUNT(A)"] != float64(wantCount) {
		t.Fatalf("got %v want sum %d count %d", res.Aggregates, want, wantCount)
	}
	if res.Stats.RowsPruned < 7000 {
		t.Fatalf("time scan pruned only %d rows", res.Stats.RowsPruned)
	}
	// Plain ETSQP gives the same numbers without the early stop.
	res2, err := New(st, ModeETSQP).ExecuteSQL(fmt.Sprintf(
		"SELECT SUM(A), COUNT(A) FROM ts WHERE TIME >= %d AND TIME <= %d", t1, t2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Aggregates, res2.Aggregates) {
		t.Fatalf("prune vs plain mismatch: %v vs %v", res.Aggregates, res2.Aggregates)
	}
}
