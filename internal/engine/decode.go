package engine

import (
	"sync"
	"time"

	"etsqp/internal/encoding"
	"etsqp/internal/encoding/rlbe"
	"etsqp/internal/encoding/ts2diff"
	"etsqp/internal/fastlanes"
	"etsqp/internal/obs"
	"etsqp/internal/pipeline"
	"etsqp/internal/storage"
)

// pageBufPool recycles the worker-local buffers pages are loaded into.
var pageBufPool = sync.Pool{New: func() any { return new([]byte) }}

// loadPage copies a page's payload into a worker-local buffer — the
// memory-I/O stage of the pipeline (pages move from the shared buffer
// into the core's working set; Figure 14(b) charges this separately).
// The returned release function recycles the buffer.
func loadPage(p *storage.Page, col *statsCollector) (data []byte, release func()) {
	start := time.Now()
	bufp := pageBufPool.Get().(*[]byte)
	if cap(*bufp) < len(p.Data) {
		*bufp = make([]byte, len(p.Data))
	}
	buf := (*bufp)[:len(p.Data)]
	copy(buf, p.Data)
	if col != nil {
		col.pagesRead.Add(1)
		col.bytesScanned.Add(int64(len(p.Data)))
		col.ioNanos.Add(int64(time.Since(start)))
	}
	return buf, func() { pageBufPool.Put(bufp) }
}

// pageBlock parses a ts2diff page payload (the structured view the
// vectorized paths need). Returns nil for non-ts2diff codecs.
func pageBlock(p *storage.Page) (*ts2diff.Block, error) {
	return pageBlockData(p.Header.Codec, p.Data)
}

// pageBlockData parses a ts2diff block from already-loaded page bytes.
func pageBlockData(codec string, data []byte) (*ts2diff.Block, error) {
	switch codec {
	case "ts2diff", "ts2diff2":
		return ts2diff.Unmarshal(data)
	default:
		return nil, nil
	}
}

// decodeColumn decodes a whole page column according to the engine mode.
func (e *Engine) decodeColumn(ser string, p *storage.Page, col *statsCollector) ([]int64, error) {
	return e.decodeColumnRange(ser, p, 0, p.Header.Count, col)
}

// decodeColumnRange decodes rows [from, to) of a page column, consulting
// the decoded-page cache first. A hit returns the shared cached slice
// (or a subslice of it) without touching the payload — no load, no
// checksum, no decode — which is the concurrent-workload win the cache
// exists for. Full-page misses are decoded and admitted; partial-range
// decodes are never admitted (they would poison the full-page key).
// Cached slices are shared across queries: callers must treat every
// return value as read-only.
func (e *Engine) decodeColumnRange(ser string, p *storage.Page, from, to int, col *statsCollector) ([]int64, error) {
	if e.Cache == nil {
		return e.decodeColumnRangeUncached(p, from, to, col)
	}
	full := from == 0 && to == p.Header.Count
	if v, ok := e.Cache.Get(p); ok {
		if col != nil {
			col.cacheHits.Add(1)
		}
		if full {
			return v, nil
		}
		return v[from:to], nil
	}
	if col != nil {
		col.cacheMisses.Add(1)
	}
	vals, err := e.decodeColumnRangeUncached(p, from, to, col)
	if err == nil && full {
		e.Cache.Put(ser, p, vals)
	}
	return vals, err
}

// decodeColumnRangeUncached is the decode path proper. Vectorized
// modes resolve slice prefix dependencies with SumPacked; Serial decodes
// the whole page and slices (which is what a value-wise decoder must do).
// A miss necessarily materializes the decoded column, so this is where
// the hot cursor path is allowed to allocate (amortized by the cache).
//
//etsqp:coldpath
func (e *Engine) decodeColumnRangeUncached(p *storage.Page, from, to int, col *statsCollector) (vals []int64, err error) {
	data, release := loadPage(p, col)
	defer release()
	if err := p.VerifyChecksum(); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() {
		if col == nil && !obs.Enabled() {
			return
		}
		elapsed := int64(time.Since(start))
		if col != nil {
			col.decodeNanos.Add(elapsed)
		}
		obs.EngineHistPageDecode.Observe(elapsed)
	}()
	full := from == 0 && to == p.Header.Count
	switch e.Mode {
	case ModeSerial, ModeFastLanes:
		if p.Header.Codec == "fastlanes" && !full {
			// Block-granular slicing: decode only the FLMM1024 blocks the
			// range touches (fair thread distribution, Section VII-C).
			return fastlanes.DecodeRangeBlocks(data, from, to)
		}
		c, err := encoding.Lookup(p.Header.Codec)
		if err != nil {
			return nil, err
		}
		all, err := c.Decode(data)
		if err != nil {
			return nil, err
		}
		if full {
			return all, nil
		}
		return all[from:to], nil
	default:
		var blk *ts2diff.Block
		switch p.Header.Codec {
		case "ts2diff", "ts2diff2":
			blk, err = ts2diff.Unmarshal(data)
			if err != nil {
				return nil, err
			}
		}
		if blk == nil {
			c, err := encoding.Lookup(p.Header.Codec)
			if err != nil {
				return nil, err
			}
			all, err := c.Decode(data)
			if err != nil {
				return nil, err
			}
			if full {
				return all, nil
			}
			return all[from:to], nil
		}
		if full {
			return pipeline.DecodeBlock(blk)
		}
		return pipeline.DecodeRange(blk, from, to)
	}
}

// constantIntervalOf reports the page's constant time interval, when its
// time column is a width-0 order-2 TS2DIFF block. Only vectorized modes
// exploit it (the Serial and SBoost baselines decode every timestamp).
func (e *Engine) constantIntervalOf(p *storage.Page) (int64, bool) {
	if e.Mode == ModeSerial || e.Mode == ModeSBoost || e.Mode == ModeFastLanes {
		return 0, false
	}
	blk, err := pageBlock(p)
	if err != nil || blk == nil {
		return 0, false
	}
	return pipeline.ConstantInterval(blk)
}

// deltaRunsOf extracts Delta-Repeat pairs when the page uses the RLBE
// codec — the representation Section IV's fused aggregations consume.
func deltaRunsOfData(codec string, data []byte) (int64, []encoding.DeltaRun, bool) {
	if codec != "rlbe" {
		return 0, nil, false
	}
	blk, err := rlbe.Unmarshal(data)
	if err != nil {
		return 0, nil, false
	}
	pairs, err := blk.Pairs()
	if err != nil {
		return 0, nil, false
	}
	return blk.First, pairs, true
}

// jobsFor builds the per-worker job lists. ETSQP-family modes deal whole
// pages when possible (Section III-C); SBoost always slices every page
// across all workers, paying the per-slice prefix dependency.
func (e *Engine) jobsFor(pairs []storage.PagePair) [][]pipeline.Slice {
	w := e.workers()
	if e.ForceSlices > 0 || e.Mode == ModeSBoost {
		per := e.ForceSlices
		if per <= 0 {
			per = w
		}
		out := make([][]pipeline.Slice, w)
		i := 0
		for _, pp := range pairs {
			for _, sl := range pipeline.SplitPage(pp, per) {
				out[i%w] = append(out[i%w], sl)
				i++
			}
		}
		return out
	}
	return pipeline.SplitPages(pairs, w)
}
