package engine

import (
	"math"
	"strings"
	"testing"

	"etsqp/internal/sqlparse"
)

// TestPartialAggOverflowStickiness exercises the Section VI-C invariant:
// once any accumulation step leaves int64, the overflow flag must
// survive every later fold and every merge order, and final() must turn
// it into an error for the value-carrying aggregates instead of
// returning a wrapped number.
func TestPartialAggOverflowStickiness(t *testing.T) {
	overflowed := func() *partialAgg {
		p := &partialAgg{}
		p.addValue(math.MaxInt64)
		p.addValue(1) // sum wraps here
		return p
	}
	clean := func() *partialAgg {
		p := &partialAgg{}
		p.addValue(3)
		p.addValue(4)
		return p
	}

	if p := overflowed(); !p.overflow {
		t.Fatal("addValue(MaxInt64) then addValue(1) did not set overflow")
	}

	t.Run("merge-orders", func(t *testing.T) {
		for _, tc := range []struct {
			name string
			dst  *partialAgg
			src  *partialAgg
		}{
			{"clean-into-overflowed", overflowed(), clean()},
			{"overflowed-into-clean", clean(), overflowed()},
			{"overflowed-into-overflowed", overflowed(), overflowed()},
		} {
			tc.dst.merge(tc.src)
			if !tc.dst.overflow {
				t.Errorf("%s: overflow flag lost through merge", tc.name)
			}
		}
	})

	t.Run("merge-chain", func(t *testing.T) {
		// A window partial merged through several empty worker slots — the
		// shape executeAgg produces with more workers than slices.
		global := &partialAgg{}
		global.merge(&partialAgg{})
		global.merge(overflowed())
		global.merge(&partialAgg{})
		global.merge(clean())
		if !global.overflow {
			t.Fatal("overflow flag lost merging through empty partials")
		}
	})

	t.Run("addSum-and-addBoundary-preserve", func(t *testing.T) {
		p := overflowed()
		p.addSum(10, 2)
		p.addBoundary(0, 1, 9, 2)
		if !p.overflow {
			t.Fatal("overflow flag lost through addSum/addBoundary")
		}
	})

	t.Run("addSum-sets", func(t *testing.T) {
		p := &partialAgg{}
		p.addSum(math.MaxInt64, 1)
		p.addSum(math.MaxInt64, 1) // fused per-block sums overflow on fold
		if !p.overflow {
			t.Fatal("addSum fold past MaxInt64 did not set overflow")
		}
	})

	t.Run("count-overflow", func(t *testing.T) {
		p := &partialAgg{count: math.MaxInt64}
		p.addSum(0, 1)
		if !p.overflow {
			t.Fatal("count fold past MaxInt64 did not set overflow")
		}
	})

	t.Run("final", func(t *testing.T) {
		for _, agg := range []sqlparse.AggFunc{sqlparse.AggSum, sqlparse.AggAvg, sqlparse.AggVar} {
			p := overflowed()
			if _, err := p.final(agg); err == nil {
				t.Errorf("final(%s) on overflowed partial returned no error", agg)
			} else if !strings.Contains(err.Error(), "overflow") {
				t.Errorf("final(%s) error %q does not mention overflow", agg, err)
			}
		}
		// COUNT and MIN/MAX never consumed the wrapped sum; they stay
		// answerable (the flag only poisons sum-derived results).
		p := overflowed()
		if v, err := p.final(sqlparse.AggCount); err != nil || v != 2 {
			t.Errorf("final(COUNT) = %v, %v; want 2, nil", v, err)
		}
		if v, err := p.final(sqlparse.AggMax); err != nil || v != float64(math.MaxInt64) {
			t.Errorf("final(MAX) = %v, %v; want MaxInt64, nil", v, err)
		}
	})
}
