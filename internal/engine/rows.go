package engine

import (
	"fmt"
	"math"
	"time"

	"etsqp/internal/exec"
	"etsqp/internal/expr"
	"etsqp/internal/obs"
	"etsqp/internal/pipeline"
	"etsqp/internal/sqlparse"
	"etsqp/internal/storage"
)

// sliceJob pairs a pipeline slice with the pre-carved destination
// windows of the shared output columns, so each worker goroutine owns
// exactly the rows it decodes.
type sliceJob struct {
	sl         pipeline.Slice
	tdst, vdst []int64
}

// readSeriesColumns decodes the [t1, t2] portion of a series into flat
// columns, running the pages/slices as one morsel batch on the shared
// pool and writing each slice's rows into its disjoint output range (no
// merge copying).
func (e *Engine) readSeriesColumns(name string, t1, t2 int64, col *statsCollector) ([]int64, []int64, error) {
	ser, ok := e.Store.Series(name)
	if !ok {
		return nil, nil, fmt.Errorf("engine: unknown series %q", name)
	}
	var loaded []storage.PagePair
	total := 0
	offsets := make(map[*storage.Page]int)
	for _, pp := range ser.PagesInRange(t1, t2) {
		col.pagesTotal.Add(1)
		offsets[pp.Time] = total
		total += pp.Count()
		loaded = append(loaded, pp)
	}
	ts := make([]int64, total)
	vals := make([]int64, total)
	// Carve each slice's disjoint output window up front: a morsel then
	// writes only through its own sliceJob destinations, never through
	// the shared columns, so participants are write-disjoint regardless
	// of which worker steals which morsel.
	jobs := e.jobsFor(loaded)
	nm := 0
	for _, slices := range jobs {
		nm += len(slices)
	}
	morsels := make([]sliceJob, 0, nm)
	for _, slices := range jobs {
		for _, sl := range slices {
			base := offsets[sl.Pair.Time]
			morsels = append(morsels, sliceJob{
				sl:   sl,
				tdst: ts[base+sl.StartRow : base+sl.EndRow],
				vdst: vals[base+sl.StartRow : base+sl.EndRow],
			})
		}
	}
	err := e.pool().RunWith(&col.execStats, len(morsels), e.workers(), func(w *exec.Worker, i int) error {
		j := morsels[i]
		col.slicesRun.Add(1)
		col.tuplesLoaded.Add(int64(j.sl.Rows()))
		obs.EngineHistSliceRows.Observe(int64(j.sl.Rows()))
		var sliceStart time.Time
		if col.trace != nil {
			sliceStart = time.Now()
		}
		tcol, err := e.decodeColumnRange(name, j.sl.Pair.Time, j.sl.StartRow, j.sl.EndRow, col)
		if err != nil {
			return err
		}
		vcol, err := e.decodeColumnRange(name, j.sl.Pair.Value, j.sl.StartRow, j.sl.EndRow, col)
		if err != nil {
			return err
		}
		col.valuesDecoded.Add(int64(len(vcol)))
		copy(j.tdst, tcol)
		copy(j.vdst, vcol)
		if col.trace != nil {
			col.trace.addSlice(SliceEvent{
				StartRow: j.sl.StartRow, EndRow: j.sl.EndRow, Rows: j.sl.Rows(),
				DurNs: int64(time.Since(sliceStart)),
			})
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	// Trim to the requested time range (page granularity loaded extra).
	lo, hi := expr.TimeRangeBounds(ts, t1, t2)
	return ts[lo:hi], vals[lo:hi], nil
}

// executeScan handles SELECT * FROM series [WHERE ...]: decoded rows with
// predicates applied. A LIMIT scan streams through a batch cursor so the
// scan stops decoding pages once the limit is satisfied; an unbounded
// scan materializes all pages in parallel on the shared pool.
func (e *Engine) executeScan(q *sqlparse.Query, tr *Trace) (*Result, error) {
	t1, t2 := timeRange(q.Preds)
	vp := valuePreds(q.Preds)
	col := newCollector(tr)
	res := &Result{}
	if q.Limit > 0 {
		cur, err := e.newBatchCursor(q.Series[0], t1, t2, col)
		if err != nil {
			return nil, err
		}
		for len(res.Rows) < q.Limit {
			b, err := cur.Next()
			if err != nil {
				return nil, err
			}
			if b.Len() == 0 {
				break
			}
			timed(&col.filterNanos, func() error {
				for i := range b.Ts {
					if predsMatch(vp, b.Vals[i]) {
						res.Rows = append(res.Rows, Row{Time: b.Ts[i], Values: []int64{b.Vals[i]}})
						if len(res.Rows) >= q.Limit {
							break
						}
					}
				}
				return nil
			})
		}
		res.Stats = col.finish()
		return res, nil
	}
	ts, vals, err := e.readSeriesColumns(q.Series[0], t1, t2, col)
	if err != nil {
		return nil, err
	}
	err = timed(&col.filterNanos, func() error {
		for i := range ts {
			if predsMatch(vp, vals[i]) {
				res.Rows = append(res.Rows, Row{Time: ts[i], Values: []int64{vals[i]}})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats = col.finish()
	return res, nil
}

// executeMerge handles Q5: SELECT * FROM ts1 UNION ts2 ORDER BY TIME —
// series concatenation with time-range merge nodes (Figure 9(a)): the
// covered interval is cut at page boundaries, each range is decoded and
// merged by an independent worker, and the per-range results concatenate
// in time order.
func (e *Engine) executeMerge(q *sqlparse.Query, tr *Trace) (*Result, error) {
	if len(q.Series) != 1 {
		return nil, fmt.Errorf("engine: UNION requires a single left series")
	}
	t1, t2 := timeRange(q.Preds)
	col := newCollector(tr)
	serL, ok := e.Store.Series(q.Series[0])
	if !ok {
		return nil, fmt.Errorf("engine: unknown series %q", q.Series[0])
	}
	ranges := timeCuts(serL, t1, t2, e.workers())
	col.mergeRanges.Add(int64(len(ranges)))
	rows, err := e.runRanged(ranges, col, func(a, b int64) ([]Row, error) {
		lc, err := e.newBatchCursor(q.Series[0], a, b, col)
		if err != nil {
			return nil, err
		}
		rc, err := e.newBatchCursor(q.UnionWith, a, b, col)
		if err != nil {
			return nil, err
		}
		var out []Row
		err = mergeCursors(lc, rc, col, func(r Row) bool {
			out = append(out, r)
			// Rows past the limit can never survive the final trim, so
			// each range stops decoding once it alone could satisfy it.
			return q.Limit <= 0 || len(out) < q.Limit
		})
		return out, err
	})
	if err != nil {
		return nil, err
	}
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	return &Result{Rows: rows, Stats: col.finish()}, nil
}

// executeJoin handles Q4 (projection over join) and Q6 (natural join):
// the shared time interval is partitioned into ranges, each worker
// decodes both series for its range and produces join masks within it
// (Figure 9(b): mask vectors are generated within the shared time range),
// and the merge node concatenates results in order (Equation 6).
func (e *Engine) executeJoin(q *sqlparse.Query, tr *Trace) (*Result, error) {
	t1, t2 := timeRange(q.Preds)
	col := newCollector(tr)
	serL, ok := e.Store.Series(q.Series[0])
	if !ok {
		return nil, fmt.Errorf("engine: unknown series %q", q.Series[0])
	}
	vp := valuePreds(q.Preds)
	item := q.Items[0]
	if !item.Star && item.Add == nil {
		return nil, fmt.Errorf("engine: unsupported join projection")
	}
	ranges := timeCuts(serL, t1, t2, e.workers())
	col.mergeRanges.Add(int64(len(ranges)))
	rows, err := e.runRanged(ranges, col, func(a, b int64) ([]Row, error) {
		lc, err := e.newBatchCursor(q.Series[0], a, b, col)
		if err != nil {
			return nil, err
		}
		rc, err := e.newBatchCursor(q.Series[1], a, b, col)
		if err != nil {
			return nil, err
		}
		var out []Row
		err = joinCursors(lc, rc, col, func(t, lv, rv int64) bool {
			if !joinPredsMatch(vp, q.Series, lv, rv) {
				return true
			}
			if item.Star {
				out = append(out, Row{Time: t, Values: []int64{lv, rv}})
			} else {
				out = append(out, Row{Time: t, Values: []int64{lv + rv}})
			}
			return q.Limit <= 0 || len(out) < q.Limit
		})
		return out, err
	})
	if err != nil {
		return nil, err
	}
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	return &Result{Rows: rows, Stats: col.finish()}, nil
}

// joinPredsMatch applies qualified value predicates to a joined row.
func joinPredsMatch(vp []sqlparse.Pred, series []string, lv, rv int64) bool {
	for _, p := range vp {
		v := lv
		if p.Col.Series != "" && len(series) == 2 && p.Col.Series == series[1] {
			v = rv
		}
		if !p.Op.Eval(v, p.Value) {
			return false
		}
	}
	return true
}

// executeJoinCorr handles SELECT CORR(ts1.A, ts2.A) FROM ts1, ts2: the
// Σ aᵢ·bᵢ application of Section IV. Both series decode and join on
// timestamps; the Pearson correlation is computed from the fused sums
// (Σa, Σb, Σa², Σb², Σab) of the joined rows.
func (e *Engine) executeJoinCorr(q *sqlparse.Query, tr *Trace) (*Result, error) {
	t1, t2 := timeRange(q.Preds)
	col := newCollector(tr)
	lts, lvs, err := e.readSeriesColumns(q.Series[0], t1, t2, col)
	if err != nil {
		return nil, err
	}
	rts, rvs, err := e.readSeriesColumns(q.Series[1], t1, t2, col)
	if err != nil {
		return nil, err
	}
	var sa, sb, sab float64
	var saa, sbb float64
	var n float64
	err = timed(&col.aggNanos, func() error {
		left, right := expr.NaturalJoin(lts, rts)
		for k := range left {
			a := float64(lvs[left[k]])
			b := float64(rvs[right[k]])
			sa += a
			sb += b
			saa += a * a
			sbb += b * b
			sab += a * b
			n++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("engine: CORR over empty join")
	}
	cov := sab/n - sa/n*sb/n
	va := saa/n - sa/n*sa/n
	vb := sbb/n - sb/n*sb/n
	if va <= 0 || vb <= 0 {
		return nil, fmt.Errorf("engine: CORR undefined for zero variance")
	}
	r := cov / math.Sqrt(va*vb)
	return &Result{
		Aggregates: map[string]float64{"CORR(A,B)": r},
		Stats:      col.finish(),
	}, nil
}
