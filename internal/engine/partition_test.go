package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// checkCuts asserts the timeCuts invariants: disjoint, contiguous,
// covering [t1, t2] exactly.
func checkCuts(t *testing.T, cuts [][2]int64, t1, t2 int64) {
	t.Helper()
	if len(cuts) == 0 {
		t.Fatalf("no cuts for [%d,%d]", t1, t2)
	}
	if cuts[0][0] != t1 || cuts[len(cuts)-1][1] != t2 {
		t.Fatalf("cuts %v do not cover [%d,%d]", cuts, t1, t2)
	}
	for i, c := range cuts {
		if c[0] > c[1] {
			t.Fatalf("cut %d inverted: %v", i, c)
		}
		if i > 0 && c[0] != cuts[i-1][1]+1 {
			t.Fatalf("gap or overlap between %v and %v", cuts[i-1], c)
		}
	}
}

// TestTimeCutsSinglePage: a series that fits in one page always yields a
// single cut, whatever parallelism is requested.
func TestTimeCutsSinglePage(t *testing.T) {
	ts, vals := testData(500, 7, true)
	st := storeFor(t, ModeETSQP, ts, vals, 1024)
	ser, _ := st.Series("ts")
	t1, t2 := ts[0], ts[len(ts)-1]
	for _, n := range []int{1, 2, 8, 100} {
		cuts := timeCuts(ser, t1, t2, n)
		if len(cuts) != 1 {
			t.Fatalf("n=%d: want 1 cut for single page, got %v", n, cuts)
		}
		checkCuts(t, cuts, t1, t2)
	}
}

// TestTimeCutsMorePartsThanPages: n clamps to the page count, and the
// cuts still tile the range.
func TestTimeCutsMorePartsThanPages(t *testing.T) {
	ts, vals := testData(5_000, 9, false)
	st := storeFor(t, ModeETSQP, ts, vals, 1000) // 5 pages
	ser, _ := st.Series("ts")
	t1, t2 := ts[0], ts[len(ts)-1]
	pages := ser.PagesInRange(t1, t2)
	for _, n := range []int{len(pages) + 1, 64, 1 << 20} {
		cuts := timeCuts(ser, t1, t2, n)
		if len(cuts) > len(pages) {
			t.Fatalf("n=%d: %d cuts exceed %d pages", n, len(cuts), len(pages))
		}
		checkCuts(t, cuts, t1, t2)
		// Every interior boundary must sit just before a page start, so
		// no cut splits a page.
		starts := map[int64]bool{}
		for _, p := range pages {
			starts[p.StartTime()] = true
		}
		for i := 0; i < len(cuts)-1; i++ {
			if !starts[cuts[i][1]+1] {
				t.Fatalf("n=%d: boundary %d not at a page start", n, cuts[i][1])
			}
		}
	}
}

// TestTimeCutsAdjacentPageStarts drives the cut-collision guard: one-row
// pages with consecutive timestamps make each cut land exactly on the
// current range start (cut == start, the boundary of the `cut < start`
// guard), so every range degenerates to a single point. The cuts must
// stay disjoint and contiguous rather than skipping or overlapping.
func TestTimeCutsAdjacentPageStarts(t *testing.T) {
	const n = 16
	ts := make([]int64, n)
	vals := make([]int64, n)
	for i := range ts {
		ts[i] = 1_000 + int64(i) // adjacent pages: starts differ by 1
		vals[i] = int64(i)
	}
	st := storeFor(t, ModeETSQP, ts, vals, 1) // one row per page
	ser, _ := st.Series("ts")
	t1, t2 := ts[0], ts[len(ts)-1]
	cuts := timeCuts(ser, t1, t2, n)
	if len(cuts) != n {
		t.Fatalf("want %d single-point cuts, got %d: %v", n, len(cuts), cuts)
	}
	checkCuts(t, cuts, t1, t2)
	for i, c := range cuts {
		if c[0] != c[1] || c[0] != ts[i] {
			t.Fatalf("cut %d = %v, want single point {%d,%d}", i, c, ts[i], ts[i])
		}
	}
	// A partial request still tiles without colliding.
	checkCuts(t, timeCuts(ser, t1, t2, 5), t1, t2)
	// Starting mid-series: the first range begins at t1 even though the
	// first cut candidate sits only one tick later.
	checkCuts(t, timeCuts(ser, ts[3], ts[12], 7), ts[3], ts[12])
}

// TestTimeCutsEmptyRange: a range past the data (no pages) falls back to
// the identity cut, as does an inverted or degenerate range.
func TestTimeCutsEmptyRange(t *testing.T) {
	ts, vals := testData(2_000, 11, true)
	st := storeFor(t, ModeETSQP, ts, vals, 500)
	ser, _ := st.Series("ts")
	t2 := ts[len(ts)-1]
	for _, r := range [][2]int64{
		{t2 + 100, t2 + 200}, // beyond the data
		{0, ts[0] - 1},       // before the data
		{ts[0], ts[0]},       // degenerate single instant
	} {
		cuts := timeCuts(ser, r[0], r[1], 8)
		checkCuts(t, cuts, r[0], r[1])
		if r[0] == r[1] && len(cuts) != 1 {
			t.Fatalf("degenerate range: %v", cuts)
		}
	}
}

// TestRunRangedClaims: runRanged preserves range order in its output,
// runs every range exactly once even with more ranges than workers, and
// propagates the first error.
func TestRunRangedClaims(t *testing.T) {
	e := New(storeFor(t, ModeETSQP, []int64{1, 2}, []int64{1, 2}, 2), ModeETSQP)
	e.Workers = 3
	ranges := make([][2]int64, 50)
	for i := range ranges {
		ranges[i] = [2]int64{int64(i) * 10, int64(i)*10 + 9}
	}
	var calls atomic.Int64
	rows, err := e.runRanged(ranges, nil, func(t1, t2 int64) ([]Row, error) {
		calls.Add(1)
		return []Row{{Time: t1}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(len(ranges)) {
		t.Fatalf("fn ran %d times, want %d", got, len(ranges))
	}
	if len(rows) != len(ranges) {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r.Time != int64(i)*10 {
			t.Fatalf("row %d out of order: %+v", i, r)
		}
	}
	boom := errors.New("boom")
	_, err = e.runRanged(ranges, nil, func(t1, t2 int64) ([]Row, error) {
		if t1 == 200 {
			return nil, fmt.Errorf("range %d: %w", t1, boom)
		}
		return nil, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}
