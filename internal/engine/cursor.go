package engine

import (
	"fmt"
	"time"

	"etsqp/internal/expr"
	"etsqp/internal/storage"
)

// Int64Batch is one typed columnar batch yielded by a batch cursor:
// parallel timestamp/value columns for a run of rows in time order.
type Int64Batch struct {
	Ts   []int64
	Vals []int64
}

// Len returns the number of rows in the batch.
//
//etsqp:hotpath
func (b Int64Batch) Len() int { return len(b.Ts) }

// batchCursor streams a series' rows within [t1, t2] as typed columnar
// batches, one storage page per Next call (the array_cursor idiom):
// operators compose over batches while pages decode lazily, so a LIMIT
// or a drained join side stops before later pages are ever touched, and
// merge/join nodes never materialize a whole series.
type batchCursor struct {
	e      *Engine
	name   string
	t1, t2 int64
	pairs  []storage.PagePair
	idx    int
	col    *statsCollector
}

// newBatchCursor opens a cursor over the [t1, t2] rows of a series.
func (e *Engine) newBatchCursor(name string, t1, t2 int64, col *statsCollector) (*batchCursor, error) {
	ser, ok := e.Store.Series(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown series %q", name)
	}
	pairs := ser.PagesInRange(t1, t2)
	col.pagesTotal.Add(int64(len(pairs)))
	return &batchCursor{e: e, name: name, t1: t1, t2: t2, pairs: pairs, col: col}, nil
}

// Next returns the next non-empty batch, or a zero batch at exhaustion.
// The returned columns are read-only views (decode-cache or freshly
// decoded backing) that remain valid until the cursor advances. A
// cache-hit advance is allocation-free (see TestBatchCursorSteadyStateAllocs);
// the decode miss underneath is //etsqp:coldpath.
//
//etsqp:hotpath
func (c *batchCursor) Next() (Int64Batch, error) {
	for c.idx < len(c.pairs) {
		pp := c.pairs[c.idx]
		c.idx++
		c.col.tuplesLoaded.Add(int64(pp.Count()))
		var batchStart time.Time
		if c.col.trace != nil {
			batchStart = time.Now()
		}
		ts, err := c.e.decodeColumnRange(c.name, pp.Time, 0, pp.Count(), c.col)
		if err != nil {
			return Int64Batch{}, err
		}
		vals, err := c.e.decodeColumnRange(c.name, pp.Value, 0, pp.Count(), c.col)
		if err != nil {
			return Int64Batch{}, err
		}
		c.col.valuesDecoded.Add(int64(len(vals)))
		// Clip to the requested time range (page granularity loads extra).
		lo, hi := expr.TimeRangeBounds(ts, c.t1, c.t2)
		if c.col.trace != nil {
			c.col.trace.addSlice(SliceEvent{
				StartRow: lo, EndRow: hi, Rows: hi - lo,
				DurNs: int64(time.Since(batchStart)),
			})
		}
		if lo >= hi {
			continue
		}
		c.col.cursorBatches.Add(1)
		return Int64Batch{Ts: ts[lo:hi], Vals: vals[lo:hi]}, nil
	}
	return Int64Batch{}, nil
}

// cursorHead is the merge-side view of a cursor: the current batch and a
// position in it, refilled on demand. fillNs accumulates time spent
// inside Next so merge nodes can charge pure merge time to the merge
// stage without double counting the io/decode work Next performs.
type cursorHead struct {
	c      *batchCursor
	b      Int64Batch
	i      int
	eof    bool
	fillNs int64
}

// fill ensures the head points at a valid row (or sets eof).
//
//etsqp:hotpath
func (h *cursorHead) fill() error {
	for !h.eof && h.i >= h.b.Len() {
		start := time.Now()
		b, err := h.c.Next()
		h.fillNs += int64(time.Since(start))
		if err != nil {
			return err
		}
		if b.Len() == 0 {
			h.eof = true
			return nil
		}
		h.b, h.i = b, 0
	}
	return nil
}

//etsqp:hotpath
func (h *cursorHead) ts() int64 { return h.b.Ts[h.i] }

//etsqp:hotpath
func (h *cursorHead) val() int64 { return h.b.Vals[h.i] }

// mergeCursors streams the time-ordered concatenation e1 ∘ e2 of two
// cursors (the batch form of expr.MergeByTime): equal timestamps merge
// into one row with both values, a missing side yields expr.NullValue.
// emit returns false to stop early (LIMIT). Pure merge time (batch
// refills excluded) is charged to the merge stage.
func mergeCursors(l, r *batchCursor, col *statsCollector, emit func(Row) bool) error {
	lh, rh := &cursorHead{c: l}, &cursorHead{c: r}
	start := time.Now()
	defer func() {
		col.mergeNanos.Add(int64(time.Since(start)) - lh.fillNs - rh.fillNs)
	}()
	for {
		if err := lh.fill(); err != nil {
			return err
		}
		if err := rh.fill(); err != nil {
			return err
		}
		switch {
		case lh.eof && rh.eof:
			return nil
		case rh.eof || (!lh.eof && lh.ts() < rh.ts()):
			if !emit(Row{Time: lh.ts(), Values: []int64{lh.val(), expr.NullValue}}) {
				return nil
			}
			lh.i++
		case lh.eof || rh.ts() < lh.ts():
			if !emit(Row{Time: rh.ts(), Values: []int64{expr.NullValue, rh.val()}}) {
				return nil
			}
			rh.i++
		default:
			if !emit(Row{Time: lh.ts(), Values: []int64{lh.val(), rh.val()}}) {
				return nil
			}
			lh.i++
			rh.i++
		}
	}
}

// joinCursors streams the natural (time-aligned) join of two cursors
// with the two-pointer merge of expr.NaturalJoin, batch-refilled on
// either side as it drains; when one side is exhausted the other side's
// remaining pages are never decoded. emit returns false to stop early.
func joinCursors(l, r *batchCursor, col *statsCollector, emit func(t, lv, rv int64) bool) error {
	lh, rh := &cursorHead{c: l}, &cursorHead{c: r}
	start := time.Now()
	defer func() {
		col.mergeNanos.Add(int64(time.Since(start)) - lh.fillNs - rh.fillNs)
	}()
	for {
		if err := lh.fill(); err != nil {
			return err
		}
		if err := rh.fill(); err != nil {
			return err
		}
		if lh.eof || rh.eof {
			return nil
		}
		switch {
		case lh.ts() < rh.ts():
			lh.i++
		case rh.ts() < lh.ts():
			rh.i++
		default:
			if !emit(lh.ts(), lh.val(), rh.val()) {
				return nil
			}
			lh.i++
			rh.i++
		}
	}
}
