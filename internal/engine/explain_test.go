package engine

import (
	"sort"
	"strings"
	"testing"

	"etsqp/internal/obs"
	"etsqp/internal/storage"
)

// planStore builds a deterministic 3-page store: regular timestamps
// (start 1000, step 1) and three value pages with distinct statistics —
// page 0 all zeros, page 1 all fives, page 2 cycling 0..10.
func planStore(t *testing.T) *storage.Store {
	t.Helper()
	const pageSize = 1024
	n := 3 * pageSize
	ts := make([]int64, n)
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		ts[i] = 1000 + int64(i)
		switch i / pageSize {
		case 0:
			vals[i] = 0
		case 1:
			vals[i] = 5
		default:
			vals[i] = int64(i % 11)
		}
	}
	st := storage.NewStore()
	if err := st.Append("ts", ts, vals, storage.Options{PageSize: pageSize}); err != nil {
		t.Fatal(err)
	}
	return st
}

// twoSeriesStore builds two aligned series for merge/join plans.
func twoSeriesStore(t *testing.T) *storage.Store {
	t.Helper()
	const n = 2048
	ts := make([]int64, n)
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		ts[i] = 1000 + int64(i)
		vals[i] = int64(i % 7)
	}
	st := storage.NewStore()
	for _, name := range []string{"ts1", "ts2"} {
		if err := st.Append(name, ts, vals, storage.Options{PageSize: 1024}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestPlanInfoGolden pins the EXPLAIN rendering for every plan shape.
func TestPlanInfoGolden(t *testing.T) {
	single := planStore(t)
	double := twoSeriesStore(t)
	cases := []struct {
		name  string
		store *storage.Store
		mode  Mode
		sql   string
		want  string
	}{
		{
			name: "aggregate", store: single, mode: ModeETSQP,
			sql: "SELECT SUM(A) FROM ts",
			want: "aggregate query [ETSQP]\n" +
				"  series: ts\n" +
				"  pages: 3  workers: 2  jobs: 3  sliced: false\n" +
				"  fused decoders: true  pruning: false\n",
		},
		{
			name: "window", store: single, mode: ModeETSQP,
			sql: "SELECT SUM(A) FROM ts SW(1000, 1024)",
			want: "window query [ETSQP]\n" +
				"  series: ts\n" +
				"  pages: 3  workers: 2  jobs: 3  sliced: false\n" +
				"  fused decoders: true  pruning: false\n" +
				"  window instances: 3\n",
		},
		{
			name: "scan", store: single, mode: ModeETSQPPrune,
			sql: "SELECT * FROM ts WHERE A >= 3",
			want: "scan query [ETSQP-prune]\n" +
				"  series: ts\n" +
				"  pages: 3  workers: 2  jobs: 3  sliced: false\n",
		},
		{
			name: "merge", store: double, mode: ModeETSQP,
			sql: "SELECT * FROM ts1 UNION ts2 ORDER BY TIME",
			want: "merge query [ETSQP]\n" +
				"  series: ts1, ts2\n" +
				"  pages: 2  workers: 2  jobs: 2  sliced: false\n" +
				"  merge ranges: 2\n",
		},
		{
			name: "join", store: double, mode: ModeETSQP,
			sql: "SELECT * FROM ts1, ts2",
			want: "join query [ETSQP]\n" +
				"  series: ts1, ts2\n" +
				"  pages: 2  workers: 2  jobs: 2  sliced: false\n" +
				"  merge ranges: 2\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := New(tc.store, tc.mode)
			e.Workers = 2
			info, err := e.Explain(tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			if got := info.String(); got != tc.want {
				t.Errorf("plan mismatch\ngot:\n%s\nwant:\n%s", got, tc.want)
			}
		})
	}
}

// normalizeAnalyze blanks the timing-dependent lines of an EXPLAIN
// ANALYZE rendering so the rest can be compared as a golden string.
func normalizeAnalyze(s string) string {
	spanNames := map[string]bool{
		"query": true, "parse": true, "plan": true, "prune": true,
		"io": true, "decode": true, "filter": true, "agg": true,
		"window": true, "merge": true, "other": true,
	}
	lines := strings.Split(s, "\n")
	for i, ln := range lines {
		trimmed := strings.TrimSpace(ln)
		switch {
		case strings.HasPrefix(trimmed, "elapsed:"):
			lines[i] = "    elapsed: <t>"
		case strings.HasPrefix(trimmed, "stages:"):
			lines[i] = "    stages: <t>"
		case strings.HasPrefix(trimmed, "resources:"):
			lines[i] = "    resources: <r>"
		case strings.HasPrefix(trimmed, "bytes scanned:"):
			lines[i] = "    bytes scanned: <n>"
		case strings.HasPrefix(trimmed, "slice ["):
			if j := strings.LastIndex(ln, " dur="); j >= 0 {
				lines[i] = ln[:j] + " dur=<t>"
			}
			// Workers record slice events concurrently, so their order is
			// nondeterministic: sort each contiguous block of slice lines.
			if i+1 == len(lines) || !strings.HasPrefix(strings.TrimSpace(lines[i+1]), "slice [") {
				j := i
				for j > 0 && strings.HasPrefix(strings.TrimSpace(lines[j-1]), "slice [") {
					j--
				}
				sort.Strings(lines[j : i+1])
			}
		default:
			// Span lines render as exactly "name <duration>"; two fields, so
			// plan lines that happen to start with a stage name ("window
			// instances: 6", "merge ranges: 2") are left alone.
			if name, rest, ok := strings.Cut(trimmed, " "); ok && spanNames[name] &&
				!strings.ContainsRune(rest, ' ') {
				indent := ln[:len(ln)-len(strings.TrimLeft(ln, " "))]
				lines[i] = indent + name + " <t>"
			}
		}
	}
	return strings.Join(lines, "\n")
}

// TestExplainAnalyzeGolden pins the analyze-annotated rendering for a
// fused aggregate (counters deterministic; times normalized).
func TestExplainAnalyzeGolden(t *testing.T) {
	e := New(planStore(t), ModeETSQP)
	e.Workers = 2
	info, err := e.ExplainAnalyze("SELECT SUM(A), COUNT(A) FROM ts")
	if err != nil {
		t.Fatal(err)
	}
	want := "aggregate query [ETSQP]\n" +
		"  series: ts\n" +
		"  pages: 3  workers: 2  jobs: 3  sliced: false\n" +
		"  fused decoders: true  pruning: false\n" +
		"  analyze:\n" +
		"    pages: relevant=3 read=3 pruned=0 stat-answered=0\n" +
		"    slices: 3  tuples loaded: 3072  rows pruned: 0  rows out: 2\n" +
		"    values: fused=3072 decoded=0\n" +
		"    bytes scanned: <n>\n" +
		"    elapsed: <t>\n" +
		"    stages: <t>\n" +
		"    resources: <r>\n" +
		"  trace:\n" +
		"    query <t>\n" +
		"      parse <t>\n" +
		"      plan <t>\n" +
		"      prune <t>\n" +
		"      io <t>\n" +
		"      decode <t>\n" +
		"      filter <t>\n" +
		"      agg <t>\n" +
		"      window <t>\n" +
		"      merge <t>\n" +
		"      other <t>\n" +
		"    slices: 3 run, 3 recorded\n" +
		"      slice [0, 1024) rows=1024 fused=true width=0 nv=1 dur=<t>\n" +
		"      slice [0, 1024) rows=1024 fused=true width=0 nv=1 dur=<t>\n" +
		"      slice [0, 1024) rows=1024 fused=true width=4 nv=7 dur=<t>\n"
	if got := normalizeAnalyze(info.String()); got != want {
		t.Errorf("analyze mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExplainAnalyzeMergeShape checks the merge-specific annotations.
func TestExplainAnalyzeMergeShape(t *testing.T) {
	e := New(twoSeriesStore(t), ModeETSQP)
	e.Workers = 2
	info, err := e.ExplainAnalyze("SELECT * FROM ts1 UNION ts2 ORDER BY TIME")
	if err != nil {
		t.Fatal(err)
	}
	out := info.String()
	if !strings.Contains(out, "merge ranges: 2") {
		t.Errorf("analyze output missing merge ranges:\n%s", out)
	}
	if info.Result.Stats.MergeRanges != 2 {
		t.Errorf("MergeRanges = %d, want 2", info.Result.Stats.MergeRanges)
	}
}

// TestAnalyzePrunedAndFusedAggregate is the acceptance scenario: one
// pruning-eligible aggregate where the observed counters show pages
// pruned by statistics AND values aggregated on the fused path (the
// vacuous-filter optimization), all consistent with the result.
func TestAnalyzePrunedAndFusedAggregate(t *testing.T) {
	st := planStore(t)
	const sql = "SELECT SUM(A), COUNT(A) FROM ts WHERE A >= 3 AND A <= 7"

	// Reference result from the serial engine.
	ref := New(planStore(t), ModeSerial)
	ref.Workers = 1
	refRes, err := ref.ExecuteSQL(sql)
	if err != nil {
		t.Fatal(err)
	}

	e := New(st, ModeETSQPPrune)
	e.Workers = 2
	info, err := e.ExplainAnalyze(sql)
	if err != nil {
		t.Fatal(err)
	}
	stats := info.Result.Stats

	// Page 0 (all zeros, max < 3) is pruned from its header alone.
	if stats.PagesPruned != 1 {
		t.Errorf("PagesPruned = %d, want 1", stats.PagesPruned)
	}
	// Page 1 (all fives) proves the filter vacuous from min/max, so its
	// 1024 values aggregate fused, without materialization.
	if stats.ValuesFused != 1024 {
		t.Errorf("ValuesFused = %d, want 1024", stats.ValuesFused)
	}
	// Page 2 (mixed 0..10) must actually decode and filter.
	if stats.ValuesDecoded == 0 {
		t.Error("ValuesDecoded = 0, want > 0")
	}
	if stats.PagesTotal != 3 {
		t.Errorf("PagesTotal = %d, want 3", stats.PagesTotal)
	}

	// The counters must be consistent with the query result.
	wantSum := refRes.Aggregates["SUM(A)"]
	wantCount := refRes.Aggregates["COUNT(A)"]
	if got := info.Result.Aggregates["SUM(A)"]; got != wantSum {
		t.Errorf("SUM = %v, want %v", got, wantSum)
	}
	if got := info.Result.Aggregates["COUNT(A)"]; got != wantCount {
		t.Errorf("COUNT = %v, want %v", got, wantCount)
	}
	// Hand-computed: page 1 contributes 1024 fives; page 2 contributes
	// its values in [3, 7].
	sum, count := int64(1024*5), int64(1024)
	for i := 2048; i < 3072; i++ {
		if v := int64(i % 11); v >= 3 && v <= 7 {
			sum += v
			count++
		}
	}
	if wantSum != float64(sum) || wantCount != float64(count) {
		t.Errorf("reference disagrees with hand computation: got (%v, %v), want (%d, %d)",
			wantSum, wantCount, sum, count)
	}

	// The rendering surfaces the same numbers.
	out := info.String()
	if !strings.Contains(out, "pruned=1") || !strings.Contains(out, "fused=1024") {
		t.Errorf("analyze rendering missing pruned/fused counters:\n%s", out)
	}
}

// TestObsCountersTrackQuery checks the process-global counters observe
// the same pruning and fusion the per-query stats report.
func TestObsCountersTrackQuery(t *testing.T) {
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	before := obs.Capture()

	e := New(planStore(t), ModeETSQPPrune)
	e.Workers = 2
	res, err := e.ExecuteSQL("SELECT SUM(A), COUNT(A) FROM ts WHERE A >= 3 AND A <= 7")
	if err != nil {
		t.Fatal(err)
	}
	delta := obs.Capture().Delta(before)

	if got := delta[obs.EngineQueries.Name()]; got != 1 {
		t.Errorf("engine.queries delta = %d, want 1", got)
	}
	if got := delta[obs.PrunePagesValue.Name()]; got != res.Stats.PagesPruned {
		t.Errorf("prune.pages_skipped_value delta = %d, want %d", got, res.Stats.PagesPruned)
	}
	if got := delta[obs.EngineValuesFused.Name()]; got != res.Stats.ValuesFused {
		t.Errorf("engine.values_fused delta = %d, want %d", got, res.Stats.ValuesFused)
	}
	if got := delta[obs.EngineValuesDecoded.Name()]; got != res.Stats.ValuesDecoded {
		t.Errorf("engine.values_decoded delta = %d, want %d", got, res.Stats.ValuesDecoded)
	}
	if got := delta[obs.PrunePagesVacuous.Name()]; got != 1 {
		t.Errorf("prune.pages_filter_vacuous delta = %d, want 1", got)
	}
	if got := delta[obs.EngineRowsOut.Name()]; got != 2 {
		t.Errorf("engine.rows_out delta = %d, want 2", got)
	}
}
