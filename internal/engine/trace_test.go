package engine

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"etsqp/internal/sqlparse"
)

// TestTraceStageSumWithinBound is the acceptance property: on a
// single-worker run the span tree's stage durations (including the
// explicit "other" span) sum to within 10% of the traced wall time.
func TestTraceStageSumWithinBound(t *testing.T) {
	e := New(planStore(t), ModeETSQP)
	e.Workers = 1
	res, tr, err := e.TraceSQL("SELECT SUM(A), COUNT(A) FROM ts")
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || tr == nil {
		t.Fatal("TraceSQL returned nil result or trace")
	}
	if tr.ElapsedNs <= 0 {
		t.Fatalf("ElapsedNs = %d, want > 0", tr.ElapsedNs)
	}
	sum := tr.StageSum()
	diff := sum - tr.ElapsedNs
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.10*float64(tr.ElapsedNs) {
		t.Errorf("stage sum %d differs from elapsed %d by more than 10%%", sum, tr.ElapsedNs)
	}
}

// TestTraceSpanTreeShape checks the assembled tree: a query root whose
// children are the pipeline stages in execution order, per-slice events
// carrying the Proposition 1 n_v for TS2DIFF pages, and an exact total
// slice count.
func TestTraceSpanTreeShape(t *testing.T) {
	e := New(planStore(t), ModeETSQP)
	e.Workers = 2
	res, tr, err := e.TraceSQL("SELECT SUM(A) FROM ts")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Name != "query" {
		t.Errorf("root span = %q, want query", tr.Root.Name)
	}
	wantOrder := []string{"parse", "plan", "prune", "io", "decode", "filter", "agg", "window", "merge", "other"}
	if len(tr.Root.Children) != len(wantOrder) {
		t.Fatalf("root has %d children, want %d", len(tr.Root.Children), len(wantOrder))
	}
	for i, name := range wantOrder {
		if tr.Root.Children[i].Name != name {
			t.Errorf("child %d = %q, want %q", i, tr.Root.Children[i].Name, name)
		}
		if tr.Root.Children[i].DurNs < 0 {
			t.Errorf("span %q has negative duration %d", name, tr.Root.Children[i].DurNs)
		}
	}
	if tr.SlicesTotal != res.Stats.SlicesRun {
		t.Errorf("SlicesTotal = %d, want SlicesRun = %d", tr.SlicesTotal, res.Stats.SlicesRun)
	}
	if len(tr.Slices) != 3 {
		t.Fatalf("recorded %d slice events, want 3", len(tr.Slices))
	}
	rows := 0
	for _, ev := range tr.Slices {
		rows += ev.Rows
		if !ev.Fused {
			t.Errorf("slice %+v not fused; the fused aggregate path should fuse all pages", ev)
		}
		if ev.Nv <= 0 {
			t.Errorf("slice %+v missing Proposition 1 n_v", ev)
		}
	}
	if rows != 3072 {
		t.Errorf("slice rows sum to %d, want 3072", rows)
	}
}

// TestTraceJSONGolden pins the JSON schema: field names and order are
// part of the trace contract (consumers parse slow-query log lines).
func TestTraceJSONGolden(t *testing.T) {
	tr := NewTrace("SELECT SUM(A) FROM ts", "ETSQP", 2)
	tr.TraceID = "00f1e2d3c4b5a697" // minted IDs are process-unique; pin one
	tr.parseNs = 10
	tr.planNs = 20
	tr.finish(Stats{
		SlicesRun:  1,
		PruneNanos: 30, IONanos: 40, DecodeNanos: 50,
		FilterNanos: 60, AggNanos: 70, WindowNanos: 5, MergeNanos: 80,
		CPUNanos: 100, MorselsRun: 3, MorselsStolen: 1,
		PagesRead: 2, BytesScanned: 64, ValuesDecoded: 8,
		CacheHits: 1, CacheMisses: 1, ArenaHighWater: 4096,
	}, 400*time.Nanosecond)
	tr.addSlice(SliceEvent{StartRow: 0, EndRow: 8, Rows: 8, Fused: true, Width: 4, Nv: 7, DurNs: 90})
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"query":"SELECT SUM(A) FROM ts","mode":"ETSQP","workers":2,` +
		`"elapsed_ns":400,"span":{"name":"query","dur_ns":400,"children":[` +
		`{"name":"parse","dur_ns":10},{"name":"plan","dur_ns":20},` +
		`{"name":"prune","dur_ns":30},{"name":"io","dur_ns":40},` +
		`{"name":"decode","dur_ns":50},{"name":"filter","dur_ns":60},` +
		`{"name":"agg","dur_ns":70},{"name":"window","dur_ns":5},` +
		`{"name":"merge","dur_ns":80},` +
		`{"name":"other","dur_ns":65}]},` +
		`"slices":[{"start_row":0,"end_row":8,"rows":8,"fused":true,"width":4,"nv":7,"dur_ns":90}],` +
		`"slices_total":1,"trace_id":"00f1e2d3c4b5a697",` +
		`"resources":{"cpu_ns":100,"morsels":3,"steals":1,"pages_read":2,` +
		`"bytes_scanned":64,"values_decoded":8,"cache_hits":1,"cache_misses":1,` +
		`"arena_high_bytes":4096}}` + "\n"
	if got := b.String(); got != want {
		t.Errorf("trace JSON mismatch\ngot:  %s\nwant: %s", got, want)
	}
	// The document round-trips.
	var back Trace
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if back.ElapsedNs != 400 || back.Root.Name != "query" || len(back.Slices) != 1 {
		t.Errorf("round-tripped trace lost fields: %+v", &back)
	}
}

// TestTraceOtherSpanClamped checks the "other" span never goes negative
// when parallel stage sums exceed the wall time.
func TestTraceOtherSpanClamped(t *testing.T) {
	tr := NewTrace("q", "ETSQP", 4)
	tr.finish(Stats{IONanos: 500, DecodeNanos: 600}, 100*time.Nanosecond)
	other := tr.Root.Children[len(tr.Root.Children)-1]
	if other.Name != "other" {
		t.Fatalf("last child = %q, want other", other.Name)
	}
	if other.DurNs != 0 {
		t.Errorf("other span = %d, want 0 (clamped)", other.DurNs)
	}
}

// TestTraceSliceCap checks per-slice detail is bounded while the total
// stays exact.
func TestTraceSliceCap(t *testing.T) {
	tr := NewTrace("q", "ETSQP", 1)
	for i := 0; i < maxTraceSlices+50; i++ {
		tr.addSlice(SliceEvent{StartRow: i, EndRow: i + 1, Rows: 1})
	}
	if len(tr.Slices) != maxTraceSlices {
		t.Errorf("retained %d slice events, want cap %d", len(tr.Slices), maxTraceSlices)
	}
	tr.finish(Stats{SlicesRun: int64(maxTraceSlices + 50)}, time.Microsecond)
	if tr.SlicesTotal != int64(maxTraceSlices+50) {
		t.Errorf("SlicesTotal = %d, want %d", tr.SlicesTotal, maxTraceSlices+50)
	}
}

// TestTraceNilDisabled checks a nil trace leaves execution untouched:
// ExecuteTraced(q, nil) equals Execute(q).
func TestTraceNilDisabled(t *testing.T) {
	e := New(planStore(t), ModeETSQP)
	e.Workers = 2
	q, err := sqlparse.Parse("SELECT SUM(A) FROM ts")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecuteTraced(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregates["SUM(A)"] != ref.Aggregates["SUM(A)"] {
		t.Errorf("traced-nil result %v != plain result %v", res.Aggregates, ref.Aggregates)
	}
}

// TestTraceScanSlices checks the row-pipeline (scan) path also records
// per-slice events.
func TestTraceScanSlices(t *testing.T) {
	e := New(planStore(t), ModeETSQP)
	e.Workers = 2
	res, tr, err := e.TraceSQL("SELECT * FROM ts WHERE A >= 3 LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(res.Rows))
	}
	if len(tr.Slices) == 0 {
		t.Error("scan trace recorded no slice events")
	}
	for _, ev := range tr.Slices {
		if ev.Rows != ev.EndRow-ev.StartRow {
			t.Errorf("slice %+v row count inconsistent", ev)
		}
	}
}
