package engine

import (
	"testing"
)

// TestParallelExecutorAllocs is the runtime cross-check of the
// sharedwrite refactors: the parallel row reader and the partitioned
// range executor must hold a steady per-call allocation count once
// caches are warm. The fan-outs inherently allocate — output columns,
// per-worker slice jobs, goroutines, the result slots — but the count
// is a function of page/range count only, never of call repetition or
// row volume, so a fixed budget catches any per-row allocation that
// sneaks into a worker body.
func TestParallelExecutorAllocs(t *testing.T) {
	ts, vals := testData(8192, 7, true)
	st := storeFor(t, ModeETSQP, ts, vals, 512)
	e := New(st, ModeETSQP)
	e.Workers = 4

	warm := &statsCollector{}
	if _, _, err := e.readSeriesColumns("ts", ts[0], ts[len(ts)-1], warm); err != nil {
		t.Fatal(err) // also warms the plan cache
	}
	pages := int(warm.pagesTotal.Load())
	if pages == 0 {
		t.Fatal("no pages loaded")
	}

	n := testing.AllocsPerRun(20, func() {
		col := &statsCollector{}
		if _, _, err := e.readSeriesColumns("ts", ts[0], ts[len(ts)-1], col); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: a small constant per decoded page (decoded columns, map
	// entries, slice jobs) plus fixed fan-out overhead (output columns,
	// error channel, one goroutine per worker).
	if budget := float64(pages*12 + 48); n > budget {
		t.Errorf("readSeriesColumns: %.1f allocs/op over %d pages, budget %.0f", n, pages, budget)
	}
	t.Logf("readSeriesColumns: %.1f allocs/op over %d pages", n, pages)

	ser, ok := st.Series("ts")
	if !ok {
		t.Fatal("unknown series")
	}
	ranges := timeCuts(ser, ts[0], ts[len(ts)-1], 8)
	static := []Row{{Time: 1, Values: []int64{1}}}
	fn := func(a, b int64) ([]Row, error) { return static, nil }
	if _, err := e.runRanged(ranges, nil, fn); err != nil {
		t.Fatal(err)
	}
	n = testing.AllocsPerRun(100, func() {
		if _, err := e.runRanged(ranges, nil, fn); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: result slots + semaphore + one goroutine and closure per
	// range + the concatenated output. fn itself allocates nothing, so
	// this isolates the executor's own overhead.
	if budget := float64(len(ranges)*6 + 16); n > budget {
		t.Errorf("runRanged: %.1f allocs/op over %d ranges, budget %.0f", n, len(ranges), budget)
	}
	t.Logf("runRanged: %.1f allocs/op over %d ranges", n, len(ranges))
}
